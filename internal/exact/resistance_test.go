package exact

import (
	"math"
	"testing"
	"testing/quick"

	"manywalks/internal/graph"
	"manywalks/internal/rng"
)

// TestFosterTheorem checks Foster's identity: on any connected loop-free
// graph, Σ_{(u,v)∈E} R_eff(u,v) = n − 1 exactly.
func TestFosterTheorem(t *testing.T) {
	r := rng.New(7)
	graphs := []*graph.Graph{
		graph.Cycle(8),
		graph.Complete(6, false),
		graph.Wheel(7),
		graph.Torus2D(3),
		graph.Lollipop(5, 3),
		graph.ErdosRenyi(20, 0.3, r),
	}
	for _, g := range graphs {
		if !g.IsConnected() {
			continue
		}
		sum := 0.0
		for v := int32(0); v < int32(g.N()); v++ {
			for _, u := range g.Neighbors(v) {
				if u > v {
					rEff, err := EffectiveResistance(g, v, u)
					if err != nil {
						t.Fatal(err)
					}
					sum += rEff
				}
			}
		}
		want := float64(g.N() - 1)
		if math.Abs(sum-want) > 1e-7 {
			t.Fatalf("%s: Foster sum %v, want %v", g.Name(), sum, want)
		}
	}
}

// TestRayleighMonotonicity checks that adding an edge never increases any
// effective resistance (Rayleigh's monotonicity law), via random graphs and
// random edge additions.
func TestRayleighMonotonicity(t *testing.T) {
	check := func(seed uint16) bool {
		r := rng.NewStream(uint64(seed), 3)
		n := 6 + r.Intn(10)
		g, err := graph.ConnectedErdosRenyi(n, 0.4, r, 50)
		if err != nil {
			return true // skip unlucky disconnected draws
		}
		// Pick a non-edge to add.
		var au, av int32 = -1, -1
		for tries := 0; tries < 100; tries++ {
			u := int32(r.Intn(n))
			v := int32(r.Intn(n))
			if u != v && !g.HasEdge(u, v) {
				au, av = u, v
				break
			}
		}
		if au < 0 {
			return true // dense instance with no free pair
		}
		b := graph.NewBuilder(n)
		for v := int32(0); v < int32(n); v++ {
			for _, u := range g.Neighbors(v) {
				if u > v {
					b.AddEdge(v, u)
				}
			}
		}
		b.AddEdge(au, av)
		g2 := b.Build("aug")
		// Check a handful of pairs.
		for probe := 0; probe < 5; probe++ {
			u := int32(r.Intn(n))
			v := int32(r.Intn(n))
			before, err := EffectiveResistance(g, u, v)
			if err != nil {
				return false
			}
			after, err := EffectiveResistance(g2, u, v)
			if err != nil {
				return false
			}
			if after > before+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestHittingTriangleInequality checks h(u,w) ≤ h(u,v) + h(v,w): visiting v
// en route is one feasible strategy, so the direct hitting time can only be
// smaller.
func TestHittingTriangleInequality(t *testing.T) {
	r := rng.New(17)
	graphs := []*graph.Graph{
		graph.Cycle(10),
		graph.Lollipop(6, 4),
		graph.ErdosRenyi(16, 0.35, r),
	}
	for _, g := range graphs {
		if !g.IsConnected() {
			continue
		}
		ht, err := ComputeHittingTimes(g)
		if err != nil {
			t.Fatal(err)
		}
		n := int32(g.N())
		for u := int32(0); u < n; u++ {
			for v := int32(0); v < n; v++ {
				for w := int32(0); w < n; w++ {
					if ht.At(u, w) > ht.At(u, v)+ht.At(v, w)+1e-7 {
						t.Fatalf("%s: h(%d,%d)=%v > h(%d,%d)+h(%d,%d)=%v",
							g.Name(), u, w, ht.At(u, w), u, v, v, w,
							ht.At(u, v)+ht.At(v, w))
					}
				}
			}
		}
	}
}

// TestCommuteIsMetric checks that commute time is symmetric and satisfies
// the triangle inequality (it is 2m·R_eff, and resistance is a metric).
func TestCommuteIsMetric(t *testing.T) {
	g := graph.Wheel(9)
	ht, err := ComputeHittingTimes(g)
	if err != nil {
		t.Fatal(err)
	}
	n := int32(g.N())
	for u := int32(0); u < n; u++ {
		for v := int32(0); v < n; v++ {
			if math.Abs(ht.CommuteTime(u, v)-ht.CommuteTime(v, u)) > 1e-9 {
				t.Fatal("commute asymmetric")
			}
			for w := int32(0); w < n; w++ {
				if ht.CommuteTime(u, w) > ht.CommuteTime(u, v)+ht.CommuteTime(v, w)+1e-7 {
					t.Fatalf("commute triangle violated at (%d,%d,%d)", u, v, w)
				}
			}
		}
	}
}
