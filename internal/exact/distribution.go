package exact

import (
	"fmt"

	"manywalks/internal/graph"
)

// CoverTimeDistribution computes the exact distribution of the single-walk
// cover time from start on a tiny graph: result[t] = Pr[τ = t] for
// t = 0..maxT, by evolving the probability mass over the (visited-set,
// position) chain. The second return value is the mass not yet absorbed by
// maxT (Pr[τ > maxT]).
//
// The state space has 2^n·n entries, so the same MaxExactCoverVertices limit
// as the expectation DP applies; the per-step cost is O(2^n·n·d̄).
func CoverTimeDistribution(g *graph.Graph, start int32, maxT int) ([]float64, float64, error) {
	n := g.N()
	if n > MaxExactCoverVertices {
		return nil, 0, fmt.Errorf("exact: distribution limited to %d vertices, got %d", MaxExactCoverVertices, n)
	}
	if !g.IsConnected() {
		return nil, 0, fmt.Errorf("exact: cover distribution requires a connected graph")
	}
	if maxT < 0 {
		return nil, 0, fmt.Errorf("exact: negative horizon")
	}
	full := uint32(1)<<uint(n) - 1
	states := (int(full) + 1) * n
	cur := make([]float64, states)
	next := make([]float64, states)
	idx := func(s uint32, v int32) int { return int(s)*n + int(v) }

	dist := make([]float64, maxT+1)
	startSet := uint32(1) << uint(start)
	if startSet == full {
		dist[0] = 1
		return dist, 0, nil
	}
	cur[idx(startSet, start)] = 1
	remaining := 1.0
	for t := 1; t <= maxT; t++ {
		for i := range next {
			next[i] = 0
		}
		absorbed := 0.0
		for s := startSet; s <= full; s++ {
			if s&startSet == 0 || s == full {
				continue
			}
			base := int(s) * n
			for v := int32(0); v < int32(n); v++ {
				mass := cur[base+int(v)]
				if mass == 0 {
					continue
				}
				nb := g.Neighbors(v)
				p := mass / float64(len(nb))
				for _, u := range nb {
					ns := s | 1<<uint(u)
					if ns == full {
						absorbed += p
					} else {
						next[idx(ns, u)] += p
					}
				}
			}
		}
		dist[t] = absorbed
		remaining -= absorbed
		cur, next = next, cur
	}
	if remaining < 0 {
		remaining = 0
	}
	return dist, remaining, nil
}

// DistributionMean returns the mean of a (possibly truncated) cover-time
// distribution, attributing leftover mass to the horizon (a lower bound on
// the true mean when leftover > 0).
func DistributionMean(dist []float64, leftover float64) float64 {
	mean := 0.0
	for t, p := range dist {
		mean += float64(t) * p
	}
	mean += leftover * float64(len(dist)-1)
	return mean
}

// DistributionQuantile returns the smallest t with cumulative probability
// ≥ q, or -1 if the truncated distribution never accumulates that much.
func DistributionQuantile(dist []float64, q float64) int {
	if q < 0 || q > 1 {
		panic("exact: quantile out of range")
	}
	acc := 0.0
	for t, p := range dist {
		acc += p
		if acc >= q {
			return t
		}
	}
	return -1
}
