package exact

import (
	"math"
	"testing"

	"manywalks/internal/graph"
	"manywalks/internal/linalg"
	"manywalks/internal/rng"
)

func TestKemenyInvariance(t *testing.T) {
	// Σ_v π(v)h(u,v) must not depend on u — across assorted topologies.
	graphs := []*graph.Graph{
		graph.Cycle(9),
		graph.Complete(7, false),
		graph.Star(6),
		graph.Lollipop(5, 4),
		graph.Wheel(8),
		graph.BalancedTree(2, 3),
	}
	for _, g := range graphs {
		ht, err := ComputeHittingTimes(g)
		if err != nil {
			t.Fatal(err)
		}
		if spread := KemenySpread(g, ht); spread > 1e-7 {
			t.Fatalf("%s: Kemeny spread %v", g.Name(), spread)
		}
	}
}

func TestKemenyCompleteGraphClosedForm(t *testing.T) {
	// K_n: h(u,v) = n-1 for u≠v, π uniform → K = (n-1)²/n.
	n := 9
	g := graph.Complete(n, false)
	ht, _ := ComputeHittingTimes(g)
	want := float64((n-1)*(n-1)) / float64(n)
	if got := KemenyConstant(g, ht); math.Abs(got-want) > 1e-8 {
		t.Fatalf("K%d Kemeny %v, want %v", n, got, want)
	}
}

func TestExpectedReturnTime(t *testing.T) {
	// Return time = 1/π(v) = totalDegree/deg(v).
	g := graph.Star(5) // center degree 4, leaves 1, total 8
	if rt := ExpectedReturnTime(g, 0); rt != 2 {
		t.Fatalf("center return %v", rt)
	}
	if rt := ExpectedReturnTime(g, 1); rt != 8 {
		t.Fatalf("leaf return %v", rt)
	}
	// Regular graph: return time = n everywhere.
	c := graph.Cycle(12)
	if rt := ExpectedReturnTime(c, 3); rt != 12 {
		t.Fatalf("cycle return %v", rt)
	}
}

func TestEffectiveResistanceCGMatchesDense(t *testing.T) {
	r := rng.New(5)
	graphs := []*graph.Graph{
		graph.Cycle(30),
		graph.Torus2D(6),
		graph.ErdosRenyi(40, 0.2, r),
		graph.Complete(12, true), // self-loops must be ignored
	}
	for _, g := range graphs {
		if !g.IsConnected() {
			continue
		}
		pairs := [][2]int32{{0, 1}, {0, int32(g.N() - 1)}, {2, int32(g.N() / 2)}}
		for _, p := range pairs {
			if p[0] == p[1] {
				continue
			}
			dense, err := EffectiveResistance(g, p[0], p[1])
			if err != nil {
				t.Fatal(err)
			}
			cg, err := EffectiveResistanceCG(g, p[0], p[1])
			if err != nil {
				t.Fatalf("%s: %v", g.Name(), err)
			}
			if math.Abs(dense-cg) > 1e-7 {
				t.Fatalf("%s pair %v: dense %v vs CG %v", g.Name(), p, dense, cg)
			}
		}
	}
}

func TestEffectiveResistanceCGLargeGraph(t *testing.T) {
	// A graph size the dense solver would crawl on: n = 4096 torus.
	g := graph.Torus2D(64)
	rEff, err := EffectiveResistanceCG(g, 0, int32(g.N()/2))
	if err != nil {
		t.Fatal(err)
	}
	// 2-d torus resistance between antipodal points ≈ (ln n)/(2π) scale;
	// sanity-band only.
	if rEff < 0.3 || rEff > 3 {
		t.Fatalf("torus(64) antipodal resistance %v out of band", rEff)
	}
}

func TestEffectiveResistanceCGDisconnected(t *testing.T) {
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	if _, err := EffectiveResistanceCG(b.Build("disc"), 0, 2); err == nil {
		t.Fatal("disconnected accepted")
	}
}

func TestConjugateGradientOnDenseSPD(t *testing.T) {
	// Validate CG itself against the LU solver on a random SPD system.
	r := rng.New(9)
	n := 30
	a := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			v := r.Float64() - 0.5
			a.Set(i, j, v)
			a.Set(j, i, v)
		}
		a.Add(i, i, float64(n)) // diagonal dominance → SPD
	}
	want := make([]float64, n)
	for i := range want {
		want[i] = r.Float64() * 10
	}
	b := a.MatVec(want)
	got, iters, resid, err := linalg.ConjugateGradient(linalg.DenseOperator{M: a}, b, linalg.CGOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if iters <= 0 || resid > 1e-9 {
		t.Fatalf("iters=%d resid=%v", iters, resid)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-6 {
			t.Fatalf("x[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestConjugateGradientZeroRHS(t *testing.T) {
	g := graph.Cycle(5)
	x, iters, _, err := linalg.ConjugateGradient(newLaplacianOperator(g), make([]float64, 5), linalg.CGOptions{})
	if err != nil || iters != 0 {
		t.Fatalf("zero rhs: %v iters=%d", err, iters)
	}
	for _, v := range x {
		if v != 0 {
			t.Fatal("nonzero solution for zero rhs")
		}
	}
}

func TestConjugateGradientDimensionMismatch(t *testing.T) {
	g := graph.Cycle(5)
	if _, _, _, err := linalg.ConjugateGradient(newLaplacianOperator(g), make([]float64, 4), linalg.CGOptions{}); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}
