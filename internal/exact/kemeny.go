package exact

import (
	"fmt"

	"manywalks/internal/graph"
	"manywalks/internal/linalg"
)

// KemenyConstant returns K(G) = Σ_v π(v)·h(u,v), which the random-walk
// literature proves is independent of the start u ("the Kemeny constant
// paradox"). The invariance is a stringent end-to-end check of the
// fundamental-matrix hitting times, asserted by tests across all starts.
func KemenyConstant(g *graph.Graph, ht *HittingTimes) float64 {
	op := linalg.NewWalkOperator(g, 0)
	pi := op.StationaryDistribution()
	// Any start gives the same value; use vertex 0 and let tests check
	// invariance explicitly.
	k := 0.0
	for v := 0; v < g.N(); v++ {
		k += pi[v] * ht.H.At(0, v)
	}
	return k
}

// KemenySpread returns the maximum over starts u of |Σ_v π(v)h(u,v) − K|,
// a numerical-error diagnostic that should be ~0.
func KemenySpread(g *graph.Graph, ht *HittingTimes) float64 {
	op := linalg.NewWalkOperator(g, 0)
	pi := op.StationaryDistribution()
	ref := KemenyConstant(g, ht)
	worst := 0.0
	for u := 0; u < g.N(); u++ {
		k := 0.0
		for v := 0; v < g.N(); v++ {
			k += pi[v] * ht.H.At(u, v)
		}
		if d := abs(k - ref); d > worst {
			worst = d
		}
	}
	return worst
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// ExpectedReturnTime returns E[time for the walk to return to v] = 1/π(v),
// exact for any connected graph.
func ExpectedReturnTime(g *graph.Graph, v int32) float64 {
	total := float64(g.TotalDegree())
	return total / float64(g.Degree(v))
}

// laplacianOperator applies the grounded Laplacian L + J/n without
// materializing it: (L+J/n)x = Dx − Ax + (Σx)/n. Self-loops are excluded
// (they carry no current).
type laplacianOperator struct {
	g       *graph.Graph
	loopFix []int32 // degree excluding self-loops
}

func newLaplacianOperator(g *graph.Graph) *laplacianOperator {
	n := g.N()
	deg := make([]int32, n)
	for v := 0; v < n; v++ {
		d := int32(0)
		for _, u := range g.Neighbors(int32(v)) {
			if u != int32(v) {
				d++
			}
		}
		deg[v] = d
	}
	return &laplacianOperator{g: g, loopFix: deg}
}

func (l *laplacianOperator) Dim() int { return l.g.N() }

func (l *laplacianOperator) Apply(x, out []float64) {
	n := l.g.N()
	sum := 0.0
	for _, v := range x {
		sum += v
	}
	ground := sum / float64(n)
	for v := 0; v < n; v++ {
		acc := float64(l.loopFix[v]) * x[v]
		for _, u := range l.g.Neighbors(int32(v)) {
			if u != int32(v) {
				acc -= x[u]
			}
		}
		out[v] = acc + ground
	}
}

// EffectiveResistanceCG computes the effective resistance with a matrix-free
// conjugate-gradient solve of the grounded Laplacian — O(m·√κ) instead of
// the dense solver's O(n³), usable on graphs far beyond the dense limit.
func EffectiveResistanceCG(g *graph.Graph, u, v int32) (float64, error) {
	if u == v {
		return 0, nil
	}
	if !g.IsConnected() {
		return 0, fmt.Errorf("exact: effective resistance requires connectivity")
	}
	n := g.N()
	b := make([]float64, n)
	b[u], b[v] = 1, -1
	x, _, _, err := linalg.ConjugateGradient(newLaplacianOperator(g), b,
		linalg.CGOptions{MaxIters: 40 * n, Tol: 1e-11})
	if err != nil {
		return 0, err
	}
	return x[u] - x[v], nil
}
