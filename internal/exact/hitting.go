// Package exact computes closed-form (non-sampled) random-walk quantities on
// moderate-size graphs: stationary distributions, all-pairs hitting times via
// the fundamental matrix, commute times, effective resistances, Matthews'
// cover-time bounds, and exact expected cover times for tiny graphs via
// absorbing-chain dynamic programs. These exact values anchor the Monte
// Carlo estimators in tests and supply the hmax/hmin columns of Table 1.
package exact

import (
	"fmt"
	"math"

	"manywalks/internal/graph"
	"manywalks/internal/linalg"
	"manywalks/internal/stats"
)

// HittingTimes holds the all-pairs expected hitting times of a graph:
// H[u][v] is the expected number of steps for a simple random walk started
// at u to first reach v (0 on the diagonal).
type HittingTimes struct {
	H *linalg.Matrix
}

// ComputeHittingTimes returns all-pairs hitting times using the fundamental
// matrix Z = (I − P + 1πᵀ)⁻¹ of the ergodic chain:
//
//	h(u,v) = (Z_vv − Z_uv) / π_v.
//
// One LU factorization gives every pair, so the cost is O(n³) total rather
// than O(n³) per target. The graph must be connected; bipartite graphs are
// fine because the formula needs only ergodicity of the average chain (the
// linear system remains nonsingular and the hitting-time identity holds for
// periodic irreducible chains as well).
func ComputeHittingTimes(g *graph.Graph) (*HittingTimes, error) {
	n := g.N()
	if n == 0 {
		return nil, fmt.Errorf("exact: empty graph")
	}
	if !g.IsConnected() {
		return nil, fmt.Errorf("exact: hitting times require a connected graph")
	}
	op := linalg.NewWalkOperator(g, 0)
	p := op.Dense()
	pi := op.StationaryDistribution()
	// A = I - P + 1πᵀ.
	a := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := -p.At(i, j) + pi[j]
			if i == j {
				v += 1
			}
			a.Set(i, j, v)
		}
	}
	f, err := linalg.Factor(a)
	if err != nil {
		return nil, fmt.Errorf("exact: fundamental matrix is singular: %w", err)
	}
	z := f.Inverse()
	h := linalg.NewMatrix(n, n)
	for v := 0; v < n; v++ {
		zvv := z.At(v, v)
		inv := 1 / pi[v]
		for u := 0; u < n; u++ {
			if u == v {
				continue
			}
			h.Set(u, v, (zvv-z.At(u, v))*inv)
		}
	}
	return &HittingTimes{H: h}, nil
}

// At returns h(u,v).
func (ht *HittingTimes) At(u, v int32) float64 { return ht.H.At(int(u), int(v)) }

// Max returns hmax = max over ordered pairs u≠v, with the arg pair.
func (ht *HittingTimes) Max() (float64, int32, int32) {
	n := ht.H.Rows
	best, bu, bv := math.Inf(-1), int32(0), int32(0)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u == v {
				continue
			}
			if h := ht.H.At(u, v); h > best {
				best, bu, bv = h, int32(u), int32(v)
			}
		}
	}
	return best, bu, bv
}

// Min returns hmin = min over ordered pairs u≠v, with the arg pair.
func (ht *HittingTimes) Min() (float64, int32, int32) {
	n := ht.H.Rows
	best, bu, bv := math.Inf(1), int32(0), int32(0)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u == v {
				continue
			}
			if h := ht.H.At(u, v); h < best {
				best, bu, bv = h, int32(u), int32(v)
			}
		}
	}
	return best, bu, bv
}

// MaxFrom returns max_v h(u,v) for a fixed start u.
func (ht *HittingTimes) MaxFrom(u int32) float64 {
	best := 0.0
	for v := 0; v < ht.H.Rows; v++ {
		if int32(v) != u && ht.H.At(int(u), v) > best {
			best = ht.H.At(int(u), v)
		}
	}
	return best
}

// CommuteTime returns h(u,v) + h(v,u).
func (ht *HittingTimes) CommuteTime(u, v int32) float64 {
	return ht.At(u, v) + ht.At(v, u)
}

// MatthewsBounds returns the cover-time sandwich of Matthews' theorem in the
// numerically honest form: lower = hmin·H_{n-1}, upper = hmax·H_n. (The
// paper's statement writes Hn on both sides; equality cases such as the
// complete graph show the lower side needs H_{n-1}.)
func MatthewsBounds(ht *HittingTimes) (lower, upper float64) {
	n := ht.H.Rows
	hmin, _, _ := ht.Min()
	hmax, _, _ := ht.Max()
	return hmin * stats.HarmonicNumber(n-1), hmax * stats.HarmonicNumber(n)
}

// AleliunasBound returns the universal cover-time upper bound
// C(G) ≤ 2·m·(n−1) of Aleliunas, Karp, Lipton, Lovász and Rackoff (the
// paper's reference [5]) — the bound behind the lollipop Θ(n³) worst case.
func AleliunasBound(g *graph.Graph) float64 {
	return 2 * float64(g.M()) * float64(g.N()-1)
}

// BabyMatthewsBound returns the paper's Theorem 13 upper bound on the k-walk
// cover time, (e/k)·hmax·H_n, valid for k ≤ log n (the o(1) term is dropped;
// experiments treat this as the asymptotic reference curve).
func BabyMatthewsBound(ht *HittingTimes, k int) float64 {
	if k < 1 {
		panic("exact: k must be >= 1")
	}
	n := ht.H.Rows
	hmax, _, _ := ht.Max()
	return math.E / float64(k) * hmax * stats.HarmonicNumber(n)
}

// EffectiveResistance returns the effective resistance between u and v when
// every edge is a unit resistor, computed by solving the grounded Laplacian
// system (L + J/n)x = e_u − e_v. Self-loops carry no current and are
// ignored. For loop-free graphs the commute identity
// h(u,v)+h(v,u) = 2m·R(u,v) ties this to hitting times (Chandra et al.).
func EffectiveResistance(g *graph.Graph, u, v int32) (float64, error) {
	n := g.N()
	if u == v {
		return 0, nil
	}
	if !g.IsConnected() {
		return 0, fmt.Errorf("exact: effective resistance requires connectivity")
	}
	a := linalg.NewMatrix(n, n)
	invN := 1 / float64(n)
	for i := 0; i < n; i++ {
		deg := 0
		for _, w := range g.Neighbors(int32(i)) {
			if w == int32(i) {
				continue // self-loop: no resistance contribution
			}
			deg++
			a.Add(i, int(w), -1)
		}
		a.Add(i, i, float64(deg))
		for j := 0; j < n; j++ {
			a.Add(i, j, invN)
		}
	}
	b := make([]float64, n)
	b[u], b[v] = 1, -1
	x, err := linalg.SolveSystem(a, b)
	if err != nil {
		return 0, err
	}
	return x[u] - x[v], nil
}
