package exact

import (
	"math"
	"testing"

	"manywalks/internal/graph"
	"manywalks/internal/walk"
)

func TestCoverDistributionMeanMatchesDP(t *testing.T) {
	cases := []struct {
		g     *graph.Graph
		start int32
	}{
		{graph.Cycle(7), 0},
		{graph.Complete(5, false), 0},
		{graph.Path(5), 2},
		{graph.Star(5), 1},
	}
	for _, c := range cases {
		want, err := CoverTimeFrom(c.g, c.start)
		if err != nil {
			t.Fatal(err)
		}
		horizon := int(want * 30)
		dist, leftover, err := CoverTimeDistribution(c.g, c.start, horizon)
		if err != nil {
			t.Fatal(err)
		}
		if leftover > 1e-6 {
			t.Fatalf("%s: leftover %v at 30x the mean", c.g.Name(), leftover)
		}
		got := DistributionMean(dist, leftover)
		if math.Abs(got-want) > 1e-3 {
			t.Fatalf("%s: distribution mean %v vs DP %v", c.g.Name(), got, want)
		}
	}
}

func TestCoverDistributionIsProbability(t *testing.T) {
	dist, leftover, err := CoverTimeDistribution(graph.Cycle(6), 0, 500)
	if err != nil {
		t.Fatal(err)
	}
	sum := leftover
	for t2, p := range dist {
		if p < 0 {
			t.Fatalf("negative mass at %d", t2)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("total mass %v", sum)
	}
	// Cover before n-1 steps is impossible.
	for t2 := 0; t2 < 5; t2++ {
		if dist[t2] != 0 {
			t.Fatalf("mass %v at impossible time %d", dist[t2], t2)
		}
	}
}

func TestCoverDistributionMinimumTimeExact(t *testing.T) {
	// On a path from an endpoint the minimum cover time is exactly n-1
	// (walk straight), with probability 2^{-(n-2)}·... the first step is
	// forced? No: from endpoint 0 the first step is deterministic to 1,
	// then each interior step goes right with probability 1/2:
	// Pr[τ = n-1] = (1/2)^{n-3}... verify n=4: straight cover 0→1→2→3 has
	// probability 1·(1/2)·(1/2) = 1/4.
	dist, _, err := CoverTimeDistribution(graph.Path(4), 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dist[3]-0.25) > 1e-12 {
		t.Fatalf("P[τ=3] = %v, want 0.25", dist[3])
	}
	if dist[4] != 0 {
		// Parity: covering a path of 4 from the end takes 3, 5, 7, ... steps.
		t.Fatalf("P[τ=4] = %v, want 0 by parity", dist[4])
	}
}

func TestCoverDistributionMatchesMonteCarlo(t *testing.T) {
	g := graph.Cycle(6)
	dist, leftover, err := CoverTimeDistribution(g, 0, 400)
	if err != nil {
		t.Fatal(err)
	}
	_ = leftover
	// Empirical tail at t=40 vs exact.
	exactTail := 1.0
	for t2 := 0; t2 <= 40; t2++ {
		exactTail -= dist[t2]
	}
	tail, err := walk.CoverTimeTail(g, 0, 40, walk.MCOptions{Trials: 4000, Seed: 3, MaxSteps: 10})
	if err != nil {
		t.Fatal(err)
	}
	// Binomial sd ≈ sqrt(p(1-p)/4000) ≈ 0.008.
	if math.Abs(tail-exactTail) > 0.04 {
		t.Fatalf("MC tail %v vs exact %v", tail, exactTail)
	}
}

func TestCoverDistributionQuantiles(t *testing.T) {
	dist, leftover, err := CoverTimeDistribution(graph.Complete(4, false), 0, 300)
	if err != nil {
		t.Fatal(err)
	}
	q50 := DistributionQuantile(dist, 0.5)
	q99 := DistributionQuantile(dist, 0.99)
	if q50 < 2 || q99 <= q50 {
		t.Fatalf("quantiles q50=%d q99=%d", q50, q99)
	}
	if DistributionQuantile(dist, 1-leftover/2) < 0 && leftover == 0 {
		t.Fatal("full mass quantile missing")
	}
	// Truncated distribution cannot reach the 100th percentile... unless
	// leftover is ~0; ask beyond the accumulated mass.
	short, lo, err := CoverTimeDistribution(graph.Cycle(8), 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if lo < 0.9 {
		t.Fatalf("cycle(8) mostly covered in 10 steps?! leftover=%v", lo)
	}
	if DistributionQuantile(short, 0.5) != -1 {
		t.Fatal("truncated distribution produced a bogus median")
	}
}

func TestCoverDistributionConcentrationContrast(t *testing.T) {
	// Aldous' threshold in exact form at tiny scale: the relative IQR of
	// the cover time on the complete graph (large C/hmax gap) is smaller
	// than on the cycle (gap O(1)).
	iqrOverMedian := func(g *graph.Graph) float64 {
		c, err := CoverTimeFrom(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		dist, leftover, err := CoverTimeDistribution(g, 0, int(c*50))
		if err != nil {
			t.Fatal(err)
		}
		if leftover > 1e-6 {
			t.Fatal("truncated")
		}
		q25 := DistributionQuantile(dist, 0.25)
		q50 := DistributionQuantile(dist, 0.5)
		q75 := DistributionQuantile(dist, 0.75)
		return float64(q75-q25) / float64(q50)
	}
	complete := iqrOverMedian(graph.Complete(10, false))
	cycle := iqrOverMedian(graph.Cycle(10))
	if complete >= cycle {
		t.Fatalf("complete IQR/median %v not tighter than cycle %v", complete, cycle)
	}
}

func TestCoverDistributionValidation(t *testing.T) {
	if _, _, err := CoverTimeDistribution(graph.Cycle(MaxExactCoverVertices+1), 0, 10); err == nil {
		t.Fatal("oversize accepted")
	}
	if _, _, err := CoverTimeDistribution(graph.Cycle(5), 0, -1); err == nil {
		t.Fatal("negative horizon accepted")
	}
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	if _, _, err := CoverTimeDistribution(b.Build("disc"), 0, 10); err == nil {
		t.Fatal("disconnected accepted")
	}
}
