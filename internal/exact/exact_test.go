package exact

import (
	"math"
	"testing"

	"manywalks/internal/graph"
	"manywalks/internal/stats"
)

func approx(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Fatalf("%s: got %v, want %v (tol %v)", msg, got, want, tol)
	}
}

func TestHittingTimesCompleteGraph(t *testing.T) {
	// K_n: h(u,v) = n-1 for all u != v.
	n := 8
	ht, err := ComputeHittingTimes(graph.Complete(n, false))
	if err != nil {
		t.Fatal(err)
	}
	for u := int32(0); u < int32(n); u++ {
		for v := int32(0); v < int32(n); v++ {
			if u == v {
				if ht.At(u, v) != 0 {
					t.Fatal("diagonal not zero")
				}
				continue
			}
			approx(t, ht.At(u, v), float64(n-1), 1e-8, "K_n hitting")
		}
	}
}

func TestHittingTimesCycle(t *testing.T) {
	// Cycle: h(u,v) = d(n-d) with d the cycle distance.
	n := 9
	ht, err := ComputeHittingTimes(graph.Cycle(n))
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u == v {
				continue
			}
			d := (v - u + n) % n
			if d > n-d {
				d = n - d
			}
			want := float64(d * (n - d))
			approx(t, ht.At(int32(u), int32(v)), want, 1e-8, "cycle hitting")
		}
	}
	hmax, _, _ := ht.Max()
	approx(t, hmax, float64((n/2)*(n-n/2)), 1e-8, "cycle hmax")
	hmin, _, _ := ht.Min()
	approx(t, hmin, float64(n-1), 1e-8, "cycle hmin") // d=1: 1·(n-1)
}

func TestHittingTimesPathEndpoints(t *testing.T) {
	// Path 0..n-1: h(0, n-1) = (n-1)².
	n := 7
	ht, err := ComputeHittingTimes(graph.Path(n))
	if err != nil {
		t.Fatal(err)
	}
	approx(t, ht.At(0, int32(n-1)), float64((n-1)*(n-1)), 1e-8, "path endpoint hitting")
	// Nearest-neighbor hitting on the path: h(i, i+1) = 2i+1.
	for i := 0; i < n-1; i++ {
		approx(t, ht.At(int32(i), int32(i+1)), float64(2*i+1), 1e-8, "path step hitting")
	}
}

func TestHittingTimesStarAndBipartite(t *testing.T) {
	// Star with center 0 and n-1 leaves: h(leaf, center) = 1... no: from a
	// leaf the walk moves to the center deterministically, so exactly 1.
	// h(center, leaf) = 2(n-1) - 1.
	n := 6
	ht, err := ComputeHittingTimes(graph.Star(n))
	if err != nil {
		t.Fatal(err)
	}
	approx(t, ht.At(1, 0), 1, 1e-8, "star leaf->center")
	approx(t, ht.At(0, 1), float64(2*(n-1)-1), 1e-8, "star center->leaf")
	// Leaf to other leaf: 1 + h(center, leaf) = 2(n-1).
	approx(t, ht.At(1, 2), float64(2*(n-1)), 1e-8, "star leaf->leaf")
}

func TestHittingRequiresConnected(t *testing.T) {
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	if _, err := ComputeHittingTimes(b.Build("disc")); err == nil {
		t.Fatal("disconnected graph accepted")
	}
}

func TestCommuteMatchesEffectiveResistance(t *testing.T) {
	// h(u,v) + h(v,u) = 2m·R_eff(u,v) for loop-free graphs.
	graphs := []*graph.Graph{
		graph.Cycle(7),
		graph.Path(6),
		graph.Complete(6, false),
		graph.Torus2D(3),
		graph.Star(8),
		graph.Lollipop(5, 3),
	}
	for _, g := range graphs {
		ht, err := ComputeHittingTimes(g)
		if err != nil {
			t.Fatalf("%s: %v", g.Name(), err)
		}
		m := float64(g.M())
		pairs := [][2]int32{{0, 1}, {0, int32(g.N() - 1)}, {1, int32(g.N() / 2)}}
		for _, p := range pairs {
			u, v := p[0], p[1]
			if u == v {
				continue
			}
			r, err := EffectiveResistance(g, u, v)
			if err != nil {
				t.Fatal(err)
			}
			approx(t, ht.CommuteTime(u, v), 2*m*r, 1e-6,
				g.Name()+" commute identity")
		}
	}
}

func TestEffectiveResistanceSeriesParallel(t *testing.T) {
	// Path of 3 edges: R(0,3) = 3. Cycle of 4: R(0,2) = parallel of 2+2 = 1.
	r1, err := EffectiveResistance(graph.Path(4), 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, r1, 3, 1e-9, "series resistance")
	r2, err := EffectiveResistance(graph.Cycle(4), 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, r2, 1, 1e-9, "parallel resistance")
	r3, err := EffectiveResistance(graph.Cycle(4), 0, 0)
	if err != nil || r3 != 0 {
		t.Fatal("self resistance must be 0")
	}
}

func TestExactCoverTimeKnownValues(t *testing.T) {
	// C(K_n) = (n-1)·H_{n-1} (coupon collector).
	for _, n := range []int{3, 4, 5, 6} {
		c, err := CoverTimeFrom(graph.Complete(n, false), 0)
		if err != nil {
			t.Fatal(err)
		}
		want := float64(n-1) * stats.HarmonicNumber(n-1)
		approx(t, c, want, 1e-8, "complete cover")
	}
	// C(cycle_n) = n(n-1)/2 from any start.
	for _, n := range []int{3, 4, 5, 8} {
		c, err := CoverTimeFrom(graph.Cycle(n), 0)
		if err != nil {
			t.Fatal(err)
		}
		approx(t, c, float64(n*(n-1))/2, 1e-8, "cycle cover")
	}
	// Path from endpoint: (n-1)².
	for _, n := range []int{2, 3, 5, 7} {
		c, err := CoverTimeFrom(graph.Path(n), 0)
		if err != nil {
			t.Fatal(err)
		}
		approx(t, c, float64((n-1)*(n-1)), 1e-8, "path cover from end")
	}
}

func TestCoverTimeMaxOverStarts(t *testing.T) {
	// On a path, covering from the middle beats... is harder than from an
	// end? From the middle the walk must reach both endpoints; C(G) is the
	// max over starts and must be >= the endpoint value.
	g := graph.Path(6)
	c, err := CoverTime(g)
	if err != nil {
		t.Fatal(err)
	}
	end, _ := CoverTimeFrom(g, 0)
	if c < end-1e-12 {
		t.Fatalf("max cover %v < endpoint cover %v", c, end)
	}
}

func TestCoverTimeRejectsBigGraphs(t *testing.T) {
	if _, err := CoverTimeFrom(graph.Cycle(MaxExactCoverVertices+1), 0); err == nil {
		t.Fatal("oversized graph accepted")
	}
}

func TestMatthewsSandwichExact(t *testing.T) {
	graphs := []*graph.Graph{
		graph.Complete(6, false),
		graph.Cycle(8),
		graph.Path(6),
		graph.Star(7),
		graph.Torus2D(3),
		graph.Lollipop(5, 3),
	}
	for _, g := range graphs {
		ht, err := ComputeHittingTimes(g)
		if err != nil {
			t.Fatal(err)
		}
		lower, upper := MatthewsBounds(ht)
		c, err := CoverTime(g)
		if err != nil {
			t.Fatal(err)
		}
		if c < lower-1e-6 || c > upper+1e-6 {
			t.Fatalf("%s: C=%v outside Matthews [%v, %v]", g.Name(), c, lower, upper)
		}
	}
}

func TestAleliunasBoundDominatesExactCover(t *testing.T) {
	// C(G) ≤ 2m(n−1) universally (paper ref [5]); exact cover times of
	// assorted tiny graphs must respect it, including the lollipop that
	// nearly saturates the cubic order.
	graphs := []*graph.Graph{
		graph.Complete(6, false),
		graph.Cycle(10),
		graph.Path(8),
		graph.Star(7),
		graph.Lollipop(6, 6),
		graph.Wheel(8),
	}
	for _, g := range graphs {
		c, err := CoverTime(g)
		if err != nil {
			t.Fatal(err)
		}
		bound := AleliunasBound(g)
		if c > bound {
			t.Fatalf("%s: C=%v exceeds Aleliunas bound %v", g.Name(), c, bound)
		}
	}
}

func TestMatthewsTightOnComplete(t *testing.T) {
	// For K_n the lower bound hmin·H_{n-1} equals C exactly.
	g := graph.Complete(7, false)
	ht, _ := ComputeHittingTimes(g)
	lower, _ := MatthewsBounds(ht)
	c, _ := CoverTime(g)
	approx(t, c, lower, 1e-8, "complete Matthews equality")
}

func TestBabyMatthewsBoundDominatesExactKCover(t *testing.T) {
	// On tiny graphs where we can compute C^k exactly, Theorem 13's bound
	// (e/k)·hmax·Hn must dominate it for k ≤ log n... log n < 2 here, but
	// the bound in fact holds with room for the k used; this validates the
	// formula's direction on honest exact values.
	g := graph.Complete(5, false)
	ht, _ := ComputeHittingTimes(g)
	for k := 1; k <= 3; k++ {
		ck, err := KCoverTimeFrom(g, 0, k)
		if err != nil {
			t.Fatal(err)
		}
		bound := BabyMatthewsBound(ht, k)
		if ck > bound {
			t.Fatalf("k=%d: exact C^k=%v exceeds Baby Matthews %v", k, ck, bound)
		}
	}
}

func TestKCoverReducesToSingleWalk(t *testing.T) {
	g := graph.Cycle(5)
	c1, err := CoverTimeFrom(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	ck, err := KCoverTimeFrom(g, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, ck, c1, 1e-9, "k=1 equals single walk")
}

func TestKCoverMonotoneInK(t *testing.T) {
	graphs := []*graph.Graph{
		graph.Cycle(5),
		graph.Complete(4, false),
		graph.Path(4),
		graph.Star(5),
	}
	for _, g := range graphs {
		prev := math.Inf(1)
		for k := 1; k <= 3; k++ {
			ck, err := KCoverTimeFrom(g, 0, k)
			if err != nil {
				t.Fatal(err)
			}
			if ck > prev+1e-9 {
				t.Fatalf("%s: C^%d=%v > C^%d=%v", g.Name(), k, ck, k-1, prev)
			}
			prev = ck
		}
	}
}

func TestKCoverCompleteCouponCollector(t *testing.T) {
	// On K_n with self-loops each step of each walker is a uniform coupon.
	// With k walkers, C^k should be close to C/k (Lemma 12), up to the
	// rounding of partial rounds: C^k >= C/k always in the exact model.
	g := graph.Complete(4, true)
	c1, err := KCoverTimeFrom(g, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := KCoverTimeFrom(g, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	speedup := c1 / c2
	if speedup < 1.5 || speedup > 2.3 {
		t.Fatalf("K4+loops speed-up at k=2 is %v, expected near 2", speedup)
	}
}

func TestKCoverRejectsOversize(t *testing.T) {
	if _, err := KCoverTimeFrom(graph.Cycle(17), 0, 2); err == nil {
		t.Fatal("n > 16 accepted")
	}
	if _, err := KCoverTimeFrom(graph.Cycle(8), 0, 12); err == nil {
		t.Fatal("n^k overflow accepted")
	}
	if _, err := KCoverTimeFrom(graph.Cycle(8), 0, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestBarbellCoverQuadraticShape(t *testing.T) {
	// Exact cover times from the barbell center must grow much faster than
	// linearly: C ≈ Θ(n²) per Theorem 7. Compare n=9 and n=13 against a
	// quadratic reference: C(13)/C(9) should be near (13/9)² ≈ 2.09, far
	// above the linear ratio 1.44.
	c9Graph, center9 := graph.Barbell(9)
	c13Graph, center13 := graph.Barbell(13)
	c9, err := CoverTimeFrom(c9Graph, center9)
	if err != nil {
		t.Fatal(err)
	}
	c13, err := CoverTimeFrom(c13Graph, center13)
	if err != nil {
		t.Fatal(err)
	}
	ratio := c13 / c9
	if ratio < 1.6 {
		t.Fatalf("barbell growth ratio %v looks sub-quadratic", ratio)
	}
}
