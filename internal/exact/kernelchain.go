package exact

import (
	"fmt"
	"math/bits"

	"manywalks/internal/linalg"
)

// This file generalizes the exact cover machinery from the uniform walk to
// arbitrary vertex-space chains. The chain arrives through the small
// StochasticMatrix interface — markov.Chain (and so markov.ChainForKernel's
// output for any kernel) satisfies it structurally — which keeps this
// package free of a markov dependency while letting every kernel's Monte
// Carlo estimates be anchored to the exact path.

// StochasticMatrix is the read-only view of a row-stochastic transition
// matrix: P(i, j) = Pr[next = j | current = i] over N() states.
// markov.Chain implements it.
type StochasticMatrix interface {
	N() int
	P(i, j int) float64
}

// CoverTimeFromChain returns the exact expected cover time of chain c
// started at src, by the same decreasing-popcount subset DP as
// CoverTimeFrom:
//
//	E[v,S] = 1 + Σ_u P(v,u)·E[u, S∪{u}],   E[·, V] = 0.
//
// The chain must let the walk reach every state from every state (the
// per-subset systems are singular otherwise). Cost is Σ_S |S|³; callers
// must keep c.N() ≤ MaxExactCoverVertices.
func CoverTimeFromChain(c StochasticMatrix, src int32) (float64, error) {
	n := c.N()
	if n > MaxExactCoverVertices {
		return 0, fmt.Errorf("exact: cover DP limited to %d states, got %d", MaxExactCoverVertices, n)
	}
	if src < 0 || int(src) >= n {
		return 0, fmt.Errorf("exact: start %d out of range", src)
	}
	full := uint32(1)<<uint(n) - 1
	expect := make([]float64, (int(full)+1)*n)
	byCount := make([][]uint32, n+1)
	for s := uint32(1); s <= full; s++ {
		byCount[bits.OnesCount32(s)] = append(byCount[bits.OnesCount32(s)], s)
	}
	for count := n - 1; count >= 1; count-- {
		for _, s := range byCount[count] {
			if err := solveCoverSetChain(c, s, expect); err != nil {
				return 0, err
			}
		}
	}
	start := uint32(1) << uint(src)
	return expect[int(start)*n+int(src)], nil
}

// solveCoverSetChain fills expect[S*n + v] for all v in S under chain c,
// assuming all strict supersets of S are already solved.
func solveCoverSetChain(c StochasticMatrix, s uint32, expect []float64) error {
	n := c.N()
	var members []int32
	idx := make(map[int32]int)
	for v := int32(0); v < int32(n); v++ {
		if s&(1<<uint(v)) != 0 {
			idx[v] = len(members)
			members = append(members, v)
		}
	}
	a := linalg.Identity(len(members))
	b := make([]float64, len(members))
	for i, v := range members {
		b[i] = 1
		for u := 0; u < n; u++ {
			p := c.P(int(v), u)
			if p == 0 {
				continue
			}
			if s&(1<<uint(u)) != 0 {
				a.Add(i, idx[int32(u)], -p)
			} else {
				sup := s | 1<<uint(u)
				b[i] += p * expect[int(sup)*n+u]
			}
		}
	}
	x, err := linalg.SolveSystem(a, b)
	if err != nil {
		return fmt.Errorf("exact: chain cover DP singular for set %b (is the chain irreducible?): %w", s, err)
	}
	for i, v := range members {
		expect[int(s)*n+int(v)] = x[i]
	}
	return nil
}
