package exact

import (
	"fmt"
	"math/bits"

	"manywalks/internal/graph"
	"manywalks/internal/linalg"
)

// MaxExactCoverVertices bounds the exhaustive cover-time DP: the state space
// is 2^n sets, so the computation is restricted to small n.
const MaxExactCoverVertices = 18

// CoverTimeFrom returns the exact expected cover time of a single random
// walk started at src, by solving, for every visited-set S in decreasing
// popcount order, the linear system over states (v ∈ S):
//
//	E[v,S] = 1 + (1/deg v) Σ_{u∈N(v)} E[u, S∪{u}]
//
// where E[·, V] = 0. Cost is Σ_S |S|³ ≈ 2^n·n³; callers must keep
// n ≤ MaxExactCoverVertices.
func CoverTimeFrom(g *graph.Graph, src int32) (float64, error) {
	n := g.N()
	if n > MaxExactCoverVertices {
		return 0, fmt.Errorf("exact: cover DP limited to %d vertices, got %d", MaxExactCoverVertices, n)
	}
	if !g.IsConnected() {
		return 0, fmt.Errorf("exact: cover time requires a connected graph")
	}
	full := uint32(1)<<uint(n) - 1
	// expect[S*n + v] = E[v,S] for v ∈ S. Sets processed from full downward.
	expect := make([]float64, (int(full)+1)*n)

	// Enumerate sets grouped by descending popcount.
	byCount := make([][]uint32, n+1)
	for s := uint32(1); s <= full; s++ {
		c := bits.OnesCount32(s)
		byCount[c] = append(byCount[c], s)
	}
	for count := n - 1; count >= 1; count-- {
		for _, s := range byCount[count] {
			solveCoverSet(g, s, expect)
		}
	}
	start := uint32(1) << uint(src)
	return expect[int(start)*n+int(src)], nil
}

// solveCoverSet fills expect[S*n + v] for all v in S, assuming all strict
// supersets of S are already solved.
func solveCoverSet(g *graph.Graph, s uint32, expect []float64) {
	n := g.N()
	// Collect member vertices and their within-set index.
	var members []int32
	idx := make(map[int32]int)
	for v := int32(0); v < int32(n); v++ {
		if s&(1<<uint(v)) != 0 {
			idx[v] = len(members)
			members = append(members, v)
		}
	}
	k := len(members)
	a := linalg.Identity(k)
	b := make([]float64, k)
	for i, v := range members {
		d := float64(g.Degree(v))
		b[i] = 1
		for _, u := range g.Neighbors(v) {
			if s&(1<<uint(u)) != 0 {
				// Stays within S: coefficient couples into the system.
				a.Add(i, idx[u], -1/d)
			} else {
				// Leaves S to the known superset value.
				sup := s | 1<<uint(u)
				b[i] += expect[int(sup)*n+int(u)] / d
			}
		}
	}
	x, err := linalg.SolveSystem(a, b)
	if err != nil {
		// The system I - Q is nonsingular for any proper subset of a
		// connected graph; failure indicates a programming error.
		panic(fmt.Sprintf("exact: cover DP singular system for set %b: %v", s, err))
	}
	for i, v := range members {
		expect[int(s)*n+int(v)] = x[i]
	}
}

// CoverTime returns max over starting vertices of the exact expected cover
// time — the paper's C(G) — for tiny graphs.
func CoverTime(g *graph.Graph) (float64, error) {
	best := 0.0
	for v := int32(0); v < int32(g.N()); v++ {
		c, err := CoverTimeFrom(g, v)
		if err != nil {
			return 0, err
		}
		if c > best {
			best = c
		}
	}
	return best, nil
}

// KCoverTimeFrom returns the exact expected k-walk cover time from src for
// very small graphs and k: the expected number of synchronized rounds until
// k independent walkers started at src have jointly visited every vertex.
// State space is n^k positions × 2^n sets; keep n^k·2^n small (n ≤ 6, k ≤ 3
// in tests). All k tokens move in every round (the paper's parallel model).
func KCoverTimeFrom(g *graph.Graph, src int32, k int) (float64, error) {
	n := g.N()
	if k < 1 {
		return 0, fmt.Errorf("exact: k must be >= 1")
	}
	if k == 1 {
		return CoverTimeFrom(g, src)
	}
	statesPerSet := 1
	for i := 0; i < k; i++ {
		statesPerSet *= n
		if statesPerSet > 1<<15 {
			return 0, fmt.Errorf("exact: n^k too large for the k-cover DP")
		}
	}
	if n > 16 {
		return 0, fmt.Errorf("exact: k-cover DP limited to 16 vertices")
	}
	if !g.IsConnected() {
		return 0, fmt.Errorf("exact: cover time requires a connected graph")
	}
	full := uint32(1)<<uint(n) - 1

	// Position tuples are mixed-radix base-n numbers of k digits.
	decode := func(code int) []int32 {
		out := make([]int32, k)
		for i := 0; i < k; i++ {
			out[i] = int32(code % n)
			code /= n
		}
		return out
	}
	// For each set in decreasing popcount order, solve the coupled system
	// over position tuples whose members all lie in the set. Transitions
	// where any token exits the set land in a strictly larger (solved) set.
	expect := make(map[uint64]float64) // key: set<<32 | code
	key := func(s uint32, code int) uint64 { return uint64(s)<<32 | uint64(code) }

	byCount := make([][]uint32, n+1)
	for s := uint32(1); s <= full; s++ {
		byCount[bits.OnesCount32(s)] = append(byCount[bits.OnesCount32(s)], s)
	}

	// Enumerate all joint moves of the k tokens from a tuple.
	type move struct {
		code int     // resulting position code
		set  uint32  // bits newly visited
		p    float64 // probability
	}
	jointMoves := func(tuple []int32) []move {
		moves := []move{{code: 0, set: 0, p: 1}}
		for i := 0; i < k; i++ {
			v := tuple[i]
			nb := g.Neighbors(v)
			pStep := 1 / float64(len(nb))
			radix := 1
			for j := 0; j < i; j++ {
				radix *= n
			}
			next := make([]move, 0, len(moves)*len(nb))
			for _, m := range moves {
				for _, u := range nb {
					next = append(next, move{
						code: m.code + int(u)*radix,
						set:  m.set | 1<<uint(u),
						p:    m.p * pStep,
					})
				}
			}
			moves = next
		}
		return moves
	}

	for count := n - 1; count >= 1; count-- {
		for _, s := range byCount[count] {
			// Enumerate valid tuples (all members in s).
			var codes []int
			for code := 0; code < statesPerSet; code++ {
				tuple := decode(code)
				ok := true
				for _, v := range tuple {
					if s&(1<<uint(v)) == 0 {
						ok = false
						break
					}
				}
				if ok {
					codes = append(codes, code)
				}
			}
			codeIdx := make(map[int]int, len(codes))
			for i, c := range codes {
				codeIdx[c] = i
			}
			a := linalg.Identity(len(codes))
			b := make([]float64, len(codes))
			for i, c := range codes {
				b[i] = 1
				for _, mv := range jointMoves(decode(c)) {
					ns := s | mv.set
					if ns == s {
						a.Add(i, codeIdx[mv.code], -mv.p)
					} else if ns == full {
						// Absorbed: contributes nothing beyond the step.
					} else {
						b[i] += mv.p * expect[key(ns, mv.code)]
					}
				}
			}
			x, err := linalg.SolveSystem(a, b)
			if err != nil {
				return 0, fmt.Errorf("exact: k-cover DP singular at set %b: %w", s, err)
			}
			for i, c := range codes {
				expect[key(s, c)] = x[i]
			}
		}
	}
	startCode := 0
	radix := 1
	for i := 0; i < k; i++ {
		startCode += int(src) * radix
		radix *= n
	}
	return expect[key(1<<uint(src), startCode)], nil
}
