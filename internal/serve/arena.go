package serve

import (
	"manywalks/internal/walk"
)

// passArena is the reusable scratch of one grouped dispatch pass: the live
// request set, the flattened lane seeds and placements, the spec's start
// template, the caller-owned grouped result, and one persistent observer
// of each kind. Arenas live in the server's sync.Pool, so a steady-state
// dispatch tick — warm arena, warm engine cache — performs zero
// allocations per pass: every buffer here reuses capacity, the observers
// reuse their lane scratch and per-trial outputs through bindGroup, and
// RunGroupedInto writes into the arena's result (the allocation gate in
// alloc_test.go pins this at exactly 0 allocs/pass). Answers never alias
// arena memory: QueryResult and Estimate are values, so delivery outlives
// the arena's return to the pool.
type passArena struct {
	live       []*pending
	seeds      []uint64
	laneStarts [][]int32 // lane -> its request's placement
	starts     []int32   // GroupedRunSpec.Starts template, len k
	res        walk.GroupedResult

	hit  *walk.GroupHitObserver
	cov  *walk.GroupCoverObserver
	meet *walk.GroupCollisionObserver
	obs  []walk.GroupObserver // len 1; forwarded to avoid a variadic alloc

	startsFor func(trial int, dst []int32) // closes over the arena, built once
}

// newPassArena builds an arena with its observers and its StartsFor
// closure constructed once — the closure reads laneStarts through the
// arena pointer, so refilling the slice per pass never re-creates it.
func newPassArena() *passArena {
	a := &passArena{
		hit:  walk.NewGroupHitObserver(nil),
		cov:  walk.NewGroupCoverObserver(0),
		meet: walk.NewGroupCollisionObserver(false),
		obs:  make([]walk.GroupObserver, 1),
	}
	a.startsFor = func(trial int, dst []int32) { copy(dst, a.laneStarts[trial]) }
	return a
}

// getArena borrows a warm arena (or builds the pool's first).
func (s *Server) getArena() *passArena {
	if a, _ := s.arenas.Get().(*passArena); a != nil {
		return a
	}
	return newPassArena()
}

// putArena returns an arena to the pool with its request and target
// references dropped, so a parked arena never pins a client's pending
// struct, placement slices, or a bucket's marked set. Capacities — and the
// observers' internal state — are kept: that retained state is exactly the
// warmth the zero-allocation contract depends on, and it is inert between
// passes because bindGroup/startLane reinitialize every lane the next pass
// touches (the arena-reuse regression test pins that no observer state
// leaks across ticks).
func (s *Server) putArena(a *passArena) {
	clear(a.live)
	a.live = a.live[:0]
	clear(a.laneStarts)
	a.laneStarts = a.laneStarts[:0]
	a.seeds = a.seeds[:0]
	a.hit.Marked = nil
	a.obs[0] = nil
	s.arenas.Put(a)
}
