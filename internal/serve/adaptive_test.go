package serve

import (
	"context"
	"fmt"
	"math"
	"sync"
	"testing"

	"manywalks/internal/walk"
)

// serveAdaptivePrecision is the precision request the adaptive serving
// tests use: loose enough that every shape converges well inside the trial
// budget, with MinTrials above one wave so every run spans multiple waves
// and actually exercises the dispatcher's fold-and-requeue path.
func serveAdaptivePrecision() walk.Precision {
	return walk.Precision{RTol: 0.2, Confidence: 0.95, MinTrials: 24, Wave: 16}
}

const serveAdaptiveBudget = 1024

// TestServedAdaptiveMatchesStandalone pins the adaptive serving contract:
// a request with Precision set, dispatched wave-by-wave through coalesced
// grouped passes, answers bit-for-bit what the standalone walk estimator
// returns for the same Precision — same stop trial, same wave count, same
// summary — at every server worker count, with mixed shapes in flight.
func TestServedAdaptiveMatchesStandalone(t *testing.T) {
	for _, workers := range serveWorkerGrid() {
		t.Run(fmt.Sprintf("w%d", workers), func(t *testing.T) {
			testServedAdaptiveMatchesStandalone(t, workers)
		})
	}
}

func testServedAdaptiveMatchesStandalone(t *testing.T, workers int) {
	s := newTestServer(t, Options{Workers: workers})
	graphs := testGraphs()
	prec := serveAdaptivePrecision()
	opts := func(seed uint64) walk.MCOptions {
		return walk.MCOptions{Trials: serveAdaptiveBudget, Workers: 1, Seed: seed,
			MaxSteps: 1 << 16, Precision: prec}
	}
	type job struct {
		name string
		run  func() (walk.Estimate, error)
		want walk.Estimate
	}
	var jobs []job
	for _, gid := range []string{"expander64", "complete16"} {
		g := graphs[gid]
		n := int32(g.N())
		for seed := uint64(1); seed <= 3; seed++ {
			seed, gid := seed, gid
			wantHit, err := walk.EstimateHittingTime(g, 0, n/2, opts(seed))
			if err != nil {
				t.Fatal(err)
			}
			jobs = append(jobs, job{
				name: fmt.Sprintf("hit/%s/%d", gid, seed),
				run: func() (walk.Estimate, error) {
					return s.HittingTime(context.Background(), HittingTimeRequest{
						Graph: gid, Start: 0, Target: n / 2, Trials: serveAdaptiveBudget,
						Seed: seed, MaxSteps: 1 << 16, Precision: prec,
					})
				},
				want: wantHit,
			})
			wantCover, err := walk.EstimateKCoverTime(g, 1, 4, opts(seed))
			if err != nil {
				t.Fatal(err)
			}
			jobs = append(jobs, job{
				name: fmt.Sprintf("cover/%s/%d", gid, seed),
				run: func() (walk.Estimate, error) {
					return s.CoverTime(context.Background(), CoverTimeRequest{
						Graph: gid, Start: 1, K: 4, Trials: serveAdaptiveBudget,
						Seed: seed, MaxSteps: 1 << 16, Precision: prec,
					})
				},
				want: wantCover,
			})
			starts := []int32{0, n / 2}
			wantMeet, err := walk.EstimateKMeetingTime(g, starts, opts(seed))
			if err != nil {
				t.Fatal(err)
			}
			jobs = append(jobs, job{
				name: fmt.Sprintf("meet/%s/%d", gid, seed),
				run: func() (walk.Estimate, error) {
					return s.MeetingTime(context.Background(), MeetingTimeRequest{
						Graph: gid, Starts: starts, Trials: serveAdaptiveBudget,
						Seed: seed, MaxSteps: 1 << 16, Precision: prec,
					})
				},
				want: wantMeet,
			})
		}
	}
	got := make([]walk.Estimate, len(jobs))
	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	for i := range jobs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], errs[i] = jobs[i].run()
		}(i)
	}
	wg.Wait()
	for i, j := range jobs {
		if errs[i] != nil {
			t.Fatalf("%s: %v", j.name, errs[i])
		}
		if !j.want.Converged || j.want.Waves < 2 {
			t.Fatalf("%s: standalone reference did not run multiple adaptive waves: %+v", j.name, j.want)
		}
		if j.want.Summary.N >= serveAdaptiveBudget {
			t.Fatalf("%s: standalone reference never stopped early (n=%d)", j.name, j.want.Summary.N)
		}
		if got[i] != j.want {
			t.Fatalf("%s: served %+v != standalone %+v", j.name, got[i], j.want)
		}
	}
}

// TestServedAdaptiveNaiveMatchesCoalesced pins the NoCoalesce adaptive path
// against the coalesced one: both share walk.AdaptiveState, so they must
// stop at the same trial and answer identically.
func TestServedAdaptiveNaiveMatchesCoalesced(t *testing.T) {
	co := newTestServer(t, Options{Workers: 2})
	na := newTestServer(t, Options{NoCoalesce: true})
	prec := serveAdaptivePrecision()
	req := CoverTimeRequest{Graph: "expander64", Start: 3, K: 4, Trials: serveAdaptiveBudget,
		Seed: 9, MaxSteps: 1 << 16, Precision: prec}
	a, err := co.CoverTime(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	b, err := na.CoverTime(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("adaptive cover: coalesced %+v != naive %+v", a, b)
	}
	if st := na.Stats(); st.Passes != 0 || st.Naive != st.Requests {
		t.Fatalf("naive server ran grouped passes: %+v", st)
	}
	hreq := HittingTimeRequest{Graph: "complete16", Start: 0, Target: 8, Trials: serveAdaptiveBudget,
		Seed: 5, MaxSteps: 1 << 16, Precision: prec}
	a, err = co.HittingTime(context.Background(), hreq)
	if err != nil {
		t.Fatal(err)
	}
	b, err = na.HittingTime(context.Background(), hreq)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("adaptive hitting: coalesced %+v != naive %+v", a, b)
	}
}

// TestServedAdaptiveProgressStream checks the OnProgress wave stream a
// served adaptive request emits: contiguous wave indices, strictly growing
// trial counts, Done exactly on the last wave, and a final snapshot that
// agrees with the answer.
func TestServedAdaptiveProgressStream(t *testing.T) {
	for _, noCoalesce := range []bool{false, true} {
		t.Run(fmt.Sprintf("noCoalesce=%v", noCoalesce), func(t *testing.T) {
			s := newTestServer(t, Options{NoCoalesce: noCoalesce})
			var mu sync.Mutex
			var waves []walk.WaveStat
			est, err := s.HittingTime(context.Background(), HittingTimeRequest{
				Graph: "complete16", Start: 0, Target: 8, Trials: serveAdaptiveBudget,
				Seed: 11, MaxSteps: 1 << 16, Precision: serveAdaptivePrecision(),
				OnProgress: func(ws walk.WaveStat) {
					mu.Lock()
					waves = append(waves, ws)
					mu.Unlock()
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			mu.Lock()
			defer mu.Unlock()
			if len(waves) != est.Waves || len(waves) < 2 {
				t.Fatalf("got %d wave snapshots, estimate says %d waves", len(waves), est.Waves)
			}
			prevTrials := 0
			for i, ws := range waves {
				if ws.Wave != i {
					t.Fatalf("wave %d has index %d", i, ws.Wave)
				}
				if ws.Trials <= prevTrials {
					t.Fatalf("wave %d trials %d not increasing past %d", i, ws.Trials, prevTrials)
				}
				prevTrials = ws.Trials
				if got, want := ws.Done, i == len(waves)-1; got != want {
					t.Fatalf("wave %d Done=%v, want %v", i, got, want)
				}
			}
			last := waves[len(waves)-1]
			// The wave stream's running mean comes from the one-pass Welford
			// accumulator, the answer's from the two-pass Summarize — both
			// deterministic, but a few ULPs apart on the same samples.
			if last.Trials != est.Summary.N || last.Converged != est.Converged ||
				math.Abs(last.Mean-est.Summary.Mean) > 1e-9*math.Abs(est.Summary.Mean) {
				t.Fatalf("final wave %+v disagrees with estimate %+v", last, est)
			}
		})
	}
}

// TestServedAdaptiveSurvivesClose pins the drain contract: a server closed
// while an adaptive run is mid-wave must still dispatch the remaining
// waves — requeued by completing passes during the drain — and deliver the
// same bit-for-bit answer, rather than strand the client.
func TestServedAdaptiveSurvivesClose(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1})
	prec := serveAdaptivePrecision()
	want, err := walk.EstimateHittingTime(testGraphs()["expander64"], 0, 32,
		walk.MCOptions{Trials: serveAdaptiveBudget, Workers: 1, Seed: 21, MaxSteps: 1 << 16, Precision: prec})
	if err != nil {
		t.Fatal(err)
	}
	if want.Waves < 2 {
		t.Fatalf("reference run must span multiple waves, got %+v", want)
	}
	firstWave := make(chan struct{})
	var once sync.Once
	type out struct {
		est walk.Estimate
		err error
	}
	donec := make(chan out, 1)
	go func() {
		est, err := s.HittingTime(context.Background(), HittingTimeRequest{
			Graph: "expander64", Start: 0, Target: 32, Trials: serveAdaptiveBudget,
			Seed: 21, MaxSteps: 1 << 16, Precision: prec,
			OnProgress: func(walk.WaveStat) { once.Do(func() { close(firstWave) }) },
		})
		donec <- out{est, err}
	}()
	<-firstWave // at least one wave folded, more still to dispatch
	s.Close()   // must drain the requeued waves before returning
	got := <-donec
	if got.err != nil {
		t.Fatal(got.err)
	}
	if got.est != want {
		t.Fatalf("after close: served %+v != standalone %+v", got.est, want)
	}
}
