package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"manywalks/internal/graph"
	"manywalks/internal/rng"
)

// TestConcurrentMixedClients hammers one coalesced server with many
// concurrent clients issuing mixed-shape requests — walk queries, hitting,
// cover, and meeting estimates across several graphs and kernels — while
// some clients cancel mid-batch and the engine cache (capacity 2) churns
// through more shapes than it holds. Run under -race this is the
// coalescer's data-race gate; the assertions also pin that every answered
// request is deterministic across the two identical passes.
func TestConcurrentMixedClients(t *testing.T) {
	run := func() map[string]string {
		s := NewServer(Options{EngineCache: 2, Tick: 100 * time.Microsecond})
		defer s.Close()
		for id, g := range map[string]*graph.Graph{
			"expander64": graph.MargulisExpander(8),
			"cycle32":    graph.Cycle(32),
			"complete16": graph.Complete(16, false),
			"torus64":    graph.Torus2D(8),
		} {
			if err := s.RegisterGraph(id, g); err != nil {
				t.Fatal(err)
			}
		}
		ids := []string{"expander64", "cycle32", "complete16", "torus64"}
		answers := make(map[string]string)
		var mu sync.Mutex
		record := func(key, val string) {
			mu.Lock()
			answers[key] = val
			mu.Unlock()
		}
		const clients = 24
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				r := rng.New(uint64(c) + 1)
				for i := 0; i < 12; i++ {
					gid := ids[r.Intn(len(ids))]
					ctx := context.Background()
					cancelled := false
					if r.Intn(6) == 0 {
						// Cancel mid-batch: the deadline lands inside the
						// gather window or the pass.
						var cancel context.CancelFunc
						ctx, cancel = context.WithTimeout(ctx, time.Duration(r.Intn(200))*time.Microsecond)
						defer cancel()
						cancelled = true
					}
					seed := uint64(c*1000 + i)
					key := fmtKey(gid, c, i)
					switch r.Intn(4) {
					case 0:
						a, err := s.WalkQuery(ctx, WalkQueryRequest{Graph: gid, Origin: 0, K: 2, TTL: 2048, Targets: []int32{9}, Seed: seed})
						if err == nil {
							record(key, fmtAns(a.Found, int64(a.Rounds), a.Messages))
						} else if !cancelled || !isCtxErr(err) {
							t.Errorf("walk query: %v", err)
						}
					case 1:
						a, err := s.HittingTime(ctx, HittingTimeRequest{Graph: gid, Start: 0, Target: 9, Trials: 6, Seed: seed, MaxSteps: 1 << 14})
						if err == nil {
							record(key, fmtEst(a.Summary.Mean, a.Truncated))
						} else if !cancelled || !isCtxErr(err) {
							t.Errorf("hitting: %v", err)
						}
					case 2:
						a, err := s.CoverTime(ctx, CoverTimeRequest{Graph: gid, Start: 0, K: 4, Trials: 6, Seed: seed, MaxSteps: 1 << 16})
						if err == nil {
							record(key, fmtEst(a.Summary.Mean, a.Truncated))
						} else if !cancelled || !isCtxErr(err) {
							t.Errorf("cover: %v", err)
						}
					case 3:
						a, err := s.MeetingTime(ctx, MeetingTimeRequest{Graph: gid, Starts: []int32{0, 5}, Trials: 6, Seed: seed, MaxSteps: 1 << 14})
						if err == nil {
							record(key, fmtEst(a.Summary.Mean, a.Truncated))
						} else if !cancelled || !isCtxErr(err) {
							t.Errorf("meeting: %v", err)
						}
					}
				}
			}(c)
		}
		wg.Wait()
		return answers
	}
	first := run()
	second := run()
	// Cancellation makes the answered *set* differ between passes, but any
	// request answered in both must have answered identically — the
	// determinism contract under concurrency, eviction, and batching.
	both := 0
	for key, val := range first {
		if other, ok := second[key]; ok {
			both++
			if other != val {
				t.Fatalf("request %s answered differently across passes: %q vs %q", key, val, other)
			}
		}
	}
	if both == 0 {
		t.Fatal("no request was answered in both passes")
	}
}

func fmtKey(gid string, c, i int) string {
	return gid + ":" + string(rune('a'+c)) + ":" + string(rune('a'+i))
}

func fmtAns(found bool, rounds, messages int64) string {
	return fmtEst(float64(rounds)*1e3+float64(messages), boolInt(found))
}

func fmtEst(mean float64, truncated int) string {
	return time.Duration(int64(mean*1e6) + int64(truncated)).String()
}

func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

func isCtxErr(err error) bool {
	return errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)
}
