package serve

import (
	"context"
	"slices"
	"time"

	"manywalks/internal/netsim"
	"manywalks/internal/walk"
)

// maxConcurrentPasses bounds the grouped passes in flight at once: enough
// that independent shapes never wait on one long pass, small enough not to
// thrash the step caches.
const maxConcurrentPasses = 4

// This file is the request coalescer: submits enqueue *pending* requests
// into shape buckets, and a single dispatcher goroutine folds each bucket
// into one Engine.RunGrouped pass per dispatch tick.
//
// A shape is everything lanes of one grouped pass must agree on: the
// compiled engine (graph × kernel), the lane width k, the round budget, the
// observer kind, and — for hit shapes — the target set the shared observer
// bitset is compiled from. Everything else may differ per request: each
// lane carries its own request's placement (GroupedRunSpec.StartsFor) and
// its own engine seed (GroupedRunSpec.Seeds), derived exactly as the
// sequential path derives them, so which requests share a pass can never
// change an answer. A walk query and a hitting-time estimate with the same
// shape coalesce into the same pass; only their answer extraction differs.

// reqKind selects how a request's lanes become its answer.
type reqKind uint8

const (
	kindQuery    reqKind = iota // one lane -> netsim.QueryResult
	kindEstimate                // Trials lanes -> walk.Estimate
)

// obsKind selects the grouped observer a bucket runs.
type obsKind uint8

const (
	obsHit obsKind = iota
	obsCover
	obsMeet
)

// shapeKey buckets compatible requests. salt resolves the (astronomically
// unlikely) case of distinct target sets sharing a digest: colliding sets
// probe successive salts until they find their own bucket.
type shapeKey struct {
	graph   string
	kernel  string
	obs     obsKind
	k       int
	horizon int64
	digest  uint64
	salt    int
	// prec separates adaptive requests from fixed-count ones: lanes of
	// either kind could share a pass, but keeping the normalized precision
	// in the key means a bucket's requests agree on their wave schedule,
	// which keeps the dispatch accounting legible. Zero for fixed-count.
	prec walk.Precision
}

// targetDigest is an FNV-1a fold of the target set in sorted order, so the
// digest is canonical under reordering. Bucket admission still compares the
// full canonical set — the digest only spreads the map.
func targetDigest(targets []int32) uint64 {
	sorted := canonicalTargets(targets)
	h := uint64(1469598103934665603)
	for _, v := range sorted {
		for sh := 0; sh < 32; sh += 8 {
			h ^= uint64(uint8(uint32(v) >> sh))
			h *= 1099511628211
		}
	}
	return h ^ uint64(len(sorted))
}

// canonicalTargets returns the sorted, deduplicated form of a target set.
func canonicalTargets(targets []int32) []int32 {
	sorted := slices.Clone(targets)
	slices.Sort(sorted)
	return slices.Compact(sorted)
}

// pending is one queued request: its lanes (placement + engine seeds), its
// answer channel (buffered so the dispatcher never blocks on an abandoned
// client), and the context the dispatcher checks before spending rounds on
// it.
type pending struct {
	kind   reqKind
	k      int
	ttl    int64   // the request's round budget (TTL / MaxSteps)
	starts []int32 // placement shared by all lanes of this request
	seeds  []uint64
	ctx    context.Context
	done   chan answer
	// adaptive is non-nil for sequential-stopping estimates: seeds then
	// holds only the current wave's lanes, and the dispatcher requeues the
	// next wave after folding each pass (see runBatch).
	adaptive *adaptiveRun
}

// adaptiveRun carries one adaptive request's cross-wave state through the
// dispatcher: the shared stopping state (the same decision procedure the
// standalone estimators run, so answers are bit-for-bit identical), the
// base seed its wave seeds derive from, and the outcome prefix so far.
type adaptiveRun struct {
	state      *walk.AdaptiveState
	seed       uint64
	onProgress func(walk.WaveStat)
	rounds     []int64
	stopped    []bool
}

// bindSeeds sets p's lane seeds: the full trial schedule for a fixed-count
// request, or just the first wave of an adaptive run — later waves enter
// the queue one at a time as earlier ones fold, so a converged run releases
// its pass capacity early.
func (p *pending) bindSeeds(st *walk.AdaptiveState, seed uint64, trials int, onProgress func(walk.WaveStat)) {
	if st == nil {
		p.seeds = trialSeeds(seed, trials)
		return
	}
	lo, hi := st.WaveSpan()
	p.seeds = waveSeeds(seed, lo, hi)
	p.adaptive = &adaptiveRun{state: st, seed: seed, onProgress: onProgress}
}

type answer struct {
	query netsim.QueryResult
	est   walk.Estimate
	err   error
}

// bucket accumulates the pending requests of one shape. For hit shapes it
// owns the canonical target set and the []bool form the grouped observer
// compiles; both are immutable after creation.
type bucket struct {
	key     shapeKey
	kernel  walk.Kernel
	targets []int32
	marked  []bool
	reqs    []*pending
	lanes   int
}

// enqueue files p under key, creating the bucket on first use, and wakes
// the dispatcher.
func (s *Server) enqueue(ge *graphEntry, kernel walk.Kernel, key shapeKey, targets []int32, p *pending) error {
	canon := canonicalTargets(targets)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	if s.pendingLanes+len(p.seeds) > s.opts.MaxPending {
		s.mu.Unlock()
		return ErrOverloaded
	}
	var b *bucket
	for {
		b = s.buckets[key]
		if b == nil {
			b = &bucket{key: key, kernel: kernel, targets: canon}
			if key.obs == obsHit {
				b.marked = markedOf(ge.g.N(), canon)
			}
			s.buckets[key] = b
			break
		}
		if slices.Equal(b.targets, canon) {
			break
		}
		key.salt++ // digest collision: probe the next salt
	}
	b.reqs = append(b.reqs, p)
	b.lanes += len(p.seeds)
	s.pendingLanes += len(p.seeds)
	s.mu.Unlock()
	s.wake()
	return nil
}

func (s *Server) wake() {
	select {
	case s.wakec <- struct{}{}:
	default:
	}
}

// await enqueues p and blocks for its answer or the context.
func (s *Server) await(ctx context.Context, ge *graphEntry, kernel walk.Kernel, key shapeKey, targets []int32, p *pending) (answer, error) {
	if err := s.enqueue(ge, kernel, key, targets, p); err != nil {
		return answer{}, err
	}
	select {
	case a := <-p.done:
		if a.err != nil {
			return answer{}, a.err
		}
		return a, nil
	case <-ctx.Done():
		// The dispatcher skips cancelled requests at its next pass; the
		// buffered done channel absorbs any answer already in flight.
		return answer{}, ctx.Err()
	}
}

// loop is the dispatcher: it sleeps until a submit wakes it, gathers
// concurrent arrivals for one Tick, then dispatches every bucket. On Close
// it drains everything still queued so no client is left blocked.
func (s *Server) loop() {
	defer s.wg.Done()
	for {
		select {
		case <-s.stopc:
			s.dispatchAll(true)
			return
		case <-s.wakec:
		}
		timer := time.NewTimer(s.opts.Tick)
		select {
		case <-s.stopc:
			timer.Stop()
			s.dispatchAll(true)
			return
		case <-timer.C:
		}
		s.dispatchAll(false)
	}
}

// takeWork pops up to MaxBatch lanes per bucket (whole requests; a single
// request wider than MaxBatch dispatches alone) and returns the batches to
// run. Buckets with remaining requests stay queued.
func (s *Server) takeWork() []*bucket {
	s.mu.Lock()
	defer s.mu.Unlock()
	var work []*bucket
	for key, b := range s.buckets {
		cut := len(b.reqs)
		lanes := 0
		for i, r := range b.reqs {
			if i > 0 && lanes+len(r.seeds) > s.opts.MaxBatch {
				cut = i
				break
			}
			lanes += len(r.seeds)
		}
		take := &bucket{key: b.key, kernel: b.kernel, targets: b.targets, marked: b.marked,
			reqs: b.reqs[:cut:cut], lanes: lanes}
		if cut == len(b.reqs) {
			delete(s.buckets, key)
		} else {
			s.buckets[key] = &bucket{key: b.key, kernel: b.kernel, targets: b.targets, marked: b.marked,
				reqs: b.reqs[cut:], lanes: b.lanes - lanes}
		}
		s.pendingLanes -= lanes
		work = append(work, take)
	}
	return work
}

// dispatchAll launches every queued batch as its own grouped pass, up to
// maxConcurrentPasses in flight (the server-level passSem): batches of
// distinct shapes share nothing, so one long pass (a huge-budget estimate)
// must never head-of-line block sub-millisecond queries of another shape —
// the dispatcher returns to gathering as soon as the passes are launched.
// With drain it loops until the queue is empty and every pass has
// delivered. New submits cannot arrive during a drain (the server is
// closed first), but running passes requeue the next wave of adaptive
// runs as they complete — so the drain loop must wait out the in-flight
// passes before trusting an empty queue, or a mid-run adaptive client
// would block forever.
func (s *Server) dispatchAll(drain bool) {
	for {
		for _, b := range s.takeWork() {
			s.passSem <- struct{}{}
			s.passWG.Add(1)
			go func(b *bucket) {
				defer s.passWG.Done()
				defer func() { <-s.passSem }()
				s.runBatch(b)
			}(b)
		}
		if drain {
			s.passWG.Wait()
		}
		s.mu.Lock()
		more := len(s.buckets) > 0
		s.mu.Unlock()
		if !more {
			return
		}
		if !drain {
			s.wake() // split remainders dispatch next tick
			return
		}
	}
}

// runBatch folds one batch into a single grouped pass and delivers every
// request's answer. Requests whose context expired are skipped before the
// pass so their lanes cost nothing. All per-pass scratch — lane seeds and
// placements, the spec's start template, the grouped result, the observer
// itself — comes from a pooled passArena, so a warm tick allocates
// nothing (see arena.go).
func (s *Server) runBatch(b *bucket) {
	a := s.getArena()
	defer s.putArena(a)
	for _, r := range b.reqs {
		if err := r.ctx.Err(); err != nil {
			r.done <- answer{err: err}
			continue
		}
		a.live = append(a.live, r)
		for range r.seeds {
			a.laneStarts = append(a.laneStarts, r.starts)
		}
		a.seeds = append(a.seeds, r.seeds...)
	}
	if len(a.live) == 0 {
		return
	}
	lanes := len(a.seeds)
	ge, err := s.graphEntryFor(b.key.graph)
	if err != nil {
		deliverErr(a.live, err)
		return
	}
	eng := s.engineFor(ge, b.kernel)

	if cap(a.starts) < b.key.k {
		a.starts = make([]int32, b.key.k)
	}
	a.starts = a.starts[:b.key.k]
	spec := walk.GroupedRunSpec{
		Trials:    lanes,
		Starts:    a.starts,
		StartsFor: a.startsFor,
		Seeds:     a.seeds,
		MaxRounds: b.key.horizon,
		Workers:   s.opts.Workers,
	}
	switch b.key.obs {
	case obsHit:
		a.hit.Marked = b.marked
		a.obs[0] = a.hit
	case obsCover:
		a.obs[0] = a.cov
	case obsMeet:
		a.obs[0] = a.meet
	}
	if err := eng.RunGroupedInto(spec, &a.res, a.obs...); err != nil {
		// Validation happens at submit, so this is unreachable in normal
		// operation; fail every request loudly rather than panicking the
		// dispatcher.
		deliverErr(a.live, err)
		return
	}
	s.nPasses.Add(1)
	s.nLanes.Add(int64(lanes))
	s.noteShape(b.key, lanes)
	off := 0
	var again []*pending
	for _, r := range a.live {
		n := len(r.seeds)
		part := walk.GroupedResult{Rounds: a.res.Rounds[off : off+n], Stopped: a.res.Stopped[off : off+n]}
		off += n
		ar := r.adaptive
		if ar == nil {
			r.done <- answerFor(r, part)
			continue
		}
		// Adaptive: fold the wave into the run's stopping state (the part
		// slices alias pooled arena memory, so copy before the pass scratch
		// is recycled), then either answer or requeue the next wave.
		ar.rounds = append(ar.rounds, part.Rounds...)
		ar.stopped = append(ar.stopped, part.Stopped...)
		ws := ar.state.Fold(part.Rounds, part.Stopped)
		if ar.onProgress != nil {
			ar.onProgress(ws)
		}
		if ar.state.Done() {
			r.done <- answer{est: walk.EstimateFromTrials(walk.GroupedResult{
				Rounds: ar.rounds, Stopped: ar.stopped,
				Waves: ar.state.Waves(), Converged: ar.state.Converged(),
			})}
			continue
		}
		lo, hi := ar.state.WaveSpan()
		r.seeds = waveSeeds(ar.seed, lo, hi)
		again = append(again, r)
	}
	if len(again) > 0 {
		s.requeue(b, again)
	}
}

// requeue re-files the next wave of adaptive requests under their bucket's
// shape. Unlike enqueue it skips the closed and MaxPending admission
// checks: these lanes continue runs that were already admitted, and a
// draining server must still dispatch them so their clients get answers.
func (s *Server) requeue(b *bucket, reqs []*pending) {
	key := b.key
	key.salt = 0
	s.mu.Lock()
	var dst *bucket
	for {
		dst = s.buckets[key]
		if dst == nil {
			dst = &bucket{key: key, kernel: b.kernel, targets: b.targets, marked: b.marked}
			s.buckets[key] = dst
			break
		}
		if slices.Equal(dst.targets, b.targets) {
			break
		}
		key.salt++ // digest collision: probe the next salt
	}
	for _, r := range reqs {
		dst.reqs = append(dst.reqs, r)
		dst.lanes += len(r.seeds)
		s.pendingLanes += len(r.seeds)
	}
	s.mu.Unlock()
	s.wake()
}

func deliverErr(reqs []*pending, err error) {
	for _, r := range reqs {
		r.done <- answer{err: err}
	}
}

// answerFor converts a request's slice of the grouped result into its
// answer, mirroring the standalone paths exactly: walk queries report
// found/rounds/messages as netsim.RunWalkQueryEngine does, estimates
// summarize per-trial rounds with truncation accounting as
// walk.EstimateFromTrials does.
func answerFor(r *pending, part walk.GroupedResult) answer {
	switch r.kind {
	case kindQuery:
		if part.Stopped[0] {
			rounds := part.Rounds[0]
			return answer{query: netsim.QueryResult{Found: true, Rounds: int(rounds), Messages: int64(r.k) * rounds}}
		}
		return answer{query: netsim.QueryResult{Found: false, Rounds: int(r.ttl), Messages: int64(r.k) * r.ttl}}
	default:
		return answer{est: walk.EstimateFromTrials(part)}
	}
}
