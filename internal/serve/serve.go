// Package serve is the query-serving layer over the batched k-walk engine:
// a graph registry, an LRU-bounded compiled-engine cache, and a request
// coalescer that folds concurrent same-shape requests — walk queries,
// hitting/cover estimates, meeting times — into single wide
// Engine.RunGrouped passes, the way the trial-fused estimators fold their
// own trials (and the way the paper treats k independent walks as one
// aggregate process).
//
// The determinism contract is the whole point: every served answer is
// bit-for-bit equal to the standalone sequential call for the same request
// — netsim.RunWalkQueryEngine for walk queries, the per-trial
// Engine.KHit/KCover/KMeetingTime loop with the MonteCarlo stream
// derivation for estimates. Coalescing is pure batching: each request's
// lanes carry engine seeds derived exactly as the sequential path derives
// them (trial t of a request seeded s runs on rng.NewStream(s, t)'s first
// draw), lanes never interact, and GroupedRunSpec.StartsFor gives every
// lane its own request's placement. Which requests happen to share a pass
// can therefore never change any answer.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"manywalks/internal/graph"
	"manywalks/internal/netsim"
	"manywalks/internal/rng"
	"manywalks/internal/walk"
)

// Sentinel errors of the serving layer.
var (
	// ErrClosed reports a request submitted after Close.
	ErrClosed = errors.New("serve: server closed")
	// ErrOverloaded reports an admission rejection: the pending-lane queue
	// is at MaxPending. Clients should back off and retry.
	ErrOverloaded = errors.New("serve: too many pending requests")
	// ErrUnknownGraph reports a request naming an unregistered graph.
	ErrUnknownGraph = errors.New("serve: unknown graph")
)

// Options configures a Server. The zero value selects sensible defaults.
// No option affects answers — only throughput, latency, and memory.
type Options struct {
	// Tick is the gather window: after the first request wakes an idle
	// dispatcher, it waits Tick for concurrent same-shape requests to
	// pile into the buckets before launching the pass. Default 200µs.
	Tick time.Duration
	// MaxBatch caps the lanes one grouped pass takes from a bucket;
	// remaining requests wait for the next pass. Default 4096.
	MaxBatch int
	// MaxPending caps the total queued lanes; beyond it submits fail
	// with ErrOverloaded. Default 65536.
	MaxPending int
	// EngineCache bounds the compiled engines kept resident (LRU by
	// graph × kernel). Default 8.
	EngineCache int
	// Workers caps the goroutines stepping each grouped pass (0: the
	// engine default). Results never depend on it.
	Workers int
	// NoCoalesce serves every request individually on the submitting
	// goroutine through the sequential engine path — the naive
	// per-request dispatch the load generator compares against. Answers
	// are identical either way.
	NoCoalesce bool
}

const (
	defaultTick        = 200 * time.Microsecond
	defaultMaxBatch    = 4096
	defaultMaxPending  = 1 << 16
	defaultEngineCache = 8
)

// Stats counts served traffic. The JSON tags are the wire form walkd's
// /v1/stats reports and the cluster router's load report consumes.
type Stats struct {
	Requests int64 `json:"requests"` // requests answered (errors included)
	Naive    int64 `json:"naive"`    // requests served on the per-request sequential path
	Passes   int64 `json:"passes"`   // grouped engine passes dispatched
	Lanes    int64 `json:"lanes"`    // lanes folded into grouped passes
	// EngineHits / EngineMisses count compiled-engine cache lookups: a miss
	// is one graph × kernel compilation (alias tables, pad tables), so a
	// warm steady state shows misses frozen while hits grow.
	EngineHits   int64 `json:"engine_hits"`
	EngineMisses int64 `json:"engine_misses"`
}

// Server serves walk queries and estimator requests over registered graphs,
// coalescing concurrent same-shape requests into grouped engine passes.
// Construct with NewServer; all methods are safe for concurrent use.
type Server struct {
	opts    Options
	engines *engineCache

	mu           sync.Mutex
	graphs       map[string]*graphEntry
	buckets      map[shapeKey]*bucket
	pendingLanes int
	closed       bool

	shapeMu    sync.Mutex
	shapeStats map[shapeStatKey]*shapeCounter

	stopc   chan struct{}
	wakec   chan struct{}
	wg      sync.WaitGroup
	passSem chan struct{}
	passWG  sync.WaitGroup
	arenas  sync.Pool // of *passArena; see arena.go

	nRequests atomic.Int64
	nNaive    atomic.Int64
	nPasses   atomic.Int64
	nLanes    atomic.Int64
}

// NewServer returns a running server. Call Close to stop it; Close drains
// every pending request before returning.
func NewServer(opts Options) *Server {
	if opts.Tick <= 0 {
		opts.Tick = defaultTick
	}
	if opts.MaxBatch <= 0 {
		opts.MaxBatch = defaultMaxBatch
	}
	if opts.MaxPending <= 0 {
		opts.MaxPending = defaultMaxPending
	}
	if opts.EngineCache <= 0 {
		opts.EngineCache = defaultEngineCache
	}
	s := &Server{
		opts:       opts,
		engines:    newEngineCache(opts.EngineCache),
		graphs:     make(map[string]*graphEntry),
		buckets:    make(map[shapeKey]*bucket),
		shapeStats: make(map[shapeStatKey]*shapeCounter),
		stopc:      make(chan struct{}),
		wakec:      make(chan struct{}, 1),
		passSem:    make(chan struct{}, maxConcurrentPasses),
	}
	s.wg.Add(1)
	go s.loop()
	return s
}

// Close stops the dispatcher after draining every pending request. Further
// submits fail with ErrClosed. Close is idempotent.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	s.mu.Unlock()
	close(s.stopc)
	s.wg.Wait()
}

// Stats returns a snapshot of the traffic counters.
func (s *Server) Stats() Stats {
	return Stats{
		Requests:     s.nRequests.Load(),
		Naive:        s.nNaive.Load(),
		Passes:       s.nPasses.Load(),
		Lanes:        s.nLanes.Load(),
		EngineHits:   s.engines.hits.Load(),
		EngineMisses: s.engines.misses.Load(),
	}
}

// ---------------------------------------------------------------------------
// Request types

// WalkQueryRequest is a k-token random-walk search: k walkers from Origin,
// stopped at the first round any walker stands on a target vertex, budget
// TTL rounds. The answer is bit-for-bit netsim.RunWalkQueryEngine with the
// same seed on the same compiled engine.
type WalkQueryRequest struct {
	Graph   string
	Kernel  walk.Kernel
	Origin  int32
	K       int
	TTL     int
	Targets []int32
	Seed    uint64
}

// HittingTimeRequest estimates h(Start, Target) from Trials single-walker
// runs, each budgeted MaxSteps rounds; trial t's engine seed derives from
// (Seed, t) exactly as walk.EstimateHittingTime derives it.
type HittingTimeRequest struct {
	Graph    string
	Kernel   walk.Kernel
	Start    int32
	Target   int32
	Trials   int
	Seed     uint64
	MaxSteps int64
	// Precision, when enabled, switches the estimate to adaptive
	// sequential stopping with Trials as the budget cap; the answer is
	// bit-for-bit walk.EstimateHittingTime with the same Precision.
	Precision walk.Precision
	// OnProgress, when non-nil on an adaptive request, observes each
	// wave's running estimate. It is called on a dispatcher pass
	// goroutine and must not block.
	OnProgress func(walk.WaveStat)
}

// CoverTimeRequest estimates the expected k-walk cover time from Start —
// the paper's C^k — from Trials runs with the walk.EstimateKCoverTime
// stream derivation.
type CoverTimeRequest struct {
	Graph    string
	Kernel   walk.Kernel
	Start    int32
	K        int
	Trials   int
	Seed     uint64
	MaxSteps int64
	// Precision and OnProgress: see HittingTimeRequest.
	Precision  walk.Precision
	OnProgress func(walk.WaveStat)
}

// MeetingTimeRequest estimates the expected first-meeting round of the
// k-walk from Starts (len >= 2), with the walk.EstimateKMeetingTime stream
// derivation. Trials that never meet are censored at MaxSteps and counted
// as Truncated.
type MeetingTimeRequest struct {
	Graph    string
	Kernel   walk.Kernel
	Starts   []int32
	Trials   int
	Seed     uint64
	MaxSteps int64
	// Precision and OnProgress: see HittingTimeRequest.
	Precision  walk.Precision
	OnProgress func(walk.WaveStat)
}

// ---------------------------------------------------------------------------
// Shared validation helpers

// trialSeeds derives the engine seed of every trial of a request exactly as
// the sequential Monte Carlo path does: trial t's driver stream is
// rng.NewStream(seed, t), and with no placement draws its first Uint64 is
// the engine seed (the value MonteCarlo's closures pass r.Uint64() into
// KHit/KCover/KMeetingTime, and the value GroupedRunSpec's Seed derivation
// produces). Externalizing the derivation is what lets one grouped pass
// carry lanes of many requests with different root seeds.
func trialSeeds(seed uint64, trials int) []uint64 {
	return waveSeeds(seed, 0, trials)
}

// waveSeeds derives the engine seeds of global trials [lo, hi) of a
// request — the slice of trialSeeds an adaptive wave dispatches. Deriving
// at the global index is what keeps every wave's lane bit-for-bit equal to
// the same trial of the standalone (fixed or adaptive) run.
func waveSeeds(seed uint64, lo, hi int) []uint64 {
	out := make([]uint64, hi-lo)
	for i := range out {
		out[i] = rng.NewStream(seed, uint64(lo+i)).Uint64()
	}
	return out
}

// adaptiveFor builds the sequential-stopping state for an estimate request,
// or returns nil when the request is fixed-count. The normalized precision
// is what goes into the coalescing key, so requests that normalize alike
// share buckets.
func adaptiveFor(prec walk.Precision, trials int) (*walk.AdaptiveState, walk.Precision, error) {
	if !prec.Enabled() {
		return nil, walk.Precision{}, nil
	}
	st, err := walk.NewAdaptiveState(prec, trials)
	if err != nil {
		return nil, walk.Precision{}, err
	}
	return st, st.Precision(), nil
}

// runAdaptiveNaive is the per-request sequential path of an adaptive
// estimate: waves of standalone engine runs with the global-index seed
// derivation, the stop decided by the same walk.AdaptiveState the
// coalesced path folds through — so the two paths stop at the same trial
// with identical samples.
func runAdaptiveNaive(st *walk.AdaptiveState, seed uint64, onProgress func(walk.WaveStat), trial func(engineSeed uint64) (int64, bool)) walk.Estimate {
	var all walk.GroupedResult
	for !st.Done() {
		lo, hi := st.WaveSpan()
		rounds := make([]int64, hi-lo)
		stopped := make([]bool, hi-lo)
		for t := lo; t < hi; t++ {
			rounds[t-lo], stopped[t-lo] = trial(rng.NewStream(seed, uint64(t)).Uint64())
		}
		all.Rounds = append(all.Rounds, rounds...)
		all.Stopped = append(all.Stopped, stopped...)
		ws := st.Fold(rounds, stopped)
		if onProgress != nil {
			onProgress(ws)
		}
	}
	all.Waves, all.Converged = st.Waves(), st.Converged()
	return walk.EstimateFromTrials(all)
}

func (s *Server) resolve(graphID string, kernel walk.Kernel) (*graphEntry, error) {
	ge, err := s.graphEntryFor(graphID)
	if err != nil {
		return nil, err
	}
	if err := kernel.Validate(ge.g); err != nil {
		return nil, err
	}
	return ge, nil
}

func checkVertices(g *graph.Graph, vs ...int32) error {
	n := g.N()
	for _, v := range vs {
		if v < 0 || int(v) >= n {
			return fmt.Errorf("serve: vertex %d out of range [0,%d)", v, n)
		}
	}
	return nil
}

// markedOf expands a target list into the []bool form the hit observers
// take.
func markedOf(n int, targets []int32) []bool {
	marked := make([]bool, n)
	for _, v := range targets {
		marked[v] = true
	}
	return marked
}

func commonStarts(v int32, k int) []int32 {
	starts := make([]int32, k)
	for i := range starts {
		starts[i] = v
	}
	return starts
}

// ---------------------------------------------------------------------------
// Submit methods

// WalkQuery answers a k-token search. The coalesced answer equals
// netsim.RunWalkQueryEngine(engine, Origin, K, TTL, targets, Seed) exactly.
func (s *Server) WalkQuery(ctx context.Context, req WalkQueryRequest) (netsim.QueryResult, error) {
	s.nRequests.Add(1)
	if ctx == nil {
		ctx = context.Background()
	}
	req.Kernel = walk.KernelOrUniform(req.Kernel)
	ge, err := s.resolve(req.Graph, req.Kernel)
	if err != nil {
		return netsim.QueryResult{}, err
	}
	if req.K < 1 {
		return netsim.QueryResult{}, fmt.Errorf("serve: walk query requires k >= 1, got %d", req.K)
	}
	if req.TTL < 1 {
		return netsim.QueryResult{}, fmt.Errorf("serve: walk query requires ttl >= 1, got %d", req.TTL)
	}
	if err := checkVertices(ge.g, req.Origin); err != nil {
		return netsim.QueryResult{}, err
	}
	if err := checkVertices(ge.g, req.Targets...); err != nil {
		return netsim.QueryResult{}, err
	}
	if s.opts.NoCoalesce || int64(req.TTL) > walk.MaxGroupedRounds {
		s.nNaive.Add(1)
		eng := s.engineFor(ge, req.Kernel)
		hasItem := markedOf(ge.g.N(), req.Targets)
		return netsim.RunWalkQueryEngine(eng, req.Origin, req.K, req.TTL, hasItem, req.Seed), nil
	}
	p := &pending{
		kind:   kindQuery,
		k:      req.K,
		ttl:    int64(req.TTL),
		starts: commonStarts(req.Origin, req.K),
		seeds:  []uint64{req.Seed},
		ctx:    ctx,
		done:   make(chan answer, 1),
	}
	key := shapeKey{
		graph:   req.Graph,
		kernel:  req.Kernel.String(),
		obs:     obsHit,
		k:       req.K,
		horizon: int64(req.TTL),
		digest:  targetDigest(req.Targets),
	}
	a, err := s.await(ctx, ge, req.Kernel, key, req.Targets, p)
	return a.query, err
}

// HittingTime answers a hitting-time estimate; its per-trial samples equal
// walk.EstimateHittingTime's bit for bit.
func (s *Server) HittingTime(ctx context.Context, req HittingTimeRequest) (walk.Estimate, error) {
	s.nRequests.Add(1)
	if ctx == nil {
		ctx = context.Background()
	}
	req.Kernel = walk.KernelOrUniform(req.Kernel)
	ge, err := s.resolve(req.Graph, req.Kernel)
	if err != nil {
		return walk.Estimate{}, err
	}
	if err := validateEstimate(req.Trials, req.MaxSteps); err != nil {
		return walk.Estimate{}, err
	}
	if !ge.connected {
		return walk.Estimate{}, fmt.Errorf("serve: hitting time diverges on disconnected graph %q", req.Graph)
	}
	if err := checkVertices(ge.g, req.Start, req.Target); err != nil {
		return walk.Estimate{}, err
	}
	ast, prec, err := adaptiveFor(req.Precision, req.Trials)
	if err != nil {
		return walk.Estimate{}, err
	}
	targets := []int32{req.Target}
	if s.opts.NoCoalesce || req.MaxSteps > walk.MaxGroupedRounds {
		s.nNaive.Add(1)
		eng := s.engineFor(ge, req.Kernel)
		marked := markedOf(ge.g.N(), targets)
		trial := func(seed uint64) (int64, bool) {
			hr := eng.KHit([]int32{req.Start}, marked, seed, req.MaxSteps)
			return hr.Rounds, hr.Hit
		}
		if ast != nil {
			return runAdaptiveNaive(ast, req.Seed, req.OnProgress, trial), nil
		}
		res := walk.GroupedResult{Rounds: make([]int64, req.Trials), Stopped: make([]bool, req.Trials)}
		for t, seed := range trialSeeds(req.Seed, req.Trials) {
			res.Rounds[t], res.Stopped[t] = trial(seed)
		}
		return walk.EstimateFromTrials(res), nil
	}
	p := &pending{
		kind:   kindEstimate,
		k:      1,
		ttl:    req.MaxSteps,
		starts: []int32{req.Start},
		ctx:    ctx,
		done:   make(chan answer, 1),
	}
	p.bindSeeds(ast, req.Seed, req.Trials, req.OnProgress)
	key := shapeKey{
		graph:   req.Graph,
		kernel:  req.Kernel.String(),
		obs:     obsHit,
		k:       1,
		horizon: req.MaxSteps,
		digest:  targetDigest(targets),
		prec:    prec,
	}
	a, err := s.await(ctx, ge, req.Kernel, key, targets, p)
	return a.est, err
}

// CoverTime answers a k-walk cover-time estimate; its per-trial samples
// equal walk.EstimateKCoverTime's bit for bit.
func (s *Server) CoverTime(ctx context.Context, req CoverTimeRequest) (walk.Estimate, error) {
	s.nRequests.Add(1)
	if ctx == nil {
		ctx = context.Background()
	}
	req.Kernel = walk.KernelOrUniform(req.Kernel)
	ge, err := s.resolve(req.Graph, req.Kernel)
	if err != nil {
		return walk.Estimate{}, err
	}
	if req.K < 1 {
		return walk.Estimate{}, fmt.Errorf("serve: cover time requires k >= 1, got %d", req.K)
	}
	if err := validateEstimate(req.Trials, req.MaxSteps); err != nil {
		return walk.Estimate{}, err
	}
	if !ge.connected {
		return walk.Estimate{}, fmt.Errorf("serve: cover time diverges on disconnected graph %q", req.Graph)
	}
	if err := checkVertices(ge.g, req.Start); err != nil {
		return walk.Estimate{}, err
	}
	ast, prec, err := adaptiveFor(req.Precision, req.Trials)
	if err != nil {
		return walk.Estimate{}, err
	}
	starts := commonStarts(req.Start, req.K)
	if s.opts.NoCoalesce || req.MaxSteps > walk.MaxGroupedRounds {
		s.nNaive.Add(1)
		eng := s.engineFor(ge, req.Kernel)
		trial := func(seed uint64) (int64, bool) {
			cr := eng.KCover(starts, seed, req.MaxSteps)
			return cr.Steps, cr.Covered
		}
		if ast != nil {
			return runAdaptiveNaive(ast, req.Seed, req.OnProgress, trial), nil
		}
		res := walk.GroupedResult{Rounds: make([]int64, req.Trials), Stopped: make([]bool, req.Trials)}
		for t, seed := range trialSeeds(req.Seed, req.Trials) {
			res.Rounds[t], res.Stopped[t] = trial(seed)
		}
		return walk.EstimateFromTrials(res), nil
	}
	p := &pending{
		kind:   kindEstimate,
		k:      req.K,
		ttl:    req.MaxSteps,
		starts: starts,
		ctx:    ctx,
		done:   make(chan answer, 1),
	}
	p.bindSeeds(ast, req.Seed, req.Trials, req.OnProgress)
	key := shapeKey{
		graph:   req.Graph,
		kernel:  req.Kernel.String(),
		obs:     obsCover,
		k:       req.K,
		horizon: req.MaxSteps,
		prec:    prec,
	}
	a, err := s.await(ctx, ge, req.Kernel, key, nil, p)
	return a.est, err
}

// MeetingTime answers a k-walk meeting-time estimate; its per-trial samples
// equal walk.EstimateKMeetingTime's bit for bit.
func (s *Server) MeetingTime(ctx context.Context, req MeetingTimeRequest) (walk.Estimate, error) {
	s.nRequests.Add(1)
	if ctx == nil {
		ctx = context.Background()
	}
	req.Kernel = walk.KernelOrUniform(req.Kernel)
	ge, err := s.resolve(req.Graph, req.Kernel)
	if err != nil {
		return walk.Estimate{}, err
	}
	if len(req.Starts) < 2 {
		return walk.Estimate{}, fmt.Errorf("serve: meeting time requires at least 2 walkers, got %d", len(req.Starts))
	}
	if err := validateEstimate(req.Trials, req.MaxSteps); err != nil {
		return walk.Estimate{}, err
	}
	if !ge.connected {
		return walk.Estimate{}, fmt.Errorf("serve: meeting time diverges on disconnected graph %q", req.Graph)
	}
	if err := checkVertices(ge.g, req.Starts...); err != nil {
		return walk.Estimate{}, err
	}
	starts := make([]int32, len(req.Starts))
	copy(starts, req.Starts)
	ast, prec, err := adaptiveFor(req.Precision, req.Trials)
	if err != nil {
		return walk.Estimate{}, err
	}
	if s.opts.NoCoalesce || req.MaxSteps > walk.MaxGroupedRounds {
		s.nNaive.Add(1)
		eng := s.engineFor(ge, req.Kernel)
		var trialErr error
		trial := func(seed uint64) (int64, bool) {
			mr, err := eng.KMeetingTime(starts, seed, req.MaxSteps)
			if err != nil && trialErr == nil {
				trialErr = err
			}
			return mr.Rounds, mr.Met
		}
		if ast != nil {
			est := runAdaptiveNaive(ast, req.Seed, req.OnProgress, trial)
			if trialErr != nil {
				return walk.Estimate{}, trialErr
			}
			return est, nil
		}
		res := walk.GroupedResult{Rounds: make([]int64, req.Trials), Stopped: make([]bool, req.Trials)}
		for t, seed := range trialSeeds(req.Seed, req.Trials) {
			res.Rounds[t], res.Stopped[t] = trial(seed)
			if trialErr != nil {
				return walk.Estimate{}, trialErr
			}
		}
		return walk.EstimateFromTrials(res), nil
	}
	p := &pending{
		kind:   kindEstimate,
		k:      len(starts),
		ttl:    req.MaxSteps,
		starts: starts,
		ctx:    ctx,
		done:   make(chan answer, 1),
	}
	p.bindSeeds(ast, req.Seed, req.Trials, req.OnProgress)
	key := shapeKey{
		graph:   req.Graph,
		kernel:  req.Kernel.String(),
		obs:     obsMeet,
		k:       len(starts),
		horizon: req.MaxSteps,
		prec:    prec,
	}
	a, err := s.await(ctx, ge, req.Kernel, key, nil, p)
	return a.est, err
}

func validateEstimate(trials int, maxSteps int64) error {
	if trials < 1 {
		return fmt.Errorf("serve: estimate requires trials >= 1, got %d", trials)
	}
	if maxSteps < 1 {
		return fmt.Errorf("serve: estimate requires max steps >= 1, got %d", maxSteps)
	}
	return nil
}
