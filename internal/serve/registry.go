package serve

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"manywalks/internal/graph"
	"manywalks/internal/walk"
)

// graphEntry is one registered topology with the properties the request
// validators consult on every submit, computed once at registration.
type graphEntry struct {
	id        string
	g         *graph.Graph
	connected bool
}

// GraphInfo describes one registered graph (the /v1/graphs listing).
type GraphInfo struct {
	ID        string `json:"id"`
	N         int    `json:"n"`
	M         int    `json:"m"`
	Connected bool   `json:"connected"`
}

// RegisterGraph adds g to the server's registry under id. Graphs are
// immutable once registered and shared by every request that names them.
// Graphs with isolated vertices are rejected up front — the engine requires
// min degree 1, and rejecting at registration keeps that contract out of
// the per-request hot path.
func (s *Server) RegisterGraph(id string, g *graph.Graph) error {
	if id == "" {
		return fmt.Errorf("serve: graph id must be non-empty")
	}
	if g == nil || g.N() == 0 {
		return fmt.Errorf("serve: graph %q is empty", id)
	}
	if min, _ := g.DegreeStats(); min == 0 {
		return fmt.Errorf("serve: graph %q has an isolated vertex; walkers there would have no move", id)
	}
	entry := &graphEntry{id: id, g: g, connected: g.IsConnected()}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if _, dup := s.graphs[id]; dup {
		return fmt.Errorf("serve: graph %q already registered", id)
	}
	s.graphs[id] = entry
	return nil
}

// Graphs lists the registered graphs, sorted by id.
func (s *Server) Graphs() []GraphInfo {
	s.mu.Lock()
	out := make([]GraphInfo, 0, len(s.graphs))
	for _, ge := range s.graphs {
		out = append(out, GraphInfo{ID: ge.id, N: ge.g.N(), M: ge.g.M(), Connected: ge.connected})
	}
	s.mu.Unlock()
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// graphEntry resolves id, or reports ErrUnknownGraph.
func (s *Server) graphEntryFor(id string) (*graphEntry, error) {
	s.mu.Lock()
	ge := s.graphs[id]
	s.mu.Unlock()
	if ge == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownGraph, id)
	}
	return ge, nil
}

// engineKey identifies one compiled engine: a graph crossed with a step
// law. Kernel.String() round-trips every parameter (ParseKernel syntax), so
// equal strings mean equal compiled programs.
type engineKey struct {
	graph  string
	kernel string
}

// engineCache is the LRU-bounded compiled-engine cache. Engines are
// immutable and safe for concurrent use, so an entry evicted while a pass
// still holds it simply finishes the pass on the orphaned engine; the cache
// only bounds how many table sets stay resident.
type engineCache struct {
	cap     int
	mu      sync.Mutex
	tick    uint64
	entries map[engineKey]*engineEntry
	// hits/misses count lookups; a miss is one compilation. Surfaced
	// through Server.Stats for cluster load reports.
	hits   atomic.Int64
	misses atomic.Int64
}

type engineEntry struct {
	eng  *walk.Engine
	used uint64
}

func newEngineCache(cap int) *engineCache {
	return &engineCache{cap: cap, entries: make(map[engineKey]*engineEntry)}
}

// get returns the cached engine for key, building (and inserting) it with
// build on a miss. Compilation runs under the cache lock: it is rare (once
// per graph × kernel until eviction) and serializing it prevents a stampede
// of clients compiling the same alias tables concurrently.
func (c *engineCache) get(key engineKey, build func() *walk.Engine) *walk.Engine {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tick++
	if e := c.entries[key]; e != nil {
		e.used = c.tick
		c.hits.Add(1)
		return e.eng
	}
	c.misses.Add(1)
	eng := build()
	c.entries[key] = &engineEntry{eng: eng, used: c.tick}
	for len(c.entries) > c.cap {
		var lruKey engineKey
		lru := uint64(0)
		first := true
		for k, e := range c.entries {
			if first || e.used < lru {
				lruKey, lru, first = k, e.used, false
			}
		}
		delete(c.entries, lruKey)
	}
	return eng
}

// len reports the resident engine count (tests).
func (c *engineCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// engineFor returns the compiled engine serving (graph, kernel) requests.
// The kernel must already be validated against the graph (NewEngine panics
// on an invalid kernel, by contract).
func (s *Server) engineFor(ge *graphEntry, kernel walk.Kernel) *walk.Engine {
	kernel = walk.KernelOrUniform(kernel)
	key := engineKey{graph: ge.id, kernel: kernel.String()}
	return s.engines.get(key, func() *walk.Engine {
		return walk.NewEngine(ge.g, walk.EngineOptions{Workers: s.opts.Workers, Kernel: kernel})
	})
}

// Warm pre-compiles the engine for (graphID, kernel) so the first request
// against that shape pays no alias-table build. A nil kernel warms the
// uniform engine. Validation runs first, so a kernel the graph rejects
// (e.g. a dense hopper bank over the memory cap) reports an error instead
// of panicking inside NewEngine.
func (s *Server) Warm(graphID string, kernel walk.Kernel) error {
	kernel = walk.KernelOrUniform(kernel)
	ge, err := s.resolve(graphID, kernel)
	if err != nil {
		return err
	}
	s.engineFor(ge, kernel)
	return nil
}
