//go:build race

package serve

// raceEnabled reports whether the race detector instruments this build;
// its shadow-memory bookkeeping allocates, so the zero-allocation gate is
// meaningless under -race and skips itself.
const raceEnabled = true
