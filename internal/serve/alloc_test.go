package serve

import (
	"context"
	"testing"

	"manywalks/internal/netsim"
	"manywalks/internal/walk"
)

// queryBucket hand-builds the bucket a batch of walk queries would reach
// the dispatcher as, mirroring WalkQuery's pending/shapeKey construction.
func queryBucket(graphID string, n int, targets []int32, k, ttl int, seeds []uint64) *bucket {
	kern := walk.KernelOrUniform(nil)
	key := shapeKey{
		graph:   graphID,
		kernel:  kern.String(),
		obs:     obsHit,
		k:       k,
		horizon: int64(ttl),
		digest:  targetDigest(targets),
	}
	b := &bucket{key: key, kernel: kern, targets: canonicalTargets(targets), marked: markedOf(n, targets)}
	for i, seed := range seeds {
		origin := int32(i % n)
		b.reqs = append(b.reqs, &pending{
			kind:   kindQuery,
			k:      k,
			ttl:    int64(ttl),
			starts: commonStarts(origin, k),
			seeds:  []uint64{seed},
			ctx:    context.Background(),
			done:   make(chan answer, 1),
		})
		b.lanes++
	}
	return b
}

// TestRunBatchZeroAllocSteadyState is the zero-allocation gate of the
// arena design: once the engine cache and the pass arena are warm, a
// query-kind dispatch pass must perform exactly 0 allocations — the lane
// seeds, placements, spec template, grouped result, and observer all come
// from reused arena capacity, and RunGroupedInto's internals are pooled.
// The gate runs at Workers=1, where the whole pass executes on the calling
// goroutine; multicore passes add only the runtime's goroutine-spawn
// wrappers (one per worker per barrier), which is why the arena — not the
// shard spawn — is what the steady-state contract gates. Estimate-kind
// answers are exempt: walk.EstimateFromTrials allocates its sample slice
// by design.
func TestRunBatchZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates; gate runs in non-race builds")
	}
	s := newTestServer(t, Options{Workers: 1})
	g := testGraphs()["expander64"]
	seeds := make([]uint64, 8)
	for i := range seeds {
		seeds[i] = uint64(i) * 977
	}
	b := queryBucket("expander64", g.N(), []int32{32, 49}, 4, 512, seeds)
	drain := func() {
		for _, r := range b.reqs {
			a := <-r.done
			if a.err != nil {
				t.Fatalf("pass failed: %v", a.err)
			}
		}
	}
	// Warm the engine cache, the arena pool, and the engine's grouped-state
	// pool (AllocsPerRun also runs one warm-up pass of its own).
	s.runBatch(b)
	drain()
	allocs := testing.AllocsPerRun(20, func() {
		s.runBatch(b)
		drain()
	})
	if allocs != 0 {
		t.Fatalf("steady-state dispatch pass allocates %v times; want 0", allocs)
	}
}

// TestArenaReuseNoStateLeak is the arena-reuse regression: a pass whose
// lanes all retire at round 0 (origins standing on targets) parks the
// arena with observer state recorded, and subsequent passes of every
// observer kind through the same pool must still answer bit-for-bit like
// standalone runs — bindGroup/startLane must fully reinitialize every lane
// the next pass touches, with nothing (hit flags, marked sets, first-visit
// cells, result slots) leaking between ticks.
func TestArenaReuseNoStateLeak(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1})
	g := testGraphs()["expander64"]
	n := g.N()
	eng := walk.NewEngine(g, walk.EngineOptions{Workers: 1})

	// Pass A: every origin is a target, so every lane retires at round 0
	// before stepping — the degenerate pass most likely to leave stale
	// observer state behind.
	instant := queryBucket("expander64", n, []int32{0, 1, 2, 3, 4, 5}, 2, 256, []uint64{1, 2, 3, 4, 5, 6})
	s.runBatch(instant)
	for _, r := range instant.reqs {
		a := <-r.done
		if a.err != nil || !a.query.Found || a.query.Rounds != 0 {
			t.Fatalf("round-0 pass answered %+v, %v", a.query, a.err)
		}
	}

	// Pass B: fresh hit queries with a disjoint target set through the
	// reused arena; every answer must equal the standalone engine run.
	qb := queryBucket("expander64", n, []int32{40}, 3, 1<<12, []uint64{11, 12, 13, 14})
	s.runBatch(qb)
	marked := markedOf(n, []int32{40})
	for i, r := range qb.reqs {
		a := <-r.done
		if a.err != nil {
			t.Fatal(a.err)
		}
		want := netsim.RunWalkQueryEngine(eng, r.starts[0], 3, 1<<12, marked, r.seeds[0])
		if a.query != want {
			t.Fatalf("query %d after retired-lane pass: %+v != standalone %+v", i, a.query, want)
		}
	}

	// Pass C: a cover estimate through the same arena (reusing the arena's
	// cover observer after the hit passes touched its sibling).
	const trials, maxSteps = 10, int64(1 << 16)
	cseeds := trialSeeds(77, trials)
	cb := &bucket{
		key:    shapeKey{graph: "expander64", kernel: walk.Uniform().String(), obs: obsCover, k: 4, horizon: maxSteps},
		kernel: walk.Uniform(),
	}
	cb.reqs = append(cb.reqs, &pending{
		kind:   kindEstimate,
		k:      4,
		ttl:    maxSteps,
		starts: commonStarts(7, 4),
		seeds:  cseeds,
		ctx:    context.Background(),
		done:   make(chan answer, 1),
	})
	cb.lanes = trials
	s.runBatch(cb)
	a := <-cb.reqs[0].done
	if a.err != nil {
		t.Fatal(a.err)
	}
	wantCover, err := walk.EstimateKCoverTime(g, 7, 4, walk.MCOptions{Trials: trials, Workers: 1, Seed: 77, MaxSteps: maxSteps})
	if err != nil {
		t.Fatal(err)
	}
	if a.est != wantCover {
		t.Fatalf("cover estimate after arena reuse: %+v != standalone %+v", a.est, wantCover)
	}

	// Pass D: hit queries again, after the cover pass rebound the arena's
	// other observer.
	db := queryBucket("expander64", n, []int32{17, 53}, 2, 1<<12, []uint64{21, 22, 23})
	s.runBatch(db)
	marked = markedOf(n, []int32{17, 53})
	for i, r := range db.reqs {
		a := <-r.done
		if a.err != nil {
			t.Fatal(a.err)
		}
		want := netsim.RunWalkQueryEngine(eng, r.starts[0], 2, 1<<12, marked, r.seeds[0])
		if a.query != want {
			t.Fatalf("query %d after cover pass: %+v != standalone %+v", i, a.query, want)
		}
	}
}
