package serve

import (
	"context"
	"testing"
	"time"

	"manywalks/internal/graph"
	"manywalks/internal/walk"
)

// TestRequestShapeDigestCanonical pins the routing digest's canonicalization:
// target order and duplicates never change it, every shape field does, and
// the empty kernel means uniform.
func TestRequestShapeDigestCanonical(t *testing.T) {
	base := RequestShape{Graph: "g", Kernel: "uniform", Class: ShapeHit, Targets: []int32{7, 3, 3, 11}}
	same := []RequestShape{
		{Graph: "g", Kernel: "uniform", Class: ShapeHit, Targets: []int32{3, 7, 11}},
		{Graph: "g", Kernel: "uniform", Class: ShapeHit, Targets: []int32{11, 11, 7, 3}},
		{Graph: "g", Kernel: "", Class: ShapeHit, Targets: []int32{3, 7, 11}},
	}
	for i, rs := range same {
		if rs.Digest() != base.Digest() {
			t.Fatalf("shape %d: digest %x != base %x", i, rs.Digest(), base.Digest())
		}
	}
	diff := []RequestShape{
		{Graph: "h", Kernel: "uniform", Class: ShapeHit, Targets: []int32{3, 7, 11}},
		{Graph: "g", Kernel: "lazy:0.5", Class: ShapeHit, Targets: []int32{3, 7, 11}},
		{Graph: "g", Kernel: "uniform", Class: ShapeCover, Targets: []int32{3, 7, 11}},
		{Graph: "g", Kernel: "uniform", Class: ShapeHit, Targets: []int32{3, 7}},
		{Graph: "g", Kernel: "uniform", Class: ShapeHit},
	}
	for i, rs := range diff {
		if rs.Digest() == base.Digest() {
			t.Fatalf("shape %d: digest collides with base", i)
		}
	}
	// The digest must agree with the coalescer's target canonicalization:
	// shapes whose canonical target sets are equal share a digest even when
	// the raw slices differ arbitrarily.
	if targetDigest([]int32{5, 5, 2}) != targetDigest([]int32{2, 5}) {
		t.Fatal("targetDigest not canonical under sort+dedup")
	}
}

// TestShapeClassNames pins the class names ShapeStat rows report.
func TestShapeClassNames(t *testing.T) {
	for _, tc := range []struct {
		c    ShapeClass
		want string
	}{{ShapeHit, "hit"}, {ShapeCover, "cover"}, {ShapeMeet, "meet"}, {ShapeClass(9), "unknown"}} {
		if got := tc.c.String(); got != tc.want {
			t.Fatalf("class %d: %q != %q", tc.c, got, tc.want)
		}
	}
}

// TestStatsCounters drives a few coalesced requests and checks the new
// observability: engine-cache hit/miss counters and per-shape pass/lane
// rows.
func TestStatsCounters(t *testing.T) {
	s := NewServer(Options{Tick: 100 * time.Microsecond})
	defer s.Close()
	g := graph.MargulisExpander(8)
	if err := s.RegisterGraph("g", g); err != nil {
		t.Fatal(err)
	}
	for seed := uint64(0); seed < 3; seed++ {
		if _, err := s.CoverTime(context.Background(), CoverTimeRequest{
			Graph: "g", Kernel: walk.Uniform(), Start: 1, K: 4, Trials: 8, Seed: seed, MaxSteps: 1 << 16,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.WalkQuery(context.Background(), WalkQueryRequest{
		Graph: "g", Kernel: walk.Uniform(), Origin: 0, K: 2, TTL: 4096, Targets: []int32{40}, Seed: 1,
	}); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.EngineMisses != 1 {
		t.Fatalf("engine misses %d, want 1 (one graph x kernel compiled)", st.EngineMisses)
	}
	if st.EngineHits < 2 {
		t.Fatalf("engine hits %d, want >= 2", st.EngineHits)
	}
	shapes := s.ShapeStats()
	if len(shapes) != 2 {
		t.Fatalf("shape rows %d, want 2 (cover + query): %+v", len(shapes), shapes)
	}
	var coverRow, hitRow *ShapeStat
	for i := range shapes {
		switch shapes[i].Class {
		case "cover":
			coverRow = &shapes[i]
		case "hit":
			hitRow = &shapes[i]
		}
	}
	if coverRow == nil || hitRow == nil {
		t.Fatalf("missing class rows: %+v", shapes)
	}
	if coverRow.Lanes != 24 || coverRow.Passes < 1 || coverRow.K != 4 {
		t.Fatalf("cover row %+v, want 24 lanes over >=1 passes at k=4", *coverRow)
	}
	if coverRow.LanesPerPass != float64(coverRow.Lanes)/float64(coverRow.Passes) {
		t.Fatalf("cover row lanes/pass %v inconsistent", *coverRow)
	}
	if hitRow.Lanes != 1 || hitRow.K != 2 || hitRow.Graph != "g" || hitRow.Kernel != "uniform" {
		t.Fatalf("hit row %+v", *hitRow)
	}
}

// TestShapeStatsOverflow pins the cap: shapes past maxShapeStats fold into
// the single "(other)" row instead of growing the map without bound.
func TestShapeStatsOverflow(t *testing.T) {
	s := NewServer(Options{Tick: 50 * time.Microsecond})
	defer s.Close()
	g := graph.Cycle(32)
	if err := s.RegisterGraph("g", g); err != nil {
		t.Fatal(err)
	}
	// Distinct horizons are distinct shapes; push past the cap.
	for i := 0; i < maxShapeStats+8; i++ {
		if _, err := s.CoverTime(context.Background(), CoverTimeRequest{
			Graph: "g", Kernel: walk.Uniform(), Start: 0, K: 1, Trials: 1,
			Seed: uint64(i), MaxSteps: int64(1<<14 + i),
		}); err != nil {
			t.Fatal(err)
		}
	}
	shapes := s.ShapeStats()
	if len(shapes) > maxShapeStats+1 {
		t.Fatalf("shape rows %d exceed cap %d (+1 overflow row)", len(shapes), maxShapeStats)
	}
	var other *ShapeStat
	var lanes int64
	for i := range shapes {
		lanes += shapes[i].Lanes
		if shapes[i].Graph == "(other)" {
			other = &shapes[i]
		}
	}
	if other == nil || other.Lanes < 8 {
		t.Fatalf("overflow row missing or too small: %+v", other)
	}
	if lanes != maxShapeStats+8 {
		t.Fatalf("total lanes %d, want %d (no pass lost to the cap)", lanes, maxShapeStats+8)
	}
}
