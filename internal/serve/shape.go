package serve

import "sort"

// This file exports the request-shape canonicalization the coalescer keys
// its buckets on, so layers above the server — the cluster router in
// particular — can agree with it. The router consistent-hashes each request
// by RequestShape.Digest onto a replica ring; because the digest is built
// from the same canonical fields as the internal shapeKey (graph, kernel,
// observer class, canonical target set), every request that *could*
// coalesce into one grouped pass carries the same digest and therefore
// lands on the same replica, where it batches exactly as it would on a
// single box. Budget fields (k, horizon, precision) are deliberately left
// out: requests differing only in those can't share a pass, but routing
// them together costs nothing and keeps each graph × kernel's compiled
// engine resident on as few replicas as possible.

// ShapeClass is the observer family of a request. Requests only coalesce
// within a class, so the class is part of the routing digest.
type ShapeClass uint8

const (
	// ShapeHit covers walk queries and hitting-time estimates: both run
	// the grouped hit observer over a target set.
	ShapeHit ShapeClass = ShapeClass(obsHit)
	// ShapeCover covers k-walk cover-time estimates.
	ShapeCover ShapeClass = ShapeClass(obsCover)
	// ShapeMeet covers k-walk meeting-time estimates.
	ShapeMeet ShapeClass = ShapeClass(obsMeet)
)

// String names the class the way ShapeStat reports it.
func (c ShapeClass) String() string {
	switch c {
	case ShapeHit:
		return "hit"
	case ShapeCover:
		return "cover"
	case ShapeMeet:
		return "meet"
	}
	return "unknown"
}

// RequestShape is the externally visible coalescing identity of a request:
// the fields a router must hash to keep same-shape traffic on one replica.
// Targets may be unsorted and contain duplicates; Digest canonicalizes them
// exactly as the coalescer's bucket admission does.
type RequestShape struct {
	Graph   string
	Kernel  string // Kernel.String() form; "" means uniform
	Class   ShapeClass
	Targets []int32
}

// Digest folds the shape into the 64-bit routing key: an FNV-1a hash over
// graph, kernel, class, and the canonical (sorted, deduplicated) target
// digest. Equal shapes always digest equally; distinct shapes collide only
// with FNV's astronomical odds, and a collision merely co-locates two
// shapes on one replica — it can never corrupt an answer, because the
// backend's bucket admission still compares full canonical target sets.
func (rs RequestShape) Digest() uint64 {
	kernel := rs.Kernel
	if kernel == "" {
		kernel = "uniform"
	}
	h := uint64(1469598103934665603)
	mix := func(b byte) {
		h ^= uint64(b)
		h *= 1099511628211
	}
	for i := 0; i < len(rs.Graph); i++ {
		mix(rs.Graph[i])
	}
	mix(0)
	for i := 0; i < len(kernel); i++ {
		mix(kernel[i])
	}
	mix(0)
	mix(byte(rs.Class))
	td := targetDigest(rs.Targets)
	for sh := 0; sh < 64; sh += 8 {
		mix(byte(td >> sh))
	}
	return h
}

// ---------------------------------------------------------------------------
// Per-shape traffic counters

// ShapeStat aggregates the grouped passes one request shape has been served
// with — the observability a cluster load report is built from: Lanes/Passes
// is the mean batch width the coalescer achieved for that shape.
type ShapeStat struct {
	Graph        string  `json:"graph"`
	Kernel       string  `json:"kernel"`
	Class        string  `json:"class"`
	K            int     `json:"k"`
	Horizon      int64   `json:"horizon"`
	Passes       int64   `json:"passes"`
	Lanes        int64   `json:"lanes"`
	LanesPerPass float64 `json:"lanes_per_pass"`
}

// shapeStatKey is the aggregation granularity of ShapeStats: the printable
// shape fields, without the target digest (distinct target sets of one
// graph × kernel × class × budget report as one row) and without the
// precision (adaptive waves count with their fixed-count twins).
type shapeStatKey struct {
	graph   string
	kernel  string
	obs     obsKind
	k       int
	horizon int64
}

type shapeCounter struct {
	passes int64
	lanes  int64
}

// maxShapeStats bounds the tracked shapes of a long-running server; traffic
// past the cap folds into a single overflow row so the map cannot grow
// without bound under adversarial budget variation.
const maxShapeStats = 512

// overflowShapeKey is the catch-all row for traffic past maxShapeStats.
var overflowShapeKey = shapeStatKey{graph: "(other)"}

// noteShape records one grouped pass of `lanes` lanes under key's shape.
func (s *Server) noteShape(key shapeKey, lanes int) {
	k := shapeStatKey{graph: key.graph, kernel: key.kernel, obs: key.obs, k: key.k, horizon: key.horizon}
	s.shapeMu.Lock()
	c := s.shapeStats[k]
	if c == nil {
		if len(s.shapeStats) >= maxShapeStats {
			k = overflowShapeKey
			c = s.shapeStats[k]
		}
		if c == nil {
			c = &shapeCounter{}
			s.shapeStats[k] = c
		}
	}
	c.passes++
	c.lanes += int64(lanes)
	s.shapeMu.Unlock()
}

// ShapeStats snapshots the per-shape pass and lane counters, widest shapes
// (most lanes) first.
func (s *Server) ShapeStats() []ShapeStat {
	s.shapeMu.Lock()
	out := make([]ShapeStat, 0, len(s.shapeStats))
	for k, c := range s.shapeStats {
		st := ShapeStat{
			Graph: k.graph, Kernel: k.kernel, Class: ShapeClass(k.obs).String(),
			K: k.k, Horizon: k.horizon, Passes: c.passes, Lanes: c.lanes,
		}
		if c.passes > 0 {
			st.LanesPerPass = float64(c.lanes) / float64(c.passes)
		}
		out = append(out, st)
	}
	s.shapeMu.Unlock()
	sort.Slice(out, func(i, j int) bool { return shapeStatLess(out[i], out[j]) })
	return out
}

// shapeStatLess orders shape rows widest-first, with a stable lexical
// tiebreak so snapshots are deterministic.
func shapeStatLess(a, b ShapeStat) bool {
	if a.Lanes != b.Lanes {
		return a.Lanes > b.Lanes
	}
	if a.Graph != b.Graph {
		return a.Graph < b.Graph
	}
	if a.Kernel != b.Kernel {
		return a.Kernel < b.Kernel
	}
	if a.Class != b.Class {
		return a.Class < b.Class
	}
	if a.K != b.K {
		return a.K < b.K
	}
	return a.Horizon < b.Horizon
}
