package serve

import (
	"context"
	"errors"
	"fmt"
	"os"
	"slices"
	"strconv"
	"sync"
	"testing"
	"time"

	"manywalks/internal/graph"
	"manywalks/internal/netsim"
	"manywalks/internal/walk"
)

// serveWorkerGrid returns the server worker counts the served-vs-standalone
// suites sweep: the singleton baseline and a multicore pass. The standalone
// references are always computed sequentially, so every grid point pins
// that multicore coalesced passes answer bit-for-bit identically.
// MANYWALKS_TEST_WORKERS appends an extra count (set by the CI -race job).
func serveWorkerGrid() []int {
	ws := []int{1, 4}
	if v := os.Getenv("MANYWALKS_TEST_WORKERS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 && !slices.Contains(ws, n) {
			ws = append(ws, n)
		}
	}
	return ws
}

// newTestServer returns a coalesced server with the standard test graphs
// registered.
func newTestServer(t *testing.T, opts Options) *Server {
	t.Helper()
	s := NewServer(opts)
	t.Cleanup(s.Close)
	for id, g := range testGraphs() {
		if err := s.RegisterGraph(id, g); err != nil {
			t.Fatalf("RegisterGraph(%q): %v", id, err)
		}
	}
	return s
}

func testGraphs() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"expander64": graph.MargulisExpander(8),
		"cycle32":    graph.Cycle(32),
		"complete16": graph.Complete(16, false),
	}
}

// TestServedWalkQueryMatchesStandalone pins the bit-for-bit contract for
// coalesced walk queries: every answer served through a grouped batch
// equals netsim.RunWalkQueryEngine for the same seed — across origins, k,
// kernels sharing the pass, and server worker counts.
func TestServedWalkQueryMatchesStandalone(t *testing.T) {
	for _, workers := range serveWorkerGrid() {
		t.Run(fmt.Sprintf("w%d", workers), func(t *testing.T) {
			testServedWalkQueryMatchesStandalone(t, workers)
		})
	}
}

func testServedWalkQueryMatchesStandalone(t *testing.T, workers int) {
	s := newTestServer(t, Options{Workers: workers})
	graphs := testGraphs()
	type q struct {
		req  WalkQueryRequest
		want netsim.QueryResult
	}
	var qs []q
	for _, gid := range []string{"expander64", "cycle32"} {
		g := graphs[gid]
		eng := walk.NewEngine(g, walk.EngineOptions{Workers: 1})
		targets := []int32{int32(g.N() / 2), int32(g.N() - 1)}
		hasItem := make([]bool, g.N())
		for _, v := range targets {
			hasItem[v] = true
		}
		for seed := uint64(0); seed < 24; seed++ {
			origin := int32(seed % uint64(g.N()/3))
			k := 1 + int(seed%4)
			qs = append(qs, q{
				req:  WalkQueryRequest{Graph: gid, Origin: origin, K: k, TTL: 4096, Targets: targets, Seed: seed},
				want: netsim.RunWalkQueryEngine(eng, origin, k, 4096, hasItem, seed),
			})
		}
	}
	// Submit everything concurrently so the coalescer actually batches.
	got := make([]netsim.QueryResult, len(qs))
	errs := make([]error, len(qs))
	var wg sync.WaitGroup
	for i := range qs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], errs[i] = s.WalkQuery(context.Background(), qs[i].req)
		}(i)
	}
	wg.Wait()
	for i := range qs {
		if errs[i] != nil {
			t.Fatalf("query %d: %v", i, errs[i])
		}
		if got[i] != qs[i].want {
			t.Fatalf("query %d (%+v): served %+v != standalone %+v", i, qs[i].req, got[i], qs[i].want)
		}
	}
	if st := s.Stats(); st.Passes == 0 || st.Lanes < int64(len(qs)) {
		t.Fatalf("expected grouped passes to have served the queries, stats %+v", st)
	}
}

// TestServedEstimatesMatchStandalone pins coalesced hitting/cover/meeting
// estimates against the standalone estimators, submitted concurrently with
// mixed shapes, at every server worker count.
func TestServedEstimatesMatchStandalone(t *testing.T) {
	for _, workers := range serveWorkerGrid() {
		t.Run(fmt.Sprintf("w%d", workers), func(t *testing.T) {
			testServedEstimatesMatchStandalone(t, workers)
		})
	}
}

func testServedEstimatesMatchStandalone(t *testing.T, workers int) {
	s := newTestServer(t, Options{Workers: workers})
	graphs := testGraphs()
	opts := func(seed uint64) walk.MCOptions {
		return walk.MCOptions{Trials: 12, Workers: 1, Seed: seed, MaxSteps: 1 << 16}
	}
	type job struct {
		run  func() (walk.Estimate, error)
		want walk.Estimate
	}
	var jobs []job
	for _, gid := range []string{"expander64", "complete16"} {
		g := graphs[gid]
		n := int32(g.N())
		for seed := uint64(1); seed <= 4; seed++ {
			seed, gid := seed, gid
			wantHit, err := walk.EstimateHittingTime(g, 0, n/2, opts(seed))
			if err != nil {
				t.Fatal(err)
			}
			jobs = append(jobs, job{
				run: func() (walk.Estimate, error) {
					return s.HittingTime(context.Background(), HittingTimeRequest{
						Graph: gid, Start: 0, Target: n / 2, Trials: 12, Seed: seed, MaxSteps: 1 << 16,
					})
				},
				want: wantHit,
			})
			wantCover, err := walk.EstimateKCoverTime(g, 1, 4, opts(seed))
			if err != nil {
				t.Fatal(err)
			}
			jobs = append(jobs, job{
				run: func() (walk.Estimate, error) {
					return s.CoverTime(context.Background(), CoverTimeRequest{
						Graph: gid, Start: 1, K: 4, Trials: 12, Seed: seed, MaxSteps: 1 << 16,
					})
				},
				want: wantCover,
			})
			starts := []int32{0, n / 2}
			wantMeet, err := walk.EstimateKMeetingTime(g, starts, opts(seed))
			if err != nil {
				t.Fatal(err)
			}
			jobs = append(jobs, job{
				run: func() (walk.Estimate, error) {
					return s.MeetingTime(context.Background(), MeetingTimeRequest{
						Graph: gid, Starts: starts, Trials: 12, Seed: seed, MaxSteps: 1 << 16,
					})
				},
				want: wantMeet,
			})
		}
	}
	// Registry-kernel round: the same bit-for-bit contract must hold for a
	// dense-compiled hopper kernel sharing the pass with the uniform jobs.
	hopper, err := walk.ParseKernel("hopper:power:1")
	if err != nil {
		t.Fatal(err)
	}
	cyc := graphs["cycle32"]
	for seed := uint64(1); seed <= 2; seed++ {
		seed := seed
		wantHit, err := walk.EstimateKernelHittingTime(cyc, hopper, 0, 16, opts(seed))
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, job{
			run: func() (walk.Estimate, error) {
				return s.HittingTime(context.Background(), HittingTimeRequest{
					Graph: "cycle32", Kernel: hopper, Start: 0, Target: 16, Trials: 12, Seed: seed, MaxSteps: 1 << 16,
				})
			},
			want: wantHit,
		})
		wantCover, err := walk.EstimateKernelKCoverTime(cyc, hopper, 1, 4, opts(seed))
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, job{
			run: func() (walk.Estimate, error) {
				return s.CoverTime(context.Background(), CoverTimeRequest{
					Graph: "cycle32", Kernel: hopper, Start: 1, K: 4, Trials: 12, Seed: seed, MaxSteps: 1 << 16,
				})
			},
			want: wantCover,
		})
	}
	got := make([]walk.Estimate, len(jobs))
	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	for i := range jobs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], errs[i] = jobs[i].run()
		}(i)
	}
	wg.Wait()
	for i := range jobs {
		if errs[i] != nil {
			t.Fatalf("job %d: %v", i, errs[i])
		}
		if got[i] != jobs[i].want {
			t.Fatalf("job %d: served %+v != standalone %+v", i, got[i], jobs[i].want)
		}
	}
}

// TestWarmPrecompilesEngines pins Server.Warm: a warmed (graph, kernel)
// shape serves its first request as an engine-cache hit, a nil kernel warms
// the uniform engine, and kernels the graph rejects (a dense hopper bank
// over the compiler's memory cap) error instead of panicking.
func TestWarmPrecompilesEngines(t *testing.T) {
	s := newTestServer(t, Options{})
	hopper, err := walk.ParseKernel("hopper:power:1")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Warm("cycle32", hopper); err != nil {
		t.Fatal(err)
	}
	if err := s.Warm("expander64", nil); err != nil {
		t.Fatal(err)
	}
	misses := s.Stats().EngineMisses
	if _, err := s.HittingTime(context.Background(), HittingTimeRequest{
		Graph: "cycle32", Kernel: hopper, Start: 0, Target: 16, Trials: 4, Seed: 1, MaxSteps: 1 << 16,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.WalkQuery(context.Background(), WalkQueryRequest{
		Graph: "expander64", Origin: 0, K: 1, TTL: 1 << 12, Targets: []int32{40}, Seed: 1,
	}); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.EngineMisses != misses {
		t.Fatalf("warmed shapes still compiled on first request: %d -> %d misses", misses, st.EngineMisses)
	}
	if err := s.Warm("nope", nil); !errors.Is(err, ErrUnknownGraph) {
		t.Fatalf("unknown graph: got %v", err)
	}
	if err := s.RegisterGraph("bigcycle", graph.Cycle(4096)); err != nil {
		t.Fatal(err)
	}
	if err := s.Warm("bigcycle", hopper); err == nil {
		t.Fatal("over-cap dense kernel warmed without error")
	}
}

// TestNaiveMatchesCoalesced pins the two dispatch modes against each other:
// the naive per-request path and the coalesced path must serve identical
// answers for identical requests, at every coalesced worker count.
func TestNaiveMatchesCoalesced(t *testing.T) {
	for _, workers := range serveWorkerGrid() {
		t.Run(fmt.Sprintf("w%d", workers), func(t *testing.T) {
			testNaiveMatchesCoalesced(t, workers)
		})
	}
}

func testNaiveMatchesCoalesced(t *testing.T, workers int) {
	co := newTestServer(t, Options{Workers: workers})
	na := newTestServer(t, Options{NoCoalesce: true})
	for seed := uint64(0); seed < 8; seed++ {
		req := WalkQueryRequest{Graph: "expander64", Origin: int32(seed), K: 2, TTL: 1 << 14, Targets: []int32{60}, Seed: seed}
		a, err := co.WalkQuery(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		b, err := na.WalkQuery(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("seed %d: coalesced %+v != naive %+v", seed, a, b)
		}
	}
	hreq := HittingTimeRequest{Graph: "cycle32", Start: 0, Target: 16, Trials: 16, Seed: 7, MaxSteps: 1 << 16}
	a, err := co.HittingTime(context.Background(), hreq)
	if err != nil {
		t.Fatal(err)
	}
	b, err := na.HittingTime(context.Background(), hreq)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("hitting: coalesced %+v != naive %+v", a, b)
	}
	if st := na.Stats(); st.Naive != st.Requests || st.Passes != 0 {
		t.Fatalf("naive server ran grouped passes: %+v", st)
	}
}

// TestOverCapBudgetFallsBackSequential: budgets beyond MaxGroupedRounds
// cannot run grouped; the server must serve them on the sequential path
// with the same per-trial samples a below-cap request yields when trials
// finish well under either budget.
func TestOverCapBudgetFallsBackSequential(t *testing.T) {
	s := newTestServer(t, Options{})
	under := HittingTimeRequest{Graph: "complete16", Start: 0, Target: 8, Trials: 8, Seed: 3, MaxSteps: walk.MaxGroupedRounds}
	over := under
	over.MaxSteps = walk.MaxGroupedRounds + 1 // == 1<<31, the boundary budget
	a, err := s.HittingTime(context.Background(), under)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.HittingTime(context.Background(), over)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("budget boundary changed finished-trial samples: under %+v over %+v", a, b)
	}
	if st := s.Stats(); st.Naive == 0 {
		t.Fatalf("over-cap request did not take the sequential path: %+v", st)
	}
}

// TestRegistryAndValidationErrors covers the request validators and the
// registry contract, including the isolated-vertex rejection.
func TestRegistryAndValidationErrors(t *testing.T) {
	s := newTestServer(t, Options{})
	ctx := context.Background()
	if err := s.RegisterGraph("expander64", graph.Cycle(8)); err == nil {
		t.Fatal("duplicate registration succeeded")
	}
	if err := s.RegisterGraph("", graph.Cycle(8)); err == nil {
		t.Fatal("empty id accepted")
	}
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2) // vertex 3 isolated
	if err := s.RegisterGraph("isolated", b.Build("isolated")); err == nil {
		t.Fatal("graph with isolated vertex accepted")
	}
	if _, err := s.WalkQuery(ctx, WalkQueryRequest{Graph: "nope", Origin: 0, K: 1, TTL: 8, Seed: 1}); !errors.Is(err, ErrUnknownGraph) {
		t.Fatalf("unknown graph: got %v", err)
	}
	bad := []error{}
	_, err := s.WalkQuery(ctx, WalkQueryRequest{Graph: "cycle32", Origin: 99, K: 1, TTL: 8})
	bad = append(bad, err)
	_, err = s.WalkQuery(ctx, WalkQueryRequest{Graph: "cycle32", Origin: 0, K: 0, TTL: 8})
	bad = append(bad, err)
	_, err = s.WalkQuery(ctx, WalkQueryRequest{Graph: "cycle32", Origin: 0, K: 1, TTL: 0})
	bad = append(bad, err)
	_, err = s.WalkQuery(ctx, WalkQueryRequest{Graph: "cycle32", Origin: 0, K: 1, TTL: 8, Targets: []int32{-1}})
	bad = append(bad, err)
	_, err = s.HittingTime(ctx, HittingTimeRequest{Graph: "cycle32", Start: 0, Target: 1, Trials: 0, MaxSteps: 8})
	bad = append(bad, err)
	_, err = s.MeetingTime(ctx, MeetingTimeRequest{Graph: "cycle32", Starts: []int32{0}, Trials: 1, MaxSteps: 8})
	bad = append(bad, err)
	_, err = s.CoverTime(ctx, CoverTimeRequest{Graph: "cycle32", Start: 0, K: 1, Trials: 1, MaxSteps: 0})
	bad = append(bad, err)
	for i, err := range bad {
		if err == nil {
			t.Fatalf("invalid request %d accepted", i)
		}
	}
}

// TestClosedServer: submits after Close fail with ErrClosed, and Close
// drains pending requests rather than abandoning them.
func TestClosedServer(t *testing.T) {
	s := NewServer(Options{Tick: 50 * time.Millisecond})
	if err := s.RegisterGraph("c", graph.Cycle(16)); err != nil {
		t.Fatal(err)
	}
	// Park a request inside the long gather window, then close: the drain
	// must answer it.
	type out struct {
		res netsim.QueryResult
		err error
	}
	done := make(chan out, 1)
	go func() {
		r, err := s.WalkQuery(context.Background(), WalkQueryRequest{Graph: "c", Origin: 0, K: 1, TTL: 64, Targets: []int32{8}, Seed: 1})
		done <- out{r, err}
	}()
	time.Sleep(5 * time.Millisecond)
	s.Close()
	o := <-done
	if o.err != nil {
		t.Fatalf("drained request failed: %v", o.err)
	}
	if _, err := s.WalkQuery(context.Background(), WalkQueryRequest{Graph: "c", Origin: 0, K: 1, TTL: 64, Seed: 1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close submit: got %v", err)
	}
	if err := s.RegisterGraph("d", graph.Cycle(8)); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close register: got %v", err)
	}
}

// TestEngineCacheEviction: the compiled-engine cache stays LRU-bounded
// while requests rotate across more graph × kernel shapes than it holds,
// and answers stay correct through evictions and recompiles.
func TestEngineCacheEviction(t *testing.T) {
	s := NewServer(Options{EngineCache: 2})
	t.Cleanup(s.Close)
	ids := []string{"a", "b", "c", "d"}
	for i, id := range ids {
		if err := s.RegisterGraph(id, graph.Cycle(16+8*i)); err != nil {
			t.Fatal(err)
		}
	}
	for round := 0; round < 3; round++ {
		for _, id := range ids {
			req := WalkQueryRequest{Graph: id, Origin: 0, K: 1, TTL: 1 << 12, Targets: []int32{5}, Seed: uint64(round)}
			got, err := s.WalkQuery(context.Background(), req)
			if err != nil {
				t.Fatal(err)
			}
			g := graph.Cycle(16 + 8*indexOf(ids, id))
			eng := walk.NewEngine(g, walk.EngineOptions{Workers: 1})
			hasItem := make([]bool, g.N())
			hasItem[5] = true
			if want := netsim.RunWalkQueryEngine(eng, 0, 1, 1<<12, hasItem, uint64(round)); got != want {
				t.Fatalf("graph %s round %d: %+v != %+v", id, round, got, want)
			}
			if n := s.engines.len(); n > 2 {
				t.Fatalf("engine cache grew to %d entries (cap 2)", n)
			}
		}
	}
}

func indexOf(xs []string, x string) int {
	for i, v := range xs {
		if v == x {
			return i
		}
	}
	return -1
}

// TestTargetDigestBuckets: identical target sets (in any order) share a
// digest; different sets get different buckets even under a forced digest
// collision (exercised via the salt-probing path with equal digests being
// astronomically unlikely otherwise, this test at least pins canonical
// ordering).
func TestTargetDigestBuckets(t *testing.T) {
	if targetDigest([]int32{3, 1, 2}) != targetDigest([]int32{1, 2, 3, 2}) {
		t.Fatal("digest not canonical under order/duplicates")
	}
	if targetDigest([]int32{1}) == targetDigest([]int32{2}) {
		t.Fatal("trivial digest collision")
	}
}
