package linalg

import (
	"math"
	"testing"
	"testing/quick"

	"manywalks/internal/graph"
	"manywalks/internal/rng"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestLUSolveKnownSystem(t *testing.T) {
	// 3x3 system with known solution (1, -2, 3).
	a := NewMatrix(3, 3)
	vals := [][]float64{{2, 1, -1}, {-3, -1, 2}, {-2, 1, 2}}
	for i := range vals {
		for j, v := range vals[i] {
			a.Set(i, j, v)
		}
	}
	x := []float64{1, -2, 3}
	b := a.MatVec(x)
	got, err := SolveSystem(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if !almostEqual(got[i], x[i], 1e-10) {
			t.Fatalf("x[%d] = %v, want %v", i, got[i], x[i])
		}
	}
}

func TestLUSolveRandomSystems(t *testing.T) {
	r := rng.New(42)
	check := func(dim uint8) bool {
		n := 1 + int(dim)%20
		a := NewMatrix(n, n)
		for i := range a.Data {
			a.Data[i] = r.Float64()*2 - 1
		}
		// Diagonal dominance guarantees invertibility.
		for i := 0; i < n; i++ {
			a.Add(i, i, float64(n))
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = r.Float64()*10 - 5
		}
		b := a.MatVec(x)
		got, err := SolveSystem(a, b)
		if err != nil {
			return false
		}
		for i := range x {
			if !almostEqual(got[i], x[i], 1e-8) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestLUSingularDetected(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 4)
	if _, err := Factor(a); err == nil {
		t.Fatal("singular matrix not detected")
	}
}

func TestLUInverseAndDet(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 4)
	a.Set(0, 1, 7)
	a.Set(1, 0, 2)
	a.Set(1, 1, 6)
	f, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(f.Det(), 10, 1e-12) {
		t.Fatalf("det = %v, want 10", f.Det())
	}
	inv := f.Inverse()
	prod := a.Mul(inv)
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if !almostEqual(prod.At(i, j), want, 1e-12) {
				t.Fatalf("A·A⁻¹[%d][%d] = %v", i, j, prod.At(i, j))
			}
		}
	}
}

func TestLUPivoting(t *testing.T) {
	// Zero in the leading position forces a row swap.
	a := NewMatrix(2, 2)
	a.Set(0, 0, 0)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 0)
	got, err := SolveSystem(a, []float64{3, 5})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got[0], 5, 1e-12) || !almostEqual(got[1], 3, 1e-12) {
		t.Fatalf("pivoted solve got %v", got)
	}
}

func TestVecOps(t *testing.T) {
	a := []float64{3, 4}
	if Norm2(a) != 5 {
		t.Fatal("Norm2")
	}
	if Norm1(a) != 7 {
		t.Fatal("Norm1")
	}
	if NormInf([]float64{-9, 2}) != 9 {
		t.Fatal("NormInf")
	}
	if Dot([]float64{1, 2}, []float64{3, 4}) != 11 {
		t.Fatal("Dot")
	}
	y := []float64{1, 1}
	AXPY(2, []float64{1, 2}, y)
	if y[0] != 3 || y[1] != 5 {
		t.Fatal("AXPY")
	}
	v := []float64{0, 3}
	if !almostEqual(Normalize(v), 3, 1e-15) || v[1] != 1 {
		t.Fatal("Normalize")
	}
	if L1Distance([]float64{1, 2}, []float64{0, 4}) != 3 {
		t.Fatal("L1Distance")
	}
}

func TestOrthogonalize(t *testing.T) {
	q := []float64{1, 0, 0}
	v := []float64{5, 2, -1}
	Orthogonalize(v, q)
	if v[0] != 0 || v[1] != 2 || v[2] != -1 {
		t.Fatalf("Orthogonalize got %v", v)
	}
}

func TestEvolveDistPreservesMassAndStationarity(t *testing.T) {
	graphs := []*graph.Graph{
		graph.Cycle(9),
		graph.Complete(8, false),
		graph.Star(7),
		graph.Torus2D(4),
	}
	for _, g := range graphs {
		op := NewWalkOperator(g, 0)
		pi := op.StationaryDistribution()
		sum := 0.0
		for _, p := range pi {
			sum += p
		}
		if !almostEqual(sum, 1, 1e-12) {
			t.Fatalf("%s: stationary sum %v", g.Name(), sum)
		}
		out := make([]float64, g.N())
		op.EvolveDist(pi, out)
		for v := range pi {
			if !almostEqual(out[v], pi[v], 1e-12) {
				t.Fatalf("%s: π not stationary at %d: %v vs %v", g.Name(), v, out[v], pi[v])
			}
		}
		// Mass conservation from a point mass.
		p := make([]float64, g.N())
		p[0] = 1
		op.EvolveDist(p, out)
		mass := 0.0
		for _, v := range out {
			mass += v
		}
		if !almostEqual(mass, 1, 1e-12) {
			t.Fatalf("%s: mass %v after one step", g.Name(), mass)
		}
	}
}

func TestEvolveDistMatchesDense(t *testing.T) {
	g := graph.Torus2D(3)
	for _, stay := range []float64{0, 0.5} {
		op := NewWalkOperator(g, stay)
		dense := op.Dense()
		p := make([]float64, g.N())
		p[4] = 1
		sparseOut := make([]float64, g.N())
		op.EvolveDist(p, sparseOut)
		// Dense: out[u] = Σ_v p[v]·P[v][u] — row-vector times matrix.
		for u := 0; u < g.N(); u++ {
			s := 0.0
			for v := 0; v < g.N(); v++ {
				s += p[v] * dense.At(v, u)
			}
			if !almostEqual(sparseOut[u], s, 1e-12) {
				t.Fatalf("stay=%v: mismatch at %d: %v vs %v", stay, u, sparseOut[u], s)
			}
		}
	}
}

func TestDenseRowsAreStochastic(t *testing.T) {
	g := graph.Complete(6, true) // with self-loops
	op := NewWalkOperator(g, 0.3)
	d := op.Dense()
	for i := 0; i < g.N(); i++ {
		s := 0.0
		for j := 0; j < g.N(); j++ {
			s += d.At(i, j)
		}
		if !almostEqual(s, 1, 1e-12) {
			t.Fatalf("row %d sums to %v", i, s)
		}
	}
}

func TestSecondEigenvalueCompleteGraph(t *testing.T) {
	// K_n (no loops): P = (J-I)/(n-1); eigenvalues 1 and -1/(n-1).
	n := 20
	g := graph.Complete(n, false)
	op := NewWalkOperator(g, 0)
	got := SecondEigenvalueMagnitude(op, 300, rng.New(1))
	want := 1.0 / float64(n-1)
	if !almostEqual(got, want, 1e-6) {
		t.Fatalf("K%d λ = %v, want %v", n, got, want)
	}
}

func TestSecondEigenvalueCycle(t *testing.T) {
	// Cycle C_n: eigenvalues cos(2πk/n); λ₂ = cos(2π/n).
	n := 16
	op := NewWalkOperator(graph.Cycle(n), 0)
	got := SecondEigenvalueMagnitude(op, 4000, rng.New(2))
	// Even cycle is bipartite: λ_n = -1 dominates, so magnitude -> 1.
	if !almostEqual(got, 1, 1e-3) {
		t.Fatalf("even cycle λ = %v, want ~1 (bipartite)", got)
	}
	// Lazy walk kills periodicity: λ = 1/2 + cos(2π/n)/2.
	opLazy := NewWalkOperator(graph.Cycle(n), 0.5)
	gotLazy := SecondEigenvalueMagnitude(opLazy, 4000, rng.New(3))
	wantLazy := 0.5 + math.Cos(2*math.Pi/float64(n))/2
	if !almostEqual(gotLazy, wantLazy, 1e-4) {
		t.Fatalf("lazy cycle λ = %v, want %v", gotLazy, wantLazy)
	}
}

func TestSecondEigenvalueMatchesJacobi(t *testing.T) {
	graphs := []*graph.Graph{
		graph.Torus2D(4),
		graph.Star(9),
		graph.MargulisExpander(4),
		graph.Lollipop(6, 4),
	}
	r := rng.New(11)
	for _, g := range graphs {
		op := NewWalkOperator(g, 0.5)
		power := SecondEigenvalueMagnitude(op, 3000, r)
		eigs := SymmetricEigenvalues(SymmetricWalkMatrix(op), 60)
		// Jacobi's λ: second largest magnitude among all but the top (=1).
		if !almostEqual(eigs[0], 1, 1e-8) {
			t.Fatalf("%s: top eigenvalue %v != 1", g.Name(), eigs[0])
		}
		want := 0.0
		for i, e := range eigs {
			if i == 0 {
				continue
			}
			if math.Abs(e) > want {
				want = math.Abs(e)
			}
		}
		if !almostEqual(power, want, 1e-3) {
			t.Fatalf("%s: power λ=%v, jacobi λ=%v", g.Name(), power, want)
		}
	}
}

func TestJacobiKnownEigenvalues(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	a := NewMatrix(2, 2)
	a.Set(0, 0, 2)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 2)
	eig := SymmetricEigenvalues(a, 30)
	if !almostEqual(eig[0], 3, 1e-10) || !almostEqual(eig[1], 1, 1e-10) {
		t.Fatalf("eigs %v", eig)
	}
}

func TestExpanderHasLargeGap(t *testing.T) {
	// The Margulis construction must show a healthy spectral gap; this
	// certifies the expander generator for the Table 1 experiments.
	g := graph.MargulisExpander(12) // 144 vertices
	op := NewWalkOperator(g, 0)
	lambda := SecondEigenvalueMagnitude(op, 2000, rng.New(4))
	if lambda > 0.95 {
		t.Fatalf("margulis λ = %v: no usable spectral gap", lambda)
	}
	gap := SpectralGap(op, 2000, rng.New(4))
	if !almostEqual(gap, 1-lambda, 1e-9) {
		t.Fatalf("gap inconsistent: %v vs %v", gap, 1-lambda)
	}
}

func TestMatrixPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("MatVec", func() { NewMatrix(2, 2).MatVec([]float64{1}) })
	mustPanic("Mul", func() { NewMatrix(2, 3).Mul(NewMatrix(2, 2)) })
	mustPanic("Dot", func() { Dot([]float64{1}, []float64{1, 2}) })
	mustPanic("stay", func() { NewWalkOperator(graph.Cycle(3), 1.0) })
	mustPanic("NewMatrix", func() { NewMatrix(-1, 2) })
}

func BenchmarkEvolveDistTorus32(b *testing.B) {
	g := graph.Torus2D(32)
	op := NewWalkOperator(g, 0)
	p := op.StationaryDistribution()
	out := make([]float64, g.N())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op.EvolveDist(p, out)
		p, out = out, p
	}
}

func BenchmarkLUFactor128(b *testing.B) {
	r := rng.New(1)
	a := NewMatrix(128, 128)
	for i := range a.Data {
		a.Data[i] = r.Float64()
	}
	for i := 0; i < 128; i++ {
		a.Add(i, i, 130)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Factor(a); err != nil {
			b.Fatal(err)
		}
	}
}
