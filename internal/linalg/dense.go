// Package linalg provides the small dense and sparse linear-algebra kernels
// the reproduction needs: an LU solver for the fundamental-matrix hitting-
// time computation, vector helpers, a CSR transition operator for
// distribution evolution, and deflated power iteration for the second
// eigenvalue of random-walk matrices (used to certify expanders and bound
// mixing times). Everything is written against the standard library only.
package linalg

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols
}

// NewMatrix returns a zero matrix of the given shape.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("linalg: negative dimension")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// At returns element (i,j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i,j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Add accumulates v into element (i,j).
func (m *Matrix) Add(i, j int, v float64) { m.Data[i*m.Cols+j] += v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// MatVec computes y = M·x into a fresh slice.
func (m *Matrix) MatVec(x []float64) []float64 {
	if len(x) != m.Cols {
		panic("linalg: MatVec dimension mismatch")
	}
	y := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y
}

// Mul returns M·B.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic("linalg: Mul dimension mismatch")
	}
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		mrow := m.Data[i*m.Cols : (i+1)*m.Cols]
		orow := out.Data[i*out.Cols : (i+1)*out.Cols]
		for k, mv := range mrow {
			if mv == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bv := range brow {
				orow[j] += mv * bv
			}
		}
	}
	return out
}

// LU holds an LU factorization with partial pivoting: P·A = L·U.
type LU struct {
	lu   *Matrix
	perm []int
	sign float64
}

// Factor computes the LU factorization of the square matrix a (which is not
// modified). It returns an error for non-square or numerically singular
// input.
func Factor(a *Matrix) (*LU, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("linalg: Factor requires square matrix, got %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	lu := a.Clone()
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	sign := 1.0
	for col := 0; col < n; col++ {
		// Partial pivot: largest |entry| in column at or below the diagonal.
		pivot, pivotVal := col, math.Abs(lu.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(lu.At(r, col)); v > pivotVal {
				pivot, pivotVal = r, v
			}
		}
		if pivotVal < 1e-300 {
			return nil, fmt.Errorf("linalg: singular matrix at column %d", col)
		}
		if pivot != col {
			ri := lu.Data[pivot*n : (pivot+1)*n]
			rj := lu.Data[col*n : (col+1)*n]
			for k := range ri {
				ri[k], rj[k] = rj[k], ri[k]
			}
			perm[pivot], perm[col] = perm[col], perm[pivot]
			sign = -sign
		}
		d := lu.At(col, col)
		for r := col + 1; r < n; r++ {
			f := lu.At(r, col) / d
			lu.Set(r, col, f)
			if f == 0 {
				continue
			}
			rrow := lu.Data[r*n : (r+1)*n]
			crow := lu.Data[col*n : (col+1)*n]
			for k := col + 1; k < n; k++ {
				rrow[k] -= f * crow[k]
			}
		}
	}
	return &LU{lu: lu, perm: perm, sign: sign}, nil
}

// Solve returns x with A·x = b.
func (f *LU) Solve(b []float64) []float64 {
	n := f.lu.Rows
	if len(b) != n {
		panic("linalg: Solve dimension mismatch")
	}
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = b[f.perm[i]]
	}
	// Forward substitution with unit-diagonal L.
	for i := 1; i < n; i++ {
		row := f.lu.Data[i*n : (i+1)*n]
		s := x[i]
		for j := 0; j < i; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s
	}
	// Back substitution with U.
	for i := n - 1; i >= 0; i-- {
		row := f.lu.Data[i*n : (i+1)*n]
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s / row[i]
	}
	return x
}

// Inverse returns A^{-1} by solving against the identity columns.
func (f *LU) Inverse() *Matrix {
	n := f.lu.Rows
	inv := NewMatrix(n, n)
	e := make([]float64, n)
	for c := 0; c < n; c++ {
		e[c] = 1
		x := f.Solve(e)
		for r := 0; r < n; r++ {
			inv.Set(r, c, x[r])
		}
		e[c] = 0
	}
	return inv
}

// Det returns the determinant from the factorization.
func (f *LU) Det() float64 {
	n := f.lu.Rows
	d := f.sign
	for i := 0; i < n; i++ {
		d *= f.lu.At(i, i)
	}
	return d
}

// SolveSystem is a convenience wrapper: factor a and solve a single system.
func SolveSystem(a *Matrix, b []float64) ([]float64, error) {
	f, err := Factor(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b), nil
}
