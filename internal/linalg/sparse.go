package linalg

import (
	"math"

	"manywalks/internal/graph"
)

// WalkOperator is the (possibly lazy) simple-random-walk transition operator
// of a graph in sparse form: P = stay·I + (1-stay)·D^{-1}A. Distributions are
// row vectors and evolve as p ← pP; EvolveDist implements exactly that
// without materializing the n×n matrix.
type WalkOperator struct {
	g          *graph.Graph
	stay       float64   // self-transition probability added uniformly (laziness)
	invDeg     []float64 // 1/deg(v), cached
	sqrtInvDeg []float64 // 1/sqrt(deg(v)), cached for the symmetric operator
}

// NewWalkOperator returns the operator for the simple random walk on g.
// stay is the laziness: 0 gives the paper's simple walk, 0.5 the standard
// lazy walk that removes periodicity on bipartite graphs. Vertices of degree
// zero would make the walk undefined; the constructor panics on them.
func NewWalkOperator(g *graph.Graph, stay float64) *WalkOperator {
	if stay < 0 || stay >= 1 {
		panic("linalg: stay probability must be in [0,1)")
	}
	n := g.N()
	inv := make([]float64, n)
	sqrtInv := make([]float64, n)
	for v := 0; v < n; v++ {
		d := g.Degree(int32(v))
		if d == 0 {
			panic("linalg: walk operator on graph with isolated vertex")
		}
		inv[v] = 1 / float64(d)
		sqrtInv[v] = math.Sqrt(inv[v])
	}
	return &WalkOperator{g: g, stay: stay, invDeg: inv, sqrtInvDeg: sqrtInv}
}

// N returns the dimension.
func (op *WalkOperator) N() int { return op.g.N() }

// Stay returns the laziness parameter.
func (op *WalkOperator) Stay() float64 { return op.stay }

// EvolveDist computes out = p·P for a distribution (row vector) p.
// out must have length n and may not alias p.
func (op *WalkOperator) EvolveDist(p, out []float64) {
	n := op.g.N()
	if len(p) != n || len(out) != n {
		panic("linalg: EvolveDist dimension mismatch")
	}
	move := 1 - op.stay
	for v := range out {
		out[v] = op.stay * p[v]
	}
	for v := 0; v < n; v++ {
		if p[v] == 0 {
			continue
		}
		w := move * p[v] * op.invDeg[v]
		for _, u := range op.g.Neighbors(int32(v)) {
			out[u] += w
		}
	}
}

// ApplySym computes out = S·x where S = stay·I + (1-stay)·D^{-1/2}AD^{-1/2}
// is the symmetric matrix similar to P. S and P share eigenvalues; the top
// eigenvector of S is proportional to sqrt(deg). out must not alias x.
func (op *WalkOperator) ApplySym(x, out []float64) {
	n := op.g.N()
	if len(x) != n || len(out) != n {
		panic("linalg: ApplySym dimension mismatch")
	}
	move := 1 - op.stay
	for v := 0; v < n; v++ {
		s := 0.0
		for _, u := range op.g.Neighbors(int32(v)) {
			// A_vu / sqrt(d_v d_u), split across the two cached factors.
			s += x[u] * op.sqrtInvDeg[u]
		}
		out[v] = op.stay*x[v] + move*s*op.sqrtInvDeg[v]
	}
}

// StationaryDistribution returns π with π(v) ∝ deg(v); laziness does not
// change the stationary distribution.
func (op *WalkOperator) StationaryDistribution() []float64 {
	n := op.g.N()
	pi := make([]float64, n)
	total := float64(op.g.TotalDegree())
	for v := 0; v < n; v++ {
		pi[v] = float64(op.g.Degree(int32(v))) / total
	}
	return pi
}

// Dense materializes P as a dense matrix; intended for tests and for the
// fundamental-matrix computation on moderate n.
func (op *WalkOperator) Dense() *Matrix {
	n := op.g.N()
	m := NewMatrix(n, n)
	move := 1 - op.stay
	for v := 0; v < n; v++ {
		m.Add(v, v, op.stay)
		w := move * op.invDeg[v]
		for _, u := range op.g.Neighbors(int32(v)) {
			m.Add(v, int(u), w)
		}
	}
	return m
}
