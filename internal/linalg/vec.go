package linalg

import "math"

// Dot returns the inner product of equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("linalg: Dot length mismatch")
	}
	s := 0.0
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm.
func Norm2(a []float64) float64 { return math.Sqrt(Dot(a, a)) }

// Norm1 returns the L1 norm.
func Norm1(a []float64) float64 {
	s := 0.0
	for _, v := range a {
		s += math.Abs(v)
	}
	return s
}

// NormInf returns the max-abs norm.
func NormInf(a []float64) float64 {
	s := 0.0
	for _, v := range a {
		if av := math.Abs(v); av > s {
			s = av
		}
	}
	return s
}

// Scale multiplies a in place by f and returns it.
func Scale(a []float64, f float64) []float64 {
	for i := range a {
		a[i] *= f
	}
	return a
}

// AXPY computes y += alpha*x in place.
func AXPY(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic("linalg: AXPY length mismatch")
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Normalize scales a to unit Euclidean norm in place; zero vectors are left
// unchanged. Returns the original norm.
func Normalize(a []float64) float64 {
	n := Norm2(a)
	if n > 0 {
		Scale(a, 1/n)
	}
	return n
}

// Orthogonalize removes from v its component along the unit vector q.
func Orthogonalize(v, q []float64) {
	AXPY(-Dot(v, q), q, v)
}

// L1Distance returns Σ|a_i - b_i|, the distance used by the paper's mixing
// time definition (twice the total-variation distance).
func L1Distance(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("linalg: L1Distance length mismatch")
	}
	s := 0.0
	for i, v := range a {
		s += math.Abs(v - b[i])
	}
	return s
}
