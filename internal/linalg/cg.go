package linalg

import (
	"fmt"
	"math"
)

// LinearOperator is any symmetric positive-(semi)definite operator usable by
// the conjugate-gradient solver; it computes out = A·x without materializing
// A.
type LinearOperator interface {
	Dim() int
	Apply(x, out []float64)
}

// CGOptions tunes ConjugateGradient.
type CGOptions struct {
	MaxIters int     // 0 = 10·dim
	Tol      float64 // relative residual target; 0 = 1e-10
}

// ConjugateGradient solves A·x = b for symmetric positive-definite A (or a
// positive-semidefinite A with b orthogonal to its null space, the grounded-
// Laplacian case). It returns the solution, the iterations used, and the
// final relative residual.
func ConjugateGradient(a LinearOperator, b []float64, opts CGOptions) ([]float64, int, float64, error) {
	n := a.Dim()
	if len(b) != n {
		return nil, 0, 0, fmt.Errorf("linalg: CG dimension mismatch")
	}
	if opts.MaxIters <= 0 {
		opts.MaxIters = 10 * n
	}
	if opts.Tol <= 0 {
		opts.Tol = 1e-10
	}
	bNorm := Norm2(b)
	if bNorm == 0 {
		return make([]float64, n), 0, 0, nil
	}
	x := make([]float64, n)
	r := append([]float64(nil), b...) // residual b - A·0
	p := append([]float64(nil), b...)
	ap := make([]float64, n)
	rsOld := Dot(r, r)
	for it := 1; it <= opts.MaxIters; it++ {
		a.Apply(p, ap)
		pap := Dot(p, ap)
		if pap <= 0 {
			return nil, it, math.Sqrt(rsOld) / bNorm,
				fmt.Errorf("linalg: CG operator not positive definite (pᵀAp=%v)", pap)
		}
		alpha := rsOld / pap
		AXPY(alpha, p, x)
		AXPY(-alpha, ap, r)
		rsNew := Dot(r, r)
		if math.Sqrt(rsNew)/bNorm < opts.Tol {
			return x, it, math.Sqrt(rsNew) / bNorm, nil
		}
		beta := rsNew / rsOld
		for i := range p {
			p[i] = r[i] + beta*p[i]
		}
		rsOld = rsNew
	}
	return x, opts.MaxIters, math.Sqrt(rsOld) / bNorm,
		fmt.Errorf("linalg: CG did not converge in %d iterations (residual %.3g)",
			opts.MaxIters, math.Sqrt(rsOld)/bNorm)
}

// DenseOperator adapts a dense Matrix to LinearOperator.
type DenseOperator struct{ M *Matrix }

// Dim returns the operator dimension.
func (d DenseOperator) Dim() int { return d.M.Rows }

// Apply computes out = M·x.
func (d DenseOperator) Apply(x, out []float64) {
	y := d.M.MatVec(x)
	copy(out, y)
}
