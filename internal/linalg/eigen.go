package linalg

import (
	"math"

	"manywalks/internal/rng"
)

// SecondEigenvalueMagnitude estimates λ := max(|λ₂|, |λₙ|) of the walk
// operator — the quantity the paper calls λ for an (n,d,λ)-graph, divided by
// d (the paper's λ is on the adjacency scale; ours is on the transition
// scale, i.e. paper-λ/d). It runs norm-based power iteration on the
// symmetric similar matrix S with the known top eigenvector (∝ √deg)
// deflated. Convergence is geometric with ratio λ₃/λ₂; iters=O(log n / gap)
// is ample for the graphs used here.
//
// The norm-growth estimator is used instead of a Rayleigh quotient because
// it converges to max|λᵢ| even when λ₂ and λₙ have opposite signs and equal
// magnitude (e.g. bipartite graphs, where the estimate tends to 1).
func SecondEigenvalueMagnitude(op *WalkOperator, iters int, r *rng.Source) float64 {
	n := op.N()
	if n == 1 {
		return 0
	}
	// Top eigenvector of S: u1(v) = sqrt(deg v), normalized.
	u1 := make([]float64, n)
	for v := 0; v < n; v++ {
		u1[v] = 1 / op.sqrtInvDeg[v]
	}
	Normalize(u1)

	x := make([]float64, n)
	for i := range x {
		x[i] = r.Float64() - 0.5
	}
	Orthogonalize(x, u1)
	if Normalize(x) == 0 {
		// Astronomically unlikely; restart deterministically.
		x[0], x[n-1] = 1, -1
		Orthogonalize(x, u1)
		Normalize(x)
	}
	y := make([]float64, n)
	est := 0.0
	for it := 0; it < iters; it++ {
		op.ApplySym(x, y)
		// Re-deflate every step: floating-point drift re-introduces a u1
		// component that would otherwise swamp the estimate.
		Orthogonalize(y, u1)
		est = Normalize(y)
		x, y = y, x
	}
	return est
}

// SpectralGap returns 1 - SecondEigenvalueMagnitude, the absolute spectral
// gap of the walk; the relaxation time is its reciprocal.
func SpectralGap(op *WalkOperator, iters int, r *rng.Source) float64 {
	return 1 - SecondEigenvalueMagnitude(op, iters, r)
}

// SymmetricEigenvalues computes all eigenvalues of a symmetric matrix with
// the cyclic Jacobi method, returned in descending order. It is O(n³) per
// sweep and meant for validation on small matrices (tests compare it with
// the power-iteration estimate). The input is not modified.
func SymmetricEigenvalues(a *Matrix, sweeps int) []float64 {
	if a.Rows != a.Cols {
		panic("linalg: SymmetricEigenvalues requires square matrix")
	}
	n := a.Rows
	m := a.Clone()
	for s := 0; s < sweeps; s++ {
		off := 0.0
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				off += m.At(p, q) * m.At(p, q)
			}
		}
		if off < 1e-24 {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := m.At(p, q)
				if math.Abs(apq) < 1e-15 {
					continue
				}
				app, aqq := m.At(p, p), m.At(q, q)
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				sn := t * c
				// Rotate rows/columns p and q.
				for k := 0; k < n; k++ {
					akp, akq := m.At(k, p), m.At(k, q)
					m.Set(k, p, c*akp-sn*akq)
					m.Set(k, q, sn*akp+c*akq)
				}
				for k := 0; k < n; k++ {
					apk, aqk := m.At(p, k), m.At(q, k)
					m.Set(p, k, c*apk-sn*aqk)
					m.Set(q, k, sn*apk+c*aqk)
				}
			}
		}
	}
	eig := make([]float64, n)
	for i := 0; i < n; i++ {
		eig[i] = m.At(i, i)
	}
	// Descending insertion sort; n is small here.
	for i := 1; i < n; i++ {
		v := eig[i]
		j := i - 1
		for j >= 0 && eig[j] < v {
			eig[j+1] = eig[j]
			j--
		}
		eig[j+1] = v
	}
	return eig
}

// SymmetricWalkMatrix returns the dense symmetric matrix S similar to the
// walk operator, for use with SymmetricEigenvalues in validation.
func SymmetricWalkMatrix(op *WalkOperator) *Matrix {
	n := op.N()
	s := NewMatrix(n, n)
	move := 1 - op.stay
	for v := 0; v < n; v++ {
		s.Add(v, v, op.stay)
		for _, u := range op.g.Neighbors(int32(v)) {
			s.Add(v, int(u), move*op.sqrtInvDeg[v]*op.sqrtInvDeg[u])
		}
	}
	return s
}
