// Package rng provides a small, fast, deterministic pseudo-random number
// generator used by all simulation code in this repository.
//
// The generator is xoshiro256++ seeded through splitmix64, following the
// reference constructions by Blackman and Vigna. It is not cryptographically
// secure; it is chosen for speed, reproducibility across Go versions, and
// cheap derivation of statistically independent streams, which the Monte
// Carlo drivers use to run one stream per trial.
package rng

import "math/bits"

// Source is a xoshiro256++ pseudo-random generator. The zero value is not
// valid; construct one with New or NewStream.
type Source struct {
	s0, s1, s2, s3 uint64
}

// splitmix64 advances *x by the splitmix64 step and returns the next output.
// It is used only for seeding, as recommended by the xoshiro authors.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Source seeded from the given seed. Distinct seeds give
// uncorrelated sequences for all practical purposes.
func New(seed uint64) *Source {
	var r Source
	r.Reseed(seed)
	return &r
}

// NewStream returns the stream-th generator derived from a root seed.
// Streams with different (seed, stream) pairs are independent; this is the
// mechanism used to give each Monte Carlo trial its own generator.
func NewStream(seed, stream uint64) *Source {
	return New(StreamSeed(seed, stream))
}

// StreamSeed returns the derived seed NewStream(seed, stream) reseeds with.
// The batched walk engine uses it to initialize per-walker streams in place
// (one Source per walker in a flat slice) without allocating a Source per
// walker; Reseed(StreamSeed(seed, i)) is state-identical to
// *NewStream(seed, i).
func StreamSeed(seed, stream uint64) uint64 {
	x := seed
	a := splitmix64(&x)
	x = stream ^ 0x9e3779b97f4a7c15
	b := splitmix64(&x)
	return a ^ bits.RotateLeft64(b, 31)
}

// Reseed re-initializes the state from seed via splitmix64.
func (r *Source) Reseed(seed uint64) {
	x := seed
	r.s0 = splitmix64(&x)
	r.s1 = splitmix64(&x)
	r.s2 = splitmix64(&x)
	r.s3 = splitmix64(&x)
	// xoshiro256++ requires a state that is not all zero; splitmix64 of any
	// seed cannot produce four zero words, but guard anyway.
	if r.s0|r.s1|r.s2|r.s3 == 0 {
		r.s3 = 1
	}
}

// State returns the four xoshiro256++ state words. Together with SetState
// it lets register-resident hot loops (the batched walk engine's step
// kernel) carry the generator in locals across many steps instead of
// calling Uint64 through a pointer; the loop must apply the exact xoshiro
// update from Uint64, which the engine's tests pin against this package.
func (r *Source) State() (s0, s1, s2, s3 uint64) {
	return r.s0, r.s1, r.s2, r.s3
}

// SetState overwrites the state words; the state must not be all zero.
func (r *Source) SetState(s0, s1, s2, s3 uint64) {
	if s0|s1|s2|s3 == 0 {
		panic("rng: all-zero state")
	}
	r.s0, r.s1, r.s2, r.s3 = s0, s1, s2, s3
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Source) Uint64() uint64 {
	result := bits.RotateLeft64(r.s0+r.s3, 23) + r.s0
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = bits.RotateLeft64(r.s3, 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
// It uses Lemire's multiply-shift rejection method, which avoids the modulo
// bias of naive reduction and the division of the classic approach.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	un := uint64(n)
	hi, lo := bits.Mul64(r.Uint64(), un)
	if lo < un {
		thresh := -un % un
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), un)
		}
	}
	return int(hi)
}

// Int31n is a convenience wrapper mirroring Intn for int32 ranges; graph
// vertex indices are int32 in the CSR representation.
func (r *Source) Int31n(n int32) int32 {
	return int32(r.Intn(int(n)))
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Bool returns a fair coin flip.
func (r *Source) Bool() bool {
	return r.Uint64()&1 == 1
}

// Perm returns a uniformly random permutation of [0, n) as a fresh slice.
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle performs a Fisher–Yates shuffle of n elements using swap.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Binomial returns a sample from Binomial(n, 1/2) by counting bits of
// n/64 random words plus a masked remainder. It is used by the Proposition 23
// experiment, where only the fair-coin case is needed.
func (r *Source) Binomial(n int) int {
	c := 0
	for ; n >= 64; n -= 64 {
		c += bits.OnesCount64(r.Uint64())
	}
	if n > 0 {
		c += bits.OnesCount64(r.Uint64() & (1<<uint(n) - 1))
	}
	return c
}

// Jump advances the generator by 2^128 steps, equivalent to that many calls
// to Uint64. It can be used to carve one seeded sequence into long
// non-overlapping blocks.
func (r *Source) Jump() {
	jump := [4]uint64{0x180ec6d33cfd0aba, 0xd5a61266f0c9392c, 0xa9582618e03fc9aa, 0x39abdc4529b1661c}
	var s0, s1, s2, s3 uint64
	for _, j := range jump {
		for b := 0; b < 64; b++ {
			if j&(1<<uint(b)) != 0 {
				s0 ^= r.s0
				s1 ^= r.s1
				s2 ^= r.s2
				s3 ^= r.s3
			}
			r.Uint64()
		}
	}
	r.s0, r.s1, r.s2, r.s3 = s0, s1, s2, s3
}
