package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestDistinctSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 produced %d identical words of 100", same)
	}
}

func TestStreamsIndependent(t *testing.T) {
	// Distinct stream ids under the same root seed must give distinct output.
	a, b := NewStream(7, 0), NewStream(7, 1)
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			t.Fatalf("streams 0 and 1 collided at word %d", i)
		}
	}
	// Same (seed, stream) must reproduce.
	c, d := NewStream(7, 3), NewStream(7, 3)
	for i := 0; i < 64; i++ {
		if c.Uint64() != d.Uint64() {
			t.Fatalf("stream reproduction failed at word %d", i)
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	// Chi-squared test over 8 buckets; threshold is the 99.9% quantile of
	// chi2 with 7 dof (24.32), generous enough to avoid flakiness while
	// catching gross bias.
	r := New(12345)
	const buckets, samples = 8, 80000
	var count [buckets]int
	for i := 0; i < samples; i++ {
		count[r.Intn(buckets)]++
	}
	expected := float64(samples) / buckets
	chi2 := 0.0
	for _, c := range count {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	if chi2 > 24.32 {
		t.Fatalf("chi2 = %.2f exceeds 24.32; counts %v", chi2, count)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(9)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
		sum += f
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %.4f far from 0.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(11)
	check := func(n uint8) bool {
		p := r.Perm(int(n))
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= int(n) || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPermUniformFirstElement(t *testing.T) {
	// The first element of Perm(4) should be uniform over {0,1,2,3}.
	r := New(17)
	var count [4]int
	const trials = 40000
	for i := 0; i < trials; i++ {
		count[r.Perm(4)[0]]++
	}
	for i, c := range count {
		frac := float64(c) / trials
		if math.Abs(frac-0.25) > 0.02 {
			t.Fatalf("Perm first-element bias at %d: %.3f", i, frac)
		}
	}
}

func TestBinomialMoments(t *testing.T) {
	r := New(23)
	const n, trials = 100, 20000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < trials; i++ {
		x := float64(r.Binomial(n))
		sum += x
		sumsq += x * x
	}
	mean := sum / trials
	variance := sumsq/trials - mean*mean
	if math.Abs(mean-50) > 0.5 {
		t.Fatalf("Binomial(100,1/2) mean %.3f far from 50", mean)
	}
	if math.Abs(variance-25) > 2.5 {
		t.Fatalf("Binomial(100,1/2) variance %.3f far from 25", variance)
	}
}

func TestBinomialSmallN(t *testing.T) {
	r := New(5)
	for n := 0; n <= 3; n++ {
		for i := 0; i < 100; i++ {
			x := r.Binomial(n)
			if x < 0 || x > n {
				t.Fatalf("Binomial(%d) = %d out of range", n, x)
			}
		}
	}
}

func TestJumpDisjointness(t *testing.T) {
	// After a jump, the next outputs must differ from the pre-jump sequence
	// start (they are 2^128 steps ahead).
	a := New(99)
	first := a.Uint64()
	b := New(99)
	b.Jump()
	if b.Uint64() == first {
		t.Fatal("jumped generator repeated the origin sequence")
	}
}

func TestBoolBalance(t *testing.T) {
	r := New(31)
	heads := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool() {
			heads++
		}
	}
	if math.Abs(float64(heads)/n-0.5) > 0.01 {
		t.Fatalf("Bool heads fraction %.4f", float64(heads)/n)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += r.Intn(1000003)
	}
	_ = sink
}
