package graph

import (
	"bytes"
	"strings"
	"testing"
)

// weightedTestGraph builds a small weighted graph with irregular degrees,
// a self-loop, and non-integral weights.
func weightedTestGraph(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder(5)
	b.AddWeightedEdge(0, 1, 2.5)
	b.AddWeightedEdge(1, 2, 0.125)
	b.AddWeightedEdge(2, 3, 7)
	b.AddWeightedEdge(3, 4, 1e-3)
	b.AddWeightedEdge(4, 0, 3)
	b.AddWeightedEdge(2, 2, 0.75) // self-loop
	b.AddEdge(0, 2)               // plain edge: weight 1
	g := b.Build("wtest(5)")
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if !g.Weighted() {
		t.Fatal("graph should be weighted")
	}
	return g
}

// sameGraph compares topology, name, and weights of two graphs.
func sameGraph(t *testing.T, got, want *Graph) {
	t.Helper()
	if got.N() != want.N() || got.M() != want.M() || got.SelfLoops() != want.SelfLoops() {
		t.Fatalf("shape mismatch: got (%d,%d,%d) want (%d,%d,%d)",
			got.N(), got.M(), got.SelfLoops(), want.N(), want.M(), want.SelfLoops())
	}
	if got.Name() != want.Name() {
		t.Fatalf("name %q does not round-trip, got %q", want.Name(), got.Name())
	}
	if got.Weighted() != want.Weighted() {
		t.Fatalf("weighted flag: got %v want %v", got.Weighted(), want.Weighted())
	}
	for v := int32(0); v < int32(want.N()); v++ {
		gn, wn := got.Neighbors(v), want.Neighbors(v)
		if len(gn) != len(wn) {
			t.Fatalf("degree of %d: got %d want %d", v, len(gn), len(wn))
		}
		for i := range wn {
			if gn[i] != wn[i] {
				t.Fatalf("neighbor %d of %d: got %d want %d", i, v, gn[i], wn[i])
			}
			if got.EdgeWeight(v, i) != want.EdgeWeight(v, i) {
				t.Fatalf("weight %d of %d: got %v want %v",
					i, v, got.EdgeWeight(v, i), want.EdgeWeight(v, i))
			}
		}
	}
}

func TestWeightedEdgeListRoundTrip(t *testing.T) {
	for _, g := range []*Graph{Cycle(9), weightedTestGraph(t)} {
		var buf bytes.Buffer
		if err := g.WriteEdgeList(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := ReadEdgeList(&buf)
		if err != nil {
			t.Fatal(err)
		}
		sameGraph(t, got, g)
		if err := got.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestWeightedBinaryRoundTrip(t *testing.T) {
	for _, g := range []*Graph{MargulisExpander(4), weightedTestGraph(t)} {
		var buf bytes.Buffer
		if err := g.WriteBinary(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			t.Fatal(err)
		}
		sameGraph(t, got, g)
		if err := got.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestReadEdgeListRejectsBadWeights(t *testing.T) {
	for _, body := range []string{
		"2 1\n0 1 0\n",    // zero weight
		"2 1\n0 1 -2\n",   // negative weight
		"2 1\n0 1 +Inf\n", // infinite weight
		"2 1\n0 1 NaN\n",  // NaN weight
		"2 1\n0 1 x\n",    // unparseable weight
	} {
		if _, err := ReadEdgeList(strings.NewReader(body)); err == nil {
			t.Fatalf("edge list %q should be rejected", body)
		}
	}
}

func TestReadBinaryRejectsOldVersion(t *testing.T) {
	var buf bytes.Buffer
	if err := Cycle(4).WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[4] = 1 // patch the version word down to the retired layout
	if _, err := ReadBinary(bytes.NewReader(raw)); err == nil {
		t.Fatal("version-1 payload should be rejected")
	}
}

func TestReweight(t *testing.T) {
	g := Torus2D(4)
	wg := Reweight(g, func(u, v int32) float64 { return float64(u+v) + 1 })
	if err := wg.Validate(); err != nil {
		t.Fatal(err)
	}
	if !wg.Weighted() || wg.Name() != g.Name() || wg.N() != g.N() || wg.M() != g.M() {
		t.Fatal("Reweight changed the topology or name")
	}
	if g.Weighted() {
		t.Fatal("Reweight mutated the source graph")
	}
	// Spot-check symmetry through the public accessors.
	for v := int32(0); v < int32(wg.N()); v++ {
		for i, u := range wg.Neighbors(v) {
			a, b := v, u
			if a > b {
				a, b = b, a
			}
			if want := float64(a+b) + 1; wg.EdgeWeight(v, i) != want {
				t.Fatalf("weight of {%d,%d} = %v, want %v", v, u, wg.EdgeWeight(v, i), want)
			}
		}
	}
	if uw := wg.Unweighted(); uw.Weighted() || uw.N() != g.N() {
		t.Fatal("Unweighted view broken")
	}
}

func TestBuilderWeightCoalescing(t *testing.T) {
	b := NewBuilder(3)
	b.AddWeightedEdge(0, 1, 1.5)
	b.AddWeightedEdge(1, 0, 2.5) // duplicate in the other orientation: sums
	b.AddEdge(1, 2)
	g := b.Build("dup")
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.M() != 2 {
		t.Fatalf("M=%d, want 2", g.M())
	}
	if w := g.EdgeWeight(0, 0); w != 4 {
		t.Fatalf("coalesced weight %v, want 4", w)
	}
	if wd := g.WeightedDegree(1); wd != 5 {
		t.Fatalf("weighted degree of 1 = %v, want 5", wd)
	}
}
