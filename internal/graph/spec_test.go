package graph

import (
	"strings"
	"testing"
)

// TestParseSpecKinds pins every spec kind against its generator.
func TestParseSpecKinds(t *testing.T) {
	cases := []struct {
		spec string
		n    int
	}{
		{"cycle:16", 16},
		{"path:9", 9},
		{"complete:8", 8},
		{"complete:8:1", 8},
		{"complete:8:0", 8},
		{"star:7", 7},
		{"torus:5", 25},
		{"grid2d:4", 16},
		{"hypercube:4", 16},
		{"tree:2:3", 15},
		{"barbell:9", 9},
		{"lollipop:5:4", 9},
		{"margulis:6", 36},
		{"expander:6", 36},
		{"chords:11", 11},
		{" Cycle:16 ", 16}, // case/space insensitive
	}
	for _, c := range cases {
		g, err := ParseSpec(c.spec)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", c.spec, err)
		}
		if g.N() != c.n {
			t.Fatalf("ParseSpec(%q): n = %d, want %d", c.spec, g.N(), c.n)
		}
	}
	withLoops, _ := ParseSpec("complete:8:1")
	noLoops, _ := ParseSpec("complete:8:0")
	if withLoops.SelfLoops() != 8 || noLoops.SelfLoops() != 0 {
		t.Fatalf("complete loops flag: %d / %d self-loops", withLoops.SelfLoops(), noLoops.SelfLoops())
	}
}

// TestParseSpecErrors: malformed and out-of-range specs are errors, never
// panics — these strings arrive from daemon flags.
func TestParseSpecErrors(t *testing.T) {
	bad := []string{
		"",          // no kind
		"mobius:5",  // unknown kind
		"cycle",     // missing parameter
		"cycle:x",   // non-integer
		"cycle:0",   // non-positive
		"cycle:2",   // generator precondition (n >= 3) -> recovered panic
		"barbell:8", // barbell wants odd n
		"hypercube:40",
		"torus:1",
		"tree:1:3",
		"lollipop:1:1",
		"cycle:4:4", // parameter count
	}
	for _, spec := range bad {
		g, err := ParseSpec(spec)
		if err == nil {
			t.Fatalf("ParseSpec(%q) accepted (n=%d)", spec, g.N())
		}
		if !strings.Contains(err.Error(), "graph:") {
			t.Fatalf("ParseSpec(%q): undescriptive error %v", spec, err)
		}
	}
}
