package graph

import (
	"fmt"
	"math"

	"manywalks/internal/rng"
)

// ErdosRenyi returns a sample of G(n, p), retrying from fresh randomness via
// the provided source. Sampling uses geometric skipping, so the cost is
// O(n + m) rather than O(n²) for sparse p. The result may be disconnected;
// callers who need connectivity use ConnectedErdosRenyi.
func ErdosRenyi(n int, p float64, r *rng.Source) *Graph {
	if n < 1 || p < 0 || p > 1 {
		panic("graph: ErdosRenyi requires n >= 1, p in [0,1]")
	}
	b := NewBuilder(n)
	if p > 0 {
		logq := math.Log1p(-p) // log(1-p), negative
		if p == 1 {
			return Complete(n, false)
		}
		// Enumerate pairs (u,v), u<v, in lexicographic order by skipping a
		// Geometric(p) number of non-edges each time.
		idx := int64(-1)
		total := int64(n) * int64(n-1) / 2
		for {
			u := r.Float64()
			// Geometric skip: floor(log(U)/log(1-p)).
			skip := int64(math.Log(1-u) / logq)
			idx += 1 + skip
			if idx >= total {
				break
			}
			// Decode linear index -> (row, col) over the upper triangle.
			row, col := triangleDecode(idx, n)
			b.AddEdge(int32(row), int32(col))
		}
	}
	return b.Build(fmt.Sprintf("er(%d,p=%.4g)", n, p))
}

// triangleDecode maps a linear index over the strictly-upper-triangular
// n×n pairs (in row-major order) back to (row, col) with row < col.
func triangleDecode(idx int64, n int) (int, int) {
	// Row r starts at offset r*n - r*(r+1)/2 - r ... solve by scanning from a
	// good initial guess; n is at most a few million so float math positions
	// us within a couple of rows.
	nf := float64(n)
	r := int((2*nf - 1 - math.Sqrt((2*nf-1)*(2*nf-1)-8*float64(idx))) / 2)
	if r < 0 {
		r = 0
	}
	rowStart := func(r int) int64 {
		return int64(r)*int64(n) - int64(r)*int64(r+1)/2
	}
	for r > 0 && rowStart(r) > idx {
		r--
	}
	for r+1 < n && rowStart(r+1) <= idx {
		r++
	}
	c := r + 1 + int(idx-rowStart(r))
	return r, c
}

// ConnectedErdosRenyi samples G(n,p) repeatedly until a connected instance
// appears, up to maxTries attempts. The paper's Table 1 row concerns the
// regime p >= (1+ε)·ln n / n where connectivity holds with high probability,
// so a couple of tries suffice there.
func ConnectedErdosRenyi(n int, p float64, r *rng.Source, maxTries int) (*Graph, error) {
	for try := 0; try < maxTries; try++ {
		g := ErdosRenyi(n, p, r)
		if g.IsConnected() {
			return g, nil
		}
	}
	return nil, fmt.Errorf("graph: no connected G(%d,%.4g) in %d tries", n, p, maxTries)
}

// RandomRegular samples a simple d-regular graph on n vertices with the
// configuration (pairing) model followed by edge-switch repair: defective
// pairs (self-loops and parallel edges) are eliminated by double-edge swaps
// with uniformly chosen partner edges. Repair preserves the degree sequence
// exactly and perturbs the pairing distribution negligibly for the sizes
// used here (the expander experiments certify the spectral gap of each
// realized instance anyway, so no distributional assumption is load-bearing).
// n·d must be even.
func RandomRegular(n, d int, r *rng.Source, maxTries int) (*Graph, error) {
	if d < 1 || d >= n || n*d%2 != 0 {
		return nil, fmt.Errorf("graph: invalid regular parameters n=%d d=%d", n, d)
	}
	stubs := make([]int32, n*d)
	for try := 0; try < maxTries; try++ {
		for i := range stubs {
			stubs[i] = int32(i / d)
		}
		r.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
		if g, ok := repairPairing(stubs, n, d, r); ok {
			return g, nil
		}
	}
	return nil, fmt.Errorf("graph: no simple %d-regular pairing on %d vertices in %d tries", d, n, maxTries)
}

// repairPairing turns the stub pairing (stubs[2i], stubs[2i+1]) into a simple
// graph by repeatedly swapping a defective pair with a random other pair.
// It gives up (ok=false) if repair stalls, which triggers a fresh pairing.
func repairPairing(stubs []int32, n, d int, r *rng.Source) (*Graph, bool) {
	nPairs := len(stubs) / 2
	key := func(u, v int32) int64 {
		if u > v {
			u, v = v, u
		}
		return int64(u)<<32 | int64(v)
	}
	count := make(map[int64]int, nPairs)
	defective := func(i int) bool {
		u, v := stubs[2*i], stubs[2*i+1]
		return u == v || count[key(u, v)] > 1
	}
	for i := 0; i < nPairs; i++ {
		count[key(stubs[2*i], stubs[2*i+1])]++
	}
	var bad []int
	for i := 0; i < nPairs; i++ {
		if defective(i) {
			bad = append(bad, i)
		}
	}
	// Each successful switch strictly reduces defects or keeps them equal;
	// cap the effort to avoid pathological stalls.
	budget := 200 * (len(bad) + 1) * (d + 1)
	for len(bad) > 0 && budget > 0 {
		budget--
		i := bad[len(bad)-1]
		if !defective(i) {
			bad = bad[:len(bad)-1]
			continue
		}
		j := r.Intn(nPairs)
		if j == i {
			continue
		}
		u1, v1 := stubs[2*i], stubs[2*i+1]
		u2, v2 := stubs[2*j], stubs[2*j+1]
		// Propose the swap (u1,v1),(u2,v2) -> (u1,u2),(v1,v2).
		if u1 == u2 || v1 == v2 {
			continue
		}
		k1, k2 := key(u1, u2), key(v1, v2)
		if count[k1] > 0 || count[k2] > 0 || (k1 == k2) {
			continue
		}
		count[key(u1, v1)]--
		count[key(u2, v2)]--
		stubs[2*i+1], stubs[2*j] = u2, v1
		count[k1]++
		count[k2]++
		if defective(j) {
			bad = append(bad, j)
		}
	}
	for i := 0; i < nPairs; i++ {
		if defective(i) {
			return nil, false
		}
	}
	b := NewBuilder(n)
	for i := 0; i < nPairs; i++ {
		b.AddEdge(stubs[2*i], stubs[2*i+1])
	}
	return b.Build(fmt.Sprintf("regular(%d,d=%d)", n, d)), true
}

// ConnectedRandomRegular samples simple d-regular graphs until one is
// connected. Random d-regular graphs with d >= 3 are connected (indeed
// expanders) with high probability, so this rarely retries.
func ConnectedRandomRegular(n, d int, r *rng.Source, maxTries int) (*Graph, error) {
	for try := 0; try < maxTries; try++ {
		g, err := RandomRegular(n, d, r, maxTries)
		if err != nil {
			return nil, err
		}
		if g.IsConnected() {
			return g, nil
		}
	}
	return nil, fmt.Errorf("graph: no connected %d-regular graph on %d vertices in %d tries", d, n, maxTries)
}

// RandomGeometric samples n points uniformly in the unit square and connects
// pairs within Euclidean distance radius. A cell grid keeps construction
// near O(n) for the connectivity-threshold radius Θ(√(log n / n)) studied in
// the paper's reference [9]. It may be disconnected for small radii.
func RandomGeometric(n int, radius float64, r *rng.Source) *Graph {
	if n < 1 || radius <= 0 {
		panic("graph: RandomGeometric requires n >= 1, radius > 0")
	}
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = r.Float64()
		ys[i] = r.Float64()
	}
	cells := int(1 / radius)
	if cells < 1 {
		cells = 1
	}
	cellOf := func(x float64) int {
		c := int(x * float64(cells))
		if c >= cells {
			c = cells - 1
		}
		return c
	}
	grid := make(map[[2]int][]int32)
	for i := 0; i < n; i++ {
		key := [2]int{cellOf(xs[i]), cellOf(ys[i])}
		grid[key] = append(grid[key], int32(i))
	}
	b := NewBuilder(n)
	r2 := radius * radius
	for i := 0; i < n; i++ {
		ci, cj := cellOf(xs[i]), cellOf(ys[i])
		for di := -1; di <= 1; di++ {
			for dj := -1; dj <= 1; dj++ {
				for _, j := range grid[[2]int{ci + di, cj + dj}] {
					if int32(i) >= j {
						continue
					}
					dx := xs[i] - xs[j]
					dy := ys[i] - ys[j]
					if dx*dx+dy*dy <= r2 {
						b.AddEdge(int32(i), j)
					}
				}
			}
		}
	}
	return b.Build(fmt.Sprintf("rgg(%d,r=%.3f)", n, radius))
}
