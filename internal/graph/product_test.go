package graph

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"manywalks/internal/rng"
)

// graphsEqual compares two graphs structurally.
func graphsEqual(a, b *Graph) bool {
	if a.N() != b.N() || a.M() != b.M() || a.SelfLoops() != b.SelfLoops() {
		return false
	}
	for v := int32(0); v < int32(a.N()); v++ {
		na, nb := a.Neighbors(v), b.Neighbors(v)
		if len(na) != len(nb) {
			return false
		}
		for i := range na {
			if na[i] != nb[i] {
				return false
			}
		}
	}
	return true
}

func TestProductHypercubeIdentity(t *testing.T) {
	// K2 □ K2 □ K2 must be the 3-cube (up to the natural vertex order).
	k2 := Complete(2, false)
	cube := CartesianProduct(CartesianProduct(k2, k2), k2)
	want := Hypercube(3)
	if cube.N() != want.N() || cube.M() != want.M() {
		t.Fatalf("product cube N=%d M=%d, want %d %d", cube.N(), cube.M(), want.N(), want.M())
	}
	// The product's bit order reverses relative to Hypercube's, but both are
	// 3-regular bipartite with diameter 3 — verify the invariants and the
	// degree sequence rather than a vertex bijection.
	if reg, d := cube.IsRegular(); !reg || d != 3 {
		t.Fatal("product cube not 3-regular")
	}
	if !cube.IsBipartite() || cube.Diameter() != 3 {
		t.Fatal("product cube structure off")
	}
	requireValid(t, cube)
}

func TestProductTorusIdentity(t *testing.T) {
	// C_s □ C_s has the same structure as Torus2D(s): 4-regular, n=s²,
	// diameter s. (Vertex numbering matches exactly, in fact.)
	s := 5
	prod := CartesianProduct(Cycle(s), Cycle(s))
	want := Torus2D(s)
	if !graphsEqual(prod, want) {
		t.Fatal("C5 □ C5 != Torus2D(5)")
	}
}

func TestProductDegreeSum(t *testing.T) {
	check := func(aSeed, bSeed uint8) bool {
		r := rng.NewStream(uint64(aSeed)<<8|uint64(bSeed), 9)
		a := ErdosRenyi(3+int(aSeed)%5, 0.5, r)
		b := ErdosRenyi(3+int(bSeed)%5, 0.5, r)
		p := CartesianProduct(a, b)
		// deg_{G□H}(g,h) = deg_G(g) + deg_H(h).
		for g := int32(0); g < int32(a.N()); g++ {
			for h := int32(0); h < int32(b.N()); h++ {
				v := g*int32(b.N()) + h
				if p.Degree(v) != a.Degree(g)+b.Degree(h) {
					return false
				}
			}
		}
		return p.Validate() == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDisjointUnion(t *testing.T) {
	u := DisjointUnion(Cycle(4), Path(3))
	requireValid(t, u)
	if u.N() != 7 || u.M() != 4+2 {
		t.Fatalf("union N=%d M=%d", u.N(), u.M())
	}
	if u.IsConnected() {
		t.Fatal("disjoint union must be disconnected")
	}
	count, _ := u.Components()
	if count != 2 {
		t.Fatalf("components %d", count)
	}
	if !u.HasEdge(4, 5) || u.HasEdge(3, 4) {
		t.Fatal("shifted edges wrong")
	}
}

func TestWithSelfLoops(t *testing.T) {
	g := WithSelfLoops(Cycle(5))
	requireValid(t, g)
	if g.SelfLoops() != 5 || g.M() != 10 {
		t.Fatalf("loops=%d m=%d", g.SelfLoops(), g.M())
	}
	// Idempotent.
	g2 := WithSelfLoops(g)
	if g2.SelfLoops() != 5 || g2.M() != 10 {
		t.Fatal("WithSelfLoops not idempotent")
	}
	// Matches Complete(n, true) on the complete graph.
	if !graphsEqual(WithSelfLoops(Complete(4, false)), Complete(4, true)) {
		t.Fatal("complete+loops mismatch")
	}
}

func TestSubgraph(t *testing.T) {
	g := Complete(6, false)
	sub, relabel := Subgraph(g, []int32{1, 3, 5})
	requireValid(t, sub)
	if sub.N() != 3 || sub.M() != 3 { // induced triangle
		t.Fatalf("subgraph N=%d M=%d", sub.N(), sub.M())
	}
	if relabel[3] != 1 {
		t.Fatal("relabel order broken")
	}
	// Induced subgraph of a cycle on non-adjacent vertices has no edges.
	sub2, _ := Subgraph(Cycle(6), []int32{0, 2, 4})
	if sub2.M() != 0 {
		t.Fatal("independent set has edges")
	}
}

func TestSubgraphPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("dup", func() { Subgraph(Cycle(4), []int32{1, 1}) })
	mustPanic("range", func() { Subgraph(Cycle(4), []int32{7}) })
	mustPanic("empty factor", func() { CartesianProduct(&Graph{offsets: []int32{0}}, Cycle(3)) })
}

func TestWheel(t *testing.T) {
	g := Wheel(7) // hub + 6-cycle rim
	requireValid(t, g)
	if g.Degree(0) != 6 {
		t.Fatalf("hub degree %d", g.Degree(0))
	}
	for v := int32(1); v < 7; v++ {
		if g.Degree(v) != 3 {
			t.Fatalf("rim degree %d at %d", g.Degree(v), v)
		}
	}
	if g.M() != 12 || g.Diameter() != 2 {
		t.Fatalf("wheel M=%d diam=%d", g.M(), g.Diameter())
	}
}

func TestCompleteBipartite(t *testing.T) {
	g := CompleteBipartite(3, 4)
	requireValid(t, g)
	if g.N() != 7 || g.M() != 12 {
		t.Fatalf("K34 N=%d M=%d", g.N(), g.M())
	}
	if !g.IsBipartite() {
		t.Fatal("K_{a,b} not bipartite?!")
	}
	if g.HasEdge(0, 1) || !g.HasEdge(0, 3) {
		t.Fatal("side structure wrong")
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	graphs := []*Graph{
		Cycle(9),
		Complete(5, true),
		Star(6),
		MargulisExpander(4),
	}
	for _, g := range graphs {
		var buf bytes.Buffer
		if err := g.WriteEdgeList(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := ReadEdgeList(&buf)
		if err != nil {
			t.Fatalf("%s: %v", g.Name(), err)
		}
		if back.Name() != g.Name() || !graphsEqual(g, back) {
			t.Fatalf("%s: edge-list round trip mismatch", g.Name())
		}
	}
}

func TestEdgeListRejectsCorrupt(t *testing.T) {
	cases := []string{
		"",                   // empty
		"3\n0 1\n",           // bad header
		"3 1\n0 5\n",         // out of range
		"3 2\n0 1\n",         // edge count mismatch
		"3 1\nx y\n",         // non-numeric
		"-1 0\n",             // negative n
		"2 1\n0 1 2 9\n",     // bad arity (a third field is a weight)
		"# name x\n2 1\n0\n", // short edge line
	}
	for _, c := range cases {
		if _, err := ReadEdgeList(strings.NewReader(c)); err == nil {
			t.Fatalf("corrupt input accepted: %q", c)
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	r := rng.New(3)
	graphs := []*Graph{
		Cycle(100),
		ErdosRenyi(80, 0.1, r),
		Complete(10, true),
	}
	for _, g := range graphs {
		var buf bytes.Buffer
		if err := g.WriteBinary(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := ReadBinary(&buf)
		if err != nil {
			t.Fatalf("%s: %v", g.Name(), err)
		}
		if back.Name() != g.Name() || !graphsEqual(g, back) {
			t.Fatalf("%s: binary round trip mismatch", g.Name())
		}
	}
}

func TestBinaryRejectsCorrupt(t *testing.T) {
	var buf bytes.Buffer
	if err := Cycle(5).WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Bad magic.
	bad := append([]byte(nil), raw...)
	bad[0] ^= 0xff
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad magic accepted")
	}
	// Truncated payload.
	if _, err := ReadBinary(bytes.NewReader(raw[:len(raw)-3])); err == nil {
		t.Fatal("truncation accepted")
	}
	// Flipped adjacency byte breaks symmetry -> Validate must catch it.
	bad2 := append([]byte(nil), raw...)
	bad2[len(bad2)-2] ^= 0x01
	if _, err := ReadBinary(bytes.NewReader(bad2)); err == nil {
		t.Fatal("corrupt adjacency accepted")
	}
}

func TestEdgeListPropertyRoundTrip(t *testing.T) {
	check := func(seed uint16, n uint8) bool {
		r := rng.NewStream(uint64(seed), 77)
		g := ErdosRenyi(2+int(n)%20, 0.3, r)
		var buf bytes.Buffer
		if err := g.WriteEdgeList(&buf); err != nil {
			return false
		}
		back, err := ReadEdgeList(&buf)
		if err != nil {
			return false
		}
		return graphsEqual(g, back)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteDOT(t *testing.T) {
	var buf bytes.Buffer
	if err := Cycle(3).WriteDOT(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"graph \"cycle(3)\"", "0 -- 1;", "1 -- 2;", "0 -- 2;"} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT missing %q:\n%s", want, out)
		}
	}
}
