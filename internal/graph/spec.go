package graph

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseSpec builds a deterministic graph from a compact "kind:params" spec
// string — the shape the serving daemon and load generator take on the
// command line. Supported specs:
//
//	cycle:n        the n-cycle
//	path:n         the path on n vertices
//	complete:n     K_n (complete:n:loops adds a self-loop per vertex)
//	star:n         the star on n vertices
//	torus:side     the side×side 2-d torus
//	grid2d:side    the side×side 2-d grid (non-periodic)
//	hypercube:d    the d-dimensional hypercube
//	tree:a:h       the complete arity-a tree of height h
//	barbell:n      the paper's barbell B_n (odd n)
//	lollipop:c:p   clique of c with a path tail of p
//	margulis:m     the Margulis–Gabber–Galil expander on the m×m torus
//	expander:m     alias for margulis:m
//	chords:p       the 3-regular inverse-chord expander on a prime p
//
// The returned graph's Name reflects the spec. Out-of-range parameters
// (generator preconditions like cycle's n >= 3 or barbell's odd n) surface
// as errors, not panics — the specs arrive from daemon flags.
func ParseSpec(spec string) (g *Graph, err error) {
	defer func() {
		// The generators guard their preconditions with panics (their
		// documented library contract); a flag-supplied spec converts
		// them to errors instead of crashing the daemon.
		if r := recover(); r != nil {
			g, err = nil, fmt.Errorf("graph: bad spec %q: %v", spec, r)
		}
	}()
	kind, rest, _ := strings.Cut(strings.TrimSpace(spec), ":")
	kind = strings.ToLower(kind)
	args := []int{}
	if rest != "" {
		for _, f := range strings.Split(rest, ":") {
			v, err := strconv.Atoi(f)
			if err != nil {
				return nil, fmt.Errorf("graph: bad spec %q: parameter %q is not an integer", spec, f)
			}
			args = append(args, v)
		}
	}
	for i, v := range args {
		if kind == "complete" && i == 1 {
			continue // the loops flag is a 0/1 boolean
		}
		if v <= 0 {
			return nil, fmt.Errorf("graph: bad spec %q: parameters must be positive", spec)
		}
	}
	want := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("graph: spec %q wants %d parameter(s), got %d", spec, n, len(args))
		}
		return nil
	}
	switch kind {
	case "cycle":
		if err := want(1); err != nil {
			return nil, err
		}
		return Cycle(args[0]), nil
	case "path":
		if err := want(1); err != nil {
			return nil, err
		}
		return Path(args[0]), nil
	case "complete":
		if len(args) == 2 {
			return Complete(args[0], args[1] != 0), nil
		}
		if err := want(1); err != nil {
			return nil, err
		}
		return Complete(args[0], false), nil
	case "star":
		if err := want(1); err != nil {
			return nil, err
		}
		return Star(args[0]), nil
	case "torus":
		if err := want(1); err != nil {
			return nil, err
		}
		return Torus2D(args[0]), nil
	case "grid2d":
		if err := want(1); err != nil {
			return nil, err
		}
		return Grid([]int{args[0], args[0]}, false), nil
	case "hypercube":
		if err := want(1); err != nil {
			return nil, err
		}
		return Hypercube(args[0]), nil
	case "tree":
		if err := want(2); err != nil {
			return nil, err
		}
		return BalancedTree(args[0], args[1]), nil
	case "barbell":
		if err := want(1); err != nil {
			return nil, err
		}
		g, _ := Barbell(args[0])
		return g, nil
	case "lollipop":
		if err := want(2); err != nil {
			return nil, err
		}
		return Lollipop(args[0], args[1]), nil
	case "margulis", "expander":
		if err := want(1); err != nil {
			return nil, err
		}
		return MargulisExpander(args[0]), nil
	case "chords":
		if err := want(1); err != nil {
			return nil, err
		}
		return CycleWithChords(args[0]), nil
	}
	return nil, fmt.Errorf("graph: unknown spec kind %q (want cycle, path, complete, star, torus, grid2d, hypercube, tree, barbell, lollipop, margulis, chords)", kind)
}
