package graph

import "fmt"

// CartesianProduct returns the Cartesian product G □ H: vertices are pairs
// (g,h) encoded as g*H.N()+h, and (g,h)~(g',h') iff (g=g' and h~h') or
// (h=h' and g~g'). Classic identities make this a strong generator test
// bed: Hypercube(d) = K₂ □ ... □ K₂ and Torus2D(s) = C_s □ C_s.
func CartesianProduct(g, h *Graph) *Graph {
	ng, nh := g.N(), h.N()
	if ng == 0 || nh == 0 {
		panic("graph: product with empty factor")
	}
	n := ng * nh
	lists := make([][]int32, n)
	for a := 0; a < ng; a++ {
		degA := g.Degree(int32(a))
		for b := 0; b < nh; b++ {
			v := a*nh + b
			row := make([]int32, 0, degA+h.Degree(int32(b)))
			for _, a2 := range g.Neighbors(int32(a)) {
				row = append(row, a2*int32(nh)+int32(b))
			}
			for _, b2 := range h.Neighbors(int32(b)) {
				row = append(row, int32(a)*int32(nh)+b2)
			}
			lists[v] = row
		}
	}
	return fromAdjacency(lists, fmt.Sprintf("(%s)□(%s)", g.Name(), h.Name()))
}

// DisjointUnion returns G ⊔ H with H's vertices shifted by G.N(). The result
// is disconnected by construction; useful for negative-path testing of
// connectivity-requiring algorithms.
func DisjointUnion(g, h *Graph) *Graph {
	ng := g.N()
	lists := make([][]int32, ng+h.N())
	for v := 0; v < ng; v++ {
		lists[v] = append([]int32(nil), g.Neighbors(int32(v))...)
	}
	for v := 0; v < h.N(); v++ {
		row := make([]int32, 0, h.Degree(int32(v)))
		for _, u := range h.Neighbors(int32(v)) {
			row = append(row, u+int32(ng))
		}
		lists[ng+v] = row
	}
	return fromAdjacency(lists, fmt.Sprintf("(%s)+(%s)", g.Name(), h.Name()))
}

// WithSelfLoops returns a copy of g with a self-loop added at every vertex
// that lacks one (the uniform-lazy variant used by Lemma 12 and by chains
// that need aperiodicity without changing the vertex set).
func WithSelfLoops(g *Graph) *Graph {
	n := g.N()
	lists := make([][]int32, n)
	for v := 0; v < n; v++ {
		nb := g.Neighbors(int32(v))
		row := make([]int32, 0, len(nb)+1)
		row = append(row, nb...)
		if !g.HasEdge(int32(v), int32(v)) {
			row = append(row, int32(v))
		}
		lists[v] = row
	}
	return fromAdjacency(lists, g.Name()+"+loops")
}

// Subgraph returns the induced subgraph on the given vertices (which are
// relabeled 0..len-1 in the given order) plus the mapping used. Duplicate
// vertices panic.
func Subgraph(g *Graph, vertices []int32) (*Graph, map[int32]int32) {
	relabel := make(map[int32]int32, len(vertices))
	for i, v := range vertices {
		if v < 0 || int(v) >= g.N() {
			panic(fmt.Sprintf("graph: subgraph vertex %d out of range", v))
		}
		if _, dup := relabel[v]; dup {
			panic(fmt.Sprintf("graph: duplicate subgraph vertex %d", v))
		}
		relabel[v] = int32(i)
	}
	lists := make([][]int32, len(vertices))
	for i, v := range vertices {
		var row []int32
		for _, u := range g.Neighbors(v) {
			if nu, ok := relabel[u]; ok {
				row = append(row, nu)
			}
		}
		lists[i] = row
	}
	return fromAdjacency(lists, fmt.Sprintf("%s[%d]", g.Name(), len(vertices))), relabel
}

// Wheel returns the wheel graph: a cycle on n-1 vertices (1..n-1) plus a hub
// (vertex 0) adjacent to all of them. n >= 5 keeps the rim a proper cycle.
func Wheel(n int) *Graph {
	if n < 5 {
		panic("graph: Wheel requires n >= 5")
	}
	rim := n - 1
	lists := make([][]int32, n)
	hub := make([]int32, 0, rim)
	for i := 1; i < n; i++ {
		hub = append(hub, int32(i))
		left := 1 + ((i - 1 + rim - 1) % rim)
		right := 1 + (i % rim)
		lists[i] = []int32{0, int32(left), int32(right)}
	}
	lists[0] = hub
	return fromAdjacency(lists, fmt.Sprintf("wheel(%d)", n))
}

// CompleteBipartite returns K_{a,b}: sides [0,a) and [a,a+b).
func CompleteBipartite(a, b int) *Graph {
	if a < 1 || b < 1 {
		panic("graph: CompleteBipartite requires a,b >= 1")
	}
	lists := make([][]int32, a+b)
	left := make([]int32, b)
	for j := 0; j < b; j++ {
		left[j] = int32(a + j)
	}
	right := make([]int32, a)
	for i := 0; i < a; i++ {
		right[i] = int32(i)
	}
	for i := 0; i < a; i++ {
		lists[i] = append([]int32(nil), left...)
	}
	for j := 0; j < b; j++ {
		lists[a+j] = append([]int32(nil), right...)
	}
	return fromAdjacency(lists, fmt.Sprintf("kbipartite(%d,%d)", a, b))
}
