package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// maxSerializedVertices bounds the vertex count both deserializers accept,
// so a few-byte header cannot demand a multi-gigabyte allocation.
const maxSerializedVertices = 1 << 28

// maxSerializedEdges bounds the edge count an edge-list header may declare:
// every non-loop edge contributes two adjacency entries, so m past 2^30-1
// cannot be packed into int32 CSR offsets. The bound is checked against the
// header before any edge is read, so an absurd synthetic header fails with
// a descriptive error instead of overflowing int32 indices edge by edge.
const maxSerializedEdges = 1<<30 - 1

// encodeName renders a graph name for the edge-list header. Names that
// would corrupt the line format — control characters, leading/trailing
// whitespace, or a leading quote — are written Go-quoted; plain names stay
// raw for back-compatibility. decodeName reverses the choice. The escaping
// was shaken out by FuzzSerializeRoundTrip (a name containing a newline
// used to split the header line).
func encodeName(name string) string {
	if name == "" {
		return name
	}
	plain := !strings.HasPrefix(name, `"`) && strings.TrimSpace(name) == name
	for _, r := range name {
		if r < 0x20 || r == 0x7f {
			plain = false
			break
		}
	}
	if plain {
		return name
	}
	return strconv.Quote(name)
}

func decodeName(s string) string {
	if strings.HasPrefix(s, `"`) {
		if name, err := strconv.Unquote(s); err == nil {
			return name
		}
	}
	return s
}

// WriteEdgeList writes the graph in a plain text format:
//
//	# name <label>
//	<n> <m>
//	<u> <v>      (one line per undirected edge, u <= v, sorted)
//
// Weighted graphs append the weight as a third column, <u> <v> <w>, printed
// with enough digits that weights round-trip exactly through ReadEdgeList.
// The graph name round-trips through the header comment (quoted when it
// contains characters the line format cannot carry raw); both properties
// are pinned by TestWeightedEdgeListRoundTrip and FuzzSerializeRoundTrip.
func (g *Graph) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# name %s\n%d %d\n", encodeName(g.Name()), g.N(), g.M()); err != nil {
		return err
	}
	for v := int32(0); v < int32(g.N()); v++ {
		for i, u := range g.Neighbors(v) {
			if u < v { // each undirected edge once; self-loop has u == v
				continue
			}
			var err error
			if g.Weighted() {
				_, err = fmt.Fprintf(bw, "%d %d %.17g\n", v, u, g.EdgeWeight(v, i))
			} else {
				_, err = fmt.Fprintf(bw, "%d %d\n", v, u)
			}
			if err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses the WriteEdgeList format through the classic Builder
// (global edge sort). ReadEdgeListStreaming accepts the same inputs and
// produces an identical graph in O(n+m) flat memory; both share the scanner
// in stream.go.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	var b *Builder
	name, err := parseEdgeList(r,
		func(n int) error {
			b = NewBuilder(n)
			return nil
		},
		func(u, v int32, w float64, weighted bool) error {
			if weighted {
				b.AddWeightedEdge(u, v, w)
			} else {
				b.AddEdge(u, v)
			}
			return nil
		})
	if err != nil {
		return nil, err
	}
	return b.Build(name), nil
}

// binaryMagic guards the binary format against foreign input.
const binaryMagic = uint32(0x6d77616c) // "mwal"

// binaryVersion is the current binary layout revision. Version 2 added the
// version/flags words and the optional weight section; version-1 payloads
// (which had neither) are no longer produced and are rejected on read.
// Version 3 adds zero padding after the name (aligning the offsets and
// adjacency arrays to 4 bytes) and before the weight array (aligning it to
// 8), so the mmap-backed reader (OpenBinary) can view the CSR arrays in
// place without copying. The reader accepts versions 2 and 3; the writer
// emits 3. No binary files are checked in anywhere, so the writer bump is
// safe.
const (
	binaryVersion   = uint32(3)
	binaryVersionV2 = uint32(2)
)

// binaryAlignPads returns the two v3 padding lengths for a given name
// length: padA zero bytes follow the name (so the offsets array, which
// starts after the 4-byte vertex-count word, lands 4-aligned relative to
// the file start) and, for weighted payloads, padB zero bytes precede the
// weight array (8-aligning it). The fixed header is 16 bytes (magic,
// version, flags, nameLen), so the vertex-count word sits at 16+nameLen+padA.
func binaryAlignPads(nameLen int, n, totalAdj int64) (padA, padB int) {
	padA = (4 - nameLen%4) % 4
	weightsAt := int64(16+nameLen+padA+4) + 4*(n+1) + 4*totalAdj
	padB = int((8 - weightsAt%8) % 8)
	return padA, padB
}

// binaryFlagWeighted marks a payload that carries a float64 weight array
// parallel to the adjacency array.
const binaryFlagWeighted = uint32(1)

// maxBinaryNameLen bounds the name section on both sides of the binary
// format.
const maxBinaryNameLen = 1 << 16

// WriteBinary writes a compact little-endian binary encoding: magic,
// version, flags, name, alignment padding, offsets, adjacency, and (for
// weighted graphs) the weight array (see binaryVersion for the v3 layout).
// It is the fast path for checkpointing large graph instances between
// experiment stages; name and weights round-trip exactly, and the arrays
// are encoded through a fixed chunk buffer, so writing a multi-hundred-MB
// instance never allocates a payload-sized temporary. Names longer than
// the reader accepts are rejected up front.
func (g *Graph) WriteBinary(w io.Writer) error {
	if len(g.Name()) > maxBinaryNameLen {
		return fmt.Errorf("graph: name length %d exceeds binary format limit %d", len(g.Name()), maxBinaryNameLen)
	}
	bw := bufio.NewWriterSize(w, readChunkBytes)
	le := binary.LittleEndian
	flags := uint32(0)
	if g.Weighted() {
		flags |= binaryFlagWeighted
	}
	name := g.Name()
	var word [4]byte
	for _, v := range []uint32{binaryMagic, binaryVersion, flags, uint32(len(name))} {
		le.PutUint32(word[:], v)
		if _, err := bw.Write(word[:]); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString(name); err != nil {
		return err
	}
	padA, padB := binaryAlignPads(len(name), int64(g.N()), int64(len(g.adj)))
	var pad [8]byte
	if _, err := bw.Write(pad[:padA]); err != nil {
		return err
	}
	le.PutUint32(word[:], uint32(g.N()))
	if _, err := bw.Write(word[:]); err != nil {
		return err
	}
	if err := writeInt32sLE(bw, g.offsets); err != nil {
		return err
	}
	if err := writeInt32sLE(bw, g.adj); err != nil {
		return err
	}
	if g.Weighted() {
		if _, err := bw.Write(pad[:padB]); err != nil {
			return err
		}
		if err := writeFloat64sLE(bw, g.weights); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// readChunkBytes is the chunk-buffer size both binary codecs stage arrays
// through: the reader's allocations grow only as payload actually arrives,
// so a malformed header declaring 2^28 vertices on a 20-byte input fails
// after one small chunk instead of allocating gigabytes first (a hang the
// FuzzBinaryParse target shook out), and the writer encodes any array with
// one fixed scratch buffer instead of binary.Write's payload-sized copy.
const readChunkBytes = 1 << 16

// writeInt32sLE encodes s little-endian through a fixed chunk buffer.
func writeInt32sLE(w io.Writer, s []int32) error {
	var buf [readChunkBytes]byte
	for len(s) > 0 {
		c := min(len(s), len(buf)/4)
		for i := 0; i < c; i++ {
			binary.LittleEndian.PutUint32(buf[i*4:], uint32(s[i]))
		}
		if _, err := w.Write(buf[:c*4]); err != nil {
			return err
		}
		s = s[c:]
	}
	return nil
}

// writeFloat64sLE encodes s little-endian through a fixed chunk buffer.
func writeFloat64sLE(w io.Writer, s []float64) error {
	var buf [readChunkBytes]byte
	for len(s) > 0 {
		c := min(len(s), len(buf)/8)
		for i := 0; i < c; i++ {
			binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(s[i]))
		}
		if _, err := w.Write(buf[:c*8]); err != nil {
			return err
		}
		s = s[c:]
	}
	return nil
}

func readInt32s(r io.Reader, buf []byte, count int) ([]int32, error) {
	chunk := len(buf) / 4
	out := make([]int32, 0, min(count, chunk))
	for len(out) < count {
		c := min(chunk, count-len(out))
		b := buf[:c*4]
		if _, err := io.ReadFull(r, b); err != nil {
			return nil, err
		}
		for i := 0; i < c; i++ {
			out = append(out, int32(binary.LittleEndian.Uint32(b[i*4:])))
		}
	}
	return out, nil
}

func readFloat64s(r io.Reader, buf []byte, count int) ([]float64, error) {
	chunk := len(buf) / 8
	out := make([]float64, 0, min(count, chunk))
	for len(out) < count {
		c := min(chunk, count-len(out))
		b := buf[:c*8]
		if _, err := io.ReadFull(r, b); err != nil {
			return nil, err
		}
		for i := 0; i < c; i++ {
			out = append(out, math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:])))
		}
	}
	return out, nil
}

// validateBinaryCSR is the shared back half of the binary readers (stream
// and mmap): offsets sanity before anything slices the adjacency through
// them, loop/edge bookkeeping, and the full structural Validate.
func validateBinaryCSR(g *Graph, n int) (*Graph, error) {
	if len(g.offsets) != n+1 || g.offsets[0] != 0 {
		return nil, fmt.Errorf("graph: corrupt binary payload: offsets do not start at 0")
	}
	for v := 0; v < n; v++ {
		if g.offsets[v] > g.offsets[v+1] {
			return nil, fmt.Errorf("graph: corrupt binary payload: offsets not monotone at %d", v)
		}
	}
	total := g.offsets[n]
	if total < 0 {
		return nil, fmt.Errorf("graph: negative adjacency length")
	}
	if int(total) != len(g.adj) {
		return nil, fmt.Errorf("graph: corrupt binary payload: adjacency length %d != offsets end %d", len(g.adj), total)
	}
	g.loops = 0
	for v := int32(0); v < int32(n); v++ {
		for _, u := range g.Neighbors(v) {
			if u == v {
				g.loops++
			}
		}
	}
	g.m = (len(g.adj)-g.loops)/2 + g.loops
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("graph: corrupt binary payload: %w", err)
	}
	return g, nil
}

// ReadBinary parses the WriteBinary format (versions 2 and 3) and validates
// the result. The arrays land on the heap; OpenBinary maps v3 files
// read-only in place instead.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReaderSize(r, readChunkBytes)
	le := binary.LittleEndian
	buf := make([]byte, readChunkBytes)
	word := func() (uint32, error) {
		if _, err := io.ReadFull(br, buf[:4]); err != nil {
			return 0, err
		}
		return le.Uint32(buf[:4]), nil
	}
	magic, err := word()
	if err != nil {
		return nil, err
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("graph: bad magic %#x", magic)
	}
	version, err := word()
	if err != nil {
		return nil, err
	}
	if version != binaryVersion && version != binaryVersionV2 {
		return nil, fmt.Errorf("graph: unsupported binary version %d (want %d or %d)", version, binaryVersionV2, binaryVersion)
	}
	flags, err := word()
	if err != nil {
		return nil, err
	}
	if flags&^binaryFlagWeighted != 0 {
		return nil, fmt.Errorf("graph: unknown binary flags %#x", flags)
	}
	nameLen, err := word()
	if err != nil {
		return nil, err
	}
	if nameLen > maxBinaryNameLen {
		return nil, fmt.Errorf("graph: unreasonable name length %d", nameLen)
	}
	nameBytes := make([]byte, nameLen)
	if _, err := io.ReadFull(br, nameBytes); err != nil {
		return nil, err
	}
	skip := func(c int) error {
		if c == 0 {
			return nil
		}
		_, err := io.ReadFull(br, buf[:c])
		return err
	}
	padded := version >= binaryVersion
	if padded {
		padA, _ := binaryAlignPads(int(nameLen), 0, 0)
		if err := skip(padA); err != nil {
			return nil, err
		}
	}
	n, err := word()
	if err != nil {
		return nil, err
	}
	if n > maxSerializedVertices {
		return nil, fmt.Errorf("graph: vertex count %d exceeds the reader limit %d", n, maxSerializedVertices)
	}
	g := &Graph{name: string(nameBytes)}
	if g.offsets, err = readInt32s(br, buf, int(n)+1); err != nil {
		return nil, err
	}
	// Bound the adjacency read by the declared offsets *before* validating
	// them fully: a negative or non-monotone end word must not size a read.
	total := g.offsets[n]
	if total < 0 {
		return nil, fmt.Errorf("graph: negative adjacency length")
	}
	if g.adj, err = readInt32s(br, buf, int(total)); err != nil {
		return nil, err
	}
	if flags&binaryFlagWeighted != 0 {
		if padded {
			_, padB := binaryAlignPads(int(nameLen), int64(n), int64(total))
			if err := skip(padB); err != nil {
				return nil, err
			}
		}
		if g.weights, err = readFloat64s(br, buf, int(total)); err != nil {
			return nil, err
		}
	}
	return validateBinaryCSR(g, int(n))
}

// WriteDOT emits Graphviz DOT for small-graph visualization; self-loops and
// each undirected edge appear once.
func (g *Graph) WriteDOT(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "graph %q {\n", g.Name()); err != nil {
		return err
	}
	for v := int32(0); v < int32(g.N()); v++ {
		for _, u := range g.Neighbors(v) {
			if u >= v {
				if _, err := fmt.Fprintf(bw, "  %d -- %d;\n", v, u); err != nil {
					return err
				}
			}
		}
	}
	if _, err := fmt.Fprintln(bw, "}"); err != nil {
		return err
	}
	return bw.Flush()
}
