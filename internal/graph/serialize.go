package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// WriteEdgeList writes the graph in a plain text format:
//
//	# name <label>
//	<n> <m>
//	<u> <v>      (one line per undirected edge, u <= v, sorted)
//
// Weighted graphs append the weight as a third column, <u> <v> <w>, printed
// with enough digits that weights round-trip exactly through ReadEdgeList.
// The graph name round-trips through the header comment; both properties
// are pinned by TestWeightedEdgeListRoundTrip.
func (g *Graph) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# name %s\n%d %d\n", g.Name(), g.N(), g.M()); err != nil {
		return err
	}
	for v := int32(0); v < int32(g.N()); v++ {
		for i, u := range g.Neighbors(v) {
			if u < v { // each undirected edge once; self-loop has u == v
				continue
			}
			var err error
			if g.Weighted() {
				_, err = fmt.Fprintf(bw, "%d %d %.17g\n", v, u, g.EdgeWeight(v, i))
			} else {
				_, err = fmt.Fprintf(bw, "%d %d\n", v, u)
			}
			if err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses the WriteEdgeList format.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	name := ""
	var n, m int
	header := false
	var b *Builder
	edges := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if rest, ok := strings.CutPrefix(line, "# name "); ok {
				name = rest
			}
			continue
		}
		fields := strings.Fields(line)
		if !header {
			if len(fields) != 2 {
				return nil, fmt.Errorf("graph: bad header %q", line)
			}
			var err error
			if n, err = strconv.Atoi(fields[0]); err != nil {
				return nil, fmt.Errorf("graph: bad vertex count: %w", err)
			}
			if m, err = strconv.Atoi(fields[1]); err != nil {
				return nil, fmt.Errorf("graph: bad edge count: %w", err)
			}
			if n < 0 || m < 0 {
				return nil, fmt.Errorf("graph: negative sizes in header %q", line)
			}
			b = NewBuilder(n)
			header = true
			continue
		}
		if len(fields) != 2 && len(fields) != 3 {
			return nil, fmt.Errorf("graph: bad edge line %q", line)
		}
		u, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, err
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, err
		}
		if u < 0 || v < 0 || u >= n || v >= n {
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range", u, v)
		}
		if len(fields) == 3 {
			wt, err := strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("graph: bad edge weight %q: %w", fields[2], err)
			}
			if !(wt > 0) || math.IsInf(wt, 1) {
				return nil, fmt.Errorf("graph: edge (%d,%d) weight %v must be positive and finite", u, v, wt)
			}
			b.AddWeightedEdge(int32(u), int32(v), wt)
		} else {
			b.AddEdge(int32(u), int32(v))
		}
		edges++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !header {
		return nil, fmt.Errorf("graph: missing header")
	}
	if edges != m {
		return nil, fmt.Errorf("graph: header promises %d edges, found %d", m, edges)
	}
	return b.Build(name), nil
}

// binaryMagic guards the binary format against foreign input.
const binaryMagic = uint32(0x6d77616c) // "mwal"

// binaryVersion is the current binary layout revision. Version 2 added the
// version/flags words and the optional weight section; version-1 payloads
// (which had neither) are no longer produced and are rejected on read. No
// version-1 files are checked in anywhere, so the break is safe.
const binaryVersion = uint32(2)

// binaryFlagWeighted marks a payload that carries a float64 weight array
// parallel to the adjacency array.
const binaryFlagWeighted = uint32(1)

// WriteBinary writes a compact little-endian binary encoding: magic,
// version, flags, name, offsets, adjacency, and (for weighted graphs) the
// weight array. It is the fast path for checkpointing large random graph
// instances between experiment stages; name and weights round-trip exactly.
func (g *Graph) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	le := binary.LittleEndian
	flags := uint32(0)
	if g.Weighted() {
		flags |= binaryFlagWeighted
	}
	for _, word := range []uint32{binaryMagic, binaryVersion, flags} {
		if err := binary.Write(bw, le, word); err != nil {
			return err
		}
	}
	nameBytes := []byte(g.Name())
	if err := binary.Write(bw, le, uint32(len(nameBytes))); err != nil {
		return err
	}
	if _, err := bw.Write(nameBytes); err != nil {
		return err
	}
	if err := binary.Write(bw, le, uint32(g.N())); err != nil {
		return err
	}
	if err := binary.Write(bw, le, g.offsets); err != nil {
		return err
	}
	if err := binary.Write(bw, le, g.adj); err != nil {
		return err
	}
	if g.Weighted() {
		if err := binary.Write(bw, le, g.weights); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary parses the WriteBinary format and validates the result.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	le := binary.LittleEndian
	var magic, version, flags uint32
	if err := binary.Read(br, le, &magic); err != nil {
		return nil, err
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("graph: bad magic %#x", magic)
	}
	if err := binary.Read(br, le, &version); err != nil {
		return nil, err
	}
	if version != binaryVersion {
		return nil, fmt.Errorf("graph: unsupported binary version %d (want %d)", version, binaryVersion)
	}
	if err := binary.Read(br, le, &flags); err != nil {
		return nil, err
	}
	if flags&^binaryFlagWeighted != 0 {
		return nil, fmt.Errorf("graph: unknown binary flags %#x", flags)
	}
	var nameLen uint32
	if err := binary.Read(br, le, &nameLen); err != nil {
		return nil, err
	}
	if nameLen > 1<<16 {
		return nil, fmt.Errorf("graph: unreasonable name length %d", nameLen)
	}
	nameBytes := make([]byte, nameLen)
	if _, err := io.ReadFull(br, nameBytes); err != nil {
		return nil, err
	}
	var n uint32
	if err := binary.Read(br, le, &n); err != nil {
		return nil, err
	}
	if n > 1<<28 {
		return nil, fmt.Errorf("graph: unreasonable vertex count %d", n)
	}
	g := &Graph{
		offsets: make([]int32, n+1),
		name:    string(nameBytes),
	}
	if err := binary.Read(br, le, &g.offsets); err != nil {
		return nil, err
	}
	total := g.offsets[n]
	if total < 0 {
		return nil, fmt.Errorf("graph: negative adjacency length")
	}
	g.adj = make([]int32, total)
	if err := binary.Read(br, le, &g.adj); err != nil {
		return nil, err
	}
	if flags&binaryFlagWeighted != 0 {
		g.weights = make([]float64, total)
		if err := binary.Read(br, le, &g.weights); err != nil {
			return nil, err
		}
	}
	for v := int32(0); v < int32(n); v++ {
		for _, u := range g.Neighbors(v) {
			if u == v {
				g.loops++
			}
		}
	}
	g.m = (len(g.adj)-g.loops)/2 + g.loops
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("graph: corrupt binary payload: %w", err)
	}
	return g, nil
}

// WriteDOT emits Graphviz DOT for small-graph visualization; self-loops and
// each undirected edge appear once.
func (g *Graph) WriteDOT(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "graph %q {\n", g.Name()); err != nil {
		return err
	}
	for v := int32(0); v < int32(g.N()); v++ {
		for _, u := range g.Neighbors(v) {
			if u >= v {
				if _, err := fmt.Fprintf(bw, "  %d -- %d;\n", v, u); err != nil {
					return err
				}
			}
		}
	}
	if _, err := fmt.Fprintln(bw, "}"); err != nil {
		return err
	}
	return bw.Flush()
}
