package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// maxSerializedVertices bounds the vertex count both deserializers accept,
// so a few-byte header cannot demand a multi-gigabyte allocation.
const maxSerializedVertices = 1 << 28

// encodeName renders a graph name for the edge-list header. Names that
// would corrupt the line format — control characters, leading/trailing
// whitespace, or a leading quote — are written Go-quoted; plain names stay
// raw for back-compatibility. decodeName reverses the choice. The escaping
// was shaken out by FuzzSerializeRoundTrip (a name containing a newline
// used to split the header line).
func encodeName(name string) string {
	if name == "" {
		return name
	}
	plain := !strings.HasPrefix(name, `"`) && strings.TrimSpace(name) == name
	for _, r := range name {
		if r < 0x20 || r == 0x7f {
			plain = false
			break
		}
	}
	if plain {
		return name
	}
	return strconv.Quote(name)
}

func decodeName(s string) string {
	if strings.HasPrefix(s, `"`) {
		if name, err := strconv.Unquote(s); err == nil {
			return name
		}
	}
	return s
}

// WriteEdgeList writes the graph in a plain text format:
//
//	# name <label>
//	<n> <m>
//	<u> <v>      (one line per undirected edge, u <= v, sorted)
//
// Weighted graphs append the weight as a third column, <u> <v> <w>, printed
// with enough digits that weights round-trip exactly through ReadEdgeList.
// The graph name round-trips through the header comment (quoted when it
// contains characters the line format cannot carry raw); both properties
// are pinned by TestWeightedEdgeListRoundTrip and FuzzSerializeRoundTrip.
func (g *Graph) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# name %s\n%d %d\n", encodeName(g.Name()), g.N(), g.M()); err != nil {
		return err
	}
	for v := int32(0); v < int32(g.N()); v++ {
		for i, u := range g.Neighbors(v) {
			if u < v { // each undirected edge once; self-loop has u == v
				continue
			}
			var err error
			if g.Weighted() {
				_, err = fmt.Fprintf(bw, "%d %d %.17g\n", v, u, g.EdgeWeight(v, i))
			} else {
				_, err = fmt.Fprintf(bw, "%d %d\n", v, u)
			}
			if err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses the WriteEdgeList format.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	name := ""
	var n, m int
	header := false
	var b *Builder
	edges := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if rest, ok := strings.CutPrefix(line, "# name "); ok {
				name = decodeName(rest)
			}
			continue
		}
		fields := strings.Fields(line)
		if !header {
			if len(fields) != 2 {
				return nil, fmt.Errorf("graph: bad header %q", line)
			}
			var err error
			if n, err = strconv.Atoi(fields[0]); err != nil {
				return nil, fmt.Errorf("graph: bad vertex count: %w", err)
			}
			if m, err = strconv.Atoi(fields[1]); err != nil {
				return nil, fmt.Errorf("graph: bad edge count: %w", err)
			}
			if n < 0 || m < 0 {
				return nil, fmt.Errorf("graph: negative sizes in header %q", line)
			}
			if n > maxSerializedVertices {
				return nil, fmt.Errorf("graph: unreasonable vertex count %d", n)
			}
			b = NewBuilder(n)
			header = true
			continue
		}
		if len(fields) != 2 && len(fields) != 3 {
			return nil, fmt.Errorf("graph: bad edge line %q", line)
		}
		u, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, err
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, err
		}
		if u < 0 || v < 0 || u >= n || v >= n {
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range", u, v)
		}
		if len(fields) == 3 {
			wt, err := strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("graph: bad edge weight %q: %w", fields[2], err)
			}
			if !(wt > 0) || math.IsInf(wt, 1) {
				return nil, fmt.Errorf("graph: edge (%d,%d) weight %v must be positive and finite", u, v, wt)
			}
			b.AddWeightedEdge(int32(u), int32(v), wt)
		} else {
			b.AddEdge(int32(u), int32(v))
		}
		edges++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !header {
		return nil, fmt.Errorf("graph: missing header")
	}
	if edges != m {
		return nil, fmt.Errorf("graph: header promises %d edges, found %d", m, edges)
	}
	return b.Build(name), nil
}

// binaryMagic guards the binary format against foreign input.
const binaryMagic = uint32(0x6d77616c) // "mwal"

// binaryVersion is the current binary layout revision. Version 2 added the
// version/flags words and the optional weight section; version-1 payloads
// (which had neither) are no longer produced and are rejected on read. No
// version-1 files are checked in anywhere, so the break is safe.
const binaryVersion = uint32(2)

// binaryFlagWeighted marks a payload that carries a float64 weight array
// parallel to the adjacency array.
const binaryFlagWeighted = uint32(1)

// maxBinaryNameLen bounds the name section on both sides of the binary
// format.
const maxBinaryNameLen = 1 << 16

// WriteBinary writes a compact little-endian binary encoding: magic,
// version, flags, name, offsets, adjacency, and (for weighted graphs) the
// weight array. It is the fast path for checkpointing large random graph
// instances between experiment stages; name and weights round-trip exactly.
// Names longer than the reader accepts are rejected up front.
func (g *Graph) WriteBinary(w io.Writer) error {
	if len(g.Name()) > maxBinaryNameLen {
		return fmt.Errorf("graph: name length %d exceeds binary format limit %d", len(g.Name()), maxBinaryNameLen)
	}
	bw := bufio.NewWriter(w)
	le := binary.LittleEndian
	flags := uint32(0)
	if g.Weighted() {
		flags |= binaryFlagWeighted
	}
	for _, word := range []uint32{binaryMagic, binaryVersion, flags} {
		if err := binary.Write(bw, le, word); err != nil {
			return err
		}
	}
	nameBytes := []byte(g.Name())
	if err := binary.Write(bw, le, uint32(len(nameBytes))); err != nil {
		return err
	}
	if _, err := bw.Write(nameBytes); err != nil {
		return err
	}
	if err := binary.Write(bw, le, uint32(g.N())); err != nil {
		return err
	}
	if err := binary.Write(bw, le, g.offsets); err != nil {
		return err
	}
	if err := binary.Write(bw, le, g.adj); err != nil {
		return err
	}
	if g.Weighted() {
		if err := binary.Write(bw, le, g.weights); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// readChunkBytes is the number of array entries the binary reader pulls
// per binary.Read call: allocations grow only as payload actually arrives,
// so a malformed header declaring 2^28 vertices on a 20-byte input fails
// after one small chunk instead of allocating gigabytes first (a hang the
// FuzzBinaryParse target shook out).
const readChunkBytes = 1 << 16

func readInt32s(r io.Reader, count int) ([]int32, error) {
	const chunk = readChunkBytes / 4
	out := make([]int32, 0, min(count, chunk))
	for len(out) < count {
		c := min(chunk, count-len(out))
		buf := make([]int32, c)
		if err := binary.Read(r, binary.LittleEndian, buf); err != nil {
			return nil, err
		}
		out = append(out, buf...)
	}
	return out, nil
}

func readFloat64s(r io.Reader, count int) ([]float64, error) {
	const chunk = readChunkBytes / 8
	out := make([]float64, 0, min(count, chunk))
	for len(out) < count {
		c := min(chunk, count-len(out))
		buf := make([]float64, c)
		if err := binary.Read(r, binary.LittleEndian, buf); err != nil {
			return nil, err
		}
		out = append(out, buf...)
	}
	return out, nil
}

// ReadBinary parses the WriteBinary format and validates the result.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	le := binary.LittleEndian
	var magic, version, flags uint32
	if err := binary.Read(br, le, &magic); err != nil {
		return nil, err
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("graph: bad magic %#x", magic)
	}
	if err := binary.Read(br, le, &version); err != nil {
		return nil, err
	}
	if version != binaryVersion {
		return nil, fmt.Errorf("graph: unsupported binary version %d (want %d)", version, binaryVersion)
	}
	if err := binary.Read(br, le, &flags); err != nil {
		return nil, err
	}
	if flags&^binaryFlagWeighted != 0 {
		return nil, fmt.Errorf("graph: unknown binary flags %#x", flags)
	}
	var nameLen uint32
	if err := binary.Read(br, le, &nameLen); err != nil {
		return nil, err
	}
	if nameLen > maxBinaryNameLen {
		return nil, fmt.Errorf("graph: unreasonable name length %d", nameLen)
	}
	nameBytes := make([]byte, nameLen)
	if _, err := io.ReadFull(br, nameBytes); err != nil {
		return nil, err
	}
	var n uint32
	if err := binary.Read(br, le, &n); err != nil {
		return nil, err
	}
	if n > maxSerializedVertices {
		return nil, fmt.Errorf("graph: unreasonable vertex count %d", n)
	}
	g := &Graph{name: string(nameBytes)}
	var err error
	if g.offsets, err = readInt32s(br, int(n)+1); err != nil {
		return nil, err
	}
	// The offsets must be validated before anything slices the adjacency
	// array through them (the loop-counting pass below would panic on a
	// non-monotone prefix — shaken out by FuzzBinaryParse).
	if g.offsets[0] != 0 {
		return nil, fmt.Errorf("graph: corrupt binary payload: offsets do not start at 0")
	}
	for v := uint32(0); v < n; v++ {
		if g.offsets[v] > g.offsets[v+1] {
			return nil, fmt.Errorf("graph: corrupt binary payload: offsets not monotone at %d", v)
		}
	}
	total := g.offsets[n]
	if total < 0 {
		return nil, fmt.Errorf("graph: negative adjacency length")
	}
	if g.adj, err = readInt32s(br, int(total)); err != nil {
		return nil, err
	}
	if flags&binaryFlagWeighted != 0 {
		if g.weights, err = readFloat64s(br, int(total)); err != nil {
			return nil, err
		}
	}
	for v := int32(0); v < int32(n); v++ {
		for _, u := range g.Neighbors(v) {
			if u == v {
				g.loops++
			}
		}
	}
	g.m = (len(g.adj)-g.loops)/2 + g.loops
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("graph: corrupt binary payload: %w", err)
	}
	return g, nil
}

// WriteDOT emits Graphviz DOT for small-graph visualization; self-loops and
// each undirected edge appear once.
func (g *Graph) WriteDOT(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "graph %q {\n", g.Name()); err != nil {
		return err
	}
	for v := int32(0); v < int32(g.N()); v++ {
		for _, u := range g.Neighbors(v) {
			if u >= v {
				if _, err := fmt.Fprintf(bw, "  %d -- %d;\n", v, u); err != nil {
					return err
				}
			}
		}
	}
	if _, err := fmt.Fprintln(bw, "}"); err != nil {
		return err
	}
	return bw.Flush()
}
