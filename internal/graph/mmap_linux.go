//go:build linux

package graph

import (
	"encoding/binary"
	"fmt"
	"os"
	"syscall"
	"unsafe"
)

// The mmap-backed reader: a v3 binary file's CSR arrays are 4/8-byte
// aligned by construction (binaryAlignPads), so on a little-endian host the
// offsets, adjacency, and weight arrays can be viewed in place over a
// read-only private mapping — the adjacency of a multi-hundred-MB instance
// then never needs to be heap-resident, and the page cache shares it across
// processes. openBinaryMapped returns errUnmappable for anything it cannot
// view in place (v2 files, big-endian hosts, truncated payloads) and
// OpenBinary falls back to the heap reader.

var errUnmappable = fmt.Errorf("graph: binary layout not mappable")

// hostLittleEndian reports the native byte order; the mapped views reinterpret
// raw file bytes, which is only valid when host order matches the format's
// little-endian layout.
func hostLittleEndian() bool {
	var one uint32 = 1
	return *(*byte)(unsafe.Pointer(&one)) == 1
}

// openBinaryMapped maps f (a v3 WriteBinary file) read-only and builds a
// Graph whose CSR arrays alias the mapping. The caller owns neither the
// mapping nor its lifetime: the Graph holds it until Release.
func openBinaryMapped(f *os.File) (*Graph, error) {
	if !hostLittleEndian() {
		return nil, errUnmappable
	}
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := fi.Size()
	if size < 20 || size > int64(int(^uint(0)>>1)) {
		return nil, errUnmappable
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_PRIVATE)
	if err != nil {
		return nil, fmt.Errorf("graph: mmap: %w", err)
	}
	g, err := mapBinary(data)
	if err != nil {
		syscall.Munmap(data)
		return nil, err
	}
	g.mapped = data
	return g, nil
}

// mapBinary parses a v3 payload in data, viewing the arrays in place.
func mapBinary(data []byte) (*Graph, error) {
	le := binary.LittleEndian
	need := func(hi int64) error {
		if hi > int64(len(data)) {
			return fmt.Errorf("graph: corrupt binary payload: truncated at %d of %d bytes", len(data), hi)
		}
		return nil
	}
	if le.Uint32(data[0:]) != binaryMagic {
		return nil, fmt.Errorf("graph: bad magic %#x", le.Uint32(data[0:]))
	}
	if v := le.Uint32(data[4:]); v != binaryVersion {
		return nil, errUnmappable // v2 has no alignment padding; heap-read it
	}
	flags := le.Uint32(data[8:])
	if flags&^binaryFlagWeighted != 0 {
		return nil, fmt.Errorf("graph: unknown binary flags %#x", flags)
	}
	nameLen := le.Uint32(data[12:])
	if nameLen > maxBinaryNameLen {
		return nil, fmt.Errorf("graph: unreasonable name length %d", nameLen)
	}
	if err := need(16 + int64(nameLen) + 4); err != nil {
		return nil, err
	}
	name := string(data[16 : 16+nameLen])
	padA, _ := binaryAlignPads(int(nameLen), 0, 0)
	pos := 16 + int64(nameLen) + int64(padA)
	if err := need(pos + 4); err != nil {
		return nil, err
	}
	n := le.Uint32(data[pos:])
	if n > maxSerializedVertices {
		return nil, fmt.Errorf("graph: vertex count %d exceeds the reader limit %d", n, maxSerializedVertices)
	}
	pos += 4
	if err := need(pos + 4*(int64(n)+1)); err != nil {
		return nil, err
	}
	offsets := unsafe.Slice((*int32)(unsafe.Pointer(&data[pos])), int(n)+1)
	pos += 4 * (int64(n) + 1)
	total := offsets[n]
	if total < 0 {
		return nil, fmt.Errorf("graph: negative adjacency length")
	}
	if err := need(pos + 4*int64(total)); err != nil {
		return nil, err
	}
	g := &Graph{name: name, offsets: offsets}
	if total > 0 {
		g.adj = unsafe.Slice((*int32)(unsafe.Pointer(&data[pos])), int(total))
	} else {
		g.adj = []int32{}
	}
	pos += 4 * int64(total)
	if flags&binaryFlagWeighted != 0 {
		_, padB := binaryAlignPads(int(nameLen), int64(n), int64(total))
		pos += int64(padB)
		if err := need(pos + 8*int64(total)); err != nil {
			return nil, err
		}
		if total > 0 {
			g.weights = unsafe.Slice((*float64)(unsafe.Pointer(&data[pos])), int(total))
		} else {
			g.weights = []float64{}
		}
	}
	return validateBinaryCSR(g, int(n))
}

// unmapBytes releases a mapping created by openBinaryMapped.
func unmapBytes(data []byte) error { return syscall.Munmap(data) }
