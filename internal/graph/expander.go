package graph

import "fmt"

// MargulisExpander returns the Margulis–Gabber–Galil expander on the m×m
// torus Z_m × Z_m (n = m² vertices). Vertex (x,y) connects to
//
//	(x±2y, y), (x±(2y+1), y), (x, y±2x), (x, y±(2x+1))   (mod m)
//
// giving an 8-regular multigraph whose simple-graph skeleton is a proven
// expander (second adjacency eigenvalue at most 5√2 < 8). Collapsing
// parallel edges and loops makes vertex degrees vary slightly (between 4 and
// 8 at small m); tests certify the spectral gap of the realized graph
// directly rather than relying on the multigraph constant.
func MargulisExpander(m int) *Graph {
	if m < 2 {
		panic("graph: MargulisExpander requires m >= 2")
	}
	n := m * m
	b := NewBuilder(n)
	id := func(x, y int) int32 { return int32(x*m + y) }
	mod := func(a int) int {
		a %= m
		if a < 0 {
			a += m
		}
		return a
	}
	for x := 0; x < m; x++ {
		for y := 0; y < m; y++ {
			v := id(x, y)
			targets := [8][2]int{
				{mod(x + 2*y), y},
				{mod(x - 2*y), y},
				{mod(x + 2*y + 1), y},
				{mod(x - 2*y - 1), y},
				{x, mod(y + 2*x)},
				{x, mod(y - 2*x)},
				{x, mod(y + 2*x + 1)},
				{x, mod(y - 2*x - 1)},
			}
			for _, t := range targets {
				u := id(t[0], t[1])
				if u != v {
					b.AddEdge(v, u)
				}
			}
		}
	}
	return b.Build(fmt.Sprintf("margulis(%d^2)", m))
}

// CycleWithChords returns the 3-regular "cycle with inverse chords" graph on
// a prime p: vertex x is adjacent to x+1, x-1 (mod p) and to its modular
// inverse x^{-1} (0 is matched with itself, yielding one self-loop that we
// drop to stay simple, so vertices 0 and 1 and p-1 have degree 2 or 3).
// This is the classic explicit expander of Chung; it provides a second,
// structurally different (n,d,λ)-graph for the expander experiments.
func CycleWithChords(p int) *Graph {
	if p < 5 || !isPrime(p) {
		panic("graph: CycleWithChords requires a prime p >= 5")
	}
	b := NewBuilder(p)
	for x := 0; x < p; x++ {
		b.AddEdge(int32(x), int32((x+1)%p))
		inv := modInverse(x, p)
		if inv != x {
			b.AddEdge(int32(x), int32(inv))
		}
	}
	return b.Build(fmt.Sprintf("chords(%d)", p))
}

// isPrime is a deterministic trial-division primality test, sufficient for
// the graph sizes used here.
func isPrime(p int) bool {
	if p < 2 {
		return false
	}
	if p%2 == 0 {
		return p == 2
	}
	for f := 3; f*f <= p; f += 2 {
		if p%f == 0 {
			return false
		}
	}
	return true
}

// modInverse returns x^{-1} mod p for prime p, with the convention that
// 0^{-1} = 0. It uses Fermat exponentiation.
func modInverse(x, p int) int {
	if x == 0 {
		return 0
	}
	result, base, exp := 1, x%p, p-2
	for exp > 0 {
		if exp&1 == 1 {
			result = result * base % p
		}
		base = base * base % p
		exp >>= 1
	}
	return result
}
