package graph

import "fmt"

// Cycle returns the cycle L_n on n >= 3 vertices: vertex i is adjacent to
// (i±1) mod n. It is the paper's canonical example of logarithmic speed-up
// (Theorem 6).
func Cycle(n int) *Graph {
	if n < 3 {
		panic("graph: Cycle requires n >= 3")
	}
	lists := make([][]int32, n)
	for i := 0; i < n; i++ {
		lists[i] = []int32{int32((i + n - 1) % n), int32((i + 1) % n)}
	}
	return fromAdjacency(lists, fmt.Sprintf("cycle(%d)", n))
}

// Path returns the path graph on n >= 2 vertices (vertices 0..n-1 in a line).
func Path(n int) *Graph {
	if n < 2 {
		panic("graph: Path requires n >= 2")
	}
	lists := make([][]int32, n)
	for i := 0; i < n; i++ {
		switch {
		case i == 0:
			lists[i] = []int32{1}
		case i == n-1:
			lists[i] = []int32{int32(n - 2)}
		default:
			lists[i] = []int32{int32(i - 1), int32(i + 1)}
		}
	}
	return fromAdjacency(lists, fmt.Sprintf("path(%d)", n))
}

// Complete returns the complete graph K_n. If withLoops is true every vertex
// also carries a self-loop, the variant used in the paper's Lemma 12 coupon-
// collector argument (each step lands on a uniform vertex of all n).
func Complete(n int, withLoops bool) *Graph {
	if n < 2 {
		panic("graph: Complete requires n >= 2")
	}
	lists := make([][]int32, n)
	for i := 0; i < n; i++ {
		row := make([]int32, 0, n)
		for j := 0; j < n; j++ {
			if j != i || withLoops {
				row = append(row, int32(j))
			}
		}
		lists[i] = row
	}
	label := fmt.Sprintf("complete(%d)", n)
	if withLoops {
		label = fmt.Sprintf("complete+loops(%d)", n)
	}
	return fromAdjacency(lists, label)
}

// Star returns the star graph on n >= 2 vertices with center 0.
func Star(n int) *Graph {
	if n < 2 {
		panic("graph: Star requires n >= 2")
	}
	lists := make([][]int32, n)
	center := make([]int32, 0, n-1)
	for i := 1; i < n; i++ {
		center = append(center, int32(i))
		lists[i] = []int32{0}
	}
	lists[0] = center
	return fromAdjacency(lists, fmt.Sprintf("star(%d)", n))
}

// Grid returns the d-dimensional grid with side lengths dims. If torus is
// true opposite faces are identified (periodic boundary), giving the regular
// tori used by Table 1 and Theorem 8; otherwise the grid has boundary.
// A side of length 2 on a torus would create a double edge; it is rejected.
func Grid(dims []int, torus bool) *Graph {
	if len(dims) == 0 {
		panic("graph: Grid requires at least one dimension")
	}
	n := 1
	for _, d := range dims {
		if d < 2 {
			panic("graph: Grid sides must be >= 2")
		}
		if torus && d == 2 {
			panic("graph: torus sides must be >= 3 to stay simple")
		}
		n *= d
	}
	// Mixed-radix coordinates: vertex index = sum coord[i] * stride[i].
	stride := make([]int, len(dims))
	s := 1
	for i := len(dims) - 1; i >= 0; i-- {
		stride[i] = s
		s *= dims[i]
	}
	lists := make([][]int32, n)
	coord := make([]int, len(dims))
	for v := 0; v < n; v++ {
		row := make([]int32, 0, 2*len(dims))
		for i, c := range coord {
			if torus {
				up := v + ((c+1)%dims[i]-c)*stride[i]
				dn := v + ((c+dims[i]-1)%dims[i]-c)*stride[i]
				row = append(row, int32(up), int32(dn))
			} else {
				if c+1 < dims[i] {
					row = append(row, int32(v+stride[i]))
				}
				if c > 0 {
					row = append(row, int32(v-stride[i]))
				}
			}
		}
		lists[v] = row
		// Increment mixed-radix counter.
		for i := len(coord) - 1; i >= 0; i-- {
			coord[i]++
			if coord[i] < dims[i] {
				break
			}
			coord[i] = 0
		}
	}
	kind := "grid"
	if torus {
		kind = "torus"
	}
	return fromAdjacency(lists, fmt.Sprintf("%s%v", kind, dims))
}

// Torus2D returns the side×side 2-dimensional torus (√n × √n grid on the
// torus in the paper's notation).
func Torus2D(side int) *Graph { return Grid([]int{side, side}, true) }

// Hypercube returns the dim-dimensional hypercube on n = 2^dim vertices;
// vertices are bitstrings, adjacent iff they differ in one bit.
func Hypercube(dim int) *Graph {
	if dim < 1 || dim > 30 {
		panic("graph: Hypercube dimension out of range [1,30]")
	}
	n := 1 << uint(dim)
	lists := make([][]int32, n)
	for v := 0; v < n; v++ {
		row := make([]int32, dim)
		for b := 0; b < dim; b++ {
			row[b] = int32(v ^ (1 << uint(b)))
		}
		lists[v] = row
	}
	return fromAdjacency(lists, fmt.Sprintf("hypercube(%d)", dim))
}

// BalancedTree returns the complete rooted tree in which every internal node
// has arity children and all leaves are at depth height. Root is vertex 0.
// The paper cites d-regular balanced trees as a Matthews-tight family
// (Zuckerman [33]).
func BalancedTree(arity, height int) *Graph {
	if arity < 2 || height < 1 {
		panic("graph: BalancedTree requires arity >= 2, height >= 1")
	}
	// n = (arity^(height+1) - 1) / (arity - 1)
	n := 1
	level := 1
	for i := 0; i < height; i++ {
		level *= arity
		n += level
	}
	lists := make([][]int32, n)
	firstLeaf := n - level
	for v := 0; v < n; v++ {
		var row []int32
		if v > 0 {
			row = append(row, int32((v-1)/arity))
		}
		if v < firstLeaf {
			for c := 0; c < arity; c++ {
				row = append(row, int32(v*arity+c+1))
			}
		}
		lists[v] = row
	}
	return fromAdjacency(lists, fmt.Sprintf("tree(a=%d,h=%d)", arity, height))
}

// Barbell returns the paper's barbell graph B_n for odd n: two cliques of
// size (n-1)/2 joined by a path of length 2 through a center vertex.
// The center is returned alongside the graph; Theorem 7 measures cover time
// from it. Clique A occupies vertices [0,m), clique B occupies [m, 2m), and
// the center is vertex n-1 (= 2m), adjacent to one vertex of each clique.
func Barbell(n int) (*Graph, int32) {
	if n < 7 || n%2 == 0 {
		panic("graph: Barbell requires odd n >= 7")
	}
	m := (n - 1) / 2
	center := int32(n - 1)
	lists := make([][]int32, n)
	for i := 0; i < m; i++ {
		rowA := make([]int32, 0, m)
		rowB := make([]int32, 0, m)
		for j := 0; j < m; j++ {
			if j != i {
				rowA = append(rowA, int32(j))
				rowB = append(rowB, int32(m+j))
			}
		}
		lists[i] = rowA
		lists[m+i] = rowB
	}
	// Attach the path endpoints: center connects to vertex 0 of clique A and
	// vertex m of clique B ("a path of length 2" in the paper).
	lists[0] = append(lists[0], center)
	lists[m] = append(lists[m], center)
	lists[center] = []int32{0, int32(m)}
	g := fromAdjacency(lists, fmt.Sprintf("barbell(%d)", n))
	return g, center
}

// Lollipop returns the lollipop graph: a clique on cliqueN vertices with a
// path of pathN extra vertices attached to clique vertex 0. Its cover time
// is the Θ(n³) worst case cited in the paper's preliminaries.
func Lollipop(cliqueN, pathN int) *Graph {
	if cliqueN < 3 || pathN < 1 {
		panic("graph: Lollipop requires cliqueN >= 3, pathN >= 1")
	}
	n := cliqueN + pathN
	lists := make([][]int32, n)
	for i := 0; i < cliqueN; i++ {
		row := make([]int32, 0, cliqueN-1)
		for j := 0; j < cliqueN; j++ {
			if j != i {
				row = append(row, int32(j))
			}
		}
		lists[i] = row
	}
	// Path vertices cliqueN .. n-1 hang off clique vertex 0.
	lists[0] = append(lists[0], int32(cliqueN))
	for i := cliqueN; i < n; i++ {
		var row []int32
		if i == cliqueN {
			row = append(row, 0)
		} else {
			row = append(row, int32(i-1))
		}
		if i+1 < n {
			row = append(row, int32(i+1))
		}
		lists[i] = row
	}
	return fromAdjacency(lists, fmt.Sprintf("lollipop(%d+%d)", cliqueN, pathN))
}
