package graph

import (
	"testing"

	"manywalks/internal/rng"
)

// requireValid validates structural invariants common to all generators.
func requireValid(t *testing.T, g *Graph) {
	t.Helper()
	if err := g.Validate(); err != nil {
		t.Fatalf("%s: %v", g.Name(), err)
	}
}

func TestCycleStructure(t *testing.T) {
	for _, n := range []int{3, 4, 5, 64, 1001} {
		g := Cycle(n)
		requireValid(t, g)
		if g.N() != n || g.M() != n {
			t.Fatalf("cycle(%d): N=%d M=%d", n, g.N(), g.M())
		}
		if reg, d := g.IsRegular(); !reg || d != 2 {
			t.Fatalf("cycle(%d) not 2-regular", n)
		}
		if !g.IsConnected() {
			t.Fatalf("cycle(%d) disconnected", n)
		}
	}
}

func TestPathStructure(t *testing.T) {
	g := Path(17)
	requireValid(t, g)
	if g.M() != 16 || !g.IsConnected() {
		t.Fatalf("path(17): M=%d", g.M())
	}
}

func TestCompleteStructure(t *testing.T) {
	g := Complete(10, false)
	requireValid(t, g)
	if g.M() != 45 {
		t.Fatalf("K10 M=%d, want 45", g.M())
	}
	if reg, d := g.IsRegular(); !reg || d != 9 {
		t.Fatal("K10 not 9-regular")
	}
	gl := Complete(10, true)
	requireValid(t, gl)
	if gl.M() != 55 || gl.SelfLoops() != 10 {
		t.Fatalf("K10+loops M=%d loops=%d", gl.M(), gl.SelfLoops())
	}
	if reg, d := gl.IsRegular(); !reg || d != 10 {
		t.Fatal("K10+loops not 10-regular")
	}
}

func TestGridStructure(t *testing.T) {
	// 4x4 open grid: corner degree 2, edge 3, interior 4; m = 2*4*3 = 24.
	g := Grid([]int{4, 4}, false)
	requireValid(t, g)
	if g.M() != 24 {
		t.Fatalf("grid[4,4] M=%d, want 24", g.M())
	}
	h := g.DegreeHistogram()
	if h[2] != 4 || h[3] != 8 || h[4] != 4 {
		t.Fatalf("grid[4,4] degree histogram %v", h)
	}
	// 3-d open grid.
	g3 := Grid([]int{3, 3, 3}, false)
	requireValid(t, g3)
	if g3.N() != 27 || !g3.IsConnected() {
		t.Fatal("grid[3,3,3] malformed")
	}
}

func TestTorusStructure(t *testing.T) {
	for _, side := range []int{3, 4, 8} {
		g := Torus2D(side)
		requireValid(t, g)
		n := side * side
		if g.N() != n || g.M() != 2*n {
			t.Fatalf("torus %d: N=%d M=%d, want %d,%d", side, g.N(), g.M(), n, 2*n)
		}
		if reg, d := g.IsRegular(); !reg || d != 4 {
			t.Fatalf("torus %d not 4-regular", side)
		}
	}
	g := Grid([]int{3, 3, 3}, true)
	requireValid(t, g)
	if reg, d := g.IsRegular(); !reg || d != 6 {
		t.Fatal("3-d torus not 6-regular")
	}
}

func TestTorusSideTwoPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("torus with side 2 must panic (parallel edges)")
		}
	}()
	Grid([]int{2, 4}, true)
}

func TestHypercubeStructure(t *testing.T) {
	for _, dim := range []int{1, 2, 3, 6, 10} {
		g := Hypercube(dim)
		requireValid(t, g)
		n := 1 << uint(dim)
		if g.N() != n || g.M() != n*dim/2 {
			t.Fatalf("hypercube(%d): N=%d M=%d", dim, g.N(), g.M())
		}
		if !g.IsConnected() || !g.IsBipartite() {
			t.Fatalf("hypercube(%d) connectivity/bipartite", dim)
		}
		if g.Diameter() != dim {
			t.Fatalf("hypercube(%d) diameter %d", dim, g.Diameter())
		}
	}
}

func TestBalancedTreeStructure(t *testing.T) {
	for _, tc := range []struct{ a, h, n int }{
		{2, 1, 3}, {2, 3, 15}, {3, 2, 13}, {4, 2, 21},
	} {
		g := BalancedTree(tc.a, tc.h)
		requireValid(t, g)
		if g.N() != tc.n {
			t.Fatalf("tree(%d,%d): N=%d, want %d", tc.a, tc.h, g.N(), tc.n)
		}
		if g.M() != tc.n-1 || !g.IsConnected() {
			t.Fatalf("tree(%d,%d) not a tree: M=%d", tc.a, tc.h, g.M())
		}
		// Root has arity children; leaves have degree 1.
		if g.Degree(0) != tc.a {
			t.Fatalf("tree root degree %d", g.Degree(0))
		}
		leaves := 0
		for v := int32(0); v < int32(g.N()); v++ {
			if g.Degree(v) == 1 {
				leaves++
			}
		}
		want := 1
		for i := 0; i < tc.h; i++ {
			want *= tc.a
		}
		if leaves != want {
			t.Fatalf("tree(%d,%d) leaves=%d want %d", tc.a, tc.h, leaves, want)
		}
	}
}

func TestBarbellStructure(t *testing.T) {
	for _, n := range []int{7, 13, 101} {
		g, center := Barbell(n)
		requireValid(t, g)
		if g.N() != n {
			t.Fatalf("barbell(%d): N=%d", n, g.N())
		}
		if g.Degree(center) != 2 {
			t.Fatalf("barbell center degree %d", g.Degree(center))
		}
		m := (n - 1) / 2
		// Each clique contributes m(m-1)/2 edges plus 2 path edges.
		wantM := m*(m-1) + 2
		if g.M() != wantM {
			t.Fatalf("barbell(%d): M=%d want %d", n, g.M(), wantM)
		}
		if !g.IsConnected() {
			t.Fatalf("barbell(%d) disconnected", n)
		}
		// The two clique attachment points have degree m, others m-1.
		if g.Degree(0) != m || g.Degree(int32(m)) != m {
			t.Fatalf("barbell attachment degrees %d,%d want %d", g.Degree(0), g.Degree(int32(m)), m)
		}
		// Center sits between the cliques: removing it disconnects A from B.
		distFromA := g.BFS(1)
		if distFromA[m+1] != 4 { // clique A interior -> 0 -> center -> m -> m+1
			t.Fatalf("barbell cross distance %d, want 4", distFromA[m+1])
		}
	}
}

func TestLollipopStructure(t *testing.T) {
	g := Lollipop(10, 5)
	requireValid(t, g)
	if g.N() != 15 || g.M() != 45+5 {
		t.Fatalf("lollipop: N=%d M=%d", g.N(), g.M())
	}
	if !g.IsConnected() {
		t.Fatal("lollipop disconnected")
	}
	if g.Degree(14) != 1 {
		t.Fatal("lollipop tail endpoint degree != 1")
	}
}

func TestErdosRenyiBasics(t *testing.T) {
	r := rng.New(7)
	g := ErdosRenyi(200, 0.05, r)
	requireValid(t, g)
	// Expected edges = C(200,2)*0.05 = 995; allow wide slack (±5 sd ≈ ±154).
	if g.M() < 700 || g.M() > 1300 {
		t.Fatalf("G(200,0.05) M=%d far from 995", g.M())
	}
	// p=0 and p=1 extremes.
	if ErdosRenyi(50, 0, r).M() != 0 {
		t.Fatal("G(n,0) has edges")
	}
	if ErdosRenyi(20, 1, r).M() != 190 {
		t.Fatal("G(n,1) is not complete")
	}
}

func TestErdosRenyiEdgeDistribution(t *testing.T) {
	// Each specific edge must appear with probability ~p.
	r := rng.New(99)
	const trials = 400
	count := 0
	for i := 0; i < trials; i++ {
		g := ErdosRenyi(30, 0.2, r)
		if g.HasEdge(3, 17) {
			count++
		}
	}
	frac := float64(count) / trials
	if frac < 0.1 || frac > 0.3 {
		t.Fatalf("edge frequency %.3f far from 0.2", frac)
	}
}

func TestConnectedErdosRenyi(t *testing.T) {
	r := rng.New(13)
	g, err := ConnectedErdosRenyi(300, 0.05, r, 20)
	if err != nil {
		t.Fatal(err)
	}
	requireValid(t, g)
	if !g.IsConnected() {
		t.Fatal("ConnectedErdosRenyi returned disconnected graph")
	}
}

func TestTriangleDecode(t *testing.T) {
	// Exhaustive inverse check for small n.
	for _, n := range []int{2, 3, 5, 17} {
		idx := int64(0)
		for r := 0; r < n; r++ {
			for c := r + 1; c < n; c++ {
				gr, gc := triangleDecode(idx, n)
				if gr != r || gc != c {
					t.Fatalf("decode(%d,n=%d) = (%d,%d), want (%d,%d)", idx, n, gr, gc, r, c)
				}
				idx++
			}
		}
	}
}

func TestRandomRegular(t *testing.T) {
	r := rng.New(21)
	for _, tc := range []struct{ n, d int }{{50, 3}, {64, 4}, {101, 6}} {
		g, err := RandomRegular(tc.n, tc.d, r, 200)
		if err != nil {
			t.Fatal(err)
		}
		requireValid(t, g)
		if reg, d := g.IsRegular(); !reg || d != tc.d {
			t.Fatalf("RandomRegular(%d,%d) not regular: %v %d", tc.n, tc.d, reg, d)
		}
		if g.SelfLoops() != 0 {
			t.Fatal("RandomRegular produced loops")
		}
	}
	if _, err := RandomRegular(5, 3, r, 10); err == nil {
		t.Fatal("odd n*d must be rejected")
	}
	if _, err := RandomRegular(4, 4, r, 10); err == nil {
		t.Fatal("d >= n must be rejected")
	}
}

func TestConnectedRandomRegular(t *testing.T) {
	r := rng.New(31)
	g, err := ConnectedRandomRegular(128, 3, r, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsConnected() {
		t.Fatal("disconnected")
	}
}

func TestRandomGeometric(t *testing.T) {
	r := rng.New(5)
	g := RandomGeometric(400, 0.15, r)
	requireValid(t, g)
	if g.SelfLoops() != 0 {
		t.Fatal("geometric graph has loops")
	}
	// With r=0.15 and n=400 the graph is dense enough to be connected whp;
	// tolerate rare failure by only checking it has plenty of edges.
	if g.M() < 400 {
		t.Fatalf("rgg unexpectedly sparse: M=%d", g.M())
	}
}

func TestRandomGeometricGridMatchesBruteForce(t *testing.T) {
	// The cell-grid construction must match the O(n²) definition.
	r := rng.New(77)
	// Re-generate points with the same stream to compare: easiest is to
	// build twice with same seed but different radius handling; instead we
	// verify the triangle property on the generated graph: any two adjacent
	// vertices must be within radius — guaranteed by construction — and
	// spot-check non-adjacent near pairs via a fresh brute-force instance.
	const n = 150
	const radius = 0.2
	seed := uint64(123)
	ptsSrc := rng.New(seed)
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = ptsSrc.Float64()
		ys[i] = ptsSrc.Float64()
	}
	g := RandomGeometric(n, radius, rng.New(seed))
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dx, dy := xs[i]-xs[j], ys[i]-ys[j]
			within := dx*dx+dy*dy <= radius*radius
			if within != g.HasEdge(int32(i), int32(j)) {
				t.Fatalf("rgg mismatch at (%d,%d): within=%v", i, j, within)
			}
		}
	}
	_ = r
}

func TestMargulisExpander(t *testing.T) {
	for _, m := range []int{3, 5, 8, 16} {
		g := MargulisExpander(m)
		requireValid(t, g)
		if g.N() != m*m {
			t.Fatalf("margulis(%d): N=%d", m, g.N())
		}
		if !g.IsConnected() {
			t.Fatalf("margulis(%d) disconnected", m)
		}
		_, max := g.DegreeStats()
		if max > 8 {
			t.Fatalf("margulis(%d) max degree %d > 8", m, max)
		}
	}
}

func TestCycleWithChords(t *testing.T) {
	for _, p := range []int{7, 13, 101, 257} {
		g := CycleWithChords(p)
		requireValid(t, g)
		if g.N() != p || !g.IsConnected() {
			t.Fatalf("chords(%d) malformed", p)
		}
		_, max := g.DegreeStats()
		if max > 3 {
			t.Fatalf("chords(%d) degree %d > 3", p, max)
		}
	}
}

func TestCycleWithChordsRejectsComposite(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("composite p accepted")
		}
	}()
	CycleWithChords(9)
}

func TestModInverse(t *testing.T) {
	for _, p := range []int{5, 7, 11, 101} {
		for x := 1; x < p; x++ {
			inv := modInverse(x, p)
			if x*inv%p != 1 {
				t.Fatalf("modInverse(%d,%d) = %d", x, p, inv)
			}
		}
	}
	if modInverse(0, 7) != 0 {
		t.Fatal("0 inverse convention broken")
	}
}

func TestIsPrime(t *testing.T) {
	primes := map[int]bool{2: true, 3: true, 5: true, 7: true, 11: true, 101: true, 257: true}
	for n := 2; n <= 300; n++ {
		got := isPrime(n)
		want := trialDivision(n)
		if got != want {
			t.Fatalf("isPrime(%d) = %v", n, got)
		}
		_ = primes
	}
}

func trialDivision(n int) bool {
	if n < 2 {
		return false
	}
	for f := 2; f*f <= n; f++ {
		if n%f == 0 {
			return false
		}
	}
	return true
}

func TestGeneratorPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("Cycle(2)", func() { Cycle(2) })
	mustPanic("Path(1)", func() { Path(1) })
	mustPanic("Complete(1)", func() { Complete(1, false) })
	mustPanic("Grid empty", func() { Grid(nil, false) })
	mustPanic("Hypercube(0)", func() { Hypercube(0) })
	mustPanic("BalancedTree(1,1)", func() { BalancedTree(1, 1) })
	mustPanic("Barbell even", func() { Barbell(8) })
	mustPanic("Barbell tiny", func() { Barbell(5) })
	mustPanic("Lollipop", func() { Lollipop(2, 1) })
	mustPanic("Margulis(1)", func() { MargulisExpander(1) })
	mustPanic("ER bad p", func() { ErdosRenyi(10, 1.5, rng.New(1)) })
	mustPanic("RGG bad r", func() { RandomGeometric(10, 0, rng.New(1)) })
}
