package graph

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"os"
	"slices"
	"strconv"
	"strings"
)

// This file implements the streaming ingest path: a single forward pass over
// an edge-list stream accumulates edges in flat parallel arrays, and a
// counting sort packs them directly into the CSR arrays — a degree-count
// pass followed by a placement pass — so a ~1M-vertex / ~10M-edge graph
// builds in O(n+m) flat memory with no per-vertex slice materialization and
// no O(m log m) global edge sort. The result is pinned bit-for-bit against
// Builder.Build by TestStreamingMatchesBuilder and FuzzSerializeRoundTrip.

// csrIngest accumulates an edge stream in flat parallel arrays and packs it
// into CSR by counting sort. Unlike Builder (which records [2]int32 pairs
// and comparison-sorts the global list), the ingest path touches each edge
// O(1) times: degree count, placement, and one per-row sort.
type csrIngest struct {
	n      int
	us, vs []int32
	// wts stays nil until the first weighted edge, then is backfilled with
	// 1s, mirroring Builder's lazy weight lane.
	wts []float64
}

func newCSRIngest(n int) (*csrIngest, error) {
	if n < 0 {
		return nil, fmt.Errorf("graph: negative vertex count %d", n)
	}
	if n > MaxVertices {
		return nil, fmt.Errorf("graph: vertex count %d exceeds the int32 CSR limit %d", n, MaxVertices)
	}
	return &csrIngest{n: n}, nil
}

func (in *csrIngest) add(u, v int32, w float64, weighted bool) error {
	if u < 0 || v < 0 || int(u) >= in.n || int(v) >= in.n {
		return fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, in.n)
	}
	if weighted && in.wts == nil {
		in.wts = make([]float64, len(in.us), cap(in.us))
		for i := range in.wts {
			in.wts[i] = 1
		}
	}
	in.us = append(in.us, u)
	in.vs = append(in.vs, v)
	if in.wts != nil {
		if !weighted {
			w = 1
		}
		in.wts = append(in.wts, w)
	}
	return nil
}

// build counting-sorts the accumulated edges into CSR arrays. Duplicate
// edges coalesce (weights summing) in a compaction pass that runs only when
// a row actually contains duplicates, so the clean-input fast path is two
// passes plus per-row sorts.
func (in *csrIngest) build(name string) (*Graph, error) {
	n := in.n
	deg := make([]int32, n)
	for i, u := range in.us {
		deg[u]++
		if v := in.vs[i]; v != u {
			deg[v]++
		}
	}
	offsets := make([]int32, n+1)
	total := int64(0)
	for v := 0; v < n; v++ {
		total += int64(deg[v])
		if total > math.MaxInt32 {
			return nil, fmt.Errorf("graph: adjacency length %d exceeds the int32 CSR limit %d", total, math.MaxInt32)
		}
		offsets[v+1] = int32(total)
	}
	adj := make([]int32, total)
	var wts []float64
	if in.wts != nil {
		wts = make([]float64, total)
	}
	// Placement pass: deg doubles as the per-vertex cursor.
	cursor := deg
	copy(cursor, offsets[:n])
	for i, u := range in.us {
		v := in.vs[i]
		w := 1.0
		if in.wts != nil {
			w = in.wts[i]
		}
		adj[cursor[u]] = v
		if wts != nil {
			wts[cursor[u]] = w
		}
		cursor[u]++
		if v != u {
			adj[cursor[v]] = u
			if wts != nil {
				wts[cursor[v]] = w
			}
			cursor[v]++
		}
	}
	g := &Graph{offsets: offsets, adj: adj, weights: wts, name: name}
	// Per-row sort, then duplicate detection. Rows are short relative to m,
	// so this stays O(m log maxdeg).
	dups := false
	for v := 0; v < n; v++ {
		lo, hi := offsets[v], offsets[v+1]
		row := adj[lo:hi]
		if wts == nil {
			slices.Sort(row)
		} else {
			sortRow(row, wts[lo:hi])
		}
		for i := 1; i < len(row); i++ {
			if row[i] == row[i-1] {
				dups = true
			}
		}
	}
	if dups {
		in.compactDuplicates(g)
	}
	for v := int32(0); v < int32(n); v++ {
		for _, u := range g.Neighbors(v) {
			if u == v {
				g.loops++
			}
		}
	}
	g.m = (len(g.adj)-g.loops)/2 + g.loops
	return g, nil
}

// compactDuplicates collapses equal adjacent row entries in place (rows are
// sorted), summing weights, and rewrites the offsets. Writes never overtake
// reads, so the compaction is a single in-place pass.
func (in *csrIngest) compactDuplicates(g *Graph) {
	w := int32(0)
	for v := 0; v < g.N(); v++ {
		lo, hi := g.offsets[v], g.offsets[v+1]
		g.offsets[v] = w
		for i := lo; i < hi; i++ {
			if i > lo && g.adj[i] == g.adj[w-1] {
				if g.weights != nil {
					g.weights[w-1] += g.weights[i]
				}
				continue
			}
			g.adj[w] = g.adj[i]
			if g.weights != nil {
				g.weights[w] = g.weights[i]
			}
			w++
		}
	}
	g.offsets[g.N()] = w
	g.adj = g.adj[:w]
	if g.weights != nil {
		g.weights = g.weights[:w]
	}
}

// sortRow sorts one adjacency row carrying its weight lane along; insertion
// sort, because CSR rows are short and the closure-free loop beats
// sort.Sort's interface dispatch on the ingest hot path.
func sortRow(nb []int32, w []float64) {
	for i := 1; i < len(nb); i++ {
		x, xw := nb[i], w[i]
		j := i - 1
		for j >= 0 && nb[j] > x {
			nb[j+1], w[j+1] = nb[j], w[j]
			j--
		}
		nb[j+1], w[j+1] = x, xw
	}
}

// parseEdgeList is the text-format scanner shared by ReadEdgeList and
// ReadEdgeListStreaming: header validation, name decoding, per-edge range
// and weight checks, and the declared-vs-seen edge-count check all live
// here; the two readers differ only in the sink the edges feed.
func parseEdgeList(r io.Reader, begin func(n int) error, edge func(u, v int32, w float64, weighted bool) error) (string, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	name := ""
	var n, m int
	header := false
	edges := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if rest, ok := strings.CutPrefix(line, "# name "); ok {
				name = decodeName(rest)
			}
			continue
		}
		fields := strings.Fields(line)
		if !header {
			if len(fields) != 2 {
				return "", fmt.Errorf("graph: bad header %q", line)
			}
			var err error
			if n, err = strconv.Atoi(fields[0]); err != nil {
				return "", fmt.Errorf("graph: bad vertex count: %w", err)
			}
			if m, err = strconv.Atoi(fields[1]); err != nil {
				return "", fmt.Errorf("graph: bad edge count: %w", err)
			}
			if n < 0 || m < 0 {
				return "", fmt.Errorf("graph: negative sizes in header %q", line)
			}
			if n > maxSerializedVertices {
				return "", fmt.Errorf("graph: vertex count %d exceeds the reader limit %d", n, maxSerializedVertices)
			}
			if m > maxSerializedEdges {
				return "", fmt.Errorf("graph: edge count %d exceeds the int32 adjacency limit (%d edges)", m, maxSerializedEdges)
			}
			if err := begin(n); err != nil {
				return "", err
			}
			header = true
			continue
		}
		if len(fields) != 2 && len(fields) != 3 {
			return "", fmt.Errorf("graph: bad edge line %q", line)
		}
		u, err := strconv.Atoi(fields[0])
		if err != nil {
			return "", err
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil {
			return "", err
		}
		if u < 0 || v < 0 || u >= n || v >= n {
			return "", fmt.Errorf("graph: edge (%d,%d) out of range", u, v)
		}
		wt, weighted := 1.0, false
		if len(fields) == 3 {
			wt, err = strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return "", fmt.Errorf("graph: bad edge weight %q: %w", fields[2], err)
			}
			if !(wt > 0) || math.IsInf(wt, 1) {
				return "", fmt.Errorf("graph: edge (%d,%d) weight %v must be positive and finite", u, v, wt)
			}
			weighted = true
		}
		if err := edge(int32(u), int32(v), wt, weighted); err != nil {
			return "", err
		}
		edges++
	}
	if err := sc.Err(); err != nil {
		return "", err
	}
	if !header {
		return "", fmt.Errorf("graph: missing header")
	}
	if edges != m {
		return "", fmt.Errorf("graph: header promises %d edges, found %d", m, edges)
	}
	return name, nil
}

// ReadEdgeListStreaming parses the WriteEdgeList text format through the
// counting-sort CSR assembler: one forward pass accumulates edges in flat
// arrays and two O(n+m) passes pack them into CSR, with no per-vertex
// intermediate slices and no global comparison sort. It accepts exactly the
// inputs ReadEdgeList accepts and produces an identical graph; prefer it
// for large instances.
func ReadEdgeListStreaming(r io.Reader) (*Graph, error) {
	var in *csrIngest
	name, err := parseEdgeList(r,
		func(n int) error {
			var err error
			in, err = newCSRIngest(n)
			return err
		},
		func(u, v int32, w float64, weighted bool) error {
			return in.add(u, v, w, weighted)
		})
	if err != nil {
		return nil, err
	}
	return in.build(name)
}

// OpenBinary reads a WriteBinary file from path. On platforms and layouts
// that allow it (linux, version-3 files, little-endian host) the CSR arrays
// are memory-mapped read-only in place — the adjacency never becomes
// heap-resident and pages load on demand; everything else falls back to
// ReadBinary transparently. A mapped graph reports Mapped() true and holds
// its mapping until Release.
func OpenBinary(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if g, err := openBinaryMapped(f); err == nil {
		return g, nil
	}
	// Unmappable layout (v2 file, foreign platform) or corrupt contents:
	// the heap reader either parses it or reports the descriptive error.
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	return ReadBinary(bufio.NewReaderSize(f, 1<<20))
}

// Open reads a graph from path, sniffing the format: files beginning with
// the binary magic take the binary path (memory-mapping the CSR arrays in
// place when the platform and layout allow, see OpenBinary), everything
// else parses as a streaming edge list. It is the ingest entry point the
// corpusgen and graphinfo commands use.
func Open(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	var magic [4]byte
	isBinary := false
	if _, err := io.ReadFull(f, magic[:]); err == nil {
		le := uint32(magic[0]) | uint32(magic[1])<<8 | uint32(magic[2])<<16 | uint32(magic[3])<<24
		isBinary = le == binaryMagic
	}
	f.Close()
	if isBinary {
		return OpenBinary(path)
	}
	f, err = os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadEdgeListStreaming(bufio.NewReaderSize(f, 1<<20))
}
