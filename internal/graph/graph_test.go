package graph

import (
	"testing"
	"testing/quick"

	"manywalks/internal/rng"
)

func TestBuilderDedup(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0) // duplicate, reversed
	b.AddEdge(0, 1) // duplicate
	b.AddEdge(2, 3)
	g := b.Build("t")
	if g.M() != 2 {
		t.Fatalf("M = %d, want 2", g.M())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderSelfLoop(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 0)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g := b.Build("t")
	if g.M() != 3 || g.SelfLoops() != 1 {
		t.Fatalf("M=%d loops=%d, want 3,1", g.M(), g.SelfLoops())
	}
	if g.Degree(0) != 2 { // loop counts once plus edge to 1
		t.Fatalf("deg(0) = %d, want 2", g.Degree(0))
	}
	if !g.HasEdge(0, 0) || g.HasEdge(1, 1) {
		t.Fatal("HasEdge self-loop wrong")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AddEdge out of range did not panic")
		}
	}()
	NewBuilder(2).AddEdge(0, 2)
}

func TestHasEdgeAndNeighbors(t *testing.T) {
	g := Cycle(5)
	for v := int32(0); v < 5; v++ {
		nb := g.Neighbors(v)
		if len(nb) != 2 {
			t.Fatalf("cycle degree %d at %d", len(nb), v)
		}
		for _, u := range nb {
			if !g.HasEdge(v, u) || !g.HasEdge(u, v) {
				t.Fatalf("missing symmetric edge (%d,%d)", v, u)
			}
		}
	}
	if g.HasEdge(0, 2) {
		t.Fatal("cycle(5) should not contain chord (0,2)")
	}
}

func TestDegreeStatsAndRegular(t *testing.T) {
	g := Hypercube(4)
	min, max := g.DegreeStats()
	if min != 4 || max != 4 {
		t.Fatalf("hypercube(4) degrees [%d,%d], want [4,4]", min, max)
	}
	reg, d := g.IsRegular()
	if !reg || d != 4 {
		t.Fatalf("hypercube(4) IsRegular = %v,%d", reg, d)
	}
	s := Star(5)
	reg, _ = s.IsRegular()
	if reg {
		t.Fatal("star(5) reported regular")
	}
}

func TestBFSOnPath(t *testing.T) {
	g := Path(6)
	dist := g.BFS(0)
	for i, d := range dist {
		if int(d) != i {
			t.Fatalf("path BFS dist[%d] = %d", i, d)
		}
	}
}

func TestConnectivityAndComponents(t *testing.T) {
	b := NewBuilder(6)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(3, 4)
	g := b.Build("two-comps")
	if g.IsConnected() {
		t.Fatal("disconnected graph reported connected")
	}
	count, id := g.Components()
	if count != 3 { // {0,1,2}, {3,4}, {5}
		t.Fatalf("components = %d, want 3", count)
	}
	if id[0] != id[1] || id[1] != id[2] || id[3] != id[4] || id[0] == id[3] || id[5] == id[0] || id[5] == id[3] {
		t.Fatalf("bad component ids %v", id)
	}
}

func TestDiameter(t *testing.T) {
	cases := []struct {
		g    *Graph
		want int
	}{
		{Cycle(8), 4},
		{Cycle(9), 4},
		{Path(10), 9},
		{Complete(7, false), 1},
		{Hypercube(5), 5},
		{Torus2D(4), 4},
		{Star(9), 2},
	}
	for _, c := range cases {
		if d := c.g.Diameter(); d != c.want {
			t.Errorf("%s diameter = %d, want %d", c.g.Name(), d, c.want)
		}
	}
}

func TestBipartite(t *testing.T) {
	cases := []struct {
		g    *Graph
		want bool
	}{
		{Cycle(8), true},
		{Cycle(9), false},
		{Hypercube(4), true},
		{Complete(4, false), false},
		{Path(5), true},
		{BalancedTree(2, 3), true},
	}
	for _, c := range cases {
		if got := c.g.IsBipartite(); got != c.want {
			t.Errorf("%s bipartite = %v, want %v", c.g.Name(), got, c.want)
		}
	}
	// Self-loops break bipartiteness.
	b := NewBuilder(2)
	b.AddEdge(0, 1)
	b.AddEdge(0, 0)
	if b.Build("loop").IsBipartite() {
		t.Error("graph with self-loop reported bipartite")
	}
}

func TestEccentricityDisconnected(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	g := b.Build("t")
	if g.Eccentricity(0) != -1 {
		t.Fatal("eccentricity should be -1 when a vertex is unreachable")
	}
	if g.Diameter() != -1 {
		t.Fatal("diameter should be -1 for disconnected graph")
	}
}

func TestDegreeHistogram(t *testing.T) {
	h := Star(6).DegreeHistogram()
	if h[1] != 5 || h[5] != 1 {
		t.Fatalf("star histogram %v", h)
	}
}

// TestBuilderMatchesFromAdjacency cross-checks the two construction paths on
// random edge sets.
func TestBuilderMatchesFromAdjacency(t *testing.T) {
	r := rng.New(404)
	check := func(seed uint16) bool {
		rr := rng.NewStream(uint64(seed), 1)
		n := 3 + rr.Intn(12)
		b := NewBuilder(n)
		lists := make([][]int32, n)
		seen := map[[2]int32]bool{}
		edges := rr.Intn(2 * n)
		for e := 0; e < edges; e++ {
			u := int32(rr.Intn(n))
			v := int32(rr.Intn(n))
			if u == v {
				continue
			}
			if u > v {
				u, v = v, u
			}
			if seen[[2]int32{u, v}] {
				continue
			}
			seen[[2]int32{u, v}] = true
			b.AddEdge(u, v)
			lists[u] = append(lists[u], v)
			lists[v] = append(lists[v], u)
		}
		g1 := b.Build("a")
		g2 := fromAdjacency(lists, "b")
		if g1.N() != g2.N() || g1.M() != g2.M() {
			return false
		}
		for v := int32(0); v < int32(n); v++ {
			n1, n2 := g1.Neighbors(v), g2.Neighbors(v)
			if len(n1) != len(n2) {
				return false
			}
			for i := range n1 {
				if n1[i] != n2[i] {
					return false
				}
			}
		}
		return g1.Validate() == nil && g2.Validate() == nil
	}
	cfg := &quick.Config{MaxCount: 50, Rand: nil}
	_ = r
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesAsymmetry(t *testing.T) {
	// Handcraft a broken graph: edge 0->1 without 1->0.
	g := &Graph{
		offsets: []int32{0, 1, 1},
		adj:     []int32{1},
		m:       1,
	}
	if err := g.Validate(); err == nil {
		t.Fatal("Validate accepted asymmetric graph")
	}
}
