//go:build !linux

package graph

import (
	"fmt"
	"os"
)

// Non-linux builds have no mmap fast path; OpenBinary always takes the heap
// reader and no Graph is ever mapped.

var errUnmappable = fmt.Errorf("graph: binary layout not mappable")

func openBinaryMapped(f *os.File) (*Graph, error) { return nil, errUnmappable }

func unmapBytes(data []byte) error { return nil }
