package graph

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fuzzTopologyEqual compares shape, name, and CSR arrays but not weights —
// used where duplicate-weight summation order may differ between paths.
func fuzzTopologyEqual(t *testing.T, stage string, a, b *Graph) {
	t.Helper()
	if a.N() != b.N() || a.M() != b.M() || a.SelfLoops() != b.SelfLoops() {
		t.Fatalf("%s: shape mismatch: (%d,%d,%d) vs (%d,%d,%d)",
			stage, a.N(), a.M(), a.SelfLoops(), b.N(), b.M(), b.SelfLoops())
	}
	if a.Name() != b.Name() {
		t.Fatalf("%s: name %q != %q", stage, a.Name(), b.Name())
	}
	if a.Weighted() != b.Weighted() {
		t.Fatalf("%s: weightedness mismatch", stage)
	}
	ao, aa := a.CSR()
	bo, ba := b.CSR()
	if !bytes.Equal(int32Bytes(ao), int32Bytes(bo)) || !bytes.Equal(int32Bytes(aa), int32Bytes(ba)) {
		t.Fatalf("%s: CSR mismatch", stage)
	}
}

// fuzzGraphsEqual compares everything both serializers promise to round-trip.
func fuzzGraphsEqual(t *testing.T, stage string, a, b *Graph) {
	t.Helper()
	if a.N() != b.N() || a.M() != b.M() || a.SelfLoops() != b.SelfLoops() {
		t.Fatalf("%s: shape mismatch: (%d,%d,%d) vs (%d,%d,%d)",
			stage, a.N(), a.M(), a.SelfLoops(), b.N(), b.M(), b.SelfLoops())
	}
	if a.Name() != b.Name() {
		t.Fatalf("%s: name %q != %q", stage, a.Name(), b.Name())
	}
	if a.Weighted() != b.Weighted() {
		t.Fatalf("%s: weightedness mismatch", stage)
	}
	ao, aa := a.CSR()
	bo, ba := b.CSR()
	if !bytes.Equal(int32Bytes(ao), int32Bytes(bo)) || !bytes.Equal(int32Bytes(aa), int32Bytes(ba)) {
		t.Fatalf("%s: CSR mismatch", stage)
	}
	if a.Weighted() {
		aw, bw := a.CSRWeights(), b.CSRWeights()
		for i := range aw {
			if aw[i] != bw[i] {
				t.Fatalf("%s: weight[%d] %v != %v", stage, i, aw[i], bw[i])
			}
		}
	}
}

func int32Bytes(s []int32) []byte {
	out := make([]byte, 0, len(s)*4)
	for _, v := range s {
		out = append(out, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return out
}

// FuzzSerializeRoundTrip feeds arbitrary text to the edge-list parser;
// every graph it accepts must survive an edge-list round trip AND a
// binary-v2 round trip bit for bit — including a fuzzed name, which is how
// the header escaping for control-character names was shaken out.
func FuzzSerializeRoundTrip(f *testing.F) {
	var seedEL bytes.Buffer
	if err := Cycle(5).WriteEdgeList(&seedEL); err != nil {
		f.Fatal(err)
	}
	f.Add(seedEL.String(), "cycle(5)")
	f.Add("# name weighted\n3 3\n0 1 2.5\n1 2 0.25\n0 2 1e-3\n", "w")
	f.Add("2 1\n0 0\n", "self loop")
	f.Add("3 2\n0 1\n0 1\n", "dup edge")
	f.Fuzz(func(t *testing.T, input, name string) {
		if len(input) > 1<<16 || len(name) > 256 {
			t.Skip("oversized input")
		}
		g, err := ReadEdgeList(strings.NewReader(input))
		if err != nil {
			// Rejected input is fine (it just must not panic), and the
			// streaming reader must reject it too.
			if _, serr := ReadEdgeListStreaming(strings.NewReader(input)); serr == nil {
				t.Fatalf("streaming reader accepted input the Builder reader rejected (%v)", err)
			}
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("parser accepted an invalid graph: %v", err)
		}
		gs, err := ReadEdgeListStreaming(strings.NewReader(input))
		if err != nil {
			t.Fatalf("streaming reader rejected accepted input: %v", err)
		}
		if err := gs.Validate(); err != nil {
			t.Fatalf("streaming reader built an invalid graph: %v", err)
		}
		fuzzTopologyEqual(t, "streaming", g, gs)
		// Weights: the Builder sums duplicate-edge weights in global-sort
		// order, the streaming assembler in row order, so when duplicates
		// collapsed the float sums may differ in the last ulps. All weights
		// are strictly positive, so any summation order agrees to a tight
		// relative tolerance; with no duplicates both paths are bit-exact.
		if g.Weighted() {
			aw, bw := g.CSRWeights(), gs.CSRWeights()
			for i := range aw {
				if aw[i] == bw[i] {
					continue
				}
				if diff := math.Abs(aw[i] - bw[i]); diff <= 1e-9*math.Max(aw[i], bw[i]) {
					continue
				}
				if aw[i] > math.MaxFloat64/2 && bw[i] > math.MaxFloat64/2 {
					continue // both saturated by an overflowing duplicate sum
				}
				t.Fatalf("streaming: weight[%d] %v != %v beyond summation-order tolerance", i, aw[i], bw[i])
			}
		}
		g.SetName(name)

		var el bytes.Buffer
		if err := g.WriteEdgeList(&el); err != nil {
			t.Fatalf("write edge list: %v", err)
		}
		g2, err := ReadEdgeList(&el)
		if err != nil {
			t.Fatalf("reparse edge list: %v\n%s", err, el.String())
		}
		fuzzGraphsEqual(t, "edge list", g, g2)

		var bin bytes.Buffer
		if err := g.WriteBinary(&bin); err != nil {
			t.Fatalf("write binary: %v", err)
		}
		g3, err := ReadBinary(&bin)
		if err != nil {
			t.Fatalf("reparse binary: %v", err)
		}
		fuzzGraphsEqual(t, "binary", g, g3)
	})
}

// FuzzBinaryParse feeds arbitrary bytes to the binary-v2 reader: it must
// reject garbage with an error — never panic, and never allocate
// proportionally to a declared-but-absent payload — and anything it
// accepts must round-trip bit for bit.
func FuzzBinaryParse(f *testing.F) {
	for _, g := range []*Graph{Cycle(6), Complete(4, true), Reweight(Torus2D(3), func(u, v int32) float64 {
		return 1 + float64(u+v)
	})} {
		var buf bytes.Buffer
		if err := g.WriteBinary(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			t.Skip("oversized input")
		}
		g, err := ReadBinary(bytes.NewReader(data))

		// The mmap-backed path must agree with the heap reader on every
		// input: same accept/reject decision, identical graph on accept.
		path := filepath.Join(t.TempDir(), "fuzz.mwal")
		if werr := os.WriteFile(path, data, 0o644); werr != nil {
			t.Fatal(werr)
		}
		mg, merr := OpenBinary(path)
		if (err == nil) != (merr == nil) {
			t.Fatalf("OpenBinary err=%v, ReadBinary err=%v: accept/reject mismatch", merr, err)
		}
		if err != nil {
			return
		}
		fuzzGraphsEqual(t, "mapped", g, mg)
		if rerr := mg.Release(); rerr != nil {
			t.Fatalf("Release: %v", rerr)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("reader accepted an invalid graph: %v", err)
		}
		var buf bytes.Buffer
		if err := g.WriteBinary(&buf); err != nil {
			t.Fatalf("rewrite: %v", err)
		}
		g2, err := ReadBinary(&buf)
		if err != nil {
			t.Fatalf("reparse: %v", err)
		}
		fuzzGraphsEqual(t, "binary", g, g2)
	})
}
