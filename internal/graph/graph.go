// Package graph provides the undirected-graph substrate used throughout the
// reproduction: a compact CSR (compressed sparse row) representation tuned
// for random-walk stepping, a builder for incremental construction, and
// generators for every graph family evaluated in the paper (cycle, grids and
// tori, hypercube, complete graph, expanders, Erdős–Rényi and geometric
// random graphs, balanced trees, barbell and lollipop graphs).
//
// Vertices are integers in [0, N). Graphs are simple and undirected unless a
// generator documents otherwise (Complete supports optional self-loops, as
// used by Lemma 12 of the paper). The degree of a vertex is the length of
// its adjacency list; a self-loop contributes one entry, so a walker at v
// moves to a uniform element of Neighbors(v), possibly v itself.
package graph

import (
	"fmt"
	"sort"
)

// Graph is an immutable undirected graph in CSR form. The zero value is the
// empty graph. Adjacency lists are sorted, enabling binary-search edge
// queries and deterministic iteration.
type Graph struct {
	offsets []int32 // length n+1; adjacency of v is adj[offsets[v]:offsets[v+1]]
	adj     []int32
	m       int    // number of undirected edges (self-loops count once)
	loops   int    // number of self-loops
	name    string // human-readable family label, e.g. "cycle(1024)"
}

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.offsets) - 1 }

// M returns the number of undirected edges; a self-loop counts as one edge.
func (g *Graph) M() int { return g.m }

// SelfLoops returns the number of self-loop edges.
func (g *Graph) SelfLoops() int { return g.loops }

// Name returns the label assigned by the generator, or "graph(n)" if unset.
func (g *Graph) Name() string {
	if g.name == "" {
		return fmt.Sprintf("graph(%d)", g.N())
	}
	return g.name
}

// SetName overrides the graph's label.
func (g *Graph) SetName(s string) { g.name = s }

// Degree returns the degree of v (self-loop counts once).
func (g *Graph) Degree(v int32) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// Neighbors returns the sorted adjacency list of v. The returned slice
// aliases internal storage and must not be modified.
func (g *Graph) Neighbors(v int32) []int32 {
	return g.adj[g.offsets[v]:g.offsets[v+1]]
}

// Offset returns the CSR offset of v's adjacency range: the number of
// adjacency slots owned by vertices before v. Offset(n) equals the total
// adjacency length. Samplers use this to map a uniform adjacency slot back
// to its owning vertex (degree-proportional vertex sampling).
func (g *Graph) Offset(v int32) int { return int(g.offsets[v]) }

// Neighbor returns the i-th neighbor of v; it is the random-walk hot path
// and performs no bounds checking beyond the slice's own.
func (g *Graph) Neighbor(v int32, i int) int32 {
	return g.adj[int(g.offsets[v])+i]
}

// CSR exposes the graph's raw compressed-sparse-row arrays: offsets has
// length n+1 and the adjacency of v is adj[offsets[v]:offsets[v+1]]. It
// exists for hot-path consumers (the batched walk engine) that cannot
// afford a slice-header construction per step. Both slices alias internal
// storage and must not be modified.
func (g *Graph) CSR() (offsets, adj []int32) { return g.offsets, g.adj }

// HasEdge reports whether {u,v} is an edge (or a self-loop when u == v).
func (g *Graph) HasEdge(u, v int32) bool {
	nb := g.Neighbors(u)
	i := sort.Search(len(nb), func(i int) bool { return nb[i] >= v })
	return i < len(nb) && nb[i] == v
}

// DegreeStats returns the minimum and maximum degree; both are 0 for the
// empty graph.
func (g *Graph) DegreeStats() (min, max int) {
	n := g.N()
	if n == 0 {
		return 0, 0
	}
	min, max = g.Degree(0), g.Degree(0)
	for v := int32(1); v < int32(n); v++ {
		d := g.Degree(v)
		if d < min {
			min = d
		}
		if d > max {
			max = d
		}
	}
	return min, max
}

// IsRegular reports whether every vertex has the same degree, and that degree.
func (g *Graph) IsRegular() (bool, int) {
	min, max := g.DegreeStats()
	return min == max, max
}

// TotalDegree returns the sum of all vertex degrees (2m for loop-free graphs,
// 2m - loops in general, because a self-loop contributes a single entry).
func (g *Graph) TotalDegree() int { return len(g.adj) }

// Validate checks internal consistency: sorted adjacency, symmetric edges,
// in-range endpoints, and edge-count bookkeeping. Generators call it in
// tests; it is O(m log d).
func (g *Graph) Validate() error {
	n := int32(g.N())
	if len(g.offsets) == 0 || g.offsets[0] != 0 {
		return fmt.Errorf("graph: bad offsets header")
	}
	if int(g.offsets[n]) != len(g.adj) {
		return fmt.Errorf("graph: offsets end %d != len(adj) %d", g.offsets[n], len(g.adj))
	}
	loops := 0
	for v := int32(0); v < n; v++ {
		if g.offsets[v] > g.offsets[v+1] {
			return fmt.Errorf("graph: offsets not monotone at %d", v)
		}
		nb := g.Neighbors(v)
		for i, u := range nb {
			if u < 0 || u >= n {
				return fmt.Errorf("graph: neighbor %d of %d out of range", u, v)
			}
			if i > 0 && nb[i-1] >= u {
				return fmt.Errorf("graph: adjacency of %d not strictly sorted", v)
			}
			if u == v {
				loops++
			} else if !g.HasEdge(u, v) {
				return fmt.Errorf("graph: edge (%d,%d) not symmetric", v, u)
			}
		}
	}
	if loops != g.loops {
		return fmt.Errorf("graph: loop count %d != recorded %d", loops, g.loops)
	}
	wantAdj := 2*(g.m-g.loops) + g.loops
	if len(g.adj) != wantAdj {
		return fmt.Errorf("graph: adj length %d != expected %d for m=%d loops=%d",
			len(g.adj), wantAdj, g.m, g.loops)
	}
	return nil
}

// Builder accumulates undirected edges and produces a Graph. Duplicate edges
// are coalesced; AddEdge(u,u) records a self-loop. The zero Builder is not
// usable; call NewBuilder with the vertex count.
type Builder struct {
	n     int
	edges [][2]int32
}

// NewBuilder returns a builder for a graph on n vertices.
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Builder{n: n}
}

// AddEdge records the undirected edge {u,v}. Endpoints must be in [0,n).
func (b *Builder) AddEdge(u, v int32) {
	if u < 0 || v < 0 || int(u) >= b.n || int(v) >= b.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", u, v, b.n))
	}
	if u > v {
		u, v = v, u
	}
	b.edges = append(b.edges, [2]int32{u, v})
}

// EdgeCount returns the number of recorded (possibly duplicate) edges.
func (b *Builder) EdgeCount() int { return len(b.edges) }

// Build produces the immutable Graph, deduplicating edges.
func (b *Builder) Build(name string) *Graph {
	sort.Slice(b.edges, func(i, j int) bool {
		if b.edges[i][0] != b.edges[j][0] {
			return b.edges[i][0] < b.edges[j][0]
		}
		return b.edges[i][1] < b.edges[j][1]
	})
	uniq := b.edges[:0]
	var last [2]int32 = [2]int32{-1, -1}
	for _, e := range b.edges {
		if e != last {
			uniq = append(uniq, e)
			last = e
		}
	}
	deg := make([]int32, b.n)
	loops := 0
	for _, e := range uniq {
		if e[0] == e[1] {
			deg[e[0]]++
			loops++
		} else {
			deg[e[0]]++
			deg[e[1]]++
		}
	}
	g := &Graph{
		offsets: make([]int32, b.n+1),
		m:       len(uniq),
		loops:   loops,
		name:    name,
	}
	for v := 0; v < b.n; v++ {
		g.offsets[v+1] = g.offsets[v] + deg[v]
	}
	g.adj = make([]int32, g.offsets[b.n])
	cursor := make([]int32, b.n)
	copy(cursor, g.offsets[:b.n])
	for _, e := range uniq {
		g.adj[cursor[e[0]]] = e[1]
		cursor[e[0]]++
		if e[0] != e[1] {
			g.adj[cursor[e[1]]] = e[0]
			cursor[e[1]]++
		}
	}
	for v := int32(0); v < int32(b.n); v++ {
		nb := g.adj[g.offsets[v]:g.offsets[v+1]]
		sort.Slice(nb, func(i, j int) bool { return nb[i] < nb[j] })
	}
	return g
}

// fromAdjacency builds a Graph directly from per-vertex adjacency lists that
// are already symmetric. It is the fast path used by deterministic
// generators, avoiding Builder's sort of the global edge list.
func fromAdjacency(lists [][]int32, name string) *Graph {
	n := len(lists)
	g := &Graph{offsets: make([]int32, n+1), name: name}
	total := 0
	for v, nb := range lists {
		sort.Slice(nb, func(i, j int) bool { return nb[i] < nb[j] })
		total += len(nb)
		g.offsets[v+1] = g.offsets[v] + int32(len(nb))
	}
	g.adj = make([]int32, 0, total)
	for v, nb := range lists {
		for _, u := range nb {
			g.adj = append(g.adj, u)
			if u == int32(v) {
				g.loops++
			}
		}
	}
	g.m = (len(g.adj)-g.loops)/2 + g.loops
	return g
}
