// Package graph provides the undirected-graph substrate used throughout the
// reproduction: a compact CSR (compressed sparse row) representation tuned
// for random-walk stepping, a builder for incremental construction, and
// generators for every graph family evaluated in the paper (cycle, grids and
// tori, hypercube, complete graph, expanders, Erdős–Rényi and geometric
// random graphs, balanced trees, barbell and lollipop graphs).
//
// Vertices are integers in [0, N). Graphs are simple and undirected unless a
// generator documents otherwise (Complete supports optional self-loops, as
// used by Lemma 12 of the paper). The degree of a vertex is the length of
// its adjacency list; a self-loop contributes one entry, so a walker at v
// moves to a uniform element of Neighbors(v), possibly v itself.
package graph

import (
	"fmt"
	"math"
	"sort"
)

// Graph is an immutable undirected graph in CSR form. The zero value is the
// empty graph. Adjacency lists are sorted, enabling binary-search edge
// queries and deterministic iteration.
type Graph struct {
	offsets []int32 // length n+1; adjacency of v is adj[offsets[v]:offsets[v+1]]
	adj     []int32
	// weights, when non-nil, is parallel to adj: weights[i] is the weight of
	// the edge whose far endpoint is adj[i]. Weights are strictly positive
	// and symmetric (the {u,v} slot in u's row equals the one in v's row).
	// nil means the graph is unweighted and every edge has weight 1.
	weights []float64
	m       int    // number of undirected edges (self-loops count once)
	loops   int    // number of self-loops
	name    string // human-readable family label, e.g. "cycle(1024)"
	// mapped, when non-nil, is the read-only mmap region the CSR arrays
	// alias (OpenBinary's in-place path); it pins the mapping until Release.
	mapped []byte
}

// MaxVertices is the largest vertex count the CSR representation can hold:
// vertex ids are int32, so n is bounded by 2^31-1 (adjacency lengths are
// separately bounded by the int32 offsets; see Builder.Build).
const MaxVertices = 1<<31 - 1

// Mapped reports whether the graph's CSR arrays alias a read-only memory
// mapping (OpenBinary's in-place path) rather than the heap.
func (g *Graph) Mapped() bool { return g.mapped != nil }

// Release unmaps a mapped graph's backing region. The graph must not be
// used afterwards — its CSR slices are invalidated. Release on a
// heap-resident graph is a no-op.
func (g *Graph) Release() error {
	if g.mapped == nil {
		return nil
	}
	data := g.mapped
	g.mapped, g.offsets, g.adj, g.weights = nil, nil, nil, nil
	return unmapBytes(data)
}

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.offsets) - 1 }

// M returns the number of undirected edges; a self-loop counts as one edge.
func (g *Graph) M() int { return g.m }

// SelfLoops returns the number of self-loop edges.
func (g *Graph) SelfLoops() int { return g.loops }

// Name returns the label assigned by the generator, or "graph(n)" if unset.
func (g *Graph) Name() string {
	if g.name == "" {
		return fmt.Sprintf("graph(%d)", g.N())
	}
	return g.name
}

// SetName overrides the graph's label.
func (g *Graph) SetName(s string) { g.name = s }

// Degree returns the degree of v (self-loop counts once).
func (g *Graph) Degree(v int32) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// Neighbors returns the sorted adjacency list of v. The returned slice
// aliases internal storage and must not be modified.
func (g *Graph) Neighbors(v int32) []int32 {
	return g.adj[g.offsets[v]:g.offsets[v+1]]
}

// Offset returns the CSR offset of v's adjacency range: the number of
// adjacency slots owned by vertices before v. Offset(n) equals the total
// adjacency length. Samplers use this to map a uniform adjacency slot back
// to its owning vertex (degree-proportional vertex sampling).
func (g *Graph) Offset(v int32) int { return int(g.offsets[v]) }

// Neighbor returns the i-th neighbor of v; it is the random-walk hot path
// and performs no bounds checking beyond the slice's own.
func (g *Graph) Neighbor(v int32, i int) int32 {
	return g.adj[int(g.offsets[v])+i]
}

// CSR exposes the graph's raw compressed-sparse-row arrays: offsets has
// length n+1 and the adjacency of v is adj[offsets[v]:offsets[v+1]]. It
// exists for hot-path consumers (the batched walk engine) that cannot
// afford a slice-header construction per step. Both slices alias internal
// storage and must not be modified.
func (g *Graph) CSR() (offsets, adj []int32) { return g.offsets, g.adj }

// Weighted reports whether the graph carries per-edge weights. Unweighted
// graphs behave as if every edge had weight 1.
func (g *Graph) Weighted() bool { return g.weights != nil }

// EdgeWeight returns the weight of v's i-th edge (1 for unweighted graphs).
func (g *Graph) EdgeWeight(v int32, i int) float64 {
	if g.weights == nil {
		return 1
	}
	return g.weights[int(g.offsets[v])+i]
}

// WeightRow returns v's edge weights, parallel to Neighbors(v), or nil for
// unweighted graphs. The slice aliases internal storage.
func (g *Graph) WeightRow(v int32) []float64 {
	if g.weights == nil {
		return nil
	}
	return g.weights[g.offsets[v]:g.offsets[v+1]]
}

// CSRWeights exposes the raw weight array parallel to CSR()'s adjacency, or
// nil for unweighted graphs. It aliases internal storage; hot-path consumers
// (the weighted walk kernel compiler) must not modify it.
func (g *Graph) CSRWeights() []float64 { return g.weights }

// WeightedDegree returns the sum of v's edge weights (a self-loop's weight
// counts once, matching its single adjacency entry). For unweighted graphs
// this equals Degree(v).
func (g *Graph) WeightedDegree(v int32) float64 {
	if g.weights == nil {
		return float64(g.Degree(v))
	}
	sum := 0.0
	for _, w := range g.WeightRow(v) {
		sum += w
	}
	return sum
}

// Reweight returns a weighted copy of g with identical topology, where the
// undirected edge {u,v} (u <= v) gets weight f(u, v). f must return a
// strictly positive, finite weight; Reweight panics otherwise. The copy
// shares g's offsets and adjacency storage and keeps its name.
func Reweight(g *Graph, f func(u, v int32) float64) *Graph {
	ng := &Graph{
		offsets: g.offsets,
		adj:     g.adj,
		weights: make([]float64, len(g.adj)),
		m:       g.m,
		loops:   g.loops,
		name:    g.name,
	}
	for v := int32(0); v < int32(g.N()); v++ {
		off := int(g.offsets[v])
		for i, u := range g.Neighbors(v) {
			a, b := v, u
			if a > b {
				a, b = b, a
			}
			w := f(a, b)
			if !(w > 0) || math.IsInf(w, 1) {
				panic(fmt.Sprintf("graph: Reweight produced non-positive or non-finite weight %v for edge (%d,%d)", w, a, b))
			}
			ng.weights[off+i] = w
		}
	}
	return ng
}

// Unweighted returns g with its weights dropped (the simple-graph view of a
// weighted graph); for unweighted graphs it returns g itself.
func (g *Graph) Unweighted() *Graph {
	if g.weights == nil {
		return g
	}
	ng := *g
	ng.weights = nil
	return &ng
}

// HasEdge reports whether {u,v} is an edge (or a self-loop when u == v).
func (g *Graph) HasEdge(u, v int32) bool {
	nb := g.Neighbors(u)
	i := sort.Search(len(nb), func(i int) bool { return nb[i] >= v })
	return i < len(nb) && nb[i] == v
}

// DegreeStats returns the minimum and maximum degree; both are 0 for the
// empty graph.
func (g *Graph) DegreeStats() (min, max int) {
	n := g.N()
	if n == 0 {
		return 0, 0
	}
	min, max = g.Degree(0), g.Degree(0)
	for v := int32(1); v < int32(n); v++ {
		d := g.Degree(v)
		if d < min {
			min = d
		}
		if d > max {
			max = d
		}
	}
	return min, max
}

// IsRegular reports whether every vertex has the same degree, and that degree.
func (g *Graph) IsRegular() (bool, int) {
	min, max := g.DegreeStats()
	return min == max, max
}

// TotalDegree returns the sum of all vertex degrees (2m for loop-free graphs,
// 2m - loops in general, because a self-loop contributes a single entry).
func (g *Graph) TotalDegree() int { return len(g.adj) }

// Validate checks internal consistency: sorted adjacency, symmetric edges,
// in-range endpoints, and edge-count bookkeeping. Generators call it in
// tests; it is O(m log d).
func (g *Graph) Validate() error {
	n := int32(g.N())
	if len(g.offsets) == 0 || g.offsets[0] != 0 {
		return fmt.Errorf("graph: bad offsets header")
	}
	if int(g.offsets[n]) != len(g.adj) {
		return fmt.Errorf("graph: offsets end %d != len(adj) %d", g.offsets[n], len(g.adj))
	}
	loops := 0
	for v := int32(0); v < n; v++ {
		if g.offsets[v] > g.offsets[v+1] {
			return fmt.Errorf("graph: offsets not monotone at %d", v)
		}
		nb := g.Neighbors(v)
		for i, u := range nb {
			if u < 0 || u >= n {
				return fmt.Errorf("graph: neighbor %d of %d out of range", u, v)
			}
			if i > 0 && nb[i-1] >= u {
				return fmt.Errorf("graph: adjacency of %d not strictly sorted", v)
			}
			if u == v {
				loops++
			} else if !g.HasEdge(u, v) {
				return fmt.Errorf("graph: edge (%d,%d) not symmetric", v, u)
			}
		}
	}
	if loops != g.loops {
		return fmt.Errorf("graph: loop count %d != recorded %d", loops, g.loops)
	}
	wantAdj := 2*(g.m-g.loops) + g.loops
	if len(g.adj) != wantAdj {
		return fmt.Errorf("graph: adj length %d != expected %d for m=%d loops=%d",
			len(g.adj), wantAdj, g.m, g.loops)
	}
	if g.weights != nil {
		if len(g.weights) != len(g.adj) {
			return fmt.Errorf("graph: weights length %d != adj length %d", len(g.weights), len(g.adj))
		}
		for v := int32(0); v < n; v++ {
			nb := g.Neighbors(v)
			for i, u := range nb {
				w := g.EdgeWeight(v, i)
				if !(w > 0) || math.IsInf(w, 1) || math.IsNaN(w) {
					return fmt.Errorf("graph: edge (%d,%d) has invalid weight %v", v, u, w)
				}
				if u == v {
					continue
				}
				if back := g.edgeWeightTo(u, v); back != w {
					return fmt.Errorf("graph: asymmetric weight on {%d,%d}: %v vs %v", v, u, w, back)
				}
			}
		}
	}
	return nil
}

// edgeWeightTo returns the weight stored in u's row for neighbor v, or NaN
// when {u,v} is not an edge.
func (g *Graph) edgeWeightTo(u, v int32) float64 {
	nb := g.Neighbors(u)
	i := sort.Search(len(nb), func(i int) bool { return nb[i] >= v })
	if i >= len(nb) || nb[i] != v {
		return math.NaN()
	}
	return g.EdgeWeight(u, i)
}

// Builder accumulates undirected edges and produces a Graph. Duplicate edges
// are coalesced (weights of duplicates sum); AddEdge(u,u) records a
// self-loop. The zero Builder is not usable; call NewBuilder with the vertex
// count.
type Builder struct {
	n     int
	edges [][2]int32
	// wts stays nil until the first AddWeightedEdge, at which point it is
	// backfilled with 1s for the edges already recorded; plain AddEdge on a
	// purely unweighted builder therefore pays nothing for the weight lane.
	wts      []float64
	weighted bool
}

// NewBuilder returns a builder for a graph on n vertices.
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	if n > MaxVertices {
		panic(fmt.Sprintf("graph: vertex count %d exceeds the int32 CSR limit %d", n, MaxVertices))
	}
	return &Builder{n: n}
}

// AddEdge records the undirected edge {u,v} with weight 1. Endpoints must be
// in [0,n).
func (b *Builder) AddEdge(u, v int32) { b.addEdge(u, v, 1) }

// AddWeightedEdge records the undirected edge {u,v} with the given weight,
// which must be strictly positive and finite. Mixing AddEdge and
// AddWeightedEdge is allowed; plain edges carry weight 1. The built graph is
// weighted as soon as one weighted edge was added.
func (b *Builder) AddWeightedEdge(u, v int32, w float64) {
	if !(w > 0) || math.IsInf(w, 1) {
		panic(fmt.Sprintf("graph: edge (%d,%d) weight %v must be positive and finite", u, v, w))
	}
	if !b.weighted {
		b.weighted = true
		b.wts = make([]float64, len(b.edges), max(cap(b.edges), len(b.edges)+1))
		for i := range b.wts {
			b.wts[i] = 1
		}
	}
	b.addEdge(u, v, w)
}

func (b *Builder) addEdge(u, v int32, w float64) {
	if u < 0 || v < 0 || int(u) >= b.n || int(v) >= b.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", u, v, b.n))
	}
	if u > v {
		u, v = v, u
	}
	b.edges = append(b.edges, [2]int32{u, v})
	if b.weighted {
		b.wts = append(b.wts, w)
	}
}

// EdgeCount returns the number of recorded (possibly duplicate) edges.
func (b *Builder) EdgeCount() int { return len(b.edges) }

// Build produces the immutable Graph, deduplicating edges. Duplicate edges'
// weights are summed, so a multigraph's parallel edges collapse into one
// heavier edge.
func (b *Builder) Build(name string) *Graph {
	var uniq [][2]int32
	var uw []float64 // parallel to uniq; built only for weighted graphs
	if b.weighted {
		// Weighted edges sort through an index permutation so the weight
		// lane follows, then dedup by summing.
		order := make([]int, len(b.edges))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(i, j int) bool {
			ei, ej := b.edges[order[i]], b.edges[order[j]]
			if ei[0] != ej[0] {
				return ei[0] < ej[0]
			}
			return ei[1] < ej[1]
		})
		last := [2]int32{-1, -1}
		for _, i := range order {
			e := b.edges[i]
			if e == last {
				uw[len(uw)-1] += b.wts[i]
				continue
			}
			uniq = append(uniq, e)
			uw = append(uw, b.wts[i])
			last = e
		}
	} else {
		sort.Slice(b.edges, func(i, j int) bool {
			if b.edges[i][0] != b.edges[j][0] {
				return b.edges[i][0] < b.edges[j][0]
			}
			return b.edges[i][1] < b.edges[j][1]
		})
		uniq = b.edges[:0]
		last := [2]int32{-1, -1}
		for _, e := range b.edges {
			if e != last {
				uniq = append(uniq, e)
				last = e
			}
		}
	}
	deg := make([]int32, b.n)
	loops := 0
	for _, e := range uniq {
		if e[0] == e[1] {
			deg[e[0]]++
			loops++
		} else {
			deg[e[0]]++
			deg[e[1]]++
		}
	}
	g := &Graph{
		offsets: make([]int32, b.n+1),
		m:       len(uniq),
		loops:   loops,
		name:    name,
	}
	total := int64(0)
	for v := 0; v < b.n; v++ {
		total += int64(deg[v])
		if total > math.MaxInt32 {
			panic(fmt.Sprintf("graph: adjacency length %d exceeds the int32 CSR limit %d", total, math.MaxInt32))
		}
		g.offsets[v+1] = int32(total)
	}
	g.adj = make([]int32, g.offsets[b.n])
	var wts []float64
	if b.weighted {
		wts = make([]float64, len(g.adj))
	}
	cursor := make([]int32, b.n)
	copy(cursor, g.offsets[:b.n])
	place := func(v int32, u int32, w float64) {
		g.adj[cursor[v]] = u
		if wts != nil {
			wts[cursor[v]] = w
		}
		cursor[v]++
	}
	for i, e := range uniq {
		w := 1.0
		if b.weighted {
			w = uw[i]
		}
		place(e[0], e[1], w)
		if e[0] != e[1] {
			place(e[1], e[0], w)
		}
	}
	// uniq is globally sorted by (lo, hi), so each row's first-endpoint
	// entries arrive sorted; second-endpoint entries also arrive sorted but
	// interleave with them, so sort each row (carrying weights along).
	for v := int32(0); v < int32(b.n); v++ {
		lo, hi := g.offsets[v], g.offsets[v+1]
		nb := g.adj[lo:hi]
		if wts == nil {
			sort.Slice(nb, func(i, j int) bool { return nb[i] < nb[j] })
			continue
		}
		row := wts[lo:hi]
		sort.Sort(&adjRowSorter{nb: nb, w: row})
	}
	g.weights = wts
	return g
}

// adjRowSorter sorts one adjacency row and its weight row in lockstep.
type adjRowSorter struct {
	nb []int32
	w  []float64
}

func (s *adjRowSorter) Len() int           { return len(s.nb) }
func (s *adjRowSorter) Less(i, j int) bool { return s.nb[i] < s.nb[j] }
func (s *adjRowSorter) Swap(i, j int) {
	s.nb[i], s.nb[j] = s.nb[j], s.nb[i]
	s.w[i], s.w[j] = s.w[j], s.w[i]
}

// fromAdjacency builds a Graph directly from per-vertex adjacency lists that
// are already symmetric. It is the fast path used by deterministic
// generators, avoiding Builder's sort of the global edge list.
func fromAdjacency(lists [][]int32, name string) *Graph {
	n := len(lists)
	g := &Graph{offsets: make([]int32, n+1), name: name}
	total := 0
	for v, nb := range lists {
		sort.Slice(nb, func(i, j int) bool { return nb[i] < nb[j] })
		total += len(nb)
		g.offsets[v+1] = g.offsets[v] + int32(len(nb))
	}
	g.adj = make([]int32, 0, total)
	for v, nb := range lists {
		for _, u := range nb {
			g.adj = append(g.adj, u)
			if u == int32(v) {
				g.loops++
			}
		}
	}
	g.m = (len(g.adj)-g.loops)/2 + g.loops
	return g
}
