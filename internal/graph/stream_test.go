package graph

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"manywalks/internal/rng"
)

// TestStreamingMatchesBuilder pins the central ingest invariant: for every
// input ReadEdgeList accepts, ReadEdgeListStreaming produces a bit-identical
// graph through the counting-sort assembler.
func TestStreamingMatchesBuilder(t *testing.T) {
	barbell, _ := Barbell(9)
	regular, err := RandomRegular(100, 4, rng.New(777), 100)
	if err != nil {
		t.Fatal(err)
	}
	graphs := []*Graph{
		Cycle(17),
		Path(9),
		Complete(12, false),
		Torus2D(8),
		Hypercube(6),
		MargulisExpander(7),
		BalancedTree(3, 4),
		barbell,
		Lollipop(6, 9),
		ErdosRenyi(200, 0.05, rng.New(12345)),
		regular,
		weightedTestGraph(t),
		Reweight(Torus2D(5), func(u, v int32) float64 { return float64(u+v) + 0.5 }),
	}
	for _, g := range graphs {
		var buf bytes.Buffer
		if err := g.WriteEdgeList(&buf); err != nil {
			t.Fatal(err)
		}
		text := buf.Bytes()
		want, err := ReadEdgeList(bytes.NewReader(text))
		if err != nil {
			t.Fatal(err)
		}
		got, err := ReadEdgeListStreaming(bytes.NewReader(text))
		if err != nil {
			t.Fatalf("%s: %v", g.Name(), err)
		}
		sameGraph(t, got, want)
		if err := got.Validate(); err != nil {
			t.Fatalf("%s: %v", g.Name(), err)
		}
	}
}

// TestStreamingDuplicatesAndLoops feeds the streaming reader raw text with
// duplicate edges (both orientations), a repeated self-loop, and mixed
// weighted/unweighted lines, and checks coalescing matches the Builder path.
func TestStreamingDuplicatesAndLoops(t *testing.T) {
	const body = `5 7
0 1 1.5
1 0 2.5
2 2 0.75
2 2 0.25
3 4
4 3 2
0 2
`
	want, err := ReadEdgeList(strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadEdgeListStreaming(strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	sameGraph(t, got, want)
	if got.M() != 4 {
		t.Fatalf("M=%d, want 4 after coalescing", got.M())
	}
	if w := got.EdgeWeight(0, 0); w != 4 {
		t.Fatalf("coalesced weight of {0,1} = %v, want 4", w)
	}
	if w := got.EdgeWeight(2, got.Degree(2)-1); w != 1 {
		// {2,2} loop 0.75+0.25; {0,2} plain carries weight 1.
		t.Fatalf("weights after coalescing wrong: %v", w)
	}
}

// TestStreamingRejectsBadInput mirrors the ReadEdgeList error cases through
// the streaming reader: both share parseEdgeList, so rejection must match.
func TestStreamingRejectsBadInput(t *testing.T) {
	for _, body := range []string{
		"",                // missing header
		"2\n",             // short header
		"2 1\n",           // promised edge missing
		"2 1\n0 1\n0 1\n", // extra edge
		"2 1\n0 2\n",      // out of range
		"2 1\n0 1 0\n",    // zero weight
		"2 1\n0 1 NaN\n",  // NaN weight
		"-1 0\n",          // negative n
		"2 -1\n",          // negative m
	} {
		if _, err := ReadEdgeListStreaming(strings.NewReader(body)); err == nil {
			t.Fatalf("input %q should be rejected", body)
		}
	}
}

// TestHeaderLimits pins the 32-bit hardening satellites: synthetic headers
// declaring vertex or edge counts past the int32 CSR limits must fail with
// descriptive errors before any allocation or edge parsing happens.
func TestHeaderLimits(t *testing.T) {
	cases := []struct {
		body string
		want string
	}{
		{fmt.Sprintf("%d 0\n", int64(1)<<31), "exceeds the reader limit"},
		{fmt.Sprintf("%d 0\n", maxSerializedVertices+1), "exceeds the reader limit"},
		{fmt.Sprintf("4 %d\n", int64(1)<<31), "int32 adjacency limit"},
		{fmt.Sprintf("4 %d\n", maxSerializedEdges+1), "int32 adjacency limit"},
	}
	for _, c := range cases {
		for _, read := range []func(string) error{
			func(s string) error { _, err := ReadEdgeList(strings.NewReader(s)); return err },
			func(s string) error { _, err := ReadEdgeListStreaming(strings.NewReader(s)); return err },
		} {
			err := read(c.body)
			if err == nil {
				t.Fatalf("header %q should be rejected", c.body)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("header %q: error %q does not mention %q", c.body, err, c.want)
			}
		}
	}
}

// TestBinaryHeaderVertexLimit hand-crafts a binary header whose vertex-count
// word exceeds the reader limit and checks both binary readers reject it
// descriptively without trying to allocate the offsets array.
func TestBinaryHeaderVertexLimit(t *testing.T) {
	var buf bytes.Buffer
	le := binary.LittleEndian
	var word [4]byte
	for _, v := range []uint32{binaryMagic, binaryVersion, 0, 0, maxSerializedVertices + 1} {
		le.PutUint32(word[:], v)
		buf.Write(word[:])
	}
	raw := buf.Bytes()
	if _, err := ReadBinary(bytes.NewReader(raw)); err == nil || !strings.Contains(err.Error(), "exceeds the reader limit") {
		t.Fatalf("ReadBinary error = %v, want reader-limit rejection", err)
	}
	path := filepath.Join(t.TempDir(), "huge.mwal")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenBinary(path); err == nil || !strings.Contains(err.Error(), "exceeds the reader limit") {
		t.Fatalf("OpenBinary error = %v, want reader-limit rejection", err)
	}
}

// TestNewBuilderVertexLimit checks the Builder-side guard.
func TestNewBuilderVertexLimit(t *testing.T) {
	if int64(int(^uint(0)>>1)) <= int64(MaxVertices) {
		t.Skip("32-bit int platform cannot express n > MaxVertices")
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("NewBuilder should panic past MaxVertices")
		}
		if !strings.Contains(fmt.Sprint(r), "int32 CSR limit") {
			t.Fatalf("panic %v does not mention the int32 CSR limit", r)
		}
	}()
	NewBuilder(int(int64(MaxVertices) + 1))
}

// TestCSRIngestVertexLimit checks the assembler-side guards directly:
// negative and past-MaxVertices counts are rejected with descriptive errors
// before any allocation, and out-of-range endpoints error on add.
func TestCSRIngestVertexLimit(t *testing.T) {
	if _, err := newCSRIngest(-1); err == nil {
		t.Fatal("negative n should be rejected")
	}
	if int64(int(^uint(0)>>1)) > int64(MaxVertices) {
		_, err := newCSRIngest(int(int64(MaxVertices) + 1))
		if err == nil || !strings.Contains(err.Error(), "int32 CSR limit") {
			t.Fatalf("error %v should mention the int32 CSR limit", err)
		}
	}
	in, err := newCSRIngest(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.add(0, 3, 1, false); err == nil {
		t.Fatal("out-of-range endpoint should be rejected")
	}
}

// writeBinaryV2 encodes g in the retired version-2 layout (no alignment
// padding) so the compat path of ReadBinary stays covered after the writer
// moved to v3.
func writeBinaryV2(t *testing.T, g *Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	le := binary.LittleEndian
	flags := uint32(0)
	if g.Weighted() {
		flags |= binaryFlagWeighted
	}
	var word [4]byte
	for _, v := range []uint32{binaryMagic, binaryVersionV2, flags, uint32(len(g.Name()))} {
		le.PutUint32(word[:], v)
		buf.Write(word[:])
	}
	buf.WriteString(g.Name())
	le.PutUint32(word[:], uint32(g.N()))
	buf.Write(word[:])
	if err := writeInt32sLE(&buf, g.offsets); err != nil {
		t.Fatal(err)
	}
	if err := writeInt32sLE(&buf, g.adj); err != nil {
		t.Fatal(err)
	}
	if g.Weighted() {
		if err := writeFloat64sLE(&buf, g.weights); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// TestReadBinaryV2Compat checks the reader still parses the padless v2
// layout, including via OpenBinary's fallback (v2 is never mappable).
func TestReadBinaryV2Compat(t *testing.T) {
	for _, g := range []*Graph{MargulisExpander(4), weightedTestGraph(t), Cycle(5)} {
		raw := writeBinaryV2(t, g)
		got, err := ReadBinary(bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("%s: %v", g.Name(), err)
		}
		sameGraph(t, got, g)
		path := filepath.Join(t.TempDir(), "v2.mwal")
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		opened, err := OpenBinary(path)
		if err != nil {
			t.Fatalf("%s: %v", g.Name(), err)
		}
		if opened.Mapped() {
			t.Fatalf("%s: v2 payload must not be mapped", g.Name())
		}
		sameGraph(t, opened, g)
	}
}

// TestOpenBinaryMapped round-trips graphs through a v3 file and OpenBinary,
// checking the mapped fast path engages on linux, the mapped view equals the
// heap read, and Release tears the mapping down.
func TestOpenBinaryMapped(t *testing.T) {
	for _, g := range []*Graph{
		MargulisExpander(6),
		weightedTestGraph(t),
		Cycle(3),
		NewBuilder(4).Build("empty(4)"), // edgeless: zero-length adjacency
	} {
		var buf bytes.Buffer
		if err := g.WriteBinary(&buf); err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(t.TempDir(), "g.mwal")
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		got, err := OpenBinary(path)
		if err != nil {
			t.Fatalf("%s: %v", g.Name(), err)
		}
		if runtime.GOOS == "linux" && !got.Mapped() {
			t.Fatalf("%s: expected the mmap fast path on linux", g.Name())
		}
		sameGraph(t, got, g)
		if err := got.Validate(); err != nil {
			t.Fatalf("%s: %v", g.Name(), err)
		}
		if err := got.Release(); err != nil {
			t.Fatalf("%s: Release: %v", g.Name(), err)
		}
		if got.Mapped() {
			t.Fatalf("%s: still mapped after Release", g.Name())
		}
		if err := got.Release(); err != nil {
			t.Fatalf("%s: second Release must be a no-op, got %v", g.Name(), err)
		}
	}
}

// TestOpenSniffsFormat checks Open routes binary payloads to the binary
// reader and everything else to the streaming text reader.
func TestOpenSniffsFormat(t *testing.T) {
	g := Torus2D(6)
	dir := t.TempDir()

	binPath := filepath.Join(dir, "g.bin")
	var bin bytes.Buffer
	if err := g.WriteBinary(&bin); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(binPath, bin.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	fromBin, err := Open(binPath)
	if err != nil {
		t.Fatal(err)
	}
	defer fromBin.Release()
	sameGraph(t, fromBin, g)

	txtPath := filepath.Join(dir, "g.txt")
	var txt bytes.Buffer
	if err := g.WriteEdgeList(&txt); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(txtPath, txt.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	fromTxt, err := Open(txtPath)
	if err != nil {
		t.Fatal(err)
	}
	if fromTxt.Mapped() {
		t.Fatal("text ingest must not be mapped")
	}
	sameGraph(t, fromTxt, g)

	if _, err := Open(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("missing file should error")
	}
}

// TestOpenBinaryTruncated checks a truncated v3 payload fails cleanly on
// both the mapped and heap paths rather than slicing past the mapping.
func TestOpenBinaryTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := MargulisExpander(5).WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for _, cut := range []int{len(raw) - 1, len(raw) / 2, 24} {
		path := filepath.Join(t.TempDir(), "trunc.mwal")
		if err := os.WriteFile(path, raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenBinary(path); err == nil {
			t.Fatalf("truncation at %d should error", cut)
		}
	}
}

// TestSerializedLimitsConsistent pins the relationship between the header
// bounds and the CSR bounds: every accepted header (m <= maxSerializedEdges,
// each edge contributing at most two adjacency entries) must fit the int32
// adjacency, so the build-time overflow panics are pure defense in depth and
// a synthetic header is rejected before any per-edge work.
func TestSerializedLimitsConsistent(t *testing.T) {
	if worst := int64(2) * int64(maxSerializedEdges); worst > math.MaxInt32 {
		t.Fatalf("worst-case accepted adjacency %d exceeds MaxInt32; header bound too loose", worst)
	}
	if int64(maxSerializedVertices) > int64(MaxVertices) {
		t.Fatal("reader vertex limit must not exceed the CSR vertex limit")
	}
}
