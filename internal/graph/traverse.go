package graph

// BFS returns the vector of hop distances from src, with -1 for vertices
// unreachable from src. It allocates one int32 slice of length n and reuses
// a queue internally.
func (g *Graph) BFS(src int32) []int32 {
	n := g.N()
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := make([]int32, 1, n)
	queue[0] = src
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		dv := dist[v]
		for _, u := range g.Neighbors(v) {
			if dist[u] < 0 {
				dist[u] = dv + 1
				queue = append(queue, u)
			}
		}
	}
	return dist
}

// IsConnected reports whether the graph is connected (true for n <= 1).
func (g *Graph) IsConnected() bool {
	n := g.N()
	if n <= 1 {
		return true
	}
	dist := g.BFS(0)
	for _, d := range dist {
		if d < 0 {
			return false
		}
	}
	return true
}

// Components returns the number of connected components and a component id
// per vertex.
func (g *Graph) Components() (count int, id []int32) {
	n := g.N()
	id = make([]int32, n)
	for i := range id {
		id[i] = -1
	}
	var queue []int32
	for s := int32(0); s < int32(n); s++ {
		if id[s] >= 0 {
			continue
		}
		cid := int32(count)
		count++
		id[s] = cid
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			v := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, u := range g.Neighbors(v) {
				if id[u] < 0 {
					id[u] = cid
					queue = append(queue, u)
				}
			}
		}
	}
	return count, id
}

// Eccentricity returns the maximum BFS distance from src; it is -1 if any
// vertex is unreachable.
func (g *Graph) Eccentricity(src int32) int {
	dist := g.BFS(src)
	ecc := 0
	for _, d := range dist {
		if d < 0 {
			return -1
		}
		if int(d) > ecc {
			ecc = int(d)
		}
	}
	return ecc
}

// Diameter returns the exact diameter by running a BFS from every vertex.
// It is O(n·m) and intended for the moderate sizes used in experiments;
// it returns -1 for disconnected graphs.
func (g *Graph) Diameter() int {
	n := g.N()
	if n == 0 {
		return 0
	}
	diam := 0
	for v := int32(0); v < int32(n); v++ {
		e := g.Eccentricity(v)
		if e < 0 {
			return -1
		}
		if e > diam {
			diam = e
		}
	}
	return diam
}

// IsBipartite reports whether the graph is bipartite. Self-loops make a
// graph non-bipartite. Bipartite graphs yield periodic simple random walks,
// which is why the mixing-time computations offer a lazy variant.
func (g *Graph) IsBipartite() bool {
	n := g.N()
	color := make([]int8, n) // 0 unknown, 1/2 sides
	var queue []int32
	for s := int32(0); s < int32(n); s++ {
		if color[s] != 0 {
			continue
		}
		color[s] = 1
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			v := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, u := range g.Neighbors(v) {
				if u == v {
					return false
				}
				if color[u] == 0 {
					color[u] = 3 - color[v]
					queue = append(queue, u)
				} else if color[u] == color[v] {
					return false
				}
			}
		}
	}
	return true
}

// DegreeHistogram returns a map from degree to the number of vertices with
// that degree.
func (g *Graph) DegreeHistogram() map[int]int {
	h := make(map[int]int)
	for v := int32(0); v < int32(g.N()); v++ {
		h[g.Degree(v)]++
	}
	return h
}
