package core

import (
	"math"
	"testing"

	"manywalks/internal/exact"
	"manywalks/internal/graph"
	"manywalks/internal/rng"
	"manywalks/internal/walk"
)

func mcOpts(trials int, seed uint64) walk.MCOptions {
	return walk.MCOptions{Trials: trials, Seed: seed, MaxSteps: 1 << 22}
}

func TestMeasureSpeedupCompleteGraphIsLinear(t *testing.T) {
	// Lemma 12: on the clique the speed-up is k (coupon collector).
	g := graph.Complete(64, false)
	p, err := MeasureSpeedup(g, 0, 8, mcOpts(600, 1))
	if err != nil {
		t.Fatal(err)
	}
	if p.Truncated > 0 {
		t.Fatalf("truncated trials: %d", p.Truncated)
	}
	if p.Speedup < 5.5 || p.Speedup > 11 {
		t.Fatalf("K64 S^8 = %v, want ≈8", p.Speedup)
	}
	if p.SpeedupLo > p.Speedup || p.Speedup > p.SpeedupHi {
		t.Fatalf("band ordering broken: %v %v %v", p.SpeedupLo, p.Speedup, p.SpeedupHi)
	}
	if math.Abs(p.PerWalker-p.Speedup/8) > 1e-12 {
		t.Fatal("PerWalker inconsistent")
	}
}

func TestSpeedupCurveSharesSingleEstimate(t *testing.T) {
	g := graph.Cycle(32)
	points, err := SpeedupCurve(g, 0, []int{2, 4, 8}, mcOpts(200, 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points %d", len(points))
	}
	for _, p := range points[1:] {
		if p.Single.Mean() != points[0].Single.Mean() {
			t.Fatal("single-walk estimate not shared across the sweep")
		}
	}
	// Speed-up must increase with k (more walkers never slow covering).
	if !(points[0].Speedup < points[2].Speedup) {
		t.Fatalf("speed-up not increasing: %v vs %v", points[0].Speedup, points[2].Speedup)
	}
}

func TestSpeedupCurveValidation(t *testing.T) {
	g := graph.Cycle(16)
	if _, err := SpeedupCurve(g, 0, nil, mcOpts(10, 3)); err == nil {
		t.Fatal("empty ks accepted")
	}
	if _, err := SpeedupCurve(g, 0, []int{0}, mcOpts(10, 3)); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestClassifyCycleLogarithmic(t *testing.T) {
	// Theorem 6 shape test at modest size: S^k on the cycle grows like ln k.
	g := graph.Cycle(128)
	points, err := SpeedupCurve(g, 0, []int{2, 4, 8, 16, 32, 64}, mcOpts(300, 5))
	if err != nil {
		t.Fatal(err)
	}
	c, err := ClassifySpeedups(points)
	if err != nil {
		t.Fatal(err)
	}
	if c.Regime != RegimeLogarithmic {
		t.Fatalf("cycle classified %v (slope %.3f, logR2 %.3f)", c.Regime, c.PowerSlope, c.LogFit.R2)
	}
	ok, fit, err := CycleSpeedupIsLogarithmic(points)
	if err != nil || !ok {
		t.Fatalf("CycleSpeedupIsLogarithmic = %v (fit %+v, err %v)", ok, fit, err)
	}
	if fit.Slope <= 0 {
		t.Fatalf("log-fit slope %v not positive", fit.Slope)
	}
}

func TestClassifyCompleteLinear(t *testing.T) {
	g := graph.Complete(128, false)
	points, err := SpeedupCurve(g, 0, []int{2, 4, 8, 16, 32}, mcOpts(300, 7))
	if err != nil {
		t.Fatal(err)
	}
	c, err := ClassifySpeedups(points)
	if err != nil {
		t.Fatal(err)
	}
	if c.Regime != RegimeLinear {
		t.Fatalf("complete classified %v (slope %.3f)", c.Regime, c.PowerSlope)
	}
	if c.PowerSlope < 0.85 || c.PowerSlope > 1.15 {
		t.Fatalf("complete power slope %.3f far from 1", c.PowerSlope)
	}
}

func TestClassifyExpanderLinear(t *testing.T) {
	g := graph.MargulisExpander(10) // n = 100
	points, err := SpeedupCurve(g, 0, []int{2, 4, 8, 16}, mcOpts(300, 9))
	if err != nil {
		t.Fatal(err)
	}
	c, err := ClassifySpeedups(points)
	if err != nil {
		t.Fatal(err)
	}
	if c.Regime != RegimeLinear {
		t.Fatalf("expander classified %v (slope %.3f)", c.Regime, c.PowerSlope)
	}
}

func TestClassifyBarbellSuperlinear(t *testing.T) {
	// Theorem 7: from the center, a handful of walkers collapses the Θ(n²)
	// cover time, a speed-up far beyond k.
	g, center := graph.Barbell(41)
	points, err := SpeedupCurve(g, center, []int{2, 4, 8}, mcOpts(300, 11))
	if err != nil {
		t.Fatal(err)
	}
	c, err := ClassifySpeedups(points)
	if err != nil {
		t.Fatal(err)
	}
	if c.Regime != RegimeSuperlinear {
		t.Fatalf("barbell classified %v (slope %.3f)", c.Regime, c.PowerSlope)
	}
}

func TestClassifyValidation(t *testing.T) {
	if _, err := ClassifySpeedups(nil); err == nil {
		t.Fatal("empty classification accepted")
	}
	bad := []SpeedupPoint{{K: 1, Speedup: 1}, {K: 2, Speedup: -1}, {K: 3, Speedup: 2}}
	if _, err := ClassifySpeedups(bad); err == nil {
		t.Fatal("negative speed-up accepted")
	}
}

func TestRegimeString(t *testing.T) {
	if RegimeLinear.String() != "linear" ||
		RegimeLogarithmic.String() != "logarithmic" ||
		RegimeSuperlinear.String() != "superlinear" ||
		RegimeUnknown.String() != "unknown" {
		t.Fatal("regime names")
	}
}

func TestComputeBoundsCycle(t *testing.T) {
	n := 32
	b, err := ComputeBounds(graph.Cycle(n), 50000, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	// hmax = (n/2)·(n/2) = 256, hmin = n-1 = 31.
	if math.Abs(b.Hmax-256) > 1e-6 || math.Abs(b.Hmin-31) > 1e-6 {
		t.Fatalf("cycle hmax/hmin = %v/%v", b.Hmax, b.Hmin)
	}
	if !b.LazyMixing {
		t.Fatal("even cycle requires lazy mixing")
	}
	if b.MixingTime <= 0 {
		t.Fatalf("mixing truncated: %d", b.MixingTime)
	}
	// Exact single-walk cover time of the cycle: n(n-1)/2 = 496; it must
	// respect the Matthews sandwich.
	c := float64(n*(n-1)) / 2
	if c < b.MatthewsLower-1e-9 || c > b.MatthewsUpper+1e-9 {
		t.Fatalf("C=%v outside [%v,%v]", c, b.MatthewsLower, b.MatthewsUpper)
	}
	// Lazy cycle λ = 1/2 + cos(2π/n)/2.
	want := 0.5 + math.Cos(2*math.Pi/float64(n))/2
	if math.Abs(b.Lambda-want) > 1e-3 {
		t.Fatalf("λ = %v, want %v", b.Lambda, want)
	}
	if b.GapOf(c) <= 1 {
		t.Fatalf("gap %v should exceed 1", b.GapOf(c))
	}
}

func TestComputeBoundsRejectsLarge(t *testing.T) {
	if _, err := ComputeBounds(graph.Cycle(MaxExactBoundsVertices+2), 0, rng.New(1)); err == nil {
		t.Fatal("oversized graph accepted")
	}
}

func TestBabyMatthewsDominatesMeasuredKCover(t *testing.T) {
	// Theorem 13 for k ≤ log n on a Matthews-tight family (torus).
	g := graph.Torus2D(5) // n=25, log n ≈ 3.2
	b, err := ComputeBounds(g, 0, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 2, 3} {
		est, err := walk.EstimateKCoverTime(g, 0, k, mcOpts(400, 13))
		if err != nil {
			t.Fatal(err)
		}
		bound := b.BabyMatthewsBound(k)
		if est.Mean()-est.CI95() > bound {
			t.Fatalf("k=%d: measured C^k %v exceeds Baby Matthews %v", k, est.Mean(), bound)
		}
	}
}

func TestTheorem14BoundDominates(t *testing.T) {
	g := graph.Complete(64, false)
	b, err := ComputeBounds(g, 0, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	cEst, err := walk.EstimateCoverTime(g, 0, mcOpts(500, 15))
	if err != nil {
		t.Fatal(err)
	}
	fn := math.Log(math.Log(float64(g.N()))) // any ω(1) choice
	for _, k := range []int{2, 4, 8} {
		ck, err := walk.EstimateKCoverTime(g, 0, k, mcOpts(500, 17))
		if err != nil {
			t.Fatal(err)
		}
		bound := b.Theorem14Bound(cEst.Mean(), k, fn)
		if ck.Mean()-ck.CI95() > bound {
			t.Fatalf("k=%d: C^k %v exceeds Theorem 14 bound %v", k, ck.Mean(), bound)
		}
	}
}

func TestTheorem9MixingLowerBound(t *testing.T) {
	// Expander: S^k must clear k/(t_m ln n) comfortably.
	g := graph.MargulisExpander(8) // n=64
	b, err := ComputeBounds(g, 5000, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if b.MixingTime <= 0 {
		t.Fatal("expander mixing truncated")
	}
	p, err := MeasureSpeedup(g, 0, 16, mcOpts(400, 19))
	if err != nil {
		t.Fatal(err)
	}
	bound := b.MixingSpeedupLowerBound(16)
	if bound <= 0 {
		t.Fatal("bound unavailable")
	}
	if p.Speedup < bound {
		t.Fatalf("S^16 = %v below Theorem 9 bound %v", p.Speedup, bound)
	}
}

func TestMixingBoundUnavailableWithoutTm(t *testing.T) {
	g := graph.Cycle(16)
	b, err := ComputeBounds(g, 0, rng.New(5)) // mixing skipped
	if err != nil {
		t.Fatal(err)
	}
	if b.MixingSpeedupLowerBound(4) != 0 {
		t.Fatal("bound should be 0 when t_m unknown")
	}
}

func TestTheorem5AdmissibleK(t *testing.T) {
	g := graph.Cycle(32)
	b, err := ComputeBounds(g, 0, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	c := float64(32*31) / 2 // gap = C/hmax = 496/256 ≈ 1.94
	k := b.Theorem5AdmissibleK(c, 0.5, 100)
	if k != 1 { // 1.94^0.5 ≈ 1.39 → floor 1
		t.Fatalf("admissible k = %d, want 1", k)
	}
	// A huge gap graph admits kMax.
	g2 := graph.Complete(100, false)
	b2, _ := ComputeBounds(g2, 0, rng.New(7))
	c2 := 99 * 5.2 // ≈ (n-1)·H_{n-1}
	if got := b2.Theorem5AdmissibleK(c2, 0.1, 3); got != 3 {
		t.Fatalf("kMax clamp failed: %d", got)
	}
}

func TestCycleUpperBoundLem22(t *testing.T) {
	if !math.IsInf(CycleUpperBoundLem22(10, 1), 1) {
		t.Fatal("k=1 must be unbounded")
	}
	// Measured C^k on the cycle must respect 2n²/ln k for k with ln k > 1.
	n := 64
	g := graph.Cycle(n)
	for _, k := range []int{4, 8, 16} {
		est, err := walk.EstimateKCoverTime(g, 0, k, mcOpts(300, 23))
		if err != nil {
			t.Fatal(err)
		}
		bound := CycleUpperBoundLem22(n, k)
		if est.Mean()-est.CI95() > bound {
			t.Fatalf("k=%d: C^k %v exceeds Lemma 22 bound %v", k, est.Mean(), bound)
		}
	}
}

func TestBoundsAgainstExactTinyGraph(t *testing.T) {
	// Everything ties together on a tiny graph with exact cover times:
	// Matthews sandwich around the exact C, Baby Matthews above exact C^k.
	g := graph.Complete(6, false)
	b, err := ComputeBounds(g, 1000, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	c, err := exact.CoverTime(g)
	if err != nil {
		t.Fatal(err)
	}
	if c < b.MatthewsLower-1e-9 || c > b.MatthewsUpper+1e-9 {
		t.Fatalf("exact C=%v outside Matthews [%v,%v]", c, b.MatthewsLower, b.MatthewsUpper)
	}
	for k := 1; k <= 2; k++ {
		ck, err := exact.KCoverTimeFrom(g, 0, k)
		if err != nil {
			t.Fatal(err)
		}
		if ck > b.BabyMatthewsBound(k) {
			t.Fatalf("exact C^%d=%v exceeds Baby Matthews %v", k, ck, b.BabyMatthewsBound(k))
		}
	}
}
