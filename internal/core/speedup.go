// Package core implements the paper's primary contribution: measurement and
// analysis of the k-walk cover-time speed-up S^k(G) = C(G)/C^k(G). It ties
// the Monte Carlo estimators to the exact hitting-time machinery, evaluates
// every theoretical bound the paper states (Matthews, Baby Matthews /
// Theorem 13, Theorem 14, the Theorem 9 mixing bound, and the cycle bounds
// of Lemmas 21–22), and classifies measured speed-up curves into the
// regimes of Table 1 (linear, logarithmic, exponential, sub-linear).
package core

import (
	"fmt"
	"math"

	"manywalks/internal/graph"
	"manywalks/internal/stats"
	"manywalks/internal/walk"
)

// SpeedupPoint is one (k, S^k) measurement with full provenance.
type SpeedupPoint struct {
	K         int
	Single    walk.Estimate // Ĉ(G) from the chosen start
	Multi     walk.Estimate // Ĉ^k(G) from the chosen start
	Speedup   float64       // Single.Mean / Multi.Mean
	SpeedupLo float64       // conservative 95% band via CI endpoints
	SpeedupHi float64
	PerWalker float64 // Speedup / k: 1.0 means perfectly linear
	Truncated int     // trials (either estimate) that hit the budget
}

// ratioBand propagates the two 95% CIs through the quotient conservatively:
// the band endpoints pair the extremes of numerator and denominator.
func ratioBand(num, den walk.Estimate) (lo, mid, hi float64) {
	nm, nc := num.Mean(), num.CI95()
	dm, dc := den.Mean(), den.CI95()
	mid = nm / dm
	lowerDen := dm + dc
	upperDen := dm - dc
	if upperDen <= 0 {
		// Degenerate CI wider than the mean: report an unbounded band.
		return (nm - nc) / lowerDen, mid, math.Inf(1)
	}
	return (nm - nc) / lowerDen, mid, (nm + nc) / upperDen
}

// MeasureSpeedup estimates S^k(G) from the given start vertex. The same
// options (trials, step budget, seed) are used for the single- and k-walk
// estimates; the k-walk uses a distinct derived seed so the two estimates
// are independent.
func MeasureSpeedup(g *graph.Graph, start int32, k int, opts walk.MCOptions) (SpeedupPoint, error) {
	return MeasureKernelSpeedup(g, walk.Uniform(), start, k, opts)
}

// MeasureKernelSpeedup is MeasureSpeedup under an arbitrary walk kernel:
// both C and C^k run the same step law, so S^k isolates the effect of
// parallelism from the effect of the kernel.
func MeasureKernelSpeedup(g *graph.Graph, kern walk.Kernel, start int32, k int, opts walk.MCOptions) (SpeedupPoint, error) {
	single, err := walk.EstimateKernelCoverTime(g, kern, start, opts)
	if err != nil {
		return SpeedupPoint{}, err
	}
	return speedupAgainst(g, kern, start, k, single, opts)
}

// speedupAgainst measures C^k and forms the ratio against a pre-computed
// single-walk estimate (shared across a k-sweep).
func speedupAgainst(g *graph.Graph, kern walk.Kernel, start int32, k int, single walk.Estimate, opts walk.MCOptions) (SpeedupPoint, error) {
	kOpts := opts
	kOpts.Seed = opts.Seed ^ 0x9e3779b97f4a7c15 ^ uint64(k)<<32
	multi, err := walk.EstimateKernelKCoverTime(g, kern, start, k, kOpts)
	if err != nil {
		return SpeedupPoint{}, err
	}
	lo, mid, hi := ratioBand(single, multi)
	return SpeedupPoint{
		K:         k,
		Single:    single,
		Multi:     multi,
		Speedup:   mid,
		SpeedupLo: lo,
		SpeedupHi: hi,
		PerWalker: mid / float64(k),
		Truncated: single.Truncated + multi.Truncated,
	}, nil
}

// SpeedupCurve measures S^k for each k in ks, re-using one single-walk
// estimate. ks must be positive; duplicates are allowed (they re-measure).
func SpeedupCurve(g *graph.Graph, start int32, ks []int, opts walk.MCOptions) ([]SpeedupPoint, error) {
	return KernelSpeedupCurve(g, walk.Uniform(), start, ks, opts)
}

// KernelSpeedupCurve is SpeedupCurve under an arbitrary walk kernel.
func KernelSpeedupCurve(g *graph.Graph, kern walk.Kernel, start int32, ks []int, opts walk.MCOptions) ([]SpeedupPoint, error) {
	if len(ks) == 0 {
		return nil, fmt.Errorf("core: empty k list")
	}
	for _, k := range ks {
		if k < 1 {
			return nil, fmt.Errorf("core: invalid k=%d", k)
		}
	}
	single, err := walk.EstimateKernelCoverTime(g, kern, start, opts)
	if err != nil {
		return nil, err
	}
	points := make([]SpeedupPoint, 0, len(ks))
	for _, k := range ks {
		p, err := speedupAgainst(g, kern, start, k, single, opts)
		if err != nil {
			return nil, err
		}
		points = append(points, p)
	}
	return points, nil
}

// Regime labels the asymptotic shape of a measured speed-up curve.
type Regime int

const (
	// RegimeUnknown is returned for curves that fit no template well.
	RegimeUnknown Regime = iota
	// RegimeLinear: S^k ≈ a·k (Table 1: complete graph, expanders, grids,
	// hypercube, ER graphs for small k).
	RegimeLinear
	// RegimeLogarithmic: S^k ≈ a·ln k + b (Table 1: cycle).
	RegimeLogarithmic
	// RegimeSuperlinear: S^k grows faster than k (barbell from the center).
	RegimeSuperlinear
)

// String names the regime.
func (r Regime) String() string {
	switch r {
	case RegimeLinear:
		return "linear"
	case RegimeLogarithmic:
		return "logarithmic"
	case RegimeSuperlinear:
		return "superlinear"
	default:
		return "unknown"
	}
}

// Classification reports the regime decision with the evidence used.
type Classification struct {
	Regime      Regime
	PowerSlope  float64 // exponent p of the S^k ≈ c·k^p fit
	PowerR2     float64
	LogFit      stats.LinearFit // S^k ≈ a·ln k + b
	LinearResid float64         // mean |S^k/k - median(S^k/k)| evidence
}

// ClassifySpeedups fits the measured curve against the paper's templates.
// The decision rule uses the log-log slope p of S^k vs k:
//
//	p ≥ superlinearThreshold        → superlinear
//	linearBand around 1             → linear
//	p small but curve still rising  → logarithmic (confirmed by log fit R²)
//
// At least three distinct k values are required.
func ClassifySpeedups(points []SpeedupPoint) (Classification, error) {
	if len(points) < 3 {
		return Classification{}, fmt.Errorf("core: need >= 3 points to classify, got %d", len(points))
	}
	ks := make([]float64, len(points))
	sp := make([]float64, len(points))
	for i, p := range points {
		if p.K <= 0 || p.Speedup <= 0 {
			return Classification{}, fmt.Errorf("core: non-positive point (k=%d, S=%v)", p.K, p.Speedup)
		}
		ks[i] = float64(p.K)
		sp[i] = p.Speedup
	}
	slope, _, r2 := stats.FitPowerLaw(ks, sp)
	logFit := stats.FitLogX(ks, sp)
	c := Classification{PowerSlope: slope, PowerR2: r2, LogFit: logFit}
	switch {
	case slope >= 1.35:
		c.Regime = RegimeSuperlinear
	case slope >= 0.65:
		c.Regime = RegimeLinear
	case slope >= 0.05 && logFit.Slope > 0:
		c.Regime = RegimeLogarithmic
	default:
		c.Regime = RegimeUnknown
	}
	return c, nil
}
