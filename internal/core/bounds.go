package core

import (
	"fmt"
	"math"

	"manywalks/internal/exact"
	"manywalks/internal/graph"
	"manywalks/internal/linalg"
	"manywalks/internal/rng"
	"manywalks/internal/spectral"
	"manywalks/internal/stats"
)

// Bounds aggregates the exact single-walk quantities the paper's theorems
// are stated in terms of, for one graph.
type Bounds struct {
	N, M          int
	Hmax, Hmin    float64 // extreme hitting times over ordered pairs
	MatthewsLower float64 // hmin·H_{n-1}
	MatthewsUpper float64 // hmax·H_n
	Aleliunas     float64 // universal bound 2m(n-1) (paper ref [5])
	Gap           float64 // g(n) = MatthewsUpper-normalized proxy; see GapOf
	MixingTime    int     // paper's t_m (lazy walk if bipartite), -1 if truncated
	LazyMixing    bool    // whether laziness was needed for t_m
	Lambda        float64 // second eigenvalue magnitude of the (lazy) walk
	SpectralGap   float64 // 1 - Lambda
}

// MaxExactBoundsVertices caps the O(n³) hitting-time computation.
const MaxExactBoundsVertices = 3000

// ComputeBounds evaluates the exact quantities for g. mixingBudget bounds
// the distribution-evolution steps for t_m (pass 0 to skip the mixing
// computation, which is the expensive part on slowly mixing graphs).
// For bipartite graphs the simple walk never mixes; the lazy (stay=1/2)
// walk is substituted and flagged.
func ComputeBounds(g *graph.Graph, mixingBudget int, r *rng.Source) (*Bounds, error) {
	n := g.N()
	if n > MaxExactBoundsVertices {
		return nil, fmt.Errorf("core: exact bounds limited to %d vertices, got %d", MaxExactBoundsVertices, n)
	}
	ht, err := exact.ComputeHittingTimes(g)
	if err != nil {
		return nil, err
	}
	hmax, _, _ := ht.Max()
	hmin, _, _ := ht.Min()
	lower, upper := exact.MatthewsBounds(ht)
	b := &Bounds{
		N: n, M: g.M(),
		Hmax: hmax, Hmin: hmin,
		MatthewsLower: lower, MatthewsUpper: upper,
		Aleliunas:  exact.AleliunasBound(g),
		MixingTime: -1,
	}
	stay := 0.0
	if g.IsBipartite() {
		stay = 0.5
		b.LazyMixing = true
	}
	op := linalg.NewWalkOperator(g, stay)
	b.Lambda = linalg.SecondEigenvalueMagnitude(op, 400*int(math.Log2(float64(n))+1), r)
	b.SpectralGap = 1 - b.Lambda
	if mixingBudget > 0 {
		res := spectral.MixingTime(op, spectral.AllStarts(n), spectral.DefaultEpsilon, mixingBudget)
		if !res.Truncated {
			b.MixingTime = res.Time
		}
	}
	return b, nil
}

// GapOf returns the paper's gap g(n) = C/hmax given a cover-time estimate;
// Theorem 5 needs it to choose admissible k.
func (b *Bounds) GapOf(coverTime float64) float64 { return coverTime / b.Hmax }

// BabyMatthewsBound is Theorem 13's k-walk cover bound (e/k)·hmax·H_n.
func (b *Bounds) BabyMatthewsBound(k int) float64 {
	if k < 1 {
		panic("core: k must be >= 1")
	}
	return math.E / float64(k) * b.Hmax * stats.HarmonicNumber(b.N)
}

// Theorem14Bound evaluates the paper's Theorem 14 upper bound
//
//	C^k ≤ (1+o(1))·C/k + (3·log k + 2·f(n))·hmax
//
// with the o(1) term dropped and f(n) supplied by the caller (the paper
// requires any f ∈ ω(1); Theorem 5 instantiates f = log g(n)).
func (b *Bounds) Theorem14Bound(coverTime float64, k int, fn float64) float64 {
	if k < 1 {
		panic("core: k must be >= 1")
	}
	return coverTime/float64(k) + (3*math.Log(float64(k))+2*fn)*b.Hmax
}

// Theorem5AdmissibleK returns the largest k ≤ kMax with k ≤ g(n)^{1-eps},
// the admissible range for the near-linear speed-up of Theorem 5.
func (b *Bounds) Theorem5AdmissibleK(coverTime float64, eps float64, kMax int) int {
	if eps <= 0 || eps >= 1 {
		panic("core: eps must be in (0,1)")
	}
	limit := math.Pow(b.GapOf(coverTime), 1-eps)
	k := int(limit)
	if k > kMax {
		k = kMax
	}
	if k < 1 {
		k = 1
	}
	return k
}

// MixingSpeedupLowerBound is Theorem 9's guarantee S^k = Ω(k/(t_m·ln n))
// with the constant taken as 1 — callers compare shapes, not constants.
// It returns 0 when the mixing time is unknown.
func (b *Bounds) MixingSpeedupLowerBound(k int) float64 {
	if b.MixingTime <= 0 {
		return 0
	}
	return float64(k) / (float64(b.MixingTime) * math.Log(float64(b.N)))
}

// CycleUpperBoundLem22 is Lemma 22's bound C^k ≤ 2n²/ln k for the cycle
// (k ≥ 2; for k below e it returns +Inf since ln k ≤ 1 voids the bound).
func CycleUpperBoundLem22(n, k int) float64 {
	if k < 2 {
		return math.Inf(1)
	}
	l := math.Log(float64(k))
	if l <= 0 {
		return math.Inf(1)
	}
	return 2 * float64(n) * float64(n) / l
}

// CycleSpeedupIsLogarithmic checks Theorem 6's two-sided claim on measured
// data: the speed-up on the cycle grows with log k — concretely the fit
// S^k ≈ a·ln k + b must have a decisively positive slope and explain the
// data far better than a linear-in-k fit explains it.
func CycleSpeedupIsLogarithmic(points []SpeedupPoint) (bool, stats.LinearFit, error) {
	c, err := ClassifySpeedups(points)
	if err != nil {
		return false, stats.LinearFit{}, err
	}
	return c.Regime == RegimeLogarithmic, c.LogFit, nil
}
