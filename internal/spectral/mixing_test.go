package spectral

import (
	"math"
	"testing"

	"manywalks/internal/graph"
	"manywalks/internal/linalg"
	"manywalks/internal/rng"
)

func TestMixingCompleteGraphIsOneStep(t *testing.T) {
	// On K_n (n >= 6) the distribution after one step is within 2/n < 1/e of
	// uniform from any start.
	op := linalg.NewWalkOperator(graph.Complete(10, false), 0)
	r := MixingTime(op, AllStarts(10), DefaultEpsilon, 100)
	if r.Truncated || r.Time != 1 {
		t.Fatalf("K10 mixing result %+v, want Time=1", r)
	}
}

func TestMixingCompleteWithLoops(t *testing.T) {
	// With self-loops the first step already lands exactly uniform.
	op := linalg.NewWalkOperator(graph.Complete(8, true), 0)
	r := MixingTime(op, AllStarts(8), DefaultEpsilon, 10)
	if r.Truncated || r.Time != 1 {
		t.Fatalf("K8+loops mixing %+v", r)
	}
}

func TestBipartiteSimpleWalkNeverMixes(t *testing.T) {
	op := linalg.NewWalkOperator(graph.Cycle(8), 0)
	r := MixingTimeFrom(op, 0, DefaultEpsilon, 2000)
	if !r.Truncated {
		t.Fatalf("even cycle mixed at t=%d under the periodic simple walk", r.Time)
	}
	// L1 distance from π stays exactly 1 by parity (half the mass support is
	// empty each step): distance must remain >= 1.
	if r.WorstD < 1-1e-9 {
		t.Fatalf("parity argument violated: distance %v", r.WorstD)
	}
}

func TestLazyWalkMixesOnEvenCycle(t *testing.T) {
	op := linalg.NewWalkOperator(graph.Cycle(8), 0.5)
	r := MixingTimeFrom(op, 0, DefaultEpsilon, 5000)
	if r.Truncated {
		t.Fatal("lazy walk failed to mix on cycle(8)")
	}
	if r.Time < 2 {
		t.Fatalf("cycle(8) lazy mixing suspiciously fast: %d", r.Time)
	}
}

func TestMixingScalesQuadraticallyOnCycle(t *testing.T) {
	// t_m for the (lazy) cycle should grow ~4x when n doubles.
	times := make(map[int]int)
	for _, n := range []int{16, 32} {
		op := linalg.NewWalkOperator(graph.Cycle(n), 0.5)
		r := MixingTimeFrom(op, 0, DefaultEpsilon, 100000)
		if r.Truncated {
			t.Fatalf("cycle(%d) truncated", n)
		}
		times[n] = r.Time
	}
	ratio := float64(times[32]) / float64(times[16])
	if ratio < 3.0 || ratio > 5.0 {
		t.Fatalf("cycle mixing ratio %v (times %v), want ≈4", ratio, times)
	}
}

func TestExpanderMixesLogarithmically(t *testing.T) {
	// The Margulis expander should mix in O(log n) steps; compare two sizes
	// and require far-sub-linear growth.
	tm := make(map[int]int)
	for _, m := range []int{8, 16} { // n = 64, 256
		op := linalg.NewWalkOperator(graph.MargulisExpander(m), 0)
		r := MixingTimeFrom(op, 0, DefaultEpsilon, 10000)
		if r.Truncated {
			t.Fatalf("margulis(%d) truncated", m)
		}
		tm[m] = r.Time
	}
	if tm[16] > 3*tm[8]+4 {
		t.Fatalf("expander mixing grows too fast: %v", tm)
	}
}

func TestMixingWorstStartDominates(t *testing.T) {
	// On the lollipop the tail vertex mixes far more slowly than a clique
	// vertex; MixingTime over all starts must match the slowest.
	g := graph.Lollipop(8, 6)
	op := linalg.NewWalkOperator(g, 0.5)
	all := MixingTime(op, AllStarts(g.N()), DefaultEpsilon, 200000)
	tail := MixingTimeFrom(op, int32(g.N()-1), DefaultEpsilon, 200000)
	clique := MixingTimeFrom(op, 1, DefaultEpsilon, 200000)
	if all.Truncated || tail.Truncated || clique.Truncated {
		t.Fatal("unexpected truncation")
	}
	if all.Time < tail.Time {
		t.Fatalf("worst-start %d < tail %d", all.Time, tail.Time)
	}
	if clique.Time > tail.Time {
		t.Fatalf("clique start %d slower than tail %d", clique.Time, tail.Time)
	}
}

func TestRelaxationBoundsSandwichExactMixing(t *testing.T) {
	cases := []*graph.Graph{
		graph.Cycle(17), // odd: aperiodic simple walk
		graph.MargulisExpander(6),
		graph.Complete(12, false),
	}
	for _, g := range cases {
		op := linalg.NewWalkOperator(g, 0)
		exactTM := MixingTime(op, AllStarts(g.N()), DefaultEpsilon, 200000)
		if exactTM.Truncated {
			t.Fatalf("%s: truncated", g.Name())
		}
		lower, upper, lambda, err := RelaxationBounds(g, 0, DefaultEpsilon, rng.New(9))
		if err != nil {
			t.Fatalf("%s: %v", g.Name(), err)
		}
		if lambda <= 0 || lambda >= 1 {
			t.Fatalf("%s: bad lambda %v", g.Name(), lambda)
		}
		// The relaxation sandwich bounds t_mix(eps); allow the exact integer
		// time to sit at the boundary.
		if float64(exactTM.Time) < lower-1 {
			t.Fatalf("%s: exact %d below lower bound %v", g.Name(), exactTM.Time, lower)
		}
		if float64(exactTM.Time) > upper+1 {
			t.Fatalf("%s: exact %d above upper bound %v", g.Name(), exactTM.Time, upper)
		}
	}
}

func TestRelaxationBoundsRejectBipartite(t *testing.T) {
	if _, _, _, err := RelaxationBounds(graph.Cycle(8), 0, DefaultEpsilon, rng.New(1)); err == nil {
		t.Fatal("bipartite simple walk must be rejected (λ=1)")
	}
}

func TestRelaxationBoundsRejectBadEps(t *testing.T) {
	if _, _, _, err := RelaxationBounds(graph.Cycle(9), 0, 1.5, rng.New(1)); err == nil {
		t.Fatal("eps out of range accepted")
	}
}

func TestHypercubeLazyMixingIsFast(t *testing.T) {
	// Hypercube d=8 (n=256): lazy walk mixes in O(d log d) ≈ tens of steps,
	// dramatically less than n.
	g := graph.Hypercube(8)
	op := linalg.NewWalkOperator(g, 0.5)
	r := MixingTimeFrom(op, 0, DefaultEpsilon, 5000)
	if r.Truncated {
		t.Fatal("hypercube lazy walk failed to mix")
	}
	if r.Time > g.N()/2 {
		t.Fatalf("hypercube mixing %d way too slow", r.Time)
	}
	if math.IsNaN(r.WorstD) {
		t.Fatal("NaN distance")
	}
}

func TestMixingTimePanicsWithoutStarts(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	op := linalg.NewWalkOperator(graph.Cycle(5), 0)
	MixingTime(op, nil, DefaultEpsilon, 10)
}
