// Package spectral computes mixing times and spectral bounds for random
// walks. The paper defines the mixing time t_m of G as the smallest t such
// that for all start vertices u, Σ_v |p^t_{u,v} − π(v)| < 1/e; this package
// evaluates that quantity exactly by evolving the distribution with the
// sparse walk operator, and cheaply by relaxation-time bounds from the
// spectral gap.
package spectral

import (
	"fmt"
	"math"

	"manywalks/internal/graph"
	"manywalks/internal/linalg"
	"manywalks/internal/rng"
)

// DefaultEpsilon is the paper's mixing threshold 1/e.
var DefaultEpsilon = 1 / math.E

// Result reports a mixing time measurement.
type Result struct {
	Time      int     // smallest t with distance < eps from every tested start
	WorstD    float64 // the achieved distance at Time
	Truncated bool    // hit maxT before reaching the threshold
}

// MixingTimeFrom returns the smallest t ≤ maxT at which the L1 distance
// Σ_v |p^t_{u,v} − π(v)| drops below eps for the single start u.
// If the threshold is not reached by maxT the result is truncated with
// Time = maxT.
func MixingTimeFrom(op *linalg.WalkOperator, u int32, eps float64, maxT int) Result {
	n := op.N()
	pi := op.StationaryDistribution()
	p := make([]float64, n)
	p[u] = 1
	next := make([]float64, n)
	d := linalg.L1Distance(p, pi)
	if d < eps {
		return Result{Time: 0, WorstD: d}
	}
	for t := 1; t <= maxT; t++ {
		op.EvolveDist(p, next)
		p, next = next, p
		d = linalg.L1Distance(p, pi)
		if d < eps {
			return Result{Time: t, WorstD: d}
		}
	}
	return Result{Time: maxT, WorstD: d, Truncated: true}
}

// MixingTime returns the paper's t_m: the max over the given start vertices
// of MixingTimeFrom. Pass all vertices for the exact definition, or a single
// vertex for vertex-transitive graphs where every start is equivalent.
// A truncated result from any start truncates the whole measurement.
func MixingTime(op *linalg.WalkOperator, starts []int32, eps float64, maxT int) Result {
	if len(starts) == 0 {
		panic("spectral: MixingTime requires at least one start")
	}
	worst := Result{}
	for _, u := range starts {
		r := MixingTimeFrom(op, u, eps, maxT)
		if r.Truncated {
			return r
		}
		if r.Time > worst.Time || (r.Time == worst.Time && r.WorstD > worst.WorstD) {
			worst = r
		}
	}
	return worst
}

// AllStarts returns the slice [0, 1, ..., n-1] for use with MixingTime on
// graphs without useful symmetry.
func AllStarts(n int) []int32 {
	s := make([]int32, n)
	for i := range s {
		s[i] = int32(i)
	}
	return s
}

// RelaxationBounds returns the standard sandwich on the eps-mixing time in
// terms of the relaxation time t_rel = 1/(1−λ):
//
//	(t_rel − 1)·ln(1/2eps) ≤ t_mix(eps) ≤ t_rel·ln(1/(eps·π_min))
//
// computed from a power-iteration estimate of λ. For periodic chains
// (bipartite graphs under the simple walk) λ = 1 and the bounds are
// meaningless; use a lazy operator there.
func RelaxationBounds(g *graph.Graph, stay float64, eps float64, r *rng.Source) (lower, upper float64, lambda float64, err error) {
	if eps <= 0 || eps >= 1 {
		return 0, 0, 0, fmt.Errorf("spectral: eps must be in (0,1)")
	}
	op := linalg.NewWalkOperator(g, stay)
	iters := 200 * (bitsLen(g.N()) + 1)
	lambda = linalg.SecondEigenvalueMagnitude(op, iters, r)
	if lambda >= 1-1e-12 {
		return 0, 0, lambda, fmt.Errorf("spectral: no spectral gap (λ=%v); use a lazy walk", lambda)
	}
	trel := 1 / (1 - lambda)
	pi := op.StationaryDistribution()
	piMin := pi[0]
	for _, p := range pi {
		if p < piMin {
			piMin = p
		}
	}
	lower = (trel - 1) * math.Log(1/(2*eps))
	upper = trel * math.Log(1/(eps*piMin))
	if lower < 0 {
		lower = 0
	}
	return lower, upper, lambda, nil
}

// bitsLen returns the bit length of n, a crude log2 for iteration budgets.
func bitsLen(n int) int {
	l := 0
	for n > 0 {
		n >>= 1
		l++
	}
	return l
}
