package stats

import (
	"math"
	"testing"
	"testing/quick"

	"manywalks/internal/rng"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 {
		t.Fatalf("summary %+v", s)
	}
	if math.Abs(s.Variance-2.5) > 1e-12 {
		t.Fatalf("variance %v, want 2.5", s.Variance)
	}
	if math.Abs(s.StdErr()-math.Sqrt(2.5/5)) > 1e-12 {
		t.Fatal("stderr")
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{7})
	if s.Variance != 0 || s.Mean != 7 {
		t.Fatalf("%+v", s)
	}
	// A single exact-zero sample has a zero-width interval: the estimate is
	// exact, so RelativeCI is 0 (a zero mean only maps to +Inf when the
	// interval has width — see TestSummaryRelativeCIEdgeCases).
	if rel := Summarize([]float64{0}).RelativeCI(); rel != 0 {
		t.Fatalf("RelativeCI of exact zero sample = %v, want 0", rel)
	}
}

func TestSummarizeEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Summarize(nil)
}

func TestCI95Coverage(t *testing.T) {
	// The 95% CI should contain the true mean about 95% of the time.
	r := rng.New(8)
	const experiments, samples = 400, 50
	hits := 0
	for e := 0; e < experiments; e++ {
		xs := make([]float64, samples)
		for i := range xs {
			xs[i] = r.Float64() // true mean 0.5
		}
		s := Summarize(xs)
		if math.Abs(s.Mean-0.5) <= s.CI95() {
			hits++
		}
	}
	rate := float64(hits) / experiments
	if rate < 0.90 || rate > 0.99 {
		t.Fatalf("CI coverage %.3f outside [0.90, 0.99]", rate)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if Quantile(xs, 0) != 1 || Quantile(xs, 1) != 4 {
		t.Fatal("extremes")
	}
	if Median(xs) != 2.5 {
		t.Fatalf("median %v", Median(xs))
	}
	if q := Quantile([]float64{1, 2, 3, 4, 5}, 0.25); q != 2 {
		t.Fatalf("q25 = %v", q)
	}
	// Input must not be mutated.
	if xs[0] != 4 {
		t.Fatal("Quantile mutated input")
	}
}

func TestFitLineExact(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{5, 7, 9, 11} // y = 2x + 3
	f := FitLine(x, y)
	if math.Abs(f.Slope-2) > 1e-12 || math.Abs(f.Intercept-3) > 1e-12 || f.R2 < 0.999999 {
		t.Fatalf("fit %+v", f)
	}
}

func TestFitLineNoisy(t *testing.T) {
	r := rng.New(3)
	x := make([]float64, 200)
	y := make([]float64, 200)
	for i := range x {
		x[i] = float64(i)
		y[i] = 0.5*x[i] + 10 + (r.Float64()-0.5)*2
	}
	f := FitLine(x, y)
	if math.Abs(f.Slope-0.5) > 0.01 {
		t.Fatalf("noisy slope %v", f.Slope)
	}
	if f.R2 < 0.99 {
		t.Fatalf("noisy R2 %v", f.R2)
	}
}

func TestFitLogX(t *testing.T) {
	// y = 3·ln x + 1.
	x := []float64{1, math.E, math.E * math.E, 20, 50}
	y := make([]float64, len(x))
	for i := range x {
		y[i] = 3*math.Log(x[i]) + 1
	}
	f := FitLogX(x, y)
	if math.Abs(f.Slope-3) > 1e-10 || math.Abs(f.Intercept-1) > 1e-10 {
		t.Fatalf("log fit %+v", f)
	}
}

func TestFitPowerLaw(t *testing.T) {
	// y = 2.5·x^1.5.
	x := []float64{1, 2, 4, 8, 16}
	y := make([]float64, len(x))
	for i := range x {
		y[i] = 2.5 * math.Pow(x[i], 1.5)
	}
	p, c, r2 := FitPowerLaw(x, y)
	if math.Abs(p-1.5) > 1e-10 || math.Abs(c-2.5) > 1e-9 || r2 < 0.999999 {
		t.Fatalf("power fit p=%v c=%v r2=%v", p, c, r2)
	}
}

func TestFitPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("short", func() { FitLine([]float64{1}, []float64{1}) })
	mustPanic("constant-x", func() { FitLine([]float64{2, 2}, []float64{1, 3}) })
	mustPanic("logx nonpositive", func() { FitLogX([]float64{0, 1}, []float64{1, 2}) })
	mustPanic("power nonpositive", func() { FitPowerLaw([]float64{1, 2}, []float64{0, 1}) })
	mustPanic("quantile range", func() { Quantile([]float64{1}, 1.5) })
}

func TestHarmonicNumber(t *testing.T) {
	if HarmonicNumber(0) != 0 || HarmonicNumber(1) != 1 {
		t.Fatal("small harmonics")
	}
	if math.Abs(HarmonicNumber(4)-(1+0.5+1.0/3+0.25)) > 1e-12 {
		t.Fatal("H4")
	}
	// H_n ≈ ln n + γ.
	h := HarmonicNumber(100000)
	if math.Abs(h-(math.Log(100000)+0.5772156649)) > 1e-4 {
		t.Fatalf("H_100000 = %v", h)
	}
}

func TestMeanOfIntsAndToFloats(t *testing.T) {
	if MeanOfInts([]int64{1, 2, 3}) != 2 {
		t.Fatal("MeanOfInts")
	}
	f := ToFloats([]int64{5, 6})
	if len(f) != 2 || f[0] != 5 || f[1] != 6 {
		t.Fatal("ToFloats")
	}
}

func TestSummaryMeanWithinRangeProperty(t *testing.T) {
	check := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		s := Summarize(xs)
		return s.Mean >= s.Min-1e-9 && s.Mean <= s.Max+1e-9 && s.Variance >= 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
