package stats

import "math"

// This file holds the streaming half of the package: a one-pass Welford
// accumulator and the Student-t critical values the adaptive (sequential
// stopping) estimators fold their per-wave samples through. Everything here
// is a pure function of the samples folded so far, in order — the property
// the walk package's deterministic stop rule rests on: two hosts that fold
// the same samples in the same order reach bit-identical means, variances,
// confidence intervals, and therefore identical stop decisions.

// Accumulator is a streaming single-pass mean/variance tracker (Welford's
// algorithm). The zero value is ready to use. Unlike Summarize it never
// re-reads earlier samples, so the adaptive estimators can fold waves of
// trial outcomes as they arrive and query the running confidence interval
// after each wave in O(1).
type Accumulator struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Add folds one sample.
func (a *Accumulator) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.mean, a.min, a.max = x, x, x
		a.m2 = 0
		return
	}
	d := x - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (x - a.mean)
	if x < a.min {
		a.min = x
	}
	if x > a.max {
		a.max = x
	}
}

// N returns the number of samples folded.
func (a *Accumulator) N() int { return a.n }

// Mean returns the running mean (0 before any sample).
func (a *Accumulator) Mean() float64 { return a.mean }

// Variance returns the unbiased (n-1 denominator) running variance; it is 0
// for fewer than two samples.
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// StdErr returns the standard error of the running mean (0 for fewer than
// two samples).
func (a *Accumulator) StdErr() float64 {
	if a.n < 2 {
		return 0
	}
	return math.Sqrt(a.Variance() / float64(a.n))
}

// Summary snapshots the accumulator as a Summary. Mean and Variance agree
// with Summarize over the same samples up to floating-point association;
// the streaming form is what the sequential-stopping rule is defined on.
func (a *Accumulator) Summary() Summary {
	return Summary{N: a.n, Mean: a.mean, Variance: a.Variance(), Min: a.min, Max: a.max}
}

// CI returns the half-width of a two-sided Student-t confidence interval
// for the mean at the given confidence level (e.g. 0.95). It returns +Inf
// for fewer than two samples — with one sample the interval is unbounded,
// which is exactly the "cannot stop yet" answer the adaptive rule needs —
// and 0 when the variance is 0 (a degenerate, exact sample).
func (a *Accumulator) CI(confidence float64) float64 {
	if a.n < 2 {
		return math.Inf(1)
	}
	se := a.StdErr()
	if se == 0 {
		return 0
	}
	return TCritical(a.n-1, confidence) * se
}

// RelCI returns CI(confidence) relative to |Mean| — the quantity the
// adaptive estimators compare against their requested rtol. The edge cases
// are chosen so the comparison always does the right thing: a zero-width
// interval returns 0 (the estimate is exact, even when the mean is 0), and
// a nonzero interval around a zero mean returns +Inf (no relative target
// can be met).
func (a *Accumulator) RelCI(confidence float64) float64 {
	ci := a.CI(confidence)
	if ci == 0 {
		return 0
	}
	if a.mean == 0 {
		return math.Inf(1)
	}
	return ci / math.Abs(a.mean)
}

// TCritical returns the two-sided Student-t critical value t* with df
// degrees of freedom at the given confidence level: the quantile such that
// P(|T| <= t*) = confidence. It panics on df < 1 or confidence outside
// (0, 1). TCritical is a deterministic pure function (bisection on the
// exact CDF), so hosts that share (df, confidence) share the critical value
// bit for bit.
func TCritical(df int, confidence float64) float64 {
	if df < 1 {
		panic("stats: TCritical requires df >= 1")
	}
	if !(confidence > 0 && confidence < 1) {
		panic("stats: confidence must be in (0,1)")
	}
	// P(|T| <= t) = 1 - I_{df/(df+t^2)}(df/2, 1/2), increasing in t.
	target := confidence
	cdf := func(t float64) float64 {
		return 1 - regIncBeta(float64(df)/2, 0.5, float64(df)/(float64(df)+t*t))
	}
	lo, hi := 0.0, 2.0
	for cdf(hi) < target {
		hi *= 2
		if hi > 1e12 { // confidence indistinguishable from 1 at this df
			return hi
		}
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if mid == lo || mid == hi {
			break
		}
		if cdf(mid) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// regIncBeta is the regularized incomplete beta function I_x(a, b),
// computed by the standard continued-fraction expansion (Lentz's method,
// the Numerical Recipes betacf form) with the symmetry transform applied
// when x is past the distribution's bulk.
func regIncBeta(a, b, x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	// Prefactor x^a (1-x)^b / (a B(a,b)), via lgamma for range safety.
	lbeta, _ := math.Lgamma(a + b)
	la, _ := math.Lgamma(a)
	lb, _ := math.Lgamma(b)
	front := math.Exp(lbeta - la - lb + a*math.Log(x) + b*math.Log1p(-x))
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

// betaCF evaluates the continued fraction of the incomplete beta function.
func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-16
		fpmin   = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		m2 := float64(2 * m)
		aa := float64(m) * (b - float64(m)) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + float64(m)) * (qab + float64(m)) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}
