// Package stats provides the estimation utilities used to turn Monte Carlo
// samples into the numbers reported by the experiment harness: summary
// statistics with confidence intervals, quantiles, and least-squares fits
// used to test the paper's Θ(k) and Θ(log k) speed-up shapes.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds moments of a sample.
type Summary struct {
	N        int
	Mean     float64
	Variance float64 // unbiased (n-1 denominator)
	Min, Max float64
}

// Summarize computes a Summary of xs; it panics on an empty sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		panic("stats: empty sample")
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Variance = ss / float64(s.N-1)
	}
	return s
}

// StdDev returns the sample standard deviation.
func (s Summary) StdDev() float64 { return math.Sqrt(s.Variance) }

// StdErr returns the standard error of the mean.
func (s Summary) StdErr() float64 { return s.StdDev() / math.Sqrt(float64(s.N)) }

// CI95 returns the half-width of a 95% normal-approximation confidence
// interval for the mean. Trials counts here are large enough (≥ 30 in the
// harness defaults) that the normal quantile is adequate.
func (s Summary) CI95() float64 { return 1.959964 * s.StdErr() }

// String renders "mean ± ci95 (n=N)".
func (s Summary) String() string {
	return fmt.Sprintf("%.4g ± %.2g (n=%d)", s.Mean, s.CI95(), s.N)
}

// RelativeCI returns CI95 / |Mean|, used by adaptive samplers to decide
// when an estimate is tight enough. Edge cases are defined so comparisons
// against a tolerance always behave: a zero-width interval returns 0 (the
// estimate is exact, even when the mean is 0), and a nonzero interval
// around a zero mean returns +Inf (no relative target can be met). It
// never returns NaN.
func (s Summary) RelativeCI() float64 {
	ci := s.CI95()
	if ci == 0 {
		return 0
	}
	if s.Mean == 0 {
		return math.Inf(1)
	}
	return ci / math.Abs(s.Mean)
}

// Quantile returns the q-th (0 ≤ q ≤ 1) sample quantile of xs using linear
// interpolation between order statistics. It sorts a copy. An empty sample
// returns NaN — "no data" is a value callers can render, not a panic — and
// a q outside [0,1] still panics (that is a caller bug, not a data shape).
func Quantile(xs []float64, q float64) float64 {
	if q < 0 || q > 1 {
		panic("stats: quantile out of [0,1]")
	}
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median is Quantile(xs, 0.5).
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// LinearFit holds an ordinary-least-squares line y ≈ Slope·x + Intercept.
type LinearFit struct {
	Slope, Intercept float64
	R2               float64
}

// FitLine fits y = a·x + b by least squares and reports R². It requires at
// least two distinct x values.
func FitLine(x, y []float64) LinearFit {
	if len(x) != len(y) || len(x) < 2 {
		panic("stats: FitLine needs matched samples of length >= 2")
	}
	n := float64(len(x))
	var sx, sy, sxx, sxy, syy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
		syy += y[i] * y[i]
	}
	det := n*sxx - sx*sx
	if det == 0 {
		panic("stats: FitLine with constant x")
	}
	slope := (n*sxy - sx*sy) / det
	intercept := (sy - slope*sx) / n
	// R² = 1 - SSres/SStot.
	ssTot := syy - sy*sy/n
	ssRes := 0.0
	for i := range x {
		r := y[i] - (slope*x[i] + intercept)
		ssRes += r * r
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return LinearFit{Slope: slope, Intercept: intercept, R2: r2}
}

// FitLogX fits y = a·ln(x) + b — the shape of Theorem 6's Θ(log k) speed-up.
func FitLogX(x, y []float64) LinearFit {
	lx := make([]float64, len(x))
	for i, v := range x {
		if v <= 0 {
			panic("stats: FitLogX requires positive x")
		}
		lx[i] = math.Log(v)
	}
	return FitLine(lx, y)
}

// FitPowerLaw fits y = c·x^p by regressing ln y on ln x; it returns the
// exponent p, the prefactor c, and R² of the log-log fit. Used to measure
// the slope of S^k versus k (≈1 for linear speed-up families).
func FitPowerLaw(x, y []float64) (p, c, r2 float64) {
	lx := make([]float64, len(x))
	ly := make([]float64, len(y))
	for i := range x {
		if x[i] <= 0 || y[i] <= 0 {
			panic("stats: FitPowerLaw requires positive data")
		}
		lx[i] = math.Log(x[i])
		ly[i] = math.Log(y[i])
	}
	f := FitLine(lx, ly)
	return f.Slope, math.Exp(f.Intercept), f.R2
}

// HarmonicNumber returns H_k = Σ_{i=1..k} 1/i, the quantity in Matthews'
// bound.
func HarmonicNumber(k int) float64 {
	if k < 0 {
		panic("stats: negative harmonic index")
	}
	h := 0.0
	for i := 1; i <= k; i++ {
		h += 1 / float64(i)
	}
	return h
}

// MeanOfInts is a convenience for the walk package, which produces integer
// step counts.
func MeanOfInts(xs []int64) float64 {
	if len(xs) == 0 {
		panic("stats: empty sample")
	}
	s := 0.0
	for _, x := range xs {
		s += float64(x)
	}
	return s / float64(len(xs))
}

// ToFloats converts integer step counts to float64 samples.
func ToFloats(xs []int64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}
