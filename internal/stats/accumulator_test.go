package stats

import (
	"math"
	"testing"
)

// TestAccumulatorMatchesSummarize pins the streaming moments against the
// two-pass reference on a few shapes, including a large-offset sample where
// a naive sum-of-squares accumulator would lose precision.
func TestAccumulatorMatchesSummarize(t *testing.T) {
	cases := [][]float64{
		{3},
		{1, 2, 3, 4, 5},
		{2.5, 2.5, 2.5},
		{1e9 + 1, 1e9 + 2, 1e9 + 3, 1e9 + 4},
		{-4, 7, 0, 3.5, -2, 19, 6},
	}
	for _, xs := range cases {
		var a Accumulator
		for _, x := range xs {
			a.Add(x)
		}
		want := Summarize(xs)
		got := a.Summary()
		if got.N != want.N || got.Min != want.Min || got.Max != want.Max {
			t.Fatalf("sample %v: summary %+v != %+v", xs, got, want)
		}
		if math.Abs(got.Mean-want.Mean) > 1e-9*math.Max(1, math.Abs(want.Mean)) {
			t.Fatalf("sample %v: mean %g != %g", xs, got.Mean, want.Mean)
		}
		if math.Abs(got.Variance-want.Variance) > 1e-6*math.Max(1, want.Variance) {
			t.Fatalf("sample %v: variance %g != %g", xs, got.Variance, want.Variance)
		}
	}
}

// TestAccumulatorDeterministic pins that two accumulators folding the same
// samples in the same order agree bit for bit — the property the adaptive
// stop rule's cross-host determinism rests on.
func TestAccumulatorDeterministic(t *testing.T) {
	xs := []float64{3.125, 9.75, 0.0625, 1e7, 2.2, 8.125, 4.5}
	var a, b Accumulator
	for _, x := range xs {
		a.Add(x)
		b.Add(x)
	}
	if a != b {
		t.Fatalf("accumulators diverged: %+v vs %+v", a, b)
	}
	if a.CI(0.95) != b.CI(0.95) || a.RelCI(0.95) != b.RelCI(0.95) {
		t.Fatal("CI computations diverged on identical state")
	}
}

// TestTCritical pins the two-sided critical values against standard-table
// values at several (df, confidence) points and the normal limit.
func TestTCritical(t *testing.T) {
	cases := []struct {
		df   int
		conf float64
		want float64
	}{
		{1, 0.95, 12.7062},
		{2, 0.95, 4.30265},
		{5, 0.95, 2.57058},
		{10, 0.95, 2.22814},
		{30, 0.95, 2.04227},
		{100, 0.95, 1.98397},
		{10, 0.99, 3.16927},
		{10, 0.90, 1.81246},
		{1000, 0.95, 1.96234},
	}
	for _, c := range cases {
		got := TCritical(c.df, c.conf)
		if math.Abs(got-c.want) > 5e-4*c.want {
			t.Errorf("TCritical(%d, %v) = %.5f, want %.5f", c.df, c.conf, got, c.want)
		}
	}
	// Monotone in confidence and decreasing in df.
	if !(TCritical(10, 0.99) > TCritical(10, 0.95)) {
		t.Error("TCritical not increasing in confidence")
	}
	if !(TCritical(3, 0.95) > TCritical(300, 0.95)) {
		t.Error("TCritical not decreasing in df")
	}
}

// TestAccumulatorCIEdgeCases pins the documented degenerate answers: +Inf
// before two samples, 0 for a zero-variance sample (even at mean 0), +Inf
// relative CI around a zero mean with spread.
func TestAccumulatorCIEdgeCases(t *testing.T) {
	var a Accumulator
	if ci := a.CI(0.95); !math.IsInf(ci, 1) {
		t.Fatalf("empty accumulator CI = %v, want +Inf", ci)
	}
	a.Add(5)
	if ci := a.CI(0.95); !math.IsInf(ci, 1) {
		t.Fatalf("one-sample CI = %v, want +Inf", ci)
	}
	var zeros Accumulator
	zeros.Add(0)
	zeros.Add(0)
	zeros.Add(0)
	if ci := zeros.CI(0.95); ci != 0 {
		t.Fatalf("zero-variance CI = %v, want 0", ci)
	}
	if rel := zeros.RelCI(0.95); rel != 0 {
		t.Fatalf("exact zero-mean RelCI = %v, want 0", rel)
	}
	var sym Accumulator
	sym.Add(-1)
	sym.Add(1)
	if rel := sym.RelCI(0.95); !math.IsInf(rel, 1) {
		t.Fatalf("zero-mean spread RelCI = %v, want +Inf", rel)
	}
}

// TestQuantileEdgeCases pins the documented empty-sample NaN and the
// Summary.RelativeCI edge behavior.
func TestQuantileEdgeCases(t *testing.T) {
	if v := Quantile(nil, 0.5); !math.IsNaN(v) {
		t.Fatalf("Quantile(nil) = %v, want NaN", v)
	}
	if v := Median([]float64{}); !math.IsNaN(v) {
		t.Fatalf("Median(empty) = %v, want NaN", v)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Quantile with q out of range did not panic")
		}
	}()
	Quantile([]float64{1}, 1.5)
}

// TestSummaryRelativeCIEdgeCases pins the exact-zero and zero-mean answers.
func TestSummaryRelativeCIEdgeCases(t *testing.T) {
	exact := Summarize([]float64{0, 0, 0})
	if rel := exact.RelativeCI(); rel != 0 {
		t.Fatalf("exact zero sample RelativeCI = %v, want 0", rel)
	}
	spread := Summarize([]float64{-3, 3})
	if rel := spread.RelativeCI(); !math.IsInf(rel, 1) {
		t.Fatalf("zero-mean spread RelativeCI = %v, want +Inf", rel)
	}
	normal := Summarize([]float64{9, 10, 11})
	if rel := normal.RelativeCI(); !(rel > 0 && rel < 1) {
		t.Fatalf("ordinary RelativeCI = %v out of expected range", rel)
	}
}
