// Package dynamic supports random walks on time-varying graphs. The paper's
// introduction motivates random-walk algorithms by their "robustness to
// changes in the graph structure"; this package makes that claim testable:
// a MutableGraph admits edge churn between rounds, and the k-walk cover
// simulation accepts a churn hook invoked once per round.
//
// The built-in churner performs degree-preserving double-edge swaps — the
// strongest structure-preserving perturbation (degrees, and hence the
// stationary distribution, stay fixed while the wiring is randomized), so
// observed cover-time changes are attributable to churn alone.
package dynamic

import (
	"fmt"

	"manywalks/internal/graph"
	"manywalks/internal/rng"
	"manywalks/internal/stats"
	"manywalks/internal/walk"
)

// MutableGraph is an adjacency-list graph supporting edge insertion and
// removal. Unlike graph.Graph it is not indexed for binary search; HasEdge
// is a linear scan of the shorter list, fine at simulation degrees.
type MutableGraph struct {
	adj [][]int32
	m   int
}

// FromGraph copies a static graph into mutable form.
func FromGraph(g *graph.Graph) *MutableGraph {
	n := g.N()
	adj := make([][]int32, n)
	for v := 0; v < n; v++ {
		adj[v] = append([]int32(nil), g.Neighbors(int32(v))...)
	}
	return &MutableGraph{adj: adj, m: g.M()}
}

// N returns the vertex count.
func (mg *MutableGraph) N() int { return len(mg.adj) }

// M returns the edge count.
func (mg *MutableGraph) M() int { return mg.m }

// Degree returns the degree of v.
func (mg *MutableGraph) Degree(v int32) int { return len(mg.adj[v]) }

// Neighbors returns v's adjacency list (aliased; do not modify).
func (mg *MutableGraph) Neighbors(v int32) []int32 { return mg.adj[v] }

// HasEdge reports whether {u,v} is present.
func (mg *MutableGraph) HasEdge(u, v int32) bool {
	a := mg.adj[u]
	if len(mg.adj[v]) < len(a) && u != v {
		a = mg.adj[v]
		u, v = v, u
	}
	for _, w := range a {
		if w == v {
			return true
		}
	}
	return false
}

// AddEdge inserts the undirected edge {u,v}; it reports false if the edge
// (or loop) already existed.
func (mg *MutableGraph) AddEdge(u, v int32) bool {
	if mg.HasEdge(u, v) {
		return false
	}
	mg.adj[u] = append(mg.adj[u], v)
	if u != v {
		mg.adj[v] = append(mg.adj[v], u)
	}
	mg.m++
	return true
}

// RemoveEdge deletes the undirected edge {u,v}; it reports false if absent.
func (mg *MutableGraph) RemoveEdge(u, v int32) bool {
	if !mg.HasEdge(u, v) {
		return false
	}
	mg.adj[u] = removeOne(mg.adj[u], v)
	if u != v {
		mg.adj[v] = removeOne(mg.adj[v], u)
	}
	mg.m--
	return true
}

func removeOne(list []int32, x int32) []int32 {
	for i, w := range list {
		if w == x {
			list[i] = list[len(list)-1]
			return list[:len(list)-1]
		}
	}
	return list
}

// RandomEdge returns a uniformly random edge as an ordered pair (u, slot
// neighbor); loops appear with their single slot. It panics on an empty
// graph. Sampling is by uniform (vertex-slot) choice over the adjacency
// multiset, so each non-loop edge is returned with equal probability.
func (mg *MutableGraph) RandomEdge(r *rng.Source) (int32, int32) {
	total := 0
	for _, l := range mg.adj {
		total += len(l)
	}
	if total == 0 {
		panic("dynamic: RandomEdge on empty graph")
	}
	slot := r.Intn(total)
	for v, l := range mg.adj {
		if slot < len(l) {
			return int32(v), l[slot]
		}
		slot -= len(l)
	}
	panic("dynamic: unreachable")
}

// Snapshot freezes the current topology into an immutable graph.Graph.
func (mg *MutableGraph) Snapshot(name string) *graph.Graph {
	b := graph.NewBuilder(mg.N())
	for v, l := range mg.adj {
		for _, u := range l {
			if u >= int32(v) {
				b.AddEdge(int32(v), u)
			}
		}
	}
	return b.Build(name)
}

// IsConnected checks connectivity with a BFS over the mutable structure.
func (mg *MutableGraph) IsConnected() bool {
	n := mg.N()
	if n == 0 {
		return true
	}
	seen := make([]bool, n)
	seen[0] = true
	queue := []int32{0}
	count := 1
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, u := range mg.adj[v] {
			if !seen[u] {
				seen[u] = true
				count++
				queue = append(queue, u)
			}
		}
	}
	return count == n
}

// Churner mutates the topology between rounds.
type Churner interface {
	// Churn applies one round of topology change.
	Churn(mg *MutableGraph, r *rng.Source)
}

// SwapChurner performs SwapsPerRound degree-preserving double-edge swaps per
// round: pick two disjoint edges (a,b), (c,d) and rewire to (a,c), (b,d)
// when that creates no loops or duplicates.
type SwapChurner struct {
	SwapsPerRound int
}

// Churn implements Churner.
func (s SwapChurner) Churn(mg *MutableGraph, r *rng.Source) {
	for i := 0; i < s.SwapsPerRound; i++ {
		a, b := mg.RandomEdge(r)
		c, d := mg.RandomEdge(r)
		if a == c || a == d || b == c || b == d {
			continue
		}
		if mg.HasEdge(a, c) || mg.HasEdge(b, d) {
			continue
		}
		mg.RemoveEdge(a, b)
		mg.RemoveEdge(c, d)
		mg.AddEdge(a, c)
		mg.AddEdge(b, d)
	}
}

// NopChurner leaves the graph unchanged (the static control).
type NopChurner struct{}

// Churn implements Churner.
func (NopChurner) Churn(*MutableGraph, *rng.Source) {}

// KCoverUnderChurn runs the k-walk cover process on a churning copy of g:
// each round all k walkers step on the current topology, then the churner
// mutates it. Walkers on a vertex whose edges all vanished stay put for the
// round. The result counts rounds until the union of visits covers V.
func KCoverUnderChurn(g *graph.Graph, start int32, k int, churner Churner, r *rng.Source, maxRounds int64) walk.CoverResult {
	if k < 1 {
		panic("dynamic: k must be >= 1")
	}
	mg := FromGraph(g)
	n := mg.N()
	visited := make([]bool, n)
	visited[start] = true
	remaining := n - 1
	if remaining == 0 {
		return walk.CoverResult{Steps: 0, Covered: true}
	}
	pos := make([]int32, k)
	for i := range pos {
		pos[i] = start
	}
	for t := int64(1); t <= maxRounds; t++ {
		for i, p := range pos {
			nb := mg.adj[p]
			if len(nb) == 0 {
				continue // isolated this round; wait for churn to reconnect
			}
			np := nb[r.Intn(len(nb))]
			pos[i] = np
			if !visited[np] {
				visited[np] = true
				remaining--
				if remaining == 0 {
					return walk.CoverResult{Steps: t, Covered: true}
				}
			}
		}
		churner.Churn(mg, r)
	}
	return walk.CoverResult{Steps: maxRounds, Covered: false}
}

// EstimateKCoverUnderChurn wraps KCoverUnderChurn in the Monte Carlo driver.
func EstimateKCoverUnderChurn(g *graph.Graph, start int32, k int, churner Churner, opts walk.MCOptions) (walk.Estimate, error) {
	if k < 1 {
		return walk.Estimate{}, fmt.Errorf("dynamic: k must be >= 1")
	}
	if !g.IsConnected() {
		return walk.Estimate{}, fmt.Errorf("dynamic: start topology must be connected")
	}
	results, err := walk.MonteCarlo(opts, func(_ int, r *rng.Source) float64 {
		res := KCoverUnderChurn(g, start, k, churner, r, opts.MaxSteps)
		return float64(res.Steps)
	})
	if err != nil {
		return walk.Estimate{}, err
	}
	// A trial is truncated iff its sample reached the budget (a cover at
	// exactly the budget round is indistinguishable; counted conservatively).
	truncated := 0
	for _, s := range results {
		if int64(s) >= opts.MaxSteps {
			truncated++
		}
	}
	return walk.Estimate{Summary: stats.Summarize(results), Truncated: truncated}, nil
}
