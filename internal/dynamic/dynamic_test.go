package dynamic

import (
	"testing"
	"testing/quick"

	"manywalks/internal/graph"
	"manywalks/internal/rng"
	"manywalks/internal/walk"
)

func TestMutableGraphBasics(t *testing.T) {
	mg := FromGraph(graph.Cycle(5))
	if mg.N() != 5 || mg.M() != 5 {
		t.Fatalf("N=%d M=%d", mg.N(), mg.M())
	}
	if !mg.HasEdge(0, 1) || mg.HasEdge(0, 2) {
		t.Fatal("edge queries wrong")
	}
	if !mg.AddEdge(0, 2) || mg.AddEdge(0, 2) {
		t.Fatal("AddEdge semantics")
	}
	if mg.M() != 6 || mg.Degree(0) != 3 {
		t.Fatal("counts after add")
	}
	if !mg.RemoveEdge(0, 2) || mg.RemoveEdge(0, 2) {
		t.Fatal("RemoveEdge semantics")
	}
	if mg.M() != 5 || mg.Degree(0) != 2 {
		t.Fatal("counts after remove")
	}
	if !mg.IsConnected() {
		t.Fatal("cycle should stay connected")
	}
	mg.RemoveEdge(0, 1)
	mg.RemoveEdge(0, 4)
	if mg.IsConnected() {
		t.Fatal("isolated vertex 0 not detected")
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	orig := graph.Torus2D(4)
	mg := FromGraph(orig)
	snap := mg.Snapshot("snap")
	if snap.N() != orig.N() || snap.M() != orig.M() {
		t.Fatal("snapshot size mismatch")
	}
	if err := snap.Validate(); err != nil {
		t.Fatal(err)
	}
	for v := int32(0); v < int32(orig.N()); v++ {
		for _, u := range orig.Neighbors(v) {
			if !snap.HasEdge(v, u) {
				t.Fatalf("snapshot lost edge (%d,%d)", v, u)
			}
		}
	}
}

func TestRandomEdgeIsUniformish(t *testing.T) {
	// On a star all edges touch the hub: edge (0,leaf) chosen ∝ leaves'
	// slots; every leaf appears.
	mg := FromGraph(graph.Star(6))
	r := rng.New(3)
	seen := map[int32]bool{}
	for i := 0; i < 500; i++ {
		u, v := mg.RandomEdge(r)
		if !mg.HasEdge(u, v) {
			t.Fatal("RandomEdge returned a non-edge")
		}
		if u == 0 {
			seen[v] = true
		} else {
			seen[u] = true
		}
	}
	if len(seen) != 5 {
		t.Fatalf("edges seen %d, want all 5", len(seen))
	}
}

func TestSwapChurnerPreservesDegrees(t *testing.T) {
	check := func(seed uint16) bool {
		r := rng.NewStream(uint64(seed), 1)
		g, err := graph.ConnectedRandomRegular(24, 4, r, 200)
		if err != nil {
			return false
		}
		mg := FromGraph(g)
		before := make([]int, mg.N())
		for v := range before {
			before[v] = mg.Degree(int32(v))
		}
		SwapChurner{SwapsPerRound: 20}.Churn(mg, r)
		for v := range before {
			if mg.Degree(int32(v)) != before[v] {
				return false
			}
		}
		// Structure must remain a simple graph.
		return mg.Snapshot("x").Validate() == nil && mg.M() == g.M()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSwapChurnerActuallyRewires(t *testing.T) {
	r := rng.New(5)
	g, err := graph.ConnectedRandomRegular(32, 4, r, 200)
	if err != nil {
		t.Fatal(err)
	}
	mg := FromGraph(g)
	SwapChurner{SwapsPerRound: 50}.Churn(mg, r)
	changed := 0
	for v := int32(0); v < int32(g.N()); v++ {
		for _, u := range g.Neighbors(v) {
			if u > v && !mg.HasEdge(v, u) {
				changed++
			}
		}
	}
	if changed == 0 {
		t.Fatal("churner made no changes in 50 swap attempts")
	}
}

func TestKCoverUnderNopChurnMatchesStatic(t *testing.T) {
	// With the nop churner the process is exactly the static k-walk; the
	// means must agree within CI.
	g := graph.Torus2D(6)
	opts := walk.MCOptions{Trials: 500, Seed: 9, MaxSteps: 1 << 22}
	churned, err := EstimateKCoverUnderChurn(g, 0, 4, NopChurner{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	static, err := walk.EstimateKCoverTime(g, 0, 4, opts)
	if err != nil {
		t.Fatal(err)
	}
	diff := churned.Mean() - static.Mean()
	if diff < 0 {
		diff = -diff
	}
	if diff > churned.CI95()+static.CI95() {
		t.Fatalf("nop churn %v vs static %v", churned.Mean(), static.Mean())
	}
}

func TestCoverSurvivesChurn(t *testing.T) {
	// Degree-preserving churn on a random regular graph must leave the
	// k-walk able to cover, with cover time within a small factor of static
	// — the paper's robustness claim, quantified.
	r := rng.New(11)
	g, err := graph.ConnectedRandomRegular(128, 4, r, 300)
	if err != nil {
		t.Fatal(err)
	}
	opts := walk.MCOptions{Trials: 300, Seed: 13, MaxSteps: 1 << 22}
	static, err := EstimateKCoverUnderChurn(g, 0, 4, NopChurner{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	churned, err := EstimateKCoverUnderChurn(g, 0, 4, SwapChurner{SwapsPerRound: 4}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if churned.Truncated > 0 {
		t.Fatalf("%d trials failed to cover under churn", churned.Truncated)
	}
	ratio := churned.Mean() / static.Mean()
	if ratio > 1.5 || ratio < 0.5 {
		t.Fatalf("churn changed cover time by %vx — robustness violated", ratio)
	}
}

func TestKCoverUnderChurnValidation(t *testing.T) {
	g := graph.Cycle(8)
	if _, err := EstimateKCoverUnderChurn(g, 0, 0, NopChurner{}, walk.MCOptions{Trials: 2, MaxSteps: 10}); err == nil {
		t.Fatal("k=0 accepted")
	}
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	if _, err := EstimateKCoverUnderChurn(b.Build("disc"), 0, 1, NopChurner{}, walk.MCOptions{Trials: 2, MaxSteps: 10}); err == nil {
		t.Fatal("disconnected accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("k=0 panic missing")
		}
	}()
	KCoverUnderChurn(g, 0, 0, NopChurner{}, rng.New(1), 10)
}

func TestWalkerStrandedByChurnWaits(t *testing.T) {
	// A churner that strands the walker must not crash the simulation; the
	// walker waits and the trial truncates.
	g := graph.Path(3)
	isolator := churnFunc(func(mg *MutableGraph, r *rng.Source) {
		mg.RemoveEdge(0, 1)
		mg.RemoveEdge(1, 2)
	})
	res := KCoverUnderChurn(g, 1, 1, isolator, rng.New(1), 50)
	if res.Covered {
		t.Fatal("covered an unreachable graph")
	}
	if res.Steps != 50 {
		t.Fatalf("steps %d", res.Steps)
	}
}

type churnFunc func(mg *MutableGraph, r *rng.Source)

func (f churnFunc) Churn(mg *MutableGraph, r *rng.Source) { f(mg, r) }
