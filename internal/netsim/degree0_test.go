package netsim

import (
	"testing"

	"manywalks/internal/graph"
	"manywalks/internal/rng"
)

// isolatedGraph builds a graph whose vertex 4 has no edges — the shape
// that previously drove an empty adjacency row into the neighbor sampler.
func isolatedGraph() *graph.Graph {
	b := graph.NewBuilder(5)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	b.AddEdge(3, 0)
	return b.Build("isolated-4")
}

// TestIsolatedOriginNoPanic pins the degree-0 guards: a walk query from an
// isolated origin must return a no-progress result on every path — the
// message-level simulator, the engine-backed batched path, and the raw
// SendToRandomNeighbor primitive — instead of panicking in the sampler.
func TestIsolatedOriginNoPanic(t *testing.T) {
	g := isolatedGraph()
	hasItem := make([]bool, g.N())
	hasItem[2] = true

	res := RunWalkQuery(g, 4, 3, 64, hasItem, rng.New(1))
	if res.Found || res.Messages != 0 {
		t.Fatalf("message-sim query from isolated origin: %+v; want not found, 0 messages", res)
	}

	res = RunWalkQueryBatched(g, 4, 3, 64, hasItem, 1)
	want := QueryResult{Found: false, Rounds: 64, Messages: 0}
	if res != want {
		t.Fatalf("batched query from isolated origin: %+v; want %+v", res, want)
	}

	// The item sitting on the isolated origin itself is still a 0-round
	// find on both paths.
	atOrigin := make([]bool, g.N())
	atOrigin[4] = true
	if res := RunWalkQuery(g, 4, 3, 64, atOrigin, rng.New(1)); !res.Found || res.Rounds != 0 {
		t.Fatalf("item at isolated origin (message sim): %+v", res)
	}
	if res := RunWalkQueryBatched(g, 4, 3, 64, atOrigin, 1); !res.Found || res.Rounds != 0 {
		t.Fatalf("item at isolated origin (batched): %+v", res)
	}

	// SendToRandomNeighbor itself: no message, token parked on the origin.
	net := New(g, &walkQuery{hasItem: hasItem}, rng.New(7))
	if to := net.SendToRandomNeighbor(4, walkToken{ttl: 3}, -1); to != 4 {
		t.Fatalf("SendToRandomNeighbor from isolated vertex forwarded to %d", to)
	}
	if net.MessagesSent() != 0 {
		t.Fatalf("isolated send counted %d messages", net.MessagesSent())
	}

	// Membership sampling from an isolated origin quiesces with no samples
	// rather than panicking.
	if s := RunMembershipSampling(g, 4, 3, 8, rng.New(9)); len(s) != 0 {
		t.Fatalf("membership sampling from isolated origin returned %v", s)
	}
}
