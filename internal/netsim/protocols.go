package netsim

import (
	"manywalks/internal/graph"
	"manywalks/internal/rng"
	"manywalks/internal/walk"
)

// QueryResult summarizes one search execution.
type QueryResult struct {
	Found    bool
	Rounds   int   // rounds until the first hit (or budget exhaustion)
	Messages int64 // total messages the protocol consumed
}

// walkToken is the payload of a random-walk query token.
type walkToken struct{ ttl int }

// walkQuery implements a k-token random-walk search for nodes where
// hasItem is true.
type walkQuery struct {
	hasItem    []bool
	found      bool
	foundRound int
}

// Deliver forwards the token or stops on a hit.
func (q *walkQuery) Deliver(net *Network, node NodeID, msg Message) {
	if q.found {
		return
	}
	if q.hasItem[node] {
		q.found = true
		q.foundRound = net.Round()
		net.Stop()
		return
	}
	tok := msg.Payload.(walkToken)
	if tok.ttl <= 0 {
		return
	}
	net.SendToRandomNeighbor(node, walkToken{ttl: tok.ttl - 1}, msg.Hops)
}

// RunWalkQuery launches k random-walk tokens from origin, each with the
// given TTL, and reports whether any token reached a node with the item.
// A hit at the origin itself is reported immediately as 0 rounds.
//
// This is the message-level reference simulator: every token hop is a
// delivered Message. The production path for large fleets is
// RunWalkQueryBatched, which drives the same protocol through the batched
// k-walk engine.
func RunWalkQuery(g *graph.Graph, origin NodeID, k, ttl int, hasItem []bool, r *rng.Source) QueryResult {
	q := &walkQuery{hasItem: hasItem}
	net := New(g, q, r)
	if hasItem[origin] {
		return QueryResult{Found: true, Rounds: 0, Messages: 0}
	}
	// An isolated origin launches no tokens (SendToRandomNeighbor is a
	// no-op there), so the network quiesces immediately: the query fails
	// with zero messages instead of panicking in the neighbor sampler.
	for i := 0; i < k; i++ {
		net.SendToRandomNeighbor(origin, walkToken{ttl: ttl - 1}, -1)
	}
	net.Run(ttl + 1)
	return QueryResult{Found: q.found, Rounds: q.foundRound, Messages: net.MessagesSent()}
}

// floodQuery implements TTL-bounded flooding search.
type floodQuery struct {
	hasItem    []bool
	visited    []bool
	found      bool
	foundRound int
}

type floodToken struct{ ttl int }

// Deliver marks the node and re-broadcasts while TTL remains.
func (q *floodQuery) Deliver(net *Network, node NodeID, msg Message) {
	if q.found {
		return
	}
	if q.hasItem[node] {
		q.found = true
		q.foundRound = net.Round()
		net.Stop()
		return
	}
	if q.visited[node] {
		return
	}
	q.visited[node] = true
	tok := msg.Payload.(floodToken)
	if tok.ttl <= 0 {
		return
	}
	net.Broadcast(node, floodToken{ttl: tok.ttl - 1}, msg.Hops)
}

// RunFloodQuery floods from origin with the given TTL.
func RunFloodQuery(g *graph.Graph, origin NodeID, ttl int, hasItem []bool, r *rng.Source) QueryResult {
	q := &floodQuery{hasItem: hasItem, visited: make([]bool, g.N())}
	net := New(g, q, r)
	if hasItem[origin] {
		return QueryResult{Found: true, Rounds: 0, Messages: 0}
	}
	q.visited[origin] = true
	net.Broadcast(origin, floodToken{ttl: ttl - 1}, -1)
	net.Run(ttl + 1)
	return QueryResult{Found: q.found, Rounds: q.foundRound, Messages: net.MessagesSent()}
}

// membershipSampler implements RaWMS-style sampling (the paper's ref [10]):
// a node learns a near-uniform random peer by sending a token on a random
// walk of fixed length L ≥ t_m and recording where it stops. For regular
// topologies the stationary distribution is uniform, so walk length beyond
// the mixing time yields uniform samples.
type membershipSampler struct {
	samples []NodeID
}

type sampleToken struct{ ttl int }

// Deliver forwards the token or records its final position.
func (s *membershipSampler) Deliver(net *Network, node NodeID, msg Message) {
	tok := msg.Payload.(sampleToken)
	if tok.ttl <= 0 {
		s.samples = append(s.samples, node)
		return
	}
	net.SendToRandomNeighbor(node, sampleToken{ttl: tok.ttl - 1}, msg.Hops)
}

// RunMembershipSampling launches count walk tokens of length walkLen from
// origin and returns the node each token stopped at. The returned sample
// approaches the stationary distribution as walkLen passes the mixing time.
func RunMembershipSampling(g *graph.Graph, origin NodeID, count, walkLen int, r *rng.Source) []NodeID {
	s := &membershipSampler{}
	net := New(g, s, r)
	for i := 0; i < count; i++ {
		net.SendToRandomNeighbor(origin, sampleToken{ttl: walkLen - 1}, -1)
	}
	net.Run(walkLen + 1)
	return s.samples
}

// RunWalkQueryBatched answers the same query as RunWalkQuery but drives
// the k tokens through the batched k-walk engine instead of per-message
// delivery: the tokens are k synchronized walkers from origin, and the
// query succeeds when any walker stands on a node with the item within ttl
// rounds. Determinism comes from the engine's per-walker streams under
// seed rather than a shared rng.Source.
//
// Message accounting matches the synchronized protocol: every token
// forwards once per round until the hit round (or TTL exhaustion), so the
// query costs k messages per elapsed round. Unlike RunWalkQuery, Rounds
// reports ttl (not 0) when the query fails.
func RunWalkQueryBatched(g *graph.Graph, origin NodeID, k, ttl int, hasItem []bool, seed uint64) QueryResult {
	if hasItem[origin] {
		return QueryResult{Found: true, Rounds: 0, Messages: 0}
	}
	if g.Degree(origin) == 0 {
		return noProgressResult(ttl)
	}
	return RunWalkQueryEngine(walk.NewEngine(g, walk.EngineOptions{}), origin, k, ttl, hasItem, seed)
}

// noProgressResult is the outcome of a walk query whose tokens cannot move:
// an isolated origin pins every token, so the query fails after ttl rounds
// having sent nothing.
func noProgressResult(ttl int) QueryResult {
	return QueryResult{Found: false, Rounds: ttl, Messages: 0}
}

// RunWalkQueryEngine is RunWalkQueryBatched on a caller-held engine, for
// workloads that issue many queries against one topology and want to pay
// the engine's table construction once. The query is one engine run: k
// walkers from origin observed by a target-set HitObserver, stopped at the
// exact hit round.
func RunWalkQueryEngine(eng *walk.Engine, origin NodeID, k, ttl int, hasItem []bool, seed uint64) QueryResult {
	if hasItem[origin] {
		return QueryResult{Found: true, Rounds: 0, Messages: 0}
	}
	if eng.Graph().Degree(origin) == 0 {
		return noProgressResult(ttl)
	}
	starts := make([]int32, k)
	for i := range starts {
		starts[i] = origin
	}
	hit := walk.NewHitObserver(hasItem)
	res, err := eng.Run(walk.RunSpec{Starts: starts, Seed: seed, MaxRounds: int64(ttl)}, hit)
	if err != nil {
		panic(err.Error()) // topology mismatch is a caller bug, as in RunWalkQuery
	}
	if res.Stopped {
		return QueryResult{Found: true, Rounds: int(res.Rounds), Messages: int64(k) * res.Rounds}
	}
	return QueryResult{Found: false, Rounds: ttl, Messages: int64(k) * int64(ttl)}
}

// RunWalkQueriesEngine answers one query per seed as a single trial-fused
// engine pass (walk.RunGrouped): every query is a lane of k walkers from
// origin, and finished queries retire so slow ones don't drag the batch.
// Each result is bit-for-bit equal to RunWalkQueryEngine with the same
// seed — the fusion is pure batching, not a protocol change — which is
// what lets the harness's search sweeps issue hundreds of queries per
// overlay at estimator throughput.
func RunWalkQueriesEngine(eng *walk.Engine, origin NodeID, k, ttl int, hasItem []bool, seeds []uint64) []QueryResult {
	out := make([]QueryResult, len(seeds))
	if len(seeds) == 0 {
		return out
	}
	if hasItem[origin] {
		for i := range out {
			out[i] = QueryResult{Found: true, Rounds: 0, Messages: 0}
		}
		return out
	}
	if eng.Graph().Degree(origin) == 0 {
		for i := range out {
			out[i] = noProgressResult(ttl)
		}
		return out
	}
	if int64(ttl) <= 0 || int64(ttl) > walk.MaxGroupedRounds {
		// Outside the grouped driver's budget range: answer query by query.
		for i, seed := range seeds {
			out[i] = RunWalkQueryEngine(eng, origin, k, ttl, hasItem, seed)
		}
		return out
	}
	starts := make([]int32, k)
	for i := range starts {
		starts[i] = origin
	}
	res, err := eng.RunGrouped(walk.GroupedRunSpec{
		Trials:    len(seeds),
		Starts:    starts,
		Seeds:     seeds,
		MaxRounds: int64(ttl),
	}, walk.NewGroupHitObserver(hasItem))
	if err != nil {
		panic(err.Error()) // topology mismatch is a caller bug, as in RunWalkQuery
	}
	for i := range out {
		if res.Stopped[i] {
			out[i] = QueryResult{Found: true, Rounds: int(res.Rounds[i]), Messages: int64(k) * res.Rounds[i]}
		} else {
			out[i] = QueryResult{Found: false, Rounds: ttl, Messages: int64(k) * int64(ttl)}
		}
	}
	return out
}
