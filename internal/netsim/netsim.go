// Package netsim is a synchronous message-passing network simulator over a
// graph topology, built to exercise the paper's motivating distributed
// systems: random-walk queries, flooding, and random-walk-based membership
// sampling (the querying/searching/self-stabilization applications of the
// paper's introduction, refs [8,10,17,21,30,31]).
//
// Execution is round-based: messages sent during round t are delivered at
// the beginning of round t+1; each delivery may send further messages. The
// simulator counts every message, giving the bandwidth side of the
// latency/bandwidth trade-off that k-walk search navigates.
package netsim

import (
	"fmt"

	"manywalks/internal/graph"
	"manywalks/internal/rng"
)

// NodeID identifies a network node (a graph vertex).
type NodeID = int32

// Message is an in-flight protocol message.
type Message struct {
	From, To NodeID
	Hops     int // hops traveled so far, maintained by the network
	Payload  any
}

// Handler reacts to a delivered message on behalf of a node and may send
// more messages through the network.
type Handler interface {
	// Deliver processes msg arriving at node during the current round.
	Deliver(net *Network, node NodeID, msg Message)
}

// Network is a synchronous network over an undirected topology.
type Network struct {
	g       *graph.Graph
	rand    *rng.Source
	handler Handler

	round    int
	inFlight []Message // sent this round, delivered next round
	sent     int64
	stopped  bool
}

// New returns a network over topology g; protocol logic is provided by
// handler and randomness by r.
func New(g *graph.Graph, handler Handler, r *rng.Source) *Network {
	if handler == nil {
		panic("netsim: nil handler")
	}
	return &Network{g: g, rand: r, handler: handler}
}

// Graph returns the topology.
func (n *Network) Graph() *graph.Graph { return n.g }

// Rand returns the network's random source, for protocol-level choices.
func (n *Network) Rand() *rng.Source { return n.rand }

// Round returns the current round number (0 before the first Step).
func (n *Network) Round() int { return n.round }

// MessagesSent returns the total messages sent so far.
func (n *Network) MessagesSent() int64 { return n.sent }

// Stop requests termination; Run returns at the end of the current round.
func (n *Network) Stop() { n.stopped = true }

// Stopped reports whether Stop has been called.
func (n *Network) Stopped() bool { return n.stopped }

// Send queues a message from -> to for delivery next round. to must be a
// neighbor of from (or equal to from for a self-message): the simulator
// enforces topology.
func (n *Network) Send(from, to NodeID, payload any, hops int) {
	if from != to && !n.g.HasEdge(from, to) {
		panic(fmt.Sprintf("netsim: send along non-edge (%d,%d)", from, to))
	}
	n.inFlight = append(n.inFlight, Message{From: from, To: to, Hops: hops + 1, Payload: payload})
	n.sent++
}

// SendToRandomNeighbor forwards payload from node to a uniformly random
// neighbor — the random-walk primitive. A degree-0 node has nowhere to
// forward: nothing is sent and from itself is returned, so a token parked
// on an isolated vertex makes no progress instead of panicking the
// simulator.
func (n *Network) SendToRandomNeighbor(from NodeID, payload any, hops int) NodeID {
	nb := n.g.Neighbors(from)
	if len(nb) == 0 {
		return from
	}
	to := nb[n.rand.Intn(len(nb))]
	n.Send(from, to, payload, hops)
	return to
}

// Broadcast sends payload from node to every neighbor (flooding primitive).
func (n *Network) Broadcast(from NodeID, payload any, hops int) {
	for _, to := range n.g.Neighbors(from) {
		n.Send(from, to, payload, hops)
	}
}

// Step delivers all in-flight messages (one synchronous round) and returns
// the number delivered.
func (n *Network) Step() int {
	batch := n.inFlight
	n.inFlight = nil
	n.round++
	for _, msg := range batch {
		n.handler.Deliver(n, msg.To, msg)
		if n.stopped {
			break
		}
	}
	return len(batch)
}

// Run steps the network until it quiesces (no messages in flight), Stop is
// called, or maxRounds elapse. It returns the number of rounds executed.
func (n *Network) Run(maxRounds int) int {
	start := n.round
	for n.round-start < maxRounds && !n.stopped && len(n.inFlight) > 0 {
		n.Step()
	}
	return n.round - start
}
