package netsim

import (
	"math"
	"testing"

	"manywalks/internal/graph"
	"manywalks/internal/rng"
)

// echoHandler counts deliveries and stops after a budget.
type echoHandler struct {
	delivered int
	budget    int
}

func (h *echoHandler) Deliver(net *Network, node NodeID, msg Message) {
	h.delivered++
	if h.delivered >= h.budget {
		net.Stop()
		return
	}
	net.SendToRandomNeighbor(node, msg.Payload, msg.Hops)
}

func TestNetworkRoundSemantics(t *testing.T) {
	g := graph.Cycle(6)
	h := &echoHandler{budget: 10}
	net := New(g, h, rng.New(1))
	net.SendToRandomNeighbor(0, "tok", -1)
	if net.Round() != 0 {
		t.Fatal("round before first step")
	}
	delivered := net.Step()
	if delivered != 1 || net.Round() != 1 {
		t.Fatalf("step delivered %d at round %d", delivered, net.Round())
	}
	rounds := net.Run(100)
	if h.delivered != 10 {
		t.Fatalf("delivered %d, want 10", h.delivered)
	}
	if rounds+1 != 10 {
		t.Fatalf("one delivery per round expected, rounds=%d", rounds)
	}
	if net.MessagesSent() != 10 {
		t.Fatalf("messages sent %d", net.MessagesSent())
	}
}

func TestSendEnforcesTopology(t *testing.T) {
	g := graph.Cycle(6)
	net := New(g, &echoHandler{budget: 1}, rng.New(1))
	defer func() {
		if recover() == nil {
			t.Fatal("non-edge send accepted")
		}
	}()
	net.Send(0, 3, nil, 0)
}

func TestHopsAccounting(t *testing.T) {
	g := graph.Path(5)
	var sawHops int
	h := handlerFunc(func(net *Network, node NodeID, msg Message) {
		sawHops = msg.Hops
		if msg.Hops < 3 {
			net.Send(node, node+1, nil, msg.Hops)
		}
	})
	net := New(g, h, rng.New(1))
	net.Send(0, 1, nil, -1)
	net.Run(10)
	if sawHops != 3 {
		t.Fatalf("final hops %d, want 3", sawHops)
	}
}

// handlerFunc adapts a function to Handler.
type handlerFunc func(net *Network, node NodeID, msg Message)

func (f handlerFunc) Deliver(net *Network, node NodeID, msg Message) { f(net, node, msg) }

func TestNilHandlerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil handler accepted")
		}
	}()
	New(graph.Cycle(3), nil, rng.New(1))
}

func TestWalkQueryFindsLocalItem(t *testing.T) {
	g := graph.Cycle(8)
	hasItem := make([]bool, 8)
	hasItem[0] = true
	res := RunWalkQuery(g, 0, 1, 100, hasItem, rng.New(2))
	if !res.Found || res.Rounds != 0 || res.Messages != 0 {
		t.Fatalf("local hit mishandled: %+v", res)
	}
}

func TestWalkQueryHitsNeighborhood(t *testing.T) {
	// On a small cycle with generous TTL the walk must find the item.
	g := graph.Cycle(16)
	hasItem := make([]bool, 16)
	hasItem[8] = true
	found := 0
	for trial := 0; trial < 50; trial++ {
		res := RunWalkQuery(g, 0, 2, 4000, hasItem, rng.NewStream(3, uint64(trial)))
		if res.Found {
			found++
			if res.Rounds <= 0 {
				t.Fatal("hit with non-positive round")
			}
		}
	}
	if found < 45 {
		t.Fatalf("walk query found item only %d/50 times", found)
	}
}

func TestWalkQueryTTLBudget(t *testing.T) {
	// With TTL 1 the walk inspects one neighbor; on a path with the item
	// two hops away it must fail and consume exactly k messages.
	g := graph.Path(5)
	hasItem := make([]bool, 5)
	hasItem[4] = true
	res := RunWalkQuery(g, 0, 3, 1, hasItem, rng.New(4))
	if res.Found {
		t.Fatal("TTL-1 walk cannot reach distance 2+")
	}
	if res.Messages != 3 {
		t.Fatalf("messages %d, want 3", res.Messages)
	}
}

func TestMoreWalkersFindFaster(t *testing.T) {
	// Expander topology: latency should drop roughly linearly with k.
	g := graph.MargulisExpander(12) // n = 144
	hasItem := make([]bool, g.N())
	hasItem[g.N()-1] = true
	meanRounds := func(k int) float64 {
		total := 0
		const trials = 300
		for trial := 0; trial < trials; trial++ {
			res := RunWalkQuery(g, 0, k, 1<<16, hasItem, rng.NewStream(5, uint64(k*1000+trial)))
			if !res.Found {
				t.Fatal("query failed with huge TTL")
			}
			total += res.Rounds
		}
		return float64(total) / trials
	}
	r1 := meanRounds(1)
	r8 := meanRounds(8)
	gain := r1 / r8
	// The min of 8 hitting times gains at least ≈8×; heavy upper tails of
	// the single-walk hitting distribution can push the ratio beyond k.
	if gain < 4 || gain > 25 {
		t.Fatalf("8-walker gain %.2f (r1=%.1f r8=%.1f), want ≥≈8", gain, r1, r8)
	}
}

func TestFloodQueryLatencyIsDistance(t *testing.T) {
	// Flooding reaches the item in exactly its BFS distance.
	g := graph.Torus2D(8)
	hasItem := make([]bool, g.N())
	target := int32(3*8 + 4) // distance 7 from vertex 0 on the torus
	hasItem[target] = true
	dist := g.BFS(0)[target]
	res := RunFloodQuery(g, 0, 64, hasItem, rng.New(6))
	if !res.Found {
		t.Fatal("flood failed")
	}
	if int32(res.Rounds) != dist {
		t.Fatalf("flood rounds %d != BFS distance %d", res.Rounds, dist)
	}
}

func TestFloodDisseminationCostVsWalkProbe(t *testing.T) {
	// The bandwidth half of the latency/bandwidth trade-off: full flooding
	// (no item anywhere, TTL past the diameter) costs Θ(m) messages because
	// every node rebroadcasts once, while a k-walk probe with TTL budget L
	// costs at most k·L. On the 1024-node torus: ≈2m ≈ 8200 versus 800.
	g := graph.Torus2D(32)
	noItem := make([]bool, g.N())
	flood := RunFloodQuery(g, 0, g.N(), noItem, rng.New(7))
	walks := RunWalkQuery(g, 0, 8, 100, noItem, rng.New(7))
	if flood.Found || walks.Found {
		t.Fatal("found a nonexistent item")
	}
	if walks.Messages != 8*100 {
		t.Fatalf("walk probe budget %d, want exactly 800", walks.Messages)
	}
	// Every vertex broadcasts once: deg(origin) + Σ_{v≠origin} deg(v),
	// minus the final ring's unexpanded frontier — at least m messages.
	if flood.Messages < int64(g.M()) {
		t.Fatalf("flood dissemination %d below m=%d", flood.Messages, g.M())
	}
	if flood.Messages < 4*walks.Messages {
		t.Fatalf("flood %d msgs vs walk probe %d — trade-off gap missing",
			flood.Messages, walks.Messages)
	}
}

func TestFloodTTLLimitsReach(t *testing.T) {
	g := graph.Path(10)
	hasItem := make([]bool, 10)
	hasItem[9] = true
	res := RunFloodQuery(g, 0, 3, hasItem, rng.New(8))
	if res.Found {
		t.Fatal("TTL-3 flood reached distance 9")
	}
}

func TestMembershipSamplingMatchesStationary(t *testing.T) {
	// Long walks stop according to the stationary distribution π ∝ degree
	// (uniform only on regular graphs — the simplified Margulis expander is
	// not regular, so test against π itself): chi-squared over n cells with
	// expected counts count·π(v) stays near its mean n-1.
	g := graph.MargulisExpander(8) // n = 64, t_m ≈ 5
	n := g.N()
	const count = 6400
	samples := RunMembershipSampling(g, 0, count, 64, rng.New(9))
	if len(samples) != count {
		t.Fatalf("samples %d", len(samples))
	}
	counts := make([]int, n)
	for _, s := range samples {
		counts[s]++
	}
	total := float64(g.TotalDegree())
	chi2 := 0.0
	for v, c := range counts {
		expected := count * float64(g.Degree(int32(v))) / total
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// dof = 63; 99.9% quantile ≈ 103. Allow generous slack.
	if chi2 > 110 {
		t.Fatalf("sampling far from stationary: chi2 = %.1f (dof 63)", chi2)
	}
	// And on an exactly regular expander the samples are uniform.
	reg, err := graph.ConnectedRandomRegular(64, 4, rng.New(11), 200)
	if err != nil {
		t.Fatal(err)
	}
	samples = RunMembershipSampling(reg, 0, count, 128, rng.New(12))
	uniform := make([]int, 64)
	for _, s := range samples {
		uniform[s]++
	}
	expected := float64(count) / 64
	chi2 = 0
	for _, c := range uniform {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	if chi2 > 110 {
		t.Fatalf("regular-graph sampling not uniform: chi2 = %.1f", chi2)
	}
}

func TestMembershipSamplingShortWalksBiased(t *testing.T) {
	// Walks shorter than the mixing time must remain visibly biased toward
	// the origin's neighborhood on a slowly mixing topology.
	g := graph.Cycle(64)
	samples := RunMembershipSampling(g, 0, 4000, 4, rng.New(10))
	nearOrigin := 0
	for _, s := range samples {
		d := int(s)
		if d > 32 {
			d = 64 - d
		}
		if d <= 4 {
			nearOrigin++
		}
	}
	frac := float64(nearOrigin) / float64(len(samples))
	if frac < 0.9 {
		t.Fatalf("short walks escaped the origin ball: frac=%v", frac)
	}
	if math.IsNaN(frac) {
		t.Fatal("NaN")
	}
}
