package netsim

import (
	"testing"

	"manywalks/internal/graph"
	"manywalks/internal/rng"
	"manywalks/internal/walk"
)

func TestBatchedWalkQueryFindsItem(t *testing.T) {
	g := graph.Torus2D(8)
	hasItem := make([]bool, g.N())
	hasItem[35] = true
	res := RunWalkQueryBatched(g, 0, 4, 4000, hasItem, 3)
	if !res.Found {
		t.Fatal("batched query should find the item within a generous TTL")
	}
	if res.Rounds <= 0 || res.Messages != int64(4)*int64(res.Rounds) {
		t.Fatalf("inconsistent accounting: %+v", res)
	}
}

func TestBatchedWalkQueryOriginHit(t *testing.T) {
	g := graph.Cycle(8)
	hasItem := make([]bool, 8)
	hasItem[0] = true
	res := RunWalkQueryBatched(g, 0, 3, 100, hasItem, 1)
	if !res.Found || res.Rounds != 0 || res.Messages != 0 {
		t.Fatalf("origin hit: %+v", res)
	}
}

func TestBatchedWalkQueryTTLExhaustion(t *testing.T) {
	// One token, TTL 1, item two hops away on a path: cannot be found.
	g := graph.Path(5)
	hasItem := make([]bool, 5)
	hasItem[4] = true
	res := RunWalkQueryBatched(g, 0, 1, 1, hasItem, 2)
	if res.Found {
		t.Fatal("TTL 1 cannot reach distance 4")
	}
	if res.Rounds != 1 || res.Messages != 1 {
		t.Fatalf("exhaustion accounting: %+v", res)
	}
}

func TestBatchedWalkQueryDeterministic(t *testing.T) {
	g := graph.MargulisExpander(8)
	hasItem := make([]bool, g.N())
	hasItem[g.N()-1] = true
	a := RunWalkQueryBatched(g, 0, 8, 1<<16, hasItem, 42)
	b := RunWalkQueryBatched(g, 0, 8, 1<<16, hasItem, 42)
	if a != b {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestBatchedAgreesWithMessageSimulator(t *testing.T) {
	// The two implementations sample the same protocol, so their hit rates
	// under a tight TTL must agree within Monte Carlo noise.
	g := graph.Torus2D(8)
	n := g.N()
	hasItem := make([]bool, n)
	for v := 0; v < n; v += 9 {
		if v != 0 {
			hasItem[v] = true
		}
	}
	const trials, k, ttl = 400, 2, 12
	foundMsg, foundBatch := 0, 0
	eng := walk.NewEngine(g, walk.EngineOptions{})
	for q := 0; q < trials; q++ {
		if RunWalkQuery(g, 0, k, ttl, hasItem, rng.NewStream(7, uint64(q))).Found {
			foundMsg++
		}
		if RunWalkQueryEngine(eng, 0, k, ttl, hasItem, uint64(q)).Found {
			foundBatch++
		}
	}
	pm, pb := float64(foundMsg)/trials, float64(foundBatch)/trials
	if pm < 0.05 || pm > 0.95 {
		t.Fatalf("test needs a non-degenerate hit rate, got %v", pm)
	}
	if diff := pm - pb; diff > 0.12 || diff < -0.12 {
		t.Fatalf("hit rates diverge: message %v vs batched %v", pm, pb)
	}
}

// TestWalkQueriesGroupedMatchSingle pins the trial-fused query batch
// against the one-run-per-query path: same seeds, same results.
func TestWalkQueriesGroupedMatchSingle(t *testing.T) {
	g := graph.Cycle(64)
	hasItem := make([]bool, g.N())
	hasItem[11] = true
	hasItem[40] = true
	eng := walk.NewEngine(g, walk.EngineOptions{})
	seeds := make([]uint64, 32)
	for i := range seeds {
		seeds[i] = uint64(i)*977 + 5
	}
	got := RunWalkQueriesEngine(eng, 0, 3, 4000, hasItem, seeds)
	for i, seed := range seeds {
		want := RunWalkQueryEngine(eng, 0, 3, 4000, hasItem, seed)
		if got[i] != want {
			t.Fatalf("query %d: grouped %+v != single %+v", i, got[i], want)
		}
	}
}
