package kernelflag

import (
	"errors"
	"strings"
	"testing"

	"manywalks/internal/walk"
)

func TestResolveParsesRegistrySyntax(t *testing.T) {
	k, err := Resolve("hopper:power:2", nil)
	if err != nil || k.String() != "hopper:power:2" {
		t.Fatalf("Resolve: %v, %v", k, err)
	}
	if _, err := Resolve("teleport", nil); err == nil || !strings.Contains(err.Error(), "unknown kernel") {
		t.Fatalf("unknown kernel error %v", err)
	}
}

func TestResolveHelpPrintsRegistry(t *testing.T) {
	for _, s := range []string{"help", "list", " HELP "} {
		var out strings.Builder
		k, err := Resolve(s, &out)
		if !errors.Is(err, ErrHelp) || k != nil {
			t.Fatalf("Resolve(%q) = %v, %v", s, k, err)
		}
		for _, f := range walk.KernelFamilies() {
			if !strings.Contains(out.String(), f.Syntax) {
				t.Fatalf("help output missing %q:\n%s", f.Syntax, out.String())
			}
		}
	}
}

func TestUsageNamesEveryFamily(t *testing.T) {
	u := Usage()
	for _, syntax := range walk.KernelSyntaxes() {
		if !strings.Contains(u, syntax) {
			t.Fatalf("usage %q missing %q", u, syntax)
		}
	}
}
