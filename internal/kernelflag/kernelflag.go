// Package kernelflag centralizes the CLIs' -kernel flag handling: one
// usage string derived from the kernel registry and one resolver that
// treats "help"/"list" as a request to print the registry listing. Every
// kernel-taking command routes its flag through Resolve, so a family added
// with walk.RegisterKernel shows up in each command's -h text and -kernel
// help output with no per-command wiring.
package kernelflag

import (
	"errors"
	"fmt"
	"io"
	"strings"

	"manywalks/internal/walk"
)

// Usage is the -kernel flag description shared by every kernel-taking CLI,
// naming each registered family's syntax.
func Usage() string {
	return fmt.Sprintf("walk kernel: %s (\"help\" lists all)",
		strings.Join(walk.KernelSyntaxes(), ", "))
}

// ErrHelp reports that Resolve printed the registry listing instead of
// parsing a kernel. Commands treat it like flag.ErrHelp: print nothing
// more and exit 0.
var ErrHelp = errors.New("kernel help printed")

// Resolve parses a -kernel flag value through the registry. The values
// "help" and "list" print walk.KernelHelp() to w and return ErrHelp.
func Resolve(s string, w io.Writer) (walk.Kernel, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "help", "list":
		fmt.Fprint(w, walk.KernelHelp())
		return nil, ErrHelp
	}
	return walk.ParseKernel(s)
}
