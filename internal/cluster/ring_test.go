package cluster

import (
	"reflect"
	"testing"
)

// splitmix64 generates well-spread test digests deterministically.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

var testReplicas = []string{"http://10.0.0.1:8371", "http://10.0.0.2:8371", "http://10.0.0.3:8371"}

// TestRingSequenceDeterministic pins that ring construction and failover
// order are pure functions of the replica set: two independently built
// rings agree on every digest, and each sequence names every replica
// exactly once with the home first.
func TestRingSequenceDeterministic(t *testing.T) {
	r1 := NewRing(testReplicas, 0)
	r2 := NewRing(testReplicas, 0)
	var buf1, buf2 []int
	for i := uint64(0); i < 500; i++ {
		d := splitmix64(i)
		buf1 = r1.Sequence(d, buf1)
		buf2 = r2.Sequence(d, buf2)
		if !reflect.DeepEqual(buf1, buf2) {
			t.Fatalf("digest %x: rings disagree: %v vs %v", d, buf1, buf2)
		}
		if len(buf1) != len(testReplicas) {
			t.Fatalf("digest %x: sequence %v not a full permutation", d, buf1)
		}
		seen := map[int]bool{}
		for _, p := range buf1 {
			if p < 0 || p >= len(testReplicas) || seen[p] {
				t.Fatalf("digest %x: bad sequence %v", d, buf1)
			}
			seen[p] = true
		}
	}
}

// TestRingBalance checks the vnode count spreads the keyspace roughly
// evenly: over many digests no replica owns less than half its fair share.
func TestRingBalance(t *testing.T) {
	r := NewRing(testReplicas, 0)
	counts := make([]int, len(testReplicas))
	var buf []int
	const keys = 30000
	for i := uint64(0); i < keys; i++ {
		buf = r.Sequence(splitmix64(i), buf)
		counts[buf[0]]++
	}
	fair := keys / len(testReplicas)
	for i, c := range counts {
		if c < fair/2 || c > 2*fair {
			t.Fatalf("replica %d owns %d of %d keys (fair %d): %v", i, c, keys, fair, counts)
		}
	}
}

// TestRingStability pins the consistent-hashing property the fleet relies
// on: removing one replica reassigns only the keys it owned — every key
// homed on a survivor keeps its home, and the displaced keys land on the
// replica that was already their first failover choice.
func TestRingStability(t *testing.T) {
	full := NewRing(testReplicas, 0)
	reduced := NewRing(testReplicas[:2], 0)
	var bufF, bufR []int
	moved := 0
	for i := uint64(0); i < 2000; i++ {
		d := splitmix64(i)
		bufF = full.Sequence(d, bufF)
		bufR = reduced.Sequence(d, bufR)
		if bufF[0] < 2 {
			if bufR[0] != bufF[0] {
				t.Fatalf("digest %x: home moved %d -> %d though its replica survived", d, bufF[0], bufR[0])
			}
			continue
		}
		moved++
		// Keys homed on the removed replica must land on their old failover
		// target — exactly where the router would already have retried them.
		next := bufF[1]
		if next == 2 {
			next = bufF[2]
		}
		if bufR[0] != next {
			t.Fatalf("digest %x: displaced key landed on %d, want failover target %d", d, bufR[0], next)
		}
	}
	if moved == 0 {
		t.Fatal("removed replica owned no keys; balance test should have caught this")
	}
}

// TestRingEmptyAndSingle covers the degenerate ring sizes.
func TestRingEmptyAndSingle(t *testing.T) {
	if got := NewRing(nil, 0).Sequence(42, nil); len(got) != 0 {
		t.Fatalf("empty ring sequence %v", got)
	}
	one := NewRing([]string{"http://solo:1"}, 0)
	for i := uint64(0); i < 10; i++ {
		if got := one.Sequence(splitmix64(i), nil); len(got) != 1 || got[0] != 0 {
			t.Fatalf("single ring sequence %v", got)
		}
	}
}
