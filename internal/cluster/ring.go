// Package cluster scales the serving layer past one box: a thin HTTP
// router consistent-hashes each request by its shape digest (the
// serve.RequestShape canonicalization) onto a ring of walkd replicas, so
// same-shape traffic lands on the same coalescer and batches exactly as
// wide as it would on a single box — scale-out widens the fleet without
// fragmenting the batches that make coalescing pay.
//
// Determinism is what makes the fleet cheap to operate: trial t of a
// request seeded s is a pure function of (s, t) on every replica, so
// replicas are bit-for-bit interchangeable. The router exploits that twice.
// Failover: a request that fails on its home replica (connection refused,
// 429 admission rejection, a mid-flight kill) is retried on the next
// replica in ring order and the client receives the byte-identical answer
// it would have gotten — no request is lost and no client can tell. Shadow
// verification: a configurable sample of answers is re-requested from a
// second replica and compared byte-for-byte; any divergence (a corrupted
// replica, a version skew) surfaces as a counter instead of silent wrong
// answers.
package cluster

import (
	"sort"
	"strconv"
)

// DefaultVNodes is the virtual-node count per replica: enough points that
// the keyspace split between replicas stays within a few percent of even.
const DefaultVNodes = 64

// Ring is a consistent-hash ring over a fixed replica set. Each replica
// owns VNodes pseudo-randomly placed points; a digest routes to the owner
// of the first point clockwise from it. The construction is a pure
// function of the replica addresses, so every router instance over the
// same fleet — and every restart — agrees on placement.
type Ring struct {
	points []ringPoint
	n      int
}

type ringPoint struct {
	hash    uint64
	replica int
}

// NewRing builds the ring over replicas (identified by index; hashed by
// address so placement survives restarts and reordering-insensitive
// configs). vnodes <= 0 selects DefaultVNodes.
func NewRing(replicas []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	r := &Ring{n: len(replicas)}
	r.points = make([]ringPoint, 0, len(replicas)*vnodes)
	for i, addr := range replicas {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: pointHash(addr, v), replica: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].replica < r.points[b].replica
	})
	return r
}

// Replicas reports the replica count.
func (r *Ring) Replicas() int { return r.n }

// Sequence appends to buf the full replica order for digest: the first
// index is the shape's home, the rest the deterministic failover order
// (each subsequent index is the next distinct replica clockwise). Every
// replica appears exactly once. buf is reused to keep the router's hot
// path allocation-free.
func (r *Ring) Sequence(digest uint64, buf []int) []int {
	buf = buf[:0]
	if r.n == 0 {
		return buf
	}
	i := sort.Search(len(r.points), func(j int) bool { return r.points[j].hash >= digest })
	for len(buf) < r.n {
		if i == len(r.points) {
			i = 0
		}
		p := r.points[i].replica
		if !containsInt(buf, p) {
			buf = append(buf, p)
		}
		i++
	}
	return buf
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// pointHash places vnode v of addr on the ring: FNV-1a over "addr#v",
// pushed through a finalizing mixer. The finalizer matters: raw FNV of
// short, similar strings is uneven in its high bits, and arc ownership is
// decided by the high-bit order of the points — without the mix a replica
// can own a small fraction of its fair keyspace share.
func pointHash(addr string, v int) uint64 {
	h := uint64(1469598103934665603)
	mix := func(b byte) {
		h ^= uint64(b)
		h *= 1099511628211
	}
	for i := 0; i < len(addr); i++ {
		mix(addr[i])
	}
	mix('#')
	for _, b := range strconv.AppendInt(nil, int64(v), 10) {
		mix(b)
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}
