package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"manywalks/internal/serve"
	"manywalks/internal/walk"
)

// Policy selects how the router spreads traffic over the fleet.
type Policy uint8

const (
	// Affinity routes each request to the ring owner of its shape digest,
	// so all concurrent traffic for one shape meets in one coalescer and
	// batches as wide as on a single box. This is the default and the point
	// of the package.
	Affinity Policy = iota
	// RoundRobin ignores shape and rotates across replicas — the baseline
	// affinity is measured against: it fragments each shape's batch stream
	// N ways, multiplying grouped passes.
	RoundRobin
)

// ParsePolicy parses "affinity" or "roundrobin".
func ParsePolicy(s string) (Policy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "affinity", "":
		return Affinity, nil
	case "roundrobin", "round-robin", "rr":
		return RoundRobin, nil
	}
	return Affinity, fmt.Errorf("cluster: unknown policy %q (want affinity or roundrobin)", s)
}

func (p Policy) String() string {
	if p == RoundRobin {
		return "roundrobin"
	}
	return "affinity"
}

// Options configures a Router.
type Options struct {
	// Backends are the walkd replica base URLs (host:port accepted;
	// "http://" is assumed). At least one is required.
	Backends []string
	// Policy selects shape-affinity (default) or round-robin routing.
	Policy Policy
	// VNodes is the ring's virtual-node count per replica (0 = DefaultVNodes).
	VNodes int
	// ShadowSample re-requests every Nth successful answer from a second
	// replica and byte-compares the bodies, counting mismatches. 0 disables.
	// The sample is counter-based, not random, so a run's check count is
	// deterministic.
	ShadowSample int
	// HealthInterval is the /healthz polling period (0 = 1s; negative
	// disables the poller — passive marking from request failures still
	// runs, which is what deterministic tests want).
	HealthInterval time.Duration
	// MaxIdlePerBackend sizes the keep-alive pool toward each replica; it
	// should be at least the expected client concurrency so retries and
	// shadow checks never stall on connection setup (0 = 512).
	MaxIdlePerBackend int
}

type backendState struct {
	url      string
	healthy  atomic.Bool
	requests atomic.Int64 // answers served through this replica
	failures atomic.Int64 // failed attempts (transport errors, 429, 503)
}

// Router is the shape-affinity HTTP front end over a walkd fleet. It is an
// http.Handler exposing the walkd wire surface; clients need no changes.
type Router struct {
	opts     Options
	ring     *Ring
	backends []*backendState
	client   *http.Client
	mux      *http.ServeMux

	rr      atomic.Uint64 // round-robin rotation
	shadowN atomic.Uint64 // shadow-sample counter

	routed           atomic.Int64 // answers delivered to clients
	failovers        atomic.Int64 // answers that needed >= 1 retry
	unrouted         atomic.Int64 // requests no replica could serve
	shadowChecks     atomic.Int64
	shadowMismatches atomic.Int64

	stop chan struct{}
	wg   sync.WaitGroup
}

// New builds a router over opts.Backends and starts its health poller
// (unless disabled). Close releases both.
func New(opts Options) (*Router, error) {
	if len(opts.Backends) == 0 {
		return nil, errors.New("cluster: at least one backend required")
	}
	if opts.ShadowSample < 0 {
		return nil, fmt.Errorf("cluster: shadow sample %d must be >= 0", opts.ShadowSample)
	}
	perBackend := opts.MaxIdlePerBackend
	if perBackend <= 0 {
		perBackend = 512
	}
	rt := &Router{
		opts: opts,
		stop: make(chan struct{}),
		client: &http.Client{Transport: &http.Transport{
			MaxIdleConns:        perBackend * len(opts.Backends),
			MaxIdleConnsPerHost: perBackend,
			IdleConnTimeout:     90 * time.Second,
		}},
	}
	urls := make([]string, len(opts.Backends))
	for i, b := range opts.Backends {
		u := strings.TrimRight(strings.TrimSpace(b), "/")
		if u == "" {
			return nil, fmt.Errorf("cluster: empty backend address at index %d", i)
		}
		if !strings.Contains(u, "://") {
			u = "http://" + u
		}
		urls[i] = u
		bs := &backendState{url: u}
		bs.healthy.Store(true)
		rt.backends = append(rt.backends, bs)
	}
	rt.ring = NewRing(urls, opts.VNodes)
	rt.mux = rt.buildMux()
	if opts.HealthInterval >= 0 {
		interval := opts.HealthInterval
		if interval == 0 {
			interval = time.Second
		}
		rt.wg.Add(1)
		go rt.pollHealth(interval)
	}
	return rt, nil
}

// Close stops the health poller and releases idle connections.
func (rt *Router) Close() {
	close(rt.stop)
	rt.wg.Wait()
	rt.client.CloseIdleConnections()
}

func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	rt.mux.ServeHTTP(w, r)
}

// BackendStats is one replica's row in the router's /v1/stats.
type BackendStats struct {
	URL      string          `json:"url"`
	Healthy  bool            `json:"healthy"`
	Requests int64           `json:"requests"`
	Failures int64           `json:"failures"`
	Serve    json.RawMessage `json:"serve,omitempty"`
}

// Stats is the router's /v1/stats body.
type Stats struct {
	Policy           string         `json:"policy"`
	Routed           int64          `json:"routed"`
	Failovers        int64          `json:"failovers"`
	Unrouted         int64          `json:"unrouted"`
	ShadowChecks     int64          `json:"shadow_checks"`
	ShadowMismatches int64          `json:"shadow_mismatches"`
	Backends         []BackendStats `json:"backends"`
}

// Stats snapshots the router counters (without the per-backend Serve
// payloads the HTTP endpoint adds).
func (rt *Router) Stats() Stats {
	st := Stats{
		Policy:           rt.opts.Policy.String(),
		Routed:           rt.routed.Load(),
		Failovers:        rt.failovers.Load(),
		Unrouted:         rt.unrouted.Load(),
		ShadowChecks:     rt.shadowChecks.Load(),
		ShadowMismatches: rt.shadowMismatches.Load(),
	}
	for _, b := range rt.backends {
		st.Backends = append(st.Backends, BackendStats{
			URL: b.url, Healthy: b.healthy.Load(),
			Requests: b.requests.Load(), Failures: b.failures.Load(),
		})
	}
	return st
}

func (rt *Router) buildMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
	})
	mux.HandleFunc("/v1/graphs", rt.proxyGet("/v1/graphs"))
	mux.HandleFunc("/v1/stats", func(w http.ResponseWriter, r *http.Request) {
		st := rt.Stats()
		for i, b := range rt.backends {
			if raw, err := rt.fetchRaw(b.url + "/v1/stats"); err == nil {
				st.Backends[i].Serve = raw
			}
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("/v1/query", rt.proxyShaped(serve.ShapeHit))
	mux.HandleFunc("/v1/hitting", rt.proxyShaped(serve.ShapeHit))
	mux.HandleFunc("/v1/cover", rt.proxyShaped(serve.ShapeCover))
	mux.HandleFunc("/v1/meeting", rt.proxyShaped(serve.ShapeMeet))
	return mux
}

// shapeFields are the request fields the router reads to classify a
// request; everything else passes through opaquely.
type shapeFields struct {
	Graph   string  `json:"graph"`
	Kernel  string  `json:"kernel"`
	Targets []int32 `json:"targets"`
	Target  int32   `json:"target"`
	Stream  bool    `json:"stream"`
}

// proxyShaped builds the handler for one POST endpoint: classify the
// request into its RequestShape, pick the replica order for the active
// policy, and walk that order until a replica answers.
func (rt *Router) proxyShaped(class serve.ShapeClass) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "POST only"})
			return
		}
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request body: " + err.Error()})
			return
		}
		// Undecodable bodies still route (to the zero shape's home) so the
		// backend produces the canonical 400; the router adds no opinions.
		var sf shapeFields
		_ = json.Unmarshal(body, &sf)
		targets := sf.Targets
		if r.URL.Path == "/v1/hitting" {
			targets = []int32{sf.Target}
		}
		shape := serve.RequestShape{
			Graph:   sf.Graph,
			Kernel:  canonicalKernel(sf.Kernel),
			Class:   class,
			Targets: targets,
		}
		order := rt.replicaOrder(shape.Digest())
		rt.forward(w, r, body, order, sf.Stream)
	}
}

// canonicalKernel maps the wire kernel string to its canonical spelling so
// e.g. "lazy" and "lazy:0.5" share a ring position; unparseable strings
// route on their raw spelling (the backend rejects them anyway).
func canonicalKernel(s string) string {
	k, err := walk.ParseKernel(s)
	if err != nil {
		return s
	}
	return k.String()
}

// replicaOrder is the attempt order for one request: under Affinity the
// ring sequence of the shape digest (home first, deterministic failover
// order after); under RoundRobin a rotation that ignores shape.
func (rt *Router) replicaOrder(digest uint64) []int {
	n := len(rt.backends)
	order := make([]int, 0, n)
	if rt.opts.Policy == RoundRobin {
		start := int(rt.rr.Add(1)-1) % n
		for i := 0; i < n; i++ {
			order = append(order, (start+i)%n)
		}
		return order
	}
	return rt.ring.Sequence(digest, order)
}

// forward walks order until a replica answers, trying healthy replicas
// before unhealthy ones (so a fleet that is entirely marked down is still
// attempted rather than hard-failed on stale health state). Transport
// failures and 503 mark the replica unhealthy; 429 is pure backpressure
// and does not. Because replicas are deterministic, a retried answer is
// byte-identical to the one the dead replica would have produced — the
// client cannot observe the failover.
func (rt *Router) forward(w http.ResponseWriter, r *http.Request, body []byte, order []int, stream bool) {
	attempts := make([]int, 0, len(order))
	for _, i := range order {
		if rt.backends[i].healthy.Load() {
			attempts = append(attempts, i)
		}
	}
	for _, i := range order {
		if !rt.backends[i].healthy.Load() {
			attempts = append(attempts, i)
		}
	}
	var lastErr string
	for attempt, i := range attempts {
		b := rt.backends[i]
		resp, err := rt.post(r.Context(), b.url+r.URL.Path, body)
		if err != nil {
			if r.Context().Err() != nil {
				return // client gone; nothing to answer
			}
			b.healthy.Store(false)
			b.failures.Add(1)
			lastErr = err.Error()
			continue
		}
		switch resp.StatusCode {
		case http.StatusTooManyRequests:
			drain(resp)
			b.failures.Add(1)
			lastErr = "429 from " + b.url
			continue
		case http.StatusServiceUnavailable:
			drain(resp)
			b.healthy.Store(false)
			b.failures.Add(1)
			lastErr = "503 from " + b.url
			continue
		}
		b.requests.Add(1)
		rt.routed.Add(1)
		if attempt > 0 {
			rt.failovers.Add(1)
		}
		if stream {
			rt.copyStream(w, resp)
			return
		}
		answer, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			// Body died mid-read after a good header: too late to retry
			// transparently (the status line is already decided), surface it.
			writeJSON(w, http.StatusBadGateway, errorBody{Error: "backend read: " + err.Error()})
			return
		}
		if resp.StatusCode == http.StatusOK && rt.opts.ShadowSample > 0 &&
			rt.shadowN.Add(1)%uint64(rt.opts.ShadowSample) == 0 {
			rt.shadowVerify(r.Context(), r.URL.Path, body, answer, attempts, i)
		}
		copyHeader(w, resp)
		w.WriteHeader(resp.StatusCode)
		_, _ = w.Write(answer)
		return
	}
	rt.unrouted.Add(1)
	msg := "no replica available"
	if lastErr != "" {
		msg += ": " + lastErr
	}
	writeJSON(w, http.StatusBadGateway, errorBody{Error: msg})
}

// shadowVerify re-requests the answer from the next distinct healthy
// replica and byte-compares. Sound because replica answers are
// deterministic encodings: any byte difference is a real divergence.
func (rt *Router) shadowVerify(ctx context.Context, path string, body, answer []byte, attempts []int, served int) {
	for _, i := range attempts {
		if i == served || !rt.backends[i].healthy.Load() {
			continue
		}
		resp, err := rt.post(ctx, rt.backends[i].url+path, body)
		if err != nil {
			return // can't check, don't guess
		}
		second, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			return
		}
		rt.shadowChecks.Add(1)
		if !bytes.Equal(answer, second) {
			rt.shadowMismatches.Add(1)
		}
		return
	}
}

// copyStream relays a chunked NDJSON response, flushing per read so wave
// progress lines reach the client as they are produced.
func (rt *Router) copyStream(w http.ResponseWriter, resp *http.Response) {
	defer resp.Body.Close()
	copyHeader(w, resp)
	w.WriteHeader(resp.StatusCode)
	flusher, _ := w.(http.Flusher)
	buf := make([]byte, 32<<10)
	for {
		n, err := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}

func (rt *Router) post(ctx context.Context, url string, body []byte) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	return rt.client.Do(req)
}

// proxyGet forwards a GET endpoint to the first replica that answers, in
// index order (the payload is replica-independent).
func (rt *Router) proxyGet(path string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		for pass := 0; pass < 2; pass++ {
			for _, b := range rt.backends {
				if (pass == 0) != b.healthy.Load() {
					continue
				}
				req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, b.url+path, nil)
				if err != nil {
					continue
				}
				resp, err := rt.client.Do(req)
				if err != nil {
					b.healthy.Store(false)
					continue
				}
				answer, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					continue
				}
				copyHeader(w, resp)
				w.WriteHeader(resp.StatusCode)
				_, _ = w.Write(answer)
				return
			}
		}
		writeJSON(w, http.StatusBadGateway, errorBody{Error: "no replica available"})
	}
}

// fetchRaw GETs url and returns the body if it is valid JSON (used to
// embed backend stats verbatim).
func (rt *Router) fetchRaw(url string) (json.RawMessage, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil || !json.Valid(raw) {
		return nil, errors.New("cluster: bad stats body")
	}
	return json.RawMessage(raw), nil
}

// pollHealth probes every replica's /healthz each interval, restoring
// replicas that passive marking took down once they answer again.
func (rt *Router) pollHealth(interval time.Duration) {
	defer rt.wg.Done()
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-ticker.C:
			for _, b := range rt.backends {
				b.healthy.Store(rt.probe(b.url))
			}
		}
	}
}

func (rt *Router) probe(url string) bool {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return false
	}
	drain(resp)
	return resp.StatusCode == http.StatusOK
}

type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func copyHeader(w http.ResponseWriter, resp *http.Response) {
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
}

func drain(resp *http.Response) {
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
	resp.Body.Close()
}
