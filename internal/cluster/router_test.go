package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"manywalks/internal/graph"
	"manywalks/internal/httpapi"
	"manywalks/internal/netsim"
	"manywalks/internal/serve"
	"manywalks/internal/walk"
)

// testBackend is one in-process walkd replica plus a hit counter.
type testBackend struct {
	ts   *httptest.Server
	srv  *serve.Server
	hits atomic.Int64
}

// newBackend builds a real walkd-shaped replica over graphs.
func newBackend(t *testing.T, graphs string) *testBackend {
	t.Helper()
	srv, err := httpapi.BuildServer(graphs, serve.Options{Tick: 100 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	b := &testBackend{srv: srv}
	mux := httpapi.NewMux(srv, 10*time.Second)
	b.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b.hits.Add(1)
		mux.ServeHTTP(w, r)
	}))
	t.Cleanup(func() {
		b.ts.Close()
		srv.Close()
	})
	return b
}

func newFleet(t *testing.T, n int, graphs string) ([]*testBackend, []string) {
	t.Helper()
	backends := make([]*testBackend, n)
	urls := make([]string, n)
	for i := range backends {
		backends[i] = newBackend(t, graphs)
		urls[i] = backends[i].ts.URL
	}
	return backends, urls
}

func newTestRouter(t *testing.T, opts Options) *Router {
	t.Helper()
	if opts.HealthInterval == 0 {
		opts.HealthInterval = -1 // deterministic tests drive health passively
	}
	rt, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	return rt
}

func postBody(t *testing.T, client *http.Client, url string, body any) (int, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}

func queryBody(target int32, seed uint64) map[string]any {
	return map[string]any{
		"graph": "g", "origin": 3, "k": 2, "ttl": 4096,
		"targets": []int32{target}, "seed": seed,
	}
}

// queryShape mirrors the router's classification of queryBody.
func queryShape(target int32) serve.RequestShape {
	return serve.RequestShape{Graph: "g", Kernel: "uniform", Class: serve.ShapeHit, Targets: []int32{target}}
}

// wireQuery renders the exact bytes a replica answers res with: the
// deterministic encoder's output plus the Encoder's trailing newline.
func wireQuery(res netsim.QueryResult) []byte {
	b, _ := json.Marshal(httpapi.QueryResponse{Found: res.Found, Rounds: res.Rounds, Messages: res.Messages})
	return append(b, '\n')
}

// TestParsePolicy pins the policy flag syntax.
func TestParsePolicy(t *testing.T) {
	for s, want := range map[string]Policy{"affinity": Affinity, "": Affinity, "roundrobin": RoundRobin, "RR": RoundRobin, "round-robin": RoundRobin} {
		got, err := ParsePolicy(s)
		if err != nil || got != want {
			t.Fatalf("ParsePolicy(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParsePolicy("random"); err == nil {
		t.Fatal("bad policy accepted")
	}
	if Affinity.String() != "affinity" || RoundRobin.String() != "roundrobin" {
		t.Fatal("policy names changed")
	}
}

// TestRouterOptionErrors pins constructor validation.
func TestRouterOptionErrors(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Fatal("empty backend list accepted")
	}
	if _, err := New(Options{Backends: []string{"  "}, HealthInterval: -1}); err == nil {
		t.Fatal("blank backend accepted")
	}
	if _, err := New(Options{Backends: []string{"x"}, ShadowSample: -1, HealthInterval: -1}); err == nil {
		t.Fatal("negative shadow sample accepted")
	}
}

// TestAffinityRouting pins the tentpole behavior: every request of a shape
// lands on that shape's ring home, so one replica sees the whole shape's
// stream and can batch it.
func TestAffinityRouting(t *testing.T) {
	backends, urls := newFleet(t, 3, "g=margulis:8")
	rt := newTestRouter(t, Options{Backends: urls})
	front := httptest.NewServer(rt)
	defer front.Close()

	ring := NewRing(urls, 0)
	wantHits := make([]int64, len(backends))
	const perShape = 5
	for shape := int32(0); shape < 4; shape++ {
		home := ring.Sequence(queryShape(10+shape).Digest(), nil)[0]
		wantHits[home] += perShape
		for seed := uint64(0); seed < perShape; seed++ {
			code, body := postBody(t, front.Client(), front.URL+"/v1/query", queryBody(10+shape, seed))
			if code != http.StatusOK {
				t.Fatalf("shape %d seed %d: status %d: %s", shape, seed, code, body)
			}
		}
	}
	for i, b := range backends {
		if got := b.hits.Load(); got != wantHits[i] {
			t.Fatalf("backend %d served %d requests, want %d (affinity broken)", i, got, wantHits[i])
		}
	}
	st := rt.Stats()
	if st.Routed != 20 || st.Failovers != 0 || st.Unrouted != 0 {
		t.Fatalf("stats %+v", st)
	}
}

// TestRoundRobinDistribution pins the baseline policy: same-shape traffic
// rotates evenly across the fleet instead of meeting in one coalescer.
func TestRoundRobinDistribution(t *testing.T) {
	backends, urls := newFleet(t, 3, "g=margulis:8")
	rt := newTestRouter(t, Options{Backends: urls, Policy: RoundRobin})
	front := httptest.NewServer(rt)
	defer front.Close()
	for seed := uint64(0); seed < 30; seed++ {
		if code, body := postBody(t, front.Client(), front.URL+"/v1/query", queryBody(10, seed)); code != http.StatusOK {
			t.Fatalf("seed %d: status %d: %s", seed, code, body)
		}
	}
	for i, b := range backends {
		if got := b.hits.Load(); got != 10 {
			t.Fatalf("backend %d served %d, want exactly 10 under round-robin", i, got)
		}
	}
}

// TestFailoverDeterminismMidLoad is the zero-loss bit-for-bit failover
// test: a 3-replica fleet serves concurrent load, one replica — the home
// of a shape under active traffic — is killed mid-load, and every single
// answer (including every retried one) must be byte-identical to the
// standalone sequential computation. No request may be lost.
func TestFailoverDeterminismMidLoad(t *testing.T) {
	backends, urls := newFleet(t, 3, "g=margulis:8")
	rt := newTestRouter(t, Options{Backends: urls})
	front := httptest.NewServer(rt)
	defer front.Close()

	g := graph.MargulisExpander(8)
	eng := walk.NewEngine(g, walk.EngineOptions{Workers: 1})
	const shapes, seedsPerPhase = 6, 10
	hasItem := make([][]bool, shapes)
	for i := range hasItem {
		hasItem[i] = make([]bool, g.N())
		hasItem[i][10+i] = true
	}
	want := func(shape int, seed uint64) []byte {
		return wireQuery(netsim.RunWalkQueryEngine(eng, 3, 2, 4096, hasItem[shape], seed))
	}

	runPhase := func(seedBase uint64) {
		var wg sync.WaitGroup
		errs := make(chan string, shapes*seedsPerPhase)
		for shape := 0; shape < shapes; shape++ {
			for s := uint64(0); s < seedsPerPhase; s++ {
				wg.Add(1)
				go func(shape int, seed uint64) {
					defer wg.Done()
					code, body := postBody(t, front.Client(), front.URL+"/v1/query", queryBody(int32(10+shape), seed))
					if code != http.StatusOK {
						errs <- fmt.Sprintf("shape %d seed %d: status %d: %s", shape, seed, code, body)
						return
					}
					if exp := want(shape, seed); !bytes.Equal(body, exp) {
						errs <- fmt.Sprintf("shape %d seed %d: answer %q != standalone %q", shape, seed, body, exp)
					}
				}(shape, seedBase+s)
			}
		}
		wg.Wait()
		close(errs)
		for e := range errs {
			t.Fatal(e)
		}
	}

	runPhase(0)

	// Kill the replica that homes shape 0 — traffic for it continues below.
	victim := NewRing(urls, 0).Sequence(queryShape(10).Digest(), nil)[0]
	backends[victim].ts.CloseClientConnections()
	backends[victim].ts.Close()

	runPhase(seedsPerPhase)

	// One more shape-0 request strictly after the kill: it must fail over
	// and still answer byte-identically.
	code, body := postBody(t, front.Client(), front.URL+"/v1/query", queryBody(10, 999))
	if code != http.StatusOK {
		t.Fatalf("post-kill query status %d: %s", code, body)
	}
	if exp := want(0, 999); !bytes.Equal(body, exp) {
		t.Fatalf("post-kill answer %q != standalone %q", body, exp)
	}

	st := rt.Stats()
	if st.Unrouted != 0 {
		t.Fatalf("lost %d requests", st.Unrouted)
	}
	if total := int64(2*shapes*seedsPerPhase + 1); st.Routed != total {
		t.Fatalf("routed %d, want %d", st.Routed, total)
	}
	if st.Failovers < 1 {
		t.Fatalf("no failovers recorded despite a dead home replica: %+v", st)
	}
	if !st.Backends[victim].Healthy {
		// Passive marking took the victim down; good.
	} else {
		t.Fatalf("victim %d still marked healthy: %+v", victim, st.Backends)
	}
}

// TestOverloadFailover pins 429 handling: an admission-rejecting replica
// is retried elsewhere (without being marked unhealthy — backpressure is
// not death), and the client still gets the exact answer.
func TestOverloadFailover(t *testing.T) {
	overloaded := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusTooManyRequests)
		_, _ = w.Write([]byte(`{"error":"overloaded"}` + "\n"))
	}))
	defer overloaded.Close()
	real := newBackend(t, "g=margulis:8")
	urls := []string{overloaded.URL, real.ts.URL}
	rt := newTestRouter(t, Options{Backends: urls})
	front := httptest.NewServer(rt)
	defer front.Close()

	// Find a shape homed on the overloaded replica so the failover path is
	// actually exercised (ring placement depends on the test server ports).
	ring := NewRing(urls, 0)
	target := int32(-1)
	for c := int32(10); c < 40; c++ {
		if ring.Sequence(queryShape(c).Digest(), nil)[0] == 0 {
			target = c
			break
		}
	}
	if target < 0 {
		t.Fatal("no shape homed on the overloaded replica in 30 tries")
	}

	g := graph.MargulisExpander(8)
	eng := walk.NewEngine(g, walk.EngineOptions{Workers: 1})
	hasItem := make([]bool, g.N())
	hasItem[target] = true
	code, body := postBody(t, front.Client(), front.URL+"/v1/query", queryBody(target, 7))
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	if exp := wireQuery(netsim.RunWalkQueryEngine(eng, 3, 2, 4096, hasItem, 7)); !bytes.Equal(body, exp) {
		t.Fatalf("answer %q != standalone %q", body, exp)
	}
	st := rt.Stats()
	if st.Failovers != 1 || st.Unrouted != 0 {
		t.Fatalf("stats %+v, want exactly one failover", st)
	}
	if !st.Backends[0].Healthy {
		t.Fatal("429 must not mark a replica unhealthy (backpressure is not death)")
	}
	if st.Backends[0].Failures != 1 {
		t.Fatalf("overloaded replica failures %d, want 1", st.Backends[0].Failures)
	}
}

// TestShadowVerify pins the sampled second-replica byte comparison: over
// identical replicas every check passes; against a divergent replica (same
// graph id, different topology) mismatches surface as counters.
func TestShadowVerify(t *testing.T) {
	_, urls := newFleet(t, 2, "g=margulis:8")
	rt := newTestRouter(t, Options{Backends: urls, ShadowSample: 1})
	front := httptest.NewServer(rt)
	defer front.Close()
	for seed := uint64(0); seed < 8; seed++ {
		if code, body := postBody(t, front.Client(), front.URL+"/v1/query", queryBody(10, seed)); code != http.StatusOK {
			t.Fatalf("seed %d: status %d: %s", seed, code, body)
		}
	}
	st := rt.Stats()
	if st.ShadowChecks != 8 || st.ShadowMismatches != 0 {
		t.Fatalf("identical replicas: %d checks, %d mismatches (want 8, 0)", st.ShadowChecks, st.ShadowMismatches)
	}

	good := newBackend(t, "g=margulis:8")
	divergent := newBackend(t, "g=cycle:64") // same id, different graph: answers differ
	rt2 := newTestRouter(t, Options{Backends: []string{good.ts.URL, divergent.ts.URL}, ShadowSample: 1})
	front2 := httptest.NewServer(rt2)
	defer front2.Close()
	for seed := uint64(0); seed < 8; seed++ {
		if code, _ := postBody(t, front2.Client(), front2.URL+"/v1/query", queryBody(10, seed)); code != http.StatusOK {
			t.Fatalf("seed %d rejected", seed)
		}
	}
	st2 := rt2.Stats()
	if st2.ShadowChecks == 0 || st2.ShadowMismatches == 0 {
		t.Fatalf("divergent replica undetected: %+v", st2)
	}
}

// TestAllBackendsDown pins the exhaustion path: when no replica answers
// the router reports 502 and counts the request as unrouted.
func TestAllBackendsDown(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	url := dead.URL
	dead.Close()
	rt := newTestRouter(t, Options{Backends: []string{url}})
	front := httptest.NewServer(rt)
	defer front.Close()
	code, body := postBody(t, front.Client(), front.URL+"/v1/query", queryBody(10, 0))
	if code != http.StatusBadGateway {
		t.Fatalf("status %d: %s", code, body)
	}
	if st := rt.Stats(); st.Unrouted != 1 || st.Routed != 0 {
		t.Fatalf("stats %+v", st)
	}
}

// TestRouterStatsAndGraphs pins the router's own GET surface: /v1/graphs
// proxies a replica's listing verbatim and /v1/stats embeds per-backend
// serve stats.
func TestRouterStatsAndGraphs(t *testing.T) {
	_, urls := newFleet(t, 2, "g=margulis:8")
	rt := newTestRouter(t, Options{Backends: urls})
	front := httptest.NewServer(rt)
	defer front.Close()
	if code, body := postBody(t, front.Client(), front.URL+"/v1/query", queryBody(10, 1)); code != http.StatusOK {
		t.Fatalf("query status %d: %s", code, body)
	}

	resp, err := front.Client().Get(front.URL + "/v1/graphs")
	if err != nil {
		t.Fatal(err)
	}
	var graphs []serve.GraphInfo
	if err := json.NewDecoder(resp.Body).Decode(&graphs); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(graphs) != 1 || graphs[0].ID != "g" || graphs[0].N != 64 {
		t.Fatalf("graphs via router: %+v", graphs)
	}

	resp, err = front.Client().Get(front.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Policy != "affinity" || st.Routed != 1 || len(st.Backends) != 2 {
		t.Fatalf("router stats: %+v", st)
	}
	served := 0
	for _, b := range st.Backends {
		if len(b.Serve) == 0 {
			t.Fatalf("backend %s missing embedded serve stats", b.URL)
		}
		var ss httpapi.StatsResponse
		if err := json.Unmarshal(b.Serve, &ss); err != nil {
			t.Fatal(err)
		}
		served += int(ss.Requests)
	}
	if served != 1 {
		t.Fatalf("fleet served %d requests total, want 1", served)
	}
}

// TestHealthPollerRecovery pins active health checking: a replica marked
// dead by passive failure detection is restored once /healthz answers.
func TestHealthPollerRecovery(t *testing.T) {
	b := newBackend(t, "g=margulis:8")
	rt := newTestRouter(t, Options{Backends: []string{b.ts.URL}, HealthInterval: 5 * time.Millisecond})
	rt.backends[0].healthy.Store(false)
	deadline := time.Now().Add(2 * time.Second)
	for !rt.backends[0].healthy.Load() {
		if time.Now().After(deadline) {
			t.Fatal("poller never restored a live replica")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestHopperShapeRoutesAndMatchesStandalone pins the registry-kernel path
// through the cluster: a hopper request routes on its canonical spelling
// (so "hopper:power" and "hopper:power:1" share one ring home), the routed
// cover estimate is byte-identical to a standalone replica's answer and to
// the sequential library estimator, and the answer survives killing the
// shape's home replica bit for bit.
func TestHopperShapeRoutesAndMatchesStandalone(t *testing.T) {
	backends, urls := newFleet(t, 3, "g=cycle:64")
	rt := newTestRouter(t, Options{Backends: urls})
	front := httptest.NewServer(rt)
	defer front.Close()

	short := serve.RequestShape{Graph: "g", Kernel: canonicalKernel("hopper:power"), Class: serve.ShapeCover}
	full := serve.RequestShape{Graph: "g", Kernel: "hopper:power:1", Class: serve.ShapeCover}
	if short.Digest() != full.Digest() {
		t.Fatalf("%q and %q digest apart: canonicalization broken", "hopper:power", "hopper:power:1")
	}

	body := map[string]any{
		"graph": "g", "kernel": "hopper:power", "start": 0, "k": 4,
		"trials": 8, "seed": 11, "max_steps": 1 << 16,
	}
	ref := newBackend(t, "g=cycle:64") // standalone replica outside the fleet
	refCode, want := postBody(t, ref.ts.Client(), ref.ts.URL+"/v1/cover", body)
	if refCode != http.StatusOK {
		t.Fatalf("reference status %d: %s", refCode, want)
	}
	kern, err := walk.ParseKernel("hopper:power")
	if err != nil {
		t.Fatal(err)
	}
	est, err := walk.EstimateKernelKCoverTime(graph.Cycle(64), kern, 0, 4,
		walk.MCOptions{Trials: 8, Workers: 1, Seed: 11, MaxSteps: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	var refEst httpapi.EstimateResponse
	if err := json.Unmarshal(want, &refEst); err != nil {
		t.Fatal(err)
	}
	if refEst.Mean != est.Mean() {
		t.Fatalf("replica mean %v != sequential estimator %v", refEst.Mean, est.Mean())
	}

	code, got := postBody(t, front.Client(), front.URL+"/v1/cover", body)
	if code != http.StatusOK {
		t.Fatalf("routed status %d: %s", code, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("routed answer %q != standalone %q", got, want)
	}

	victim := NewRing(urls, 0).Sequence(full.Digest(), nil)[0]
	backends[victim].ts.CloseClientConnections()
	backends[victim].ts.Close()
	code, got = postBody(t, front.Client(), front.URL+"/v1/cover", body)
	if code != http.StatusOK {
		t.Fatalf("post-kill status %d: %s", code, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("post-kill answer %q != standalone %q", got, want)
	}
	if st := rt.Stats(); st.Unrouted != 0 || st.Failovers < 1 {
		t.Fatalf("failover accounting %+v", st)
	}
}
