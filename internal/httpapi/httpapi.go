// Package httpapi is the HTTP+JSON surface of the serving layer: the
// endpoint mux cmd/walkd mounts, factored out of the daemon so every layer
// that needs a real walkd-shaped backend — the cluster router's tests, the
// load generator's cluster mode, the benchmark snapshotter's fleet rows —
// can build one in-process instead of shelling out to the binary. The wire
// contract is walkd's: the same paths, the same JSON fields, the same
// status mapping, byte-for-byte.
//
// Endpoints:
//
//	GET  /healthz      liveness probe
//	GET  /v1/graphs    registered graphs
//	POST /v1/query     {"graph","origin","k","ttl","targets":[...],"seed","kernel"?}
//	POST /v1/hitting   {"graph","start","target","trials","seed","max_steps","kernel"?}
//	POST /v1/cover     {"graph","start","k","trials","seed","max_steps","kernel"?}
//	POST /v1/meeting   {"graph","starts":[...],"trials","seed","max_steps","kernel"?}
//	GET  /v1/stats     served-traffic counters + per-shape batching rows
//
// The three estimate endpoints also accept adaptive-stopping fields:
// "rtol" > 0 switches to sequential stopping ("trials" becomes the budget
// cap), with optional "confidence", "min_trials", "max_trials", "wave";
// "stream": true switches the response to chunked NDJSON — one WaveLine
// per wave boundary, then a final {"result": ...} line.
//
// Determinism note, load-bearing for the cluster layer: every answer body
// is produced by encoding a value struct with a deterministic encoder, so
// two replicas serving the same request emit identical bytes — which is
// what lets the router shadow-verify answers by raw byte comparison and
// retry failed requests on another replica invisibly.
package httpapi

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"manywalks/internal/graph"
	"manywalks/internal/serve"
	"manywalks/internal/walk"
)

// BuildServer constructs a serve.Server with the graphs of a -graphs spec
// ("id=kind:params,...") registered.
func BuildServer(graphSpecs string, opts serve.Options) (*serve.Server, error) {
	s := serve.NewServer(opts)
	for _, item := range strings.Split(graphSpecs, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		id, spec, ok := strings.Cut(item, "=")
		if !ok {
			s.Close()
			return nil, fmt.Errorf("graph %q: want id=spec", item)
		}
		g, err := graph.ParseSpec(spec)
		if err != nil {
			s.Close()
			return nil, err
		}
		if err := s.RegisterGraph(id, g); err != nil {
			s.Close()
			return nil, err
		}
	}
	return s, nil
}

// ErrorBody is the error envelope every failure returns.
type ErrorBody struct {
	Error string `json:"error"`
}

// EstimateResponse is the JSON form of a walk.Estimate. waves/converged
// appear only on adaptive answers (fixed-count responses are unchanged).
type EstimateResponse struct {
	Mean      float64 `json:"mean"`
	CI95      float64 `json:"ci95"`
	Min       float64 `json:"min"`
	Max       float64 `json:"max"`
	Trials    int     `json:"trials"`
	Truncated int     `json:"truncated"`
	Waves     int     `json:"waves,omitempty"`
	Converged bool    `json:"converged,omitempty"`
}

func estimateJSON(e walk.Estimate) EstimateResponse {
	return EstimateResponse{
		Mean:      e.Summary.Mean,
		CI95:      e.CI95(),
		Min:       e.Summary.Min,
		Max:       e.Summary.Max,
		Trials:    e.Summary.N,
		Truncated: e.Truncated,
		Waves:     e.Waves,
		Converged: e.Converged,
	}
}

// QueryResponse is the JSON form of a walk-query answer.
type QueryResponse struct {
	Found    bool  `json:"found"`
	Rounds   int   `json:"rounds"`
	Messages int64 `json:"messages"`
}

// StatsResponse is /v1/stats: the traffic counters plus the per-shape
// batching rows a cluster load report aggregates across replicas.
type StatsResponse struct {
	serve.Stats
	Shapes []serve.ShapeStat `json:"shapes,omitempty"`
}

// precisionParams are the optional adaptive-stopping fields every estimate
// endpoint accepts. rtol > 0 switches the request to sequential stopping
// (trials becomes the budget cap); stream additionally switches the
// response to chunked NDJSON per-wave progress.
type precisionParams struct {
	RTol       float64 `json:"rtol"`
	Confidence float64 `json:"confidence"`
	MinTrials  int     `json:"min_trials"`
	MaxTrials  int     `json:"max_trials"`
	Wave       int     `json:"wave"`
	Stream     bool    `json:"stream"`
}

func (p precisionParams) precision() walk.Precision {
	return walk.Precision{RTol: p.RTol, Confidence: p.Confidence,
		MinTrials: p.MinTrials, MaxTrials: p.MaxTrials, Wave: p.Wave}
}

// WaveLine is one NDJSON progress line of a streamed adaptive estimate.
type WaveLine struct {
	Wave      int     `json:"wave"`
	Trials    int     `json:"trials"`
	Mean      float64 `json:"mean"`
	CI        float64 `json:"ci"`
	RelCI     float64 `json:"rel_ci"`
	Truncated int     `json:"truncated"`
	Converged bool    `json:"converged"`
	Done      bool    `json:"done"`
}

// serveEstimate answers one estimate endpoint: plain JSON normally, or —
// for adaptive requests with "stream": true — a chunked NDJSON response of
// per-wave progress lines followed by a final {"result": ...} line (or an
// {"error": ...} line, since the 200 header is already on the wire).
func serveEstimate(w http.ResponseWriter, pp precisionParams, call func(onProgress func(walk.WaveStat)) (walk.Estimate, error)) {
	if !pp.Stream || !pp.precision().Enabled() {
		est, err := call(nil)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, estimateJSON(est))
		return
	}
	// Wave snapshots arrive on dispatcher goroutines that must not block,
	// so they pass through a buffered channel the handler drains onto the
	// wire; if the client reads slowly, intermediate snapshots are dropped
	// rather than stalling the dispatcher. The final result never drops.
	wavec := make(chan walk.WaveStat, 64)
	type outcome struct {
		est walk.Estimate
		err error
	}
	donec := make(chan outcome, 1)
	go func() {
		est, err := call(func(ws walk.WaveStat) {
			select {
			case wavec <- ws:
			default:
			}
		})
		donec <- outcome{est, err}
	}()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	flush := func() {
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
	}
	writeWave := func(ws walk.WaveStat) {
		_ = enc.Encode(WaveLine{Wave: ws.Wave, Trials: ws.Trials, Mean: ws.Mean,
			CI: ws.CI, RelCI: ws.RelCI, Truncated: ws.Truncated,
			Converged: ws.Converged, Done: ws.Done})
		flush()
	}
	for {
		select {
		case ws := <-wavec:
			writeWave(ws)
		case out := <-donec:
		drained:
			for {
				select {
				case ws := <-wavec:
					writeWave(ws)
				default:
					break drained
				}
			}
			if out.err != nil {
				_ = enc.Encode(ErrorBody{Error: out.err.Error()})
			} else {
				_ = enc.Encode(struct {
					Result EstimateResponse `json:"result"`
				}{estimateJSON(out.est)})
			}
			flush()
			return
		}
	}
}

// statusOf maps serving errors onto HTTP statuses.
func statusOf(err error) int {
	switch {
	case errors.Is(err, serve.ErrUnknownGraph):
		return http.StatusNotFound
	case errors.Is(err, serve.ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, serve.ErrClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return 499 // client closed request (nginx convention)
	}
	return http.StatusBadRequest
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, err error) {
	writeJSON(w, statusOf(err), ErrorBody{Error: err.Error()})
}

// decodeInto parses one JSON request body with a size cap.
func decodeInto(w http.ResponseWriter, r *http.Request, v any) bool {
	body := http.MaxBytesReader(w, r.Body, 1<<20)
	if err := json.NewDecoder(body).Decode(v); err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorBody{Error: "bad request body: " + err.Error()})
		return false
	}
	return true
}

// post wraps a handler with the method check and the per-request deadline.
func post(deadline time.Duration, fn func(ctx context.Context, w http.ResponseWriter, r *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeJSON(w, http.StatusMethodNotAllowed, ErrorBody{Error: "POST only"})
			return
		}
		ctx := r.Context()
		if deadline > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, deadline)
			defer cancel()
		}
		fn(ctx, w, r)
	}
}

// kernelOf parses the optional "kernel" field.
func kernelOf(s string) (walk.Kernel, error) {
	if s == "" {
		return walk.Uniform(), nil
	}
	return walk.ParseKernel(s)
}

// NewMux wires the JSON endpoints over srv. deadline bounds each request
// (0 disables).
func NewMux(srv *serve.Server, deadline time.Duration) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
	})
	mux.HandleFunc("/v1/graphs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, srv.Graphs())
	})
	mux.HandleFunc("/v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, StatsResponse{Stats: srv.Stats(), Shapes: srv.ShapeStats()})
	})
	mux.HandleFunc("/v1/query", post(deadline, func(ctx context.Context, w http.ResponseWriter, r *http.Request) {
		var req struct {
			Graph   string  `json:"graph"`
			Kernel  string  `json:"kernel"`
			Origin  int32   `json:"origin"`
			K       int     `json:"k"`
			TTL     int     `json:"ttl"`
			Targets []int32 `json:"targets"`
			Seed    uint64  `json:"seed"`
		}
		if !decodeInto(w, r, &req) {
			return
		}
		kernel, err := kernelOf(req.Kernel)
		if err != nil {
			writeErr(w, err)
			return
		}
		res, err := srv.WalkQuery(ctx, serve.WalkQueryRequest{
			Graph: req.Graph, Kernel: kernel, Origin: req.Origin, K: req.K,
			TTL: req.TTL, Targets: req.Targets, Seed: req.Seed,
		})
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, QueryResponse{
			Found: res.Found, Rounds: res.Rounds, Messages: res.Messages,
		})
	}))
	mux.HandleFunc("/v1/hitting", post(deadline, func(ctx context.Context, w http.ResponseWriter, r *http.Request) {
		var req struct {
			Graph    string `json:"graph"`
			Kernel   string `json:"kernel"`
			Start    int32  `json:"start"`
			Target   int32  `json:"target"`
			Trials   int    `json:"trials"`
			Seed     uint64 `json:"seed"`
			MaxSteps int64  `json:"max_steps"`
			precisionParams
		}
		if !decodeInto(w, r, &req) {
			return
		}
		kernel, err := kernelOf(req.Kernel)
		if err != nil {
			writeErr(w, err)
			return
		}
		serveEstimate(w, req.precisionParams, func(onProgress func(walk.WaveStat)) (walk.Estimate, error) {
			return srv.HittingTime(ctx, serve.HittingTimeRequest{
				Graph: req.Graph, Kernel: kernel, Start: req.Start, Target: req.Target,
				Trials: req.Trials, Seed: req.Seed, MaxSteps: req.MaxSteps,
				Precision: req.precision(), OnProgress: onProgress,
			})
		})
	}))
	mux.HandleFunc("/v1/cover", post(deadline, func(ctx context.Context, w http.ResponseWriter, r *http.Request) {
		var req struct {
			Graph    string `json:"graph"`
			Kernel   string `json:"kernel"`
			Start    int32  `json:"start"`
			K        int    `json:"k"`
			Trials   int    `json:"trials"`
			Seed     uint64 `json:"seed"`
			MaxSteps int64  `json:"max_steps"`
			precisionParams
		}
		if !decodeInto(w, r, &req) {
			return
		}
		kernel, err := kernelOf(req.Kernel)
		if err != nil {
			writeErr(w, err)
			return
		}
		serveEstimate(w, req.precisionParams, func(onProgress func(walk.WaveStat)) (walk.Estimate, error) {
			return srv.CoverTime(ctx, serve.CoverTimeRequest{
				Graph: req.Graph, Kernel: kernel, Start: req.Start, K: req.K,
				Trials: req.Trials, Seed: req.Seed, MaxSteps: req.MaxSteps,
				Precision: req.precision(), OnProgress: onProgress,
			})
		})
	}))
	mux.HandleFunc("/v1/meeting", post(deadline, func(ctx context.Context, w http.ResponseWriter, r *http.Request) {
		var req struct {
			Graph    string  `json:"graph"`
			Kernel   string  `json:"kernel"`
			Starts   []int32 `json:"starts"`
			Trials   int     `json:"trials"`
			Seed     uint64  `json:"seed"`
			MaxSteps int64   `json:"max_steps"`
			precisionParams
		}
		if !decodeInto(w, r, &req) {
			return
		}
		kernel, err := kernelOf(req.Kernel)
		if err != nil {
			writeErr(w, err)
			return
		}
		serveEstimate(w, req.precisionParams, func(onProgress func(walk.WaveStat)) (walk.Estimate, error) {
			return srv.MeetingTime(ctx, serve.MeetingTimeRequest{
				Graph: req.Graph, Kernel: kernel, Starts: req.Starts,
				Trials: req.Trials, Seed: req.Seed, MaxSteps: req.MaxSteps,
				Precision: req.precision(), OnProgress: onProgress,
			})
		})
	}))
	return mux
}
