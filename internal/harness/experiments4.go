package harness

import (
	"fmt"
	"math"

	"manywalks/internal/core"
	"manywalks/internal/graph"
	"manywalks/internal/walk"
)

// This file holds the kernel-sweep experiment (E-kernels): the speed-up
// S^k = C/C^k measured under every walk kernel on the paper's four
// topologies. The paper states its results for the uniform walk; the sweep
// probes how far the many-walks speed-up survives a change of step law —
// lazy normalization, weighted bias, non-backtracking momentum, and the
// Metropolis chain with uniform target (cf. Estrada et al.'s random
// multi-hopper and Procaccia–Rosenthal's speed-optimized walks in
// PAPERS.md).

// kernelSweepWeights is the deterministic weighting applied to every sweep
// topology so the weighted kernel has real bias to work with; the other
// kernels ignore weights, so all kernels run on the identical graph.
func kernelSweepWeights(u, v int32) float64 {
	return 1 + float64((u*7+v*13)%5)
}

// kernelSweepGraphs returns the paper's four topologies at experiment
// scale, each carrying the sweep weighting, with its canonical start.
func kernelSweepGraphs(cfg Config) []struct {
	g     *graph.Graph
	start int32
} {
	cycle := graph.Cycle(size(cfg, 64, 128))
	torus := graph.Torus2D(size(cfg, 8, 16))
	expander := graph.MargulisExpander(size(cfg, 8, 16))
	barbell, center := graph.Barbell(size(cfg, 33, 65))
	return []struct {
		g     *graph.Graph
		start int32
	}{
		{graph.Reweight(cycle, kernelSweepWeights), 0},
		{graph.Reweight(torus, kernelSweepWeights), 0},
		{graph.Reweight(expander, kernelSweepWeights), 0},
		{graph.Reweight(barbell, kernelSweepWeights), center},
	}
}

// RunKernelSpeedupSweep measures C, C^k and S^k for every kernel on every
// sweep topology (k = 16) and checks the shapes that are exact or
// theoretically forced:
//
//   - every kernel keeps S^k > 1 (adding walkers never hurts),
//   - the lazy walk covers ≈2× slower than the uniform walk,
//   - the no-backtracking walk is ballistic on the cycle (C = n−1 exactly).
func RunKernelSpeedupSweep(cfg Config) (*Report, error) {
	const k = 16
	rep := &Report{
		ID:    "E-kernels",
		Title: fmt.Sprintf("Kernel sweep — S^%d under every registered step law (uniform/lazy/weighted/no-backtrack/Metropolis/hopper)", k),
		Columns: []string{
			"graph", "kernel", "C", fmt.Sprintf("C^%d", k), fmt.Sprintf("S^%d", k), "S/k",
		},
		Pass: true,
	}
	trials := cfg.Trials
	if trials > 200 {
		// 4 topologies x 5 kernels x 2 estimates: cap the per-cell cost so
		// the sweep stays a small slice of the full suite.
		trials = 200
	}
	for _, tc := range kernelSweepGraphs(cfg) {
		n := tc.g.N()
		budget := 400 * int64(n) * int64(n)
		var uniformC float64
		for _, kern := range walk.Kernels() {
			mc := cfg.mc(hashKey("kernels"+tc.g.Name()+kern.String()), budget)
			mc.Trials = trials
			// MeasureKernelSpeedup decorrelates the C and C^k seeds, so the
			// two estimates are independent rather than pathwise coupled.
			p, err := core.MeasureKernelSpeedup(tc.g, kern, tc.start, k, mc)
			if err != nil {
				return nil, err
			}
			if p.Truncated > 0 {
				rep.Pass = false
				rep.Notes = append(rep.Notes, fmt.Sprintf(
					"%s/%s: %d truncated trials", tc.g.Name(), kern, p.Truncated))
			}
			rep.Rows = append(rep.Rows, []string{
				tc.g.Name(), kern.String(),
				estCell(p.Single), estCell(p.Multi), f(p.Speedup), f(p.PerWalker),
			})
			if p.Speedup <= 1 {
				rep.Pass = false
				rep.Notes = append(rep.Notes, fmt.Sprintf(
					"%s/%s: S^%d = %.2f, parallel walkers did not help", tc.g.Name(), kern, k, p.Speedup))
			}
			switch kern.Name() {
			case "uniform":
				uniformC = p.Single.Mean()
			case "lazy":
				if ratio := p.Single.Mean() / uniformC; ratio < 1.4 || ratio > 2.8 {
					rep.Pass = false
					rep.Notes = append(rep.Notes, fmt.Sprintf(
						"%s: lazy/uniform cover ratio %.2f outside ≈2 band", tc.g.Name(), ratio))
				}
			case "nobacktrack":
				if n == size(cfg, 64, 128) && tc.g.Degree(0) == 2 { // the cycle row
					if math.Abs(p.Single.Mean()-float64(n-1)) > 1e-9 {
						rep.Pass = false
						rep.Notes = append(rep.Notes, fmt.Sprintf(
							"cycle: no-backtrack C = %v, ballistic walk must give exactly %d", p.Single.Mean(), n-1))
					}
				}
			}
		}
	}
	rep.Notes = append(rep.Notes,
		"all kernels run on the same weighted graphs; only the weighted kernel reads the weights",
		"no-backtracking is ballistic on the cycle, so its k-walk speed-up there is pure start-position spread")
	return rep, nil
}
