package harness

import (
	"fmt"

	"manywalks/internal/graph"
	"manywalks/internal/walk"
)

// This file holds the adaptive-stopping experiment (E-adaptive): the
// sequential-stopping layer (walk.Precision) against the fixed-count
// estimator on the paper's topologies. The adaptive driver runs the same
// deterministic trial schedule in waves and stops at the first wave
// boundary whose Student-t relative CI half-width is within rtol, so it
// must (a) spend fewer trials than the fixed budget wherever the
// observable concentrates, and (b) agree with the fixed-budget estimate —
// its samples are a prefix of the same schedule.

// RunAdaptiveStopping estimates the k=8 cover time on each topology twice —
// at the full fixed trial budget, and adaptively at rtol=0.1 @95% with the
// same budget as cap — and reports trials-to-tolerance next to the fixed
// cost. Checks:
//
//   - every adaptive run converges (the stop rule fires before the cap);
//   - the adaptive mean lies within the two runs' combined CI band of the
//     fixed mean (prefix property + tolerance);
//   - on the expander — the paper's concentrated case — the saving is at
//     least 2x.
func RunAdaptiveStopping(cfg Config) (*Report, error) {
	const k = 8
	const rtol = 0.1
	rep := &Report{
		ID:    "E-adaptive",
		Title: fmt.Sprintf("Adaptive sequential stopping — k=%d cover, rtol=%g @95%% vs fixed budget", k, rtol),
		Columns: []string{
			"graph", "fixed (budget)", "adaptive", "trials", "waves", "saving",
		},
		Pass: true,
	}
	graphs := []struct {
		name string
		g    *graph.Graph
	}{
		{"cycle", graph.Cycle(size(cfg, 64, 128))},
		{"torus", graph.Torus2D(size(cfg, 8, 16))},
		{"expander", graph.MargulisExpander(size(cfg, 8, 16))},
	}
	for i, tc := range graphs {
		opts := cfg.mc(0x5ADA+uint64(i), 1<<22)
		fixed, err := walk.EstimateKCoverTime(tc.g, 0, k, opts)
		if err != nil {
			return nil, err
		}
		aopts := opts
		aopts.Precision = walk.Precision{RTol: rtol, Confidence: 0.95, Wave: 16}
		adapt, err := walk.EstimateKCoverTime(tc.g, 0, k, aopts)
		if err != nil {
			return nil, err
		}
		saving := float64(fixed.Summary.N) / float64(adapt.Summary.N)
		rep.Rows = append(rep.Rows, []string{
			tc.name,
			fmt.Sprintf("%s (n=%d)", estCell(fixed), fixed.Summary.N),
			estCell(adapt),
			fmt.Sprint(adapt.Summary.N),
			fmt.Sprint(adapt.Waves),
			f(saving),
		})
		if !adapt.Converged {
			rep.Pass = false
			rep.Notes = append(rep.Notes, fmt.Sprintf("%s: adaptive run hit the trial cap without converging", tc.name))
		}
		if diff := abs(adapt.Mean() - fixed.Mean()); diff > adapt.CI95()+fixed.CI95() {
			rep.Pass = false
			rep.Notes = append(rep.Notes, fmt.Sprintf("%s: adaptive mean %.1f vs fixed %.1f beyond combined CI", tc.name, adapt.Mean(), fixed.Mean()))
		}
		// The saving is capped at budget/trials, so the bar must fit
		// inside the budget: quick mode's 120 trials cannot show more
		// than ~1.9x over the ~64 trials the stop rule needs here.
		bar := 2.0
		if cfg.Quick {
			bar = 1.5
		}
		if tc.name == "expander" && saving < bar {
			rep.Pass = false
			rep.Notes = append(rep.Notes, fmt.Sprintf("expander saving %.2fx below %.1fx", saving, bar))
		}
	}
	rep.Notes = append(rep.Notes,
		"adaptive samples are a prefix of the fixed schedule: same seeds, same trial order, stop at the first wave within rtol")
	return rep, nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
