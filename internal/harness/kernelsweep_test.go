package harness

import "testing"

func TestKernelSweepQuickSmoke(t *testing.T) {
	rep, err := RunKernelSpeedupSweep(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + rep.Render())
	if !rep.Pass {
		t.Fatal("kernel sweep failed")
	}
}
