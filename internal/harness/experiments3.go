package harness

import (
	"fmt"
	"math"

	"manywalks/internal/core"
	"manywalks/internal/graph"
	"manywalks/internal/rng"
	"manywalks/internal/walk"
)

// RunTheorem14Bound verifies the paper's Theorem 14 upper bound
//
//	C^k ≤ (1+o(1))·C/k + (3·log k + 2·f(n))·hmax
//
// (f = ln ln n, any ω(1) choice) against measured C^k, and checks Corollary
// 15's near-linear consequence S^k ≥ k−o(k) in the admissible band
// k = O(log^{1-ε} n) via the per-walker efficiency.
func RunTheorem14Bound(cfg Config) (*Report, error) {
	rep := &Report{
		ID:      "E-thm14",
		Title:   "Theorem 14 — C^k vs C/k + (3·log k + 2·f(n))·hmax, f = ln ln n",
		Columns: []string{"graph", "k", "C^k (measured)", "Thm14 bound", "ratio", "S^k/k"},
		Pass:    true,
	}
	graphs := []*graph.Graph{
		graph.Complete(size(cfg, 64, 256), false),
		graph.Torus2D(size(cfg, 8, 16)),
		graph.Hypercube(size(cfg, 6, 8)),
	}
	for _, g := range graphs {
		b, err := core.ComputeBounds(g, 0, rng.NewStream(cfg.Seed, hashKey("thm14"+g.Name())))
		if err != nil {
			return nil, err
		}
		cEst, err := walk.EstimateCoverTime(g, 0,
			cfg.mc(hashKey("thm14c"+g.Name()), quadBudget(g.N())))
		if err != nil {
			return nil, err
		}
		fn := math.Log(math.Log(float64(g.N())))
		for _, k := range []int{2, 4} { // within O(log^{1-ε} n) at these sizes
			ck, err := walk.EstimateKCoverTime(g, 0, k,
				cfg.mc(hashKey(fmt.Sprintf("thm14k-%s-%d", g.Name(), k)), quadBudget(g.N())))
			if err != nil {
				return nil, err
			}
			bound := b.Theorem14Bound(cEst.Mean(), k, fn)
			perWalker := cEst.Mean() / ck.Mean() / float64(k)
			rep.Rows = append(rep.Rows, []string{
				g.Name(), fmt.Sprintf("%d", k), estCell(ck), f(bound),
				f(ck.Mean() / bound), f(perWalker),
			})
			if ck.Mean()-ck.CI95() > bound {
				rep.Pass = false
				rep.Notes = append(rep.Notes, fmt.Sprintf("%s k=%d violates Thm 14", g.Name(), k))
			}
			// Corollary 15's S^k ≥ k − o(k): demand ≥ 0.8·k at these sizes.
			if perWalker < 0.8 {
				rep.Pass = false
				rep.Notes = append(rep.Notes, fmt.Sprintf(
					"%s k=%d per-walker %.2f below the Corollary 15 band", g.Name(), k, perWalker))
			}
		}
	}
	return rep, nil
}

// RunConjecture11Probe probes Conjecture 11 (S^k ≥ Ω(log k) for every graph
// and k ≤ n): across all families — including the cycle, which achieves the
// conjectured floor, and the lollipop, a slow-mixing stress case — the
// normalized ratio S^k/ln k must stay bounded away from zero.
func RunConjecture11Probe(cfg Config) (*Report, error) {
	rep := &Report{
		ID:      "E-conj11",
		Title:   "Conjecture 11 probe — min S^k/ln k by family (floor must stay positive)",
		Columns: []string{"graph", "min S^k/ln k", "at k"},
		Pass:    true,
	}
	bar, center := graph.Barbell(size(cfg, 41, 101))
	type probe struct {
		g     *graph.Graph
		start int32
	}
	probes := []probe{
		{graph.Cycle(size(cfg, 64, 128)), 0},
		{graph.Complete(size(cfg, 64, 128), false), 0},
		{graph.Torus2D(size(cfg, 8, 11)), 0},
		{graph.Lollipop(size(cfg, 16, 32), size(cfg, 16, 32)), 0},
		{bar, center},
	}
	for _, pr := range probes {
		points, err := core.SpeedupCurve(pr.g, pr.start, []int{2, 8, 32},
			cfg.mc(hashKey("conj11"+pr.g.Name()), 400*int64(pr.g.N())*int64(pr.g.N())))
		if err != nil {
			return nil, err
		}
		worst, worstK := math.Inf(1), 0
		for _, p := range points {
			norm := p.Speedup / math.Log(float64(p.K))
			if norm < worst {
				worst, worstK = norm, p.K
			}
		}
		rep.Rows = append(rep.Rows, []string{
			pr.g.Name(), f(worst), fmt.Sprintf("%d", worstK),
		})
		if worst < 0.5 {
			rep.Pass = false
			rep.Notes = append(rep.Notes, fmt.Sprintf(
				"%s: S^k/ln k = %.2f — conjecture floor challenged", pr.g.Name(), worst))
		}
	}
	rep.Notes = append(rep.Notes,
		"the cycle realizes the conjectured Θ(log k) floor; no family fell below it (probe, not a proof)")
	return rep, nil
}

// RunAblationNonBacktracking compares simple and non-backtracking k-walks —
// the "smarter token" ablation. The paper's tokens are memoryless; one bit
// of memory (don't reverse) is the cheapest possible upgrade and its payoff
// is topology-dependent: ballistic (n-1 steps exactly) on the cycle, a
// constant-factor win on grids and expanders.
func RunAblationNonBacktracking(cfg Config) (*Report, error) {
	rep := &Report{
		ID:      "A-nbrw",
		Title:   "Ablation — simple vs non-backtracking k-walk cover times",
		Columns: []string{"graph", "k", "C^k simple", "C^k non-backtracking", "gain"},
		Pass:    true,
	}
	type tc struct {
		g       *graph.Graph
		k       int
		minGain float64 // required simple/NB ratio
		maxGain float64
	}
	cycleN := size(cfg, 64, 256)
	cases := []tc{
		{graph.Cycle(cycleN), 1, 10, 1e9}, // ballistic: gain ≈ n/4
		{graph.Torus2D(size(cfg, 8, 16)), 1, 1.1, 10},
		{graph.Torus2D(size(cfg, 8, 16)), 8, 1.05, 10},
		{graph.MargulisExpander(size(cfg, 8, 16)), 8, 1.0, 10},
	}
	for _, c := range cases {
		opts := cfg.mc(hashKey(fmt.Sprintf("nbrw-%s-%d", c.g.Name(), c.k)), quadBudget(c.g.N()))
		simple, err := walk.EstimateKCoverTime(c.g, 0, c.k, opts)
		if err != nil {
			return nil, err
		}
		nb, err := walk.EstimateNBCoverTime(c.g, 0, c.k, opts)
		if err != nil {
			return nil, err
		}
		gain := simple.Mean() / nb.Mean()
		rep.Rows = append(rep.Rows, []string{
			c.g.Name(), fmt.Sprintf("%d", c.k), estCell(simple), estCell(nb), f(gain),
		})
		if gain < c.minGain || gain > c.maxGain {
			rep.Pass = false
			rep.Notes = append(rep.Notes, fmt.Sprintf(
				"%s k=%d gain %.2f outside [%.2f, %.2g]", c.g.Name(), c.k, gain, c.minGain, c.maxGain))
		}
	}
	rep.Notes = append(rep.Notes,
		"one bit of memory makes the cycle walk ballistic (cover = n-1 exactly) but only trims constants on fast-mixing graphs")
	return rep, nil
}
