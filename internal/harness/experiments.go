package harness

import (
	"fmt"
	"math"

	"manywalks/internal/core"
	"manywalks/internal/graph"
	"manywalks/internal/linalg"
	"manywalks/internal/rng"
	"manywalks/internal/stats"
	"manywalks/internal/walk"
)

// RunBarbellFigure reproduces Figure 1 / Theorem 7: the barbell B_n covered
// from the center vertex. A single walk needs Θ(n²) steps; k = ⌈20·ln n⌉
// walks need only O(n) rounds — an exponential speed-up in k.
func RunBarbellFigure(cfg Config) (*Report, error) {
	rep := &Report{
		ID:    "F1-barbell",
		Title: "Figure 1 / Theorem 7 — exponential speed-up on the barbell from the center",
		Columns: []string{
			"n", "k=⌈20 ln n⌉", "C (single)", "C/n²", "C^k", "C^k/n", "S^k", "S^k/k",
		},
		Pass: true,
	}
	sizes := []int{65, 129, 257}
	if cfg.Quick {
		sizes = []int{33, 65}
	}
	for _, n := range sizes {
		g, center := graph.Barbell(n)
		k := int(math.Ceil(20 * math.Log(float64(n))))
		opts := cfg.mc(hashKey(fmt.Sprintf("barbell%d", n)), 200*int64(n)*int64(n))
		p, err := core.MeasureSpeedup(g, center, k, opts)
		if err != nil {
			return nil, err
		}
		nf := float64(n)
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%d", n), fmt.Sprintf("%d", k),
			estCell(p.Single), f(p.Single.Mean() / (nf * nf)),
			estCell(p.Multi), f(p.Multi.Mean() / nf),
			f(p.Speedup), f(p.PerWalker),
		})
		// Theorem 7's shape: C^k = O(n) — demand C^k/n stays below a
		// generous constant while C/n² stays above a positive one.
		if p.Multi.Mean()/nf > 25 || p.Single.Mean()/(nf*nf) < 0.05 {
			rep.Pass = false
			rep.Notes = append(rep.Notes, fmt.Sprintf(
				"n=%d: C^k/n=%.2f or C/n²=%.3f outside expected bands",
				n, p.Multi.Mean()/nf, p.Single.Mean()/(nf*nf)))
		}
		// Exponential speed-up: S^k must far exceed k... at these finite
		// sizes demand at least S^k > 2k.
		if p.Speedup < 2*float64(k) {
			rep.Pass = false
			rep.Notes = append(rep.Notes, fmt.Sprintf(
				"n=%d: S^k=%.1f not superlinear vs k=%d", n, p.Speedup, k))
		}
	}
	rep.Notes = append(rep.Notes,
		"paper: C_vc = Θ(n²), C^k_vc = O(n) for k = Θ(log n) (Theorem 26)")
	return rep, nil
}

// RunTheorem6CycleFit fits the cycle speed-up against a·ln k + b and against
// a linear law, reproducing Theorem 6's Θ(log k) claim.
func RunTheorem6CycleFit(cfg Config) (*Report, error) {
	n := 256
	kMax := 128
	if cfg.Quick {
		n, kMax = 128, 64
	}
	g := graph.Cycle(n)
	ks := geometricKs(kMax)
	points, err := core.SpeedupCurve(g, 0, ks, cfg.mc(hashKey("thm6"), quadBudget(n)))
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:      "E-thm6",
		Title:   fmt.Sprintf("Theorem 6 — S^k(L_%d) = Θ(log k)", n),
		Columns: []string{"k", "C^k", "S^k", "S^k/k", "S^k/ln k"},
	}
	kf := make([]float64, len(points))
	sf := make([]float64, len(points))
	for i, p := range points {
		kf[i] = float64(p.K)
		sf[i] = p.Speedup
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%d", p.K), estCell(p.Multi), f(p.Speedup),
			f(p.PerWalker), f(p.Speedup / math.Log(float64(p.K))),
		})
	}
	logFit := stats.FitLogX(kf, sf)
	linFit := stats.FitLine(kf, sf)
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("log fit: S ≈ %.2f·ln k + %.2f (R²=%.4f)", logFit.Slope, logFit.Intercept, logFit.R2),
		fmt.Sprintf("linear fit: S ≈ %.3f·k + %.2f (R²=%.4f)", linFit.Slope, linFit.Intercept, linFit.R2),
	)
	rep.Pass = logFit.Slope > 0 && logFit.R2 > linFit.R2 && logFit.R2 > 0.9
	if !rep.Pass {
		rep.Notes = append(rep.Notes, "log-shape dominance failed")
	}
	return rep, nil
}

// RunTheorem8GridSpectrum contrasts the 2-d torus speed-up per walker for
// k ≤ log n against k ≥ log³ n (Theorem 8: linear first, sub-linear later).
func RunTheorem8GridSpectrum(cfg Config) (*Report, error) {
	side := 32
	if cfg.Quick {
		side = 16
	}
	g := graph.Torus2D(side)
	n := g.N()
	logN := math.Log(float64(n))
	smallK := int(logN)
	bigK := int(logN * logN * logN)
	if bigK > n {
		bigK = n
	}
	points, err := core.SpeedupCurve(g, 0, []int{smallK, bigK},
		cfg.mc(hashKey("thm8"), quadBudget(n)))
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:      "E-thm8",
		Title:   fmt.Sprintf("Theorem 8 — speed-up spectrum on the √n×√n torus (n=%d)", n),
		Columns: []string{"k", "band", "S^k", "S^k/k"},
	}
	bands := []string{"k ≈ log n", "k ≈ log³ n"}
	for i, p := range points {
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%d", p.K), bands[i], f(p.Speedup), f(p.PerWalker),
		})
	}
	small, big := points[0], points[1]
	// Linear band: per-walker efficiency of order 1; saturated band: clearly
	// degraded efficiency.
	rep.Pass = small.PerWalker > 0.35 && big.PerWalker < small.PerWalker/2
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"per-walker efficiency drops %.2f → %.2f as k passes from log n to log³ n",
		small.PerWalker, big.PerWalker))
	return rep, nil
}

// RunTheorem13BabyMatthews verifies C^k ≤ (e/k)·hmax·H_n on Matthews-tight
// families for every k ≤ log n.
func RunTheorem13BabyMatthews(cfg Config) (*Report, error) {
	rep := &Report{
		ID:      "E-thm13",
		Title:   "Theorem 13 (Baby Matthews) — C^k vs (e/k)·hmax·H_n, k ≤ log n",
		Columns: []string{"graph", "k", "C^k (measured)", "bound", "ratio"},
		Pass:    true,
	}
	builders := []func() (*graph.Graph, int32){
		func() (*graph.Graph, int32) { return graph.Complete(size(cfg, 64, 256), false), 0 },
		func() (*graph.Graph, int32) { return graph.Torus2D(size(cfg, 8, 16)), 0 },
		func() (*graph.Graph, int32) { return graph.Hypercube(size(cfg, 6, 8)), 0 },
		func() (*graph.Graph, int32) { return graph.BalancedTree(2, size(cfg, 5, 7)), 0 },
	}
	for _, build := range builders {
		g, start := build()
		b, err := core.ComputeBounds(g, 0, rng.NewStream(cfg.Seed, hashKey("thm13"+g.Name())))
		if err != nil {
			return nil, err
		}
		kTop := int(math.Log(float64(g.N())))
		if kTop < 2 {
			kTop = 2
		}
		for k := 1; k <= kTop; k *= 2 {
			est, err := walk.EstimateKCoverTime(g, start, k,
				cfg.mc(hashKey(fmt.Sprintf("thm13-%s-%d", g.Name(), k)), quadBudget(g.N())))
			if err != nil {
				return nil, err
			}
			bound := b.BabyMatthewsBound(k)
			ratio := est.Mean() / bound
			rep.Rows = append(rep.Rows, []string{
				g.Name(), fmt.Sprintf("%d", k), estCell(est), f(bound), f(ratio),
			})
			if est.Mean()-est.CI95() > bound {
				rep.Pass = false
				rep.Notes = append(rep.Notes, fmt.Sprintf(
					"%s k=%d violates the bound", g.Name(), k))
			}
		}
	}
	return rep, nil
}

// RunTheorem9MixingBound verifies S^k ≥ k/(t_m·ln n) on d-regular graphs
// with measured paper-definition mixing times.
func RunTheorem9MixingBound(cfg Config) (*Report, error) {
	rep := &Report{
		ID:      "E-thm9",
		Title:   "Theorem 9 — S^k vs k/(t_m·ln n) on d-regular graphs",
		Columns: []string{"graph", "t_m", "k", "S^k", "bound", "margin"},
		Pass:    true,
	}
	type testCase struct {
		g    *graph.Graph
		stay float64
	}
	cases := []testCase{
		{graph.MargulisExpander(size(cfg, 8, 16)), 0},
		{graph.Torus2D(size(cfg, 8, 16)), 0.5},  // bipartite: lazy mixing
		{graph.Hypercube(size(cfg, 6, 8)), 0.5}, // bipartite: lazy mixing
	}
	for _, tc := range cases {
		op := linalg.NewWalkOperator(tc.g, tc.stay)
		n := tc.g.N()
		res := mixingSingleStart(op, 100*n)
		if res < 0 {
			return nil, fmt.Errorf("harness: mixing truncated on %s", tc.g.Name())
		}
		k := int(math.Sqrt(float64(n)))
		p, err := core.MeasureSpeedup(tc.g, 0, k,
			cfg.mc(hashKey("thm9"+tc.g.Name()), quadBudget(n)))
		if err != nil {
			return nil, err
		}
		bound := float64(k) / (float64(res) * math.Log(float64(n)))
		margin := p.Speedup / bound
		rep.Rows = append(rep.Rows, []string{
			tc.g.Name(), fmt.Sprintf("%d", res), fmt.Sprintf("%d", k),
			f(p.Speedup), f(bound), f(margin),
		})
		if p.Speedup < bound {
			rep.Pass = false
			rep.Notes = append(rep.Notes, tc.g.Name()+" violates Theorem 9")
		}
	}
	return rep, nil
}

// mixingSingleStart returns the paper mixing time from vertex 0 or -1 if
// truncated; the Theorem 9 cases are vertex-transitive so one start is the
// worst start.
func mixingSingleStart(op *linalg.WalkOperator, budget int) int {
	pi := op.StationaryDistribution()
	p := make([]float64, op.N())
	p[0] = 1
	next := make([]float64, op.N())
	for t := 1; t <= budget; t++ {
		op.EvolveDist(p, next)
		p, next = next, p
		if linalg.L1Distance(p, pi) < 1/math.E {
			return t
		}
	}
	return -1
}

// RunTheorem1Matthews checks the Matthews sandwich hmin·H_{n-1} ≤ Ĉ ≤
// hmax·H_n with exact hitting extremes and measured cover times.
func RunTheorem1Matthews(cfg Config) (*Report, error) {
	rep := &Report{
		ID:      "E-thm1",
		Title:   "Theorem 1 (Matthews) — measured C inside [hmin·H_{n-1}, hmax·H_n]",
		Columns: []string{"graph", "lower", "C (measured)", "upper", "position"},
		Pass:    true,
	}
	graphs := []*graph.Graph{
		graph.Cycle(size(cfg, 64, 128)),
		graph.Complete(size(cfg, 64, 128), false),
		graph.Torus2D(size(cfg, 8, 11)),
		graph.Hypercube(size(cfg, 6, 7)),
		graph.BalancedTree(3, size(cfg, 3, 4)),
		graph.Lollipop(size(cfg, 16, 32), size(cfg, 16, 32)),
	}
	for _, g := range graphs {
		b, err := core.ComputeBounds(g, 0, rng.NewStream(cfg.Seed, hashKey("thm1"+g.Name())))
		if err != nil {
			return nil, err
		}
		// Cover time from the worst start is what C(G) means; approximate
		// the max by probing a few structurally distinct starts.
		starts := []int32{0, int32(g.N() / 2), int32(g.N() - 1)}
		worst := walk.Estimate{}
		for _, s := range starts {
			est, err := walk.EstimateCoverTime(g, s,
				cfg.mc(hashKey(fmt.Sprintf("thm1-%s-%d", g.Name(), s)), 100*quadBudget(int(math.Sqrt(float64(g.N())))+1)))
			if err != nil {
				return nil, err
			}
			if est.Mean() > worst.Summary.Mean {
				worst = est
			}
		}
		pos := (worst.Mean() - b.MatthewsLower) / (b.MatthewsUpper - b.MatthewsLower)
		rep.Rows = append(rep.Rows, []string{
			g.Name(), f(b.MatthewsLower), estCell(worst), f(b.MatthewsUpper), f(pos),
		})
		if worst.Mean()+worst.CI95() < b.MatthewsLower || worst.Mean()-worst.CI95() > b.MatthewsUpper {
			rep.Pass = false
			rep.Notes = append(rep.Notes, g.Name()+" outside the sandwich")
		}
	}
	return rep, nil
}

// RunTheorem17Concentration demonstrates Aldous' threshold: on families with
// C/hmax → ∞ the cover time concentrates (sd/mean shrinks with n), while on
// the cycle (C ≈ hmax) it does not.
func RunTheorem17Concentration(cfg Config) (*Report, error) {
	rep := &Report{
		ID:      "E-thm17",
		Title:   "Theorem 17 (Aldous) — cover-time concentration vs the C/hmax gap",
		Columns: []string{"graph", "n", "C/hmax", "sd(τ)/C"},
		Pass:    true,
	}
	type group struct {
		name   string
		build  func(n int) *graph.Graph
		sizes  []int
		expect string // "shrink" or "flat"
	}
	groups := []group{
		{"complete", func(n int) *graph.Graph { return graph.Complete(n, false) },
			[]int{64, 256}, "shrink"},
		{"cycle", func(n int) *graph.Graph { return graph.Cycle(n) },
			[]int{64, 256}, "flat"},
	}
	if cfg.Quick {
		// Spread the sizes by 8x (not 4x) so the expected CV ratio
		// ln 32 / ln 256 ≈ 0.63 clears the 0.85 gate with margin even at
		// quick-mode trial counts; both graphs stay cheap at n = 256.
		groups[0].sizes = []int{32, 256}
		groups[1].sizes = []int{32, 256}
	}
	for _, grp := range groups {
		var cvs []float64
		for _, n := range grp.sizes {
			g := grp.build(n)
			b, err := core.ComputeBounds(g, 0, rng.NewStream(cfg.Seed, hashKey("thm17"+g.Name())))
			if err != nil {
				return nil, err
			}
			est, err := walk.EstimateCoverTime(g, 0,
				cfg.mc(hashKey("thm17"+g.Name()), quadBudget(n)))
			if err != nil {
				return nil, err
			}
			cv := est.Summary.StdDev() / est.Mean()
			cvs = append(cvs, cv)
			rep.Rows = append(rep.Rows, []string{
				g.Name(), fmt.Sprintf("%d", n), f(b.GapOf(est.Mean())), f(cv),
			})
		}
		last := len(cvs) - 1
		switch grp.expect {
		case "shrink":
			if cvs[last] > cvs[0]*0.85 {
				rep.Pass = false
				rep.Notes = append(rep.Notes, grp.name+": no concentration with n")
			}
		case "flat":
			if cvs[last] < cvs[0]*0.6 {
				rep.Pass = false
				rep.Notes = append(rep.Notes, grp.name+": unexpectedly concentrated")
			}
		}
	}
	rep.Notes = append(rep.Notes,
		"paper: τ/C → 1 in probability iff C/hmax → ∞; the cycle has C/hmax = O(1)")
	return rep, nil
}

// RunLemma19ExpanderVisit checks Lemma 19's visit-probability lower bound:
// a walk of length 2s from u visits v with probability ≥ s/(2n+4s+4bn),
// using the realized (measured-λ) expander constants.
func RunLemma19ExpanderVisit(cfg Config) (*Report, error) {
	m := size(cfg, 8, 12)
	g := graph.MargulisExpander(m)
	n := g.N()
	r := rng.NewStream(cfg.Seed, hashKey("lem19"))
	op := linalg.NewWalkOperator(g, 0)
	lambdaT := linalg.SecondEigenvalueMagnitude(op, 3000, r) // transition scale = paper λ/d
	s := math.Log(2*float64(n)) / math.Log(1/lambdaT)
	b := lambdaT / (1 - lambdaT)
	bound := s / (2*float64(n) + 4*s + 4*b*float64(n))
	walkLen := int64(math.Ceil(2 * s))

	// Empirical visit probability over random (u,v) pairs.
	const pairs = 8
	rep := &Report{
		ID:      "E-lem19",
		Title:   fmt.Sprintf("Lemma 19 — 2s-walk visit probability on margulis(%d²), s=%.1f, λ=%.3f", m, s, lambdaT),
		Columns: []string{"u", "v", "P[visit] (measured)", "bound", "margin"},
		Pass:    true,
	}
	for i := 0; i < pairs; i++ {
		u := int32(r.Intn(n))
		v := int32(r.Intn(n))
		if u == v {
			v = (v + 1) % int32(n)
		}
		opts := cfg.mc(hashKey(fmt.Sprintf("lem19-%d", i)), walkLen)
		samples, err := walk.MonteCarlo(opts, func(_ int, rr *rng.Source) float64 {
			steps, hit := walk.HitFrom(g, u, v, rr, walkLen)
			_ = steps
			if hit {
				return 1
			}
			return 0
		})
		if err != nil {
			return nil, err
		}
		pVisit := stats.Summarize(samples).Mean
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%d", u), fmt.Sprintf("%d", v),
			f(pVisit), f(bound), f(pVisit / bound),
		})
		// Allow Monte Carlo slack of 3 binomial sd below the bound.
		sd := 3 * math.Sqrt(bound*(1-bound)/float64(opts.Trials))
		if pVisit < bound-sd {
			rep.Pass = false
			rep.Notes = append(rep.Notes, fmt.Sprintf("pair (%d,%d) below bound", u, v))
		}
	}
	return rep, nil
}

// RunLemma22CycleBounds checks both cycle lemmas: the Lemma 22 upper bound
// C^k ≤ 2n²/ln k and the Lemma 21 consequence C^k ≥ n²/(16·ln(8k)).
func RunLemma22CycleBounds(cfg Config) (*Report, error) {
	n := size(cfg, 64, 256)
	g := graph.Cycle(n)
	rep := &Report{
		ID:      "E-lem22",
		Title:   fmt.Sprintf("Lemmas 21–22 — cycle(%d) C^k inside [n²/(16·ln 8k), 2n²/ln k]", n),
		Columns: []string{"k", "lower", "C^k (measured)", "upper"},
		Pass:    true,
	}
	for _, k := range []int{4, 8, 16, 32} {
		est, err := walk.EstimateKCoverTime(g, 0, k,
			cfg.mc(hashKey(fmt.Sprintf("lem22-%d", k)), quadBudget(n)))
		if err != nil {
			return nil, err
		}
		upper := core.CycleUpperBoundLem22(n, k)
		lower := float64(n) * float64(n) / (16 * math.Log(8*float64(k)))
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%d", k), f(lower), estCell(est), f(upper),
		})
		if est.Mean()-est.CI95() > upper || est.Mean()+est.CI95() < lower {
			rep.Pass = false
			rep.Notes = append(rep.Notes, fmt.Sprintf("k=%d outside the band", k))
		}
	}
	return rep, nil
}

// RunProposition23 Monte Carlo checks the binomial-window estimate
// e^{-3c²-4} ≤ Pr[(c-1)√n ≤ X-n/2 ≤ c√n] ≤ e^{-2(c-1)²}.
func RunProposition23(cfg Config) (*Report, error) {
	rep := &Report{
		ID:      "E-prop23",
		Title:   "Proposition 23 — binomial window probability vs stated bounds",
		Columns: []string{"n", "c", "lower", "P (measured)", "upper"},
		Pass:    true,
	}
	r := rng.NewStream(cfg.Seed, hashKey("prop23"))
	trials := 300000
	if cfg.Quick {
		trials = 60000
	}
	for _, tc := range []struct {
		n int
		c float64
	}{{1024, 2}, {4096, 2}, {1024, 3}} {
		sqn := math.Sqrt(float64(tc.n))
		lo, hi := (tc.c-1)*sqn, tc.c*sqn
		hits := 0
		for i := 0; i < trials; i++ {
			x := float64(r.Binomial(tc.n)) - float64(tc.n)/2
			if x >= lo && x <= hi {
				hits++
			}
		}
		p := float64(hits) / float64(trials)
		lower := math.Exp(-3*tc.c*tc.c - 4)
		upper := math.Exp(-2 * (tc.c - 1) * (tc.c - 1))
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%d", tc.n), f(tc.c), f(lower), f(p), f(upper),
		})
		if p < lower || p > upper {
			rep.Pass = false
			rep.Notes = append(rep.Notes, fmt.Sprintf("n=%d c=%v outside bounds", tc.n, tc.c))
		}
	}
	return rep, nil
}

// RunConjecture10Probe reports max S^k/k over the Table 1 families plus the
// barbell, probing Conjecture 10 (S^k ≤ O(k)): only the barbell from its
// center should break the k ceiling.
func RunConjecture10Probe(cfg Config) (*Report, error) {
	rep := &Report{
		ID:      "E-conj10",
		Title:   "Conjecture 10 probe — max per-walker speed-up by family",
		Columns: []string{"graph", "start", "max S^k/k", "at k"},
		Pass:    true,
	}
	type probe struct {
		g     *graph.Graph
		start int32
		ks    []int
	}
	bar, center := graph.Barbell(size(cfg, 41, 101))
	probes := []probe{
		{graph.Cycle(size(cfg, 64, 128)), 0, []int{2, 8, 32}},
		{graph.Complete(size(cfg, 64, 128), false), 0, []int{2, 8, 32}},
		{graph.Torus2D(size(cfg, 8, 11)), 0, []int{2, 4, 8}},
		{bar, center, []int{2, 4, 8}},
	}
	sawSuper := false
	for _, pr := range probes {
		points, err := core.SpeedupCurve(pr.g, pr.start, pr.ks,
			cfg.mc(hashKey("conj10"+pr.g.Name()), 200*int64(pr.g.N())*int64(pr.g.N())))
		if err != nil {
			return nil, err
		}
		best, bestK := 0.0, 0
		for _, p := range points {
			if p.PerWalker > best {
				best, bestK = p.PerWalker, p.K
			}
		}
		rep.Rows = append(rep.Rows, []string{
			pr.g.Name(), fmt.Sprintf("%d", pr.start), f(best), fmt.Sprintf("%d", bestK),
		})
		if best > 2 {
			sawSuper = true
			if pr.g != bar {
				rep.Pass = false
				rep.Notes = append(rep.Notes,
					pr.g.Name()+" exceeds 2x per-walker efficiency — unexpected counterexample")
			}
		}
	}
	if !sawSuper {
		rep.Pass = false
		rep.Notes = append(rep.Notes, "barbell failed to exhibit superlinear speed-up")
	}
	rep.Notes = append(rep.Notes,
		"the barbell is the paper's own counterexample (from the center); all other families respect S^k = O(k)")
	return rep, nil
}

// RunAblationStartDistribution compares k-walk cover times from the worst
// single start against stationary starts (§1.1's Broder et al. setting).
func RunAblationStartDistribution(cfg Config) (*Report, error) {
	rep := &Report{
		ID:      "A-start",
		Title:   "Ablation — k walkers from one vertex vs stationary starts",
		Columns: []string{"graph", "k", "C^k (single origin)", "C^k (stationary)", "ratio"},
		Pass:    true,
	}
	bar, center := graph.Barbell(size(cfg, 41, 101))
	cases := []struct {
		g     *graph.Graph
		start int32
		k     int
	}{
		{graph.MargulisExpander(size(cfg, 8, 16)), 0, 8},
		{bar, center, 8},
		{graph.Cycle(size(cfg, 64, 128)), 0, 8},
	}
	for _, tc := range cases {
		origin, err := walk.EstimateKCoverTime(tc.g, tc.start, tc.k,
			cfg.mc(hashKey("astart"+tc.g.Name()), 200*int64(tc.g.N())*int64(tc.g.N())))
		if err != nil {
			return nil, err
		}
		stat, err := walk.EstimateKCoverTimeStationary(tc.g, tc.k,
			cfg.mc(hashKey("astart2"+tc.g.Name()), 200*int64(tc.g.N())*int64(tc.g.N())))
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, []string{
			tc.g.Name(), fmt.Sprintf("%d", tc.k), estCell(origin), estCell(stat),
			f(origin.Mean() / stat.Mean()),
		})
	}
	rep.Notes = append(rep.Notes,
		"stationary starts spread walkers immediately; on the cycle this wins big, on expanders it barely matters (fast mixing)")
	return rep, nil
}

// RunAblationLazyWalk measures the cover-time cost of laziness (stay=1/2):
// covering takes ≈2× the steps since half the moves are wasted, independent
// of family — the reason cover experiments use the simple walk and only the
// mixing computation goes lazy.
func RunAblationLazyWalk(cfg Config) (*Report, error) {
	rep := &Report{
		ID:      "A-lazy",
		Title:   "Ablation — simple vs lazy walk cover time (lazy wastes ≈half its steps)",
		Columns: []string{"graph", "C simple", "C lazy", "ratio"},
		Pass:    true,
	}
	graphs := []*graph.Graph{
		graph.Hypercube(size(cfg, 6, 8)),
		graph.Torus2D(size(cfg, 8, 16)),
	}
	for _, g := range graphs {
		simple, err := walk.EstimateCoverTime(g, 0,
			cfg.mc(hashKey("alazy"+g.Name()), nlognBudget(g.N())*4))
		if err != nil {
			return nil, err
		}
		lazy, err := estimateLazyCover(g, 0, cfg.mc(hashKey("alazy2"+g.Name()), nlognBudget(g.N())*8))
		if err != nil {
			return nil, err
		}
		ratio := lazy.Mean() / simple.Mean()
		rep.Rows = append(rep.Rows, []string{
			g.Name(), estCell(simple), estCell(lazy), f(ratio),
		})
		if ratio < 1.6 || ratio > 2.6 {
			rep.Pass = false
			rep.Notes = append(rep.Notes, fmt.Sprintf("%s ratio %.2f outside ≈2 band", g.Name(), ratio))
		}
	}
	return rep, nil
}

// estimateLazyCover is a cover-time estimator for the lazy walk: each step
// the walker stays put with probability 1/2.
func estimateLazyCover(g *graph.Graph, start int32, opts walk.MCOptions) (walk.Estimate, error) {
	samples, err := walk.MonteCarlo(opts, func(_ int, r *rng.Source) float64 {
		n := g.N()
		visited := make([]bool, n)
		visited[start] = true
		remaining := n - 1
		pos := start
		for t := int64(1); t <= opts.MaxSteps; t++ {
			if !r.Bool() {
				nb := g.Neighbors(pos)
				pos = nb[r.Intn(len(nb))]
				if !visited[pos] {
					visited[pos] = true
					remaining--
					if remaining == 0 {
						return float64(t)
					}
				}
			}
		}
		return float64(opts.MaxSteps)
	})
	if err != nil {
		return walk.Estimate{}, err
	}
	return walk.Estimate{Summary: stats.Summarize(samples)}, nil
}

// Experiment pairs a report ID with its runner so callers can select
// experiments by name (cmd/experiments -only) without running them first.
type Experiment struct {
	ID  string
	Run func(Config) (*Report, error)
}

// Experiments lists every non-Table-1 experiment in DESIGN.md order.
func Experiments() []Experiment {
	return []Experiment{
		{"F1-barbell", RunBarbellFigure},
		{"E-thm6", RunTheorem6CycleFit},
		{"E-thm8", RunTheorem8GridSpectrum},
		{"E-thm13", RunTheorem13BabyMatthews},
		{"E-thm9", RunTheorem9MixingBound},
		{"E-thm1", RunTheorem1Matthews},
		{"E-thm17", RunTheorem17Concentration},
		{"E-lem19", RunLemma19ExpanderVisit},
		{"E-lem22", RunLemma22CycleBounds},
		{"E-prop23", RunProposition23},
		{"E-conj10", RunConjecture10Probe},
		{"E-thm14", RunTheorem14Bound},
		{"E-conj11", RunConjecture11Probe},
		{"E-thm24", RunTheorem24GridLowerBound},
		{"E-partial", RunPartialCoverTail},
		{"E-lollipop", RunLollipopWorstCase},
		{"E-families", RunExtraFamilies},
		{"E-profile", RunCoverageProfile},
		{"E-search", RunSearchTradeoff},
		{"A-start", RunAblationStartDistribution},
		{"A-lazy", RunAblationLazyWalk},
		{"A-churn", RunChurnRobustness},
		{"A-nbrw", RunAblationNonBacktracking},
		{"E-kernels", RunKernelSpeedupSweep},
		{"E-collab", RunCollaborationSweep},
		{"E-adaptive", RunAdaptiveStopping},
		{"E-hopper", RunHopperKernels},
	}
}

// RunExperiments runs the given experiments in order.
func RunExperiments(cfg Config, list []Experiment) ([]*Report, error) {
	reports := make([]*Report, 0, len(list))
	for _, ex := range list {
		rep, err := ex.Run(cfg)
		if err != nil {
			return reports, err
		}
		reports = append(reports, rep)
	}
	return reports, nil
}

// AllExperiments runs every non-Table-1 experiment in DESIGN.md order.
func AllExperiments(cfg Config) ([]*Report, error) {
	return RunExperiments(cfg, Experiments())
}
