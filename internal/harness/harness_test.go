package harness

import (
	"math"
	"strings"
	"testing"

	"manywalks/internal/core"
)

func TestReportRender(t *testing.T) {
	r := &Report{
		ID:      "X",
		Title:   "demo",
		Columns: []string{"a", "bb"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
		Notes:   []string{"a note"},
		Pass:    true,
	}
	out := r.Render()
	for _, want := range []string{"== X: demo ==", "a note", "status: PASS", "333"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	r.Pass = false
	if !strings.Contains(r.Render(), "status: FAIL") {
		t.Fatal("FAIL status not rendered")
	}
}

func TestFloatCell(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		3.14159: "3.14",
		12345:   "1.23e+04",
		0.001:   "0.001",
	}
	for v, want := range cases {
		if got := f(v); got != want {
			t.Fatalf("f(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestFamilyByKey(t *testing.T) {
	fam, err := FamilyByKey("cycle")
	if err != nil || fam.Key != "cycle" {
		t.Fatalf("cycle lookup: %v", err)
	}
	if _, err := FamilyByKey("nope"); err == nil {
		t.Fatal("unknown family accepted")
	}
	if len(Table1Families()) != 7 {
		t.Fatalf("Table 1 must have 7 rows, got %d", len(Table1Families()))
	}
}

func TestGeometricKsFloor(t *testing.T) {
	ks := geometricKs(2)
	if len(ks) < 3 {
		t.Fatalf("floor failed: %v", ks)
	}
	ks = geometricKs(64)
	if ks[0] != 2 || ks[len(ks)-1] != 64 {
		t.Fatalf("sweep %v", ks)
	}
}

func TestRunTable1RowCycleQuick(t *testing.T) {
	fam, _ := FamilyByKey("cycle")
	row, err := RunTable1Row(fam, QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if row.N != 64 {
		t.Fatalf("quick cycle n = %d", row.N)
	}
	// Exact values for the cycle: C = n(n-1)/2 = 2016, hmax = n²/4 = 1024.
	if math.Abs(row.Hmax-1024) > 1e-6 {
		t.Fatalf("hmax = %v", row.Hmax)
	}
	if c := row.Cover.Mean(); c < 1600 || c > 2450 {
		t.Fatalf("cycle cover estimate %v far from 2016", c)
	}
	if row.Classification.Regime != core.RegimeLogarithmic {
		t.Fatalf("cycle regime %v", row.Classification.Regime)
	}
	if !row.LazyMixing || row.MixingTime <= 0 {
		t.Fatalf("cycle mixing: lazy=%v tm=%d", row.LazyMixing, row.MixingTime)
	}
}

func TestRunTable1RowCompleteQuick(t *testing.T) {
	fam, _ := FamilyByKey("complete")
	row, err := RunTable1Row(fam, QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if row.MixingTime != 1 {
		t.Fatalf("complete graph t_m = %d, want 1", row.MixingTime)
	}
	if row.Classification.Regime != core.RegimeLinear {
		t.Fatalf("complete regime %v", row.Classification.Regime)
	}
	if math.Abs(row.Hmax-63) > 1e-6 {
		t.Fatalf("complete hmax = %v, want 63", row.Hmax)
	}
}

func TestRunTable1AllFamiliesQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("full table in -short mode")
	}
	rep, rows, err := RunTable1(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Fatalf("Table 1 regime checks failed:\n%s", rep.Render())
	}
	if len(rows) != 7 {
		t.Fatalf("rows %d", len(rows))
	}
	for _, row := range rows {
		if row.Cover.Truncated > row.Cover.Summary.N/10 {
			t.Fatalf("%s: %d/%d truncated cover trials",
				row.Family.Key, row.Cover.Truncated, row.Cover.Summary.N)
		}
	}
}

func TestBarbellFigureQuick(t *testing.T) {
	rep, err := RunBarbellFigure(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Fatalf("barbell experiment failed:\n%s", rep.Render())
	}
}

func TestTheorem6FitQuick(t *testing.T) {
	rep, err := RunTheorem6CycleFit(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Fatalf("theorem 6 fit failed:\n%s", rep.Render())
	}
}

func TestTheorem8SpectrumQuick(t *testing.T) {
	rep, err := RunTheorem8GridSpectrum(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Fatalf("theorem 8 spectrum failed:\n%s", rep.Render())
	}
}

func TestBoundExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("bound suite in -short mode")
	}
	for _, run := range []func(Config) (*Report, error){
		RunTheorem13BabyMatthews,
		RunTheorem9MixingBound,
		RunTheorem1Matthews,
		RunTheorem14Bound,
		RunLemma22CycleBounds,
		RunProposition23,
		RunConjecture11Probe,
	} {
		rep, err := run(QuickConfig())
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Pass {
			t.Fatalf("experiment %s failed:\n%s", rep.ID, rep.Render())
		}
	}
}

func TestBehavioralExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("behavioral suite in -short mode")
	}
	for _, run := range []func(Config) (*Report, error){
		RunTheorem17Concentration,
		RunLemma19ExpanderVisit,
		RunConjecture10Probe,
		RunTheorem24GridLowerBound,
		RunPartialCoverTail,
		RunLollipopWorstCase,
		RunExtraFamilies,
		RunCoverageProfile,
		RunSearchTradeoff,
		RunAblationStartDistribution,
		RunAblationLazyWalk,
		RunChurnRobustness,
		RunAblationNonBacktracking,
	} {
		rep, err := run(QuickConfig())
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Pass {
			t.Fatalf("experiment %s failed:\n%s", rep.ID, rep.Render())
		}
	}
}

func TestAllExperimentsProduceDistinctIDs(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep in -short mode")
	}
	reports, err := AllExperiments(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	registry := Experiments()
	seen := map[string]bool{}
	for i, r := range reports {
		if seen[r.ID] {
			t.Fatalf("duplicate experiment id %s", r.ID)
		}
		seen[r.ID] = true
		if len(r.Rows) == 0 {
			t.Fatalf("experiment %s produced no rows", r.ID)
		}
		if registry[i].ID != r.ID {
			t.Fatalf("registry id %s != report id %s", registry[i].ID, r.ID)
		}
	}
	if len(reports) != 27 {
		t.Fatalf("expected 27 experiments, got %d", len(reports))
	}
}

func TestConfigSaltSeparatesStreams(t *testing.T) {
	c := DefaultConfig()
	a := c.mc(1, 100)
	b := c.mc(2, 100)
	if a.Seed == b.Seed {
		t.Fatal("salts did not separate seeds")
	}
}

func TestHashKeyStable(t *testing.T) {
	if hashKey("cycle") != hashKey("cycle") {
		t.Fatal("hashKey unstable")
	}
	if hashKey("cycle") == hashKey("torus") {
		t.Fatal("hashKey collision on distinct keys")
	}
}
