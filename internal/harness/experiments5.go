package harness

import (
	"fmt"

	"manywalks/internal/graph"
	"manywalks/internal/walk"
)

// This file holds the collaboration experiment (E-collab): meeting,
// coalescence, and partial-cover dynamics of the same synchronized k-walk,
// the observables the unified observer run-loop unlocked. Dey–Kim–Terlov's
// *Collaboration of Random Walks on Graphs* studies exactly these meeting
// and coalescence processes, and Rivera–Sauerwald–Sylvester's *Mixing Few
// to Cover Many* centers partial-cover fractions; the sweep probes both
// across the paper's four topologies.

// collabGraphs returns the four sweep topologies with spread-out walker
// starts chosen at even pairwise distances, so bipartite families (even
// cycle, even torus) cannot parity-lock two walkers apart forever.
func collabGraphs(cfg Config, k int) []struct {
	g      *graph.Graph
	starts []int32
} {
	spread := func(g *graph.Graph) []int32 {
		starts := make([]int32, k)
		n := g.N()
		step := n / k
		if step%2 == 1 {
			step-- // keep pairwise distances even on bipartite families
		}
		if step < 2 {
			step = 2
		}
		for i := range starts {
			starts[i] = int32((i * step) % n)
		}
		return starts
	}
	cycle := graph.Cycle(size(cfg, 64, 128))
	torus := graph.Torus2D(size(cfg, 8, 16))
	expander := graph.MargulisExpander(size(cfg, 8, 16))
	barbell, center := graph.Barbell(size(cfg, 33, 65))
	bstarts := spread(barbell)
	bstarts[0] = center // one walker on the bottleneck
	return []struct {
		g      *graph.Graph
		starts []int32
	}{
		{cycle, spread(cycle)},
		{torus, spread(torus)},
		{expander, spread(expander)},
		{barbell, bstarts},
	}
}

// RunCollaborationSweep measures, for k = 4 walkers on each topology, the
// expected first-meeting round, the expected full-coalescence round, and
// the partial-cover curve (rounds to 50%/90%/100% cover) — all from the
// unified observer engine — and checks the relations that are exact or
// theoretically forced:
//
//   - E[meet] ≤ E[coalesce]: the first meeting can only precede the last
//     class merge (exact per trial, so also in expectation);
//   - the partial-cover curve is nondecreasing in the fraction;
//   - on the barbell the coalescence time dwarfs the expander's at
//     comparable size (the bottleneck separates walker groups).
func RunCollaborationSweep(cfg Config) (*Report, error) {
	const k = 4
	rep := &Report{
		ID:    "E-collab",
		Title: fmt.Sprintf("Collaboration sweep — meeting / coalescence / partial cover of the %d-walk", k),
		Columns: []string{
			"graph", "E[meet]", "E[coalesce]", "t(50%)", "t(90%)", "t(100%)",
		},
		Pass: true,
	}
	trials := cfg.Trials
	if trials > 150 {
		// Coalescence budgets are long; cap the per-cell cost so the sweep
		// stays a small slice of the full suite.
		trials = 150
	}
	fractions := []float64{0.5, 0.9, 1}
	type row struct {
		name string
		coal float64
	}
	var rows []row
	for _, tc := range collabGraphs(cfg, k) {
		n := tc.g.N()
		budget := 400 * int64(n) * int64(n)
		mc := cfg.mc(hashKey("collab"+tc.g.Name()), budget)
		mc.Trials = trials

		coal, meet, err := walk.EstimateKCoalescenceTime(tc.g, tc.starts, mc)
		if err != nil {
			return nil, err
		}
		pcs, err := walk.MeanPartialCoverRounds(tc.g, tc.starts[0], k, fractions, mc)
		if err != nil {
			return nil, err
		}
		for _, e := range append([]walk.Estimate{coal, meet}, pcs...) {
			if e.Truncated > 0 {
				rep.Pass = false
				rep.Notes = append(rep.Notes, fmt.Sprintf("%s: %d truncated trials", tc.g.Name(), e.Truncated))
			}
		}
		if meet.Mean() > coal.Mean() {
			rep.Pass = false
			rep.Notes = append(rep.Notes, fmt.Sprintf(
				"%s: E[meet] %.1f > E[coalesce] %.1f, impossible", tc.g.Name(), meet.Mean(), coal.Mean()))
		}
		for i := 1; i < len(pcs); i++ {
			if pcs[i].Mean() < pcs[i-1].Mean() {
				rep.Pass = false
				rep.Notes = append(rep.Notes, fmt.Sprintf(
					"%s: partial-cover curve not monotone at %v", tc.g.Name(), fractions[i]))
			}
		}
		rows = append(rows, row{tc.g.Name(), coal.Mean()})
		rep.Rows = append(rep.Rows, []string{
			tc.g.Name(), estCell(meet), estCell(coal),
			estCell(pcs[0]), estCell(pcs[1]), estCell(pcs[2]),
		})
	}
	// rows[2] is the expander, rows[3] the barbell (same size class): the
	// bottleneck must slow coalescence by a wide margin.
	if len(rows) == 4 && rows[3].coal < 2*rows[2].coal {
		rep.Pass = false
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"barbell coalescence %.1f not clearly above expander %.1f", rows[3].coal, rows[2].coal))
	}
	rep.Notes = append(rep.Notes,
		"meeting/coalescence/partial-cover all run on the unified observer engine (one run per trial each)",
		"starts are spread at even pairwise distances so bipartite parity cannot lock walkers apart")
	return rep, nil
}
