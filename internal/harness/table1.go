package harness

import (
	"fmt"
	"math"

	"manywalks/internal/core"
	"manywalks/internal/graph"
	"manywalks/internal/linalg"
	"manywalks/internal/rng"
	"manywalks/internal/spectral"
	"manywalks/internal/walk"
)

// Family describes one row of the paper's Table 1: how to build the graph at
// the configured scale, which k values to sweep, and what the paper predicts.
type Family struct {
	Key           string
	PaperCover    string // Table 1 "Cover time" column
	PaperHitting  string // "Hitting time" column
	PaperMixing   string // "Mixing time" column
	PaperSpeedup  string // "Speed up" columns
	WantRegime    core.Regime
	Build         func(cfg Config, r *rng.Source) (*graph.Graph, int32, error)
	Ks            func(n int) []int
	MixingStarts  func(g *graph.Graph) []int32 // nil = all starts
	MixingBudget  func(n int) int
	StepBudget    func(n int) int64
	SkipExactHmax bool // families too big for the O(n³) solver in full mode
}

// size picks the quick or full scale.
func size(cfg Config, quick, full int) int {
	if cfg.Quick {
		return quick
	}
	return full
}

// geometricKs returns the doubling sweep {2,4,...,≤kMax}, always with at
// least three points ({2,4,8}) so regime classification is possible even
// when the paper's k < log n band is narrow at the configured scale.
func geometricKs(kMax int) []int {
	if kMax < 8 {
		kMax = 8
	}
	var ks []int
	for k := 2; k <= kMax; k *= 2 {
		ks = append(ks, k)
	}
	return ks
}

func singleStart(*graph.Graph) []int32 { return []int32{0} }

func quadBudget(n int) int64 { return 60 * int64(n) * int64(n) }

func nlognBudget(n int) int64 {
	b := 400 * int64(n) * int64(math.Log(float64(n))+1)
	if b < 1<<16 {
		b = 1 << 16
	}
	return b
}

// Table1Families returns the seven rows of Table 1 in paper order.
func Table1Families() []Family {
	return []Family{
		{
			Key: "cycle", PaperCover: "n²/2", PaperHitting: "n²/2",
			PaperMixing: "O(n²)", PaperSpeedup: "Θ(log k)",
			WantRegime: core.RegimeLogarithmic,
			Build: func(cfg Config, _ *rng.Source) (*graph.Graph, int32, error) {
				return graph.Cycle(size(cfg, 64, 512)), 0, nil
			},
			// Theorem 6 permits k up to e^{n/4}; sweep to k = n so the
			// Θ(log k) shape is unambiguous to the classifier.
			Ks:           func(n int) []int { return geometricKs(n) },
			MixingStarts: singleStart, // vertex-transitive
			MixingBudget: func(n int) int { return 6 * n * n },
			StepBudget:   quadBudget,
		},
		{
			Key: "grid2d", PaperCover: "Θ(n log²n)", PaperHitting: "Θ(n log n)",
			PaperMixing: "Θ(n)", PaperSpeedup: "k, k < log^{1-ε} n",
			WantRegime: core.RegimeLinear,
			Build: func(cfg Config, _ *rng.Source) (*graph.Graph, int32, error) {
				return graph.Torus2D(size(cfg, 8, 32)), 0, nil
			},
			Ks:           func(n int) []int { return geometricKs(int(math.Log(float64(n))) + 1) },
			MixingStarts: singleStart,
			MixingBudget: func(n int) int { return 40 * n },
			StepBudget:   quadBudget,
		},
		{
			Key: "grid3d", PaperCover: "Θ(n log n)", PaperHitting: "Θ(n)",
			PaperMixing: "Θ(n^{2/3})", PaperSpeedup: "k, k < log^{1-ε} n",
			WantRegime: core.RegimeLinear,
			Build: func(cfg Config, _ *rng.Source) (*graph.Graph, int32, error) {
				s := size(cfg, 4, 10)
				return graph.Grid([]int{s, s, s}, true), 0, nil
			},
			Ks:           func(n int) []int { return geometricKs(int(math.Log(float64(n))) + 1) },
			MixingStarts: singleStart,
			MixingBudget: func(n int) int { return 60 * int(math.Cbrt(float64(n))*math.Cbrt(float64(n))) },
			StepBudget:   nlognBudget,
		},
		{
			Key: "hypercube", PaperCover: "Θ(n log n)", PaperHitting: "Θ(n)",
			PaperMixing: "log n·log log n", PaperSpeedup: "k, k < log^{1-ε} n",
			WantRegime: core.RegimeLinear,
			Build: func(cfg Config, _ *rng.Source) (*graph.Graph, int32, error) {
				return graph.Hypercube(size(cfg, 6, 10)), 0, nil
			},
			Ks:           func(n int) []int { return geometricKs(int(math.Log(float64(n))) + 1) },
			MixingStarts: singleStart,
			MixingBudget: func(n int) int { return 200 * int(math.Log2(float64(n))) },
			StepBudget:   nlognBudget,
		},
		{
			Key: "complete", PaperCover: "Θ(n log n)", PaperHitting: "Θ(n)",
			PaperMixing: "1", PaperSpeedup: "k, k < n",
			WantRegime: core.RegimeLinear,
			Build: func(cfg Config, _ *rng.Source) (*graph.Graph, int32, error) {
				return graph.Complete(size(cfg, 64, 512), false), 0, nil
			},
			Ks:           func(n int) []int { return geometricKs(n / 2) },
			MixingStarts: singleStart,
			MixingBudget: func(n int) int { return 64 },
			StepBudget:   nlognBudget,
		},
		{
			Key: "expander", PaperCover: "Θ(n log n)", PaperHitting: "Θ(n)",
			PaperMixing: "log n", PaperSpeedup: "Ω(k), k < n",
			WantRegime: core.RegimeLinear,
			Build: func(cfg Config, _ *rng.Source) (*graph.Graph, int32, error) {
				return graph.MargulisExpander(size(cfg, 8, 24)), 0, nil
			},
			Ks:           func(n int) []int { return geometricKs(n / 2) },
			MixingStarts: singleStart, // MGG is vertex-transitive under the torus action
			MixingBudget: func(n int) int { return 400 * int(math.Log2(float64(n))) },
			StepBudget:   nlognBudget,
		},
		{
			Key: "errandom", PaperCover: "Θ(n log n)", PaperHitting: "Θ(n)",
			PaperMixing: "log n", PaperSpeedup: "k, k < log^{1-ε} n",
			WantRegime: core.RegimeLinear,
			Build: func(cfg Config, r *rng.Source) (*graph.Graph, int32, error) {
				n := size(cfg, 64, 512)
				p := 3 * math.Log(float64(n)) / float64(n)
				g, err := graph.ConnectedErdosRenyi(n, p, r, 50)
				return g, 0, err
			},
			Ks: func(n int) []int { return geometricKs(int(math.Log(float64(n))) + 1) },
			MixingStarts: func(g *graph.Graph) []int32 {
				// Not vertex-transitive: probe a spread of starts.
				n := int32(g.N())
				return []int32{0, n / 4, n / 2, 3 * n / 4, n - 1}
			},
			MixingBudget: func(n int) int { return 600 * int(math.Log2(float64(n))) },
			StepBudget:   nlognBudget,
		},
	}
}

// FamilyByKey returns the Table 1 family with the given key.
func FamilyByKey(key string) (Family, error) {
	for _, f := range Table1Families() {
		if f.Key == key {
			return f, nil
		}
	}
	return Family{}, fmt.Errorf("harness: unknown family %q", key)
}

// Table1Row holds the measured quantities for one family.
type Table1Row struct {
	Family         Family
	Graph          *graph.Graph
	N              int
	Cover          walk.Estimate
	Hmax, Hmin     float64
	MixingTime     int
	LazyMixing     bool
	Points         []core.SpeedupPoint
	Classification core.Classification
	RegimeOK       bool
}

// RunTable1Row measures one family at the configured scale: the cover time,
// the exact hitting extremes, the paper's mixing time, and the speed-up
// sweep with regime classification.
func RunTable1Row(fam Family, cfg Config) (*Table1Row, error) {
	r := rng.NewStream(cfg.Seed, hashKey(fam.Key))
	g, start, err := fam.Build(cfg, r)
	if err != nil {
		return nil, err
	}
	n := g.N()
	row := &Table1Row{Family: fam, Graph: g, N: n, MixingTime: -1}

	opts := cfg.mc(hashKey(fam.Key), fam.StepBudget(n))
	points, err := core.SpeedupCurve(g, start, fam.Ks(n), opts)
	if err != nil {
		return nil, err
	}
	row.Points = points
	row.Cover = points[0].Single
	cls, err := core.ClassifySpeedups(points)
	if err != nil {
		return nil, err
	}
	row.Classification = cls
	row.RegimeOK = cls.Regime == fam.WantRegime

	if !fam.SkipExactHmax && n <= core.MaxExactBoundsVertices {
		bounds, err := core.ComputeBounds(g, 0, r)
		if err != nil {
			return nil, err
		}
		row.Hmax, row.Hmin = bounds.Hmax, bounds.Hmin
		row.LazyMixing = bounds.LazyMixing
	}

	// Paper-definition mixing time with the family's start set.
	stay := 0.0
	if g.IsBipartite() {
		stay = 0.5
		row.LazyMixing = true
	}
	op := linalg.NewWalkOperator(g, stay)
	starts := spectral.AllStarts(n)
	if fam.MixingStarts != nil {
		starts = fam.MixingStarts(g)
	}
	res := spectral.MixingTime(op, starts, spectral.DefaultEpsilon, fam.MixingBudget(n))
	if !res.Truncated {
		row.MixingTime = res.Time
	}
	return row, nil
}

// RunTable1 measures every family and assembles the full Table 1 report.
func RunTable1(cfg Config) (*Report, []*Table1Row, error) {
	rep := &Report{
		ID:    "T1",
		Title: "Table 1 — cover time, hitting time, mixing time, speed-up by family",
		Columns: []string{
			"family", "n", "C (measured)", "hmax", "t_m", "k*", "S^k*",
			"S^k*/k*", "regime", "paper speed-up",
		},
		Pass: true,
	}
	var rows []*Table1Row
	for _, fam := range Table1Families() {
		row, err := RunTable1Row(fam, cfg)
		if err != nil {
			return nil, nil, fmt.Errorf("family %s: %w", fam.Key, err)
		}
		rows = append(rows, row)
		last := row.Points[len(row.Points)-1]
		tm := "—"
		if row.MixingTime >= 0 {
			tm = fmt.Sprintf("%d", row.MixingTime)
			if row.LazyMixing {
				tm += " (lazy)"
			}
		}
		rep.Rows = append(rep.Rows, []string{
			fam.Key,
			fmt.Sprintf("%d", row.N),
			estCell(row.Cover),
			f(row.Hmax),
			tm,
			fmt.Sprintf("%d", last.K),
			f(last.Speedup),
			f(last.PerWalker),
			row.Classification.Regime.String(),
			fam.PaperSpeedup,
		})
		if !row.RegimeOK {
			rep.Pass = false
			rep.Notes = append(rep.Notes, fmt.Sprintf(
				"%s: measured regime %s != expected %s (power slope %.2f)",
				fam.Key, row.Classification.Regime, fam.WantRegime, row.Classification.PowerSlope))
		}
	}
	return rep, rows, nil
}

// hashKey derives a stable per-family stream id from its key.
func hashKey(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
