// Package harness defines the runnable experiments that regenerate every
// table and figure of the paper, plus the theorem-validation experiments
// catalogued in DESIGN.md. Each experiment produces a Report — a titled
// table of rows with free-form notes — that the cmd/ binaries print and
// EXPERIMENTS.md records. The harness is deterministic given a Config seed.
package harness

import (
	"fmt"
	"strings"

	"manywalks/internal/walk"
)

// Config tunes experiment cost. Quick mode shrinks sizes and trial counts to
// keep `go test` and smoke runs fast; full mode is for the cmd binaries and
// benchmark harness.
type Config struct {
	Seed    uint64
	Trials  int // Monte Carlo trials per estimate
	Workers int // 0 = GOMAXPROCS
	Quick   bool
}

// DefaultConfig returns the full-fidelity configuration.
func DefaultConfig() Config {
	return Config{Seed: 20080614, Trials: 400} // SPAA'08 vintage seed
}

// QuickConfig returns a configuration suitable for unit tests.
func QuickConfig() Config {
	return Config{Seed: 20080614, Trials: 120, Quick: true}
}

// mc builds walk.MCOptions with a per-experiment salt so experiments do not
// share RNG streams even under one root seed.
func (c Config) mc(salt uint64, maxSteps int64) walk.MCOptions {
	return walk.MCOptions{
		Trials:   c.Trials,
		Workers:  c.Workers,
		Seed:     c.Seed ^ salt*0x9e3779b97f4a7c15,
		MaxSteps: maxSteps,
	}
}

// Report is the printable outcome of one experiment.
type Report struct {
	ID      string // experiment id from DESIGN.md, e.g. "T1-cycle"
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
	Pass    bool // bound/shape checks; presentational tables set true
}

// Render formats the report as an aligned text table.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	if len(r.Columns) > 0 {
		widths := make([]int, len(r.Columns))
		for i, c := range r.Columns {
			widths[i] = len(c)
		}
		for _, row := range r.Rows {
			for i, cell := range row {
				if i < len(widths) && len(cell) > widths[i] {
					widths[i] = len(cell)
				}
			}
		}
		writeRow := func(cells []string) {
			for i, cell := range cells {
				if i > 0 {
					b.WriteString("  ")
				}
				fmt.Fprintf(&b, "%-*s", widths[i], cell)
			}
			b.WriteByte('\n')
		}
		writeRow(r.Columns)
		sep := make([]string, len(r.Columns))
		for i := range sep {
			sep[i] = strings.Repeat("-", widths[i])
		}
		writeRow(sep)
		for _, row := range r.Rows {
			writeRow(row)
		}
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	status := "PASS"
	if !r.Pass {
		status = "FAIL"
	}
	fmt.Fprintf(&b, "status: %s\n", status)
	return b.String()
}

// f formats a float compactly for table cells.
func f(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 10000 || v < 0.01:
		return fmt.Sprintf("%.3g", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// estCell renders a walk.Estimate as "mean±ci".
func estCell(e walk.Estimate) string {
	return fmt.Sprintf("%s±%s", f(e.Mean()), f(e.CI95()))
}
