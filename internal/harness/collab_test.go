package harness

import "testing"

func TestCollaborationSweepQuickSmoke(t *testing.T) {
	rep, err := RunCollaborationSweep(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + rep.Render())
	if !rep.Pass {
		t.Fatal("collaboration sweep failed")
	}
}

func TestExperimentRegistryIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, ex := range Experiments() {
		if ex.ID == "" || ex.Run == nil {
			t.Fatalf("experiment %+v incomplete", ex)
		}
		if seen[ex.ID] {
			t.Fatalf("duplicate experiment id %q", ex.ID)
		}
		seen[ex.ID] = true
	}
	if !seen["E-collab"] {
		t.Fatal("E-collab missing from the registry")
	}
}
