package harness

import "testing"

func TestHopperKernelsQuickSmoke(t *testing.T) {
	rep, err := RunHopperKernels(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + rep.Render())
	if !rep.Pass {
		t.Fatal("hopper experiment failed")
	}
}
