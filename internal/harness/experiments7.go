package harness

import (
	"fmt"

	"manywalks/internal/graph"
	"manywalks/internal/markov"
	"manywalks/internal/walk"
)

// This file holds the multi-hopper experiment (E-hopper): the registry's
// long-range hop kernels on the paper's worst topology for the local walk.
// A random multi-hopper (Estrada et al., PAPERS.md) jumps to a vertex at
// BFS distance d with probability proportional to f(d); on the cycle, the
// power-law f(d) = 1/d turns the Θ(n²) cover time of the uniform walk into
// a near-coupon-collector process, so a single hopper covers orders of
// magnitude faster at the same trial budget. The experiment also anchors
// the hopper's simulated hitting time to the exact absorbing-chain
// expectation through markov.ChainForKernel — the registry's conformance
// contract exercised at experiment scale.

// hopperTrials caps the per-cell Monte Carlo cost: the uniform baseline row
// walks ~n²/2 rounds per trial at full scale, so the default 400-trial
// budget would dominate the whole suite.
func hopperTrials(cfg Config) int {
	if cfg.Trials > 60 {
		return 60
	}
	return cfg.Trials
}

// RunHopperKernels measures single-walker (k=1) cover times on the cycle
// under the uniform walk and the registered hopper kernels, and checks:
//
//   - the power-law hopper (f(d) = 1/d) covers at least 5x faster than the
//     uniform walk at the same trial budget and seeds;
//   - the power-law hopper's Monte Carlo hitting time h(0, n/2) agrees
//     with the exact absorbing-chain expectation within the combined CI
//     (MC CI + 1% solver band) — the exact anchor;
//   - the exponential hopper lands between the two (short hops help less).
func RunHopperKernels(cfg Config) (*Report, error) {
	n := size(cfg, 256, 1024)
	g := graph.Cycle(n)
	rep := &Report{
		ID:    "E-hopper",
		Title: fmt.Sprintf("Multi-hopper kernels — k=1 cover on cycle(%d) with exact hitting anchor", n),
		Columns: []string{
			"kernel", "C (k=1)", "speedup vs uniform", "h(0,n/2) MC", "h(0,n/2) exact",
		},
		Pass: true,
	}
	kernels := []walk.Kernel{
		walk.Uniform(),
		walk.HopperPower(1),
		walk.HopperExp(0.5),
	}
	target := int32(n / 2)
	covers := make([]walk.Estimate, len(kernels))
	for i, kern := range kernels {
		opts := cfg.mc(hashKey("hopper-cover"), 4*int64(n)*int64(n))
		opts.Trials = hopperTrials(cfg)
		cover, err := walk.EstimateKernelCoverTime(g, kern, 0, opts)
		if err != nil {
			return nil, err
		}
		if cover.Truncated > 0 {
			rep.Pass = false
			rep.Notes = append(rep.Notes, fmt.Sprintf("%s: %d truncated cover trials", kern, cover.Truncated))
		}
		covers[i] = cover

		hitCell, exactCell := "-", "-"
		if _, _, err := kern.TransitionProbs(g, 0); err == nil {
			hopts := cfg.mc(hashKey("hopper-hit"+kern.String()), 4*int64(n)*int64(n))
			hopts.Trials = hopperTrials(cfg)
			hit, err := walk.EstimateKernelHittingTime(g, kern, 0, target, hopts)
			if err != nil {
				return nil, err
			}
			exact, err := markov.KernelHittingTimeVia(g, kern, 0, target)
			if err != nil {
				return nil, err
			}
			hitCell, exactCell = estCell(hit), f(exact)
			if diff := abs(hit.Mean() - exact); diff > hit.CI95()+0.01*exact {
				rep.Pass = false
				rep.Notes = append(rep.Notes, fmt.Sprintf(
					"%s: MC hitting %.1f vs exact %.1f beyond combined CI — anchor broken", kern, hit.Mean(), exact))
			}
		}
		speedup := covers[0].Mean() / cover.Mean()
		rep.Rows = append(rep.Rows, []string{
			kern.String(), estCell(cover), f(speedup), hitCell, exactCell,
		})
	}
	if ratio := covers[0].Mean() / covers[1].Mean(); ratio < 5 {
		rep.Pass = false
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"power-law hopper covers only %.2fx faster than uniform; want >= 5x", ratio))
	}
	rep.Notes = append(rep.Notes,
		"hop laws over BFS distance d: power f(d)=1/d, exp f(d)=e^{-d/2}; distances compiled once per kernel",
		"uniform hitting h(0,n/2) on the cycle is exactly (n/2)(n-n/2); the chain solve reproduces it",
	)
	return rep, nil
}
