package harness

import (
	"fmt"
	"math"

	"manywalks/internal/core"
	"manywalks/internal/dynamic"
	"manywalks/internal/graph"
	"manywalks/internal/netsim"
	"manywalks/internal/rng"
	"manywalks/internal/walk"
)

// RunTheorem24GridLowerBound checks the d-dimensional torus lower bound
// C^k ≥ Ω(n^{2/d}/log k): the projection argument reduces to the cycle's
// Lemma 21, giving the concrete reference curve (n^{1/d})²/(16·ln 8k).
func RunTheorem24GridLowerBound(cfg Config) (*Report, error) {
	rep := &Report{
		ID:      "E-thm24",
		Title:   "Theorem 24 — torus C^k vs the projection lower bound n^{2/d}/(16·ln 8k)",
		Columns: []string{"graph", "d", "k", "C^k (measured)", "lower bound", "margin"},
		Pass:    true,
	}
	type tc struct {
		g    *graph.Graph
		d    int
		side int
	}
	side2 := size(cfg, 16, 32)
	side3 := size(cfg, 5, 8)
	cases := []tc{
		{graph.Torus2D(side2), 2, side2},
		{graph.Grid([]int{side3, side3, side3}, true), 3, side3},
	}
	for _, c := range cases {
		for _, k := range []int{4, 16, 64} {
			est, err := walk.EstimateKCoverTime(c.g, 0, k,
				cfg.mc(hashKey(fmt.Sprintf("thm24-%d-%d", c.d, k)), quadBudget(c.g.N())))
			if err != nil {
				return nil, err
			}
			// n^{2/d} = side²; the Lemma 21 projection constant.
			bound := float64(c.side*c.side) / (16 * math.Log(8*float64(k)))
			margin := est.Mean() / bound
			rep.Rows = append(rep.Rows, []string{
				c.g.Name(), fmt.Sprintf("%d", c.d), fmt.Sprintf("%d", k),
				estCell(est), f(bound), f(margin),
			})
			if est.Mean()+est.CI95() < bound {
				rep.Pass = false
				rep.Notes = append(rep.Notes, fmt.Sprintf(
					"%s k=%d below the lower bound", c.g.Name(), k))
			}
		}
	}
	return rep, nil
}

// RunPartialCoverTail measures the α-partial cover time on the torus for
// k ∈ {1, 8}: the share of time spent on the last 10% of vertices shrinks
// as k grows, which is precisely the mechanism behind the paper's linear
// speed-up (the k walkers parallelize the expensive tail).
func RunPartialCoverTail(cfg Config) (*Report, error) {
	g := graph.Torus2D(size(cfg, 8, 16))
	rep := &Report{
		ID:      "E-partial",
		Title:   fmt.Sprintf("Partial cover on %s — the last 10%% dominates, and k parallelizes it", g.Name()),
		Columns: []string{"k", "t(α=0.5)", "t(α=0.9)", "t(α=1.0)", "tail share t(1)-t(0.9) / t(1)"},
		Pass:    true,
	}
	shares := map[int]float64{}
	for _, k := range []int{1, 8} {
		var ts [3]walk.Estimate
		for i, alpha := range []float64{0.5, 0.9, 1.0} {
			est, err := walk.EstimatePartialCoverTime(g, 0, k, alpha,
				cfg.mc(hashKey(fmt.Sprintf("partial-%d-%v", k, alpha)), quadBudget(g.N())))
			if err != nil {
				return nil, err
			}
			ts[i] = est
		}
		share := (ts[2].Mean() - ts[1].Mean()) / ts[2].Mean()
		shares[k] = share
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%d", k), estCell(ts[0]), estCell(ts[1]), estCell(ts[2]), f(share),
		})
	}
	// The expensive tail: for a single walk the last 10% of vertices costs
	// a third or more of the whole cover time.
	if shares[1] < 0.25 {
		rep.Pass = false
		rep.Notes = append(rep.Notes, "single-walk tail share unexpectedly small")
	}
	rep.Notes = append(rep.Notes,
		"cover time is dominated by the hardest few vertices; k walkers attack that tail in parallel")
	return rep, nil
}

// RunLollipopWorstCase confirms the preliminaries' Θ(n³) lollipop cover time
// by measuring the growth exponent across a size doubling.
func RunLollipopWorstCase(cfg Config) (*Report, error) {
	n1 := size(cfg, 32, 64)
	n2 := 2 * n1
	rep := &Report{
		ID:      "E-lollipop",
		Title:   "Lollipop worst case — cover-time growth exponent across a doubling",
		Columns: []string{"n", "C (measured)", "C/n³"},
		Pass:    true,
	}
	var cs [2]float64
	for i, n := range []int{n1, n2} {
		g := graph.Lollipop(n/2, n-n/2)
		// Start inside the clique: the walk must drag itself down the path.
		est, err := walk.EstimateCoverTime(g, 1,
			cfg.mc(hashKey(fmt.Sprintf("lolli-%d", n)), 4*int64(n)*int64(n)*int64(n)))
		if err != nil {
			return nil, err
		}
		cs[i] = est.Mean()
		nf := float64(n)
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%d", n), estCell(est), f(est.Mean() / (nf * nf * nf)),
		})
	}
	exponent := math.Log2(cs[1] / cs[0])
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"doubling exponent log2(C(2n)/C(n)) = %.2f (paper: 3 for the Θ(n³) lollipop)", exponent))
	if exponent < 2.4 || exponent > 3.6 {
		rep.Pass = false
		rep.Notes = append(rep.Notes, "growth exponent outside the cubic band")
	}
	return rep, nil
}

// RunExtraFamilies extends Theorem 4's list beyond Table 1: balanced trees,
// random geometric graphs, and random regular graphs are all Matthews-tight
// families the paper names; their measured regimes must be linear.
func RunExtraFamilies(cfg Config) (*Report, error) {
	rep := &Report{
		ID:      "E-families",
		Title:   "Theorem 4 extras — trees, random geometric, random regular",
		Columns: []string{"graph", "n", "S^k at kmax", "power slope", "regime"},
		Pass:    true,
	}
	r := rng.NewStream(cfg.Seed, hashKey("families"))
	rggN := size(cfg, 150, 400)
	rggRadius := 2 * math.Sqrt(math.Log(float64(rggN))/(math.Pi*float64(rggN)))
	var rgg *graph.Graph
	for try := 0; try < 60; try++ {
		cand := graph.RandomGeometric(rggN, rggRadius, r)
		if cand.IsConnected() {
			rgg = cand
			break
		}
	}
	if rgg == nil {
		return nil, fmt.Errorf("harness: no connected RGG at n=%d r=%.3f", rggN, rggRadius)
	}
	reg, err := graph.ConnectedRandomRegular(size(cfg, 64, 256), 4, r, 300)
	if err != nil {
		return nil, err
	}
	cases := []*graph.Graph{
		graph.BalancedTree(2, size(cfg, 5, 7)),
		rgg,
		reg,
	}
	for _, g := range cases {
		ks := geometricKs(int(math.Log(float64(g.N()))) + 1)
		points, err := core.SpeedupCurve(g, 0, ks,
			cfg.mc(hashKey("families"+g.Name()), quadBudget(g.N())))
		if err != nil {
			return nil, err
		}
		cls, err := core.ClassifySpeedups(points)
		if err != nil {
			return nil, err
		}
		last := points[len(points)-1]
		rep.Rows = append(rep.Rows, []string{
			g.Name(), fmt.Sprintf("%d", g.N()), f(last.Speedup),
			f(cls.PowerSlope), cls.Regime.String(),
		})
		if cls.Regime != core.RegimeLinear {
			rep.Pass = false
			rep.Notes = append(rep.Notes, g.Name()+" not linear")
		}
	}
	return rep, nil
}

// RunChurnRobustness quantifies the introduction's robustness claim: cover
// times under degree-preserving topology churn stay within a small factor
// of the static ones, for both one walk and many.
func RunChurnRobustness(cfg Config) (*Report, error) {
	rep := &Report{
		ID:      "A-churn",
		Title:   "Ablation — k-walk cover under degree-preserving topology churn",
		Columns: []string{"graph", "k", "C^k static", "C^k churned", "ratio"},
		Pass:    true,
	}
	r := rng.NewStream(cfg.Seed, hashKey("churn"))
	g, err := graph.ConnectedRandomRegular(size(cfg, 96, 256), 4, r, 300)
	if err != nil {
		return nil, err
	}
	churner := dynamic.SwapChurner{SwapsPerRound: 4}
	for _, k := range []int{1, 8} {
		static, err := dynamic.EstimateKCoverUnderChurn(g, 0, k, dynamic.NopChurner{},
			cfg.mc(hashKey(fmt.Sprintf("churn-s-%d", k)), quadBudget(g.N())))
		if err != nil {
			return nil, err
		}
		churned, err := dynamic.EstimateKCoverUnderChurn(g, 0, k, churner,
			cfg.mc(hashKey(fmt.Sprintf("churn-c-%d", k)), quadBudget(g.N())))
		if err != nil {
			return nil, err
		}
		ratio := churned.Mean() / static.Mean()
		rep.Rows = append(rep.Rows, []string{
			g.Name(), fmt.Sprintf("%d", k), estCell(static), estCell(churned), f(ratio),
		})
		if churned.Truncated > 0 || ratio > 1.6 || ratio < 0.5 {
			rep.Pass = false
			rep.Notes = append(rep.Notes, fmt.Sprintf("k=%d robustness band violated", k))
		}
	}
	rep.Notes = append(rep.Notes,
		"random walks need no topology knowledge, so degree-preserving churn leaves cover times essentially unchanged")
	return rep, nil
}

// RunCoverageProfile reports the mean coverage curve (distinct vertices
// visited over time) for k ∈ {1, 8} at matched work (same wall-clock
// rounds): the k-walk curve dominates pointwise.
func RunCoverageProfile(cfg Config) (*Report, error) {
	g := graph.Torus2D(size(cfg, 8, 16))
	n := g.N()
	horizon := int64(4 * n)
	rep := &Report{
		ID:      "E-profile",
		Title:   fmt.Sprintf("Coverage profile on %s — distinct vertices vs rounds", g.Name()),
		Columns: []string{"rounds", "covered (k=1)", "covered (k=8)", "ratio"},
		Pass:    true,
	}
	opts := cfg.mc(hashKey("profile"), 1)
	p1, err := walk.MeanCoverageProfile(g, 0, 1, horizon, opts)
	if err != nil {
		return nil, err
	}
	p8, err := walk.MeanCoverageProfile(g, 0, 8, horizon, opts)
	if err != nil {
		return nil, err
	}
	dominated := true
	for _, frac := range []float64{0.125, 0.25, 0.5, 1.0} {
		t := int64(frac * float64(horizon))
		ratio := p8[t] / p1[t]
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%d", t), f(p1[t]), f(p8[t]), f(ratio),
		})
		if p8[t] < p1[t] {
			dominated = false
		}
	}
	rep.Pass = dominated
	if !dominated {
		rep.Notes = append(rep.Notes, "k=8 profile failed to dominate k=1")
	}
	return rep, nil
}

// RunSearchTradeoff reproduces the introduction's systems story with the
// network simulator: latency and message cost of k-walk queries versus
// flooding for a replicated item on an expander overlay.
func RunSearchTradeoff(cfg Config) (*Report, error) {
	m := size(cfg, 10, 16)
	g := graph.MargulisExpander(m)
	n := g.N()
	rep := &Report{
		ID:      "E-search",
		Title:   fmt.Sprintf("Search trade-off on %s — k-walk queries vs flooding", g.Name()),
		Columns: []string{"strategy", "P[found]", "mean latency (rounds)", "mean messages"},
		Pass:    true,
	}
	// Item replicated on ~2% of nodes, away from the origin.
	hasItem := make([]bool, n)
	rr := rng.NewStream(cfg.Seed, hashKey("search"))
	replicas := n / 50
	if replicas < 2 {
		replicas = 2
	}
	for placed := 0; placed < replicas; {
		v := int32(rr.Intn(n))
		if v != 0 && !hasItem[v] {
			hasItem[v] = true
			placed++
		}
	}
	queries := cfg.Trials
	ttl := 20 * n
	type agg struct {
		found          int
		rounds, budget int64
	}
	walkAgg := map[int]*agg{}
	var walkLatency1 float64
	// All of a fleet size's queries run as one trial-fused engine pass
	// (netsim.RunWalkQueriesEngine) against an engine constructed once for
	// the overlay; per-query seeds are unchanged, so every result matches
	// the former query-at-a-time loop exactly.
	queryEngine := walk.NewEngine(g, walk.EngineOptions{})
	for _, k := range []int{1, 4, 16} {
		a := &agg{}
		seeds := make([]uint64, queries)
		for q := range seeds {
			seeds[q] = cfg.Seed ^ hashKey(fmt.Sprintf("search-%d-%d", k, q))
		}
		for _, res := range netsim.RunWalkQueriesEngine(queryEngine, 0, k, ttl, hasItem, seeds) {
			if res.Found {
				a.found++
				a.rounds += int64(res.Rounds)
			}
			a.budget += res.Messages
		}
		walkAgg[k] = a
		lat := float64(a.rounds) / float64(max(a.found, 1))
		if k == 1 {
			walkLatency1 = lat
		}
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%d-walk", k),
			f(float64(a.found) / float64(queries)),
			f(lat),
			f(float64(a.budget) / float64(queries)),
		})
	}
	fa := &agg{}
	for q := 0; q < queries; q++ {
		res := netsim.RunFloodQuery(g, 0, n, hasItem,
			rng.NewStream(cfg.Seed, hashKey(fmt.Sprintf("search-f-%d", q))))
		if res.Found {
			fa.found++
			fa.rounds += int64(res.Rounds)
		}
		fa.budget += res.Messages
	}
	rep.Rows = append(rep.Rows, []string{
		"flood",
		f(float64(fa.found) / float64(queries)),
		f(float64(fa.rounds) / float64(max(fa.found, 1))),
		f(float64(fa.budget) / float64(queries)),
	})
	// Shape checks: 16 walks beat 1 walk on latency by ≥4×; flooding is the
	// latency optimum but pays more messages than a 1-walk query.
	lat16 := float64(walkAgg[16].rounds) / float64(max(walkAgg[16].found, 1))
	if walkLatency1 < 4*lat16 {
		rep.Pass = false
		rep.Notes = append(rep.Notes, "k=16 latency gain below 4x")
	}
	msg1 := float64(walkAgg[1].budget) / float64(queries)
	msgFlood := float64(fa.budget) / float64(queries)
	if msgFlood < msg1 {
		rep.Notes = append(rep.Notes,
			"note: flooding used fewer messages than the single walk at this replication level")
	}
	return rep, nil
}
