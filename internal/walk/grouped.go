package walk

import (
	"fmt"
	"sync"

	"manywalks/internal/rng"
)

// This file implements the trial-fused Monte Carlo driver: RunGrouped steps
// Trials independent runs of the same shape — k walkers each, on one
// compiled graph — as a single wide engine pass. The walker array is
// partitioned into *trial lanes* of k walkers; lane j of the pass holds one
// trial's walkers, with its own observer state (first-visit lane, hit flag,
// collision tracker), its own satisfaction round, and per-walker RNG
// streams derived exactly as the sequential path derives them:
//
//	trial t's driver stream is rng.NewStream(spec.Seed, t) — the stream
//	MonteCarlo hands its closures — from which the trial draws its
//	placement (spec.Place) and then its engine seed (one Uint64), and
//	walker i of the trial runs on rng.NewStream(engineSeed, i), exactly
//	like Engine.Run. Every per-trial sample is therefore bit-for-bit
//	equal to the sequential MonteCarlo + Engine.Run output.
//
// Trials are independent, so lanes never interact: each lane is scanned by
// the worker that owns it, all bookkeeping is lane-private, and a lane's
// outcome cannot depend on Workers or batch partitioning. When a lane's
// stop condition has fired by a merge barrier the lane *retires*: its
// result is recorded and the position/stream/reservoir/observer lanes
// swap-compact (the last active lane moves into its slot), so the heavy
// tail of slow trials never drags the width of the pass — cover times are
// heavy-tailed, and without compaction fusion would lose its win stepping
// finished trials to the horizon.
//
// Two step paths drive the lanes. The uniform kernel on a padded graph
// runs the fused two-step loop of groupedfused.go (pair transition table,
// block-generated draws, inline first-visit scan). Everything else — the
// non-uniform kernels, CSR-mode graphs, and the hit/collision observers —
// runs the generic path below: the engine's own stepRound over the whole
// active width, with per-round lane scans. Both paths produce identical
// per-trial results; TestFusedMatchesSequentialTrials pins them against
// the sequential engine across a Workers × BatchRounds grid.

// MaxGroupedRounds is the largest MaxRounds RunGrouped accepts: first-visit
// lanes store rounds as uint32 (with ^0 as the unset sentinel) and the fused
// pair passes stage them through signed 32-bit arithmetic, so round 2^31-1
// is the last representable and a budget of exactly 2^31 must already take
// the sequential path. Estimators with larger budgets fall back to the
// sequential MonteCarlo path automatically; external callers (netsim query
// sweeps, the serving coalescer) gate on this constant the same way.
const MaxGroupedRounds = int64(1)<<31 - 1

// GroupedRunSpec describes Trials independent k-walk runs of one shape.
type GroupedRunSpec struct {
	// Trials is the number of independent runs (required, > 0).
	Trials int
	// Starts is the placement every trial shares (len k >= 1). When Place
	// is set it is the scratch template Place overwrites per trial.
	Starts []int32
	// Place, when non-nil, fills starts (a scratch slice of len k) with
	// trial's placement, drawing any randomness from r — the trial's
	// driver stream, positioned exactly where MonteCarlo's closures see
	// it. Mutually exclusive with Seeds and StartsFor.
	Place func(trial int, r *rng.Source, starts []int32)
	// StartsFor, when non-nil, overwrites starts (a scratch slice of len
	// k) with trial's placement deterministically — it draws no
	// randomness, so unlike Place it composes with Seeds. It is the
	// externally-coalesced shape: a serving layer folding requests with
	// different origins into one pass supplies each lane's placement here
	// and its engine seed through Seeds, reproducing each request's
	// standalone Engine.Run exactly. Mutually exclusive with Place.
	StartsFor func(trial int, starts []int32)
	// Seed is the root seed; trial t's driver stream is NewStream(Seed, t)
	// and its engine seed is the stream's first draw after Place.
	Seed uint64
	// TrialBase offsets the trial index used for seed derivation and the
	// Place/StartsFor callbacks: the pass runs trials [TrialBase,
	// TrialBase+Trials) of the caller's global schedule, each bit-for-bit
	// equal to the same trial of a single TrialBase-0 pass. It is how the
	// adaptive driver runs wave w as trials [w·W, (w+1)·W) without
	// perturbing any trial's stream. Outputs stay locally indexed
	// 0..Trials-1. Seeds, when set, is likewise local (len Trials — the
	// caller already positioned it).
	TrialBase int
	// Seeds, when non-nil, gives every trial an explicit engine seed
	// (len Trials), bypassing the Seed/Place derivation — the shape of
	// callers like the netsim query sweeps that pick per-query seeds.
	Seeds []uint64
	// MaxRounds is the per-trial round budget (required, > 0, and at most
	// MaxGroupedRounds).
	MaxRounds int64
	// Workers caps the goroutines stepping lane shards (0: the engine's
	// worker count). Results never depend on it.
	Workers int
}

// GroupedResult reports every trial's outcome: the exact round its stop
// condition fired (Stopped true) or the exhausted budget (Stopped false).
// Waves and Converged are filled only by the adaptive (sequential stopping)
// driver — RunGrouped itself leaves them zero.
type GroupedResult struct {
	Rounds  []int64
	Stopped []bool
	// Waves is the number of adaptive waves run (0 for a fixed-count run).
	Waves int
	// Converged reports the adaptive stop rule was met before MaxTrials.
	Converged bool
}

// GroupObserver watches the trial lanes of one grouped run. Like Observer,
// the method set is unexported: the determinism contract (lane-private
// scans by the owning worker, slot-stable per-trial state) is internal to
// this package. Lane state is indexed through slots that survive
// compaction, so retiring a trial never copies observer lanes.
type GroupObserver interface {
	// validateGroup checks configuration against the run shape.
	validateGroup(n, k, trials int) error
	// bindGroup sizes per-trial outputs and per-lane scratch: the run has
	// trials trials total, at most lanes concurrent lanes of k walkers,
	// scanned by at most workers goroutines.
	bindGroup(e *Engine, trials, lanes, k, workers int)
	// startLane binds lane ln to trial and observes its round-0 placement.
	startLane(ln, trial int, starts []int32)
	// scanRound is called by worker w after round t's step pass with lanes
	// [loLane, hiLane) fresh in gs.pos. It may touch only lane-private and
	// worker-private state.
	scanRound(gs *groupState, loLane, hiLane, w int, t int64)
	// laneSatisfied returns the first round lane ln's predicate held, or
	// -1. Monotone per lane.
	laneSatisfied(ln int) int64
	// finishLane records lane ln's terminal state into trial-indexed
	// storage at retirement (single-threaded, at a barrier).
	finishLane(ln, trial int, rounds int64, stopped bool)
	// moveLane relocates lane src's state onto slot dst during compaction
	// (slot indirections swap; no lane content is copied).
	moveLane(dst, src int)
}

// neverSatisfiable lets an observer prove up front that no amount of
// stepping can satisfy it, so the driver can censor its trials without
// running them.
type neverSatisfiable interface {
	neverSatisfied() bool
}

// laneCelled is implemented by observers whose per-lane state scales with
// the vertex count; the driver narrows chunks so their cells stay within
// the cache budget. Observers with O(1) lane state fuse at full width.
type laneCelled interface {
	perLaneCells(n int) int
}

// groupState is the mutable state of one grouped chunk: the embedded
// runState holds the fused walker arrays (pos/streams/res/prev sized
// lanes × k), so the engine's stepRound kernels drive the compacted lane
// set unchanged.
type groupState struct {
	runState
	laneK      int        // walkers per lane
	lanes      int        // active lanes; lane j owns walkers [j*laneK, (j+1)*laneK)
	laneTrial  []int32    // active lane -> trial index
	laneStarts []int32    // seeding scratch, len laneK
	driver     rng.Source // per-trial driver-stream scratch (pooled: its pointer flows into spec.Place, so a local would escape)
	wg         sync.WaitGroup
}

// newGroupState borrows or allocates chunk state for lanes trial lanes of
// k walkers each.
func (e *Engine) newGroupState(lanes, k int) *groupState {
	gst, _ := e.gpool.Get().(*groupState)
	if gst == nil {
		gst = &groupState{}
	}
	width := lanes * k
	gst.laneK = k
	gst.lanes = lanes
	gst.k = width
	if cap(gst.pos) < width {
		gst.pos = make([]int32, width)
		gst.streams = make([]rng.Source, width)
		gst.res = make([]uint64, width)
	}
	gst.pos, gst.streams, gst.res = gst.pos[:width], gst.streams[:width], gst.res[:width]
	if e.prog.needPrev {
		if cap(gst.prev) < width {
			gst.prev = make([]int32, width)
		}
		gst.prev = gst.prev[:width]
	}
	if cap(gst.laneTrial) < lanes {
		gst.laneTrial = make([]int32, lanes)
	}
	gst.laneTrial = gst.laneTrial[:lanes]
	gst.laneStarts = growSlice(gst.laneStarts, k)
	return gst
}

// growSlice returns s resized to n, reusing capacity when it suffices.
// Contents are unspecified: callers overwrite every slot before reading.
// It is the reuse primitive behind RunGroupedInto's zero-steady-state
// allocation contract — once a buffer has reached its high-water mark,
// later runs of the same or smaller shape never touch the allocator.
func growSlice[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// retireLane compacts lane ln out of the active set: the last active
// lane's walker state moves into its slot. The retired lane's walker state
// is dead — its result is already recorded.
func (gst *groupState) retireLane(ln int, obs []GroupObserver) {
	last := gst.lanes - 1
	if ln != last {
		k := gst.laneK
		d, s := ln*k, last*k
		copy(gst.pos[d:d+k], gst.pos[s:s+k])
		copy(gst.res[d:d+k], gst.res[s:s+k])
		copy(gst.streams[d:d+k], gst.streams[s:s+k])
		if gst.prev != nil {
			copy(gst.prev[d:d+k], gst.prev[s:s+k])
		}
		gst.laneTrial[ln] = gst.laneTrial[last]
		for _, o := range obs {
			o.moveLane(ln, last)
		}
	}
	gst.lanes--
}

// groupChunkLanes bounds the number of concurrent lanes so the fused pass
// stays cache-resident: at most maxGroupWalkers walkers, and at most
// maxGroupLaneCells observer lane cells (cellsPerLane is the widest
// per-lane cell state any observer of the run allocates — zero for
// observers like the hit lanes whose per-lane state is O(1), which then
// fuse at full width on any graph size). Trials beyond the chunk run in
// subsequent chunks.
func groupChunkLanes(trials, k, cellsPerLane int) int {
	const (
		maxGroupWalkers   = 1 << 14 // 16384 walkers: 512 KiB of stream state
		maxGroupLaneCells = 1 << 22 // 4M uint32 first-visit cells: 16 MiB
	)
	lanes := trials
	if byWalkers := maxGroupWalkers / k; lanes > byWalkers {
		lanes = byWalkers
	}
	if cellsPerLane > 0 {
		if byCells := maxGroupLaneCells / cellsPerLane; lanes > byCells {
			lanes = byCells
		}
	}
	if lanes < 1 {
		lanes = 1
	}
	return lanes
}

// validateGrouped checks the spec and fills defaults.
func (e *Engine) validateGrouped(spec *GroupedRunSpec, obs []GroupObserver) error {
	if len(obs) == 0 {
		return fmt.Errorf("walk: grouped run requires at least one observer")
	}
	if spec.Trials <= 0 {
		return fmt.Errorf("walk: grouped run requires Trials > 0, got %d", spec.Trials)
	}
	k := len(spec.Starts)
	if k == 0 {
		return fmt.Errorf("walk: k-walk requires at least one walker")
	}
	if spec.MaxRounds <= 0 {
		return fmt.Errorf("walk: grouped run requires MaxRounds > 0, got %d", spec.MaxRounds)
	}
	if spec.MaxRounds > MaxGroupedRounds {
		return fmt.Errorf("walk: grouped run budget %d exceeds %d rounds; use the sequential path", spec.MaxRounds, MaxGroupedRounds)
	}
	if spec.Seeds != nil {
		if len(spec.Seeds) != spec.Trials {
			return fmt.Errorf("walk: %d explicit seeds for %d trials", len(spec.Seeds), spec.Trials)
		}
		if spec.Place != nil {
			return fmt.Errorf("walk: Seeds and Place are mutually exclusive")
		}
	}
	if spec.StartsFor != nil && spec.Place != nil {
		return fmt.Errorf("walk: StartsFor and Place are mutually exclusive")
	}
	n := e.g.N()
	if spec.Place == nil && spec.StartsFor == nil {
		for i, s := range spec.Starts {
			if s < 0 || int(s) >= n {
				return fmt.Errorf("walk: start[%d] = %d out of range [0,%d)", i, s, n)
			}
		}
	}
	for _, o := range obs {
		if err := o.validateGroup(n, k, spec.Trials); err != nil {
			return err
		}
	}
	if spec.Workers <= 0 {
		spec.Workers = e.workers
	}
	return nil
}

// RunGrouped executes spec.Trials independent runs as fused trial-lane
// passes and returns every trial's outcome. A trial stops at the first
// round all observers are satisfied for its lane (the StopWhenAll
// contract); trials that exhaust MaxRounds report it with Stopped false.
// Per-trial results are bit-for-bit equal to running each trial through
// Engine.Run with the derivation documented on GroupedRunSpec, regardless
// of Workers, batch partitioning, and chunking.
func (e *Engine) RunGrouped(spec GroupedRunSpec, observers ...GroupObserver) (GroupedResult, error) {
	var res GroupedResult
	if err := e.RunGroupedInto(spec, &res, observers...); err != nil {
		return GroupedResult{}, err
	}
	return res, nil
}

// RunGroupedInto is RunGrouped writing its outcome into a caller-owned
// result, reusing res.Rounds/res.Stopped capacity when it suffices. A
// caller that keeps res (and its observers) across passes reaches zero
// steady-state allocation: the engine's chunk state is pooled, the
// observers reuse their lane scratch and per-trial outputs, and this entry
// point removes the last per-pass make — the shape the serving layer's
// dispatch ticks run. On error the contents of res are unspecified.
func (e *Engine) RunGroupedInto(spec GroupedRunSpec, res *GroupedResult, observers ...GroupObserver) error {
	if err := e.validateGrouped(&spec, observers); err != nil {
		return err
	}
	k := len(spec.Starts)
	cellsPerLane := 0
	for _, o := range observers {
		if lc, ok := o.(laneCelled); ok {
			if c := lc.perLaneCells(e.g.N()); c > cellsPerLane {
				cellsPerLane = c
			}
		}
	}
	chunk := groupChunkLanes(spec.Trials, k, cellsPerLane)
	workers := spec.Workers
	if workers > chunk {
		workers = chunk
	}
	for _, o := range observers {
		o.bindGroup(e, spec.Trials, chunk, k, workers)
	}
	res.Rounds = growSlice(res.Rounds, spec.Trials)
	res.Stopped = growSlice(res.Stopped, spec.Trials)
	res.Waves, res.Converged = 0, false
	gst := e.newGroupState(chunk, k)
	defer e.gpool.Put(gst)
	for c0 := 0; c0 < spec.Trials; c0 += chunk {
		m := chunk
		if m > spec.Trials-c0 {
			m = spec.Trials - c0
		}
		if err := e.runGroupedChunk(gst, &spec, observers, res, c0, m); err != nil {
			return err
		}
	}
	return nil
}

// seedLane derives and installs trial's placement and walker streams into
// lane ln, mirroring the sequential derivation exactly.
func (e *Engine) seedLane(gst *groupState, spec *GroupedRunSpec, ln, trial int) error {
	k := gst.laneK
	driver := &gst.driver
	laneStarts := gst.laneStarts
	copy(laneStarts, spec.Starts)
	// gTrial is the trial's index in the caller's global schedule — the
	// index every stream derivation and placement callback sees. Outputs
	// stay indexed by the pass-local trial.
	gTrial := spec.TrialBase + trial
	if spec.StartsFor != nil {
		spec.StartsFor(gTrial, laneStarts)
		n := e.g.N()
		for i, s := range laneStarts {
			if s < 0 || int(s) >= n {
				return fmt.Errorf("walk: trial %d start[%d] = %d out of range [0,%d)", gTrial, i, s, n)
			}
		}
	}
	var engineSeed uint64
	if spec.Seeds != nil {
		engineSeed = spec.Seeds[trial]
	} else {
		driver.Reseed(rng.StreamSeed(spec.Seed, uint64(gTrial)))
		if spec.Place != nil {
			spec.Place(gTrial, driver, laneStarts)
			n := e.g.N()
			for i, s := range laneStarts {
				if s < 0 || int(s) >= n {
					return fmt.Errorf("walk: trial %d start[%d] = %d out of range [0,%d)", gTrial, i, s, n)
				}
			}
		}
		engineSeed = driver.Uint64()
	}
	base := ln * k
	for i := 0; i < k; i++ {
		gst.pos[base+i] = laneStarts[i]
		gst.streams[base+i].Reseed(rng.StreamSeed(engineSeed, uint64(i)))
		if gst.prev != nil {
			gst.prev[base+i] = -1
		}
	}
	gst.laneTrial[ln] = int32(trial)
	return nil
}

// stopRoundAll mirrors StopWhenAll for one lane: the max of the observers'
// satisfaction rounds, or -1 if any is unsatisfied.
func stopRoundAll(obs []GroupObserver, ln int) int64 {
	r := int64(0)
	for _, o := range obs {
		s := o.laneSatisfied(ln)
		if s < 0 {
			return -1
		}
		if s > r {
			r = s
		}
	}
	return r
}

// retireSatisfied records and compacts every active lane whose stop
// condition has fired (single-threaded; called at barriers).
func retireSatisfied(gst *groupState, obs []GroupObserver, res *GroupedResult) {
	for ln := 0; ln < gst.lanes; {
		s := stopRoundAll(obs, ln)
		if s < 0 {
			ln++
			continue
		}
		trial := int(gst.laneTrial[ln])
		res.Rounds[trial] = s
		res.Stopped[trial] = true
		for _, o := range obs {
			o.finishLane(ln, trial, s, true)
		}
		gst.retireLane(ln, obs)
	}
}

// runGroupedChunk drives trials [c0, c0+m) to completion.
func (e *Engine) runGroupedChunk(gst *groupState, spec *GroupedRunSpec, obs []GroupObserver, res *GroupedResult, c0, m int) error {
	k := gst.laneK
	gst.lanes = m
	gst.k = m * k
	for ln := 0; ln < m; ln++ {
		if err := e.seedLane(gst, spec, ln, c0+ln); err != nil {
			return err
		}
		for _, o := range obs {
			o.startLane(ln, c0+ln, gst.pos[ln*k:(ln+1)*k])
		}
	}
	retireSatisfied(gst, obs, res)

	// If any observer can prove it will never be satisfied (a hit observer
	// with an empty marked set), no lane can ever stop: mirror the
	// sequential runHit short-circuit and censor everything without
	// stepping the budget down.
	hopeless := false
	for _, o := range obs {
		if ns, ok := o.(neverSatisfiable); ok && ns.neverSatisfied() {
			hopeless = true
			break
		}
	}

	if gst.lanes > 0 && !hopeless {
		if fused := e.fusedCoverObserver(k, obs); fused != nil {
			e.runGroupedFusedCover(gst, spec, fused, res)
		} else {
			e.runGroupedGeneric(gst, spec, obs, res)
		}
	}

	// Budget exhausted: the trials still active are censored at MaxRounds.
	for ln := 0; ln < gst.lanes; ln++ {
		trial := int(gst.laneTrial[ln])
		res.Rounds[trial] = spec.MaxRounds
		res.Stopped[trial] = false
		for _, o := range obs {
			o.finishLane(ln, trial, spec.MaxRounds, false)
		}
	}
	gst.lanes = 0
	return nil
}

// laneShardSpan returns worker w's contiguous lane range when lanes are
// split across workers (the same arithmetic runState.each uses for walker
// shards). Lane ownership — not execution order — determines every draw
// and every scan, so the partition only has to be a pure function of
// (lanes, workers, w) for results to be independent of scheduling.
func laneShardSpan(lanes, workers, w int) (lo, hi int) {
	chunk := (lanes + workers - 1) / workers
	lo = min(w*chunk, lanes)
	hi = min(lo+chunk, lanes)
	return lo, hi
}

// runGroupedGeneric is the kernel-agnostic grouped driver: every batch,
// each worker advances its lane range round-major through the engine's
// stepRound and hands each fresh round to the observers' lane scans; the
// barrier retires satisfied lanes and compacts. Batches span whole draw
// groups, so compaction never splits a reservoir. Shards are spawned as
// direct method calls — not closures — so a barrier costs the runtime's
// goroutine wrappers and nothing else, and the Workers=1 path performs no
// allocation at all.
func (e *Engine) runGroupedGeneric(gst *groupState, spec *GroupedRunSpec, obs []GroupObserver, res *GroupedResult) {
	// Multicore passes step the engine's full parallel batch between
	// barriers to amortize spawn cost; the singleton path keeps the shorter
	// sequential batch (better early-stop granularity). Batch size only
	// moves the barriers — per-trial outcomes are invariant, pinned by the
	// BatchRounds grids in TestFusedMatchesSequentialTrials and
	// TestGroupedDeterministicAcrossWorkers.
	batch := e.seqBatch
	if spec.Workers > 1 {
		batch = e.batch
	}
	for t0 := int64(0); gst.lanes > 0 && t0 < spec.MaxRounds; {
		b := batch
		if int64(b) > spec.MaxRounds-t0 {
			b = int(spec.MaxRounds - t0)
		}
		workers := spec.Workers
		if workers > gst.lanes {
			workers = gst.lanes
		}
		if workers <= 1 {
			e.genericShard(gst, obs, b, t0, 0, 0, gst.lanes)
		} else {
			for w := 0; w < workers; w++ {
				lo, hi := laneShardSpan(gst.lanes, workers, w)
				if lo == hi {
					continue
				}
				gst.wg.Add(1)
				go e.genericShardAsync(gst, obs, b, t0, w, lo, hi)
			}
			gst.wg.Wait()
		}
		t0 += int64(b)
		retireSatisfied(gst, obs, res)
	}
}

// genericShard advances lanes [loLane, hiLane) through rounds
// (t0, t0+b], handing each fresh round to the observers' lane scans; w
// selects the worker-private observer scratch. It touches only its lane
// range and worker scratch, so concurrent shards never share mutable
// state.
func (e *Engine) genericShard(gst *groupState, obs []GroupObserver, b int, t0 int64, w, loLane, hiLane int) {
	k := gst.laneK
	lo, hi := loLane*k, hiLane*k
	for j := 0; j < b; j++ {
		t := t0 + int64(j) + 1
		e.stepRound(&gst.runState, lo, hi, t)
		for _, o := range obs {
			o.scanRound(gst, loLane, hiLane, w, t)
		}
	}
}

// genericShardAsync is genericShard plus the barrier arrival, the form the
// multicore spawn uses.
func (e *Engine) genericShardAsync(gst *groupState, obs []GroupObserver, b int, t0 int64, w, loLane, hiLane int) {
	defer gst.wg.Done()
	e.genericShard(gst, obs, b, t0, w, loLane, hiLane)
}

// ---------------------------------------------------------------------------
// GroupCoverObserver

// groupUnset is the "never visited" sentinel of the uint32 first-visit
// lanes.
const groupUnset = ^uint32(0)

// GroupCoverObserver tracks, per trial lane, the distinct vertices visited
// and each vertex's exact first-visit round — the grouped counterpart of
// CoverObserver for count-target workloads. Configure before the run:
//
//   - Target: stop threshold on the distinct-visit count (0 selects n,
//     full cover).
//   - RecordFirst: export every trial's first-visit rounds (the
//     coverage-profile sampler); retrieve with TrialFirstVisits.
//
// Lane state is a word of uint32 first-visit rounds per vertex — the
// packed replacement for the sequential path's per-trial byte arrays —
// updated by unsigned min, which makes the fused walker-major scan
// order-invariant: the final value per vertex is its exact first-visit
// round no matter the order walkers of the lane were advanced within a
// pass.
type GroupCoverObserver struct {
	Target      int
	RecordFirst bool

	n, k    int
	target  int
	first   []uint32 // slot lanes after the dummy region (see laneCells)
	laneOff []int32  // lane -> slot (swapped on compaction)
	counts  []int32  // per slot: distinct vertices visited
	done    []int64  // per slot: satisfaction round, -1 while running

	outCount []int32   // per trial
	outFirst [][]int64 // per trial, when RecordFirst
}

// NewGroupCoverObserver returns a full-cover grouped observer (the
// k-walk cover-time estimator workload). target 0 selects full cover.
func NewGroupCoverObserver(target int) *GroupCoverObserver {
	return &GroupCoverObserver{Target: target}
}

// perLaneCells reports the uint32 first-visit cells each lane allocates.
func (o *GroupCoverObserver) perLaneCells(n int) int { return n }

func (o *GroupCoverObserver) validateGroup(n, k, trials int) error {
	if o.Target < 0 || o.Target > n {
		return fmt.Errorf("walk: cover target %d out of range [1,%d]", o.Target, n)
	}
	return nil
}

func (o *GroupCoverObserver) bindGroup(e *Engine, trials, lanes, k, workers int) {
	n := e.g.N()
	o.n, o.k = n, k
	o.target = o.Target
	if o.target == 0 {
		o.target = n
	}
	o.first = growSlice(o.first, lanes*n)
	if cap(o.laneOff) < lanes {
		o.laneOff = make([]int32, lanes)
		o.counts = make([]int32, lanes)
		o.done = make([]int64, lanes)
	}
	o.laneOff, o.counts, o.done = o.laneOff[:lanes], o.counts[:lanes], o.done[:lanes]
	for i := range o.laneOff {
		o.laneOff[i] = int32(i)
	}
	// Per-trial outputs reuse capacity across binds: finishLane overwrites
	// every trial's slot exactly once per run, so no clearing is needed and
	// a rebinding observer (the serving layer's pooled arenas) allocates
	// nothing in steady state.
	o.outCount = growSlice(o.outCount, trials)
	if o.RecordFirst {
		o.outFirst = growSlice(o.outFirst, trials)
	} else {
		o.outFirst = nil
	}
}

// laneCells returns slot s's first-visit cell window.
func (o *GroupCoverObserver) laneCells(s int32) []uint32 {
	off := int(s) * o.n
	return o.first[off : off+o.n]
}

func (o *GroupCoverObserver) startLane(ln, trial int, starts []int32) {
	s := o.laneOff[ln]
	lane := o.laneCells(s)
	for i := range lane {
		lane[i] = groupUnset
	}
	count := int32(0)
	for _, v := range starts {
		if lane[v] == groupUnset {
			lane[v] = 0
			count++
		}
	}
	o.counts[s] = count
	o.done[s] = -1
	if int(count) >= o.target {
		o.done[s] = 0
	}
}

// scanRound is the generic-path lane scan: exact first-visit recording in
// round order. The fused path of groupedfused.go writes the same lanes
// through its inline min-update scan instead.
func (o *GroupCoverObserver) scanRound(gs *groupState, loLane, hiLane, _ int, t int64) {
	k := gs.laneK
	tt := uint32(t)
	for ln := loLane; ln < hiLane; ln++ {
		s := o.laneOff[ln]
		if o.done[s] >= 0 {
			continue
		}
		lane := o.laneCells(s)
		count := o.counts[s]
		for _, p := range gs.pos[ln*k : (ln+1)*k] {
			if lane[p] == groupUnset {
				lane[p] = tt
				count++
			}
		}
		o.counts[s] = count
		if int(count) >= o.target {
			o.done[s] = t
		}
	}
}

func (o *GroupCoverObserver) laneSatisfied(ln int) int64 { return o.done[o.laneOff[ln]] }

func (o *GroupCoverObserver) finishLane(ln, trial int, rounds int64, stopped bool) {
	s := o.laneOff[ln]
	// The fused path's pair passes may overshoot the resolved stop round
	// by one round before the crossing is detected, so the exported count
	// and first-visit rounds are recomputed at the exact stop round — the
	// state a sequential run reports.
	count := int32(0)
	lane := o.laneCells(s)
	var out []int64
	if o.RecordFirst {
		out = make([]int64, o.n)
	}
	for v, f := range lane {
		visited := f != groupUnset && int64(f) <= rounds
		if visited {
			count++
		}
		if out != nil {
			if visited {
				out[v] = int64(f)
			} else {
				out[v] = -1
			}
		}
	}
	o.outCount[trial] = count
	if o.RecordFirst {
		o.outFirst[trial] = out
	}
}

func (o *GroupCoverObserver) moveLane(dst, src int) {
	o.laneOff[dst], o.laneOff[src] = o.laneOff[src], o.laneOff[dst]
}

// TrialCount returns the distinct-visit count trial ended with.
func (o *GroupCoverObserver) TrialCount(trial int) int { return int(o.outCount[trial]) }

// TrialFirstVisits returns trial's per-vertex first-visit rounds (-1 if
// unvisited); it requires RecordFirst.
func (o *GroupCoverObserver) TrialFirstVisits(trial int) []int64 { return o.outFirst[trial] }

// ---------------------------------------------------------------------------
// GroupHitObserver

// GroupHitObserver watches every trial lane for a walker standing on a
// marked vertex — the grouped counterpart of HitObserver. The marked set
// is shared by all trials (compiled to a bitset once); per-lane state is
// the hit round, vertex, and walker. Ties within a round resolve to the
// lowest walker index, matching the sequential observer.
type GroupHitObserver struct {
	Marked []bool

	bitset []uint64
	none   bool
	k      int
	done   []int64 // per lane (lanes never move content; slot == lane via laneOff)
	vtx    []int32
	wkr    []int32
	lnOff  []int32

	outHit    []bool
	outVertex []int32
	outWalker []int32
}

// NewGroupHitObserver returns a grouped hit observer for the marked set.
func NewGroupHitObserver(marked []bool) *GroupHitObserver {
	return &GroupHitObserver{Marked: marked}
}

func (o *GroupHitObserver) validateGroup(n, k, trials int) error {
	if len(o.Marked) != n {
		return fmt.Errorf("walk: marked length %d != n %d", len(o.Marked), n)
	}
	return nil
}

func (o *GroupHitObserver) bindGroup(e *Engine, trials, lanes, k, workers int) {
	o.k = k
	o.bitset, o.none = compileMarkedBitset(o.Marked, o.bitset)
	if cap(o.done) < lanes {
		o.done = make([]int64, lanes)
		o.vtx = make([]int32, lanes)
		o.wkr = make([]int32, lanes)
		o.lnOff = make([]int32, lanes)
	}
	o.done, o.vtx, o.wkr, o.lnOff = o.done[:lanes], o.vtx[:lanes], o.wkr[:lanes], o.lnOff[:lanes]
	for i := range o.lnOff {
		o.lnOff[i] = int32(i)
	}
	o.outHit = growSlice(o.outHit, trials)
	o.outVertex = growSlice(o.outVertex, trials)
	o.outWalker = growSlice(o.outWalker, trials)
}

func (o *GroupHitObserver) startLane(ln, trial int, starts []int32) {
	s := o.lnOff[ln]
	o.done[s], o.vtx[s], o.wkr[s] = -1, -1, -1
	for i, v := range starts {
		if o.Marked[v] {
			o.done[s], o.vtx[s], o.wkr[s] = 0, v, int32(i)
			break
		}
	}
}

func (o *GroupHitObserver) scanRound(gs *groupState, loLane, hiLane, _ int, t int64) {
	if o.none {
		return
	}
	k := gs.laneK
	for ln := loLane; ln < hiLane; ln++ {
		s := o.lnOff[ln]
		if o.done[s] >= 0 {
			continue
		}
		if ii := scanMarked(gs.pos[ln*k:(ln+1)*k], o.bitset); ii >= 0 {
			o.done[s], o.vtx[s], o.wkr[s] = t, gs.pos[ln*k+ii], int32(ii)
		}
	}
}

func (o *GroupHitObserver) laneSatisfied(ln int) int64 { return o.done[o.lnOff[ln]] }

// neverSatisfied reports an all-false marked set: no walker can ever hit.
func (o *GroupHitObserver) neverSatisfied() bool { return o.none }

func (o *GroupHitObserver) finishLane(ln, trial int, rounds int64, stopped bool) {
	s := o.lnOff[ln]
	o.outHit[trial] = stopped
	o.outVertex[trial] = o.vtx[s]
	o.outWalker[trial] = o.wkr[s]
}

func (o *GroupHitObserver) moveLane(dst, src int) {
	o.lnOff[dst], o.lnOff[src] = o.lnOff[src], o.lnOff[dst]
}

// TrialResult converts trial's outcome into a HitResult, with rounds the
// recorded stop round of the trial.
func (o *GroupHitObserver) TrialResult(trial int, rounds int64) HitResult {
	if !o.outHit[trial] {
		return HitResult{Rounds: rounds, Vertex: -1, Walker: -1}
	}
	return HitResult{Rounds: rounds, Vertex: o.outVertex[trial], Walker: int(o.outWalker[trial]), Hit: true}
}

// ---------------------------------------------------------------------------
// GroupCollisionObserver

// GroupCollisionObserver detects same-vertex collisions inside each trial
// lane — the grouped counterpart of CollisionObserver for the meeting and
// coalescence estimators. Collision detection shares the singleton's
// stamping scheme, but the per-vertex stamp arrays are *worker scratch*
// stamped with a monotone token per (lane, round) scan instead of
// per-lane copies, so memory stays O(workers × n) rather than
// O(lanes × n); the union-find forest, first-meeting bookkeeping, and
// class counts are per lane, in the same walker order as the sequential
// merge, so outcomes are bit-for-bit identical.
type GroupCollisionObserver struct {
	// Coalesce selects coalescence mode; otherwise the observer is
	// satisfied at the first meeting.
	Coalesce bool

	k      int
	parent []int32 // slot-indexed: slot s owns parent[s*k:(s+1)*k]
	lnOff  []int32
	groups []int32
	meetR  []int64
	meetA  []int32
	meetB  []int32
	meetV  []int32
	coalR  []int64
	done   []int64

	stamp  [][]int64 // per worker: vertex -> token of last occupancy
	stampW [][]int32 // per worker: first walker on the vertex that token
	token  []int64   // per worker: monotone scan counter

	outMeet   []int64
	outCoal   []int64
	outGroups []int32
}

// NewGroupCollisionObserver returns a grouped meeting observer; coalesce
// selects full-coalescence mode (which also records first meetings).
func NewGroupCollisionObserver(coalesce bool) *GroupCollisionObserver {
	return &GroupCollisionObserver{Coalesce: coalesce}
}

func (o *GroupCollisionObserver) validateGroup(n, k, trials int) error {
	if k < 2 {
		return fmt.Errorf("walk: collision observer requires at least 2 walkers, got %d", k)
	}
	return nil
}

func (o *GroupCollisionObserver) bindGroup(e *Engine, trials, lanes, k, workers int) {
	n := e.g.N()
	o.k = k
	o.parent = growSlice(o.parent, lanes*k)
	if cap(o.lnOff) < lanes {
		o.lnOff = make([]int32, lanes)
		o.groups = make([]int32, lanes)
		o.meetR = make([]int64, lanes)
		o.meetA = make([]int32, lanes)
		o.meetB = make([]int32, lanes)
		o.meetV = make([]int32, lanes)
		o.coalR = make([]int64, lanes)
		o.done = make([]int64, lanes)
	}
	o.lnOff, o.groups, o.done = o.lnOff[:lanes], o.groups[:lanes], o.done[:lanes]
	o.meetR, o.meetA, o.meetB, o.meetV, o.coalR = o.meetR[:lanes], o.meetA[:lanes], o.meetB[:lanes], o.meetV[:lanes], o.coalR[:lanes]
	for i := range o.lnOff {
		o.lnOff[i] = int32(i)
	}
	if cap(o.stamp) < workers {
		o.stamp = make([][]int64, workers)
		o.stampW = make([][]int32, workers)
		o.token = make([]int64, workers)
	}
	o.stamp, o.stampW, o.token = o.stamp[:workers], o.stampW[:workers], o.token[:workers]
	for w := range o.stamp {
		if cap(o.stamp[w]) < n {
			o.stamp[w] = make([]int64, n)
			o.stampW[w] = make([]int32, n)
		}
		o.stamp[w] = o.stamp[w][:n]
		o.stampW[w] = o.stampW[w][:n]
		for i := range o.stamp[w] {
			o.stamp[w][i] = -1
		}
		o.token[w] = 0
	}
	o.outMeet = growSlice(o.outMeet, trials)
	o.outCoal = growSlice(o.outCoal, trials)
	o.outGroups = growSlice(o.outGroups, trials)
}

func (o *GroupCollisionObserver) startLane(ln, trial int, starts []int32) {
	s := int(o.lnOff[ln])
	parent := o.parent[s*o.k : (s+1)*o.k]
	for i := range parent {
		parent[i] = int32(i)
	}
	o.groups[s] = int32(o.k)
	o.meetR[s], o.meetA[s], o.meetB[s], o.meetV[s] = -1, -1, -1, -1
	o.coalR[s] = -1
	o.done[s] = -1
	// Round-0 collisions via the worker-0 scratch (startLane runs
	// single-threaded before the pass begins).
	o.scanLanePositions(0, s, starts, 0)
}

// scanLanePositions folds one round of one lane into its collision state,
// in walker order (the singleton's merge order).
func (o *GroupCollisionObserver) scanLanePositions(w, s int, pos []int32, t int64) {
	stamp, stampW := o.stamp[w], o.stampW[w]
	o.token[w]++
	tok := o.token[w]
	parent := o.parent[s*o.k : (s+1)*o.k]
	for i, v := range pos {
		if stamp[v] != tok {
			stamp[v] = tok
			stampW[v] = int32(i)
			continue
		}
		j := stampW[v]
		if o.meetR[s] < 0 {
			o.meetR[s], o.meetA[s], o.meetB[s], o.meetV[s] = t, j, int32(i), v
			if !o.Coalesce && o.done[s] < 0 {
				o.done[s] = t
			}
		}
		if ra, rb := ufFind(parent, j), ufFind(parent, int32(i)); ra != rb {
			if ra > rb {
				ra, rb = rb, ra
			}
			parent[rb] = ra
			o.groups[s]--
			if o.groups[s] == 1 && o.coalR[s] < 0 {
				o.coalR[s] = t
				if o.Coalesce && o.done[s] < 0 {
					o.done[s] = t
				}
			}
		}
	}
}

func (o *GroupCollisionObserver) scanRound(gs *groupState, loLane, hiLane, w int, t int64) {
	k := gs.laneK
	for ln := loLane; ln < hiLane; ln++ {
		s := int(o.lnOff[ln])
		if o.done[s] >= 0 {
			continue
		}
		o.scanLanePositions(w, s, gs.pos[ln*k:(ln+1)*k], t)
	}
}

func (o *GroupCollisionObserver) laneSatisfied(ln int) int64 { return o.done[o.lnOff[ln]] }

func (o *GroupCollisionObserver) finishLane(ln, trial int, rounds int64, stopped bool) {
	s := o.lnOff[ln]
	o.outMeet[trial] = o.meetR[s]
	o.outCoal[trial] = o.coalR[s]
	o.outGroups[trial] = o.groups[s]
}

func (o *GroupCollisionObserver) moveLane(dst, src int) {
	o.lnOff[dst], o.lnOff[src] = o.lnOff[src], o.lnOff[dst]
}

// TrialMeetRound returns trial's first meeting round, or -1.
func (o *GroupCollisionObserver) TrialMeetRound(trial int) int64 { return o.outMeet[trial] }

// TrialCoalescenceRound returns the round trial's classes collapsed to
// one, or -1.
func (o *GroupCollisionObserver) TrialCoalescenceRound(trial int) int64 { return o.outCoal[trial] }

// TrialGroups returns trial's remaining meeting-equivalence classes.
func (o *GroupCollisionObserver) TrialGroups(trial int) int { return int(o.outGroups[trial]) }

// ufFind is the path-halving union-find lookup shared by the sequential
// CollisionObserver and the grouped lanes.
func ufFind(parent []int32, i int32) int32 {
	for parent[i] != i {
		parent[i] = parent[parent[i]]
		i = parent[i]
	}
	return i
}
