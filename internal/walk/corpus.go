package walk

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"

	"manywalks/internal/rng"
)

// This file implements the bulk corpus workload: GenerateCorpus runs
// walksPerVertex truncated walks of a fixed length from *every* vertex of
// the graph and streams the trajectories out in deterministic order. The
// walks run as trial lanes through the grouped engine (RunGroupedInto), in
// waves sized to the grouped chunk caps, so the whole corpus never resides
// in memory: per wave the path observer holds a flat [lanes × (length+1)·k]
// int32 arena, the encoder drains it in trial order, and the next wave
// reuses every buffer. Seeds are derived from the GLOBAL walk index — walk
// j from vertex v is trial v·walksPerVertex+j, and its engine seed is the
// first draw of rng.NewStream(seed, trial), the exact derivation a
// standalone Engine.Run at that trial index would use — so the corpus bytes
// are invariant to wave size, Workers, and batch partitioning, and every
// recorded walk is bit-for-bit the sequential walk (pinned by
// TestCorpusMatchesSequentialWalks and TestCorpusDeterminism).

// ---------------------------------------------------------------------------
// GroupPathObserver

// GroupPathObserver records every trial lane's full trajectory — position
// after each round, including the round-0 placement — into a flat per-slot
// arena. It is the corpus workload's observer: lanes are never satisfied
// (laneSatisfied is always -1), so every trial runs to the fixed horizon
// and retires censored with its path complete.
//
// Length must equal the run's MaxRounds: each slot row holds (Length+1)·k
// vertices, time-major (round t's k walkers at [t·k, (t+1)·k)). Lane state
// is slot-indexed through the usual laneOff indirection, so compaction
// (which for this observer only happens at the end-of-run sweep) never
// copies a path. The observer supports a single grouped chunk per run:
// waves larger than the chunk caps would overwrite live paths, so bindGroup
// rejects them.
type GroupPathObserver struct {
	Length int

	k, rowLen int
	path      []int32
	laneOff   []int32
	outSlot   []int32 // trial -> slot holding its finished path
}

// NewGroupPathObserver returns a path recorder for walks of length rounds.
func NewGroupPathObserver(length int) *GroupPathObserver {
	return &GroupPathObserver{Length: length}
}

// perLaneCells reports the per-lane path cells so groupChunkLanes bounds
// the wave width by the arena budget as well as the walker cap.
func (o *GroupPathObserver) perLaneCells(int) int { return o.rowCells() }

func (o *GroupPathObserver) rowCells() int { return (o.Length + 1) * max(o.k, 1) }

func (o *GroupPathObserver) validateGroup(n, k, trials int) error {
	if o.Length < 1 {
		return fmt.Errorf("walk: path observer requires Length >= 1, got %d", o.Length)
	}
	return nil
}

func (o *GroupPathObserver) bindGroup(e *Engine, trials, lanes, k, workers int) {
	o.k = k
	o.rowLen = (o.Length + 1) * k
	if trials > lanes {
		// A second chunk would reuse slots holding the first chunk's paths
		// before the caller could read them. GenerateCorpus sizes waves to
		// one chunk; anything else is a programming error.
		panic(fmt.Sprintf("walk: GroupPathObserver holds one chunk of paths; %d trials exceed the %d-lane chunk", trials, lanes))
	}
	o.path = growSlice(o.path, lanes*o.rowLen)
	if cap(o.laneOff) < lanes {
		o.laneOff = make([]int32, lanes)
	}
	o.laneOff = o.laneOff[:lanes]
	for i := range o.laneOff {
		o.laneOff[i] = int32(i)
	}
	o.outSlot = growSlice(o.outSlot, trials)
}

// laneRow returns slot s's path arena row.
func (o *GroupPathObserver) laneRow(s int32) []int32 {
	off := int(s) * o.rowLen
	return o.path[off : off+o.rowLen]
}

func (o *GroupPathObserver) startLane(ln, trial int, starts []int32) {
	copy(o.laneRow(o.laneOff[ln])[:o.k], starts)
}

// scanRound copies each owned lane's fresh positions into round t's row
// segment — lane-private writes only, so shards never contend and the
// recorded path cannot depend on Workers or batching.
func (o *GroupPathObserver) scanRound(gs *groupState, loLane, hiLane, _ int, t int64) {
	k := gs.laneK
	if k == 1 {
		// The corpus shape: one walker per lane, one store per lane per round.
		for ln := loLane; ln < hiLane; ln++ {
			o.path[int(o.laneOff[ln])*o.rowLen+int(t)] = gs.pos[ln]
		}
		return
	}
	for ln := loLane; ln < hiLane; ln++ {
		row := o.laneRow(o.laneOff[ln])
		copy(row[int(t)*k:int(t+1)*k], gs.pos[ln*k:(ln+1)*k])
	}
}

// laneSatisfied: never — every trial is censored at the horizon with its
// path complete.
func (o *GroupPathObserver) laneSatisfied(int) int64 { return -1 }

func (o *GroupPathObserver) finishLane(ln, trial int, rounds int64, stopped bool) {
	o.outSlot[trial] = o.laneOff[ln]
}

func (o *GroupPathObserver) moveLane(dst, src int) {
	o.laneOff[dst], o.laneOff[src] = o.laneOff[src], o.laneOff[dst]
}

// TrialPath returns trial's recorded trajectory: (Length+1)·k vertices,
// time-major. The slice aliases the wave arena — valid until the observer's
// next run.
func (o *GroupPathObserver) TrialPath(trial int) []int32 {
	return o.laneRow(o.outSlot[trial])
}

// ---------------------------------------------------------------------------
// PathObserver (sequential)

// PathObserver is the sequential counterpart of GroupPathObserver: it
// records every walker's position after each round of one Engine.Run,
// including the round-0 placement. Use with RunToHorizon and MaxRounds =
// Length; it is never satisfied. Scans write disjoint walker-indexed
// segments, so the recorded paths are independent of Workers and batching.
// It is the reference implementation the corpus equivalence tests pin
// GenerateCorpus against.
type PathObserver struct {
	Length int

	k    int
	path []int32 // (Length+1)*k vertices, time-major
}

// NewPathObserver returns a sequential path recorder for walks of length
// rounds.
func NewPathObserver(length int) *PathObserver { return &PathObserver{Length: length} }

func (o *PathObserver) validate(n, k int) error {
	if o.Length < 1 {
		return fmt.Errorf("walk: path observer requires Length >= 1, got %d", o.Length)
	}
	return nil
}

func (o *PathObserver) reset(e *Engine, st *runState, starts []int32) {
	o.k = len(starts)
	o.path = growSlice(o.path, (o.Length+1)*o.k)
	copy(o.path[:o.k], starts)
}

func (o *PathObserver) preBatch(*runState) {}

func (o *PathObserver) scan(st *runState, ws *worker, _ int, t int64) {
	if int(t) > o.Length {
		return // overshoot past the horizon is discarded
	}
	copy(o.path[int(t)*o.k+ws.lo:int(t)*o.k+ws.hi], st.pos[ws.lo:ws.hi])
}

func (o *PathObserver) beginMerge(*runState, int, int64) {}
func (o *PathObserver) mergeRound(*runState, int64)      {}
func (o *PathObserver) endMerge(st *runState)            { st.resetLogs() }
func (o *PathObserver) satisfiedAt() int64               { return -1 }

// Path returns walker i's trajectory as a fresh slice of Length+1 vertices.
func (o *PathObserver) Path(i int) []int32 {
	out := make([]int32, o.Length+1)
	for t := 0; t <= o.Length; t++ {
		out[t] = o.path[t*o.k+i]
	}
	return out
}

// ---------------------------------------------------------------------------
// Corpus generation

// CorpusFormat selects the corpus encoding.
type CorpusFormat int

const (
	// CorpusText writes one walk per line: space-separated vertex ids,
	// length+1 per line, after a two-line header ("# manywalks corpus" and
	// "<n> <walksPerVertex> <length>").
	CorpusText CorpusFormat = iota
	// CorpusBinary writes a little-endian header (magic, version, n,
	// walksPerVertex, length) followed by n·walksPerVertex records of
	// length+1 int32 vertices each. Decode with ScanCorpusBinary.
	CorpusBinary
)

// CorpusSpec describes a walk corpus: WalksPerVertex truncated walks of
// Length rounds from every vertex of the engine's graph, in vertex order
// (walk j from vertex v is global walk v·WalksPerVertex+j). The engine's
// kernel is the step law.
type CorpusSpec struct {
	// WalksPerVertex is the number of walks started from each vertex
	// (required, >= 1).
	WalksPerVertex int
	// Length is the number of rounds per walk (required, >= 1); each
	// emitted walk has Length+1 vertices including the start.
	Length int
	// Seed is the root seed. Walk t's engine seed is the first draw of
	// rng.NewStream(Seed, t) — the standalone Engine.Run derivation — so
	// the corpus is bit-for-bit reproducible and invariant to Workers,
	// batching, and wave size.
	Seed uint64
	// Format selects the encoding (default CorpusText).
	Format CorpusFormat
	// Workers caps the goroutines stepping lane shards (0: the engine's
	// worker count). Output bytes never depend on it.
	Workers int
	// Progress, when non-nil, is called after each wave with the number of
	// walks emitted so far and the total.
	Progress func(done, total int64)
}

// CorpusStats reports what a corpus run produced.
type CorpusStats struct {
	Walks int64 // walks emitted: n * WalksPerVertex
	Steps int64 // walker steps simulated: Walks * Length
}

// corpusBinaryMagic guards the binary corpus format ("mwcp" bytes).
const corpusBinaryMagic = uint32(0x7063776d)

const corpusBinaryVersion = uint32(1)

// GenerateCorpus runs spec's walks through the grouped engine in waves and
// streams the encoded corpus to w, returning the walk and step counts. The
// corpus never resides in memory: a wave of up to ~16k walks runs as trial
// lanes of one grouped pass, its paths are encoded from the wave arena in
// trial order, and the buffers are reused. The output is bit-for-bit
// identical for a fixed (graph, kernel, spec) regardless of spec.Workers,
// and each walk equals the standalone Engine.Run walk documented on
// CorpusSpec.Seed.
func (e *Engine) GenerateCorpus(spec CorpusSpec, w io.Writer) (CorpusStats, error) {
	if spec.WalksPerVertex < 1 {
		return CorpusStats{}, fmt.Errorf("walk: corpus requires WalksPerVertex >= 1, got %d", spec.WalksPerVertex)
	}
	if spec.Length < 1 {
		return CorpusStats{}, fmt.Errorf("walk: corpus requires Length >= 1, got %d", spec.Length)
	}
	if int64(spec.Length) > MaxGroupedRounds {
		return CorpusStats{}, fmt.Errorf("walk: corpus length %d exceeds %d rounds", spec.Length, MaxGroupedRounds)
	}
	if spec.Format != CorpusText && spec.Format != CorpusBinary {
		return CorpusStats{}, fmt.Errorf("walk: unknown corpus format %d", spec.Format)
	}
	n := e.g.N()
	total := int64(n) * int64(spec.WalksPerVertex)

	bw := bufio.NewWriterSize(w, 1<<20)
	if err := writeCorpusHeader(bw, spec, n); err != nil {
		return CorpusStats{}, err
	}

	obs := NewGroupPathObserver(spec.Length)
	obs.k = 1 // sized before the first bindGroup so rowCells is exact
	wave := groupChunkLanes(int(min(total, int64(1)<<30)), 1, obs.rowCells())
	seeds := make([]uint64, wave)
	scratch := make([]byte, 0, 12*(spec.Length+1)+1)
	var src rng.Source
	var res GroupedResult
	start := []int32{0}

	for base := int64(0); base < total; base += int64(wave) {
		m := int64(wave)
		if m > total-base {
			m = total - base
		}
		for t := int64(0); t < m; t++ {
			// The engine seed of GLOBAL walk base+t, derived exactly as a
			// standalone Seed/trial run derives it — wave size cannot move it.
			src.Reseed(rng.StreamSeed(spec.Seed, uint64(base+t)))
			seeds[t] = src.Uint64()
		}
		gspec := GroupedRunSpec{
			Trials: int(m),
			Starts: start,
			Seeds:  seeds[:m],
			StartsFor: func(t int, starts []int32) {
				starts[0] = int32((base + int64(t)) / int64(spec.WalksPerVertex))
			},
			MaxRounds: int64(spec.Length),
			Workers:   spec.Workers,
		}
		if err := e.RunGroupedInto(gspec, &res, obs); err != nil {
			return CorpusStats{}, err
		}
		for t := 0; t < int(m); t++ {
			walk := obs.TrialPath(t)
			var err error
			if spec.Format == CorpusText {
				scratch, err = writeCorpusWalkText(bw, walk, scratch)
			} else {
				scratch, err = writeCorpusWalkBinary(bw, walk, scratch)
			}
			if err != nil {
				return CorpusStats{}, err
			}
		}
		if spec.Progress != nil {
			spec.Progress(base+m, total)
		}
	}
	if err := bw.Flush(); err != nil {
		return CorpusStats{}, err
	}
	return CorpusStats{Walks: total, Steps: total * int64(spec.Length)}, nil
}

// writeCorpusHeader emits the format's header.
func writeCorpusHeader(bw *bufio.Writer, spec CorpusSpec, n int) error {
	if spec.Format == CorpusText {
		_, err := fmt.Fprintf(bw, "# manywalks corpus\n%d %d %d\n", n, spec.WalksPerVertex, spec.Length)
		return err
	}
	var word [4]byte
	for _, v := range []uint32{corpusBinaryMagic, corpusBinaryVersion, uint32(n), uint32(spec.WalksPerVertex), uint32(spec.Length)} {
		binary.LittleEndian.PutUint32(word[:], v)
		if _, err := bw.Write(word[:]); err != nil {
			return err
		}
	}
	return nil
}

// writeCorpusWalkText appends one walk line through the reused scratch
// buffer (returned for reuse).
func writeCorpusWalkText(bw *bufio.Writer, walk []int32, scratch []byte) ([]byte, error) {
	scratch = scratch[:0]
	for j, v := range walk {
		if j > 0 {
			scratch = append(scratch, ' ')
		}
		scratch = strconv.AppendInt(scratch, int64(v), 10)
	}
	scratch = append(scratch, '\n')
	_, err := bw.Write(scratch)
	return scratch, err
}

// writeCorpusWalkBinary appends one walk record little-endian through the
// reused scratch buffer.
func writeCorpusWalkBinary(bw *bufio.Writer, walk []int32, scratch []byte) ([]byte, error) {
	need := 4 * len(walk)
	if cap(scratch) < need {
		scratch = make([]byte, need)
	}
	scratch = scratch[:need]
	for j, v := range walk {
		binary.LittleEndian.PutUint32(scratch[j*4:], uint32(v))
	}
	_, err := bw.Write(scratch)
	return scratch, err
}

// CorpusHeader is the decoded metadata of a binary corpus.
type CorpusHeader struct {
	N              int
	WalksPerVertex int
	Length         int
}

// ScanCorpusBinary decodes a CorpusBinary stream, invoking fn once per walk
// in emission order with a reused slice of Length+1 vertices (copy it to
// retain). It validates the header, record count, and vertex ranges.
func ScanCorpusBinary(r io.Reader, fn func(walk []int32) error) (CorpusHeader, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var word [4]byte
	readWord := func() (uint32, error) {
		if _, err := io.ReadFull(br, word[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(word[:]), nil
	}
	magic, err := readWord()
	if err != nil {
		return CorpusHeader{}, err
	}
	if magic != corpusBinaryMagic {
		return CorpusHeader{}, fmt.Errorf("walk: bad corpus magic %#x", magic)
	}
	version, err := readWord()
	if err != nil {
		return CorpusHeader{}, err
	}
	if version != corpusBinaryVersion {
		return CorpusHeader{}, fmt.Errorf("walk: unsupported corpus version %d", version)
	}
	var h CorpusHeader
	for _, dst := range []*int{&h.N, &h.WalksPerVertex, &h.Length} {
		v, err := readWord()
		if err != nil {
			return CorpusHeader{}, err
		}
		if v > 1<<30 {
			return CorpusHeader{}, fmt.Errorf("walk: unreasonable corpus header word %d", v)
		}
		*dst = int(v)
	}
	if h.N < 1 || h.WalksPerVertex < 1 || h.Length < 1 {
		return h, fmt.Errorf("walk: corpus header (%d,%d,%d) out of range", h.N, h.WalksPerVertex, h.Length)
	}
	walk := make([]int32, h.Length+1)
	raw := make([]byte, 4*(h.Length+1))
	total := int64(h.N) * int64(h.WalksPerVertex)
	for i := int64(0); i < total; i++ {
		if _, err := io.ReadFull(br, raw); err != nil {
			return h, fmt.Errorf("walk: corpus truncated at walk %d of %d: %w", i, total, err)
		}
		for j := range walk {
			v := int32(binary.LittleEndian.Uint32(raw[j*4:]))
			if v < 0 || int(v) >= h.N {
				return h, fmt.Errorf("walk: corpus walk %d vertex %d out of range [0,%d)", i, v, h.N)
			}
			walk[j] = v
		}
		if err := fn(walk); err != nil {
			return h, err
		}
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return h, fmt.Errorf("walk: trailing bytes after %d corpus walks", total)
	}
	return h, nil
}
