package walk

import (
	"fmt"
	"math/bits"
	"runtime"
	"slices"
	"sync"

	"manywalks/internal/graph"
	"manywalks/internal/rng"
)

// This file implements the batched k-walk engine, the hot path behind every
// cover-time, partial-cover, and hit-time estimate in the repository.
//
// The legacy simulators in walk.go advance walkers through Walker.Step,
// paying a slice-header construction and a non-inlinable shared-RNG call
// per step. The engine instead keeps all walker state in flat arrays —
// positions in a []int32, one xoshiro256++ stream per walker in a
// []rng.Source — and advances the whole walker array in *batches* of
// rounds between synchronization barriers:
//
//  1. Step: each worker owns a contiguous shard of walkers and advances it
//     strictly round-major (all walkers step round t before any steps
//     t+1), which keeps the per-walker load chains independent so the CPU
//     overlaps their cache misses. Each walker stretches one 64-bit
//     xoshiro draw across a *group* of rounds through a per-walker bit
//     reservoir (see the draw discipline below), so the generator state is
//     loaded and stored once per group instead of once per step. Each
//     worker marks a private visited set and appends (round, vertex) to a
//     private log — naturally sorted by round — whenever it sees a vertex
//     for the first time.
//  2. Merge: at the batch barrier one pass sweeps the worker logs in round
//     order, folding them into the shared visited set and detecting the
//     exact round at which the stop condition fired, even mid-batch.
//
// Draw discipline (pinned by TestEngineMatchesWalkerReplay against an
// independent reimplementation): walker i consumes the stream
// rng.NewStream(seed, i). Rounds are processed in groups of g, aligned to
// absolute round numbers (rounds (m*g, (m+1)*g] form group m). With a
// padded table of stride 2^s, a step needs s random bits and g = 64/s:
// at the first round of a group the walker draws one Uint64, steps by its
// low s bits, and banks the remaining 64-s bits in a reservoir; each later
// round of the group shifts the next s bits out of the reservoir. Without
// a padded table g = 2 and the lanes are the draw's low and high 32 bits,
// reduced to [0,deg) by Lemire multiply-shift. A rejected lane — a padding
// sentinel, or Lemire's low region (probability deg/2^32) — draws a fresh
// Uint64 and retries with its low lane, leaving the reservoir intact.
// Batches always span whole groups, so results are bit-for-bit identical
// for a fixed (graph, starts, seed, budget) regardless of Workers and
// BatchRounds. Walkers overshooting the stop round inside a batch are
// simply discarded with the rest of the batch.

// EngineOptions tunes the batched k-walk engine. Except for Kernel, the
// zero value selects sensible defaults and no option affects results, only
// performance. Kernel selects the step law (and so the simulated process);
// its zero value is the paper's uniform walk.
type EngineOptions struct {
	// Workers caps the goroutines stepping walker shards concurrently.
	// 0 or negative selects runtime.NumCPU(). A run never uses more than
	// one worker per minShardWalkers walkers, so small k stays sequential.
	Workers int
	// BatchRounds is the number of rounds advanced between merge barriers,
	// rounded up to a whole number of draw groups (the rounds one 64-bit
	// draw funds — 2 in CSR mode, 64/s for a padded table of stride 2^s,
	// so up to 64; non-uniform kernels draw fresh every round, so their
	// group is 1). 0 or negative selects the default: 64 for sharded
	// runs, 16 for single-worker runs, whose merges are cheap and whose
	// overshoot past the stop round is pure waste. Larger batches
	// amortize the barrier but overshoot further; results are unaffected
	// either way.
	BatchRounds int
	// Kernel is the step law the engine compiles (see kernel.go). The
	// zero value is Uniform(). Every kernel keeps the engine's
	// determinism guarantee: for a fixed (graph, kernel, starts, seed,
	// budget), results are bit-for-bit identical regardless of Workers
	// and BatchRounds.
	Kernel Kernel
}

const (
	defaultBatchRounds    = 64
	defaultSeqBatchRounds = 16
	// minShardWalkers is the smallest shard worth a goroutine; below this
	// the barrier overhead dominates the stepping work.
	minShardWalkers = 16
)

// Engine is a batched simulator for the paper's synchronized k-walk on one
// fixed graph. It is immutable after construction and safe for concurrent
// use: every run allocates (or borrows from an internal pool) its own
// walker state.
type Engine struct {
	g   *graph.Graph
	adj []int32
	// vtx packs vertex v's CSR range as offset<<32 | degree, halving the
	// per-step metadata loads relative to two offsets lookups.
	vtx []uint64
	// pad, when non-nil, holds every vertex's neighbors replicated into a
	// power-of-two stride (1 << padShift slots per vertex): slot s of
	// vertex v is its (s mod deg)-th neighbor for s < deg*(stride/deg),
	// and the padSentinel for the remaining slots. Sampling a slot with
	// one masked lookup replaces the offsets-then-adjacency load chain
	// with a single dependent load; sentinel slots redraw, keeping the
	// choice exactly uniform. Built only when the table stays small
	// enough to be worth it (maxPadEntries).
	pad      []int32
	padShift uint32
	group    int // rounds funded by one 64-bit draw; batches span whole groups
	workers  int
	batch    int       // rounds per barrier for sharded (multi-worker) runs
	seqBatch int       // rounds per merge for single-worker runs (overshoot is pure waste there)
	pool     sync.Pool // *runState, reused across runs to cut allocation churn
	kernel   Kernel
	prog     kernelProgram // compiled step law: alias tables, lazy threshold, prev-lane flag
}

const (
	padSentinel   = int32(-1)
	maxPadEntries = 1 << 21 // 8 MiB of padded table at 4 bytes per slot
)

// NewEngine returns an engine for g. It panics if any vertex is isolated
// (a walker there would have no move) or if opts.Kernel is invalid,
// mirroring Walker's constructor contract of rejecting impossible
// configurations up front.
func NewEngine(g *graph.Graph, opts EngineOptions) *Engine {
	offsets, adj := g.CSR()
	n := g.N()
	vtx := make([]uint64, n)
	for v := 0; v < n; v++ {
		off, deg := offsets[v], offsets[v+1]-offsets[v]
		if deg == 0 {
			panic(fmt.Sprintf("walk: engine requires min degree 1, vertex %d is isolated", v))
		}
		vtx[v] = uint64(uint32(off))<<32 | uint64(uint32(deg))
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	batch := opts.BatchRounds
	seqBatch := batch
	if batch <= 0 {
		// Unset: big batches amortize the multi-worker barrier, while a
		// single-worker run merges cheaply and only wastes its overshoot
		// past the stop round, so it prefers short batches.
		batch, seqBatch = defaultBatchRounds, defaultSeqBatchRounds
	}
	prog, err := compileKernel(g, opts.Kernel)
	if err != nil {
		panic(err.Error())
	}
	e := &Engine{g: g, adj: adj, vtx: vtx, workers: workers, kernel: opts.Kernel, prog: prog}
	// Non-uniform kernels draw fresh entropy every round (group 1), so
	// only Uniform banks reservoir bits, and only Uniform and Lazy sample
	// through the padded table.
	e.group = 1
	if wantsPadTable(prog.kind) {
		if prog.kind == KernelUniform {
			e.group = 2
		}
		_, maxDeg := g.DegreeStats()
		shift := uint32(bits.Len(uint(maxDeg - 1)))
		if shift == 0 {
			shift = 1 // a stride-1 table still banks one (unused) bit per round
		}
		if stride := 1 << shift; n<<shift <= maxPadEntries {
			pad := make([]int32, n<<shift)
			for v := 0; v < n; v++ {
				nb := adj[offsets[v]:offsets[v+1]]
				deg := len(nb)
				filled := (stride / deg) * deg
				row := pad[v<<shift : (v+1)<<shift]
				for s := 0; s < filled; s++ {
					row[s] = nb[s%deg]
				}
				for s := filled; s < stride; s++ {
					row[s] = padSentinel
				}
			}
			e.pad, e.padShift = pad, shift
			if prog.kind == KernelUniform {
				e.group = 64 / int(shift)
			}
		}
	}
	// Batches must span whole groups so the reservoir never crosses a
	// barrier.
	roundUp := func(b int) int { return (b + e.group - 1) / e.group * e.group }
	e.batch, e.seqBatch = roundUp(batch), roundUp(seqBatch)
	return e
}

// wantsPadTable reports whether a kernel samples uniform neighbors through
// the padded table; the alias-table and prev-lane kernels never touch it.
func wantsPadTable(k KernelKind) bool {
	return k == KernelUniform || k == KernelLazy
}

// Graph returns the engine's graph.
func (e *Engine) Graph() *graph.Graph { return e.g }

// Kernel returns the step law the engine was compiled for.
func (e *Engine) Kernel() Kernel { return e.kernel }

// HitResult reports a marked-vertex search (KHit).
type HitResult struct {
	Rounds int64 // rounds to the first hit, or the budget if !Hit
	Vertex int32 // the marked vertex hit, -1 if none
	Walker int   // index of the hitting walker, -1 if none
	Hit    bool
}

// xoshiroNext is the xoshiro256++ transition, kept as a tiny pure function
// so the kernels inline it with the state in registers. It must match
// rng.Source.Uint64 bit for bit.
func xoshiroNext(s0, s1, s2, s3 uint64) (x, r0, r1, r2, r3 uint64) {
	x = bits.RotateLeft64(s0+s3, 23) + s0
	t := s1 << 17
	s2 ^= s0
	s3 ^= s1
	s1 ^= s2
	s0 ^= s3
	s2 ^= t
	s3 = bits.RotateLeft64(s3, 45)
	return x, s0, s1, s2, s3
}

// reduce32 maps a 32-bit lane to [0,deg) by Lemire multiply-shift; ok is
// false when the lane falls in the rejected low region and must be
// redrawn, which keeps the reduction exactly uniform.
func reduce32(lane, deg uint32) (idx uint32, ok bool) {
	m := uint64(lane) * uint64(deg)
	if uint32(m) < deg && uint32(m) < -deg%deg {
		return 0, false
	}
	return uint32(m >> 32), true
}

// visitEntry records a worker-locally new vertex and the round it was
// reached.
type visitEntry struct {
	t int64
	v int32
}

// worker is one shard's private visited state; log holds its first visits
// in round order and cur is the merge sweep's cursor into it.
type worker struct {
	lo, hi int
	seen   []uint8 // view: the private buf, or the run's merged set when sharing
	buf    []uint8
	log    []visitEntry
	cur    int
	// hit-mode result for the current batch
	hitT int64
	hitV int32
	hitI int
}

// runState is the per-run mutable state; pooled because Monte Carlo
// estimators start thousands of short runs on one engine.
type runState struct {
	k       int
	batch   int
	pos     []int32      // current vertex per walker
	prev    []int32      // previous vertex per walker (-1 first), for prev-lane kernels
	streams []rng.Source // one independent stream per walker
	res     []uint64     // per-walker bit reservoir banking the rest of a group's draw
	seen    []uint8      // merged (global) visited set, one byte per vertex (byte
	// probes sidestep the store-to-load stalls word-sized bitsets suffer
	// when many walkers touch the same words)
	count int // distinct vertices visited
	ws    []worker
}

// newRun borrows or allocates run state for k walkers placed at starts,
// with walker i driven by the independent stream (seed, i). workers is the
// shard count the run will use.
func (e *Engine) newRun(starts []int32, seed uint64, workers int) *runState {
	k := len(starts)
	if k == 0 {
		panic("walk: k-walk requires at least one walker")
	}
	n := e.g.N()
	st, _ := e.pool.Get().(*runState)
	if st == nil {
		st = &runState{}
	}
	st.k, st.count = k, 0
	st.batch = e.batch
	if workers == 1 {
		st.batch = e.seqBatch
	}
	if cap(st.pos) < k {
		st.pos = make([]int32, k)
		st.streams = make([]rng.Source, k)
		st.res = make([]uint64, k)
	}
	st.pos, st.streams, st.res = st.pos[:k], st.streams[:k], st.res[:k]
	if e.prog.needPrev {
		if cap(st.prev) < k {
			st.prev = make([]int32, k)
		}
		st.prev = st.prev[:k]
		for i := range st.prev {
			st.prev[i] = -1
		}
	}
	if cap(st.seen) < n {
		st.seen = make([]uint8, n)
	}
	st.seen = st.seen[:n]
	clear(st.seen)
	for i, s := range starts {
		if s < 0 || int(s) >= n {
			panic(fmt.Sprintf("walk: start %d out of range", s))
		}
		st.pos[i] = s
		st.streams[i].Reseed(rng.StreamSeed(seed, uint64(i)))
	}
	if cap(st.ws) < workers {
		st.ws = make([]worker, workers)
	}
	st.ws = st.ws[:workers]
	chunk := (k + workers - 1) / workers
	for w := range st.ws {
		ws := &st.ws[w]
		ws.lo = min(w*chunk, k)
		ws.hi = min(ws.lo+chunk, k)
		if workers == 1 {
			// A lone worker shares the merged set directly: no per-batch
			// copy, and every logged entry is globally new by construction.
			ws.seen = st.seen
		} else {
			if cap(ws.buf) < n {
				ws.buf = make([]uint8, n)
			}
			ws.buf = ws.buf[:n]
			ws.seen = ws.buf
		}
		if ws.log == nil {
			ws.log = make([]visitEntry, 0, 128)
		}
	}
	return st
}

// workersFor picks the shard count for k walkers.
func (e *Engine) workersFor(k int) int {
	w := e.workers
	if limit := k / minShardWalkers; w > limit {
		w = limit
	}
	if w < 1 {
		w = 1
	}
	return w
}

// The step kernels below advance one round for walkers [lo,hi), writing
// only pos/streams/res — after a round-major step pass, pos[lo:hi] IS the
// round's frontier, and the cover/hit bookkeeping runs as a separate tight
// scan over it. Keeping the loops this small is deliberate: a fused loop
// holds too many values live and the compiler spills them to the stack on
// every step. The reservoir draw discipline implemented here is pinned by
// TestEngineMatchesWalkerReplay.

// stepRoundDrawPad: the first round of a group draws one Uint64, steps by
// its low lane, and banks the remaining bits in the reservoir. Sentinel
// slots redraw with a fresh Uint64's low lane, reservoir intact.
func (e *Engine) stepRoundDrawPad(st *runState, lo, hi int) {
	pad, shift := e.pad, e.padShift
	mask := uint64(1)<<shift - 1
	pos := st.pos[lo:hi]
	streams := st.streams[lo:hi]
	res := st.res[lo:hi]
	for ii := range pos {
		s0, s1, s2, s3 := streams[ii].State()
		p := pos[ii]
		var x uint64
		x, s0, s1, s2, s3 = xoshiroNext(s0, s1, s2, s3)
		res[ii] = x >> shift
		np := pad[uint64(uint32(p))<<shift|x&mask]
		for np == padSentinel {
			x, s0, s1, s2, s3 = xoshiroNext(s0, s1, s2, s3)
			np = pad[uint64(uint32(p))<<shift|x&mask]
		}
		pos[ii] = np
		streams[ii].SetState(s0, s1, s2, s3)
	}
}

// stepRoundConsumePad: later rounds of a group shift the next lane out of
// the reservoir, touching no RNG state at all unless a sentinel forces a
// redraw.
func (e *Engine) stepRoundConsumePad(st *runState, lo, hi int) {
	pad, shift := e.pad, e.padShift
	mask := uint64(1)<<shift - 1
	pos := st.pos[lo:hi]
	streams := st.streams[lo:hi]
	res := st.res[lo:hi]
	for ii := range pos {
		p := pos[ii]
		r := res[ii]
		res[ii] = r >> shift
		np := pad[uint64(uint32(p))<<shift|r&mask]
		for np == padSentinel {
			var x uint64
			s0, s1, s2, s3 := streams[ii].State()
			x, s0, s1, s2, s3 = xoshiroNext(s0, s1, s2, s3)
			streams[ii].SetState(s0, s1, s2, s3)
			np = pad[uint64(uint32(p))<<shift|x&mask]
		}
		pos[ii] = np
	}
}

// stepRoundDrawCSR / stepRoundConsumeCSR are the general-graph variants
// (g = 2): the draw's low and high 32 bits are Lemire-reduced against the
// packed (offset,degree) CSR metadata.
func (e *Engine) stepRoundDrawCSR(st *runState, lo, hi int) {
	vtx, adj := e.vtx, e.adj
	pos := st.pos[lo:hi]
	streams := st.streams[lo:hi]
	res := st.res[lo:hi]
	for ii := range pos {
		s0, s1, s2, s3 := streams[ii].State()
		p := pos[ii]
		var x uint64
		x, s0, s1, s2, s3 = xoshiroNext(s0, s1, s2, s3)
		res[ii] = x >> 32
		meta := vtx[p]
		idx, ok := reduce32(uint32(x), uint32(meta))
		for !ok {
			x, s0, s1, s2, s3 = xoshiroNext(s0, s1, s2, s3)
			idx, ok = reduce32(uint32(x), uint32(meta))
		}
		pos[ii] = adj[uint32(meta>>32)+idx]
		streams[ii].SetState(s0, s1, s2, s3)
	}
}

func (e *Engine) stepRoundConsumeCSR(st *runState, lo, hi int) {
	vtx, adj := e.vtx, e.adj
	pos := st.pos[lo:hi]
	streams := st.streams[lo:hi]
	res := st.res[lo:hi]
	for ii := range pos {
		p := pos[ii]
		meta := vtx[p]
		idx, ok := reduce32(uint32(res[ii]), uint32(meta))
		for !ok {
			var x uint64
			s0, s1, s2, s3 := streams[ii].State()
			x, s0, s1, s2, s3 = xoshiroNext(s0, s1, s2, s3)
			streams[ii].SetState(s0, s1, s2, s3)
			idx, ok = reduce32(uint32(x), uint32(meta))
		}
		pos[ii] = adj[uint32(meta>>32)+idx]
	}
}

// stepRound dispatches one round's step pass. The Uniform kernel keeps the
// original reservoir discipline: rounds (m*g, (m+1)*g] form group m and the
// group's first round draws. Non-uniform kernels dispatch to their compiled
// step function (kernelstep.go); the switch costs one predictable branch
// per round per shard, which is noise next to the per-walker stepping work.
func (e *Engine) stepRound(st *runState, lo, hi int, t int64) {
	switch e.prog.kind {
	case KernelLazy:
		if e.pad != nil {
			e.stepRoundLazyPad(st, lo, hi)
		} else {
			e.stepRoundLazyCSR(st, lo, hi)
		}
		return
	case KernelWeighted, KernelMetropolisUniform:
		e.stepRoundAlias(st, lo, hi)
		return
	case KernelNoBacktrack:
		e.stepRoundNoBacktrack(st, lo, hi)
		return
	}
	draw := (t-1)%int64(e.group) == 0
	if e.pad != nil {
		if draw {
			e.stepRoundDrawPad(st, lo, hi)
		} else {
			e.stepRoundConsumePad(st, lo, hi)
		}
		return
	}
	if draw {
		e.stepRoundDrawCSR(st, lo, hi)
	} else {
		e.stepRoundConsumeCSR(st, lo, hi)
	}
}

// coverScan folds one round's frontier into the worker's seen set, logging
// first visits. The loop is branchless — the entry is written
// unconditionally and the cursor advances by the complement of the seen
// byte — because mid-coverage the "already seen?" branch is a coin flip
// and the mispredictions would dominate the scan.
func coverScan(pos []int32, seen []uint8, log []visitEntry, t int64) []visitEntry {
	log = slices.Grow(log, len(pos))
	buf := log[:cap(log)]
	c := len(log)
	for _, p := range pos {
		buf[c] = visitEntry{t: t, v: p}
		c += 1 - int(seen[p])
		seen[p] = 1
	}
	return buf[:c]
}

// hitScan returns the in-shard index of the first walker standing on a
// marked vertex this round, or -1.
func hitScan(pos []int32, marked []uint64) int {
	for ii, p := range pos {
		if marked[p>>6]&(1<<uint(p&63)) != 0 {
			return ii
		}
	}
	return -1
}

// stepShard advances walkers [lo,hi) through rounds (t0, t0+b], t0 a
// group boundary, marking the worker's seen set and logging each
// first-seen vertex in round order. A lone worker shares the merged set,
// so it knows the global visit count and stops as soon as target is
// reached — mid-batch, with no overshoot; sharded workers always run the
// full batch and let the merge find the stop round. target <= 0 disables
// the check.
func (e *Engine) stepShard(st *runState, ws *worker, b int, t0 int64, target int) {
	single := len(st.ws) == 1
	for j := 0; j < b; j++ {
		t := t0 + int64(j) + 1
		e.stepRound(st, ws.lo, ws.hi, t)
		ws.log = coverScan(st.pos[ws.lo:ws.hi], ws.seen, ws.log, t)
		if single && target > 0 && st.count+len(ws.log) >= target {
			return
		}
	}
}

// stepShardHit advances walkers [lo,hi) through rounds (t0, t0+b], t0 a
// group boundary, stopping at the end of the first round in which a walker
// of this shard stood on a marked vertex (lowest walker index wins within
// the round) and leaving the result in the worker struct.
func (e *Engine) stepShardHit(st *runState, ws *worker, b int, t0 int64, marked []uint64) {
	ws.hitT, ws.hitV, ws.hitI = -1, -1, -1
	for j := 0; j < b; j++ {
		t := t0 + int64(j) + 1
		e.stepRound(st, ws.lo, ws.hi, t)
		if ii := hitScan(st.pos[ws.lo:ws.hi], marked); ii >= 0 {
			ws.hitT, ws.hitV, ws.hitI = t, st.pos[ws.lo+ii], ws.lo+ii
			return
		}
	}
}

// runBatch executes one batch of b rounds across the run's workers. In
// cover mode (marked == nil) each worker logs first visits, stopping early
// at target when it can see the global count; in hit mode it scans for
// marked vertices.
func (e *Engine) runBatch(st *runState, b int, t0 int64, target int, marked []uint64) {
	run := func(ws *worker) {
		if marked != nil {
			e.stepShardHit(st, ws, b, t0, marked)
		} else {
			e.stepShard(st, ws, b, t0, target)
		}
	}
	if len(st.ws) == 1 {
		run(&st.ws[0])
		return
	}
	var wg sync.WaitGroup
	for w := range st.ws {
		ws := &st.ws[w]
		wg.Add(1)
		go func() {
			defer wg.Done()
			run(ws)
		}()
	}
	wg.Wait()
}

// mergeCover folds the workers' batch logs into the shared bitset in round
// order and returns the exact round at which the distinct-visit count
// reached target, or -1. When first is non-nil it records each vertex's
// first-visit round. Worker logs are consumed and reset.
func (st *runState) mergeCover(b int, t0 int64, target int, first []int64) int64 {
	if len(st.ws) == 1 {
		// The worker marked the shared bitset itself, so its log is exactly
		// the globally new vertices in round order.
		for _, en := range st.ws[0].log {
			st.count++
			if first != nil {
				first[en.v] = en.t
			}
			if st.count >= target {
				st.resetLogs()
				return en.t
			}
		}
		st.resetLogs()
		return -1
	}
	seen := st.seen
	for w := range st.ws {
		st.ws[w].cur = 0
	}
	for t := t0 + 1; t <= t0+int64(b); t++ {
		for w := range st.ws {
			ws := &st.ws[w]
			log := ws.log
			c := ws.cur
			for c < len(log) && log[c].t == t {
				v := log[c].v
				c++
				if seen[v] == 0 {
					seen[v] = 1
					st.count++
					if first != nil {
						first[v] = t
					}
					if st.count >= target {
						st.resetLogs()
						return t
					}
				}
			}
			ws.cur = c
		}
	}
	st.resetLogs()
	return -1
}

func (st *runState) resetLogs() {
	for w := range st.ws {
		st.ws[w].log = st.ws[w].log[:0]
	}
}

// seedWorkerSeen copies the merged visited bitset into every worker's
// private bitset so already-known vertices are not re-logged.
func (st *runState) seedWorkerSeen() {
	for w := range st.ws {
		copy(st.ws[w].seen, st.seen)
	}
}

// coverRun is the shared driver for KCover, KCoverTarget and KFirstVisits.
func (e *Engine) coverRun(starts []int32, seed uint64, maxRounds int64, target int, first []int64) CoverResult {
	st := e.newRun(starts, seed, e.workersFor(len(starts)))
	defer e.pool.Put(st)
	for _, s := range starts {
		if st.seen[s] == 0 {
			st.seen[s] = 1
			st.count++
			if first != nil {
				first[s] = 0
			}
		}
	}
	if st.count >= target {
		return CoverResult{Steps: 0, Covered: true}
	}
	if maxRounds <= 0 {
		return CoverResult{Steps: maxRounds, Covered: false}
	}
	for t0 := int64(0); t0 < maxRounds; {
		b := st.batch
		if int64(b) > maxRounds-t0 {
			b = int(maxRounds - t0)
		}
		if len(st.ws) > 1 {
			st.seedWorkerSeen()
		}
		e.runBatch(st, b, t0, target, nil)
		if t := st.mergeCover(b, t0, target, first); t >= 0 {
			return CoverResult{Steps: t, Covered: true}
		}
		t0 += int64(b)
	}
	return CoverResult{Steps: maxRounds, Covered: false}
}

// KCover runs the synchronized k-walk from starts until the union of
// trajectories covers every vertex, or maxRounds rounds elapse. Walker i is
// driven by the independent stream (seed, i), so the result is bit-for-bit
// reproducible and independent of Workers and BatchRounds.
func (e *Engine) KCover(starts []int32, seed uint64, maxRounds int64) CoverResult {
	return e.coverRun(starts, seed, maxRounds, e.g.N(), nil)
}

// commonStarts places all k walkers at one vertex.
func commonStarts(start int32, k int) []int32 {
	starts := make([]int32, k)
	for i := range starts {
		starts[i] = start
	}
	return starts
}

// KCoverFrom is KCover with all k walkers started at one vertex — the
// paper's C^k(G, start) experiment.
func (e *Engine) KCoverFrom(start int32, k int, seed uint64, maxRounds int64) CoverResult {
	return e.KCover(commonStarts(start, k), seed, maxRounds)
}

// KCoverTarget runs the k-walk until target distinct vertices have been
// visited (target = n is full cover); it panics unless 1 <= target <= n.
func (e *Engine) KCoverTarget(starts []int32, target int, seed uint64, maxRounds int64) CoverResult {
	if target < 1 || target > e.g.N() {
		panic(fmt.Sprintf("walk: cover target %d out of range [1,%d]", target, e.g.N()))
	}
	return e.coverRun(starts, seed, maxRounds, target, nil)
}

// KFirstVisits runs the k-walk for at most horizon rounds and returns each
// vertex's first-visit round (-1 if unvisited; start vertices get 0). The
// run stops early once every vertex is visited.
func (e *Engine) KFirstVisits(starts []int32, seed uint64, horizon int64) []int64 {
	n := e.g.N()
	first := make([]int64, n)
	for i := range first {
		first[i] = -1
	}
	e.coverRun(starts, seed, horizon, n, first)
	return first
}

// KHit runs the k-walk until some walker stands on a vertex with
// marked[v] == true, or maxRounds rounds elapse. A marked start vertex hits
// at round 0; ties within a round resolve to the lowest walker index.
// len(marked) must equal n.
func (e *Engine) KHit(starts []int32, marked []bool, seed uint64, maxRounds int64) HitResult {
	return e.kHit(starts, marked, seed, maxRounds)
}

// KHitFrom is KHit with all k walkers started at one vertex — the k-token
// search-query shape.
func (e *Engine) KHitFrom(start int32, k int, marked []bool, seed uint64, maxRounds int64) HitResult {
	return e.kHit(commonStarts(start, k), marked, seed, maxRounds)
}

func (e *Engine) kHit(starts []int32, marked []bool, seed uint64, maxRounds int64) HitResult {
	n := e.g.N()
	if len(marked) != n {
		panic(fmt.Sprintf("walk: marked length %d != n %d", len(marked), n))
	}
	for i, s := range starts {
		if marked[s] {
			return HitResult{Rounds: 0, Vertex: s, Walker: i, Hit: true}
		}
	}
	bitset := make([]uint64, (n+63)/64)
	any := false
	for v, m := range marked {
		if m {
			bitset[v>>6] |= 1 << uint(v&63)
			any = true
		}
	}
	if !any || maxRounds <= 0 {
		return HitResult{Rounds: maxRounds, Vertex: -1, Walker: -1}
	}
	st := e.newRun(starts, seed, e.workersFor(len(starts)))
	defer e.pool.Put(st)
	for t0 := int64(0); t0 < maxRounds; {
		b := st.batch
		if int64(b) > maxRounds-t0 {
			b = int(maxRounds - t0)
		}
		e.runBatch(st, b, t0, 0, bitset)
		bestT, bestV, bestI := int64(-1), int32(-1), -1
		for w := range st.ws {
			ws := &st.ws[w]
			if ws.hitT >= 0 && (bestT < 0 || ws.hitT < bestT || (ws.hitT == bestT && ws.hitI < bestI)) {
				bestT, bestV, bestI = ws.hitT, ws.hitV, ws.hitI
			}
		}
		if bestT >= 0 {
			return HitResult{Rounds: bestT, Vertex: bestV, Walker: bestI, Hit: true}
		}
		t0 += int64(b)
	}
	return HitResult{Rounds: maxRounds, Vertex: -1, Walker: -1}
}
