package walk

import (
	"fmt"
	"math/bits"
	"runtime"
	"slices"
	"sort"
	"sync"

	"manywalks/internal/graph"
	"manywalks/internal/rng"
)

// This file implements the batched k-walk engine, the hot path behind every
// cover-time, partial-cover, and hit-time estimate in the repository.
//
// The legacy simulators in walk.go advance walkers through Walker.Step,
// paying a slice-header construction and a non-inlinable shared-RNG call
// per step. The engine instead keeps all walker state in flat arrays —
// positions in a []int32, one xoshiro256++ stream per walker in a
// []rng.Source — and advances the whole walker array in *batches* of
// rounds between synchronization barriers:
//
//  1. Step: each worker owns a contiguous shard of walkers and advances it
//     strictly round-major (all walkers step round t before any steps
//     t+1), which keeps the per-walker load chains independent so the CPU
//     overlaps their cache misses. Each walker stretches one 64-bit
//     xoshiro draw across a *group* of rounds through a per-walker bit
//     reservoir (see the draw discipline below), so the generator state is
//     loaded and stored once per group instead of once per step. Each
//     worker marks a private visited set and appends (round, vertex) to a
//     private log — naturally sorted by round — whenever it sees a vertex
//     for the first time.
//  2. Merge: at the batch barrier one pass sweeps the worker logs in round
//     order, folding them into the shared visited set and detecting the
//     exact round at which the stop condition fired, even mid-batch.
//
// Draw discipline (pinned by TestEngineMatchesWalkerReplay against an
// independent reimplementation): walker i consumes the stream
// rng.NewStream(seed, i). Rounds are processed in groups of g, aligned to
// absolute round numbers (rounds (m*g, (m+1)*g] form group m). With a
// padded table of stride 2^s, a step needs s random bits and g = 64/s:
// at the first round of a group the walker draws one Uint64, steps by its
// low s bits, and banks the remaining 64-s bits in a reservoir; each later
// round of the group shifts the next s bits out of the reservoir. Without
// a padded table g = 2 and the lanes are the draw's low and high 32 bits,
// reduced to [0,deg) by Lemire multiply-shift. A rejected lane — a padding
// sentinel, or Lemire's low region (probability deg/2^32) — draws a fresh
// Uint64 and retries with its low lane, leaving the reservoir intact.
// Batches always span whole groups, so results are bit-for-bit identical
// for a fixed (graph, starts, seed, budget) regardless of Workers and
// BatchRounds. Walkers overshooting the stop round inside a batch are
// simply discarded with the rest of the batch.

// EngineOptions tunes the batched k-walk engine. Except for Kernel, the
// zero value selects sensible defaults and no option affects results, only
// performance. Kernel selects the step law (and so the simulated process);
// its zero value is the paper's uniform walk.
type EngineOptions struct {
	// Workers caps the goroutines stepping walker shards concurrently.
	// 0 or negative selects runtime.NumCPU(). A run never uses more than
	// one worker per minShardWalkers walkers, so small k stays sequential.
	Workers int
	// BatchRounds is the number of rounds advanced between merge barriers,
	// rounded up to a whole number of draw groups (the rounds one 64-bit
	// draw funds — 2 in CSR mode, 64/s for a padded table of stride 2^s,
	// so up to 64; non-uniform kernels draw fresh every round, so their
	// group is 1). 0 or negative selects the default: 64 for sharded
	// runs, 16 for single-worker runs, whose merges are cheap and whose
	// overshoot past the stop round is pure waste. Larger batches
	// amortize the barrier but overshoot further; results are unaffected
	// either way.
	BatchRounds int
	// Kernel is the step law the engine compiles (see kernel.go). The
	// zero value is Uniform(). Every kernel keeps the engine's
	// determinism guarantee: for a fixed (graph, kernel, starts, seed,
	// budget), results are bit-for-bit identical regardless of Workers
	// and BatchRounds.
	Kernel Kernel
}

const (
	defaultBatchRounds    = 64
	defaultSeqBatchRounds = 16
	// minShardWalkers is the smallest shard worth a goroutine; below this
	// the barrier overhead dominates the stepping work.
	minShardWalkers = 16
)

// Engine is a batched simulator for the paper's synchronized k-walk on one
// fixed graph. It is immutable after construction and safe for concurrent
// use: every run allocates (or borrows from an internal pool) its own
// walker state.
type Engine struct {
	// Hot step-path fields stay at the top of the struct so the per-round
	// dispatch and table lookups share cache lines.
	adj []int32
	// vtx packs vertex v's CSR range as offset<<32 | degree, halving the
	// per-step metadata loads relative to two offsets lookups.
	vtx []uint64
	// pad, when non-nil, holds every vertex's neighbors replicated into a
	// power-of-two stride (1 << padShift slots per vertex): slot s of
	// vertex v is its (s mod deg)-th neighbor for s < deg*(stride/deg),
	// and the padSentinel for the remaining slots. Sampling a slot with
	// one masked lookup replaces the offsets-then-adjacency load chain
	// with a single dependent load; sentinel slots redraw, keeping the
	// choice exactly uniform. Built only when the table stays small
	// enough to be worth it (maxPadEntries).
	pad      []int32
	padShift uint32
	group    int           // rounds funded by one 64-bit draw; batches span whole groups
	prog     kernelProgram // compiled step law: alias tables, lazy threshold, prev-lane flag
	workers  int
	batch    int // rounds per barrier for sharded (multi-worker) runs
	seqBatch int // rounds per merge for single-worker runs (overshoot is pure waste there)
	g        *graph.Graph
	kernel   Kernel
	pool     sync.Pool // *runState, reused across runs to cut allocation churn
	gpool    sync.Pool // *groupState, reused across grouped (trial-fused) runs
	pair     pairTable // lazily built two-step table for the fused grouped path
}

const (
	padSentinel   = int32(-1)
	maxPadEntries = 1 << 21 // 8 MiB of padded table at 4 bytes per slot
)

// NewEngine returns an engine for g. It panics if any vertex is isolated
// (a walker there would have no move) or if opts.Kernel is invalid,
// mirroring Walker's constructor contract of rejecting impossible
// configurations up front.
func NewEngine(g *graph.Graph, opts EngineOptions) *Engine {
	offsets, adj := g.CSR()
	n := g.N()
	vtx := make([]uint64, n)
	for v := 0; v < n; v++ {
		off, deg := offsets[v], offsets[v+1]-offsets[v]
		if deg == 0 {
			panic(fmt.Sprintf("walk: engine requires min degree 1, vertex %d is isolated", v))
		}
		vtx[v] = uint64(uint32(off))<<32 | uint64(uint32(deg))
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	batch := opts.BatchRounds
	seqBatch := batch
	if batch <= 0 {
		// Unset: big batches amortize the multi-worker barrier, while a
		// single-worker run merges cheaply and only wastes its overshoot
		// past the stop round, so it prefers short batches.
		batch, seqBatch = defaultBatchRounds, defaultSeqBatchRounds
	}
	kernel := KernelOrUniform(opts.Kernel)
	prog, err := compileKernel(g, kernel)
	if err != nil {
		panic(err.Error())
	}
	e := &Engine{g: g, adj: adj, vtx: vtx, workers: workers, kernel: kernel, prog: prog}
	// Non-uniform kernels draw fresh entropy every round (group 1), so
	// only Uniform banks reservoir bits, and only Uniform and Lazy sample
	// through the padded table.
	e.group = 1
	if wantsPadTable(prog.kind) {
		if prog.kind == progUniform {
			e.group = 2
		}
		_, maxDeg := g.DegreeStats()
		shift := uint32(bits.Len(uint(maxDeg - 1)))
		if shift == 0 {
			shift = 1 // a stride-1 table still banks one (unused) bit per round
		}
		if stride := 1 << shift; n<<shift <= maxPadEntries {
			pad := make([]int32, n<<shift)
			for v := 0; v < n; v++ {
				nb := adj[offsets[v]:offsets[v+1]]
				deg := len(nb)
				filled := (stride / deg) * deg
				row := pad[v<<shift : (v+1)<<shift]
				for s := 0; s < filled; s++ {
					row[s] = nb[s%deg]
				}
				for s := filled; s < stride; s++ {
					row[s] = padSentinel
				}
			}
			e.pad, e.padShift = pad, shift
			if prog.kind == progUniform {
				e.group = 64 / int(shift)
			}
		}
	}
	// Batches must span whole groups so the reservoir never crosses a
	// barrier.
	roundUp := func(b int) int { return (b + e.group - 1) / e.group * e.group }
	e.batch, e.seqBatch = roundUp(batch), roundUp(seqBatch)
	return e
}

// wantsPadTable reports whether a compiled kernel samples uniform neighbors
// through the padded table; the alias-table and prev-lane programs never
// touch it.
func wantsPadTable(k progKind) bool {
	return k == progUniform || k == progLazy
}

// Graph returns the engine's graph.
func (e *Engine) Graph() *graph.Graph { return e.g }

// Kernel returns the step law the engine was compiled for.
func (e *Engine) Kernel() Kernel { return e.kernel }

// HitResult reports a marked-vertex search (KHit).
type HitResult struct {
	Rounds int64 // rounds to the first hit, or the budget if !Hit
	Vertex int32 // the marked vertex hit, -1 if none
	Walker int   // index of the hitting walker, -1 if none
	Hit    bool
}

// xoshiroNext is the xoshiro256++ transition, kept as a tiny pure function
// so the kernels inline it with the state in registers. It must match
// rng.Source.Uint64 bit for bit.
func xoshiroNext(s0, s1, s2, s3 uint64) (x, r0, r1, r2, r3 uint64) {
	x = bits.RotateLeft64(s0+s3, 23) + s0
	t := s1 << 17
	s2 ^= s0
	s3 ^= s1
	s1 ^= s2
	s0 ^= s3
	s2 ^= t
	s3 = bits.RotateLeft64(s3, 45)
	return x, s0, s1, s2, s3
}

// reduce32 maps a 32-bit lane to [0,deg) by Lemire multiply-shift; ok is
// false when the lane falls in the rejected low region and must be
// redrawn, which keeps the reduction exactly uniform.
func reduce32(lane, deg uint32) (idx uint32, ok bool) {
	m := uint64(lane) * uint64(deg)
	if uint32(m) < deg && uint32(m) < -deg%deg {
		return 0, false
	}
	return uint32(m >> 32), true
}

// visitEntry records a worker-locally new vertex and the round it was
// reached.
type visitEntry struct {
	t int64
	v int32
}

// worker is one shard's private visited state; log holds its first visits
// in round order and cur is the merge sweep's cursor into it.
type worker struct {
	lo, hi int
	seen   []uint64 // view: the private buf, or the run's merged set when sharing
	buf    []uint64
	log    []visitEntry
	cur    int
}

// seenWords is the length of a word-packed visited bitset over n vertices.
func seenWords(n int) int { return (n + 63) / 64 }

// testAndSet marks vertex v in the word-packed set and reports whether it
// was already marked.
func testAndSet(seen []uint64, v int32) bool {
	w := seen[uint32(v)>>6]
	bit := uint64(1) << (uint(v) & 63)
	seen[uint32(v)>>6] = w | bit
	return w&bit != 0
}

// compileMarkedBitset packs a marked-vertex set into a word bitset (reusing
// buf's capacity) and reports whether the set is empty — the shared
// marked-set compile of the sequential and grouped hit observers.
func compileMarkedBitset(marked []bool, buf []uint64) (bitset []uint64, none bool) {
	words := seenWords(len(marked))
	if cap(buf) < words {
		buf = make([]uint64, words)
	}
	bitset = buf[:words]
	clear(bitset)
	none = true
	for v, m := range marked {
		if m {
			bitset[v>>6] |= 1 << uint(v&63)
			none = false
		}
	}
	return bitset, none
}

// runState is the per-run mutable state; pooled because Monte Carlo
// estimators start thousands of short runs on one engine.
type runState struct {
	k       int
	batch   int
	pos     []int32      // current vertex per walker
	prev    []int32      // previous vertex per walker (-1 first), for prev-lane kernels
	streams []rng.Source // one independent stream per walker
	res     []uint64     // per-walker bit reservoir banking the rest of a group's draw
	seen    []uint64     // merged (global) visited set for the cover observer,
	// word-packed (1 bit per vertex): clears between pooled runs touch n/8
	// bytes instead of n, and a whole shard copy in preBatch is a short
	// word-sized memmove
	probe []uint8 // lone-worker byte probe (see logNewVisitsBytes)
	ws    []worker
}

// newRun borrows or allocates run state for k walkers placed at starts,
// with walker i driven by the independent stream (seed, i). workers is the
// shard count the run will use; needSeen provisions the pooled visited-set
// storage a CoverObserver borrows. Starts must already be validated.
func (e *Engine) newRun(starts []int32, seed uint64, workers int, needSeen bool) *runState {
	k := len(starts)
	n := e.g.N()
	st, _ := e.pool.Get().(*runState)
	if st == nil {
		st = &runState{}
	}
	st.k = k
	st.batch = e.batch
	if workers == 1 {
		st.batch = e.seqBatch
	}
	if cap(st.pos) < k {
		st.pos = make([]int32, k)
		st.streams = make([]rng.Source, k)
		st.res = make([]uint64, k)
	}
	st.pos, st.streams, st.res = st.pos[:k], st.streams[:k], st.res[:k]
	if e.prog.needPrev {
		if cap(st.prev) < k {
			st.prev = make([]int32, k)
		}
		st.prev = st.prev[:k]
		for i := range st.prev {
			st.prev[i] = -1
		}
	}
	if needSeen {
		words := seenWords(n)
		if cap(st.seen) < words {
			st.seen = make([]uint64, words)
		}
		st.seen = st.seen[:words]
		clear(st.seen)
		if workers == 1 {
			if cap(st.probe) < n {
				st.probe = make([]uint8, n)
			}
			st.probe = st.probe[:n]
			clear(st.probe)
		}
	}
	for i, s := range starts {
		st.pos[i] = s
		st.streams[i].Reseed(rng.StreamSeed(seed, uint64(i)))
	}
	if cap(st.ws) < workers {
		st.ws = make([]worker, workers)
	}
	st.ws = st.ws[:workers]
	chunk := (k + workers - 1) / workers
	for w := range st.ws {
		ws := &st.ws[w]
		ws.lo = min(w*chunk, k)
		ws.hi = min(ws.lo+chunk, k)
		if needSeen {
			if workers == 1 {
				// A lone worker shares the merged set directly: no per-batch
				// copy, and every logged entry is globally new by construction.
				ws.seen = st.seen
			} else {
				words := seenWords(n)
				if cap(ws.buf) < words {
					ws.buf = make([]uint64, words)
				}
				ws.buf = ws.buf[:words]
				ws.seen = ws.buf
			}
			if ws.log == nil {
				ws.log = make([]visitEntry, 0, 128)
			}
		}
	}
	return st
}

// workersFor picks the shard count for k walkers.
func (e *Engine) workersFor(k int) int {
	w := e.workers
	if limit := k / minShardWalkers; w > limit {
		w = limit
	}
	if w < 1 {
		w = 1
	}
	return w
}

// The step kernels below advance one round for walkers [lo,hi), writing
// only pos/streams/res — after a round-major step pass, pos[lo:hi] IS the
// round's frontier, and the cover/hit bookkeeping runs as a separate tight
// scan over it. Keeping the loops this small is deliberate: a fused loop
// holds too many values live and the compiler spills them to the stack on
// every step. The reservoir draw discipline implemented here is pinned by
// TestEngineMatchesWalkerReplay.

// stepRoundDrawPad: the first round of a group draws one Uint64, steps by
// its low lane, and banks the remaining bits in the reservoir. Sentinel
// slots redraw with a fresh Uint64's low lane, reservoir intact.
func (e *Engine) stepRoundDrawPad(st *runState, lo, hi int) {
	pad, shift := e.pad, e.padShift
	mask := uint64(1)<<shift - 1
	pos := st.pos[lo:hi]
	streams := st.streams[lo:hi]
	res := st.res[lo:hi]
	for ii := range pos {
		s0, s1, s2, s3 := streams[ii].State()
		p := pos[ii]
		var x uint64
		x, s0, s1, s2, s3 = xoshiroNext(s0, s1, s2, s3)
		res[ii] = x >> shift
		np := pad[uint64(uint32(p))<<shift|x&mask]
		for np == padSentinel {
			x, s0, s1, s2, s3 = xoshiroNext(s0, s1, s2, s3)
			np = pad[uint64(uint32(p))<<shift|x&mask]
		}
		pos[ii] = np
		streams[ii].SetState(s0, s1, s2, s3)
	}
}

// stepRoundConsumePad: later rounds of a group shift the next lane out of
// the reservoir, touching no RNG state at all unless a sentinel forces a
// redraw.
func (e *Engine) stepRoundConsumePad(st *runState, lo, hi int) {
	pad, shift := e.pad, e.padShift
	mask := uint64(1)<<shift - 1
	pos := st.pos[lo:hi]
	streams := st.streams[lo:hi]
	res := st.res[lo:hi]
	for ii := range pos {
		p := pos[ii]
		r := res[ii]
		res[ii] = r >> shift
		np := pad[uint64(uint32(p))<<shift|r&mask]
		for np == padSentinel {
			var x uint64
			s0, s1, s2, s3 := streams[ii].State()
			x, s0, s1, s2, s3 = xoshiroNext(s0, s1, s2, s3)
			streams[ii].SetState(s0, s1, s2, s3)
			np = pad[uint64(uint32(p))<<shift|x&mask]
		}
		pos[ii] = np
	}
}

// stepRoundDrawCSR / stepRoundConsumeCSR are the general-graph variants
// (g = 2): the draw's low and high 32 bits are Lemire-reduced against the
// packed (offset,degree) CSR metadata.
func (e *Engine) stepRoundDrawCSR(st *runState, lo, hi int) {
	vtx, adj := e.vtx, e.adj
	pos := st.pos[lo:hi]
	streams := st.streams[lo:hi]
	res := st.res[lo:hi]
	for ii := range pos {
		s0, s1, s2, s3 := streams[ii].State()
		p := pos[ii]
		var x uint64
		x, s0, s1, s2, s3 = xoshiroNext(s0, s1, s2, s3)
		res[ii] = x >> 32
		meta := vtx[p]
		idx, ok := reduce32(uint32(x), uint32(meta))
		for !ok {
			x, s0, s1, s2, s3 = xoshiroNext(s0, s1, s2, s3)
			idx, ok = reduce32(uint32(x), uint32(meta))
		}
		pos[ii] = adj[uint32(meta>>32)+idx]
		streams[ii].SetState(s0, s1, s2, s3)
	}
}

func (e *Engine) stepRoundConsumeCSR(st *runState, lo, hi int) {
	vtx, adj := e.vtx, e.adj
	pos := st.pos[lo:hi]
	streams := st.streams[lo:hi]
	res := st.res[lo:hi]
	for ii := range pos {
		p := pos[ii]
		meta := vtx[p]
		idx, ok := reduce32(uint32(res[ii]), uint32(meta))
		for !ok {
			var x uint64
			s0, s1, s2, s3 := streams[ii].State()
			x, s0, s1, s2, s3 = xoshiroNext(s0, s1, s2, s3)
			streams[ii].SetState(s0, s1, s2, s3)
			idx, ok = reduce32(uint32(x), uint32(meta))
		}
		pos[ii] = adj[uint32(meta>>32)+idx]
	}
}

// stepRound dispatches one round's step pass. The Uniform kernel keeps the
// original reservoir discipline: rounds (m*g, (m+1)*g] form group m and the
// group's first round draws. Non-uniform kernels dispatch to their compiled
// step function (kernelstep.go); the switch costs one predictable branch
// per round per shard, which is noise next to the per-walker stepping work.
func (e *Engine) stepRound(st *runState, lo, hi int, t int64) {
	switch e.prog.kind {
	case progLazy:
		if e.pad != nil {
			e.stepRoundLazyPad(st, lo, hi)
		} else {
			e.stepRoundLazyCSR(st, lo, hi)
		}
		return
	case progAlias:
		e.stepRoundAlias(st, lo, hi)
		return
	case progNoBacktrack:
		e.stepRoundNoBacktrack(st, lo, hi)
		return
	}
	draw := (t-1)%int64(e.group) == 0
	if e.pad != nil {
		if draw {
			e.stepRoundDrawPad(st, lo, hi)
		} else {
			e.stepRoundConsumePad(st, lo, hi)
		}
		return
	}
	if draw {
		e.stepRoundDrawCSR(st, lo, hi)
	} else {
		e.stepRoundConsumeCSR(st, lo, hi)
	}
}

// logNewVisits folds one round's frontier into a shard's word-packed seen
// set, logging first visits; it is the sharded cover observer's scan
// kernel.
func logNewVisits(pos []int32, seen []uint64, log []visitEntry, t int64) []visitEntry {
	log = slices.Grow(log, len(pos))
	buf := log[:cap(log)]
	c := len(log)
	for _, p := range pos {
		w := seen[uint32(p)>>6]
		bit := uint64(1) << (uint(p) & 63)
		buf[c] = visitEntry{t: t, v: p}
		c += int(w>>(uint(p)&63))&1 ^ 1
		seen[uint32(p)>>6] = w | bit
	}
	return buf[:c]
}

// logNewVisitsBytes is the lone-worker variant of logNewVisits probing a
// byte array. The loop is branchless — the entry is written unconditionally
// and the cursor advances by the complement of the seen byte — because
// mid-coverage the "already seen?" branch is a coin flip and the
// mispredictions would dominate the scan. Byte probes beat word-packed
// probes here: consecutive walkers landing in the same 64-vertex word chain
// read-modify-write stalls that byte-granular stores sidestep (measured
// ~25% slower end-to-end on the k=64 expander cover when this loop probes
// the packed set directly), so the lone worker keeps a flat byte probe and
// the word-packed set stays the merge-side representation.
func logNewVisitsBytes(pos []int32, probe []uint8, log []visitEntry, t int64) []visitEntry {
	log = slices.Grow(log, len(pos))
	buf := log[:cap(log)]
	c := len(log)
	for _, p := range pos {
		buf[c] = visitEntry{t: t, v: p}
		c += 1 - int(probe[p])
		probe[p] = 1
	}
	return buf[:c]
}

// scanMarked returns the in-shard index of the first walker standing on a
// marked vertex this round, or -1; it is the hit observer's scan kernel.
func scanMarked(pos []int32, marked []uint64) int {
	for ii, p := range pos {
		if marked[p>>6]&(1<<uint(p&63)) != 0 {
			return ii
		}
	}
	return -1
}

func (st *runState) resetLogs() {
	for w := range st.ws {
		st.ws[w].log = st.ws[w].log[:0]
	}
}

// each runs fn over the run's workers — concurrently when the run is
// sharded. It is the only synchronization point of a run: everything fn
// touches is shard-private, and the merges after the barrier see every
// shard's whole batch.
func (st *runState) each(fn func(w int, ws *worker)) {
	if len(st.ws) == 1 {
		fn(0, &st.ws[0])
		return
	}
	var wg sync.WaitGroup
	for w := range st.ws {
		wg.Add(1)
		go func() {
			defer wg.Done()
			fn(w, &st.ws[w])
		}()
	}
	wg.Wait()
}

// validateSpec checks a run's shape up front so out-of-range vertex ids
// surface as descriptive errors instead of index panics inside the hot
// loop, and fills the spec's defaults.
func (e *Engine) validateSpec(spec *RunSpec, obs []Observer) error {
	if len(obs) == 0 {
		return fmt.Errorf("walk: run requires at least one observer")
	}
	k := len(spec.Starts)
	if k == 0 {
		return fmt.Errorf("walk: k-walk requires at least one walker")
	}
	n := e.g.N()
	for i, s := range spec.Starts {
		if s < 0 || int(s) >= n {
			return fmt.Errorf("walk: start[%d] = %d out of range [0,%d)", i, s, n)
		}
	}
	covers := 0
	for _, o := range obs {
		if err := o.validate(n, k); err != nil {
			return err
		}
		if _, ok := o.(*CoverObserver); ok {
			covers++
		}
	}
	if covers > 1 {
		return fmt.Errorf("walk: at most one CoverObserver per run (it owns the pooled visited set)")
	}
	if spec.Stop == nil {
		spec.Stop = StopWhenAll()
	}
	return nil
}

// Run executes one synchronized k-walk described by spec against the
// given observers and returns the exact round the stop condition fired.
// Walker i is driven by the independent stream (spec.Seed, i), scans are
// shard-private, and merges are round-ordered, so every result — the stop
// round and all observer state — is bit-for-bit identical for a fixed
// (graph, kernel, spec, observers) regardless of Workers and BatchRounds.
//
// Two observer sets are recognized as fused fast paths that keep the
// padded/bit-reservoir stepping kernels and the mid-batch early exits: a
// single CoverObserver (every cover/partial-cover/first-visit/multi-target
// workload) and a single HitObserver. All other sets run the generic loop.
func (e *Engine) Run(spec RunSpec, observers ...Observer) (RunResult, error) {
	if err := e.validateSpec(&spec, observers); err != nil {
		return RunResult{}, err
	}
	needSeen := false
	for _, o := range observers {
		if _, ok := o.(*CoverObserver); ok {
			needSeen = true
		}
	}
	st := e.newRun(spec.Starts, spec.Seed, e.workersFor(len(spec.Starts)), needSeen)
	defer e.pool.Put(st)
	for _, o := range observers {
		o.reset(e, st, spec.Starts)
	}
	if r := spec.Stop.stop(observers); r >= 0 {
		return RunResult{Rounds: r, Stopped: true}, nil
	}
	if spec.MaxRounds <= 0 {
		return RunResult{Rounds: spec.MaxRounds}, nil
	}
	if len(observers) == 1 && satisfactionStop(spec.Stop) {
		switch o := observers[0].(type) {
		case *CoverObserver:
			return e.runCover(st, spec, o), nil
		case *HitObserver:
			return e.runHit(st, spec, o), nil
		}
	}
	return e.runGeneric(st, spec, observers), nil
}

// satisfactionStop reports whether stop fires exactly when the run's sole
// observer is satisfied — the contract the fused loops implement.
// RunToHorizon must take the generic loop even for a single observer.
func satisfactionStop(s StopCondition) bool {
	switch s.(type) {
	case stopWhenAll, stopWhenAny:
		return true
	}
	return false
}

// batchFor clamps the run's batch length to the remaining budget.
func (st *runState) batchFor(t0, maxRounds int64) int {
	b := st.batch
	if int64(b) > maxRounds-t0 {
		b = int(maxRounds - t0)
	}
	return b
}

// runCover is the fused driver for a lone CoverObserver. A lone worker
// shares the merged visited set, so it sees the exact global count and
// stops mid-batch with no overshoot once a pure count goal is reached;
// sharded workers always run the full batch and let the merge find the
// exact stop round.
func (e *Engine) runCover(st *runState, spec RunSpec, cov *CoverObserver) RunResult {
	early := -1
	if cov.sharedSeen && cov.earlyTarget > 0 {
		early = cov.earlyTarget
	}
	for t0 := int64(0); t0 < spec.MaxRounds; {
		b := st.batchFor(t0, spec.MaxRounds)
		cov.preBatch(st)
		st.each(func(w int, ws *worker) {
			// The mode branch lives outside the round loop so each round
			// pays one direct call into its scan kernel — the shape the
			// compiler kept when CoverObserver.scan was still inlinable.
			if cov.sharedSeen {
				for j := 0; j < b; j++ {
					t := t0 + int64(j) + 1
					e.stepRound(st, ws.lo, ws.hi, t)
					ws.log = logNewVisitsBytes(st.pos[ws.lo:ws.hi], cov.probe, ws.log, t)
					if early > 0 && cov.count+len(ws.log) >= early {
						return
					}
				}
				return
			}
			for j := 0; j < b; j++ {
				t := t0 + int64(j) + 1
				e.stepRound(st, ws.lo, ws.hi, t)
				ws.log = logNewVisits(st.pos[ws.lo:ws.hi], ws.seen, ws.log, t)
			}
		})
		cov.beginMerge(st, b, t0)
		for t := t0 + 1; t <= t0+int64(b); t++ {
			cov.mergeRound(st, t)
			if s := cov.satisfied; s >= 0 {
				cov.endMerge(st)
				return RunResult{Rounds: s, Stopped: true}
			}
		}
		cov.endMerge(st)
		t0 += int64(b)
	}
	return RunResult{Rounds: spec.MaxRounds}
}

// runHit is the fused driver for a lone HitObserver: each shard stops
// stepping at the end of the first round it holds a hit, and the merge
// resolves the earliest round (lowest walker index within it) exactly.
func (e *Engine) runHit(st *runState, spec RunSpec, hit *HitObserver) RunResult {
	if hit.none {
		// Nothing is marked; stepping the budget down cannot change that.
		return RunResult{Rounds: spec.MaxRounds}
	}
	for t0 := int64(0); t0 < spec.MaxRounds; {
		b := st.batchFor(t0, spec.MaxRounds)
		hit.preBatch(st)
		st.each(func(w int, ws *worker) {
			for j := 0; j < b; j++ {
				t := t0 + int64(j) + 1
				e.stepRound(st, ws.lo, ws.hi, t)
				if hit.scan(st, ws, w, t); hit.cand[w].t >= 0 {
					return
				}
			}
		})
		hit.beginMerge(st, b, t0)
		for t := t0 + 1; t <= t0+int64(b); t++ {
			hit.mergeRound(st, t)
			if s := hit.satisfied; s >= 0 {
				hit.endMerge(st)
				return RunResult{Rounds: s, Stopped: true}
			}
		}
		hit.endMerge(st)
		t0 += int64(b)
	}
	return RunResult{Rounds: spec.MaxRounds}
}

// runGeneric drives an arbitrary observer set: every shard runs the full
// batch invoking each observer's scan hook after every round, and the
// barrier merges rounds one at a time — evaluating the stop condition
// after each — so the run halts at the exact round the condition first
// held and no observer ever merges state past it.
func (e *Engine) runGeneric(st *runState, spec RunSpec, obs []Observer) RunResult {
	for t0 := int64(0); t0 < spec.MaxRounds; {
		b := st.batchFor(t0, spec.MaxRounds)
		for _, o := range obs {
			o.preBatch(st)
		}
		st.each(func(w int, ws *worker) {
			for j := 0; j < b; j++ {
				t := t0 + int64(j) + 1
				e.stepRound(st, ws.lo, ws.hi, t)
				for _, o := range obs {
					o.scan(st, ws, w, t)
				}
			}
		})
		for _, o := range obs {
			o.beginMerge(st, b, t0)
		}
		stopped := int64(-1)
		for t := t0 + 1; t <= t0+int64(b) && stopped < 0; t++ {
			for _, o := range obs {
				o.mergeRound(st, t)
			}
			stopped = spec.Stop.stop(obs)
		}
		for _, o := range obs {
			o.endMerge(st)
		}
		if stopped >= 0 {
			return RunResult{Rounds: stopped, Stopped: true}
		}
		t0 += int64(b)
	}
	return RunResult{Rounds: spec.MaxRounds}
}

// mustRun is the shim behind the legacy convenience wrappers, which keep
// their documented panic-on-misuse contract on top of Run's error returns.
func (e *Engine) mustRun(spec RunSpec, obs ...Observer) RunResult {
	res, err := e.Run(spec, obs...)
	if err != nil {
		panic(err.Error())
	}
	return res
}

// KCover runs the synchronized k-walk from starts until the union of
// trajectories covers every vertex, or maxRounds rounds elapse. Walker i is
// driven by the independent stream (seed, i), so the result is bit-for-bit
// reproducible and independent of Workers and BatchRounds.
func (e *Engine) KCover(starts []int32, seed uint64, maxRounds int64) CoverResult {
	res := e.mustRun(RunSpec{Starts: starts, Seed: seed, MaxRounds: maxRounds}, NewCoverObserver())
	return CoverResult{Steps: res.Rounds, Covered: res.Stopped}
}

// commonStarts places all k walkers at one vertex.
func commonStarts(start int32, k int) []int32 {
	starts := make([]int32, k)
	for i := range starts {
		starts[i] = start
	}
	return starts
}

// KCoverFrom is KCover with all k walkers started at one vertex — the
// paper's C^k(G, start) experiment.
func (e *Engine) KCoverFrom(start int32, k int, seed uint64, maxRounds int64) CoverResult {
	return e.KCover(commonStarts(start, k), seed, maxRounds)
}

// KCoverTarget runs the k-walk until target distinct vertices have been
// visited (target = n is full cover); it panics unless 1 <= target <= n.
func (e *Engine) KCoverTarget(starts []int32, target int, seed uint64, maxRounds int64) CoverResult {
	if target < 1 {
		panic(fmt.Sprintf("walk: cover target %d out of range [1,%d]", target, e.g.N()))
	}
	res := e.mustRun(RunSpec{Starts: starts, Seed: seed, MaxRounds: maxRounds}, NewCoverTargetObserver(target))
	return CoverResult{Steps: res.Rounds, Covered: res.Stopped}
}

// KFirstVisits runs the k-walk for at most horizon rounds and returns each
// vertex's first-visit round (-1 if unvisited; start vertices get 0). The
// run stops early once every vertex is visited.
func (e *Engine) KFirstVisits(starts []int32, seed uint64, horizon int64) []int64 {
	cov := NewFirstVisitObserver()
	e.mustRun(RunSpec{Starts: starts, Seed: seed, MaxRounds: horizon}, cov)
	return cov.FirstVisits()
}

// KHit runs the k-walk until some walker stands on a vertex with
// marked[v] == true, or maxRounds rounds elapse. A marked start vertex hits
// at round 0; ties within a round resolve to the lowest walker index.
// len(marked) must equal n.
func (e *Engine) KHit(starts []int32, marked []bool, seed uint64, maxRounds int64) HitResult {
	hit := NewHitObserver(marked)
	e.mustRun(RunSpec{Starts: starts, Seed: seed, MaxRounds: maxRounds}, hit)
	return hit.Result(maxRounds)
}

// KHitFrom is KHit with all k walkers started at one vertex — the k-token
// search-query shape.
func (e *Engine) KHitFrom(start int32, k int, marked []bool, seed uint64, maxRounds int64) HitResult {
	return e.KHit(commonStarts(start, k), marked, seed, maxRounds)
}

// KHitTargets runs the k-walk until every target vertex has been visited
// by some walker, or maxRounds rounds elapse, reporting each target's
// exact first-hit round from the single pass. A single-target run agrees
// with KHit exactly; per-target rounds agree with KFirstVisits exactly.
func (e *Engine) KHitTargets(starts, targets []int32, seed uint64, maxRounds int64) (MultiHitResult, error) {
	if len(targets) == 0 {
		return MultiHitResult{}, fmt.Errorf("walk: KHitTargets requires at least one target")
	}
	cov := NewTargetSetObserver(targets)
	res, err := e.Run(RunSpec{Starts: starts, Seed: seed, MaxRounds: maxRounds}, cov)
	if err != nil {
		return MultiHitResult{}, err
	}
	return MultiHitResult{Rounds: res.Rounds, FirstHit: cov.TargetHits(), AllHit: res.Stopped}, nil
}

// PartialCoverCurve runs the k-walk once and reports the exact round each
// cover fraction in fractions was reached (fraction α maps to the count
// target max(1, ⌊α·n⌋)). The run stops when the largest fraction is
// reached or maxRounds elapse; unreached fractions report -1. Each entry
// agrees exactly with a KCoverTarget run at the same count target.
func (e *Engine) PartialCoverCurve(starts []int32, fractions []float64, seed uint64, maxRounds int64) (PartialCoverResult, error) {
	if len(fractions) == 0 {
		return PartialCoverResult{}, fmt.Errorf("walk: PartialCoverCurve requires at least one fraction")
	}
	// The observer wants nondecreasing thresholds; sort through an index
	// permutation and report rounds in the caller's order.
	order := make([]int, len(fractions))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return fractions[order[a]] < fractions[order[b]] })
	sorted := make([]float64, len(fractions))
	for i, idx := range order {
		sorted[i] = fractions[idx]
	}
	cov := NewPartialCoverObserver(sorted)
	res, err := e.Run(RunSpec{Starts: starts, Seed: seed, MaxRounds: maxRounds}, cov)
	if err != nil {
		return PartialCoverResult{}, err
	}
	rounds := make([]int64, len(fractions))
	for i, idx := range order {
		rounds[idx] = cov.ThresholdRounds()[i]
	}
	return PartialCoverResult{Rounds: rounds, FinalRound: res.Rounds, Complete: res.Stopped}, nil
}

// KMeetingTime runs the k-walk until any two walkers occupy the same
// vertex at the end of a round (walkers sharing a start meet at round 0),
// or maxRounds rounds elapse. Collisions are resolved at the batch
// barrier, so the result is exact and independent of Workers/BatchRounds.
func (e *Engine) KMeetingTime(starts []int32, seed uint64, maxRounds int64) (MeetResult, error) {
	m := NewMeetingObserver()
	res, err := e.Run(RunSpec{Starts: starts, Seed: seed, MaxRounds: maxRounds}, m)
	if err != nil {
		return MeetResult{}, err
	}
	a, b := m.MeetPair()
	return MeetResult{Rounds: res.Rounds, WalkerA: a, WalkerB: b, Vertex: m.MeetVertex(), Met: res.Stopped}, nil
}

// KCoalescenceTime runs the k-walk until all walkers have merged into one
// meeting-equivalence class — walkers that have once shared a vertex are
// merged, modeling information fusing on contact — or maxRounds rounds
// elapse. The first meeting round of the same run is reported too; for
// k = 2 the two coincide.
func (e *Engine) KCoalescenceTime(starts []int32, seed uint64, maxRounds int64) (CoalesceResult, error) {
	c := NewCoalescenceObserver()
	res, err := e.Run(RunSpec{Starts: starts, Seed: seed, MaxRounds: maxRounds}, c)
	if err != nil {
		return CoalesceResult{}, err
	}
	return CoalesceResult{
		Rounds:       res.Rounds,
		FirstMeeting: c.MeetRound(),
		Groups:       c.Groups(),
		Coalesced:    res.Stopped,
	}, nil
}
