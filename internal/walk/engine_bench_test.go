package walk

import (
	"fmt"
	"testing"

	"manywalks/internal/graph"
	"manywalks/internal/rng"
)

// Engine-versus-legacy benchmarks on the paper's graph families. Each
// measures one full k=64 cover from the family's canonical start, the
// workload behind every C^k estimate. The legacy baseline is the original
// per-walker loop (KCoverFrom); the engine rows run the batched kernel.

type benchFamily struct {
	name  string
	build func() (*graph.Graph, int32)
}

func benchFamilies() []benchFamily {
	return []benchFamily{
		{"cycle1024", func() (*graph.Graph, int32) { return graph.Cycle(1024), 0 }},
		{"grid2d4096", func() (*graph.Graph, int32) { return graph.Torus2D(64), 0 }},
		{"expander576", func() (*graph.Graph, int32) { return graph.MargulisExpander(24), 0 }},
		{"expander4096", func() (*graph.Graph, int32) { return graph.MargulisExpander(64), 0 }},
		{"barbell513", func() (*graph.Graph, int32) { g, c := graph.Barbell(513); return g, c }},
	}
}

const benchK = 64

func BenchmarkKCoverLegacy(b *testing.B) {
	for _, fam := range benchFamilies() {
		b.Run(fam.name, func(b *testing.B) {
			g, start := fam.build()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res := KCoverFrom(g, start, benchK, rng.NewStream(42, uint64(i)), 1<<40)
				if !res.Covered {
					b.Fatal("not covered")
				}
			}
		})
	}
}

func BenchmarkKCoverEngine(b *testing.B) {
	for _, fam := range benchFamilies() {
		b.Run(fam.name, func(b *testing.B) {
			g, start := fam.build()
			eng := NewEngine(g, EngineOptions{})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res := eng.KCoverFrom(start, benchK, uint64(i), 1<<40)
				if !res.Covered {
					b.Fatal("not covered")
				}
			}
		})
	}
}

// BenchmarkKCoverEngineSeq pins the engine to one worker, isolating the
// kernel's sequential gain from goroutine parallelism.
func BenchmarkKCoverEngineSeq(b *testing.B) {
	for _, fam := range benchFamilies() {
		b.Run(fam.name, func(b *testing.B) {
			g, start := fam.build()
			eng := NewEngine(g, EngineOptions{Workers: 1})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res := eng.KCoverFrom(start, benchK, uint64(i), 1<<40)
				if !res.Covered {
					b.Fatal("not covered")
				}
			}
		})
	}
}

// estimatorWorkerGrid is the Workers sweep of the estimator benchmarks:
// the singleton baseline the PR-4/PR-5 snapshots pinned, and the multicore
// shard counts whose scaling the BENCH_PR6 rows record. Per-trial samples
// are identical at every point — Workers only shards the trial lanes.
var estimatorWorkerGrid = []int{1, 4, 8}

// BenchmarkEstimateKCoverTime measures the whole Monte Carlo estimator —
// the paper-facing workload behind every Table-1 number — at the pinned
// shape: the Table-1 expander (n=576), k=64 walkers, 256 trials. The w1
// row is the PR-4 acceptance baseline (>=2x trials/sec against
// sequential trials); the multicore rows track lane-shard scaling.
func BenchmarkEstimateKCoverTime(b *testing.B) {
	g := graph.MargulisExpander(24)
	const trials = 256
	for _, workers := range estimatorWorkerGrid {
		b.Run(fmt.Sprintf("w%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				est, err := EstimateKCoverTime(g, 0, benchK, MCOptions{
					Trials:   trials,
					Workers:  workers,
					Seed:     uint64(i),
					MaxSteps: 1 << 20,
				})
				if err != nil || est.Truncated != 0 {
					b.Fatalf("estimate failed: %v (truncated %d)", err, est.Truncated)
				}
			}
			b.ReportMetric(float64(trials)*float64(b.N)/b.Elapsed().Seconds(), "trials/sec")
		})
	}
}

// hitBenchSetup builds the marked-vertex search workload shared by the
// KHit benchmarks: 64 walkers at vertex 0 of the Table-1 expander hunting
// a sparse marked set.
func hitBenchSetup() (*graph.Graph, []int32, []bool) {
	g := graph.MargulisExpander(24)
	marked := make([]bool, g.N())
	for v := 50; v < g.N(); v += 97 {
		marked[v] = true
	}
	return g, make([]int32, benchK), marked
}

// BenchmarkKHitLegacy / BenchmarkKHitEngine give the hit path the same
// engine-vs-legacy performance coverage the cover path has had since PR 1:
// one full k=64 marked-vertex search per op.
func BenchmarkKHitLegacy(b *testing.B) {
	g, starts, marked := hitBenchSetup()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !KHitFromVertices(g, starts, marked, rng.NewStream(42, uint64(i)), 1<<20).Hit {
			b.Fatal("no hit")
		}
	}
}

func BenchmarkKHitEngine(b *testing.B) {
	g, starts, marked := hitBenchSetup()
	eng := NewEngine(g, EngineOptions{Workers: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !eng.KHit(starts, marked, uint64(i), 1<<20).Hit {
			b.Fatal("no hit")
		}
	}
}

// BenchmarkKCoverKernels tracks the per-kernel cost of the compiled step
// laws on the k=64 expander cover workload; the uniform row is the
// regression guard for the dispatch refactor (acceptance: within 10% of
// the pre-kernel engine).
func BenchmarkKCoverKernels(b *testing.B) {
	g := graph.Reweight(graph.MargulisExpander(24), func(u, v int32) float64 {
		return 1 + float64((u*7+v*13)%5)
	})
	for _, kern := range Kernels() {
		b.Run(kern.String(), func(b *testing.B) {
			eng := NewEngine(g, EngineOptions{Workers: 1, Kernel: kern})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res := eng.KCoverFrom(0, benchK, uint64(i), 1<<40)
				if !res.Covered {
					b.Fatal("not covered")
				}
			}
		})
	}
}

// BenchmarkKWalkThroughput measures raw stepping throughput with a fixed
// round budget on a graph too large to cover within it, so legacy and
// engine execute exactly the same number of walker-steps: 64 walkers x
// 2000 rounds on the n=16384 expander (128k steps per op).
func BenchmarkKWalkThroughput(b *testing.B) {
	g := graph.MargulisExpander(128)
	const rounds = 2000
	b.Run("legacy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if KCoverFrom(g, 0, benchK, rng.NewStream(42, uint64(i)), rounds).Covered {
				b.Fatal("unexpected cover; raise n")
			}
		}
	})
	b.Run("engine", func(b *testing.B) {
		eng := NewEngine(g, EngineOptions{Workers: 1})
		for i := 0; i < b.N; i++ {
			if eng.KCoverFrom(0, benchK, uint64(i), rounds).Covered {
				b.Fatal("unexpected cover; raise n")
			}
		}
	})
}

// BenchmarkEstimateCoverTimeK1 tracks the single-walker estimator shape
// (hitting-time-style lanes of one walker each), where trial fusion must
// not regress the short-lane bookkeeping and multicore sharding pays off
// most directly (64 fully independent one-walker lanes).
func BenchmarkEstimateCoverTimeK1(b *testing.B) {
	g := graph.MargulisExpander(24)
	const trials = 64
	for _, workers := range estimatorWorkerGrid {
		b.Run(fmt.Sprintf("w%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				est, err := EstimateCoverTime(g, 0, MCOptions{
					Trials:   trials,
					Workers:  workers,
					Seed:     uint64(i),
					MaxSteps: 1 << 24,
				})
				if err != nil || est.Truncated != 0 {
					b.Fatalf("estimate failed: %v (truncated %d)", err, est.Truncated)
				}
			}
			b.ReportMetric(float64(trials)*float64(b.N)/b.Elapsed().Seconds(), "trials/sec")
		})
	}
}

// BenchmarkEstimateHittingTime measures the hitting-time estimator — 256
// single-walker trials hunting one target on the Table-1 expander, the
// acceptance workload of the multicore sharding PR: trials/sec at w4 vs
// w1 is the scaling figure recorded in BENCH_PR6.json.
func BenchmarkEstimateHittingTime(b *testing.B) {
	g := graph.MargulisExpander(24)
	const trials = 256
	target := int32(g.N() / 2)
	for _, workers := range estimatorWorkerGrid {
		b.Run(fmt.Sprintf("w%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				est, err := EstimateHittingTime(g, 0, target, MCOptions{
					Trials:   trials,
					Workers:  workers,
					Seed:     uint64(i),
					MaxSteps: 1 << 20,
				})
				if err != nil || est.Truncated != 0 {
					b.Fatalf("estimate failed: %v (truncated %d)", err, est.Truncated)
				}
			}
			b.ReportMetric(float64(trials)*float64(b.N)/b.Elapsed().Seconds(), "trials/sec")
		})
	}
}
