package walk

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"manywalks/internal/graph"
)

// The long-range multi-hopper kernel (Estrada et al., "Random Multi-Hopper
// Model: Super-Fast Random Walks on Graphs", PAPERS.md): from vertex v the
// walker hops to ANY other vertex u reachable from v, with probability
// proportional to a decaying function of the hop distance d(v, u) ≥ 1,
//
//	power law:        P(v→u) ∝ d(v,u)^(−s)      (s ≥ 0)
//	exponential law:  P(v→u) ∝ exp(−λ·d(v,u))   (λ ≥ 0)
//
// Small decay parameters make the walk Lévy-flight-like: on large-diameter
// graphs (the cycle, the path) it covers orders of magnitude faster than
// the nearest-neighbor walk, which is why it is the cash-in family for the
// dense-support compile path — its rows reach far outside the CSR neighbor
// list, exactly what the closed enum could not express.
//
// The kernel is the first registered family with SupportDense: compilation
// runs one BFS per vertex (distances computed once per compile, never per
// step) and builds the accounted alias row-bank; stepping then costs the
// same one draw per round as the built-in alias kernels, so determinism
// across Workers × BatchRounds is inherited unchanged, and the serving
// stack routes it by its canonical spelling like any built-in.

// hopperLaw selects the hop-distance decay law.
type hopperLaw uint8

const (
	hopPower hopperLaw = iota
	hopExp
)

// hopperKernel is a comparable value (like every built-in), so parsed
// kernels support == and map keys.
type hopperKernel struct {
	law   hopperLaw
	param float64
}

// HopperPower returns the multi-hopper kernel with the power hop law
// P(v→u) ∝ d(v,u)^(−s); s = 0 is a uniform jump to any reachable vertex.
func HopperPower(s float64) Kernel { return hopperKernel{law: hopPower, param: s} }

// HopperExp returns the multi-hopper kernel with the exponential hop law
// P(v→u) ∝ exp(−λ·d(v,u)).
func HopperExp(lambda float64) Kernel { return hopperKernel{law: hopExp, param: lambda} }

func (k hopperKernel) Name() string     { return "hopper" }
func (k hopperKernel) Support() Support { return SupportDense }

// String renders the canonical spelling, parameter always included —
// "hopper:power" parses to the same kernel as "hopper:power:1" and both
// respell as the latter, which is what keeps engine-cache keys, coalescer
// buckets, and the walkd per-shape counters collision-free.
func (k hopperKernel) String() string {
	return fmt.Sprintf("hopper:%s:%g", k.lawName(), k.param)
}

func (k hopperKernel) lawName() string {
	if k.law == hopExp {
		return "exp"
	}
	return "power"
}

// Validate checks the decay parameter and the dense-table budget: the
// row-bank is Θ(n²), so oversized graphs are rejected here — before the
// serving layer hands the request to NewEngine, which panics by contract.
func (k hopperKernel) Validate(g *graph.Graph) error {
	if math.IsNaN(k.param) || math.IsInf(k.param, 0) || k.param < 0 {
		return fmt.Errorf("walk: hopper %s parameter %v must be finite and >= 0", k.lawName(), k.param)
	}
	return DenseTableFits(g)
}

// TransitionProbs computes the hop-law row of v from one BFS: every vertex
// at distance d ≥ 1 gets weight f(d), normalized over the reachable set.
// Rows are emitted in vertex-id order, so compilation is deterministic.
func (k hopperKernel) TransitionProbs(g *graph.Graph, v int32) ([]int32, []float64, error) {
	if err := k.Validate(g); err != nil {
		return nil, nil, err
	}
	if _, _, err := rowNeighbors(g, v); err != nil {
		return nil, nil, err
	}
	dist := g.BFS(v)
	// f(d) is shared by every vertex at hop distance d; memoize per row up
	// to the eccentricity so a row costs one pow/exp per distinct distance.
	maxD := int32(0)
	for _, d := range dist {
		if d > maxD {
			maxD = d
		}
	}
	fd := make([]float64, maxD+1)
	for d := int32(1); d <= maxD; d++ {
		switch k.law {
		case hopExp:
			fd[d] = math.Exp(-k.param * float64(d))
		default:
			fd[d] = math.Pow(float64(d), -k.param)
		}
	}
	out := make([]int32, 0, len(dist)-1)
	p := make([]float64, 0, len(dist)-1)
	total := 0.0
	for u, d := range dist {
		if d < 1 {
			continue // v itself, or unreachable from v
		}
		out = append(out, int32(u))
		p = append(p, fd[d])
		total += fd[d]
	}
	if total <= 0 {
		return nil, nil, fmt.Errorf("walk: hopper %s:%g has no positive hop mass from vertex %d", k.lawName(), k.param, v)
	}
	for i := range p {
		p[i] /= total
	}
	return out, p, nil
}

// registerHopperKernels adds the hopper family to the registry; called from
// the package init in kernelregistry.go so built-ins register first.
func registerHopperKernels() {
	RegisterKernel(KernelFamily{
		Name:    "hopper",
		Syntax:  "hopper:law[:param]",
		Doc:     "long-range multi-hopper over BFS distance: law power (P∝d^-s) or exp (P∝e^-λd), param defaults to 1",
		Example: HopperPower(1),
		Parse:   parseHopper,
	})
}

// parseHopper parses the text after "hopper:": a law name with an optional
// decay parameter, e.g. "power", "power:2", "exp:0.5".
func parseHopper(arg string, hasArg bool) (Kernel, error) {
	if !hasArg || arg == "" {
		return nil, fmt.Errorf("walk: hopper requires a hop law: hopper:power[:s] or hopper:exp[:λ]")
	}
	lawName, paramText, hasParam := strings.Cut(arg, ":")
	param := 1.0
	if hasParam {
		v, err := strconv.ParseFloat(paramText, 64)
		if err != nil {
			return nil, fmt.Errorf("walk: bad hopper parameter %q: %w", paramText, err)
		}
		param = v
	}
	if math.IsNaN(param) || math.IsInf(param, 0) || param < 0 {
		return nil, fmt.Errorf("walk: hopper parameter %v must be finite and >= 0", param)
	}
	switch lawName {
	case "power", "pow":
		return HopperPower(param), nil
	case "exp", "exponential":
		return HopperExp(param), nil
	}
	return nil, fmt.Errorf("walk: unknown hopper law %q (want power or exp)", lawName)
}
