package walk

import (
	"fmt"
	"runtime"
	"sync"

	"manywalks/internal/graph"
	"manywalks/internal/rng"
	"manywalks/internal/stats"
)

// MCOptions configures a Monte Carlo estimation run.
type MCOptions struct {
	Trials   int    // number of independent trials (required, > 0)
	Workers  int    // goroutines; 0 means GOMAXPROCS
	Seed     uint64 // root seed; trial i uses stream (Seed, i)
	MaxSteps int64  // per-trial step/round budget (required, > 0)
}

// normalized fills defaults and validates.
func (o MCOptions) normalized() (MCOptions, error) {
	if o.Trials <= 0 {
		return o, fmt.Errorf("walk: Trials must be > 0")
	}
	if o.MaxSteps <= 0 {
		return o, fmt.Errorf("walk: MaxSteps must be > 0")
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Workers > o.Trials {
		o.Workers = o.Trials
	}
	return o, nil
}

// MonteCarlo runs opts.Trials independent trials of fn in parallel and
// returns the per-trial results in trial order. fn receives the trial index
// and a private RNG stream derived deterministically from (Seed, index), so
// results are reproducible regardless of worker count or scheduling.
// Workers drain a shared channel of trial indices (a fixed-size pool in the
// Effective Go style); each result is written to a distinct slice slot, so
// no locking is needed.
func MonteCarlo(opts MCOptions, fn func(trial int, r *rng.Source) float64) ([]float64, error) {
	opts, err := opts.normalized()
	if err != nil {
		return nil, err
	}
	results := make([]float64, opts.Trials)
	trials := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range trials {
				results[t] = fn(t, rng.NewStream(opts.Seed, uint64(t)))
			}
		}()
	}
	for t := 0; t < opts.Trials; t++ {
		trials <- t
	}
	close(trials)
	wg.Wait()
	return results, nil
}

// checkStarts validates vertex ids against g up front, so estimators
// return a descriptive error instead of panicking inside a Monte Carlo
// worker goroutine (which would crash the process).
func checkStarts(g *graph.Graph, starts []int32) error {
	n := g.N()
	for i, s := range starts {
		if s < 0 || int(s) >= n {
			return fmt.Errorf("walk: vertex[%d] = %d out of range [0,%d)", i, s, n)
		}
	}
	return nil
}

// Estimate holds a Monte Carlo estimate with its uncertainty plus coverage
// accounting: Truncated counts trials that exhausted MaxSteps; their
// (censored) values are included in the summary, biasing it low, so any
// nonzero count must be treated as a soft failure by callers.
type Estimate struct {
	Summary   stats.Summary
	Truncated int
}

// Mean is shorthand for Summary.Mean.
func (e Estimate) Mean() float64 { return e.Summary.Mean }

// CI95 is shorthand for Summary.CI95().
func (e Estimate) CI95() float64 { return e.Summary.CI95() }

// EstimateCoverTime estimates the expected single-walk cover time from
// start. Trials run on the batched engine (k = 1), one sequential engine
// run per Monte Carlo worker.
func EstimateCoverTime(g *graph.Graph, start int32, opts MCOptions) (Estimate, error) {
	if !g.IsConnected() {
		return Estimate{}, fmt.Errorf("walk: cover time diverges on disconnected graphs")
	}
	if err := checkStarts(g, []int32{start}); err != nil {
		return Estimate{}, err
	}
	eng := NewEngine(g, EngineOptions{Workers: 1})
	var mu sync.Mutex
	truncated := 0
	samples, err := MonteCarlo(opts, func(_ int, r *rng.Source) float64 {
		res := eng.KCoverFrom(start, 1, r.Uint64(), opts.MaxSteps)
		if !res.Covered {
			mu.Lock()
			truncated++
			mu.Unlock()
		}
		return float64(res.Steps)
	})
	if err != nil {
		return Estimate{}, err
	}
	return Estimate{Summary: stats.Summarize(samples), Truncated: truncated}, nil
}

// EstimateKCoverTime estimates the expected k-walk cover time (in rounds)
// from a common start vertex.
func EstimateKCoverTime(g *graph.Graph, start int32, k int, opts MCOptions) (Estimate, error) {
	if k < 1 {
		return Estimate{}, fmt.Errorf("walk: k must be >= 1")
	}
	if !g.IsConnected() {
		return Estimate{}, fmt.Errorf("walk: cover time diverges on disconnected graphs")
	}
	if err := checkStarts(g, []int32{start}); err != nil {
		return Estimate{}, err
	}
	eng := NewEngine(g, EngineOptions{Workers: 1})
	var mu sync.Mutex
	truncated := 0
	samples, err := MonteCarlo(opts, func(_ int, r *rng.Source) float64 {
		res := eng.KCoverFrom(start, k, r.Uint64(), opts.MaxSteps)
		if !res.Covered {
			mu.Lock()
			truncated++
			mu.Unlock()
		}
		return float64(res.Steps)
	})
	if err != nil {
		return Estimate{}, err
	}
	return Estimate{Summary: stats.Summarize(samples), Truncated: truncated}, nil
}

// EstimateKCoverTimeStationary estimates the k-walk cover time with the k
// walkers started at fresh stationary samples each trial — the variant
// discussed in the paper's §1.1 comparison with Broder et al.
func EstimateKCoverTimeStationary(g *graph.Graph, k int, opts MCOptions) (Estimate, error) {
	if k < 1 {
		return Estimate{}, fmt.Errorf("walk: k must be >= 1")
	}
	if !g.IsConnected() {
		return Estimate{}, fmt.Errorf("walk: cover time diverges on disconnected graphs")
	}
	eng := NewEngine(g, EngineOptions{Workers: 1})
	var mu sync.Mutex
	truncated := 0
	samples, err := MonteCarlo(opts, func(_ int, r *rng.Source) float64 {
		starts := StationaryStarts(g, k, r)
		res := eng.KCover(starts, r.Uint64(), opts.MaxSteps)
		if !res.Covered {
			mu.Lock()
			truncated++
			mu.Unlock()
		}
		return float64(res.Steps)
	})
	if err != nil {
		return Estimate{}, err
	}
	return Estimate{Summary: stats.Summarize(samples), Truncated: truncated}, nil
}

// EstimateHittingTime estimates h(start, target) by simulation; it is used
// to cross-validate the exact fundamental-matrix solver on mid-size graphs.
func EstimateHittingTime(g *graph.Graph, start, target int32, opts MCOptions) (Estimate, error) {
	if !g.IsConnected() {
		return Estimate{}, fmt.Errorf("walk: hitting time diverges on disconnected graphs")
	}
	if err := checkStarts(g, []int32{start, target}); err != nil {
		return Estimate{}, err
	}
	eng := NewEngine(g, EngineOptions{Workers: 1})
	marked := make([]bool, g.N())
	marked[target] = true
	var mu sync.Mutex
	truncated := 0
	samples, err := MonteCarlo(opts, func(_ int, r *rng.Source) float64 {
		res := eng.KHit([]int32{start}, marked, r.Uint64(), opts.MaxSteps)
		if !res.Hit {
			mu.Lock()
			truncated++
			mu.Unlock()
		}
		return float64(res.Rounds)
	})
	if err != nil {
		return Estimate{}, err
	}
	return Estimate{Summary: stats.Summarize(samples), Truncated: truncated}, nil
}

// CoverTimeTail estimates Pr[τ > t] for the provided horizon t by running
// fresh trials; used by the Aldous-concentration experiment (Theorem 17).
func CoverTimeTail(g *graph.Graph, start int32, horizon int64, opts MCOptions) (float64, error) {
	if horizon <= 0 {
		return 0, fmt.Errorf("walk: horizon must be > 0")
	}
	if err := checkStarts(g, []int32{start}); err != nil {
		return 0, err
	}
	eng := NewEngine(g, EngineOptions{Workers: 1})
	samples, err := MonteCarlo(opts, func(_ int, r *rng.Source) float64 {
		res := eng.KCoverFrom(start, 1, r.Uint64(), horizon)
		if res.Covered {
			return 0
		}
		return 1
	})
	if err != nil {
		return 0, err
	}
	return stats.Summarize(samples).Mean, nil
}
