package walk

import (
	"fmt"
	"runtime"
	"sync"

	"manywalks/internal/graph"
	"manywalks/internal/rng"
	"manywalks/internal/stats"
)

// MCOptions configures a Monte Carlo estimation run.
type MCOptions struct {
	Trials   int    // number of independent trials (required, > 0)
	Workers  int    // goroutines; 0 means GOMAXPROCS
	Seed     uint64 // root seed; trial i uses stream (Seed, i)
	MaxSteps int64  // per-trial step/round budget (required, > 0)

	// Precision, when enabled (RTol > 0), switches the estimator to
	// adaptive sequential stopping: trials run in deterministic waves and
	// stop at the first wave boundary where the relative CI half-width
	// meets the tolerance, with Trials as the default budget cap. The
	// zero value keeps today's fixed-count behavior bit-for-bit.
	Precision Precision
	// OnWave, when non-nil, observes each adaptive wave's progress (on
	// the estimator's goroutine, between waves). Fixed-count runs never
	// call it.
	OnWave func(WaveStat)
}

// normalized fills defaults and validates.
func (o MCOptions) normalized() (MCOptions, error) {
	if o.Trials <= 0 {
		return o, fmt.Errorf("walk: Trials must be > 0")
	}
	if o.MaxSteps <= 0 {
		return o, fmt.Errorf("walk: MaxSteps must be > 0")
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Workers > o.Trials {
		o.Workers = o.Trials
	}
	return o, nil
}

// MonteCarlo runs opts.Trials independent trials of fn in parallel and
// returns the per-trial results in trial order. fn receives the trial index
// and a private RNG stream derived deterministically from (Seed, index), so
// results are reproducible regardless of worker count or scheduling.
// Workers drain a shared channel of trial indices (a fixed-size pool in the
// Effective Go style); each result is written to a distinct slice slot, so
// no locking is needed.
func MonteCarlo(opts MCOptions, fn func(trial int, r *rng.Source) float64) ([]float64, error) {
	return monteCarloFrom(opts, 0, fn)
}

// monteCarloFrom is MonteCarlo over trials [base, base+opts.Trials) of the
// global schedule: fn receives the global trial index and the stream
// rng.NewStream(Seed, globalTrial); results stay locally indexed. It is
// the sequential-path counterpart of GroupedRunSpec.TrialBase, used by the
// adaptive driver's over-budget fallback waves.
func monteCarloFrom(opts MCOptions, base int, fn func(trial int, r *rng.Source) float64) ([]float64, error) {
	opts, err := opts.normalized()
	if err != nil {
		return nil, err
	}
	results := make([]float64, opts.Trials)
	// The channel is buffered to Trials and filled (and closed) before any
	// worker starts: the producer never blocks, workers never wait on a
	// handoff, and tiny-trial runs skip the producer/consumer context
	// switches an unbuffered channel would cost per trial. Result ordering
	// and stream derivation are unchanged — trial t still runs on
	// rng.NewStream(Seed, t) and writes results[t-base].
	trials := make(chan int, opts.Trials)
	for t := 0; t < opts.Trials; t++ {
		trials <- base + t
	}
	close(trials)
	var wg sync.WaitGroup
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range trials {
				results[t-base] = fn(t, rng.NewStream(opts.Seed, uint64(t)))
			}
		}()
	}
	wg.Wait()
	return results, nil
}

// checkStarts validates vertex ids against g up front, so estimators
// return a descriptive error instead of panicking inside a Monte Carlo
// worker goroutine (which would crash the process).
func checkStarts(g *graph.Graph, starts []int32) error {
	n := g.N()
	for i, s := range starts {
		if s < 0 || int(s) >= n {
			return fmt.Errorf("walk: vertex[%d] = %d out of range [0,%d)", i, s, n)
		}
	}
	return nil
}

// Estimate holds a Monte Carlo estimate with its uncertainty plus coverage
// accounting: Truncated counts trials that exhausted MaxSteps; their
// (censored) values are included in the summary, biasing it low, so any
// nonzero count must be treated as a soft failure by callers. Waves and
// Converged report the adaptive run shape when Precision was enabled
// (Summary.N is then the trials actually run); fixed-count estimates leave
// them zero.
type Estimate struct {
	Summary   stats.Summary
	Truncated int
	Waves     int
	Converged bool
}

// Mean is shorthand for Summary.Mean.
func (e Estimate) Mean() float64 { return e.Summary.Mean }

// CI95 is shorthand for Summary.CI95().
func (e Estimate) CI95() float64 { return e.Summary.CI95() }

// runCoverTrials runs opts.Trials independent k-walk cover runs on eng —
// trial-fused through RunGrouped when the budget allows, else sequentially
// through MonteCarlo with the identical stream derivation — and returns
// every trial's (rounds, covered) outcome. target 0 selects full cover.
// The two paths are bit-for-bit interchangeable (pinned by
// TestFusedMatchesSequentialTrials). With Precision enabled the same
// trials run in adaptive waves instead (each wave a TrialBase-offset pass
// of the identical global schedule), so every trial that does run is
// bit-for-bit the fixed path's trial.
func runCoverTrials(eng *Engine, opts MCOptions, starts []int32, target int, place func(int, *rng.Source, []int32)) (GroupedResult, error) {
	run := func(base, count int) (GroupedResult, error) {
		if opts.MaxSteps <= MaxGroupedRounds {
			return eng.RunGrouped(GroupedRunSpec{
				Trials:    count,
				TrialBase: base,
				Starts:    starts,
				Place:     place,
				Seed:      opts.Seed,
				MaxRounds: opts.MaxSteps,
				Workers:   opts.Workers,
			}, NewGroupCoverObserver(target))
		}
		res := GroupedResult{Rounds: make([]int64, count), Stopped: make([]bool, count)}
		wopts := opts
		wopts.Trials = count
		_, err := monteCarloFrom(wopts, base, func(t int, r *rng.Source) float64 {
			st := starts
			if place != nil {
				st = make([]int32, len(starts))
				copy(st, starts)
				place(t, r, st)
			}
			var cr CoverResult
			if target == 0 {
				cr = eng.KCover(st, r.Uint64(), opts.MaxSteps)
			} else {
				cr = eng.KCoverTarget(st, target, r.Uint64(), opts.MaxSteps)
			}
			res.Rounds[t-base] = cr.Steps
			res.Stopped[t-base] = cr.Covered
			return 0
		})
		return res, err
	}
	if !opts.Precision.Enabled() {
		return run(0, opts.Trials)
	}
	return adaptiveTrials(opts, run)
}

// EstimateFromTrials summarizes per-trial rounds with truncation
// accounting: trials that exhausted the budget are censored at their
// recorded rounds (the budget) and counted, exactly like the sequential
// estimators. Adaptive wave accounting carries through.
func EstimateFromTrials(res GroupedResult) Estimate {
	samples := make([]float64, len(res.Rounds))
	truncated := 0
	for i, r := range res.Rounds {
		samples[i] = float64(r)
		if !res.Stopped[i] {
			truncated++
		}
	}
	return Estimate{
		Summary:   stats.Summarize(samples),
		Truncated: truncated,
		Waves:     res.Waves,
		Converged: res.Converged,
	}
}

// EstimateCoverTime estimates the expected single-walk cover time from
// start. Trials run as one trial-fused engine pass (RunGrouped) on the
// batched engine.
func EstimateCoverTime(g *graph.Graph, start int32, opts MCOptions) (Estimate, error) {
	return EstimateKCoverTime(g, start, 1, opts)
}

// EstimateKCoverTime estimates the expected k-walk cover time (in rounds)
// from a common start vertex. All trials run as one trial-fused engine
// pass: Trials x k walker lanes stepped together, each trial's sample
// bit-for-bit equal to a sequential Engine run with the MonteCarlo stream
// derivation.
func EstimateKCoverTime(g *graph.Graph, start int32, k int, opts MCOptions) (Estimate, error) {
	if k < 1 {
		return Estimate{}, fmt.Errorf("walk: k must be >= 1")
	}
	if !g.IsConnected() {
		return Estimate{}, fmt.Errorf("walk: cover time diverges on disconnected graphs")
	}
	if err := checkStarts(g, []int32{start}); err != nil {
		return Estimate{}, err
	}
	opts, err := opts.normalized()
	if err != nil {
		return Estimate{}, err
	}
	eng := NewEngine(g, EngineOptions{Workers: 1})
	res, err := runCoverTrials(eng, opts, commonStarts(start, k), 0, nil)
	if err != nil {
		return Estimate{}, err
	}
	return EstimateFromTrials(res), nil
}

// EstimateKCoverTimeStationary estimates the k-walk cover time with the k
// walkers started at fresh stationary samples each trial — the variant
// discussed in the paper's §1.1 comparison with Broder et al. The
// placement draws come off each trial's stream exactly as the sequential
// path drew them, so fusion changes no sample.
func EstimateKCoverTimeStationary(g *graph.Graph, k int, opts MCOptions) (Estimate, error) {
	if k < 1 {
		return Estimate{}, fmt.Errorf("walk: k must be >= 1")
	}
	if !g.IsConnected() {
		return Estimate{}, fmt.Errorf("walk: cover time diverges on disconnected graphs")
	}
	opts, err := opts.normalized()
	if err != nil {
		return Estimate{}, err
	}
	eng := NewEngine(g, EngineOptions{Workers: 1})
	res, err := runCoverTrials(eng, opts, make([]int32, k), 0,
		func(_ int, r *rng.Source, starts []int32) {
			copy(starts, StationaryStarts(g, k, r))
		})
	if err != nil {
		return Estimate{}, err
	}
	return EstimateFromTrials(res), nil
}

// EstimateHittingTime estimates h(start, target) by simulation; it is used
// to cross-validate the exact fundamental-matrix solver on mid-size
// graphs. Trials run as one trial-fused engine pass of single-walker
// lanes.
func EstimateHittingTime(g *graph.Graph, start, target int32, opts MCOptions) (Estimate, error) {
	if !g.IsConnected() {
		return Estimate{}, fmt.Errorf("walk: hitting time diverges on disconnected graphs")
	}
	if err := checkStarts(g, []int32{start, target}); err != nil {
		return Estimate{}, err
	}
	opts, err := opts.normalized()
	if err != nil {
		return Estimate{}, err
	}
	eng := NewEngine(g, EngineOptions{Workers: 1})
	marked := make([]bool, g.N())
	marked[target] = true
	res, err := runHitTrials(eng, opts, []int32{start}, marked)
	if err != nil {
		return Estimate{}, err
	}
	return EstimateFromTrials(res), nil
}

// runHitTrials is runCoverTrials' counterpart for marked-vertex searches.
func runHitTrials(eng *Engine, opts MCOptions, starts []int32, marked []bool) (GroupedResult, error) {
	run := func(base, count int) (GroupedResult, error) {
		if opts.MaxSteps <= MaxGroupedRounds {
			return eng.RunGrouped(GroupedRunSpec{
				Trials:    count,
				TrialBase: base,
				Starts:    starts,
				Seed:      opts.Seed,
				MaxRounds: opts.MaxSteps,
				Workers:   opts.Workers,
			}, NewGroupHitObserver(marked))
		}
		res := GroupedResult{Rounds: make([]int64, count), Stopped: make([]bool, count)}
		wopts := opts
		wopts.Trials = count
		_, err := monteCarloFrom(wopts, base, func(t int, r *rng.Source) float64 {
			hr := eng.KHit(starts, marked, r.Uint64(), opts.MaxSteps)
			res.Rounds[t-base] = hr.Rounds
			res.Stopped[t-base] = hr.Hit
			return 0
		})
		return res, err
	}
	if !opts.Precision.Enabled() {
		return run(0, opts.Trials)
	}
	return adaptiveTrials(opts, run)
}

// CoverTimeTail estimates Pr[τ > t] for the provided horizon t by running
// fresh trials — one trial-fused pass — as used by the
// Aldous-concentration experiment (Theorem 17).
func CoverTimeTail(g *graph.Graph, start int32, horizon int64, opts MCOptions) (float64, error) {
	if horizon <= 0 {
		return 0, fmt.Errorf("walk: horizon must be > 0")
	}
	if err := checkStarts(g, []int32{start}); err != nil {
		return 0, err
	}
	opts.MaxSteps = horizon
	opts, err := opts.normalized()
	if err != nil {
		return 0, err
	}
	eng := NewEngine(g, EngineOptions{Workers: 1})
	res, err := runCoverTrials(eng, opts, []int32{start}, 0, nil)
	if err != nil {
		return 0, err
	}
	samples := make([]float64, opts.Trials)
	for i, covered := range res.Stopped {
		if !covered {
			samples[i] = 1
		}
	}
	return stats.Summarize(samples).Mean, nil
}
