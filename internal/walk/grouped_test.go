package walk

import (
	"fmt"
	"testing"

	"manywalks/internal/graph"
	"manywalks/internal/rng"
)

// groupedTestFamilies returns the small graph set the equivalence tests
// sweep: a cycle (slow mixing), an expander (the Table-1 family), and a
// barbell (bottlenecked, high max degree).
func groupedTestFamilies() []struct {
	name  string
	build func() (*graph.Graph, int32)
} {
	return []struct {
		name  string
		build func() (*graph.Graph, int32)
	}{
		{"cycle64", func() (*graph.Graph, int32) { return graph.Cycle(64), 0 }},
		{"expander36", func() (*graph.Graph, int32) { return graph.MargulisExpander(6), 0 }},
		{"barbell33", func() (*graph.Graph, int32) { g, c := graph.Barbell(33); return g, c }},
	}
}

// TestFusedMatchesSequentialTrials is the determinism contract that makes
// the estimator rewire safe: for every kernel, graph family, and a
// Workers × BatchRounds grid, the per-trial samples of RunGrouped are
// bit-for-bit equal to running each trial sequentially through the
// engine with the MonteCarlo stream derivation.
func TestFusedMatchesSequentialTrials(t *testing.T) {
	const (
		trials = 24
		k      = 9 // >= minFusedLaneWalkers, so uniform kernels pin the fused pair-table path (with a sub-64 tail chunk)
		seed   = 99
		budget = int64(4000)
	)
	for _, fam := range groupedTestFamilies() {
		g, start := fam.build()
		for _, kern := range Kernels() {
			for _, workers := range []int{1, 3} {
				for _, batch := range []int{0, 5} {
					name := fmt.Sprintf("%s/%s/w%d/b%d", fam.name, kern, workers, batch)
					t.Run(name, func(t *testing.T) {
						eng := NewEngine(g, EngineOptions{Workers: 1, BatchRounds: batch, Kernel: kern})
						starts := commonStarts(start, k)
						// Sequential reference: one engine run per trial,
						// seeded the way MonteCarlo seeds its closures.
						wantRounds := make([]int64, trials)
						wantStopped := make([]bool, trials)
						for i := 0; i < trials; i++ {
							r := rng.NewStream(seed, uint64(i))
							res := eng.KCover(starts, r.Uint64(), budget)
							wantRounds[i], wantStopped[i] = res.Steps, res.Covered
						}
						got, err := eng.RunGrouped(GroupedRunSpec{
							Trials:    trials,
							Starts:    starts,
							Seed:      seed,
							MaxRounds: budget,
							Workers:   workers,
						}, NewGroupCoverObserver(0))
						if err != nil {
							t.Fatal(err)
						}
						for i := 0; i < trials; i++ {
							if got.Rounds[i] != wantRounds[i] || got.Stopped[i] != wantStopped[i] {
								t.Fatalf("trial %d: grouped (%d,%v) != sequential (%d,%v)",
									i, got.Rounds[i], got.Stopped[i], wantRounds[i], wantStopped[i])
							}
						}
					})
				}
			}
		}
	}
}

// TestGroupedGenericMatchesFused pins the two grouped step paths against
// each other: disabling the pair table must not change a single sample.
func TestGroupedGenericMatchesFused(t *testing.T) {
	const (
		trials = 32
		k      = 12 // wide enough for the fused path on every family
		budget = int64(4000)
	)
	for _, fam := range groupedTestFamilies() {
		t.Run(fam.name, func(t *testing.T) {
			g, start := fam.build()
			spec := GroupedRunSpec{
				Trials:    trials,
				Starts:    commonStarts(start, k),
				Seed:      7,
				MaxRounds: budget,
			}
			fusedEng := NewEngine(g, EngineOptions{Workers: 1})
			fusedEng.buildPairTable()
			if !fusedEng.pair.ok {
				t.Fatalf("pair table unexpectedly unavailable")
			}
			fused, err := fusedEng.RunGrouped(spec, NewGroupCoverObserver(0))
			if err != nil {
				t.Fatal(err)
			}
			genericEng := NewEngine(g, EngineOptions{Workers: 1})
			genericEng.pair.once.Do(func() {}) // leave pair.ok false: force the generic path
			generic, err := genericEng.RunGrouped(spec, NewGroupCoverObserver(0))
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < trials; i++ {
				if fused.Rounds[i] != generic.Rounds[i] || fused.Stopped[i] != generic.Stopped[i] {
					t.Fatalf("trial %d: fused (%d,%v) != generic (%d,%v)",
						i, fused.Rounds[i], fused.Stopped[i], generic.Rounds[i], generic.Stopped[i])
				}
			}
		})
	}
}

// TestGroupedHitMatchesSequential pins the grouped hit lanes against
// sequential KHit runs, including hit vertex and walker tie-breaks.
func TestGroupedHitMatchesSequential(t *testing.T) {
	const (
		trials = 32
		k      = 3
		budget = int64(1 << 14)
	)
	for _, fam := range groupedTestFamilies() {
		t.Run(fam.name, func(t *testing.T) {
			g, start := fam.build()
			marked := make([]bool, g.N())
			for v := 3; v < g.N(); v += 7 {
				marked[v] = true
			}
			eng := NewEngine(g, EngineOptions{Workers: 1})
			starts := commonStarts(start, k)
			hit := NewGroupHitObserver(marked)
			got, err := eng.RunGrouped(GroupedRunSpec{
				Trials:    trials,
				Starts:    starts,
				Seed:      5,
				MaxRounds: budget,
				Workers:   2,
			}, hit)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < trials; i++ {
				r := rng.NewStream(5, uint64(i))
				want := eng.KHit(starts, marked, r.Uint64(), budget)
				gotRes := hit.TrialResult(i, got.Rounds[i])
				if gotRes != want {
					t.Fatalf("trial %d: grouped %+v != sequential %+v", i, gotRes, want)
				}
			}
		})
	}
}

// TestGroupedCollisionMatchesSequential pins grouped meeting and
// coalescence lanes against the sequential collision observer.
func TestGroupedCollisionMatchesSequential(t *testing.T) {
	const (
		trials = 24
		budget = int64(1 << 14)
	)
	for _, fam := range groupedTestFamilies() {
		g, _ := fam.build()
		n := g.N()
		starts := []int32{0, int32(n / 3), int32(2 * n / 3), int32(n - 1)}
		for _, coalesce := range []bool{false, true} {
			t.Run(fmt.Sprintf("%s/coalesce=%v", fam.name, coalesce), func(t *testing.T) {
				eng := NewEngine(g, EngineOptions{Workers: 1})
				col := NewGroupCollisionObserver(coalesce)
				got, err := eng.RunGrouped(GroupedRunSpec{
					Trials:    trials,
					Starts:    starts,
					Seed:      11,
					MaxRounds: budget,
					Workers:   3,
				}, col)
				if err != nil {
					t.Fatal(err)
				}
				for i := 0; i < trials; i++ {
					r := rng.NewStream(11, uint64(i))
					if coalesce {
						want, err := eng.KCoalescenceTime(starts, r.Uint64(), budget)
						if err != nil {
							t.Fatal(err)
						}
						if got.Rounds[i] != want.Rounds || got.Stopped[i] != want.Coalesced ||
							col.TrialMeetRound(i) != want.FirstMeeting || col.TrialGroups(i) != want.Groups {
							t.Fatalf("trial %d: grouped (%d,%v,meet %d,groups %d) != sequential %+v",
								i, got.Rounds[i], got.Stopped[i], col.TrialMeetRound(i), col.TrialGroups(i), want)
						}
					} else {
						want, err := eng.KMeetingTime(starts, r.Uint64(), budget)
						if err != nil {
							t.Fatal(err)
						}
						if got.Rounds[i] != want.Rounds || got.Stopped[i] != want.Met {
							t.Fatalf("trial %d: grouped (%d,%v) != sequential %+v",
								i, got.Rounds[i], got.Stopped[i], want)
						}
					}
				}
			})
		}
	}
}

// TestGroupedPlaceMatchesSequential pins the Place derivation (the
// stationary-starts estimator shape): placement draws and the engine seed
// must come off the trial stream exactly as the sequential closure draws
// them.
func TestGroupedPlaceMatchesSequential(t *testing.T) {
	g := graph.MargulisExpander(6)
	const (
		trials = 16
		k      = 4
		budget = int64(4000)
	)
	eng := NewEngine(g, EngineOptions{Workers: 1})
	cov := NewGroupCoverObserver(0)
	got, err := eng.RunGrouped(GroupedRunSpec{
		Trials: trials,
		Starts: make([]int32, k),
		Place: func(_ int, r *rng.Source, starts []int32) {
			copy(starts, StationaryStarts(g, k, r))
		},
		Seed:      21,
		MaxRounds: budget,
	}, cov)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < trials; i++ {
		r := rng.NewStream(21, uint64(i))
		starts := StationaryStarts(g, k, r)
		want := eng.KCover(starts, r.Uint64(), budget)
		if got.Rounds[i] != want.Steps || got.Stopped[i] != want.Covered {
			t.Fatalf("trial %d: grouped (%d,%v) != sequential (%d,%v)",
				i, got.Rounds[i], got.Stopped[i], want.Steps, want.Covered)
		}
	}
}

// TestGroupedFirstVisitsMatchSequential pins the RecordFirst export (the
// coverage-profile sampler) against KFirstVisits.
func TestGroupedFirstVisitsMatchSequential(t *testing.T) {
	g, start := graph.Cycle(48), int32(5)
	const (
		trials  = 12
		k       = 3
		horizon = int64(600)
	)
	eng := NewEngine(g, EngineOptions{Workers: 1})
	starts := commonStarts(start, k)
	cov := &GroupCoverObserver{RecordFirst: true}
	_, err := eng.RunGrouped(GroupedRunSpec{
		Trials:    trials,
		Starts:    starts,
		Seed:      3,
		MaxRounds: horizon,
	}, cov)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < trials; i++ {
		r := rng.NewStream(3, uint64(i))
		want := eng.KFirstVisits(starts, r.Uint64(), horizon)
		got := cov.TrialFirstVisits(i)
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("trial %d vertex %d: first visit %d != %d", i, v, got[v], want[v])
			}
		}
	}
}

// TestGroupedTruncationMatchesSequential pins truncation accounting on the
// fused path: under a budget too small to cover, every kernel must
// produce the same censored values and truncation pattern as the
// sequential path (the satellite case: a small-budget cycle).
func TestGroupedTruncationMatchesSequential(t *testing.T) {
	g := graph.Cycle(96)
	const (
		trials = 24
		k      = 2
		budget = int64(40) // below even the no-backtrack n/2 sweep: trials truncate
	)
	for _, kern := range Kernels() {
		t.Run(kern.String(), func(t *testing.T) {
			eng := NewEngine(g, EngineOptions{Workers: 1, Kernel: kern})
			starts := commonStarts(0, k)
			got, err := eng.RunGrouped(GroupedRunSpec{
				Trials:    trials,
				Starts:    starts,
				Seed:      17,
				MaxRounds: budget,
			}, NewGroupCoverObserver(0))
			if err != nil {
				t.Fatal(err)
			}
			truncated := 0
			for i := 0; i < trials; i++ {
				r := rng.NewStream(17, uint64(i))
				want := eng.KCover(starts, r.Uint64(), budget)
				if got.Rounds[i] != want.Steps || got.Stopped[i] != want.Covered {
					t.Fatalf("trial %d: grouped (%d,%v) != sequential (%d,%v)",
						i, got.Rounds[i], got.Stopped[i], want.Steps, want.Covered)
				}
				if !got.Stopped[i] {
					truncated++
					if got.Rounds[i] != budget {
						t.Fatalf("trial %d: truncated at %d, want censoring at %d", i, got.Rounds[i], budget)
					}
				}
			}
			if truncated == 0 {
				t.Fatalf("budget %d unexpectedly covered all trials; test needs a tighter budget", budget)
			}
		})
	}
}

// TestGroupedChunking pins that chunked execution (more trials than
// concurrent lanes) yields the same samples as one big pass.
func TestGroupedChunking(t *testing.T) {
	g := graph.MargulisExpander(6)
	const budget = int64(4000)
	// k large enough that maxGroupWalkers forces multiple chunks at 96
	// trials: 96 lanes x 200 walkers = 19200 > 16384.
	const k, trials = 200, 96
	eng := NewEngine(g, EngineOptions{Workers: 1})
	starts := commonStarts(0, k)
	got, err := eng.RunGrouped(GroupedRunSpec{
		Trials:    trials,
		Starts:    starts,
		Seed:      31,
		MaxRounds: budget,
	}, NewGroupCoverObserver(0))
	if err != nil {
		t.Fatal(err)
	}
	if lanes := groupChunkLanes(trials, k, g.N()); lanes >= trials {
		t.Fatalf("test shape no longer chunks: %d lanes for %d trials", lanes, trials)
	}
	for i := 0; i < trials; i++ {
		r := rng.NewStream(31, uint64(i))
		want := eng.KCover(starts, r.Uint64(), budget)
		if got.Rounds[i] != want.Steps || got.Stopped[i] != want.Covered {
			t.Fatalf("trial %d: grouped (%d,%v) != sequential (%d,%v)",
				i, got.Rounds[i], got.Stopped[i], want.Steps, want.Covered)
		}
	}
}

// TestGroupedValidation pins the descriptive errors of the grouped spec.
func TestGroupedValidation(t *testing.T) {
	g := graph.Cycle(16)
	eng := NewEngine(g, EngineOptions{Workers: 1})
	cov := NewGroupCoverObserver(0)
	cases := []struct {
		name string
		spec GroupedRunSpec
	}{
		{"no trials", GroupedRunSpec{Starts: []int32{0}, MaxRounds: 10}},
		{"no walkers", GroupedRunSpec{Trials: 1, MaxRounds: 10}},
		{"no budget", GroupedRunSpec{Trials: 1, Starts: []int32{0}}},
		{"budget too large", GroupedRunSpec{Trials: 1, Starts: []int32{0}, MaxRounds: MaxGroupedRounds + 1}},
		{"bad start", GroupedRunSpec{Trials: 1, Starts: []int32{99}, MaxRounds: 10}},
		{"seeds length", GroupedRunSpec{Trials: 2, Starts: []int32{0}, MaxRounds: 10, Seeds: []uint64{1}}},
		{"seeds and place", GroupedRunSpec{Trials: 1, Starts: []int32{0}, MaxRounds: 10,
			Seeds: []uint64{1}, Place: func(int, *rng.Source, []int32) {}}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := eng.RunGrouped(c.spec, cov); err == nil {
				t.Fatalf("expected error for %s", c.name)
			}
		})
	}
	if _, err := eng.RunGrouped(GroupedRunSpec{Trials: 1, Starts: []int32{0}, MaxRounds: 10}); err == nil {
		t.Fatal("expected error for empty observer set")
	}
}

// TestGroupedPartialTargetExportExact pins finishLane's exact-at-stop
// export: with a partial count target, the fused path's one-pass overshoot
// must not leak into TrialCount or TrialFirstVisits — both paths and the
// sequential engine must agree on the state at the stop round.
func TestGroupedPartialTargetExportExact(t *testing.T) {
	g := graph.MargulisExpander(6)
	const (
		trials = 16
		k      = 12 // fused path
		budget = int64(4000)
	)
	target := g.N() / 2
	spec := GroupedRunSpec{
		Trials:    trials,
		Starts:    commonStarts(0, k),
		Seed:      13,
		MaxRounds: budget,
	}
	fusedEng := NewEngine(g, EngineOptions{Workers: 1})
	fcov := &GroupCoverObserver{Target: target, RecordFirst: true}
	fres, err := fusedEng.RunGrouped(spec, fcov)
	if err != nil {
		t.Fatal(err)
	}
	genericEng := NewEngine(g, EngineOptions{Workers: 1})
	genericEng.pair.once.Do(func() {}) // force the generic path
	gcov := &GroupCoverObserver{Target: target, RecordFirst: true}
	gres, err := genericEng.RunGrouped(spec, gcov)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < trials; i++ {
		r := rng.NewStream(13, uint64(i))
		want := fusedEng.KCoverTarget(spec.Starts, target, r.Uint64(), budget)
		if fres.Rounds[i] != want.Steps || fres.Stopped[i] != want.Covered {
			t.Fatalf("trial %d: fused (%d,%v) != sequential (%d,%v)",
				i, fres.Rounds[i], fres.Stopped[i], want.Steps, want.Covered)
		}
		if fres.Rounds[i] != gres.Rounds[i] || fcov.TrialCount(i) != gcov.TrialCount(i) {
			t.Fatalf("trial %d: fused count %d@%d != generic %d@%d",
				i, fcov.TrialCount(i), fres.Rounds[i], gcov.TrialCount(i), gres.Rounds[i])
		}
		ff, gf := fcov.TrialFirstVisits(i), gcov.TrialFirstVisits(i)
		for v := range ff {
			if ff[v] != gf[v] {
				t.Fatalf("trial %d vertex %d: fused first %d != generic %d", i, v, ff[v], gf[v])
			}
			if ff[v] > fres.Rounds[i] {
				t.Fatalf("trial %d vertex %d: first visit %d past stop round %d", i, v, ff[v], fres.Rounds[i])
			}
		}
	}
}

// TestGroupedRoundsBoundary pins the MaxGroupedRounds edge exactly: a
// budget of MaxGroupedRounds (2^31-1, the last uint32-representable round
// under the ^0 sentinel) is accepted by RunGrouped, while 2^31 is rejected
// and must be served by the sequential fallback. The estimator gates are
// checked on both sides: at the cap the grouped path runs, one past it the
// sequential MonteCarlo path runs, and because these trials finish far
// below either budget the two must produce identical estimates.
func TestGroupedRoundsBoundary(t *testing.T) {
	g := graph.Complete(12, false)
	eng := NewEngine(g, EngineOptions{Workers: 1})
	cov := NewGroupCoverObserver(0)
	spec := GroupedRunSpec{Trials: 2, Starts: []int32{0, 0}, Seed: 5, MaxRounds: MaxGroupedRounds}
	if _, err := eng.RunGrouped(spec, cov); err != nil {
		t.Fatalf("budget at MaxGroupedRounds rejected: %v", err)
	}
	spec.MaxRounds = MaxGroupedRounds + 1 // == 1<<31
	if _, err := eng.RunGrouped(spec, NewGroupCoverObserver(0)); err == nil {
		t.Fatal("budget of 1<<31 accepted by the grouped driver")
	}
	if MaxGroupedRounds+1 != int64(1)<<31 {
		t.Fatalf("MaxGroupedRounds = %d; want 1<<31 - 1", MaxGroupedRounds)
	}

	at := MCOptions{Trials: 6, Workers: 1, Seed: 9, MaxSteps: MaxGroupedRounds}
	past := at
	past.MaxSteps = MaxGroupedRounds + 1
	estAt, err := EstimateKCoverTime(g, 0, 2, at)
	if err != nil {
		t.Fatal(err)
	}
	estPast, err := EstimateKCoverTime(g, 0, 2, past)
	if err != nil {
		t.Fatalf("estimator with budget 1<<31 must fall back to the sequential path, got %v", err)
	}
	if estAt != estPast {
		t.Fatalf("cover estimate differs across the boundary: grouped %+v, sequential %+v", estAt, estPast)
	}
	hitAt, err := EstimateHittingTime(g, 0, 6, at)
	if err != nil {
		t.Fatal(err)
	}
	hitPast, err := EstimateHittingTime(g, 0, 6, past)
	if err != nil {
		t.Fatal(err)
	}
	if hitAt != hitPast {
		t.Fatalf("hitting estimate differs across the boundary: grouped %+v, sequential %+v", hitAt, hitPast)
	}
	meetAt, err := EstimateKMeetingTime(g, []int32{0, 6}, at)
	if err != nil {
		t.Fatal(err)
	}
	meetPast, err := EstimateKMeetingTime(g, []int32{0, 6}, past)
	if err != nil {
		t.Fatal(err)
	}
	if meetAt != meetPast {
		t.Fatalf("meeting estimate differs across the boundary: grouped %+v, sequential %+v", meetAt, meetPast)
	}
}

// TestGroupedStartsForSeeds pins the externally-coalesced shape: explicit
// per-lane engine seeds (Seeds) combined with per-lane placements
// (StartsFor) must reproduce each lane's standalone Engine.Run bit for bit
// — the contract the serving coalescer is built on. Checked for hit lanes
// (mixed origins sharing one pass) and cover lanes, on fused and generic
// paths.
func TestGroupedStartsForSeeds(t *testing.T) {
	g := graph.MargulisExpander(6)
	eng := NewEngine(g, EngineOptions{Workers: 1})
	n := g.N()
	const trials = 12
	const budget = int64(1 << 14)

	marked := make([]bool, n)
	marked[n-1] = true
	marked[n/3] = true
	k := 3
	seeds := make([]uint64, trials)
	origins := make([]int32, trials)
	for i := range seeds {
		seeds[i] = uint64(1000 + i*i)
		origins[i] = int32((i * 5) % (n / 2))
	}
	hit := NewGroupHitObserver(marked)
	res, err := eng.RunGrouped(GroupedRunSpec{
		Trials: trials,
		Starts: make([]int32, k),
		StartsFor: func(trial int, dst []int32) {
			for j := range dst {
				dst[j] = origins[trial]
			}
		},
		Seeds:     seeds,
		MaxRounds: budget,
	}, hit)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < trials; i++ {
		want := eng.KHit(commonStarts(origins[i], k), marked, seeds[i], budget)
		if res.Rounds[i] != want.Rounds || res.Stopped[i] != want.Hit {
			t.Fatalf("hit lane %d (origin %d): grouped (%d,%v) != standalone (%d,%v)",
				i, origins[i], res.Rounds[i], res.Stopped[i], want.Rounds, want.Hit)
		}
	}

	kc := 12 // wide enough for the fused cover path
	cres, err := eng.RunGrouped(GroupedRunSpec{
		Trials: trials,
		Starts: make([]int32, kc),
		StartsFor: func(trial int, dst []int32) {
			for j := range dst {
				dst[j] = origins[trial]
			}
		},
		Seeds:     seeds,
		MaxRounds: budget,
	}, NewGroupCoverObserver(0))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < trials; i++ {
		want := eng.KCover(commonStarts(origins[i], kc), seeds[i], budget)
		if cres.Rounds[i] != want.Steps || cres.Stopped[i] != want.Covered {
			t.Fatalf("cover lane %d: grouped (%d,%v) != standalone (%d,%v)",
				i, cres.Rounds[i], cres.Stopped[i], want.Steps, want.Covered)
		}
	}

	// Misuse and out-of-range placements are descriptive errors.
	if _, err := eng.RunGrouped(GroupedRunSpec{
		Trials: 1, Starts: []int32{0}, MaxRounds: 8,
		StartsFor: func(int, []int32) {},
		Place:     func(int, *rng.Source, []int32) {},
	}, NewGroupCoverObserver(0)); err == nil {
		t.Fatal("StartsFor and Place accepted together")
	}
	if _, err := eng.RunGrouped(GroupedRunSpec{
		Trials: 1, Starts: []int32{0}, MaxRounds: 8,
		StartsFor: func(_ int, dst []int32) { dst[0] = int32(n) },
	}, NewGroupCoverObserver(0)); err == nil {
		t.Fatal("out-of-range StartsFor placement accepted")
	}
}
