package walk

import (
	"fmt"
	"os"
	"slices"
	"strconv"
	"testing"

	"manywalks/internal/graph"
)

// testWorkerGrid returns the worker counts the multicore determinism
// suites sweep. MANYWALKS_TEST_WORKERS appends an extra count (the CI
// -race job sets it above GOMAXPROCS so shard merges actually interleave
// under the race detector).
func testWorkerGrid() []int {
	ws := []int{1, 2, 3, 4}
	if v := os.Getenv("MANYWALKS_TEST_WORKERS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 && !slices.Contains(ws, n) {
			ws = append(ws, n)
		}
	}
	return ws
}

// groupedOutcome flattens everything a grouped run exposes — per-trial
// rounds and stop flags plus every observer output — so runs compare with
// one slices.Equal.
type groupedOutcome struct {
	rounds  []int64
	stopped []bool
	extra   []int64
}

func (o groupedOutcome) equal(p groupedOutcome) bool {
	return slices.Equal(o.rounds, p.rounds) &&
		slices.Equal(o.stopped, p.stopped) &&
		slices.Equal(o.extra, p.extra)
}

// TestGroupedDeterministicAcrossWorkers is the multicore replay grid: for
// every kernel, graph family, observer kind, worker count, and batch
// size, the grouped pass must be bit-for-bit equal to the Workers=1 run —
// rounds, stop flags, cover counts, exact first-visit rounds, hit
// vertex/walker tie-breaks, meeting and coalescence rounds, and class
// counts. Lane ownership, not execution order, determines every draw;
// this grid is what makes that claim enforceable. It mirrors
// TestEngineDeterministicAcrossConfigs one layer up.
func TestGroupedDeterministicAcrossWorkers(t *testing.T) {
	const (
		trials = 18
		k      = 9 // >= minFusedLaneWalkers: uniform cover runs the fused path
		seed   = 4242
		budget = int64(1 << 13)
	)
	observers := []string{"cover", "hit", "meet"}

	runOne := func(t *testing.T, g *graph.Graph, kern Kernel, batch, workers int,
		obsKind string, starts []int32, marked []bool) groupedOutcome {
		t.Helper()
		eng := NewEngine(g, EngineOptions{Workers: 1, BatchRounds: batch, Kernel: kern})
		spec := GroupedRunSpec{
			Trials:    trials,
			Starts:    starts,
			Seed:      seed,
			MaxRounds: budget,
			Workers:   workers,
		}
		var out groupedOutcome
		var res GroupedResult
		var err error
		switch obsKind {
		case "cover":
			cov := NewGroupCoverObserver(0)
			cov.RecordFirst = true
			res, err = eng.RunGrouped(spec, cov)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < trials; i++ {
				out.extra = append(out.extra, int64(cov.TrialCount(i)))
				out.extra = append(out.extra, cov.TrialFirstVisits(i)...)
			}
		case "hit":
			hit := NewGroupHitObserver(marked)
			res, err = eng.RunGrouped(spec, hit)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < trials; i++ {
				hr := hit.TrialResult(i, res.Rounds[i])
				out.extra = append(out.extra, int64(hr.Vertex), int64(hr.Walker))
			}
		case "meet":
			col := NewGroupCollisionObserver(false)
			res, err = eng.RunGrouped(spec, col)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < trials; i++ {
				out.extra = append(out.extra,
					col.TrialMeetRound(i), col.TrialCoalescenceRound(i), int64(col.TrialGroups(i)))
			}
		}
		out.rounds, out.stopped = res.Rounds, res.Stopped
		return out
	}

	for _, fam := range groupedTestFamilies() {
		g, start := fam.build()
		n := g.N()
		// Distinct per-walker starts exercise placement-sensitive state
		// (round-0 cover counts, hit tie-breaks, early meetings).
		starts := make([]int32, k)
		for i := range starts {
			starts[i] = (start + int32(i*5)) % int32(n)
		}
		marked := make([]bool, n)
		for v := 3; v < n; v += 7 {
			marked[v] = true
		}
		for _, kern := range Kernels() {
			for _, obsKind := range observers {
				want := runOne(t, g, kern, 0, 1, obsKind, starts, marked)
				for _, workers := range testWorkerGrid() {
					for _, batch := range []int{0, 5} {
						if workers == 1 && batch == 0 {
							continue // the baseline itself
						}
						name := fmt.Sprintf("%s/%s/%s/w%d/b%d", fam.name, kern, obsKind, workers, batch)
						t.Run(name, func(t *testing.T) {
							got := runOne(t, g, kern, batch, workers, obsKind, starts, marked)
							if !got.equal(want) {
								t.Fatalf("outcome diverged from Workers=1 baseline:\n got %+v\nwant %+v", got, want)
							}
						})
					}
				}
			}
		}
	}
}
