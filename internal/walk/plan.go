package walk

import (
	"math/bits"

	"manywalks/internal/graph"
)

// PadTablePlan reports whether NewEngine would build the padded sampling
// table for a graph — the single-load uniform sampler — and how big it
// would be. The table applies only to the Uniform and Lazy kernels; other
// kernels always step through the CSR arrays.
type PadTablePlan struct {
	// Entries is n << Shift, the table's slot count if built.
	Entries int64
	// Limit is the engine's size cap (maxPadEntries); a plan applies
	// only when Entries <= Limit.
	Limit int64
	// Shift is the per-vertex stride exponent: each vertex gets
	// 1 << Shift slots, enough to hold its degree rounded up to a
	// power of two.
	Shift uint32
	// Applies reports whether NewEngine builds the table.
	Applies bool
}

// PlanPadTable computes the pad-table decision NewEngine would make for g,
// without building an engine. Callers (graphinfo) use it to report which
// stepping mode a graph gets before committing to a run.
func PlanPadTable(g *graph.Graph) PadTablePlan {
	_, maxDeg := g.DegreeStats()
	shift := uint32(bits.Len(uint(maxDeg - 1)))
	if shift == 0 {
		shift = 1
	}
	entries := int64(g.N()) << shift
	return PadTablePlan{
		Entries: entries,
		Limit:   maxPadEntries,
		Shift:   shift,
		Applies: entries <= maxPadEntries,
	}
}
