package walk

// Step kernels for the non-uniform walk laws. Like the uniform kernels in
// engine.go, each advances one round for walkers [lo,hi) with the xoshiro
// state carried in registers, and each writes only pos/prev/streams.
//
// Draw discipline (pinned bit-for-bit by TestEngineKernelMatchesReplay):
// non-uniform kernels use draw group 1 — no reservoir banking, every round
// starts from fresh entropy — so results cannot depend on Workers or
// BatchRounds regardless of how batches partition the rounds.
//
//	Lazy(α)            draw x; stay iff x < stayThresh (α quantized to a
//	                   multiple of 2^-64). A moving step then samples a
//	                   uniform neighbor from fresh draws: padded mode takes
//	                   the low padShift bits of fresh Uint64s until the
//	                   slot is not a padding sentinel; CSR mode Lemire-
//	                   reduces the low 32 bits of fresh Uint64s until
//	                   accepted.
//	Alias kernels      one draw x per step: the low 32 bits Lemire-reduce
//	(Weighted,         to an alias column (rejection redraws the whole x),
//	Metropolis, and    the high 32 bits pick the column's primary outcome
//	every registry     iff high32 < thresh, else the alias outcome. Any
//	kernel, e.g. the   kernel compiled to progAlias inherits this
//	hoppers)           discipline, so new families are deterministic by
//	                   construction.
//	NoBacktrack        degree-1 vertices move to their only neighbor with
//	                   no draw. Otherwise one draw x: the low 32 bits
//	                   Lemire-reduce to [0, d) on the first step (prev
//	                   unset) or [0, d-1) afterwards (redraws take fresh
//	                   x); in the latter case, landing on prev's slot
//	                   swaps in the last neighbor, i.e. the classic
//	                   "sample d-1 slots, patch the collision" scheme the
//	                   legacy NBWalker uses.

// stepRoundLazyPad advances one lazy round in padded mode.
func (e *Engine) stepRoundLazyPad(st *runState, lo, hi int) {
	pad, shift := e.pad, e.padShift
	mask := uint64(1)<<shift - 1
	stay := e.prog.stayThresh
	pos := st.pos[lo:hi]
	streams := st.streams[lo:hi]
	for ii := range pos {
		s0, s1, s2, s3 := streams[ii].State()
		var x uint64
		x, s0, s1, s2, s3 = xoshiroNext(s0, s1, s2, s3)
		if x >= stay {
			p := pos[ii]
			np := padSentinel
			for np == padSentinel {
				x, s0, s1, s2, s3 = xoshiroNext(s0, s1, s2, s3)
				np = pad[uint64(uint32(p))<<shift|x&mask]
			}
			pos[ii] = np
		}
		streams[ii].SetState(s0, s1, s2, s3)
	}
}

// stepRoundLazyCSR advances one lazy round in CSR mode.
func (e *Engine) stepRoundLazyCSR(st *runState, lo, hi int) {
	vtx, adj := e.vtx, e.adj
	stay := e.prog.stayThresh
	pos := st.pos[lo:hi]
	streams := st.streams[lo:hi]
	for ii := range pos {
		s0, s1, s2, s3 := streams[ii].State()
		var x uint64
		x, s0, s1, s2, s3 = xoshiroNext(s0, s1, s2, s3)
		if x >= stay {
			meta := vtx[pos[ii]]
			var idx uint32
			ok := false
			for !ok {
				x, s0, s1, s2, s3 = xoshiroNext(s0, s1, s2, s3)
				idx, ok = reduce32(uint32(x), uint32(meta))
			}
			pos[ii] = adj[uint32(meta>>32)+idx]
		}
		streams[ii].SetState(s0, s1, s2, s3)
	}
}

// stepRoundAlias advances one round through the compiled alias table — the
// step path of every progAlias kernel (Weighted, MetropolisUniform, the
// hoppers, and any registered family without a dedicated fast path).
func (e *Engine) stepRoundAlias(st *runState, lo, hi int) {
	at := e.prog.at
	pos := st.pos[lo:hi]
	streams := st.streams[lo:hi]
	for ii := range pos {
		s0, s1, s2, s3 := streams[ii].State()
		var x uint64
		x, s0, s1, s2, s3 = xoshiroNext(s0, s1, s2, s3)
		meta := at.meta[pos[ii]]
		idx, ok := reduce32(uint32(x), uint32(meta))
		for !ok {
			x, s0, s1, s2, s3 = xoshiroNext(s0, s1, s2, s3)
			idx, ok = reduce32(uint32(x), uint32(meta))
		}
		slot := uint32(meta>>32) + idx
		if uint32(x>>32) < at.thresh[slot] {
			pos[ii] = at.out[slot]
		} else {
			pos[ii] = at.alt[slot]
		}
		streams[ii].SetState(s0, s1, s2, s3)
	}
}

// stepRoundNoBacktrack advances one non-backtracking round over the CSR
// arrays, maintaining the per-walker prev lane.
func (e *Engine) stepRoundNoBacktrack(st *runState, lo, hi int) {
	vtx, adj := e.vtx, e.adj
	pos := st.pos[lo:hi]
	prev := st.prev[lo:hi]
	streams := st.streams[lo:hi]
	for ii := range pos {
		p := pos[ii]
		meta := vtx[p]
		deg := uint32(meta)
		off := uint32(meta >> 32)
		if deg == 1 {
			prev[ii] = p
			pos[ii] = adj[off]
			continue
		}
		pv := prev[ii]
		span := deg
		if pv >= 0 {
			span = deg - 1
		}
		s0, s1, s2, s3 := streams[ii].State()
		var x uint64
		x, s0, s1, s2, s3 = xoshiroNext(s0, s1, s2, s3)
		idx, ok := reduce32(uint32(x), span)
		for !ok {
			x, s0, s1, s2, s3 = xoshiroNext(s0, s1, s2, s3)
			idx, ok = reduce32(uint32(x), span)
		}
		np := adj[off+idx]
		if np == pv {
			np = adj[off+deg-1]
		}
		streams[ii].SetState(s0, s1, s2, s3)
		prev[ii] = p
		pos[ii] = np
	}
}
