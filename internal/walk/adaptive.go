package walk

import (
	"fmt"

	"manywalks/internal/stats"
)

// This file implements the sequential-stopping layer over the grouped
// engine: trials run in deterministic waves — wave w is trials
// [w·W, (w+1)·W) of the same global schedule the fixed-count path runs,
// with every seed derived from the global trial index exactly as today —
// and after each wave the samples so far are folded into a streaming
// Welford accumulator. The run stops at the first wave boundary where the
// Student-t relative confidence-interval half-width is below the requested
// tolerance (after a minimum trial count, and never past the maximum).
//
// The stop wave is a pure function of the samples: per-trial samples are
// invariant under Workers/batch/chunk partitioning (the RunGrouped
// contract), the accumulator folds them in trial order, and the critical
// values are deterministic, so any host and any parallelism configuration
// stops at the same trial and returns bit-identical estimates. That is the
// property that lets the serving layer interleave waves of many requests
// while still answering exactly what a standalone run would.

// Precision requests adaptive (sequential stopping) estimation. The zero
// value disables it: estimators run their fixed MCOptions.Trials count,
// bit-for-bit as before. Setting RTol > 0 enables it; the estimator then
// runs trials in waves of Wave and stops at the first wave boundary where
// the relative CI half-width at Confidence is at most RTol, clamped to
// [MinTrials, MaxTrials].
//
// Precision is a comparable value type (scalar fields only) so serving
// layers can fold it into coalescing keys directly.
type Precision struct {
	// RTol is the target relative CI half-width (CI/|mean|); 0 disables
	// adaptive stopping.
	RTol float64
	// Confidence is the two-sided CI level; 0 means 0.95.
	Confidence float64
	// MinTrials is the floor before the stop rule may fire; 0 means 8
	// (and never below 2 — one sample has no interval).
	MinTrials int
	// MaxTrials caps the total trials; 0 means MCOptions.Trials, so the
	// fixed count becomes the budget the adaptive run may stop early
	// within.
	MaxTrials int
	// Wave is the wave width W; 0 means 32. The stop rule is evaluated
	// only at wave boundaries, so W is part of the determinism contract:
	// the same W always stops at the same trial.
	Wave int
}

// Enabled reports whether p requests adaptive stopping.
func (p Precision) Enabled() bool { return p.RTol > 0 }

// defaults of the Precision zero fields.
const (
	defaultConfidence = 0.95
	defaultMinTrials  = 8
	defaultWave       = 32
)

// normalized fills defaults (maxTrials is the MCOptions.Trials budget) and
// validates.
func (p Precision) normalized(maxTrials int) (Precision, error) {
	if p.RTol < 0 {
		return p, fmt.Errorf("walk: Precision.RTol must be >= 0")
	}
	if p.Confidence == 0 {
		p.Confidence = defaultConfidence
	}
	if !(p.Confidence > 0 && p.Confidence < 1) {
		return p, fmt.Errorf("walk: Precision.Confidence must be in (0,1)")
	}
	if p.MinTrials <= 0 {
		p.MinTrials = defaultMinTrials
	}
	if p.MinTrials < 2 {
		p.MinTrials = 2
	}
	if p.MaxTrials <= 0 {
		p.MaxTrials = maxTrials
	}
	if p.MaxTrials < 1 {
		return p, fmt.Errorf("walk: Precision.MaxTrials must be >= 1")
	}
	if p.MinTrials > p.MaxTrials {
		p.MinTrials = p.MaxTrials
	}
	if p.Wave <= 0 {
		p.Wave = defaultWave
	}
	return p, nil
}

// WaveStat snapshots the adaptive run after one wave — the per-wave
// progress record MCOptions.OnWave receives and cmd/walkd streams as
// partial results.
type WaveStat struct {
	// Wave is the completed wave's index (0-based).
	Wave int
	// Trials is the total trials folded so far.
	Trials int
	// Mean and CI are the running mean and CI half-width at the requested
	// confidence; RelCI is CI relative to |Mean|.
	Mean, CI, RelCI float64
	// Truncated counts trials so far that exhausted MaxSteps.
	Truncated int
	// Converged reports the stop rule has been met (RelCI <= RTol with at
	// least MinTrials trials).
	Converged bool
	// Done reports the run stops here — converged, or MaxTrials reached.
	Done bool
}

// AdaptiveState is the sequential-stopping decision procedure: the
// normalized Precision, the streaming accumulator, and the wave cursor.
// It is shared by the walk estimators and the serving layer's wave-by-wave
// dispatch so the two can never disagree on when a run stops. Use
// NewAdaptiveState, then alternate WaveSpan (the next wave's global trial
// range) and Fold (fold that wave's outcomes) until Done.
type AdaptiveState struct {
	prec      Precision
	acc       stats.Accumulator
	wave      int
	truncated int
	converged bool
	done      bool
}

// NewAdaptiveState returns the decision state for p with the given total
// trial budget (the MCOptions.Trials default for MaxTrials).
func NewAdaptiveState(p Precision, budget int) (*AdaptiveState, error) {
	if !p.Enabled() {
		return nil, fmt.Errorf("walk: adaptive state requires Precision.RTol > 0")
	}
	p, err := p.normalized(budget)
	if err != nil {
		return nil, err
	}
	return &AdaptiveState{prec: p}, nil
}

// Precision returns the normalized precision request.
func (s *AdaptiveState) Precision() Precision { return s.prec }

// Done reports the run is over: the stop rule fired or MaxTrials was
// reached.
func (s *AdaptiveState) Done() bool { return s.done }

// Converged reports the stop rule was met (not a MaxTrials bailout).
func (s *AdaptiveState) Converged() bool { return s.converged }

// Trials returns the trials folded so far.
func (s *AdaptiveState) Trials() int { return s.acc.N() }

// Waves returns the waves folded so far.
func (s *AdaptiveState) Waves() int { return s.wave }

// WaveSpan returns the next wave's global trial range [lo, hi). It is
// empty once Done.
func (s *AdaptiveState) WaveSpan() (lo, hi int) {
	if s.done {
		return s.acc.N(), s.acc.N()
	}
	lo = s.acc.N()
	hi = lo + s.prec.Wave
	if hi > s.prec.MaxTrials {
		hi = s.prec.MaxTrials
	}
	return lo, hi
}

// Fold folds one wave's per-trial outcomes (rounds, stopped — the
// GroupedResult layout, censored trials included exactly as the fixed
// path includes them) and evaluates the stop rule at the wave boundary.
// It returns the wave's progress snapshot.
func (s *AdaptiveState) Fold(rounds []int64, stopped []bool) WaveStat {
	for i, r := range rounds {
		s.acc.Add(float64(r))
		if !stopped[i] {
			s.truncated++
		}
	}
	n := s.acc.N()
	ci := s.acc.CI(s.prec.Confidence)
	rel := s.acc.RelCI(s.prec.Confidence)
	s.converged = n >= s.prec.MinTrials && rel <= s.prec.RTol
	s.done = s.converged || n >= s.prec.MaxTrials
	ws := WaveStat{
		Wave:      s.wave,
		Trials:    n,
		Mean:      s.acc.Mean(),
		CI:        ci,
		RelCI:     rel,
		Truncated: s.truncated,
		Converged: s.converged,
		Done:      s.done,
	}
	s.wave++
	return ws
}

// adaptiveTrials is the estimator-side wave driver: it alternates WaveSpan
// and run(base, count) — which must produce trials [base, base+count) of
// the global schedule, locally indexed — until the stop rule fires, and
// returns the concatenated outcomes with the wave accounting filled in.
func adaptiveTrials(opts MCOptions, run func(base, count int) (GroupedResult, error)) (GroupedResult, error) {
	st, err := NewAdaptiveState(opts.Precision, opts.Trials)
	if err != nil {
		return GroupedResult{}, err
	}
	var all GroupedResult
	for !st.Done() {
		lo, hi := st.WaveSpan()
		res, err := run(lo, hi-lo)
		if err != nil {
			return GroupedResult{}, err
		}
		all.Rounds = append(all.Rounds, res.Rounds...)
		all.Stopped = append(all.Stopped, res.Stopped...)
		ws := st.Fold(res.Rounds, res.Stopped)
		if opts.OnWave != nil {
			opts.OnWave(ws)
		}
	}
	all.Waves = st.Waves()
	all.Converged = st.Converged()
	return all, nil
}
