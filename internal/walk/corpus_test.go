package walk

import (
	"bufio"
	"bytes"
	"fmt"
	"strconv"
	"strings"
	"testing"

	"manywalks/internal/graph"
	"manywalks/internal/rng"
)

// corpusTestKernels returns the five kernels against graphs they run on.
func corpusTestKernels() []struct {
	name   string
	g      *graph.Graph
	kernel Kernel
} {
	base := graph.MargulisExpander(4) // n=16, 8-regular: every kernel is valid
	wg := graph.Reweight(base, func(u, v int32) float64 { return float64(u+v) + 1.5 })
	return []struct {
		name   string
		g      *graph.Graph
		kernel Kernel
	}{
		{"uniform", base, Uniform()},
		{"lazy", base, Lazy(0.3)},
		{"weighted", wg, Weighted()},
		{"noback", base, NoBacktrack()},
		{"metropolis", base, MetropolisUniform()},
	}
}

func corpusBytes(t *testing.T, g *graph.Graph, opts EngineOptions, spec CorpusSpec) []byte {
	t.Helper()
	var buf bytes.Buffer
	stats, err := NewEngine(g, opts).GenerateCorpus(spec, &buf)
	if err != nil {
		t.Fatal(err)
	}
	wantWalks := int64(g.N()) * int64(spec.WalksPerVertex)
	if stats.Walks != wantWalks || stats.Steps != wantWalks*int64(spec.Length) {
		t.Fatalf("stats (%d,%d), want (%d,%d)", stats.Walks, stats.Steps, wantWalks, wantWalks*int64(spec.Length))
	}
	return buf.Bytes()
}

// TestCorpusDeterminism pins the central corpus invariant: for every kernel,
// the emitted bytes are identical across Workers and BatchRounds, in both
// formats.
func TestCorpusDeterminism(t *testing.T) {
	for _, kc := range corpusTestKernels() {
		for _, format := range []CorpusFormat{CorpusText, CorpusBinary} {
			spec := CorpusSpec{WalksPerVertex: 3, Length: 17, Seed: 0x5eed0000 + uint64(format), Format: format}
			baseline := corpusBytes(t, kc.g, EngineOptions{Workers: 1, Kernel: kc.kernel}, spec)
			for _, workers := range []int{1, 4} {
				for _, batch := range []int{0, 5} {
					got := corpusBytes(t, kc.g, EngineOptions{Workers: workers, BatchRounds: batch, Kernel: kc.kernel}, spec)
					if !bytes.Equal(got, baseline) {
						t.Fatalf("%s/format=%d: corpus bytes differ at workers=%d batch=%d", kc.name, format, workers, batch)
					}
				}
			}
		}
	}
}

// decodeCorpusText parses the CorpusText format into walks.
func decodeCorpusText(t *testing.T, raw []byte) (CorpusHeader, [][]int32) {
	t.Helper()
	sc := bufio.NewScanner(bytes.NewReader(raw))
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	if !sc.Scan() || sc.Text() != "# manywalks corpus" {
		t.Fatalf("missing corpus comment line, got %q", sc.Text())
	}
	if !sc.Scan() {
		t.Fatal("missing corpus header")
	}
	var h CorpusHeader
	if _, err := fmt.Sscanf(sc.Text(), "%d %d %d", &h.N, &h.WalksPerVertex, &h.Length); err != nil {
		t.Fatalf("bad corpus header %q: %v", sc.Text(), err)
	}
	var walks [][]int32
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) != h.Length+1 {
			t.Fatalf("walk %d has %d vertices, want %d", len(walks), len(fields), h.Length+1)
		}
		walk := make([]int32, len(fields))
		for j, f := range fields {
			v, err := strconv.Atoi(f)
			if err != nil {
				t.Fatal(err)
			}
			walk[j] = int32(v)
		}
		walks = append(walks, walk)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return h, walks
}

// decodeCorpusBinary loads all walks of a CorpusBinary stream.
func decodeCorpusBinary(t *testing.T, raw []byte) (CorpusHeader, [][]int32) {
	t.Helper()
	var walks [][]int32
	h, err := ScanCorpusBinary(bytes.NewReader(raw), func(walk []int32) error {
		walks = append(walks, append([]int32(nil), walk...))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return h, walks
}

// TestCorpusFormatsAgree checks the text and binary encodings carry the
// same walks.
func TestCorpusFormatsAgree(t *testing.T) {
	g := graph.MargulisExpander(4)
	spec := CorpusSpec{WalksPerVertex: 2, Length: 9, Seed: 99}
	text := corpusBytes(t, g, EngineOptions{Workers: 2}, spec)
	spec.Format = CorpusBinary
	bin := corpusBytes(t, g, EngineOptions{Workers: 2}, spec)

	th, tw := decodeCorpusText(t, text)
	bh, bw := decodeCorpusBinary(t, bin)
	if th != bh {
		t.Fatalf("headers differ: %+v vs %+v", th, bh)
	}
	if len(tw) != len(bw) {
		t.Fatalf("%d text walks vs %d binary walks", len(tw), len(bw))
	}
	for i := range tw {
		if !bytes.Equal(int32Bytes(tw[i]), int32Bytes(bw[i])) {
			t.Fatalf("walk %d differs between formats: %v vs %v", i, tw[i], bw[i])
		}
	}
}

// int32Bytes packs an int32 slice for cheap equality checks.
func int32Bytes(s []int32) []byte {
	out := make([]byte, 0, len(s)*4)
	for _, v := range s {
		out = append(out, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return out
}

// sequentialWalk reproduces global walk t through the standalone engine
// path documented on CorpusSpec.Seed: one walker from the walk's vertex,
// engine seed drawn from the walk's trial stream, run to the horizon.
func sequentialWalk(t *testing.T, e *Engine, spec CorpusSpec, trial int64) []int32 {
	t.Helper()
	var src rng.Source
	src.Reseed(rng.StreamSeed(spec.Seed, uint64(trial)))
	engineSeed := src.Uint64()
	v := int32(trial / int64(spec.WalksPerVertex))
	obs := NewPathObserver(spec.Length)
	res, err := e.Run(RunSpec{
		Starts:    []int32{v},
		Seed:      engineSeed,
		MaxRounds: int64(spec.Length),
		Stop:      RunToHorizon(),
	}, obs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stopped || res.Rounds != int64(spec.Length) {
		t.Fatalf("sequential walk %d ended (%d,%v), want the full horizon", trial, res.Rounds, res.Stopped)
	}
	return obs.Path(0)
}

// TestCorpusMatchesSequentialWalks pins every corpus walk against the
// standalone Engine.Run walk with the same derivation — the bit-for-bit
// equivalence the corpus promises — for a uniform and a non-uniform kernel.
func TestCorpusMatchesSequentialWalks(t *testing.T) {
	for _, kc := range corpusTestKernels() {
		if kc.name != "uniform" && kc.name != "noback" {
			continue
		}
		spec := CorpusSpec{WalksPerVertex: 2, Length: 33, Seed: 7, Format: CorpusBinary}
		_, walks := decodeCorpusBinary(t, corpusBytes(t, kc.g, EngineOptions{Workers: 4, Kernel: kc.kernel}, spec))
		seq := NewEngine(kc.g, EngineOptions{Workers: 1, Kernel: kc.kernel})
		for trial, walk := range walks {
			want := sequentialWalk(t, seq, spec, int64(trial))
			if !bytes.Equal(int32Bytes(walk), int32Bytes(want)) {
				t.Fatalf("%s: corpus walk %d = %v, sequential = %v", kc.name, trial, walk, want)
			}
			if v := int32(trial / spec.WalksPerVertex); walk[0] != v {
				t.Fatalf("%s: walk %d starts at %d, want vertex %d", kc.name, trial, walk[0], v)
			}
		}
	}
}

// TestCorpusMultiWave forces the wave loop to split (a long Length shrinks
// the per-wave lane cap below the walk count) and checks the output is
// byte-identical to the single-worker run and still matches the sequential
// walks across the wave boundary — wave size must never leak into the
// corpus.
func TestCorpusMultiWave(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-wave corpus is a few million steps")
	}
	g := graph.MargulisExpander(2) // n = 4
	const length = 1 << 17         // rowCells 131073 -> wave = 4M/131073 = 31 lanes
	spec := CorpusSpec{WalksPerVertex: 16, Length: length, Seed: 21, Format: CorpusBinary}
	// 64 walks, wave 31: three waves with boundaries at walks 31 and 62.
	baseline := corpusBytes(t, g, EngineOptions{Workers: 1}, spec)
	if got := corpusBytes(t, g, EngineOptions{Workers: 4}, spec); !bytes.Equal(got, baseline) {
		t.Fatal("multi-wave corpus differs across Workers")
	}
	_, walks := decodeCorpusBinary(t, baseline)
	if len(walks) != 64 {
		t.Fatalf("%d walks, want 64", len(walks))
	}
	seq := NewEngine(g, EngineOptions{Workers: 1})
	for _, trial := range []int64{0, 30, 31, 61, 62, 63} {
		want := sequentialWalk(t, seq, spec, trial)
		if !bytes.Equal(int32Bytes(walks[trial]), int32Bytes(want)) {
			t.Fatalf("walk %d differs from its sequential run at a wave boundary", trial)
		}
	}
}

// TestCorpusProgress checks the progress callback is monotone and complete.
func TestCorpusProgress(t *testing.T) {
	g := graph.MargulisExpander(4)
	var calls []int64
	spec := CorpusSpec{WalksPerVertex: 2, Length: 5, Seed: 1, Progress: func(done, total int64) {
		if total != 32 {
			t.Fatalf("total %d, want 32", total)
		}
		calls = append(calls, done)
	}}
	var buf bytes.Buffer
	if _, err := NewEngine(g, EngineOptions{}).GenerateCorpus(spec, &buf); err != nil {
		t.Fatal(err)
	}
	if len(calls) == 0 || calls[len(calls)-1] != 32 {
		t.Fatalf("progress calls %v must end at 32", calls)
	}
	for i := 1; i < len(calls); i++ {
		if calls[i] <= calls[i-1] {
			t.Fatalf("progress not monotone: %v", calls)
		}
	}
}

// TestCorpusSpecValidation checks the descriptive error paths.
func TestCorpusSpecValidation(t *testing.T) {
	e := NewEngine(graph.Cycle(8), EngineOptions{})
	var buf bytes.Buffer
	for _, spec := range []CorpusSpec{
		{WalksPerVertex: 0, Length: 5},
		{WalksPerVertex: 1, Length: 0},
		{WalksPerVertex: 1, Length: 5, Format: CorpusFormat(9)},
	} {
		if _, err := e.GenerateCorpus(spec, &buf); err == nil {
			t.Fatalf("spec %+v should be rejected", spec)
		}
	}
}

// TestScanCorpusBinaryRejectsGarbage checks the decoder's error paths.
func TestScanCorpusBinaryRejectsGarbage(t *testing.T) {
	g := graph.MargulisExpander(4)
	spec := CorpusSpec{WalksPerVertex: 1, Length: 4, Seed: 3, Format: CorpusBinary}
	raw := corpusBytes(t, g, EngineOptions{}, spec)
	nop := func([]int32) error { return nil }
	for name, data := range map[string][]byte{
		"empty":     {},
		"bad magic": append([]byte{1, 2, 3, 4}, raw[4:]...),
		"truncated": raw[:len(raw)-3],
		"trailing":  append(append([]byte{}, raw...), 0),
	} {
		if _, err := ScanCorpusBinary(bytes.NewReader(data), nop); err == nil {
			t.Fatalf("%s should be rejected", name)
		}
	}
	if _, err := ScanCorpusBinary(bytes.NewReader(raw), nop); err != nil {
		t.Fatalf("valid corpus rejected: %v", err)
	}
}

// TestPathObserverMatchesGrouped cross-checks the sequential PathObserver
// against GroupPathObserver for a multi-walker lane shape (k=3), the
// configuration the corpus itself does not exercise.
func TestPathObserverMatchesGrouped(t *testing.T) {
	g := graph.MargulisExpander(4)
	e := NewEngine(g, EngineOptions{Workers: 2})
	const L = 21
	starts := []int32{0, 5, 9}
	seeds := []uint64{101, 202, 303, 404}

	gobs := NewGroupPathObserver(L)
	_, err := e.RunGrouped(GroupedRunSpec{
		Trials: len(seeds), Starts: starts, Seeds: seeds, MaxRounds: L,
	}, gobs)
	if err != nil {
		t.Fatal(err)
	}
	for trial, seed := range seeds {
		sobs := NewPathObserver(L)
		if _, err := e.Run(RunSpec{Starts: starts, Seed: seed, MaxRounds: L, Stop: RunToHorizon()}, sobs); err != nil {
			t.Fatal(err)
		}
		got := gobs.TrialPath(trial)
		for i := range starts {
			want := sobs.Path(i)
			for tt := 0; tt <= L; tt++ {
				if got[tt*len(starts)+i] != want[tt] {
					t.Fatalf("trial %d walker %d round %d: grouped %d != sequential %d",
						trial, i, tt, got[tt*len(starts)+i], want[tt])
				}
			}
		}
	}
}
