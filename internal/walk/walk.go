// Package walk implements the random-walk simulators at the heart of the
// reproduction: single simple random walks, the paper's synchronized k-walk
// (k independent walkers advancing in parallel rounds), cover-time and
// hitting-time sampling, and a deterministic parallel Monte Carlo driver
// that fans trials out over a fixed worker pool with one RNG stream per
// trial.
//
// Time convention: for a single walk, time is the number of steps taken.
// For a k-walk, time is the number of *rounds*; in one round every one of
// the k walkers takes one step, matching the paper's model in which the
// walks proceed simultaneously and τ^k counts elapsed walk length, not total
// work.
package walk

import (
	"fmt"

	"manywalks/internal/graph"
	"manywalks/internal/rng"
)

// Walker is a simple random walker on a graph. It is the single-walk
// reference simulator; batch workloads (cover/hit estimation over many
// walkers or trials) run on Engine, which advances flat walker arrays in
// vectorized rounds instead of pointer-chasing Step calls.
type Walker struct {
	g   *graph.Graph
	pos int32
	r   *rng.Source
}

// NewWalker places a walker at start.
func NewWalker(g *graph.Graph, start int32, r *rng.Source) *Walker {
	if start < 0 || int(start) >= g.N() {
		panic(fmt.Sprintf("walk: start %d out of range", start))
	}
	return &Walker{g: g, pos: start, r: r}
}

// Pos returns the current vertex.
func (w *Walker) Pos() int32 { return w.pos }

// Step moves to a uniformly random neighbor and returns the new position.
func (w *Walker) Step() int32 {
	nb := w.g.Neighbors(w.pos)
	w.pos = nb[w.r.Intn(len(nb))]
	return w.pos
}

// visitSet is a bitset tracking visited vertices with a running count.
type visitSet struct {
	bits  []uint64
	count int
}

func newVisitSet(n int) *visitSet {
	return &visitSet{bits: make([]uint64, (n+63)/64)}
}

// visit marks v and reports the updated count of distinct visited vertices.
func (s *visitSet) visit(v int32) int {
	w, b := v>>6, uint(v&63)
	if s.bits[w]&(1<<b) == 0 {
		s.bits[w] |= 1 << b
		s.count++
	}
	return s.count
}

// CoverResult reports one cover-time trial.
type CoverResult struct {
	Steps   int64 // steps (single walk) or rounds (k-walk) until covered
	Covered bool  // false if MaxSteps was exhausted first
}

// CoverFrom runs one simple random walk from start until every vertex has
// been visited or maxSteps steps have elapsed.
func CoverFrom(g *graph.Graph, start int32, r *rng.Source, maxSteps int64) CoverResult {
	n := g.N()
	seen := newVisitSet(n)
	if seen.visit(start) == n {
		return CoverResult{Steps: 0, Covered: true}
	}
	w := NewWalker(g, start, r)
	for t := int64(1); t <= maxSteps; t++ {
		if seen.visit(w.Step()) == n {
			return CoverResult{Steps: t, Covered: true}
		}
	}
	return CoverResult{Steps: maxSteps, Covered: false}
}

// KCoverFrom runs the paper's k-walk from a single start vertex: k
// independent walkers all begin at start and advance one step per round;
// the result counts rounds until the union of trajectories covers V.
func KCoverFrom(g *graph.Graph, start int32, k int, r *rng.Source, maxRounds int64) CoverResult {
	starts := make([]int32, k)
	for i := range starts {
		starts[i] = start
	}
	return KCoverFromVertices(g, starts, r, maxRounds)
}

// KCoverFromVertices runs a k-walk whose walkers begin at the given
// vertices (not necessarily distinct). This generalization supports the
// paper's §1.1 remark about walks started from the stationary distribution.
//
// This is the legacy per-walker reference loop, kept as the baseline the
// engine is validated and benchmarked against (engine_bench_test.go); the
// estimators run on Engine.KCover, which is ≥2x faster.
func KCoverFromVertices(g *graph.Graph, starts []int32, r *rng.Source, maxRounds int64) CoverResult {
	if len(starts) == 0 {
		panic("walk: k-walk requires at least one walker")
	}
	n := g.N()
	seen := newVisitSet(n)
	pos := make([]int32, len(starts))
	for i, s := range starts {
		if s < 0 || int(s) >= n {
			panic(fmt.Sprintf("walk: start %d out of range", s))
		}
		pos[i] = s
		if seen.visit(s) == n {
			return CoverResult{Steps: 0, Covered: true}
		}
	}
	for t := int64(1); t <= maxRounds; t++ {
		for i, p := range pos {
			nb := g.Neighbors(p)
			np := nb[r.Intn(len(nb))]
			pos[i] = np
			if seen.visit(np) == n {
				return CoverResult{Steps: t, Covered: true}
			}
		}
	}
	return CoverResult{Steps: maxRounds, Covered: false}
}

// HitFrom returns the number of steps for a single walk from start to first
// reach target, and whether it did so within maxSteps. A walk already at
// the target has hitting time 0.
func HitFrom(g *graph.Graph, start, target int32, r *rng.Source, maxSteps int64) (int64, bool) {
	if start == target {
		return 0, true
	}
	w := NewWalker(g, start, r)
	for t := int64(1); t <= maxSteps; t++ {
		if w.Step() == target {
			return t, true
		}
	}
	return maxSteps, false
}

// FirstVisitTimes runs a single walk for exactly horizon steps and returns
// the first-visit time of every vertex (-1 if unvisited). Index start gets 0.
func FirstVisitTimes(g *graph.Graph, start int32, r *rng.Source, horizon int64) []int64 {
	n := g.N()
	first := make([]int64, n)
	for i := range first {
		first[i] = -1
	}
	first[start] = 0
	w := NewWalker(g, start, r)
	remaining := n - 1
	for t := int64(1); t <= horizon && remaining > 0; t++ {
		v := w.Step()
		if first[v] < 0 {
			first[v] = t
			remaining--
		}
	}
	return first
}

// VisitCounts runs a single walk for exactly horizon steps and returns how
// many times each vertex was occupied (the start counts once at time 0).
// Long-run frequencies converge to the stationary distribution; tests use
// this to validate the walker against the operator algebra.
func VisitCounts(g *graph.Graph, start int32, r *rng.Source, horizon int64) []int64 {
	counts := make([]int64, g.N())
	counts[start] = 1
	w := NewWalker(g, start, r)
	for t := int64(0); t < horizon; t++ {
		counts[w.Step()]++
	}
	return counts
}

// StationaryStarts samples k start vertices approximately from the
// stationary distribution π(v) ∝ deg(v) by drawing uniform positions in the
// graph's adjacency array. For loop-free graphs the sampling is exact; a
// self-loop vertex is undersampled by one adjacency slot (its loop appears
// once, not twice), a negligible and documented bias.
func StationaryStarts(g *graph.Graph, k int, r *rng.Source) []int32 {
	starts := make([]int32, k)
	// The global adjacency array lists each vertex u exactly deg(u) times
	// across all neighbor lists; walking the offsets finds the owner of a
	// uniformly chosen slot in O(log n) via binary search on vertex offsets.
	total := g.TotalDegree()
	for i := range starts {
		slot := r.Intn(total)
		starts[i] = vertexOfSlot(g, slot)
	}
	return starts
}

// vertexOfSlot returns the vertex whose adjacency range contains the given
// global slot index, by binary search over CSR offsets.
func vertexOfSlot(g *graph.Graph, slot int) int32 {
	lo, hi := int32(0), int32(g.N()-1)
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if g.Offset(mid) <= slot {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}
