// Cross-validation of the engine's compiled kernels against the exact
// analysis layers, in an external test package so it can import
// internal/markov (which itself imports internal/walk for the Kernel type).
// This is ARCHITECTURE.md's stated defense against simulator bugs, extended
// from the uniform walk to every vertex-space kernel.
package walk_test

import (
	"math"
	"testing"

	"manywalks/internal/exact"
	"manywalks/internal/graph"
	"manywalks/internal/markov"
	"manywalks/internal/walk"
)

// TestLazyKernelMatchesAbsorbingChain is the satellite cross-validation:
// the lazy kernel's Monte Carlo hitting time must match the absorbing-chain
// expectation of markov.FromWalk(g, stay) — a fully independent path
// (dense walk operator → fundamental matrix) that shares no sampling code
// with the engine.
func TestLazyKernelMatchesAbsorbingChain(t *testing.T) {
	const stay = 0.5
	for _, g := range []*graph.Graph{graph.Torus2D(5), graph.Lollipop(6, 4)} {
		var target int32 = int32(g.N() - 1)
		chain := markov.FromWalk(g, stay)
		abs, err := markov.NewAbsorbing(chain, []int{int(target)})
		if err != nil {
			t.Fatal(err)
		}
		want := abs.ExpectedSteps()[0]

		est, err := walk.EstimateKernelHittingTime(g, walk.Lazy(stay), 0, target,
			walk.MCOptions{Trials: 3000, Seed: 42, MaxSteps: 1 << 22})
		if err != nil {
			t.Fatal(err)
		}
		if est.Truncated != 0 {
			t.Fatalf("%s: %d truncated trials", g.Name(), est.Truncated)
		}
		if math.Abs(est.Mean()-want) > 4*est.CI95() {
			t.Fatalf("%s: lazy MC hitting %v ± %v vs absorbing-chain %v",
				g.Name(), est.Mean(), est.CI95(), want)
		}
	}
}

// TestKernelHittingMatchesChainForKernel validates the weighted and
// Metropolis kernels against markov.ChainForKernel's absorbing-chain
// expectations.
func TestKernelHittingMatchesChainForKernel(t *testing.T) {
	g := graph.Reweight(graph.Torus2D(5), func(u, v int32) float64 {
		return 1 + float64((u+2*v)%4)
	})
	var target int32 = 12
	for _, kern := range []walk.Kernel{walk.Weighted(), walk.MetropolisUniform()} {
		want, err := markov.KernelHittingTimeVia(g, kern, 0, target)
		if err != nil {
			t.Fatal(err)
		}
		est, err := walk.EstimateKernelHittingTime(g, kern, 0, target,
			walk.MCOptions{Trials: 3000, Seed: 7, MaxSteps: 1 << 22})
		if err != nil {
			t.Fatal(err)
		}
		if est.Truncated != 0 {
			t.Fatalf("%s: %d truncated trials", kern, est.Truncated)
		}
		if math.Abs(est.Mean()-want) > 4*est.CI95() {
			t.Fatalf("%s: MC hitting %v ± %v vs exact chain %v",
				kern, est.Mean(), est.CI95(), want)
		}
	}
}

// TestKernelCoverMatchesChainDP anchors the kernel cover estimates to the
// exact subset DP over the kernel's chain on a tiny graph.
func TestKernelCoverMatchesChainDP(t *testing.T) {
	g := graph.Reweight(graph.Cycle(6), func(u, v int32) float64 {
		return 1 + float64((u+v)%3)
	})
	for _, kern := range []walk.Kernel{walk.Lazy(0.25), walk.Weighted(), walk.MetropolisUniform()} {
		chain, err := markov.ChainForKernel(g, kern)
		if err != nil {
			t.Fatal(err)
		}
		want, err := exact.CoverTimeFromChain(chain, 0)
		if err != nil {
			t.Fatal(err)
		}
		est, err := walk.EstimateKernelCoverTime(g, kern, 0,
			walk.MCOptions{Trials: 4000, Seed: 11, MaxSteps: 1 << 22})
		if err != nil {
			t.Fatal(err)
		}
		if est.Truncated != 0 {
			t.Fatalf("%s: %d truncated trials", kern, est.Truncated)
		}
		if math.Abs(est.Mean()-want) > 4*est.CI95() {
			t.Fatalf("%s: MC cover %v ± %v vs exact DP %v",
				kern, est.Mean(), est.CI95(), want)
		}
	}
}

// TestChainForKernelAgreesWithFromWalk pins ChainForKernel's uniform and
// lazy images to the walk-operator path, and the Metropolis chain's
// stationary distribution to uniform on an irregular graph.
func TestChainForKernelAgreesWithFromWalk(t *testing.T) {
	g := graph.Lollipop(6, 4)
	n := g.N()
	for _, tc := range []struct {
		kern walk.Kernel
		stay float64
	}{
		{walk.Uniform(), 0},
		{walk.Lazy(0.3), 0.3},
	} {
		got, err := markov.ChainForKernel(g, tc.kern)
		if err != nil {
			t.Fatal(err)
		}
		want := markov.FromWalk(g, tc.stay)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if math.Abs(got.P(i, j)-want.P(i, j)) > 1e-12 {
					t.Fatalf("%s: P[%d][%d] = %v, FromWalk says %v",
						tc.kern, i, j, got.P(i, j), want.P(i, j))
				}
			}
		}
	}

	mh, err := markov.ChainForKernel(g, walk.MetropolisUniform())
	if err != nil {
		t.Fatal(err)
	}
	pi, err := mh.Stationary(100000, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pi {
		if math.Abs(p-1/float64(n)) > 1e-6 {
			t.Fatalf("metropolis stationary π[%d] = %v, want uniform %v", i, p, 1/float64(n))
		}
	}

	if _, err := markov.ChainForKernel(g, walk.NoBacktrack()); err == nil {
		t.Fatal("no-backtrack must not have a vertex-space chain")
	}
}
