package walk

import (
	"math/bits"
	"sync"

	"manywalks/internal/rng"
)

// This file holds the fused fast path of the grouped (trial-fused) driver:
// the uniform kernel on a pad-table graph, driving a lone
// GroupCoverObserver — the workload behind every cover-time estimate. It
// recovers the sequential path's exact draw discipline while cutting the
// per-step instruction count roughly in half, with three ingredients:
//
//   - Pair transition table: pad2[v<<2s | b] packs the two-hop outcome of
//     consuming 2s draw bits from vertex v as (mid<<16 | dst), so one
//     lookup advances a walker two rounds. The bits consumed are exactly
//     the bits the sequential kernels would consume in rounds t and t+1;
//     any pair whose path touches a padding sentinel is marked and
//     resolved hop-by-hop with the sequential redraw semantics, so the
//     per-walker draw sequence is bit-for-bit unchanged.
//   - Block-generated draws: each draw group opens with a fill pass that
//     banks one fresh Uint64 per walker into the reservoir lane, instead
//     of interleaving generator state loads with the table walk. The
//     sequence seen by each walker's stream is identical — one draw at
//     the group's first round, redraws in round order.
//   - Inline first-visit scan: the pair loop probes the lane's uint32
//     first-visit cells directly (unsigned-min update, order-invariant;
//     see GroupCoverObserver), so there is no per-round log, no merge
//     sweep, and no second pass over the positions.
//
// A lane whose distinct-visit count crosses its target is detected at the
// end of the pass that crossed it; the exact crossing round is then
// resolved from the lane's first-visit cells (a single O(n) sweep, once
// per trial), and the lane stops stepping at the next pass boundary —
// overshoot is at most one pair — before retiring at the group barrier.

const (
	// pairSentinel marks pad2 entries whose two-hop path touches a padding
	// sentinel and must be resolved hop-by-hop.
	pairSentinel = ^uint32(0)
	// maxPairEntries caps the pair table at 4 MiB.
	maxPairEntries = 1 << 20
	// maxPairVertex bounds vertex ids to 16 bits so (mid, dst) pack into
	// one uint32 without colliding with the sentinel.
	maxPairVertex = 1<<16 - 1
)

// pairTable is the lazily built two-step transition table.
type pairTable struct {
	once sync.Once
	ok   bool
	tbl  []uint32
}

// buildPairTable constructs the two-step table once per engine, when the
// graph and kernel qualify: uniform step law, pad table present, vertex
// ids within 16 bits, and table size within the cap.
func (e *Engine) buildPairTable() {
	e.pair.once.Do(func() {
		if e.prog.kind != progUniform || e.pad == nil {
			return
		}
		n := e.g.N()
		shift := e.padShift
		if n > maxPairVertex || n<<(2*shift) > maxPairEntries {
			return
		}
		stride := 1 << shift
		tbl := make([]uint32, n<<(2*shift))
		for v := 0; v < n; v++ {
			for b := 0; b < stride*stride; b++ {
				// Dual sentinel encoding: 0xFFFF in the low half flags a
				// slow pair; the high half still carries the first hop when
				// only the second touches a padding sentinel, so the slow
				// path resolves just the hop that needs redraws.
				ent := pairSentinel
				if mid := e.pad[v<<shift|b&(stride-1)]; mid != padSentinel {
					if dst := e.pad[int(mid)<<shift|(b>>shift)&(stride-1)]; dst != padSentinel {
						ent = uint32(mid)<<16 | uint32(dst)
					} else {
						ent = uint32(mid)<<16 | 0xFFFF
					}
				}
				tbl[v<<(2*shift)|b] = ent
			}
		}
		e.pair.tbl = tbl
		e.pair.ok = true
	})
}

// fusedCoverObserver reports whether the observer set qualifies for the
// fused cover path, returning the cover observer if so.
func (e *Engine) fusedCoverObserver(k int, obs []GroupObserver) *GroupCoverObserver {
	if len(obs) != 1 {
		return nil
	}
	cov, ok := obs[0].(*GroupCoverObserver)
	if !ok {
		return nil
	}
	// Thin lanes don't amortize the per-lane pass structure (a lane of one
	// walker would pay several function calls per pair of rounds); the
	// generic round-major driver steps the whole width at once and wins
	// there.
	if k < minFusedLaneWalkers {
		return nil
	}
	e.buildPairTable()
	if !e.pair.ok {
		return nil
	}
	return cov
}

// minFusedLaneWalkers is the narrowest lane worth the fused per-lane pass
// structure.
const minFusedLaneWalkers = 8

// pairResolveSlow resolves a two-hop transition whose path touches a
// padding sentinel, hop-by-hop with the sequential redraw semantics: each
// sentinel hit draws a fresh Uint64 from the walker's stream and retries
// with its low bits, leaving the reservoir untouched. The generator state
// is carried in registers across a hop's redraws, so a slow pair costs a
// handful of loads on top of the draws the sequential path performs
// anyway.
func pairResolveSlow(str *rng.Source, pad []int32, shift uint32, p int32, r uint64, ent uint32) uint32 {
	mask := uint64(1)<<shift - 1
	s0, s1, s2, s3 := str.State()
	var mid int32
	if hi := ent >> 16; hi != 0xFFFF {
		mid = int32(hi)
	} else {
		mid = padSentinel
		for mid == padSentinel {
			var x uint64
			x, s0, s1, s2, s3 = xoshiroNext(s0, s1, s2, s3)
			mid = pad[uint64(uint32(p))<<shift|x&mask]
		}
	}
	dst := pad[uint64(uint32(mid))<<shift|(r>>shift)&mask]
	for dst == padSentinel {
		var x uint64
		x, s0, s1, s2, s3 = xoshiroNext(s0, s1, s2, s3)
		dst = pad[uint64(uint32(mid))<<shift|x&mask]
	}
	str.SetState(s0, s1, s2, s3)
	return uint32(mid)<<16 | uint32(dst)
}

// The pair pass is split into two tiny loops — a step pass that walks the
// pair table into an entry buffer, and a scan pass that probes the lane's
// first-visit cells from that buffer — because small loops are what the
// compiler keeps in registers: a single fused loop carries more live
// values than x86-64 has registers and measures ~30% slower end-to-end on
// the gate benchmark, and a function call anywhere in a hot body (even a
// cold one) makes the compiler home the loop-carried values in stack
// slots. Both loops are branch-free on data outcomes: a trial lives
// almost entirely in its coverage phase, where "first visit?" is a coin
// flip resolving at the end of a load dependency chain, so data branches
// would mispredict constantly.
//
// pairStep64 advances one full 64-walker chunk two rounds through the
// pair table. Sentinel-touching pairs are deferred through the returned
// pending bitmask (hence the 64-walker cap): keep-original CMOVs leave
// the slow walker's position and reservoir in place, and the caller
// replays them hop-by-hop before scanning. Deferral cannot change
// results: the scan updates cells by unsigned min (observation order
// within a pass is immaterial) and each walker's stream is private.
func pairStep64(pad2 []uint32, pos *[64]int32, res *[64]uint64, ents *[64]uint32, shift2 uint32) uint64 {
	mask2 := uint64(1)<<shift2 - 1
	pend := uint64(0)
	for ii := 0; ii < 64; ii++ {
		p := pos[ii]
		r := res[ii]
		ent := pad2[uint64(uint32(p))<<shift2|r&mask2]
		slow := ent&0xFFFF == 0xFFFF
		var sb uint64
		if slow {
			sb = 1
		}
		pend |= sb << uint(ii)
		rv := r >> shift2
		pv := int32(ent & 0xFFFF)
		if slow {
			rv = r
			pv = p
		}
		ents[ii] = ent
		res[ii] = rv
		pos[ii] = pv
	}
	return pend
}

// pairScan64 probes the two first-visit cells of every entry in the
// buffer (rounds t1 and t1+1), maintaining the lane's distinct-visit
// count. By the time it runs every entry is fully resolved, so there is
// no sentinel handling at all: the probes compile to compare+CMOV with an
// unconditional store, and the count update exploits that an unset cell
// always satisfies t < s.
func pairScan64(first []uint32, ents *[64]uint32, base, t1 uint32, cnt int32) int32 {
	t2 := t1 + 1
	for ii := 0; ii < 64; ii++ {
		ent := ents[ii]
		mid := base + ent>>16
		dst := base + ent&0xFFFF
		s1 := first[mid]
		v1 := s1
		if t1 < v1 {
			v1 = t1
		}
		first[mid] = v1
		var n1 int32
		if s1 == groupUnset {
			n1 = 1
		}
		s2 := first[dst]
		v2 := s2
		if t2 < v2 {
			v2 = t2
		}
		first[dst] = v2
		var n2 int32
		if s2 == groupUnset {
			n2 = 1
		}
		cnt += n1 + n2
	}
	return cnt
}

// pairStepTail / pairScanTail are the sub-64 variants for a lane's
// trailing chunk (lanes whose k is not a multiple of 64); same contracts.
func pairStepTail(pad2 []uint32, pos []int32, res []uint64, ents []uint32, shift2 uint32) uint64 {
	mask2 := uint64(1)<<shift2 - 1
	pend := uint64(0)
	for ii := range pos {
		p := pos[ii]
		r := res[ii]
		ent := pad2[uint64(uint32(p))<<shift2|r&mask2]
		slow := ent&0xFFFF == 0xFFFF
		var sb uint64
		if slow {
			sb = 1
		}
		pend |= sb << uint(ii)
		rv := r >> shift2
		pv := int32(ent & 0xFFFF)
		if slow {
			rv = r
			pv = p
		}
		ents[ii] = ent
		res[ii] = rv
		pos[ii] = pv
	}
	return pend
}

func pairScanTail(first, ents []uint32, base, t1 uint32, cnt int32) int32 {
	t2 := t1 + 1
	for _, ent := range ents {
		mid := base + ent>>16
		dst := base + ent&0xFFFF
		s1 := first[mid]
		v1 := s1
		if t1 < v1 {
			v1 = t1
		}
		first[mid] = v1
		var n1 int32
		if s1 == groupUnset {
			n1 = 1
		}
		s2 := first[dst]
		v2 := s2
		if t2 < v2 {
			v2 = t2
		}
		first[dst] = v2
		var n2 int32
		if s2 == groupUnset {
			n2 = 1
		}
		cnt += n1 + n2
	}
	return cnt
}

// singleRoundFast is the call-free hot loop of one single-step round over
// one lane (the leftover round of an odd-length draw group). Padding
// sentinels redraw inline through the walker's stream — the redraw's
// generator math inlines, so the loop stays a leaf — and the first-visit
// probe is branchless for the same reason as pairPassFast's.
func singleRoundFast(pad []int32, first []uint32, pos []int32, res []uint64, streams []rng.Source,
	base, shift, t uint32, cnt int32) int32 {
	mask := uint64(1)<<shift - 1
	for ii := range pos {
		p := pos[ii]
		r := res[ii]
		np := pad[uint64(uint32(p))<<shift|r&mask]
		for np == padSentinel {
			x := streams[ii].Uint64()
			np = pad[uint64(uint32(p))<<shift|x&mask]
		}
		res[ii] = r >> shift
		v := base + uint32(np)
		s := first[v]
		vv := s
		if t < vv {
			vv = t
		}
		first[v] = vv
		var nw int32
		if s == groupUnset {
			nw = 1
		}
		cnt += nw
		pos[ii] = np
	}
	return cnt
}

// laneGroup advances one trial lane through one draw group: the fill pass
// banks each walker's fresh draw into the reservoir lane (block-generated
// draws — the per-walker stream sequence is identical to the sequential
// path's draw-at-group-start), the pair passes run pairPassFast and then
// replay its deferred sentinel pairs hop-by-hop with the exact redraw
// semantics, and an odd group length finishes with one single-step round.
// The lane early-exits at the first pass that crosses its target
// (overshoot is at most one pass), leaving the exact crossing round to
// resolveCrossings. One lane's whole group runs before the next lane
// starts, so its first-visit cells and walker state stay cache-hot for
// all rounds of the group.
func (e *Engine) laneGroup(gst *groupState, cov *GroupCoverObserver, ln int, sl int32, t0 uint32, pairs int, odd bool) {
	pad2 := e.pair.tbl
	pad, shift := e.pad, e.padShift
	shift2 := 2 * shift
	first := cov.first
	k := gst.laneK
	lo := ln * k
	pos := gst.pos[lo : lo+k]
	res := gst.res[lo : lo+k]
	streams := gst.streams[lo : lo+k]
	for ii := range res {
		res[ii] = streams[ii].Uint64()
	}
	base := uint32(int(sl) * cov.n)
	cnt := cov.counts[sl]
	target := int32(cov.target)
	var ents [64]uint32
	for pj := 0; pj < pairs; pj++ {
		t1 := t0 + uint32(2*pj) + 1
		t2 := t1 + 1
		// Lanes wider than 64 walkers run the pass in bitmask-sized
		// chunks; full chunks go through the array-pointer fast path.
		for c0 := 0; c0 < k; c0 += 64 {
			c1 := c0 + 64
			var pendMask uint64
			if c1 <= k {
				pendMask = pairStep64(pad2, (*[64]int32)(pos[c0:c1]), (*[64]uint64)(res[c0:c1]), &ents, shift2)
			} else {
				c1 = k
				pendMask = pairStepTail(pad2, pos[c0:c1], res[c0:c1], ents[:c1-c0], shift2)
			}
			// Replay the deferred slow pairs hop-by-hop with the exact
			// redraw semantics; they kept their original position and
			// reservoir, and their resolved entries join the buffer so
			// the scan pass needs no sentinel handling.
			for pendMask != 0 {
				ci := trailingZeros64(pendMask)
				pendMask &= pendMask - 1
				ii := c0 + ci
				p := pos[ii]
				r := res[ii]
				ent := pad2[uint64(uint32(p))<<shift2|r&mask2of(shift2)]
				ent = pairResolveSlow(&streams[ii], pad, shift, p, r, ent)
				res[ii] = r >> shift2
				pos[ii] = int32(ent & 0xFFFF)
				ents[ci] = ent
			}
			if c1-c0 == 64 {
				cnt = pairScan64(first, &ents, base, t1, cnt)
			} else {
				cnt = pairScanTail(first, ents[:c1-c0], base, t1, cnt)
			}
		}
		if cnt >= target {
			cov.counts[sl] = cnt
			cov.resolveCrossings(ln, ln+1, t1-1, t2)
			return
		}
	}
	if odd {
		t := t0 + uint32(2*pairs) + 1
		cnt = singleRoundFast(pad, first, pos, res, streams, base, shift, t, cnt)
		if cnt >= target {
			cov.counts[sl] = cnt
			cov.done[sl] = int64(t)
			return
		}
	}
	cov.counts[sl] = cnt
}

// mask2of is the pair-table bit mask for a doubled pad shift.
func mask2of(shift2 uint32) uint64 { return uint64(1)<<shift2 - 1 }

// trailingZeros64 aliases bits.TrailingZeros64 for the bitmask replay.
func trailingZeros64(x uint64) int { return bits.TrailingZeros64(x) }

// resolveCrossings marks every lane in [loLane, hiLane) whose count
// crossed its target during the pass ending at round thi, resolving the
// exact crossing round from the lane's first-visit cells: the smallest
// round in (tlo, thi] at which the running distinct count reached the
// target. Counts are monotone, so the crossing pass is always the pass
// that detects it.
func (cov *GroupCoverObserver) resolveCrossings(loLane, hiLane int, tlo, thi uint32) {
	for ln := loLane; ln < hiLane; ln++ {
		s := cov.laneOff[ln]
		if cov.done[s] >= 0 || int(cov.counts[s]) < cov.target {
			continue
		}
		lane := cov.laneCells(s)
		// Count visits no later than each candidate round in one sweep.
		span := int(thi - tlo)
		var at [2]int32 // span is 1 (single pass) or 2 (pair pass)
		before := int32(0)
		for _, f := range lane {
			if f <= tlo {
				before++
			} else if f <= thi {
				at[int(f-tlo)-1]++
			}
		}
		run := before
		for j := 0; j < span; j++ {
			run += at[j]
			if int(run) >= cov.target {
				cov.done[s] = int64(tlo) + int64(j) + 1
				break
			}
		}
	}
}

// runGroupedFusedCover drives the chunk's lanes to completion on the
// fused path. Each worker advances every lane it owns to its cover round
// (or the budget) before touching the next — trials are independent, so
// processing order is free, and running one lane's whole life keeps its
// first-visit cells and walker state cache-hot against the pair table's
// churn (lane-interleaved group scheduling measures ~25% slower end to
// end). Retirement is direct: a finished lane records its trial's outcome
// immediately, so the heavy tail of slow trials costs exactly its own
// rounds — the lane-major form of the generic path's swap-compaction.
func (e *Engine) runGroupedFusedCover(gst *groupState, spec *GroupedRunSpec, cov *GroupCoverObserver, res *GroupedResult) {
	workers := spec.Workers
	if workers > gst.lanes {
		workers = gst.lanes
	}
	if workers <= 1 {
		e.fusedCoverShard(gst, spec.MaxRounds, cov, res, 0, gst.lanes)
	} else {
		// One spawn per worker per chunk (not per barrier): each worker
		// owns its contiguous lane range for the lanes' whole lives, so a
		// multicore fused pass costs exactly `workers` goroutine wrappers.
		for w := 0; w < workers; w++ {
			lo, hi := laneShardSpan(gst.lanes, workers, w)
			if lo == hi {
				continue
			}
			gst.wg.Add(1)
			go e.fusedCoverShardAsync(gst, spec.MaxRounds, cov, res, lo, hi)
		}
		gst.wg.Wait()
	}
	gst.lanes = 0
}

// fusedCoverShard drives lanes [loLane, hiLane) to completion on the
// fused path. Lanes are shard-owned and trials distinct, so direct
// retirement — recording each finished trial's outcome immediately — is
// race-free, and a lane's draws depend only on its own streams: results
// are identical no matter how lanes are partitioned.
func (e *Engine) fusedCoverShard(gst *groupState, maxRounds int64, cov *GroupCoverObserver, res *GroupedResult, loLane, hiLane int) {
	group := int64(e.group)
	for ln := loLane; ln < hiLane; ln++ {
		sl := cov.laneOff[ln]
		for t0 := int64(0); cov.done[sl] < 0 && t0 < maxRounds; t0 += group {
			b := group
			if b > maxRounds-t0 {
				b = maxRounds - t0
			}
			e.laneGroup(gst, cov, ln, sl, uint32(t0), int(b/2), b%2 == 1)
		}
		trial := int(gst.laneTrial[ln])
		if s := cov.done[sl]; s >= 0 {
			res.Rounds[trial] = s
			res.Stopped[trial] = true
			cov.finishLane(ln, trial, s, true)
		} else {
			res.Rounds[trial] = maxRounds
			res.Stopped[trial] = false
			cov.finishLane(ln, trial, maxRounds, false)
		}
	}
}

// fusedCoverShardAsync is fusedCoverShard plus the barrier arrival, the
// form the multicore spawn uses.
func (e *Engine) fusedCoverShardAsync(gst *groupState, maxRounds int64, cov *GroupCoverObserver, res *GroupedResult, loLane, hiLane int) {
	defer gst.wg.Done()
	e.fusedCoverShard(gst, maxRounds, cov, res, loLane, hiLane)
}
