package walk

import (
	"math"
	"testing"

	"manywalks/internal/exact"
	"manywalks/internal/graph"
	"manywalks/internal/rng"
)

func TestWalkerStaysOnEdges(t *testing.T) {
	g := graph.Lollipop(6, 4)
	r := rng.New(1)
	w := NewWalker(g, 0, r)
	prev := w.Pos()
	for i := 0; i < 10000; i++ {
		next := w.Step()
		if !g.HasEdge(prev, next) {
			t.Fatalf("illegal move %d -> %d", prev, next)
		}
		prev = next
	}
}

func TestWalkerUniformNeighborChoice(t *testing.T) {
	// From the star center every leaf must be chosen ≈ uniformly.
	g := graph.Star(5)
	r := rng.New(2)
	counts := make(map[int32]int)
	const trials = 40000
	for i := 0; i < trials; i++ {
		w := NewWalker(g, 0, r)
		counts[w.Step()]++
	}
	for leaf := int32(1); leaf < 5; leaf++ {
		frac := float64(counts[leaf]) / trials
		if math.Abs(frac-0.25) > 0.02 {
			t.Fatalf("leaf %d frequency %.3f", leaf, frac)
		}
	}
}

func TestNewWalkerPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewWalker(graph.Cycle(3), 3, rng.New(1))
}

func TestCoverFromAlreadyCovered(t *testing.T) {
	// A single-vertex "graph" can't be built (generators require n >= 2),
	// so check the 0-step path: complete graph covered after n-1 visits is
	// not 0, but a K2 from either endpoint covers in exactly 1 step.
	g := graph.Complete(2, false)
	res := CoverFrom(g, 0, rng.New(3), 100)
	if !res.Covered || res.Steps != 1 {
		t.Fatalf("K2 cover %+v", res)
	}
}

func TestCoverMatchesExactDP(t *testing.T) {
	// Monte Carlo means must land on the exact DP values within CI.
	cases := []struct {
		g     *graph.Graph
		start int32
	}{
		{graph.Cycle(6), 0},
		{graph.Complete(5, false), 0},
		{graph.Path(5), 0},
		{graph.Star(6), 1},
	}
	for _, c := range cases {
		want, err := exact.CoverTimeFrom(c.g, c.start)
		if err != nil {
			t.Fatal(err)
		}
		est, err := EstimateCoverTime(c.g, c.start, MCOptions{
			Trials: 4000, Seed: 11, MaxSteps: 1 << 20,
		})
		if err != nil {
			t.Fatal(err)
		}
		if est.Truncated > 0 {
			t.Fatalf("%s: %d truncated trials", c.g.Name(), est.Truncated)
		}
		// 4 CI widths: ~1-in-15k false failure per case.
		if math.Abs(est.Mean()-want) > 4*est.CI95() {
			t.Fatalf("%s: MC %v ± %v vs exact %v", c.g.Name(), est.Mean(), est.CI95(), want)
		}
	}
}

func TestKCoverMatchesExactDP(t *testing.T) {
	cases := []struct {
		g     *graph.Graph
		start int32
		k     int
	}{
		{graph.Cycle(5), 0, 2},
		{graph.Complete(4, false), 0, 2},
		{graph.Complete(4, true), 0, 3},
		{graph.Path(4), 0, 2},
	}
	for _, c := range cases {
		want, err := exact.KCoverTimeFrom(c.g, c.start, c.k)
		if err != nil {
			t.Fatal(err)
		}
		est, err := EstimateKCoverTime(c.g, c.start, c.k, MCOptions{
			Trials: 4000, Seed: 13, MaxSteps: 1 << 20,
		})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(est.Mean()-want) > 4*est.CI95() {
			t.Fatalf("%s k=%d: MC %v ± %v vs exact %v",
				c.g.Name(), c.k, est.Mean(), est.CI95(), want)
		}
	}
}

func TestHittingMatchesExact(t *testing.T) {
	g := graph.Cycle(9)
	ht, err := exact.ComputeHittingTimes(g)
	if err != nil {
		t.Fatal(err)
	}
	est, err := EstimateHittingTime(g, 0, 4, MCOptions{
		Trials: 4000, Seed: 17, MaxSteps: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := ht.At(0, 4) // 4·5 = 20
	if math.Abs(est.Mean()-want) > 4*est.CI95() {
		t.Fatalf("hitting MC %v ± %v vs exact %v", est.Mean(), est.CI95(), want)
	}
}

func TestHitFromSelf(t *testing.T) {
	steps, hit := HitFrom(graph.Cycle(5), 2, 2, rng.New(1), 10)
	if steps != 0 || !hit {
		t.Fatal("self hit should be 0")
	}
}

func TestReproducibilityAcrossWorkerCounts(t *testing.T) {
	g := graph.Torus2D(5)
	base, err := EstimateCoverTime(g, 0, MCOptions{Trials: 200, Seed: 5, MaxSteps: 1 << 20, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8, 23} {
		est, err := EstimateCoverTime(g, 0, MCOptions{Trials: 200, Seed: 5, MaxSteps: 1 << 20, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if est.Mean() != base.Mean() || est.Summary.Variance != base.Summary.Variance {
			t.Fatalf("workers=%d changed the estimate: %v vs %v", workers, est.Mean(), base.Mean())
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	g := graph.Cycle(12)
	a, _ := EstimateCoverTime(g, 0, MCOptions{Trials: 50, Seed: 1, MaxSteps: 1 << 20})
	b, _ := EstimateCoverTime(g, 0, MCOptions{Trials: 50, Seed: 2, MaxSteps: 1 << 20})
	if a.Mean() == b.Mean() {
		t.Fatal("distinct seeds produced identical means (suspicious)")
	}
}

func TestTruncationAccounting(t *testing.T) {
	// With an absurdly small budget every trial truncates and the flag
	// must say so.
	g := graph.Cycle(64)
	est, err := EstimateCoverTime(g, 0, MCOptions{Trials: 20, Seed: 3, MaxSteps: 5})
	if err != nil {
		t.Fatal(err)
	}
	if est.Truncated != 20 {
		t.Fatalf("expected all 20 trials truncated, got %d", est.Truncated)
	}
	if est.Mean() != 5 {
		t.Fatalf("censored mean should be the budget, got %v", est.Mean())
	}
}

func TestMCOptionValidation(t *testing.T) {
	g := graph.Cycle(5)
	if _, err := EstimateCoverTime(g, 0, MCOptions{Trials: 0, MaxSteps: 10}); err == nil {
		t.Fatal("Trials=0 accepted")
	}
	if _, err := EstimateCoverTime(g, 0, MCOptions{Trials: 10, MaxSteps: 0}); err == nil {
		t.Fatal("MaxSteps=0 accepted")
	}
	if _, err := EstimateKCoverTime(g, 0, 0, MCOptions{Trials: 10, MaxSteps: 10}); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestDisconnectedRejected(t *testing.T) {
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	g := b.Build("disc")
	if _, err := EstimateCoverTime(g, 0, MCOptions{Trials: 5, MaxSteps: 10}); err == nil {
		t.Fatal("disconnected accepted")
	}
	if _, err := EstimateKCoverTime(g, 0, 2, MCOptions{Trials: 5, MaxSteps: 10}); err == nil {
		t.Fatal("disconnected accepted for k-walk")
	}
	if _, err := EstimateHittingTime(g, 0, 3, MCOptions{Trials: 5, MaxSteps: 10}); err == nil {
		t.Fatal("disconnected accepted for hitting")
	}
}

func TestVisitCountsApproachStationary(t *testing.T) {
	// Long-run occupancy ∝ degree. Star(5): center π = 1/2, leaves 1/8.
	g := graph.Star(5)
	counts := VisitCounts(g, 0, rng.New(7), 200000)
	total := int64(0)
	for _, c := range counts {
		total += c
	}
	centerFrac := float64(counts[0]) / float64(total)
	if math.Abs(centerFrac-0.5) > 0.02 {
		t.Fatalf("center occupancy %.3f, want ≈0.5", centerFrac)
	}
}

func TestFirstVisitTimes(t *testing.T) {
	g := graph.Path(6)
	fv := FirstVisitTimes(g, 0, rng.New(9), 1<<20)
	if fv[0] != 0 {
		t.Fatal("start first-visit must be 0")
	}
	// On a path from vertex 0 the first-visit times are strictly increasing
	// along the line.
	for i := 1; i < 6; i++ {
		if fv[i] <= fv[i-1] {
			t.Fatalf("first visits not monotone on path: %v", fv)
		}
	}
	// A zero-length horizon leaves everything but the start unvisited.
	fv0 := FirstVisitTimes(g, 2, rng.New(9), 0)
	for i, v := range fv0 {
		if i == 2 && v != 0 {
			t.Fatal("start mismatch")
		}
		if i != 2 && v != -1 {
			t.Fatal("unvisited vertex must be -1")
		}
	}
}

func TestStationaryStartsDegreeProportional(t *testing.T) {
	// On Star(5), the center owns half of all adjacency slots.
	g := graph.Star(5)
	r := rng.New(15)
	centerHits := 0
	const samples = 40000
	starts := StationaryStarts(g, samples, r)
	for _, s := range starts {
		if s == 0 {
			centerHits++
		}
	}
	frac := float64(centerHits) / samples
	if math.Abs(frac-0.5) > 0.02 {
		t.Fatalf("center sampled %.3f, want ≈0.5", frac)
	}
}

func TestKCoverFromVerticesDistinctStarts(t *testing.T) {
	// Walkers planted at every vertex cover instantly.
	g := graph.Cycle(6)
	starts := []int32{0, 1, 2, 3, 4, 5}
	res := KCoverFromVertices(g, starts, rng.New(4), 100)
	if !res.Covered || res.Steps != 0 {
		t.Fatalf("full placement should cover at t=0: %+v", res)
	}
}

func TestKCoverSpeedupDirection(t *testing.T) {
	// More walkers never hurt (in expectation): C^4 < C^1 on a torus,
	// with a comfortable margin at these sizes.
	g := graph.Torus2D(6)
	opts := MCOptions{Trials: 400, Seed: 21, MaxSteps: 1 << 22}
	c1, err := EstimateCoverTime(g, 0, opts)
	if err != nil {
		t.Fatal(err)
	}
	c4, err := EstimateKCoverTime(g, 0, 4, opts)
	if err != nil {
		t.Fatal(err)
	}
	if c4.Mean() >= c1.Mean() {
		t.Fatalf("4 walks slower than 1: %v vs %v", c4.Mean(), c1.Mean())
	}
}

func TestCoverTimeTail(t *testing.T) {
	g := graph.Cycle(8)
	// Horizon far beyond the mean: tail must be small. Exact C = 28.
	tail, err := CoverTimeTail(g, 0, 2000, MCOptions{Trials: 500, Seed: 23, MaxSteps: 10})
	if err != nil {
		t.Fatal(err)
	}
	if tail > 0.02 {
		t.Fatalf("tail at 2000 steps is %v", tail)
	}
	// Horizon of 1 step: cycle(8) cannot be covered, tail = 1.
	tail1, err := CoverTimeTail(g, 0, 1, MCOptions{Trials: 100, Seed: 23, MaxSteps: 10})
	if err != nil {
		t.Fatal(err)
	}
	if tail1 != 1 {
		t.Fatalf("tail at 1 step should be 1, got %v", tail1)
	}
	if _, err := CoverTimeTail(g, 0, 0, MCOptions{Trials: 5, MaxSteps: 5}); err == nil {
		t.Fatal("horizon 0 accepted")
	}
}

func TestEstimateSummaryConsistency(t *testing.T) {
	g := graph.Complete(6, false)
	est, err := EstimateCoverTime(g, 0, MCOptions{Trials: 100, Seed: 29, MaxSteps: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	s := est.Summary
	if s.N != 100 || s.Min > s.Mean || s.Mean > s.Max {
		t.Fatalf("inconsistent summary %+v", s)
	}
	if est.CI95() != s.CI95() {
		t.Fatal("CI95 shorthand mismatch")
	}
}
