package walk

import (
	"testing"

	"manywalks/internal/graph"
)

// TestPlanPadTable pins the plan against the engine's actual decision.
func TestPlanPadTable(t *testing.T) {
	for _, g := range []*graph.Graph{
		graph.Cycle(64),             // deg 2, shift 1
		graph.Star(5),               // hub deg 4, shift 2
		graph.MargulisExpander(8),   // deg 8, shift 3
		graph.Complete(1024, false), // 1023*1024 entries: over the cap
		graph.Hypercube(17),         // 131072<<5 entries: over the cap
	} {
		plan := PlanPadTable(g)
		e := NewEngine(g, EngineOptions{})
		if plan.Applies != (e.pad != nil) {
			t.Fatalf("%s: plan says applies=%v, engine built table=%v", g.Name(), plan.Applies, e.pad != nil)
		}
		if plan.Applies {
			if int64(len(e.pad)) != plan.Entries {
				t.Fatalf("%s: plan entries %d, engine table %d", g.Name(), plan.Entries, len(e.pad))
			}
			if plan.Shift != e.padShift {
				t.Fatalf("%s: plan shift %d, engine shift %d", g.Name(), plan.Shift, e.padShift)
			}
		}
		if plan.Limit != maxPadEntries {
			t.Fatalf("plan limit %d != maxPadEntries", plan.Limit)
		}
	}
}
