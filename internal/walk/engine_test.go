package walk

import (
	"math"
	"sync"
	"testing"

	"manywalks/internal/exact"
	"manywalks/internal/graph"
	"manywalks/internal/rng"
	"manywalks/internal/stats"
)

// replayWalk recomputes walker w's trajectory for horizon rounds using only
// the public rng.Source API and the graph's adjacency lists — an
// independent reimplementation of the engine's documented draw discipline
// that pins the hand-inlined kernel bit for bit.
func replayWalk(t *testing.T, e *Engine, start int32, seed uint64, w int, horizon int64) []int32 {
	t.Helper()
	g := e.Graph()
	s := rng.NewStream(seed, uint64(w))
	padded := e.pad != nil
	group := int64(e.group)
	shift := uint(e.padShift)
	stride := 1 << shift
	var reservoir uint64
	pos := start
	traj := make([]int32, horizon)
	for tt := int64(1); tt <= horizon; tt++ {
		nb := g.Neighbors(pos)
		deg := len(nb)
		if padded {
			mask := uint64(stride - 1)
			var lane uint64
			if (tt-1)%group == 0 {
				x := s.Uint64()
				lane, reservoir = x&mask, x>>shift
			} else {
				lane = reservoir & mask
				reservoir >>= shift
			}
			filled := (stride / deg) * deg
			for int(lane) >= filled { // padding sentinel: redraw
				lane = s.Uint64() & mask
			}
			pos = nb[int(lane)%deg]
		} else {
			var lane uint32
			if (tt-1)%group == 0 {
				x := s.Uint64()
				lane, reservoir = uint32(x), x>>32
			} else {
				lane = uint32(reservoir)
			}
			idx, ok := refLemire32(lane, uint32(deg))
			for !ok {
				idx, ok = refLemire32(uint32(s.Uint64()), uint32(deg))
			}
			pos = nb[idx]
		}
		traj[tt-1] = pos
	}
	return traj
}

// refLemire32 restates the 32-bit Lemire reduction from first principles.
func refLemire32(lane, n uint32) (uint32, bool) {
	m := uint64(lane) * uint64(n)
	if uint32(m) < n {
		thresh := uint32((uint64(1) << 32) % uint64(n))
		if uint32(m) < thresh {
			return 0, false
		}
	}
	return uint32(m >> 32), true
}

// replayReference runs the replay for every walker and derives first-visit
// rounds and the full-cover round.
func replayReference(t *testing.T, e *Engine, starts []int32, seed uint64, horizon int64) (first []int64, cover int64, covered bool) {
	t.Helper()
	n := e.Graph().N()
	first = make([]int64, n)
	for i := range first {
		first[i] = -1
	}
	for _, s := range starts {
		first[s] = 0
	}
	for w, s := range starts {
		for tt, v := range replayWalk(t, e, s, seed, w, horizon) {
			if first[v] < 0 || first[v] > int64(tt)+1 {
				first[v] = int64(tt) + 1
			}
		}
	}
	cover = 0
	for _, f := range first {
		if f < 0 {
			return first, 0, false
		}
		if f > cover {
			cover = f
		}
	}
	return first, cover, true
}

func engineReplayGraphs(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	gs := map[string]*graph.Graph{
		"expander": graph.MargulisExpander(8),  // padded, stride 8
		"torus":    graph.Torus2D(6),           // padded, stride 4
		"cycle":    graph.Cycle(17),            // padded, stride 2
		"lollipop": graph.Lollipop(8, 5),       // padded, irregular degrees
		"complete": graph.Complete(2048, true), // too big to pad: CSR + Lemire
		"chords":   graph.CycleWithChords(13),  // padded, degrees 2 and 3
	}
	return gs
}

func TestEngineMatchesWalkerReplay(t *testing.T) {
	for name, g := range engineReplayGraphs(t) {
		eng := NewEngine(g, EngineOptions{Workers: 1})
		starts := []int32{0, 1, int32(g.N() / 2), 1}
		const seed, horizon = 99, 300
		wantFirst, wantCover, wantCovered := replayReference(t, eng, starts, seed, horizon)

		gotFirst := eng.KFirstVisits(starts, seed, horizon)
		for v := range wantFirst {
			if gotFirst[v] != wantFirst[v] {
				t.Fatalf("%s: first visit of %d = %d, replay says %d",
					name, v, gotFirst[v], wantFirst[v])
			}
		}
		res := eng.KCover(starts, seed, horizon)
		if res.Covered != wantCovered || (wantCovered && res.Steps != wantCover) {
			t.Fatalf("%s: KCover %+v, replay says cover=%d covered=%v",
				name, res, wantCover, wantCovered)
		}
	}
}

func TestEngineDeterministicAcrossConfigs(t *testing.T) {
	// Weighted wants actual weights; every kernel must hold the
	// determinism guarantee on the same (weighted) graph.
	g := graph.Reweight(graph.MargulisExpander(16), func(u, v int32) float64 {
		return 1 + float64((u*7+v*13)%5)
	})
	n := g.N()
	starts := make([]int32, 80)
	for i := range starts {
		starts[i] = int32(i % n)
	}
	marked := make([]bool, n)
	marked[n-1] = true

	for _, kern := range Kernels() {
		base := NewEngine(g, EngineOptions{Workers: 1, BatchRounds: 2, Kernel: kern})
		wantCover := base.KCover(starts, 7, 1<<20)
		wantFirst := base.KFirstVisits(starts, 7, 500)
		wantHit := base.KHit(starts, marked, 7, 1<<20)
		if !wantCover.Covered || !wantHit.Hit {
			t.Fatalf("%s: baseline did not finish", kern)
		}
		for _, opts := range []EngineOptions{
			{Workers: 1, BatchRounds: 64},
			{Workers: 2, BatchRounds: 16},
			{Workers: 5, BatchRounds: 2},
			{Workers: 8, BatchRounds: 1000},
			{},
		} {
			opts.Kernel = kern
			eng := NewEngine(g, opts)
			if got := eng.KCover(starts, 7, 1<<20); got != wantCover {
				t.Fatalf("%s opts %+v: KCover %+v != %+v", kern, opts, got, wantCover)
			}
			got := eng.KFirstVisits(starts, 7, 500)
			for v := range wantFirst {
				if got[v] != wantFirst[v] {
					t.Fatalf("%s opts %+v: first[%d] = %d != %d", kern, opts, v, got[v], wantFirst[v])
				}
			}
			if got := eng.KHit(starts, marked, 7, 1<<20); got != wantHit {
				t.Fatalf("%s opts %+v: KHit %+v != %+v", kern, opts, got, wantHit)
			}
		}
	}
}

func TestEngineKCoverMatchesExactDP(t *testing.T) {
	cases := []struct {
		g     *graph.Graph
		start int32
		k     int
	}{
		{graph.Cycle(5), 0, 2},
		{graph.Complete(4, false), 0, 2},
		{graph.Path(4), 0, 3},
	}
	for _, c := range cases {
		want, err := exact.KCoverTimeFrom(c.g, c.start, c.k)
		if err != nil {
			t.Fatal(err)
		}
		eng := NewEngine(c.g, EngineOptions{})
		const trials = 4000
		samples := make([]float64, trials)
		for i := range samples {
			res := eng.KCoverFrom(c.start, c.k, uint64(i), 1<<20)
			if !res.Covered {
				t.Fatalf("%s: truncated", c.g.Name())
			}
			samples[i] = float64(res.Steps)
		}
		sum := stats.Summarize(samples)
		if math.Abs(sum.Mean-want) > 4*sum.CI95() {
			t.Fatalf("%s k=%d: engine mean %v ± %v vs exact %v",
				c.g.Name(), c.k, sum.Mean, sum.CI95(), want)
		}
	}
}

func TestEngineKHit(t *testing.T) {
	g := graph.Path(10)
	eng := NewEngine(g, EngineOptions{})
	marked := make([]bool, 10)
	marked[9] = true

	// Replay walker 0's trajectory and find its first time at vertex 9.
	traj := replayWalk(t, eng, 0, 5, 0, 4000)
	want := int64(-1)
	for tt, v := range traj {
		if v == 9 {
			want = int64(tt) + 1
			break
		}
	}
	if want < 0 {
		t.Fatal("replay never reached the end of the path; raise the horizon")
	}
	res := eng.KHit([]int32{0}, marked, 5, 4000)
	if !res.Hit || res.Rounds != want || res.Vertex != 9 || res.Walker != 0 {
		t.Fatalf("KHit %+v, replay says first hit at %d", res, want)
	}

	// A marked start hits at round 0, reported for the lowest walker index.
	res = eng.KHit([]int32{3, 9, 9}, marked, 5, 100)
	if !res.Hit || res.Rounds != 0 || res.Vertex != 9 || res.Walker != 1 {
		t.Fatalf("marked start: %+v", res)
	}

	// No marked vertices: exhausts the budget.
	res = eng.KHit([]int32{0}, make([]bool, 10), 5, 64)
	if res.Hit || res.Rounds != 64 || res.Vertex != -1 || res.Walker != -1 {
		t.Fatalf("unmarked: %+v", res)
	}
}

func TestEngineEdgeCases(t *testing.T) {
	g := graph.Cycle(6)
	eng := NewEngine(g, EngineOptions{})

	// Walkers on every vertex cover at round 0.
	all := []int32{0, 1, 2, 3, 4, 5}
	if res := eng.KCover(all, 1, 10); !res.Covered || res.Steps != 0 {
		t.Fatalf("full placement: %+v", res)
	}
	// Budget exhaustion reports the censored round count.
	if res := eng.KCoverFrom(0, 1, 1, 3); res.Covered || res.Steps != 3 {
		t.Fatalf("truncation: %+v", res)
	}
	// Horizon 0 leaves only the starts visited.
	first := eng.KFirstVisits([]int32{2}, 1, 0)
	for v, f := range first {
		if v == 2 && f != 0 {
			t.Fatal("start must be round 0")
		}
		if v != 2 && f != -1 {
			t.Fatal("non-start must be unvisited")
		}
	}
	// Partial cover: target 1 is satisfied by the start itself.
	if res := eng.KCoverTarget([]int32{0}, 1, 1, 10); !res.Covered || res.Steps != 0 {
		t.Fatalf("target 1: %+v", res)
	}
	// Target n equals full cover.
	a := eng.KCoverTarget([]int32{0}, 6, 9, 1<<20)
	b := eng.KCoverFrom(0, 1, 9, 1<<20)
	if a != b {
		t.Fatalf("target n %+v != full cover %+v", a, b)
	}
}

func TestEnginePanics(t *testing.T) {
	g := graph.Cycle(6)
	eng := NewEngine(g, EngineOptions{})
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: no panic", name)
			}
		}()
		f()
	}
	expectPanic("empty starts", func() { eng.KCover(nil, 1, 10) })
	expectPanic("start out of range", func() { eng.KCover([]int32{6}, 1, 10) })
	expectPanic("negative start", func() { eng.KCover([]int32{-1}, 1, 10) })
	expectPanic("bad target", func() { eng.KCoverTarget([]int32{0}, 7, 1, 10) })
	expectPanic("bad marked length", func() { eng.KHit([]int32{0}, make([]bool, 5), 1, 10) })
	expectPanic("isolated vertex", func() {
		b := graph.NewBuilder(3)
		b.AddEdge(0, 1)
		NewEngine(b.Build("isolated"), EngineOptions{})
	})
}

func TestEngineConcurrentRuns(t *testing.T) {
	// One Engine, many concurrent runs: the pooled state must not be
	// shared across simultaneous callers.
	g := graph.Torus2D(8)
	eng := NewEngine(g, EngineOptions{})
	want := eng.KCoverFrom(0, 4, 11, 1<<20)
	var wg sync.WaitGroup
	errs := make(chan string, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if got := eng.KCoverFrom(0, 4, 11, 1<<20); got != want {
				errs <- "concurrent run diverged"
			}
		}()
	}
	wg.Wait()
	close(errs)
	if msg, ok := <-errs; ok {
		t.Fatal(msg)
	}
}

func TestEngineSweepSanity(t *testing.T) {
	// More walkers cover no later, on average, across seeds (sanity of the
	// whole pipeline at a mid-size scale, padded mode).
	g := graph.Torus2D(12)
	eng := NewEngine(g, EngineOptions{})
	mean := func(k int) float64 {
		total := int64(0)
		const trials = 60
		for i := 0; i < trials; i++ {
			res := eng.KCoverFrom(0, k, uint64(1000+i), 1<<22)
			if !res.Covered {
				t.Fatal("truncated")
			}
			total += res.Steps
		}
		return float64(total) / trials
	}
	c1, c8 := mean(1), mean(8)
	if c8 >= c1 {
		t.Fatalf("8 walkers no faster than 1: %v vs %v", c8, c1)
	}
}
