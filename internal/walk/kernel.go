package walk

import (
	"fmt"
	"math"

	"manywalks/internal/graph"
)

// This file defines the open Kernel abstraction: a Kernel is any per-step
// transition law the engine can compile against a fixed graph into
// specialized per-vertex sampling tables (see compileKernel at the bottom
// and the step kernels in engine.go / kernelstep.go). Kernels are small
// immutable values registered in the kernel registry (kernelregistry.go),
// which gives every family a ParseKernel spelling; the engine refuses to
// compile a kernel whose spelling does not round-trip, because the serving
// layer keys compiled-engine caches and coalescing buckets on String().
//
// The five built-in kernels and their transition laws from vertex v (degree
// d, edge weights w_i, N(v) the adjacency list):
//
//	Uniform            next ~ Uniform(N(v)) — the paper's simple walk.
//	Lazy(α)            stay at v with probability α, else Uniform(N(v));
//	                   the standard theoretical normalization (α = 1/2
//	                   removes periodicity) and the law markov.FromWalk
//	                   analyzes.
//	Weighted           next = i-th neighbor with probability w_i / Σw —
//	                   biased walks on weighted graphs; on an unweighted
//	                   graph this coincides with Uniform.
//	NoBacktrack        Uniform(N(v) \ {previous vertex}); degree-1 vertices
//	                   fall back to backtracking and the first step is
//	                   Uniform(N(v)). Not a Markov chain on vertices (its
//	                   state is the directed edge), so it has no
//	                   markov.ChainForKernel image.
//	MetropolisUniform  Metropolis–Hastings with uniform target: propose
//	                   u ~ Uniform(N(v)), accept with min(1, d_v/d_u), else
//	                   stay. Its stationary distribution is uniform over
//	                   vertices regardless of the degree sequence.
//
// The first out-of-enum family, the long-range multi-hopper (hopper.go),
// demonstrates the dense-support path: its rows reach vertices far outside
// the neighbor list, compiled into a row-bank of alias columns with memory
// accounting.

// Support classifies where a kernel's transition rows live, which selects
// the compilation strategy.
type Support uint8

const (
	// SupportSparse rows stay within the CSR neighbor list plus an optional
	// stay-at-v outcome: total table size is O(m) and needs no accounting.
	SupportSparse Support = iota
	// SupportDense rows may reach out-of-neighborhood vertices (up to n-1
	// outcomes per vertex); the compiler builds a row-bank of alias columns
	// under maxDenseKernelBytes. Dense kernels must bound their own table
	// in Validate (see DenseTableFits) so serving layers can reject
	// oversized requests instead of panicking in NewEngine.
	SupportDense
)

// Kernel is a walk step law. Implementations are small immutable values; a
// new family must be registered with RegisterKernel so its spelling parses,
// or the engine will refuse to compile it.
//
// The contract, checked per-kernel by the conformance suite
// (kernelconformance_test.go):
//
//   - ParseKernel(k.String()) must return a kernel rendering the identical
//     string (canonical spelling; load-bearing for engine-cache keys,
//     coalescer buckets, and cluster shape routing).
//   - TransitionProbs rows must be non-negative and sum to 1 within 1e-12.
//   - Validate must reject every configuration the compiler would refuse,
//     including dense tables over the memory cap.
type Kernel interface {
	// Name is the registry family name ("uniform", "lazy", "hopper", ...).
	Name() string
	// String renders the canonical ParseKernel-able spelling of this
	// kernel, parameters included.
	String() string
	// Validate checks the kernel's parameters against a graph.
	Validate(g *graph.Graph) error
	// TransitionProbs returns the kernel's transition distribution out of v
	// as parallel (vertices, probabilities) slices; a possible stay-at-v
	// outcome is included explicitly. It is the reference law the alias
	// compiler, the legacy loops, and markov.ChainForKernel all share, so
	// the layers cannot drift apart. Kernels that are not Markov chains on
	// vertices (no-backtrack) return an error.
	TransitionProbs(g *graph.Graph, v int32) ([]int32, []float64, error)
	// Support classifies the rows (sparse neighbor-list vs dense).
	Support() Support
}

// KernelOrUniform normalizes a possibly-nil kernel to the default Uniform
// law. Every boundary that accepts a caller-supplied Kernel (engine
// construction, the serving layer's submits, markov chains) funnels through
// it, so the zero value of any Kernel-carrying options struct still selects
// the paper's walk.
func KernelOrUniform(k Kernel) Kernel {
	if k == nil {
		return Uniform()
	}
	return k
}

// ---------------------------------------------------------------------------
// Built-in kernels

type uniformKernel struct{}

// Uniform returns the simple-random-walk kernel (the default).
func Uniform() Kernel { return uniformKernel{} }

func (uniformKernel) Name() string                { return "uniform" }
func (uniformKernel) String() string              { return "uniform" }
func (uniformKernel) Support() Support            { return SupportSparse }
func (uniformKernel) Validate(*graph.Graph) error { return nil }

func (uniformKernel) TransitionProbs(g *graph.Graph, v int32) ([]int32, []float64, error) {
	nb, d, err := rowNeighbors(g, v)
	if err != nil {
		return nil, nil, err
	}
	p := make([]float64, d)
	for i := range p {
		p[i] = 1 / float64(d)
	}
	return nb, p, nil
}

type lazyKernel struct {
	alpha float64
}

// Lazy returns the lazy walk kernel with stay probability alpha in [0,1).
func Lazy(alpha float64) Kernel { return lazyKernel{alpha: alpha} }

func (k lazyKernel) Name() string     { return "lazy" }
func (k lazyKernel) String() string   { return fmt.Sprintf("lazy:%g", k.alpha) }
func (k lazyKernel) Support() Support { return SupportSparse }

func (k lazyKernel) Validate(*graph.Graph) error {
	if k.alpha < 0 || k.alpha >= 1 || math.IsNaN(k.alpha) {
		return fmt.Errorf("walk: lazy stay probability %v must be in [0,1)", k.alpha)
	}
	return nil
}

func (k lazyKernel) TransitionProbs(g *graph.Graph, v int32) ([]int32, []float64, error) {
	if err := k.Validate(g); err != nil {
		return nil, nil, err
	}
	nb, d, err := rowNeighbors(g, v)
	if err != nil {
		return nil, nil, err
	}
	out := make([]int32, 0, d+1)
	p := make([]float64, 0, d+1)
	move := (1 - k.alpha) / float64(d)
	for _, u := range nb {
		out = append(out, u)
		p = append(p, move)
	}
	if k.alpha > 0 {
		out = append(out, v)
		p = append(p, k.alpha)
	}
	return out, p, nil
}

type weightedKernel struct{}

// Weighted returns the edge-weight-proportional kernel.
func Weighted() Kernel { return weightedKernel{} }

func (weightedKernel) Name() string                { return "weighted" }
func (weightedKernel) String() string              { return "weighted" }
func (weightedKernel) Support() Support            { return SupportSparse }
func (weightedKernel) Validate(*graph.Graph) error { return nil }

func (weightedKernel) TransitionProbs(g *graph.Graph, v int32) ([]int32, []float64, error) {
	nb, d, err := rowNeighbors(g, v)
	if err != nil {
		return nil, nil, err
	}
	total := g.WeightedDegree(v)
	p := make([]float64, d)
	for i := range p {
		p[i] = g.EdgeWeight(v, i) / total
	}
	return nb, p, nil
}

type noBacktrackKernel struct{}

// NoBacktrack returns the non-backtracking kernel.
func NoBacktrack() Kernel { return noBacktrackKernel{} }

func (noBacktrackKernel) Name() string                { return "nobacktrack" }
func (noBacktrackKernel) String() string              { return "nobacktrack" }
func (noBacktrackKernel) Support() Support            { return SupportSparse }
func (noBacktrackKernel) Validate(*graph.Graph) error { return nil }

func (noBacktrackKernel) TransitionProbs(*graph.Graph, int32) ([]int32, []float64, error) {
	return nil, nil, fmt.Errorf("walk: the no-backtrack kernel is not a Markov chain on vertices (its state is the directed edge)")
}

type metropolisKernel struct{}

// MetropolisUniform returns the Metropolis kernel targeting the uniform
// distribution.
func MetropolisUniform() Kernel { return metropolisKernel{} }

func (metropolisKernel) Name() string                { return "metropolis" }
func (metropolisKernel) String() string              { return "metropolis" }
func (metropolisKernel) Support() Support            { return SupportSparse }
func (metropolisKernel) Validate(*graph.Graph) error { return nil }

func (metropolisKernel) TransitionProbs(g *graph.Graph, v int32) ([]int32, []float64, error) {
	nb, d, err := rowNeighbors(g, v)
	if err != nil {
		return nil, nil, err
	}
	out := make([]int32, 0, d+1)
	p := make([]float64, 0, d+1)
	propose := 1 / float64(d)
	stay := 0.0
	for _, u := range nb {
		if u == v { // self-loop proposal: trivially accepted
			stay += propose
			continue
		}
		du := float64(g.Degree(u))
		acc := 1.0
		if du > float64(d) {
			acc = float64(d) / du
		}
		out = append(out, u)
		p = append(p, propose*acc)
		stay += propose * (1 - acc)
	}
	if stay > 1e-15 {
		out = append(out, v)
		p = append(p, stay)
	}
	return out, p, nil
}

// rowNeighbors is the shared preamble of every TransitionProbs: the
// neighbor list and its length, with the isolated-vertex rejection.
func rowNeighbors(g *graph.Graph, v int32) ([]int32, int, error) {
	nb := g.Neighbors(v)
	if len(nb) == 0 {
		return nil, 0, fmt.Errorf("walk: vertex %d is isolated", v)
	}
	return nb, len(nb), nil
}

// ---------------------------------------------------------------------------
// Alias-table compilation

// aliasTable is a compiled per-vertex alias sampler: vertex v owns columns
// [off, off+count) where meta[v] packs off<<32 | count (mirroring the
// engine's vtx metadata). Sampling consumes one 64-bit draw: the low 32
// bits pick a column by Lemire reduction to [0, count), and the high 32
// bits decide between the column's two outcomes — out if high32 < thresh,
// alt otherwise. Column probabilities are therefore quantized to multiples
// of 2^-32 of the column mass; the resulting per-vertex distribution error
// is below 2^-32, far under Monte Carlo resolution, and the quantization is
// deterministic so results stay bit-for-bit reproducible.
type aliasTable struct {
	meta   []uint64 // off<<32 | count, per vertex
	out    []int32
	alt    []int32
	thresh []uint32
}

// bytes reports the table's memory footprint — the accounting the dense
// row-bank compiler runs against maxDenseKernelBytes.
func (at *aliasTable) bytes() int64 {
	return int64(len(at.meta))*8 + int64(len(at.out))*aliasColumnBytes
}

// aliasColumnBytes is the cost of one alias column: out + alt (int32 each)
// plus thresh (uint32).
const aliasColumnBytes = 12

// maxDenseKernelBytes caps the compiled row-bank of a dense-support kernel
// (128 MiB). A dense row holds up to n-1 columns per vertex, so the bank
// grows as n² and an uncapped compile could silently eat the machine on a
// large served graph; sparse kernels are O(m) and never accounted.
const maxDenseKernelBytes = int64(1) << 27

// DenseTableFits reports whether a worst-case dense kernel table (n-1
// columns per vertex) on g fits under the compiler's memory cap. Dense
// kernels call it from Validate so the serving layer rejects oversized
// graph × kernel requests with an error instead of panicking in NewEngine.
func DenseTableFits(g *graph.Graph) error {
	n := int64(g.N())
	worst := n*8 + n*(n-1)*aliasColumnBytes
	if worst > maxDenseKernelBytes {
		return fmt.Errorf("walk: dense kernel table on n=%d needs up to %d MiB, over the %d MiB cap",
			n, worst>>20, maxDenseKernelBytes>>20)
	}
	return nil
}

// buildAliasTable compiles kernel k's transition law on g into an alias
// table via Vose's algorithm, run per vertex with index-ordered worklists so
// compilation is deterministic. It is the sparse-support path: rows are
// neighbor lists (plus stay), so the table is O(m) and needs no accounting.
func buildAliasTable(g *graph.Graph, k Kernel) (*aliasTable, error) {
	n := g.N()
	at := &aliasTable{meta: make([]uint64, n)}
	for v := 0; v < n; v++ {
		outs, probs, err := k.TransitionProbs(g, int32(v))
		if err != nil {
			return nil, err
		}
		if err := appendAliasRow(at, v, outs, probs); err != nil {
			return nil, err
		}
	}
	return at, nil
}

// buildAliasBank compiles a dense-support kernel into the same alias layout
// with running memory accounting: compilation stops with a descriptive
// error the moment the bank would cross maxDenseKernelBytes, instead of
// allocating n² columns first and failing later.
func buildAliasBank(g *graph.Graph, k Kernel) (*aliasTable, error) {
	n := g.N()
	at := &aliasTable{meta: make([]uint64, n)}
	budget := maxDenseKernelBytes - int64(n)*8
	for v := 0; v < n; v++ {
		outs, probs, err := k.TransitionProbs(g, int32(v))
		if err != nil {
			return nil, err
		}
		if used := int64(len(at.out)+len(outs)) * aliasColumnBytes; used > budget {
			return nil, fmt.Errorf("walk: kernel %s row-bank exceeds the %d MiB cap at vertex %d of %d (%d columns so far)",
				k, maxDenseKernelBytes>>20, v, n, len(at.out))
		}
		if err := appendAliasRow(at, v, outs, probs); err != nil {
			return nil, err
		}
	}
	return at, nil
}

// appendAliasRow runs Vose's construction for one vertex's row and appends
// its columns, guarding the uint32 offset packing.
func appendAliasRow(at *aliasTable, v int, outs []int32, probs []float64) error {
	off := len(at.out)
	cols := len(outs)
	if int64(off) > math.MaxUint32 {
		return fmt.Errorf("walk: alias table offset overflows uint32 at vertex %d", v)
	}
	at.meta[v] = uint64(uint32(off))<<32 | uint64(uint32(cols))
	colOut, colAlt, colThresh := voseColumns(outs, probs)
	at.out = append(at.out, colOut...)
	at.alt = append(at.alt, colAlt...)
	at.thresh = append(at.thresh, colThresh...)
	return nil
}

// voseColumns runs Vose's alias construction for one vertex: K = len(outs)
// columns, each holding a primary outcome, an alias outcome, and the 32-bit
// acceptance threshold for the primary.
func voseColumns(outs []int32, probs []float64) (out, alt []int32, thresh []uint32) {
	k := len(outs)
	out = make([]int32, k)
	alt = make([]int32, k)
	thresh = make([]uint32, k)
	scaled := make([]float64, k)
	var small, large []int
	for i, p := range probs {
		scaled[i] = p * float64(k)
		if scaled[i] < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for i := range out {
		out[i] = outs[i]
		alt[i] = outs[i]
		thresh[i] = math.MaxUint32
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		l := large[len(large)-1]
		small = small[:len(small)-1]
		out[s] = outs[s]
		alt[s] = outs[l]
		thresh[s] = quantize32(scaled[s])
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			large = large[:len(large)-1]
			small = append(small, l)
		}
	}
	// Leftover columns (numerical residue) keep probability 1 of their own
	// outcome: out == alt, threshold saturated.
	return out, alt, thresh
}

// quantize32 maps a probability in [0,1] to the 32-bit acceptance threshold
// used by the alias sampler. Probabilities within rounding distance of 1
// saturate (Round(p·2³²) can reach 2³², which would wrap uint32 to 0).
func quantize32(p float64) uint32 {
	if p <= 0 {
		return 0
	}
	t := math.Round(math.Ldexp(p, 32))
	if t >= math.Ldexp(1, 32) {
		return math.MaxUint32
	}
	return uint32(t)
}

// ---------------------------------------------------------------------------
// The kernel compiler

// progKind selects the engine's step strategy for a compiled kernel. It is
// deliberately internal: the open Kernel interface is the public surface,
// and every registry kernel without a dedicated fast path compiles to
// progAlias, inheriting the alias sampler's draw discipline (and so the
// engine's bit-for-bit determinism) for free.
type progKind uint8

const (
	progUniform     progKind = iota // reservoir-banked pad/CSR fast path
	progLazy                        // stay threshold + uniform fast path
	progAlias                       // compiled alias table/bank
	progNoBacktrack                 // prev-lane CSR sampler
)

// kernelProgram is the engine's compiled form of a kernel: exactly one of
// the sampling strategies below is active, chosen by kind.
type kernelProgram struct {
	kind progKind
	// stayThresh is the Lazy kernel's stay decision: stay iff a fresh
	// 64-bit draw is < stayThresh. Quantizing α to a multiple of 2^-64
	// loses less than float64 resolution.
	stayThresh uint64
	// at is the alias table of a progAlias kernel (Weighted,
	// MetropolisUniform, and every registry kernel such as the hoppers).
	at *aliasTable
	// needPrev marks kernels whose state includes the previous vertex.
	needPrev bool
}

// compileKernel builds the engine's program for kernel k on g. The Uniform
// kernel returns a trivial program (its sampling uses the engine's padded /
// CSR fast path unchanged); Lazy and NoBacktrack keep their dedicated step
// kernels; everything else — the built-in alias kernels and every
// registered family — compiles through TransitionProbs into an alias
// table, routed by Support() to the sparse path or to the accounted dense
// row-bank. Kernels whose spelling does not round-trip through ParseKernel
// are rejected up front: an unparseable spelling could alias distinct laws
// into one engine-cache entry or coalescer bucket downstream.
func compileKernel(g *graph.Graph, k Kernel) (kernelProgram, error) {
	k = KernelOrUniform(k)
	if err := k.Validate(g); err != nil {
		return kernelProgram{}, err
	}
	if err := checkKernelRegistered(k); err != nil {
		return kernelProgram{}, err
	}
	switch kk := k.(type) {
	case uniformKernel:
		return kernelProgram{kind: progUniform}, nil
	case lazyKernel:
		return kernelProgram{kind: progLazy, stayThresh: stayThreshold(kk.alpha)}, nil
	case noBacktrackKernel:
		return kernelProgram{kind: progNoBacktrack, needPrev: true}, nil
	}
	var at *aliasTable
	var err error
	if k.Support() == SupportDense {
		at, err = buildAliasBank(g, k)
	} else {
		at, err = buildAliasTable(g, k)
	}
	if err != nil {
		return kernelProgram{}, err
	}
	return kernelProgram{kind: progAlias, at: at}, nil
}

// checkKernelRegistered enforces the round-trip contract at compile time:
// ParseKernel(k.String()) must yield a kernel with the identical spelling.
// This is what guarantees the serving layer's String()-keyed caches and
// buckets can never alias two distinct laws.
func checkKernelRegistered(k Kernel) error {
	s := k.String()
	back, err := ParseKernel(s)
	if err != nil {
		return fmt.Errorf("walk: kernel %q (%T) is not registered: its spelling does not parse back (%v); register the family with RegisterKernel", s, k, err)
	}
	if back.String() != s {
		return fmt.Errorf("walk: kernel %q (%T) does not round-trip: ParseKernel respells it %q", s, k, back.String())
	}
	return nil
}

// stayThreshold converts a stay probability to the 64-bit comparison
// threshold used by the lazy step kernel.
func stayThreshold(alpha float64) uint64 {
	if alpha <= 0 {
		return 0
	}
	// alpha < 1 is enforced by Validate; Ldexp(alpha, 64) < 2^64 can still
	// round up to 2^64 for alpha within 2^-54 of 1, so clamp.
	t := math.Ldexp(alpha, 64)
	if t >= math.Ldexp(1, 64) {
		return math.MaxUint64
	}
	return uint64(t)
}

// KernelTablePlan reports what compiling a kernel against a graph would
// build — the memory-accounting view cmd/graphinfo surfaces. Producing the
// plan walks every TransitionProbs row (the same work the compiler does),
// so it costs one compile, not one allocation.
type KernelTablePlan struct {
	Kernel  string // canonical spelling
	Dense   bool   // routed to the accounted row-bank
	Rows    int    // vertices with compiled rows (0 for table-free kernels)
	Columns int64  // total alias columns
	Bytes   int64  // table footprint in bytes
	Cap     int64  // memory cap applied (0 when uncapped: sparse or table-free)
}

// PlanKernelTable computes the compiled-table plan of kernel k on g.
// Kernels with dedicated step paths (uniform, lazy, no-backtrack) report a
// table-free plan.
func PlanKernelTable(g *graph.Graph, k Kernel) (KernelTablePlan, error) {
	k = KernelOrUniform(k)
	prog, err := compileKernel(g, k)
	if err != nil {
		return KernelTablePlan{}, err
	}
	plan := KernelTablePlan{Kernel: k.String(), Dense: k.Support() == SupportDense}
	if plan.Dense {
		plan.Cap = maxDenseKernelBytes
	}
	if prog.at != nil {
		plan.Rows = len(prog.at.meta)
		plan.Columns = int64(len(prog.at.out))
		plan.Bytes = prog.at.bytes()
	}
	return plan, nil
}
