package walk

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"manywalks/internal/graph"
)

// This file defines the WalkKernel abstraction: a Kernel names one of the
// supported per-step transition laws, and the engine compiles it against a
// fixed graph into specialized per-vertex sampling tables (see compile at
// the bottom and the step kernels in engine.go).
//
// The five kernels and their transition laws from vertex v (degree d, edge
// weights w_i, N(v) the adjacency list):
//
//	Uniform            next ~ Uniform(N(v)) — the paper's simple walk.
//	Lazy(α)            stay at v with probability α, else Uniform(N(v));
//	                   the standard theoretical normalization (α = 1/2
//	                   removes periodicity) and the law markov.FromWalk
//	                   analyzes.
//	Weighted           next = i-th neighbor with probability w_i / Σw —
//	                   biased walks on weighted graphs; on an unweighted
//	                   graph this coincides with Uniform.
//	NoBacktrack        Uniform(N(v) \ {previous vertex}); degree-1 vertices
//	                   fall back to backtracking and the first step is
//	                   Uniform(N(v)). Not a Markov chain on vertices (its
//	                   state is the directed edge), so it has no
//	                   markov.ChainForKernel image.
//	MetropolisUniform  Metropolis–Hastings with uniform target: propose
//	                   u ~ Uniform(N(v)), accept with min(1, d_v/d_u), else
//	                   stay. Its stationary distribution is uniform over
//	                   vertices regardless of the degree sequence.
type Kernel struct {
	Kind KernelKind
	// Alpha is the stay probability of the Lazy kernel, in [0,1); other
	// kinds ignore it.
	Alpha float64
}

// KernelKind enumerates the supported step laws. The zero value is
// KernelUniform, so a zero EngineOptions still selects the paper's walk.
type KernelKind uint8

const (
	KernelUniform KernelKind = iota
	KernelLazy
	KernelWeighted
	KernelNoBacktrack
	KernelMetropolisUniform
)

// Uniform returns the simple-random-walk kernel (the default).
func Uniform() Kernel { return Kernel{Kind: KernelUniform} }

// Lazy returns the lazy walk kernel with stay probability alpha in [0,1).
func Lazy(alpha float64) Kernel { return Kernel{Kind: KernelLazy, Alpha: alpha} }

// Weighted returns the edge-weight-proportional kernel.
func Weighted() Kernel { return Kernel{Kind: KernelWeighted} }

// NoBacktrack returns the non-backtracking kernel.
func NoBacktrack() Kernel { return Kernel{Kind: KernelNoBacktrack} }

// MetropolisUniform returns the Metropolis kernel targeting the uniform
// distribution.
func MetropolisUniform() Kernel { return Kernel{Kind: KernelMetropolisUniform} }

// String renders the kernel in the form ParseKernel accepts.
func (k Kernel) String() string {
	switch k.Kind {
	case KernelUniform:
		return "uniform"
	case KernelLazy:
		return fmt.Sprintf("lazy:%g", k.Alpha)
	case KernelWeighted:
		return "weighted"
	case KernelNoBacktrack:
		return "nobacktrack"
	case KernelMetropolisUniform:
		return "metropolis"
	}
	return fmt.Sprintf("kernel(%d)", k.Kind)
}

// Validate checks the kernel parameters against a graph.
func (k Kernel) Validate(g *graph.Graph) error {
	switch k.Kind {
	case KernelUniform, KernelWeighted, KernelNoBacktrack, KernelMetropolisUniform:
	case KernelLazy:
		if k.Alpha < 0 || k.Alpha >= 1 || math.IsNaN(k.Alpha) {
			return fmt.Errorf("walk: lazy stay probability %v must be in [0,1)", k.Alpha)
		}
	default:
		return fmt.Errorf("walk: unknown kernel kind %d", k.Kind)
	}
	return nil
}

// ParseKernel parses the -kernel flag syntax: "uniform", "lazy" (α = 1/2),
// "lazy:α", "weighted", "nobacktrack", "metropolis".
func ParseKernel(s string) (Kernel, error) {
	name, arg, hasArg := strings.Cut(strings.TrimSpace(strings.ToLower(s)), ":")
	switch name {
	case "uniform", "simple", "":
		return Uniform(), nil
	case "lazy":
		alpha := 0.5
		if hasArg {
			v, err := strconv.ParseFloat(arg, 64)
			if err != nil {
				return Kernel{}, fmt.Errorf("walk: bad lazy parameter %q: %w", arg, err)
			}
			alpha = v
		}
		if alpha < 0 || alpha >= 1 || math.IsNaN(alpha) {
			return Kernel{}, fmt.Errorf("walk: lazy stay probability %v must be in [0,1)", alpha)
		}
		return Lazy(alpha), nil
	case "weighted":
		return Weighted(), nil
	case "nobacktrack", "nb":
		return NoBacktrack(), nil
	case "metropolis", "metropolis-uniform", "mh":
		return MetropolisUniform(), nil
	}
	return Kernel{}, fmt.Errorf("walk: unknown kernel %q (want uniform, lazy[:α], weighted, nobacktrack, metropolis)", s)
}

// Kernels lists one representative of every kernel kind, for sweeps and
// parameterized tests.
func Kernels() []Kernel {
	return []Kernel{Uniform(), Lazy(0.5), Weighted(), NoBacktrack(), MetropolisUniform()}
}

// TransitionProbs returns kernel k's transition distribution out of v as
// parallel (vertices, probabilities) slices; a possible stay-at-v outcome is
// included explicitly. It is the reference the alias-table compiler, the
// legacy loops, and markov.ChainForKernel all share, so the three layers
// cannot drift apart. NoBacktrack has no vertex-state distribution and
// returns an error.
func (k Kernel) TransitionProbs(g *graph.Graph, v int32) ([]int32, []float64, error) {
	if err := k.Validate(g); err != nil {
		return nil, nil, err
	}
	nb := g.Neighbors(v)
	d := len(nb)
	if d == 0 {
		return nil, nil, fmt.Errorf("walk: vertex %d is isolated", v)
	}
	switch k.Kind {
	case KernelUniform:
		p := make([]float64, d)
		for i := range p {
			p[i] = 1 / float64(d)
		}
		return nb, p, nil
	case KernelLazy:
		out := make([]int32, 0, d+1)
		p := make([]float64, 0, d+1)
		move := (1 - k.Alpha) / float64(d)
		for _, u := range nb {
			out = append(out, u)
			p = append(p, move)
		}
		if k.Alpha > 0 {
			out = append(out, v)
			p = append(p, k.Alpha)
		}
		return out, p, nil
	case KernelWeighted:
		total := g.WeightedDegree(v)
		p := make([]float64, d)
		for i := range p {
			p[i] = g.EdgeWeight(v, i) / total
		}
		return nb, p, nil
	case KernelMetropolisUniform:
		out := make([]int32, 0, d+1)
		p := make([]float64, 0, d+1)
		propose := 1 / float64(d)
		stay := 0.0
		for _, u := range nb {
			if u == v { // self-loop proposal: trivially accepted
				stay += propose
				continue
			}
			du := float64(g.Degree(u))
			acc := 1.0
			if du > float64(d) {
				acc = float64(d) / du
			}
			out = append(out, u)
			p = append(p, propose*acc)
			stay += propose * (1 - acc)
		}
		if stay > 1e-15 {
			out = append(out, v)
			p = append(p, stay)
		}
		return out, p, nil
	case KernelNoBacktrack:
		return nil, nil, fmt.Errorf("walk: the no-backtrack kernel is not a Markov chain on vertices (its state is the directed edge)")
	}
	return nil, nil, fmt.Errorf("walk: unknown kernel kind %d", k.Kind)
}

// aliasTable is a compiled per-vertex alias sampler: vertex v owns columns
// [off, off+count) where meta[v] packs off<<32 | count (mirroring the
// engine's vtx metadata). Sampling consumes one 64-bit draw: the low 32
// bits pick a column by Lemire reduction to [0, count), and the high 32
// bits decide between the column's two outcomes — out if high32 < thresh,
// alt otherwise. Column probabilities are therefore quantized to multiples
// of 2^-32 of the column mass; the resulting per-vertex distribution error
// is below 2^-32, far under Monte Carlo resolution, and the quantization is
// deterministic so results stay bit-for-bit reproducible.
type aliasTable struct {
	meta   []uint64 // off<<32 | count, per vertex
	out    []int32
	alt    []int32
	thresh []uint32
}

// buildAliasTable compiles kernel k's transition law on g into an alias
// table via Vose's algorithm, run per vertex with index-ordered worklists so
// compilation is deterministic.
func buildAliasTable(g *graph.Graph, k Kernel) (*aliasTable, error) {
	n := g.N()
	at := &aliasTable{meta: make([]uint64, n)}
	for v := 0; v < n; v++ {
		outs, probs, err := k.TransitionProbs(g, int32(v))
		if err != nil {
			return nil, err
		}
		off := len(at.out)
		cols := len(outs)
		at.meta[v] = uint64(uint32(off))<<32 | uint64(uint32(cols))
		colOut, colAlt, colThresh := voseColumns(outs, probs)
		at.out = append(at.out, colOut...)
		at.alt = append(at.alt, colAlt...)
		at.thresh = append(at.thresh, colThresh...)
	}
	return at, nil
}

// voseColumns runs Vose's alias construction for one vertex: K = len(outs)
// columns, each holding a primary outcome, an alias outcome, and the 32-bit
// acceptance threshold for the primary.
func voseColumns(outs []int32, probs []float64) (out, alt []int32, thresh []uint32) {
	k := len(outs)
	out = make([]int32, k)
	alt = make([]int32, k)
	thresh = make([]uint32, k)
	scaled := make([]float64, k)
	var small, large []int
	for i, p := range probs {
		scaled[i] = p * float64(k)
		if scaled[i] < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for i := range out {
		out[i] = outs[i]
		alt[i] = outs[i]
		thresh[i] = math.MaxUint32
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		l := large[len(large)-1]
		small = small[:len(small)-1]
		out[s] = outs[s]
		alt[s] = outs[l]
		thresh[s] = quantize32(scaled[s])
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			large = large[:len(large)-1]
			small = append(small, l)
		}
	}
	// Leftover columns (numerical residue) keep probability 1 of their own
	// outcome: out == alt, threshold saturated.
	return out, alt, thresh
}

// quantize32 maps a probability in [0,1] to the 32-bit acceptance threshold
// used by the alias sampler. Probabilities within rounding distance of 1
// saturate (Round(p·2³²) can reach 2³², which would wrap uint32 to 0).
func quantize32(p float64) uint32 {
	if p <= 0 {
		return 0
	}
	t := math.Round(math.Ldexp(p, 32))
	if t >= math.Ldexp(1, 32) {
		return math.MaxUint32
	}
	return uint32(t)
}

// kernelProgram is the engine's compiled form of a kernel: exactly one of
// the sampling strategies below is active, chosen by kind.
type kernelProgram struct {
	kind KernelKind
	// stayThresh is the Lazy kernel's stay decision: stay iff a fresh
	// 64-bit draw is < stayThresh. Quantizing α to a multiple of 2^-64
	// loses less than float64 resolution.
	stayThresh uint64
	// at is the alias table for Weighted and MetropolisUniform.
	at *aliasTable
	// needPrev marks kernels whose state includes the previous vertex.
	needPrev bool
}

// compileKernel builds the engine's program for kernel k on g. The Uniform
// kernel returns a trivial program; its sampling uses the engine's padded /
// CSR fast path unchanged.
func compileKernel(g *graph.Graph, k Kernel) (kernelProgram, error) {
	if err := k.Validate(g); err != nil {
		return kernelProgram{}, err
	}
	prog := kernelProgram{kind: k.Kind}
	switch k.Kind {
	case KernelUniform:
	case KernelLazy:
		prog.stayThresh = stayThreshold(k.Alpha)
	case KernelWeighted, KernelMetropolisUniform:
		at, err := buildAliasTable(g, k)
		if err != nil {
			return kernelProgram{}, err
		}
		prog.at = at
	case KernelNoBacktrack:
		prog.needPrev = true
	}
	return prog, nil
}

// stayThreshold converts a stay probability to the 64-bit comparison
// threshold used by the lazy step kernel.
func stayThreshold(alpha float64) uint64 {
	if alpha <= 0 {
		return 0
	}
	// alpha < 1 is enforced by Validate; Ldexp(alpha, 64) < 2^64 can still
	// round up to 2^64 for alpha within 2^-54 of 1, so clamp.
	t := math.Ldexp(alpha, 64)
	if t >= math.Ldexp(1, 64) {
		return math.MaxUint64
	}
	return uint64(t)
}
