package walk

import (
	"testing"

	"manywalks/internal/graph"
	"manywalks/internal/rng"
)

func TestNBWalkerNeverBacktracks(t *testing.T) {
	g := graph.Torus2D(5) // degree 4 everywhere: backtracking never forced
	w := NewNBWalker(g, 0, rng.New(1))
	prev := w.Pos()
	cur := w.Step()
	for i := 0; i < 5000; i++ {
		next := w.Step()
		if next == prev {
			t.Fatalf("backtracked %d -> %d -> %d at step %d", prev, cur, next, i)
		}
		if !g.HasEdge(cur, next) {
			t.Fatalf("illegal move %d -> %d", cur, next)
		}
		prev, cur = cur, next
	}
}

func TestNBWalkerDegreeOneFallsBack(t *testing.T) {
	// On a path the endpoints force a reversal.
	g := graph.Path(3)
	w := NewNBWalker(g, 1, rng.New(2))
	first := w.Step() // to 0 or 2
	second := w.Step()
	if second != 1 {
		t.Fatalf("endpoint must bounce back to 1, got %d (via %d)", second, first)
	}
}

func TestNBWalkerUniformAmongAllowed(t *testing.T) {
	// At a degree-4 vertex with a known previous vertex, the three allowed
	// neighbors must be equally likely.
	g := graph.Torus2D(5)
	counts := map[int32]int{}
	const trials = 30000
	for i := 0; i < trials; i++ {
		w := NewNBWalker(g, 0, rng.NewStream(3, uint64(i)))
		w.prev = g.Neighbors(0)[0] // pretend we came from the first neighbor
		counts[w.Step()]++
	}
	if len(counts) != 3 {
		t.Fatalf("allowed targets %d, want 3", len(counts))
	}
	for v, c := range counts {
		frac := float64(c) / trials
		if frac < 0.30 || frac > 0.37 {
			t.Fatalf("neighbor %d frequency %.3f", v, frac)
		}
	}
}

func TestNBCoverCycleIsBallistic(t *testing.T) {
	// On the cycle the non-backtracking walk commits to a direction and
	// covers in exactly n-1 steps, versus Θ(n²) for the simple walk.
	n := 64
	g := graph.Cycle(n)
	for trial := 0; trial < 20; trial++ {
		res := NBCoverFrom(g, 0, rng.NewStream(5, uint64(trial)), 1<<20)
		if !res.Covered || res.Steps != int64(n-1) {
			t.Fatalf("NB cycle cover %+v, want exactly %d", res, n-1)
		}
	}
}

func TestNBCoverBeatsSimpleOnTorus(t *testing.T) {
	g := graph.Torus2D(8)
	opts := MCOptions{Trials: 400, Seed: 7, MaxSteps: 1 << 22}
	nb, err := EstimateNBCoverTime(g, 0, 1, opts)
	if err != nil {
		t.Fatal(err)
	}
	simple, err := EstimateCoverTime(g, 0, opts)
	if err != nil {
		t.Fatal(err)
	}
	if nb.Mean() >= simple.Mean() {
		t.Fatalf("NB %v not faster than simple %v", nb.Mean(), simple.Mean())
	}
}

func TestKNBCoverScalesWithK(t *testing.T) {
	g := graph.Torus2D(8)
	opts := MCOptions{Trials: 300, Seed: 9, MaxSteps: 1 << 22}
	c1, err := EstimateNBCoverTime(g, 0, 1, opts)
	if err != nil {
		t.Fatal(err)
	}
	c8, err := EstimateNBCoverTime(g, 0, 8, opts)
	if err != nil {
		t.Fatal(err)
	}
	speedup := c1.Mean() / c8.Mean()
	if speedup < 4 || speedup > 12 {
		t.Fatalf("NB 8-walk speed-up %v, want near 8", speedup)
	}
}

func TestNBValidation(t *testing.T) {
	g := graph.Cycle(5)
	if _, err := EstimateNBCoverTime(g, 0, 0, MCOptions{Trials: 2, MaxSteps: 10}); err == nil {
		t.Fatal("k=0 accepted")
	}
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	if _, err := EstimateNBCoverTime(b.Build("disc"), 0, 1, MCOptions{Trials: 2, MaxSteps: 10}); err == nil {
		t.Fatal("disconnected accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for bad start")
		}
	}()
	NewNBWalker(g, 9, rng.New(1))
}
