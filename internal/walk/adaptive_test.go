package walk

import (
	"fmt"
	"slices"
	"testing"

	"manywalks/internal/graph"
	"manywalks/internal/rng"
)

// adaptiveTestPrecision is the grid's stop rule: loose enough to stop
// before the budget on the small test families, tight enough to need more
// than the minimum trials.
var adaptiveTestPrecision = Precision{RTol: 0.15, Confidence: 0.95, MinTrials: 8, Wave: 16}

// adaptiveOutcome flattens an adaptive run for bit-level comparison.
type adaptiveOutcome struct {
	rounds    []int64
	stopped   []bool
	waves     int
	converged bool
	est       Estimate
}

func adaptiveOutcomeOf(t *testing.T, res GroupedResult, err error) adaptiveOutcome {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
	return adaptiveOutcome{
		rounds:    slices.Clone(res.Rounds),
		stopped:   slices.Clone(res.Stopped),
		waves:     res.Waves,
		converged: res.Converged,
		est:       EstimateFromTrials(res),
	}
}

func (o adaptiveOutcome) equal(p adaptiveOutcome) bool {
	return slices.Equal(o.rounds, p.rounds) && slices.Equal(o.stopped, p.stopped) &&
		o.waves == p.waves && o.converged == p.converged && o.est == p.est
}

// TestAdaptiveStopDeterministicGrid is the sequential-stopping determinism
// contract: on a heavy-tailed barbell cover and an expander hitting
// workload, for every kernel and a Workers × BatchRounds grid, the
// adaptive run's stop wave, trial count, per-trial samples, and estimate
// are bit-identical to the Workers=1 default-batch baseline. The stop
// decision is a pure function of the samples, and the samples are
// invariant under parallelism — so the whole run is.
func TestAdaptiveStopDeterministicGrid(t *testing.T) {
	barbell, bc := graph.Barbell(17)
	expander := graph.MargulisExpander(6)
	marked := make([]bool, expander.N())
	marked[20] = true

	workloads := []struct {
		name string
		run  func(eng *Engine, opts MCOptions) (GroupedResult, error)
		g    *graph.Graph
	}{
		{"barbellCover", func(eng *Engine, opts MCOptions) (GroupedResult, error) {
			return runCoverTrials(eng, opts, commonStarts(bc, 4), 0, nil)
		}, barbell},
		{"expanderHit", func(eng *Engine, opts MCOptions) (GroupedResult, error) {
			return runHitTrials(eng, opts, commonStarts(0, 4), marked)
		}, expander},
	}
	for _, wl := range workloads {
		for _, kern := range Kernels() {
			var baseline adaptiveOutcome
			haveBaseline := false
			for _, workers := range []int{1, 4} {
				for _, batch := range []int{0, 5} {
					name := fmt.Sprintf("%s/%s/w%d/b%d", wl.name, kern, workers, batch)
					t.Run(name, func(t *testing.T) {
						eng := NewEngine(wl.g, EngineOptions{Workers: 1, BatchRounds: batch, Kernel: kern})
						opts := MCOptions{
							Trials:    1024,
							Workers:   workers,
							Seed:      4242,
							MaxSteps:  1 << 18,
							Precision: adaptiveTestPrecision,
						}
						res, err := wl.run(eng, opts)
						got := adaptiveOutcomeOf(t, res, err)
						if !got.converged {
							t.Fatalf("adaptive run did not converge within %d trials (waves %d)", opts.Trials, got.waves)
						}
						if len(got.rounds) >= opts.Trials {
							t.Fatalf("adaptive run used the whole budget (%d trials): no early stop to test", len(got.rounds))
						}
						if !haveBaseline {
							baseline, haveBaseline = got, true
							return
						}
						if !got.equal(baseline) {
							t.Fatalf("adaptive run diverged from w1 baseline:\n got  waves=%d trials=%d est=%+v\n want waves=%d trials=%d est=%+v",
								got.waves, len(got.rounds), got.est, baseline.waves, len(baseline.rounds), baseline.est)
						}
					})
				}
			}
		}
	}
}

// TestAdaptiveIsPrefixOfFixed pins the schedule identity: the trials an
// adaptive run executes are exactly the first trials of the fixed-count
// run with the same seed — same global indices, same streams, same
// samples.
func TestAdaptiveIsPrefixOfFixed(t *testing.T) {
	g, c := graph.Barbell(17)
	eng := NewEngine(g, EngineOptions{Workers: 1})
	opts := MCOptions{Trials: 1024, Workers: 1, Seed: 11, MaxSteps: 1 << 18}
	fixed, err := runCoverTrials(eng, opts, commonStarts(c, 4), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	aopts := opts
	aopts.Precision = adaptiveTestPrecision
	adaptive, err := runCoverTrials(eng, aopts, commonStarts(c, 4), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	n := len(adaptive.Rounds)
	if n == 0 || n >= opts.Trials {
		t.Fatalf("adaptive ran %d of %d trials: expected an early stop", n, opts.Trials)
	}
	if !slices.Equal(adaptive.Rounds, fixed.Rounds[:n]) || !slices.Equal(adaptive.Stopped, fixed.Stopped[:n]) {
		t.Fatal("adaptive trials are not a prefix of the fixed-count schedule")
	}
}

// TestPrecisionZeroValueFixedCount is the regression pinning the zero
// value: every estimator with Precision{} must reproduce the fixed-count
// grouped pass byte for byte (same samples, no wave accounting).
func TestPrecisionZeroValueFixedCount(t *testing.T) {
	g := graph.MargulisExpander(6)
	opts := MCOptions{Trials: 48, Workers: 2, Seed: 77, MaxSteps: 1 << 18}

	// Reference: the pre-adaptive code path, a single RunGrouped pass with
	// no TrialBase.
	eng := NewEngine(g, EngineOptions{Workers: 1})
	wantCover, err := eng.RunGrouped(GroupedRunSpec{
		Trials: opts.Trials, Starts: commonStarts(0, 3), Seed: opts.Seed,
		MaxRounds: opts.MaxSteps, Workers: opts.Workers,
	}, NewGroupCoverObserver(0))
	if err != nil {
		t.Fatal(err)
	}
	gotCover, err := EstimateKCoverTime(g, 0, 3, opts)
	if err != nil {
		t.Fatal(err)
	}
	if want := EstimateFromTrials(wantCover); gotCover != want {
		t.Fatalf("zero-value cover estimate %+v != fixed-count reference %+v", gotCover, want)
	}
	if gotCover.Waves != 0 || gotCover.Converged {
		t.Fatalf("zero-value estimate carries adaptive accounting: %+v", gotCover)
	}

	marked := make([]bool, g.N())
	marked[20] = true
	wantHit, err := eng.RunGrouped(GroupedRunSpec{
		Trials: opts.Trials, Starts: []int32{0}, Seed: opts.Seed,
		MaxRounds: opts.MaxSteps, Workers: opts.Workers,
	}, NewGroupHitObserver(marked))
	if err != nil {
		t.Fatal(err)
	}
	gotHit, err := EstimateHittingTime(g, 0, 20, opts)
	if err != nil {
		t.Fatal(err)
	}
	if want := EstimateFromTrials(wantHit); gotHit != want {
		t.Fatalf("zero-value hitting estimate %+v != fixed-count reference %+v", gotHit, want)
	}

	starts := []int32{0, 11, 30}
	wantMeet, err := eng.RunGrouped(GroupedRunSpec{
		Trials: opts.Trials, Starts: starts, Seed: opts.Seed,
		MaxRounds: opts.MaxSteps, Workers: opts.Workers,
	}, NewGroupCollisionObserver(false))
	if err != nil {
		t.Fatal(err)
	}
	gotMeet, err := EstimateKMeetingTime(g, starts, opts)
	if err != nil {
		t.Fatal(err)
	}
	if want := EstimateFromTrials(wantMeet); gotMeet != want {
		t.Fatalf("zero-value meeting estimate %+v != fixed-count reference %+v", gotMeet, want)
	}

	wantCoal, err := eng.RunGrouped(GroupedRunSpec{
		Trials: opts.Trials, Starts: starts, Seed: opts.Seed,
		MaxRounds: opts.MaxSteps, Workers: opts.Workers,
	}, NewGroupCollisionObserver(true))
	if err != nil {
		t.Fatal(err)
	}
	gotCoal, _, err := EstimateKCoalescenceTime(g, starts, opts)
	if err != nil {
		t.Fatal(err)
	}
	if want := EstimateFromTrials(wantCoal); gotCoal != want {
		t.Fatalf("zero-value coalescence estimate %+v != fixed-count reference %+v", gotCoal, want)
	}
}

// TestAdaptiveEstimatorsConverge drives every estimator entry point with a
// loose tolerance and checks the adaptive accounting: converged, fewer
// trials than the budget, at least MinTrials, and the OnWave stream
// well-formed (monotone trials, final Done).
func TestAdaptiveEstimatorsConverge(t *testing.T) {
	g := graph.MargulisExpander(6)
	prec := Precision{RTol: 0.15, Wave: 16}
	var waves []WaveStat
	opts := MCOptions{
		Trials: 1024, Workers: 2, Seed: 5, MaxSteps: 1 << 18,
		Precision: prec,
		OnWave:    func(ws WaveStat) { waves = append(waves, ws) },
	}
	est, err := EstimateKCoverTime(g, 0, 8, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !est.Converged {
		t.Fatalf("estimate did not converge: %+v", est)
	}
	if est.Summary.N >= opts.Trials || est.Summary.N < 8 {
		t.Fatalf("adaptive trial count %d out of expected range [8,%d)", est.Summary.N, opts.Trials)
	}
	if est.Waves != len(waves) {
		t.Fatalf("estimate reports %d waves, OnWave saw %d", est.Waves, len(waves))
	}
	for i, ws := range waves {
		if ws.Wave != i {
			t.Fatalf("wave %d reported index %d", i, ws.Wave)
		}
		if i > 0 && ws.Trials <= waves[i-1].Trials {
			t.Fatalf("wave %d trials %d not increasing", i, ws.Trials)
		}
		if ws.Done != (i == len(waves)-1) {
			t.Fatalf("wave %d Done=%v at position %d/%d", i, ws.Done, i, len(waves))
		}
	}
	last := waves[len(waves)-1]
	if !last.Converged || last.RelCI > 0.15 {
		t.Fatalf("final wave not converged: %+v", last)
	}

	// The stationary-placement estimator draws placements off the trial
	// streams; adaptive waves must reproduce them at the global index.
	aest, err := EstimateKCoverTimeStationary(g, 8, MCOptions{
		Trials: 1024, Workers: 1, Seed: 5, MaxSteps: 1 << 18, Precision: prec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !aest.Converged {
		t.Fatalf("stationary estimate did not converge: %+v", aest)
	}

	// Meeting + coalescence: adaptive stop watches the coalescence
	// samples; the meet estimate covers the same trials.
	coal, meet, err := EstimateKCoalescenceTime(g, []int32{0, 17, 29}, MCOptions{
		Trials: 2048, Workers: 2, Seed: 9, MaxSteps: 1 << 20, Precision: Precision{RTol: 0.2, Wave: 32},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !coal.Converged {
		t.Fatalf("coalescence estimate did not converge: %+v", coal)
	}
	if meet.Summary.N != coal.Summary.N {
		t.Fatalf("meet covers %d trials, coalescence %d", meet.Summary.N, coal.Summary.N)
	}
}

// TestAdaptiveStationaryPlacementMatchesFixed pins the Place derivation
// under TrialBase: the adaptive stationary run's samples are a prefix of
// the fixed run's (placement draws come off the same global streams).
func TestAdaptiveStationaryPlacementMatchesFixed(t *testing.T) {
	g := graph.MargulisExpander(6)
	eng := NewEngine(g, EngineOptions{Workers: 1})
	place := func(_ int, r *rng.Source, starts []int32) {
		copy(starts, StationaryStarts(g, len(starts), r))
	}
	opts := MCOptions{Trials: 256, Workers: 1, Seed: 31, MaxSteps: 1 << 18}
	fixed, err := runCoverTrials(eng, opts, make([]int32, 6), 0, place)
	if err != nil {
		t.Fatal(err)
	}
	aopts := opts
	aopts.Precision = Precision{RTol: 0.15, Wave: 16}
	adaptive, err := runCoverTrials(eng, aopts, make([]int32, 6), 0, place)
	if err != nil {
		t.Fatal(err)
	}
	n := len(adaptive.Rounds)
	if n == 0 || n >= opts.Trials {
		t.Fatalf("adaptive ran %d of %d trials: expected an early stop", n, opts.Trials)
	}
	if !slices.Equal(adaptive.Rounds, fixed.Rounds[:n]) {
		t.Fatal("adaptive stationary trials are not a prefix of the fixed schedule")
	}
}

// TestAdaptiveStateClamps pins the wave arithmetic: partial final waves at
// the MaxTrials boundary, the MinTrials floor, and the normalized
// defaults.
func TestAdaptiveStateClamps(t *testing.T) {
	st, err := NewAdaptiveState(Precision{RTol: 1e-12, Wave: 10, MinTrials: 4}, 25)
	if err != nil {
		t.Fatal(err)
	}
	spans := [][2]int{}
	for !st.Done() {
		lo, hi := st.WaveSpan()
		spans = append(spans, [2]int{lo, hi})
		rounds := make([]int64, hi-lo)
		stopped := make([]bool, hi-lo)
		for i := range rounds {
			rounds[i] = int64(1000 + (lo+i)*37%100) // spread: never converges at 1e-12
			stopped[i] = true
		}
		st.Fold(rounds, stopped)
	}
	want := [][2]int{{0, 10}, {10, 20}, {20, 25}}
	if !slices.Equal(spans, want) {
		t.Fatalf("wave spans %v, want %v", spans, want)
	}
	if st.Converged() {
		t.Fatal("impossible tolerance reported converged")
	}
	if st.Trials() != 25 || st.Waves() != 3 {
		t.Fatalf("trials %d waves %d, want 25/3", st.Trials(), st.Waves())
	}

	// MinTrials floor: identical samples meet any rtol immediately, but
	// the stop may not fire before the floor.
	st, err = NewAdaptiveState(Precision{RTol: 0.5, Wave: 2, MinTrials: 6}, 100)
	if err != nil {
		t.Fatal(err)
	}
	folds := 0
	for !st.Done() {
		lo, hi := st.WaveSpan()
		rounds := make([]int64, hi-lo)
		stopped := make([]bool, hi-lo)
		for i := range rounds {
			rounds[i] = 500
			stopped[i] = true
		}
		st.Fold(rounds, stopped)
		folds++
	}
	if st.Trials() != 6 || !st.Converged() {
		t.Fatalf("MinTrials floor: stopped at %d trials (converged %v), want 6", st.Trials(), st.Converged())
	}

	// Defaults flow in via normalization.
	st, err = NewAdaptiveState(Precision{RTol: 0.05}, 400)
	if err != nil {
		t.Fatal(err)
	}
	p := st.Precision()
	if p.Confidence != 0.95 || p.Wave != 32 || p.MinTrials != 8 || p.MaxTrials != 400 {
		t.Fatalf("normalized precision %+v", p)
	}

	if _, err := NewAdaptiveState(Precision{}, 10); err == nil {
		t.Fatal("disabled precision accepted")
	}
	if _, err := NewAdaptiveState(Precision{RTol: 0.1, Confidence: 1.5}, 10); err == nil {
		t.Fatal("invalid confidence accepted")
	}
}
