// Kernel conformance suite: the table-driven contract every registered
// kernel family must satisfy to live in the registry. New families (built
// in or third party) get these checks for free — the tables iterate
// walk.Kernels(), so registering a kernel is what opts it in. Lives in the
// external test package so the exact-anchor leg can import internal/markov
// (which imports internal/walk for the Kernel type).
package walk_test

import (
	"math"
	"strings"
	"testing"

	"manywalks/internal/graph"
	"manywalks/internal/markov"
	"manywalks/internal/walk"
)

// conformanceGraph is small enough for the dense hopper bank yet irregular
// enough (clique glued to a path, non-trivially weighted) to exercise every
// kernel's row logic: mixed degrees, a weight gradient, and diameter > 1.
func conformanceGraph() *graph.Graph {
	return graph.Reweight(graph.Lollipop(6, 5), func(u, v int32) float64 {
		return 1 + float64((u*3+v)%4)
	})
}

// TestKernelConformanceRoundTrip: every registered kernel's String() must
// re-parse to an equal kernel with the identical spelling — the contract
// the engine compiler enforces at run time (checkKernelRegistered) and the
// serving stack's cache keys and shape routing depend on.
func TestKernelConformanceRoundTrip(t *testing.T) {
	for _, k := range walk.Kernels() {
		t.Run(k.String(), func(t *testing.T) {
			rt, err := walk.ParseKernel(k.String())
			if err != nil {
				t.Fatalf("ParseKernel(%q): %v", k.String(), err)
			}
			if rt != k {
				t.Fatalf("round-trip of %q gave %#v, want %#v", k.String(), rt, k)
			}
			if rt.String() != k.String() {
				t.Fatalf("respelled %q as %q", k.String(), rt.String())
			}
		})
	}
}

// TestKernelConformanceAliases: every family alias parses to the same
// kernel as the canonical name (exercised with the family example's
// parameter spelling where one is required).
func TestKernelConformanceAliases(t *testing.T) {
	for _, f := range walk.KernelFamilies() {
		canonical := f.Example.String()
		arg, has := strings.CutPrefix(canonical, f.Name)
		if !has {
			t.Fatalf("family %q example spells itself %q", f.Name, canonical)
		}
		for _, alias := range f.Aliases {
			got, err := walk.ParseKernel(alias + arg)
			if err != nil {
				t.Errorf("alias %q of family %q: %v", alias, f.Name, err)
				continue
			}
			if got != f.Example {
				t.Errorf("alias %q parsed to %v, want %v", alias+arg, got, f.Example)
			}
		}
	}
}

// TestKernelConformanceStochastic: TransitionProbs rows are genuine
// probability distributions — non-negative entries over in-range vertices
// summing to 1 within 1e-12 — for every kernel that has a vertex-space
// chain image (no-backtrack declares itself edge-space by erroring).
func TestKernelConformanceStochastic(t *testing.T) {
	g := conformanceGraph()
	for _, k := range walk.Kernels() {
		t.Run(k.String(), func(t *testing.T) {
			if _, _, err := k.TransitionProbs(g, 0); err != nil {
				t.Skipf("no vertex-space chain image: %v", err)
			}
			for v := 0; v < g.N(); v++ {
				outs, probs, err := k.TransitionProbs(g, int32(v))
				if err != nil {
					t.Fatalf("row %d: %v", v, err)
				}
				if len(outs) != len(probs) || len(outs) == 0 {
					t.Fatalf("row %d: %d outcomes, %d probabilities", v, len(outs), len(probs))
				}
				sum := 0.0
				for i, p := range probs {
					if p < 0 || math.IsNaN(p) {
						t.Fatalf("row %d: probability %v at slot %d", v, p, i)
					}
					if outs[i] < 0 || int(outs[i]) >= g.N() {
						t.Fatalf("row %d: outcome %d out of range", v, outs[i])
					}
					sum += p
				}
				if math.Abs(sum-1) > 1e-12 {
					t.Fatalf("row %d sums to %v", v, sum)
				}
			}
		})
	}
}

// TestKernelConformanceDeterminism: results must be bit-for-bit identical
// across every (Workers, BatchRounds) configuration — the engine-wide
// guarantee each registered kernel inherits from the draw discipline.
func TestKernelConformanceDeterminism(t *testing.T) {
	g := conformanceGraph()
	configs := []walk.EngineOptions{
		{Workers: 1},
		{Workers: 2, BatchRounds: 5},
		{Workers: 4, BatchRounds: 64},
		{Workers: 3, BatchRounds: 1},
	}
	marked := make([]bool, g.N())
	marked[g.N()-1] = true
	for _, k := range walk.Kernels() {
		t.Run(k.String(), func(t *testing.T) {
			opts := configs[0]
			opts.Kernel = k
			base := walk.NewEngine(g, opts)
			wantCover := base.KCoverFrom(0, 3, 42, 1<<20)
			wantHit := base.KHit([]int32{0, 1}, marked, 7, 1<<20)
			if !wantCover.Covered || !wantHit.Hit {
				t.Fatalf("baseline truncated: cover %+v, hit %+v", wantCover, wantHit)
			}
			for _, opts := range configs[1:] {
				opts.Kernel = k
				eng := walk.NewEngine(g, opts)
				if got := eng.KCoverFrom(0, 3, 42, 1<<20); got != wantCover {
					t.Fatalf("cover at %+v: %+v != %+v", opts, got, wantCover)
				}
				if got := eng.KHit([]int32{0, 1}, marked, 7, 1<<20); got != wantHit {
					t.Fatalf("hit at %+v: %+v != %+v", opts, got, wantHit)
				}
			}
		})
	}
}

// TestKernelConformanceExactAnchor: where a chain image exists, the Monte
// Carlo hitting time must agree with the absorbing-chain expectation of
// markov.ChainForKernel — an independent dense-linear-algebra path sharing
// no sampling code with the engine.
func TestKernelConformanceExactAnchor(t *testing.T) {
	g := conformanceGraph()
	var start, target int32 = 0, int32(g.N() - 1)
	for _, k := range walk.Kernels() {
		t.Run(k.String(), func(t *testing.T) {
			if _, _, err := k.TransitionProbs(g, 0); err != nil {
				t.Skipf("no vertex-space chain image: %v", err)
			}
			exact, err := markov.KernelHittingTimeVia(g, k, start, target)
			if err != nil {
				t.Fatal(err)
			}
			est, err := walk.EstimateKernelHittingTime(g, k, start, target,
				walk.MCOptions{Trials: 600, Seed: 9, MaxSteps: 1 << 20})
			if err != nil {
				t.Fatal(err)
			}
			if est.Truncated != 0 {
				t.Fatalf("%d truncated trials", est.Truncated)
			}
			tol := 4 * est.CI95()
			if tol < 1e-9 {
				tol = 1e-9
			}
			if math.Abs(est.Mean()-exact) > tol {
				t.Fatalf("MC %.4f vs exact %.4f (tolerance %.4f)", est.Mean(), exact, tol)
			}
		})
	}
}

// FuzzParseKernel: any string ParseKernel accepts must yield a kernel whose
// canonical spelling re-parses to an equal kernel — the registry-wide
// round-trip invariant, probed beyond the hand-written table.
func FuzzParseKernel(f *testing.F) {
	for _, k := range walk.Kernels() {
		f.Add(k.String())
	}
	f.Add("lazy:0.25")
	f.Add("HOPPER:POW:2")
	f.Add("nb")
	f.Add("hopper:exp:1e-3")
	f.Add("kernel(3)")
	f.Add("hopper:power:-1")
	f.Add("lazy:")
	f.Add("::")
	f.Fuzz(func(t *testing.T, s string) {
		k, err := walk.ParseKernel(s)
		if err != nil {
			return
		}
		if k == nil {
			t.Fatalf("ParseKernel(%q) returned nil kernel without error", s)
		}
		canonical := k.String()
		rt, err := walk.ParseKernel(canonical)
		if err != nil {
			t.Fatalf("ParseKernel(%q) ok but canonical %q rejected: %v", s, canonical, err)
		}
		if rt != k || rt.String() != canonical {
			t.Fatalf("%q: canonical %q re-parsed to %v (%q)", s, canonical, rt, rt.String())
		}
	})
}
