package walk

import (
	"fmt"
	"sync"

	"manywalks/internal/graph"
	"manywalks/internal/rng"
	"manywalks/internal/stats"
)

// NBWalker is a non-backtracking random walker: each step it chooses
// uniformly among the current vertex's neighbors excluding the vertex it
// just came from (falling back to backtracking only at degree-1 vertices).
// Non-backtracking walks are the natural "smarter token" ablation for the
// paper's simple walks: on the cycle they become ballistic (cover in n-1
// steps), and on higher-degree graphs they shave constants off the cover
// time while remaining fully local.
type NBWalker struct {
	g    *graph.Graph
	pos  int32
	prev int32 // -1 before the first step
	r    *rng.Source
}

// NewNBWalker places a non-backtracking walker at start.
func NewNBWalker(g *graph.Graph, start int32, r *rng.Source) *NBWalker {
	if start < 0 || int(start) >= g.N() {
		panic(fmt.Sprintf("walk: start %d out of range", start))
	}
	return &NBWalker{g: g, pos: start, prev: -1, r: r}
}

// Pos returns the current vertex.
func (w *NBWalker) Pos() int32 { return w.pos }

// Step moves the walker and returns the new position.
func (w *NBWalker) Step() int32 {
	nb := w.g.Neighbors(w.pos)
	next := w.pos
	switch {
	case len(nb) == 1:
		next = nb[0]
	case w.prev < 0:
		next = nb[w.r.Intn(len(nb))]
	default:
		// Sample uniformly among the d-1 neighbors that are not prev by
		// drawing from d-1 slots and skipping over prev's position.
		i := w.r.Intn(len(nb) - 1)
		if nb[i] == w.prev {
			i = len(nb) - 1
		}
		next = nb[i]
	}
	w.prev = w.pos
	w.pos = next
	return next
}

// NBCoverFrom runs one non-backtracking walk from start to full cover.
func NBCoverFrom(g *graph.Graph, start int32, r *rng.Source, maxSteps int64) CoverResult {
	n := g.N()
	seen := newVisitSet(n)
	if seen.visit(start) == n {
		return CoverResult{Steps: 0, Covered: true}
	}
	w := NewNBWalker(g, start, r)
	for t := int64(1); t <= maxSteps; t++ {
		if seen.visit(w.Step()) == n {
			return CoverResult{Steps: t, Covered: true}
		}
	}
	return CoverResult{Steps: maxSteps, Covered: false}
}

// KNBCoverFrom runs k non-backtracking walkers from start in synchronized
// rounds until the union of trajectories covers the graph.
func KNBCoverFrom(g *graph.Graph, start int32, k int, r *rng.Source, maxRounds int64) CoverResult {
	if k < 1 {
		panic("walk: k must be >= 1")
	}
	n := g.N()
	seen := newVisitSet(n)
	walkers := make([]*NBWalker, k)
	for i := range walkers {
		walkers[i] = NewNBWalker(g, start, r)
	}
	if seen.visit(start) == n {
		return CoverResult{Steps: 0, Covered: true}
	}
	for t := int64(1); t <= maxRounds; t++ {
		for _, w := range walkers {
			if seen.visit(w.Step()) == n {
				return CoverResult{Steps: t, Covered: true}
			}
		}
	}
	return CoverResult{Steps: maxRounds, Covered: false}
}

// EstimateNBCoverTime estimates the expected k-walker non-backtracking
// cover time from start.
func EstimateNBCoverTime(g *graph.Graph, start int32, k int, opts MCOptions) (Estimate, error) {
	if k < 1 {
		return Estimate{}, fmt.Errorf("walk: k must be >= 1")
	}
	if !g.IsConnected() {
		return Estimate{}, fmt.Errorf("walk: cover time diverges on disconnected graphs")
	}
	var mu sync.Mutex
	truncated := 0
	samples, err := MonteCarlo(opts, func(_ int, r *rng.Source) float64 {
		res := KNBCoverFrom(g, start, k, r, opts.MaxSteps)
		if !res.Covered {
			mu.Lock()
			truncated++
			mu.Unlock()
		}
		return float64(res.Steps)
	})
	if err != nil {
		return Estimate{}, err
	}
	return Estimate{Summary: stats.Summarize(samples), Truncated: truncated}, nil
}
