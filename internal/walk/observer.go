package walk

import (
	"fmt"
)

// This file defines the observer run-loop abstraction: a RunSpec names one
// engine run (starting placement, seed, round budget, stop condition), and a
// set of Observers watches the run through two hooks that together preserve
// the engine's bit-for-bit determinism guarantee:
//
//   - scan: called on each worker after each round's step pass with the
//     shard's fresh positions. A scan may touch only shard-private state
//     (typically appending to a per-shard log), so workers never contend
//     and the sharding cannot influence what is observed.
//   - mergeRound: called at the batch barrier once per round of the batch
//     window, in round order, after every shard has logged the whole
//     window. The merge folds the shard logs into the observer's global
//     state; because it sees rounds in order regardless of how batches
//     partition them, every derived quantity (first visits, meeting
//     rounds, threshold crossings) is exact and independent of Workers
//     and BatchRounds.
//
// Each observer reports satisfiedAt(): the first round its own predicate
// held (full cover, target count, all targets hit, first collision, full
// coalescence, ...), or -1. The RunSpec's StopCondition combines those
// verdicts after every merged round, so the run halts at the exact round
// the condition first held — mid-batch if need be — and no observer state
// past the stop round is ever merged.
//
// The engine recognizes the two hot singleton shapes — one CoverObserver,
// one HitObserver — and runs them through fused shard loops (engine.go)
// that keep the padded/bit-reservoir fast path and the mid-batch early
// exits; every other observer set runs through the generic loop. Both
// paths share the same scan/merge implementations, so there is exactly one
// copy of each observer's logic.

// RunSpec describes one synchronized k-walk run: walker i starts at
// Starts[i] and is driven by the independent stream (Seed, i). The run
// advances rounds until Stop fires or MaxRounds elapse. A nil Stop is
// StopWhenAll().
type RunSpec struct {
	Starts    []int32
	Seed      uint64
	MaxRounds int64
	Stop      StopCondition
}

// RunResult reports how a run ended: the exact round the stop condition
// fired (Stopped true), or the exhausted budget (Stopped false).
type RunResult struct {
	Rounds  int64
	Stopped bool
}

// StopCondition decides when a run halts. It is evaluated after every
// merged round, so the round it returns is exact and independent of the
// engine's batch partitioning. Implementations are provided by this
// package (StopWhenAll, StopWhenAny, RunToHorizon); the interface is
// closed to keep the determinism contract internal.
type StopCondition interface {
	// stop returns the exact round the run should halt at given the
	// observers' satisfaction state, or -1 to continue.
	stop(obs []Observer) int64
}

type stopWhenAll struct{}

func (stopWhenAll) stop(obs []Observer) int64 {
	r := int64(0)
	for _, o := range obs {
		s := o.satisfiedAt()
		if s < 0 {
			return -1
		}
		if s > r {
			r = s
		}
	}
	return r
}

type stopWhenAny struct{}

func (stopWhenAny) stop(obs []Observer) int64 {
	r := int64(-1)
	for _, o := range obs {
		if s := o.satisfiedAt(); s >= 0 && (r < 0 || s < r) {
			r = s
		}
	}
	return r
}

type runToHorizon struct{}

func (runToHorizon) stop([]Observer) int64 { return -1 }

// StopWhenAll halts the run at the first round every observer is
// satisfied (the default).
func StopWhenAll() StopCondition { return stopWhenAll{} }

// StopWhenAny halts the run at the first round any observer is satisfied.
func StopWhenAny() StopCondition { return stopWhenAny{} }

// RunToHorizon never halts early; the run always spends its full
// MaxRounds budget.
func RunToHorizon() StopCondition { return runToHorizon{} }

// Observer watches one engine run. Observers are single-run objects: Run
// rebinds them at the start and their accessors report that run's outcome
// afterwards; concurrent runs need distinct observers. All methods are
// unexported — the set of observers is fixed by this package so the
// determinism contract (shard-private scans, round-ordered merges) cannot
// be broken from outside.
type Observer interface {
	// validate checks the observer's configuration against the run shape.
	validate(n, k int) error
	// reset binds the observer to a fresh run and observes the round-0
	// placement (starts).
	reset(e *Engine, st *runState, starts []int32)
	// preBatch runs before each batch's step phase (single-threaded):
	// per-shard buffers are cleared and, for the cover observer, the
	// merged visited set is copied to the shards.
	preBatch(st *runState)
	// scan is the per-shard hook: called by worker w after round t's step
	// pass with the shard's positions in st.pos[ws.lo:ws.hi]. It may only
	// touch shard-private state.
	scan(st *runState, ws *worker, w int, t int64)
	// beginMerge opens the barrier merge for the batch covering rounds
	// (t0, t0+b]; mergeRound is then called once per round in order.
	beginMerge(st *runState, b int, t0 int64)
	mergeRound(st *runState, t int64)
	// endMerge closes the barrier merge (also after an early stop), at
	// minimum discarding the batch's shard logs.
	endMerge(st *runState)
	// satisfiedAt returns the first round the observer's predicate held,
	// or -1. It is monotone: once set it never changes.
	satisfiedAt() int64
}

// ---------------------------------------------------------------------------
// CoverObserver

// CoverObserver tracks the distinct vertices the k-walk has visited — the
// shared machinery behind full cover, partial cover, first-visit logs,
// coverage profiles, and multi-target searches. Configure before the run:
//
//   - Target: stop threshold on the distinct-visit count (0 selects n,
//     full cover, unless Targets or Thresholds are set).
//   - Targets: explicit vertex set; the observer is satisfied only when
//     every one has been visited, and their per-vertex first-hit rounds
//     are recorded (multi-target search in one pass).
//   - Thresholds: nondecreasing cover fractions in (0,1]; the exact round
//     each fraction was reached is recorded (partial-cover curve in one
//     pass). A fraction α maps to the count target max(1, ⌊α·n⌋),
//     matching EstimatePartialCoverTime.
//   - RecordFirst: record every vertex's first-visit round (the
//     first-visit log / coverage-profile sampler); implied by Targets.
//
// The observer is satisfied at the first round all configured goals hold.
type CoverObserver struct {
	Target      int
	Targets     []int32
	Thresholds  []float64
	RecordFirst bool

	// run state
	n           int
	countTarget int // count goal, 0 if none
	earlyTarget int // pure-count early-exit threshold; -1 when Targets gate satisfaction
	count       int
	seen        []uint64 // borrowed from runState (pooled), word-packed
	probe       []uint8  // lone-worker byte probe (see logNewVisitsBytes)
	sharedSeen  bool     // single worker probes bytes; its log is globally new
	first       []int64
	thrTargets  []int
	thrRounds   []int64
	thrNext     int
	targetIdx   []int8 // 1 for a not-yet-visited target vertex
	targetsLeft int
	satisfied   int64
}

// NewCoverObserver returns a full-cover observer (the KCover workload).
func NewCoverObserver() *CoverObserver { return &CoverObserver{} }

// NewCoverTargetObserver returns an observer satisfied once target
// distinct vertices have been visited.
func NewCoverTargetObserver(target int) *CoverObserver {
	return &CoverObserver{Target: target}
}

// NewFirstVisitObserver returns a full-cover observer that also records
// every vertex's first-visit round (the coverage-profile sampler).
func NewFirstVisitObserver() *CoverObserver {
	return &CoverObserver{RecordFirst: true}
}

// NewPartialCoverObserver returns an observer that records the exact round
// each cover fraction in thresholds was reached and is satisfied at the
// last one.
func NewPartialCoverObserver(thresholds []float64) *CoverObserver {
	return &CoverObserver{Thresholds: thresholds}
}

// NewTargetSetObserver returns an observer satisfied once every vertex of
// targets has been visited, recording per-target first-hit rounds.
func NewTargetSetObserver(targets []int32) *CoverObserver {
	return &CoverObserver{Targets: targets}
}

func (o *CoverObserver) validate(n, k int) error {
	if o.Target < 0 || o.Target > n {
		return fmt.Errorf("walk: cover target %d out of range [1,%d]", o.Target, n)
	}
	for i, f := range o.Thresholds {
		if !(f > 0 && f <= 1) {
			return fmt.Errorf("walk: cover threshold %v must be in (0,1]", f)
		}
		if i > 0 && f < o.Thresholds[i-1] {
			return fmt.Errorf("walk: cover thresholds must be nondecreasing (%v after %v)", f, o.Thresholds[i-1])
		}
	}
	for _, v := range o.Targets {
		if v < 0 || int(v) >= n {
			return fmt.Errorf("walk: target vertex %d out of range [0,%d)", v, n)
		}
	}
	return nil
}

// thresholdTarget maps a cover fraction to its distinct-visit target,
// matching EstimatePartialCoverTime's convention.
func thresholdTarget(alpha float64, n int) int {
	t := int(alpha * float64(n))
	if t < 1 {
		t = 1
	}
	return t
}

func (o *CoverObserver) reset(e *Engine, st *runState, starts []int32) {
	n := e.g.N()
	o.n = n
	o.count = 0
	o.satisfied = -1
	o.seen = st.seen
	o.probe = st.probe
	o.sharedSeen = len(st.ws) == 1

	o.countTarget = o.Target
	if o.countTarget == 0 && len(o.Targets) == 0 && len(o.Thresholds) == 0 {
		o.countTarget = n // default workload: full cover
	}
	o.thrTargets = o.thrTargets[:0]
	o.thrRounds = o.thrRounds[:0]
	o.thrNext = 0
	for _, f := range o.Thresholds {
		o.thrTargets = append(o.thrTargets, thresholdTarget(f, n))
		o.thrRounds = append(o.thrRounds, -1)
	}

	if len(o.Targets) > 0 || o.RecordFirst {
		o.first = make([]int64, n)
		for i := range o.first {
			o.first[i] = -1
		}
	} else {
		o.first = nil
	}
	o.targetIdx = nil
	o.targetsLeft = 0
	if len(o.Targets) > 0 {
		o.targetIdx = make([]int8, n)
		for _, v := range o.Targets {
			if o.targetIdx[v] == 0 {
				o.targetIdx[v] = 1
				o.targetsLeft++
			}
		}
	}

	// The single-worker mid-batch early exit is sound only for pure count
	// goals: count+pending new visits then bounds satisfaction exactly.
	o.earlyTarget = o.countTarget
	for _, t := range o.thrTargets {
		if t > o.earlyTarget {
			o.earlyTarget = t
		}
	}
	if o.targetsLeft > 0 {
		o.earlyTarget = -1
	}

	for _, s := range starts {
		if !testAndSet(o.seen, s) {
			if o.sharedSeen {
				o.probe[s] = 1
			}
			o.noteNew(s, 0)
		}
	}
}

// noteNew records the first visit of v at round t: it is the single
// bookkeeping path shared by the round-0 placement and both merge modes.
func (o *CoverObserver) noteNew(v int32, t int64) {
	o.count++
	if o.first != nil && o.first[v] < 0 {
		o.first[v] = t
	}
	if o.targetIdx != nil && o.targetIdx[v] != 0 {
		o.targetIdx[v] = 0
		o.targetsLeft--
	}
	for o.thrNext < len(o.thrTargets) && o.count >= o.thrTargets[o.thrNext] {
		o.thrRounds[o.thrNext] = t
		o.thrNext++
	}
	if o.satisfied < 0 && o.count >= o.countTarget && o.targetsLeft == 0 && o.thrNext == len(o.thrTargets) {
		o.satisfied = t
	}
}

func (o *CoverObserver) preBatch(st *runState) {
	if !o.sharedSeen {
		for w := range st.ws {
			copy(st.ws[w].seen, o.seen)
		}
	}
}

// scan folds one round's shard frontier into the worker's seen set,
// logging first visits: a lone worker probes the run's flat byte array
// (logNewVisitsBytes — its log is globally new by construction), sharded
// workers probe their private word-packed copies of the merged set.
func (o *CoverObserver) scan(st *runState, ws *worker, _ int, t int64) {
	if o.sharedSeen {
		ws.log = logNewVisitsBytes(st.pos[ws.lo:ws.hi], o.probe, ws.log, t)
		return
	}
	ws.log = logNewVisits(st.pos[ws.lo:ws.hi], ws.seen, ws.log, t)
}

func (o *CoverObserver) beginMerge(st *runState, _ int, _ int64) {
	for w := range st.ws {
		st.ws[w].cur = 0
	}
}

func (o *CoverObserver) mergeRound(st *runState, t int64) {
	if o.sharedSeen {
		// The lone worker marked the merged set itself, so its log is
		// exactly the globally new vertices in round order.
		ws := &st.ws[0]
		log, c := ws.log, ws.cur
		for c < len(log) && log[c].t == t {
			o.noteNew(log[c].v, t)
			c++
		}
		ws.cur = c
		return
	}
	seen := o.seen
	for w := range st.ws {
		ws := &st.ws[w]
		log, c := ws.log, ws.cur
		for c < len(log) && log[c].t == t {
			v := log[c].v
			c++
			if !testAndSet(seen, v) {
				o.noteNew(v, t)
			}
		}
		ws.cur = c
	}
}

func (o *CoverObserver) endMerge(st *runState) { st.resetLogs() }

func (o *CoverObserver) satisfiedAt() int64 { return o.satisfied }

// Count returns the number of distinct vertices visited when the run
// ended.
func (o *CoverObserver) Count() int { return o.count }

// FirstVisits returns each vertex's first-visit round (-1 if unvisited;
// start vertices get 0). It requires RecordFirst or Targets.
func (o *CoverObserver) FirstVisits() []int64 { return o.first }

// ThresholdRounds returns, per configured threshold, the exact round its
// cover fraction was reached (-1 if the run ended first).
func (o *CoverObserver) ThresholdRounds() []int64 { return o.thrRounds }

// TargetHits returns, per configured target vertex, its first-hit round
// (-1 if the run ended first). Duplicate targets share their vertex's
// round.
func (o *CoverObserver) TargetHits() []int64 {
	hits := make([]int64, len(o.Targets))
	for i, v := range o.Targets {
		hits[i] = o.first[v]
	}
	return hits
}

// Profile derives the coverage profile — distinct vertices visited after
// each round, index 0 being the round-0 placement — from the recorded
// first visits, for horizon+1 entries.
func (o *CoverObserver) Profile(horizon int64) []int {
	profile := make([]int, horizon+1)
	for _, f := range o.first {
		if f >= 0 && f <= horizon {
			profile[f]++
		}
	}
	for t := int64(1); t <= horizon; t++ {
		profile[t] += profile[t-1]
	}
	return profile
}

// ---------------------------------------------------------------------------
// HitObserver

// HitObserver watches for any walker standing on a vertex of a marked set,
// reporting the exact hit round, vertex, and walker (ties within a round
// resolve to the lowest walker index). It is the target-set-hit observer
// behind KHit and the netsim walk queries. Marked must have length n; an
// all-false set is allowed and simply never satisfies.
type HitObserver struct {
	Marked []bool

	bitset    []uint64
	none      bool
	cand      []hitCand // per shard: first in-batch hit
	hitRound  int64
	hitVertex int32
	hitWalker int
	satisfied int64
}

type hitCand struct {
	t int64
	v int32
	i int
}

// NewHitObserver returns a hit observer for the marked vertex set.
func NewHitObserver(marked []bool) *HitObserver { return &HitObserver{Marked: marked} }

func (o *HitObserver) validate(n, _ int) error {
	if len(o.Marked) != n {
		return fmt.Errorf("walk: marked length %d != n %d", len(o.Marked), n)
	}
	return nil
}

func (o *HitObserver) reset(e *Engine, st *runState, starts []int32) {
	o.bitset, o.none = compileMarkedBitset(o.Marked, o.bitset)
	o.satisfied, o.hitRound, o.hitVertex, o.hitWalker = -1, -1, -1, -1
	for i, s := range starts {
		if o.Marked[s] {
			o.satisfied, o.hitRound, o.hitVertex, o.hitWalker = 0, 0, s, i
			break
		}
	}
	if cap(o.cand) < len(st.ws) {
		o.cand = make([]hitCand, len(st.ws))
	}
	o.cand = o.cand[:len(st.ws)]
}

func (o *HitObserver) preBatch(*runState) {
	for w := range o.cand {
		o.cand[w] = hitCand{t: -1}
	}
}

// scan records the shard's first in-batch hit; once a shard holds a
// candidate (or the observer is already satisfied) later rounds cost one
// branch.
func (o *HitObserver) scan(st *runState, ws *worker, w int, t int64) {
	if o.satisfied >= 0 || o.cand[w].t >= 0 {
		return
	}
	if ii := scanMarked(st.pos[ws.lo:ws.hi], o.bitset); ii >= 0 {
		o.cand[w] = hitCand{t: t, v: st.pos[ws.lo+ii], i: ws.lo + ii}
	}
}

func (o *HitObserver) beginMerge(*runState, int, int64) {}

func (o *HitObserver) mergeRound(st *runState, t int64) {
	if o.satisfied >= 0 {
		return
	}
	// Shards are ordered by walker range, so the first candidate at t has
	// the lowest walker index.
	for w := range o.cand {
		if o.cand[w].t == t {
			o.satisfied, o.hitRound, o.hitVertex, o.hitWalker = t, t, o.cand[w].v, o.cand[w].i
			return
		}
	}
}

func (o *HitObserver) endMerge(*runState) {}

func (o *HitObserver) satisfiedAt() int64 { return o.satisfied }

// Result converts the observer's outcome into a HitResult, with budget the
// round count to report when no hit occurred.
func (o *HitObserver) Result(budget int64) HitResult {
	if o.satisfied < 0 {
		return HitResult{Rounds: budget, Vertex: -1, Walker: -1}
	}
	return HitResult{Rounds: o.hitRound, Vertex: o.hitVertex, Walker: o.hitWalker, Hit: true}
}

// ---------------------------------------------------------------------------
// CollisionObserver

// CollisionObserver detects walkers occupying the same vertex after a
// synchronized round — the pairwise meeting and coalescence dynamics of
// the k-walk (Dey–Kim–Terlov's collaboration processes). Collisions are
// detected at the batch barrier from per-round position logs, so they are
// exact and independent of Workers/BatchRounds:
//
//   - meeting mode: satisfied at the first round any two walkers collide
//     (walkers sharing a start collide at round 0);
//   - pursuit mode (Focus >= 0): only collisions involving walker Focus
//     count — the paper's hunters-and-prey pursuit with the prey as one
//     walker of the run;
//   - coalescence mode: walkers that have met are merged into one
//     equivalence class (information exchange on contact); satisfied at
//     the round the classes collapse to one.
//
// On bipartite graphs two walkers started on opposite sides can never
// collide under simultaneous moves; callers handle the truncation.
type CollisionObserver struct {
	// Coalesce selects coalescence mode; otherwise the observer is
	// satisfied at the first (Focus-filtered) meeting.
	Coalesce bool
	// Focus restricts meetings to collisions involving this walker index
	// (-1: any pair). Ignored in coalescence mode.
	Focus int

	k           int
	parent      []int32
	groups      int
	stamp       []int64 // per-vertex round of last occupancy
	stampWalker []int32 // first walker on the vertex that round
	posLog      [][]int32
	mergeT0     int64
	meetRound   int64
	meetA       int
	meetB       int
	meetVertex  int32
	coalRound   int64
	satisfied   int64
}

// NewMeetingObserver returns an any-pair meeting observer.
func NewMeetingObserver() *CollisionObserver { return &CollisionObserver{Focus: -1} }

// NewPursuitObserver returns a meeting observer that only counts
// collisions involving walker focus (the prey of a pursuit).
func NewPursuitObserver(focus int) *CollisionObserver { return &CollisionObserver{Focus: focus} }

// NewCoalescenceObserver returns a coalescence observer (it also records
// the first meeting round of the same run).
func NewCoalescenceObserver() *CollisionObserver {
	return &CollisionObserver{Coalesce: true, Focus: -1}
}

func (o *CollisionObserver) validate(_, k int) error {
	if k < 2 {
		return fmt.Errorf("walk: collision observer requires at least 2 walkers, got %d", k)
	}
	if o.Focus >= k || o.Focus < -1 {
		return fmt.Errorf("walk: focus walker %d out of range [0,%d)", o.Focus, k)
	}
	return nil
}

func (o *CollisionObserver) reset(e *Engine, st *runState, starts []int32) {
	n := e.g.N()
	k := len(starts)
	o.k = k
	if cap(o.parent) < k {
		o.parent = make([]int32, k)
	}
	o.parent = o.parent[:k]
	for i := range o.parent {
		o.parent[i] = int32(i)
	}
	o.groups = k
	if cap(o.stamp) < n {
		o.stamp = make([]int64, n)
		o.stampWalker = make([]int32, n)
	}
	o.stamp, o.stampWalker = o.stamp[:n], o.stampWalker[:n]
	for i := range o.stamp {
		o.stamp[i] = -1
	}
	if cap(o.posLog) < len(st.ws) {
		o.posLog = make([][]int32, len(st.ws))
	}
	o.posLog = o.posLog[:len(st.ws)]
	o.meetRound, o.meetA, o.meetB, o.meetVertex = -1, -1, -1, -1
	o.coalRound = -1
	o.satisfied = -1
	for i, s := range starts {
		o.visit(i, s, 0)
	}
}

func (o *CollisionObserver) find(i int32) int32 { return ufFind(o.parent, i) }

// visit processes walker i standing on v at round t, in global walker
// order within the round (the merge iterates shards in order, and shards
// partition the walker array contiguously, so the order — and with it the
// reported pair of a multi-walker pile-up — is independent of sharding).
func (o *CollisionObserver) visit(i int, v int32, t int64) {
	if o.stamp[v] != t {
		o.stamp[v] = t
		o.stampWalker[v] = int32(i)
		return
	}
	j := o.stampWalker[v]
	if o.meetRound < 0 && (o.Focus < 0 || i == o.Focus || int(j) == o.Focus) {
		o.meetRound, o.meetA, o.meetB, o.meetVertex = t, int(j), i, v
		if !o.Coalesce && o.satisfied < 0 {
			o.satisfied = t
		}
	}
	if ra, rb := o.find(j), o.find(int32(i)); ra != rb {
		if ra > rb {
			ra, rb = rb, ra
		}
		o.parent[rb] = ra
		o.groups--
		if o.groups == 1 && o.coalRound < 0 {
			o.coalRound = t
			if o.Coalesce && o.satisfied < 0 {
				o.satisfied = t
			}
		}
	}
}

func (o *CollisionObserver) preBatch(st *runState) {
	for w := range o.posLog {
		o.posLog[w] = o.posLog[w][:0]
	}
}

// scan appends the shard's round-t positions to its private log; all
// collision detection happens at the merge.
func (o *CollisionObserver) scan(st *runState, ws *worker, w int, _ int64) {
	o.posLog[w] = append(o.posLog[w], st.pos[ws.lo:ws.hi]...)
}

func (o *CollisionObserver) beginMerge(_ *runState, _ int, t0 int64) { o.mergeT0 = t0 }

func (o *CollisionObserver) mergeRound(st *runState, t int64) {
	j := int(t - o.mergeT0 - 1)
	for w := range st.ws {
		ws := &st.ws[w]
		size := ws.hi - ws.lo
		seg := o.posLog[w][j*size : (j+1)*size]
		for ii, v := range seg {
			o.visit(ws.lo+ii, v, t)
		}
	}
}

func (o *CollisionObserver) endMerge(*runState) {}

func (o *CollisionObserver) satisfiedAt() int64 { return o.satisfied }

// MeetRound returns the first (Focus-filtered) meeting round, or -1.
func (o *CollisionObserver) MeetRound() int64 { return o.meetRound }

// MeetPair returns the colliding walker pair of the first meeting (-1,-1
// if none); the first element is the walker that reached the vertex
// earlier in walker-index order.
func (o *CollisionObserver) MeetPair() (int, int) { return o.meetA, o.meetB }

// MeetVertex returns the vertex of the first meeting, or -1.
func (o *CollisionObserver) MeetVertex() int32 { return o.meetVertex }

// Groups returns the number of remaining meeting-equivalence classes.
func (o *CollisionObserver) Groups() int { return o.groups }

// CoalescenceRound returns the round the classes collapsed to one, or -1.
func (o *CollisionObserver) CoalescenceRound() int64 { return o.coalRound }

// ---------------------------------------------------------------------------
// Result shapes for the observer-backed Engine wrappers.

// MeetResult reports a pairwise meeting run (KMeetingTime).
type MeetResult struct {
	Rounds           int64 // first meeting round, or the budget if !Met
	WalkerA, WalkerB int   // colliding pair, -1 if none
	Vertex           int32 // meeting vertex, -1 if none
	Met              bool
}

// CoalesceResult reports a coalescence run (KCoalescenceTime).
type CoalesceResult struct {
	Rounds       int64 // full-coalescence round, or the budget if !Coalesced
	FirstMeeting int64 // first meeting round of the same run, -1 if none
	Groups       int   // remaining equivalence classes (1 when coalesced)
	Coalesced    bool
}

// MultiHitResult reports a multi-target search (KHitTargets).
type MultiHitResult struct {
	Rounds   int64   // round the last target was hit, or the budget if !AllHit
	FirstHit []int64 // per-target first-hit round (-1 if not hit in budget)
	AllHit   bool
}

// PartialCoverResult reports a partial-cover-curve run (PartialCoverCurve).
type PartialCoverResult struct {
	Rounds     []int64 // per-threshold: exact round the fraction was reached (-1 if not)
	FinalRound int64   // round the run ended
	Complete   bool    // every threshold was reached within the budget
}
