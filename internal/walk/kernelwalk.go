package walk

import (
	"fmt"
	"sync"

	"manywalks/internal/graph"
	"manywalks/internal/rng"
	"manywalks/internal/stats"
)

// This file holds the legacy (per-walker, shared-RNG) simulators for the
// kernel step laws, extending walk.go's KCoverFromVertices family to every
// kernel. They are the statistical reference baselines the engine is
// validated and benchmarked against: same transition law, straightforward
// sampling through the rng.Source convenience API. They are *not*
// draw-for-draw identical to the engine — bit-level pinning of the engine's
// compiled kernels lives in TestEngineKernelMatchesReplay, which replays
// the documented draw discipline of kernelstep.go — but their estimates
// must agree within Monte Carlo error, which the kernel tests check.

// KernelWalker advances a single walker under an arbitrary kernel. It is
// the generalization of Walker (uniform) and NBWalker (no-backtrack).
type KernelWalker struct {
	g    *graph.Graph
	k    Kernel
	pos  int32
	prev int32 // -1 before the first step; used only by NoBacktrack
	r    *rng.Source
}

// NewKernelWalker places a kernel walker at start. It panics on an invalid
// kernel or start, mirroring NewWalker.
func NewKernelWalker(g *graph.Graph, k Kernel, start int32, r *rng.Source) *KernelWalker {
	k = KernelOrUniform(k)
	if err := k.Validate(g); err != nil {
		panic(err.Error())
	}
	if start < 0 || int(start) >= g.N() {
		panic(fmt.Sprintf("walk: start %d out of range", start))
	}
	return &KernelWalker{g: g, k: k, pos: start, prev: -1, r: r}
}

// Pos returns the current vertex.
func (w *KernelWalker) Pos() int32 { return w.pos }

// Step moves the walker one step under its kernel and returns the new
// position (which may equal the old one for lazy and Metropolis steps).
func (w *KernelWalker) Step() int32 {
	next := kernelStep(w.g, w.k, w.pos, w.prev, w.r)
	w.prev = w.pos
	w.pos = next
	return next
}

// kernelStep samples one transition of kernel k from pos (prev is the
// walker's previous vertex, -1 if none). The built-ins keep their original
// draw behavior exactly (the weighted golden test pins it); any other
// registered kernel falls through to the reference-law sampler below.
func kernelStep(g *graph.Graph, k Kernel, pos, prev int32, r *rng.Source) int32 {
	nb := g.Neighbors(pos)
	d := len(nb)
	switch kk := k.(type) {
	case uniformKernel:
		return nb[r.Intn(d)]
	case lazyKernel:
		if r.Float64() < kk.alpha {
			return pos
		}
		return nb[r.Intn(d)]
	case weightedKernel:
		target := r.Float64() * g.WeightedDegree(pos)
		acc := 0.0
		for i, u := range nb {
			acc += g.EdgeWeight(pos, i)
			if target < acc {
				return u
			}
		}
		return nb[d-1] // numerical residue: clamp to the last neighbor
	case noBacktrackKernel:
		switch {
		case d == 1:
			return nb[0]
		case prev < 0:
			return nb[r.Intn(d)]
		default:
			i := r.Intn(d - 1)
			if nb[i] == prev {
				i = d - 1
			}
			return nb[i]
		}
	case metropolisKernel:
		u := nb[r.Intn(d)]
		if u == pos {
			return u // self-loop proposal is trivially accepted
		}
		du := g.Degree(u)
		if du <= d || r.Float64()*float64(du) < float64(d) {
			return u
		}
		return pos
	}
	// Registry kernels: sample the reference law directly by inverse CDF
	// over the TransitionProbs row. Recomputing the row per step is the
	// point — these loops are the statistical baselines the compiled engine
	// is validated against, so they must not share its tables.
	outs, probs, err := k.TransitionProbs(g, pos)
	if err != nil {
		panic(fmt.Sprintf("walk: kernel %s at %d: %v", k, pos, err))
	}
	target := r.Float64()
	acc := 0.0
	for i, p := range probs {
		acc += p
		if target < acc {
			return outs[i]
		}
	}
	return outs[len(outs)-1] // numerical residue: clamp to the last outcome
}

// KernelCoverFrom runs one single-walker kernel walk from start until every
// vertex has been visited or maxSteps elapse.
func KernelCoverFrom(g *graph.Graph, k Kernel, start int32, r *rng.Source, maxSteps int64) CoverResult {
	n := g.N()
	seen := newVisitSet(n)
	if seen.visit(start) == n {
		return CoverResult{Steps: 0, Covered: true}
	}
	w := NewKernelWalker(g, k, start, r)
	for t := int64(1); t <= maxSteps; t++ {
		if seen.visit(w.Step()) == n {
			return CoverResult{Steps: t, Covered: true}
		}
	}
	return CoverResult{Steps: maxSteps, Covered: false}
}

// KernelKCoverFromVertices runs the synchronized k-walk under an arbitrary
// kernel with the legacy per-walker loop — the kernel generalization of
// KCoverFromVertices, and the baseline for the engine's kernel rows in
// engine_bench_test.go.
func KernelKCoverFromVertices(g *graph.Graph, k Kernel, starts []int32, r *rng.Source, maxRounds int64) CoverResult {
	if len(starts) == 0 {
		panic("walk: k-walk requires at least one walker")
	}
	k = KernelOrUniform(k)
	if err := k.Validate(g); err != nil {
		panic(err.Error())
	}
	n := g.N()
	seen := newVisitSet(n)
	pos := make([]int32, len(starts))
	prev := make([]int32, len(starts))
	for i, s := range starts {
		if s < 0 || int(s) >= n {
			panic(fmt.Sprintf("walk: start %d out of range", s))
		}
		pos[i], prev[i] = s, -1
		if seen.visit(s) == n {
			return CoverResult{Steps: 0, Covered: true}
		}
	}
	for t := int64(1); t <= maxRounds; t++ {
		for i, p := range pos {
			np := kernelStep(g, k, p, prev[i], r)
			prev[i], pos[i] = p, np
			if seen.visit(np) == n {
				return CoverResult{Steps: t, Covered: true}
			}
		}
	}
	return CoverResult{Steps: maxRounds, Covered: false}
}

// KernelKHitFromVertices runs the legacy k-walk under kernel k until some
// walker stands on a marked vertex, or maxRounds elapse — the legacy
// counterpart of Engine.KHit, and the baseline for BenchmarkKHitLegacy.
// Ties within a round resolve to the lowest walker index, matching the
// engine.
func KernelKHitFromVertices(g *graph.Graph, k Kernel, starts []int32, marked []bool, r *rng.Source, maxRounds int64) HitResult {
	if len(starts) == 0 {
		panic("walk: k-walk requires at least one walker")
	}
	if len(marked) != g.N() {
		panic(fmt.Sprintf("walk: marked length %d != n %d", len(marked), g.N()))
	}
	k = KernelOrUniform(k)
	if err := k.Validate(g); err != nil {
		panic(err.Error())
	}
	for i, s := range starts {
		if marked[s] {
			return HitResult{Rounds: 0, Vertex: s, Walker: i, Hit: true}
		}
	}
	pos := make([]int32, len(starts))
	prev := make([]int32, len(starts))
	for i, s := range starts {
		pos[i], prev[i] = s, -1
	}
	for t := int64(1); t <= maxRounds; t++ {
		hit := -1
		for i, p := range pos {
			np := kernelStep(g, k, p, prev[i], r)
			prev[i], pos[i] = p, np
			if hit < 0 && marked[np] {
				hit = i
			}
		}
		if hit >= 0 {
			return HitResult{Rounds: t, Vertex: pos[hit], Walker: hit, Hit: true}
		}
	}
	return HitResult{Rounds: maxRounds, Vertex: -1, Walker: -1}
}

// KHitFromVertices is KernelKHitFromVertices with the uniform kernel — the
// legacy hit-path baseline.
func KHitFromVertices(g *graph.Graph, starts []int32, marked []bool, r *rng.Source, maxRounds int64) HitResult {
	return KernelKHitFromVertices(g, Uniform(), starts, marked, r, maxRounds)
}

// kernelEstimate is the shared Monte Carlo driver for the kernel
// estimators: each trial runs fn on a per-kernel engine and reports
// (value, completed).
func kernelEstimate(opts MCOptions, fn func(trial int, r *rng.Source) (float64, bool)) (Estimate, error) {
	var mu sync.Mutex
	truncated := 0
	samples, err := MonteCarlo(opts, func(trial int, r *rng.Source) float64 {
		v, done := fn(trial, r)
		if !done {
			mu.Lock()
			truncated++
			mu.Unlock()
		}
		return v
	})
	if err != nil {
		return Estimate{}, err
	}
	return Estimate{Summary: stats.Summarize(samples), Truncated: truncated}, nil
}

// EstimateKernelCoverTime estimates the expected single-walk cover time
// from start under kernel k, on the batched engine.
func EstimateKernelCoverTime(g *graph.Graph, k Kernel, start int32, opts MCOptions) (Estimate, error) {
	return EstimateKernelKCoverTime(g, k, start, 1, opts)
}

// EstimateKernelKCoverTime estimates the expected k-walk cover time (in
// rounds) from a common start vertex under kernel kern.
func EstimateKernelKCoverTime(g *graph.Graph, kern Kernel, start int32, k int, opts MCOptions) (Estimate, error) {
	if k < 1 {
		return Estimate{}, fmt.Errorf("walk: k must be >= 1")
	}
	kern = KernelOrUniform(kern)
	if err := kern.Validate(g); err != nil {
		return Estimate{}, err
	}
	if !g.IsConnected() {
		return Estimate{}, fmt.Errorf("walk: cover time diverges on disconnected graphs")
	}
	if err := checkStarts(g, []int32{start}); err != nil {
		return Estimate{}, err
	}
	opts, err := opts.normalized()
	if err != nil {
		return Estimate{}, err
	}
	// Trials fuse into one grouped pass (the generic lane driver steps
	// every kernel; uniform pad-table graphs take the pair-table fast
	// path).
	eng := NewEngine(g, EngineOptions{Workers: 1, Kernel: kern})
	res, err := runCoverTrials(eng, opts, commonStarts(start, k), 0, nil)
	if err != nil {
		return Estimate{}, err
	}
	return EstimateFromTrials(res), nil
}

// EstimateKernelHittingTime estimates h(start, target) under kernel k by
// simulation; the kernel cross-validation tests compare it against the
// absorbing-chain expectation of markov.ChainForKernel.
func EstimateKernelHittingTime(g *graph.Graph, k Kernel, start, target int32, opts MCOptions) (Estimate, error) {
	k = KernelOrUniform(k)
	if err := k.Validate(g); err != nil {
		return Estimate{}, err
	}
	if !g.IsConnected() {
		return Estimate{}, fmt.Errorf("walk: hitting time diverges on disconnected graphs")
	}
	if err := checkStarts(g, []int32{start, target}); err != nil {
		return Estimate{}, err
	}
	opts, err := opts.normalized()
	if err != nil {
		return Estimate{}, err
	}
	eng := NewEngine(g, EngineOptions{Workers: 1, Kernel: k})
	marked := make([]bool, g.N())
	marked[target] = true
	res, err := runHitTrials(eng, opts, []int32{start}, marked)
	if err != nil {
		return Estimate{}, err
	}
	return EstimateFromTrials(res), nil
}
