package walk

import (
	"fmt"
	"sync"

	"manywalks/internal/graph"
	"manywalks/internal/rng"
	"manywalks/internal/stats"
)

// PartialCoverFrom runs a k-walk from start until a fraction alpha of the
// vertices has been visited (α=1 is full cover). The paper's linear-speed-up
// proofs hinge on the last few vertices dominating the cover time; partial
// cover times expose that structure directly.
func PartialCoverFrom(g *graph.Graph, start int32, k int, alpha float64, r *rng.Source, maxRounds int64) CoverResult {
	if alpha <= 0 || alpha > 1 {
		panic("walk: alpha must be in (0,1]")
	}
	n := g.N()
	target := int(alpha * float64(n))
	if target < 1 {
		target = 1
	}
	seen := newVisitSet(n)
	pos := make([]int32, k)
	for i := range pos {
		pos[i] = start
	}
	if seen.visit(start) >= target {
		return CoverResult{Steps: 0, Covered: true}
	}
	for t := int64(1); t <= maxRounds; t++ {
		for i, p := range pos {
			nb := g.Neighbors(p)
			np := nb[r.Intn(len(nb))]
			pos[i] = np
			if seen.visit(np) >= target {
				return CoverResult{Steps: t, Covered: true}
			}
		}
	}
	return CoverResult{Steps: maxRounds, Covered: false}
}

// EstimatePartialCoverTime estimates the expected α-partial k-walk cover
// time from start.
func EstimatePartialCoverTime(g *graph.Graph, start int32, k int, alpha float64, opts MCOptions) (Estimate, error) {
	if k < 1 {
		return Estimate{}, fmt.Errorf("walk: k must be >= 1")
	}
	if alpha <= 0 || alpha > 1 {
		return Estimate{}, fmt.Errorf("walk: alpha must be in (0,1]")
	}
	if !g.IsConnected() {
		return Estimate{}, fmt.Errorf("walk: cover time diverges on disconnected graphs")
	}
	eng := NewEngine(g, EngineOptions{Workers: 1})
	n := g.N()
	target := int(alpha * float64(n))
	if target < 1 {
		target = 1
	}
	starts := make([]int32, k)
	for i := range starts {
		starts[i] = start
	}
	var mu sync.Mutex
	truncated := 0
	samples, err := MonteCarlo(opts, func(_ int, r *rng.Source) float64 {
		res := eng.KCoverTarget(starts, target, r.Uint64(), opts.MaxSteps)
		if !res.Covered {
			mu.Lock()
			truncated++
			mu.Unlock()
		}
		return float64(res.Steps)
	})
	if err != nil {
		return Estimate{}, err
	}
	return Estimate{Summary: stats.Summarize(samples), Truncated: truncated}, nil
}

// LastVertexFrom runs a single walk to full cover and returns the identity
// of the last vertex covered (and the cover time). The distribution of the
// last vertex concentrates on the far side of the start — the structure
// Matthews-style arguments exploit.
func LastVertexFrom(g *graph.Graph, start int32, r *rng.Source, maxSteps int64) (last int32, steps int64, covered bool) {
	n := g.N()
	seen := newVisitSet(n)
	seen.visit(start)
	last = start
	if seen.count == n {
		return last, 0, true
	}
	w := NewWalker(g, start, r)
	for t := int64(1); t <= maxSteps; t++ {
		v := w.Step()
		before := seen.count
		if seen.visit(v) != before {
			last = v
			if seen.count == n {
				return last, t, true
			}
		}
	}
	return last, maxSteps, false
}

// MeetingTimeFrom runs two independent walks from u and v stepping in
// synchronized rounds and returns the first round at which they occupy the
// same vertex (checked after both have moved). The hunter/prey pursuit of
// the paper's introduction is exactly this process. On bipartite graphs
// walks started on opposite sides can never meet on-node under simultaneous
// moves; callers handle the truncation.
func MeetingTimeFrom(g *graph.Graph, u, v int32, r *rng.Source, maxRounds int64) (int64, bool) {
	if u == v {
		return 0, true
	}
	a := NewWalker(g, u, r)
	b := NewWalker(g, v, r)
	for t := int64(1); t <= maxRounds; t++ {
		if a.Step() == b.Step() {
			return t, true
		}
	}
	return maxRounds, false
}

// EstimateMeetingTime estimates the expected meeting round of two walks.
func EstimateMeetingTime(g *graph.Graph, u, v int32, opts MCOptions) (Estimate, error) {
	if !g.IsConnected() {
		return Estimate{}, fmt.Errorf("walk: meeting time diverges on disconnected graphs")
	}
	var mu sync.Mutex
	truncated := 0
	samples, err := MonteCarlo(opts, func(_ int, r *rng.Source) float64 {
		steps, met := MeetingTimeFrom(g, u, v, r, opts.MaxSteps)
		if !met {
			mu.Lock()
			truncated++
			mu.Unlock()
		}
		return float64(steps)
	})
	if err != nil {
		return Estimate{}, err
	}
	return Estimate{Summary: stats.Summarize(samples), Truncated: truncated}, nil
}

// CoverageProfile runs one k-walk for exactly horizon rounds and returns
// the number of distinct vertices visited after each round (index 0 is the
// state at t=0). Averaging profiles across trials yields the coverage curve
// ("fraction covered vs time") whose long flat tail explains why the last
// few vertices dominate C^k.
func CoverageProfile(g *graph.Graph, start int32, k int, r *rng.Source, horizon int64) []int {
	n := g.N()
	seen := newVisitSet(n)
	pos := make([]int32, k)
	for i := range pos {
		pos[i] = start
	}
	seen.visit(start)
	profile := make([]int, horizon+1)
	profile[0] = seen.count
	for t := int64(1); t <= horizon; t++ {
		for i, p := range pos {
			nb := g.Neighbors(p)
			np := nb[r.Intn(len(nb))]
			pos[i] = np
			seen.visit(np)
		}
		profile[t] = seen.count
	}
	return profile
}

// MeanCoverageProfile averages CoverageProfile over opts.Trials trials and
// returns the expected coverage count per round.
func MeanCoverageProfile(g *graph.Graph, start int32, k int, horizon int64, opts MCOptions) ([]float64, error) {
	if k < 1 || horizon < 1 {
		return nil, fmt.Errorf("walk: need k >= 1 and horizon >= 1")
	}
	// Each trial derives its profile from the engine's first-visit rounds:
	// the coverage count after round t is the number of vertices whose
	// first visit is at most t.
	eng := NewEngine(g, EngineOptions{Workers: 1})
	starts := make([]int32, k)
	for i := range starts {
		starts[i] = start
	}
	profiles := make([][]int, opts.Trials)
	_, err := MonteCarlo(opts, func(trial int, r *rng.Source) float64 {
		first := eng.KFirstVisits(starts, r.Uint64(), horizon)
		profile := make([]int, horizon+1)
		for _, f := range first {
			if f >= 0 {
				profile[f]++
			}
		}
		for t := int64(1); t <= horizon; t++ {
			profile[t] += profile[t-1]
		}
		profiles[trial] = profile
		return 0
	})
	if err != nil {
		return nil, err
	}
	mean := make([]float64, horizon+1)
	for _, p := range profiles {
		for t, c := range p {
			mean[t] += float64(c)
		}
	}
	for t := range mean {
		mean[t] /= float64(len(profiles))
	}
	return mean, nil
}
