package walk

import (
	"fmt"
	"sync"

	"manywalks/internal/graph"
	"manywalks/internal/rng"
	"manywalks/internal/stats"
)

// PartialCoverFrom runs a k-walk from start until a fraction alpha of the
// vertices has been visited (α=1 is full cover). The paper's linear-speed-up
// proofs hinge on the last few vertices dominating the cover time; partial
// cover times expose that structure directly.
func PartialCoverFrom(g *graph.Graph, start int32, k int, alpha float64, r *rng.Source, maxRounds int64) CoverResult {
	if alpha <= 0 || alpha > 1 {
		panic("walk: alpha must be in (0,1]")
	}
	n := g.N()
	target := int(alpha * float64(n))
	if target < 1 {
		target = 1
	}
	seen := newVisitSet(n)
	pos := make([]int32, k)
	for i := range pos {
		pos[i] = start
	}
	if seen.visit(start) >= target {
		return CoverResult{Steps: 0, Covered: true}
	}
	for t := int64(1); t <= maxRounds; t++ {
		for i, p := range pos {
			nb := g.Neighbors(p)
			np := nb[r.Intn(len(nb))]
			pos[i] = np
			if seen.visit(np) >= target {
				return CoverResult{Steps: t, Covered: true}
			}
		}
	}
	return CoverResult{Steps: maxRounds, Covered: false}
}

// EstimatePartialCoverTime estimates the expected α-partial k-walk cover
// time from start.
func EstimatePartialCoverTime(g *graph.Graph, start int32, k int, alpha float64, opts MCOptions) (Estimate, error) {
	if k < 1 {
		return Estimate{}, fmt.Errorf("walk: k must be >= 1")
	}
	if alpha <= 0 || alpha > 1 {
		return Estimate{}, fmt.Errorf("walk: alpha must be in (0,1]")
	}
	if !g.IsConnected() {
		return Estimate{}, fmt.Errorf("walk: cover time diverges on disconnected graphs")
	}
	if err := checkStarts(g, []int32{start}); err != nil {
		return Estimate{}, err
	}
	eng := NewEngine(g, EngineOptions{Workers: 1})
	n := g.N()
	target := int(alpha * float64(n))
	if target < 1 {
		target = 1
	}
	starts := make([]int32, k)
	for i := range starts {
		starts[i] = start
	}
	var mu sync.Mutex
	truncated := 0
	samples, err := MonteCarlo(opts, func(_ int, r *rng.Source) float64 {
		res := eng.KCoverTarget(starts, target, r.Uint64(), opts.MaxSteps)
		if !res.Covered {
			mu.Lock()
			truncated++
			mu.Unlock()
		}
		return float64(res.Steps)
	})
	if err != nil {
		return Estimate{}, err
	}
	return Estimate{Summary: stats.Summarize(samples), Truncated: truncated}, nil
}

// LastVertexFrom runs a single walk to full cover and returns the identity
// of the last vertex covered (and the cover time). The distribution of the
// last vertex concentrates on the far side of the start — the structure
// Matthews-style arguments exploit.
func LastVertexFrom(g *graph.Graph, start int32, r *rng.Source, maxSteps int64) (last int32, steps int64, covered bool) {
	n := g.N()
	seen := newVisitSet(n)
	seen.visit(start)
	last = start
	if seen.count == n {
		return last, 0, true
	}
	w := NewWalker(g, start, r)
	for t := int64(1); t <= maxSteps; t++ {
		v := w.Step()
		before := seen.count
		if seen.visit(v) != before {
			last = v
			if seen.count == n {
				return last, t, true
			}
		}
	}
	return last, maxSteps, false
}

// MeetingTimeFrom runs two independent walks from u and v stepping in
// synchronized rounds and returns the first round at which they occupy the
// same vertex (checked after both have moved). The hunter/prey pursuit of
// the paper's introduction is exactly this process. On bipartite graphs
// walks started on opposite sides can never meet on-node under simultaneous
// moves; callers handle the truncation.
func MeetingTimeFrom(g *graph.Graph, u, v int32, r *rng.Source, maxRounds int64) (int64, bool) {
	if u == v {
		return 0, true
	}
	a := NewWalker(g, u, r)
	b := NewWalker(g, v, r)
	for t := int64(1); t <= maxRounds; t++ {
		if a.Step() == b.Step() {
			return t, true
		}
	}
	return maxRounds, false
}

// KMeetingFromVertices is the legacy per-walker reference loop for the
// k-walk meeting time: all walkers step through one shared rng.Source and
// the first round any two occupy the same vertex is returned (duplicate
// starts meet at round 0). It is the statistical baseline the engine's
// CollisionObserver is validated against; estimators run on
// Engine.KMeetingTime.
func KMeetingFromVertices(g *graph.Graph, starts []int32, r *rng.Source, maxRounds int64) (int64, bool) {
	coal, _, _ := legacyCollisionLoop(g, starts, r, maxRounds, true)
	return coal.round, coal.ok
}

// KCoalescenceFromVertices is the legacy reference loop for the k-walk
// coalescence time under the union-of-meetings relation: walkers that have
// once shared a vertex merge into one class, and the loop reports the
// round the classes collapse to one, plus the first meeting round of the
// same trajectory.
func KCoalescenceFromVertices(g *graph.Graph, starts []int32, r *rng.Source, maxRounds int64) (coalesce int64, meet int64, ok bool) {
	res, firstMeet, _ := legacyCollisionLoop(g, starts, r, maxRounds, false)
	return res.round, firstMeet, res.ok
}

type legacyCollision struct {
	round int64
	ok    bool
}

// legacyCollisionLoop shares the meeting/coalescence bookkeeping of the two
// legacy loops above. With stopAtMeet the loop returns at the first
// collision; otherwise it runs to full coalescence.
func legacyCollisionLoop(g *graph.Graph, starts []int32, r *rng.Source, maxRounds int64, stopAtMeet bool) (legacyCollision, int64, int) {
	k := len(starts)
	if k < 2 {
		panic("walk: collision loop requires at least 2 walkers")
	}
	parent := make([]int, k)
	for i := range parent {
		parent[i] = i
	}
	var find func(i int) int
	find = func(i int) int {
		if parent[i] != i {
			parent[i] = find(parent[i])
		}
		return parent[i]
	}
	groups := k
	firstMeet := int64(-1)
	at := make(map[int32]int, k)
	observe := func(t int64, pos []int32) (done bool) {
		clear(at)
		for i, p := range pos {
			j, hit := at[p]
			if !hit {
				at[p] = i
				continue
			}
			if firstMeet < 0 {
				firstMeet = t
			}
			if ra, rb := find(j), find(i); ra != rb {
				if ra > rb {
					ra, rb = rb, ra
				}
				parent[rb] = ra
				groups--
			}
		}
		if stopAtMeet {
			return firstMeet >= 0
		}
		return groups == 1
	}
	pos := make([]int32, k)
	copy(pos, starts)
	if observe(0, pos) {
		return legacyCollision{0, true}, firstMeet, groups
	}
	for t := int64(1); t <= maxRounds; t++ {
		for i, p := range pos {
			nb := g.Neighbors(p)
			pos[i] = nb[r.Intn(len(nb))]
		}
		if observe(t, pos) {
			return legacyCollision{t, true}, firstMeet, groups
		}
	}
	return legacyCollision{maxRounds, false}, firstMeet, groups
}

// EstimateMeetingTime estimates the expected meeting round of two walks on
// the batched engine (starts u and v, one run per trial).
func EstimateMeetingTime(g *graph.Graph, u, v int32, opts MCOptions) (Estimate, error) {
	return EstimateKMeetingTime(g, []int32{u, v}, opts)
}

// EstimateKMeetingTime estimates the expected first-meeting round of the
// synchronized k-walk from the given starts. On bipartite graphs walkers
// started on opposite sides never meet under simultaneous moves; such
// trials exhaust MaxSteps and count as Truncated.
func EstimateKMeetingTime(g *graph.Graph, starts []int32, opts MCOptions) (Estimate, error) {
	if !g.IsConnected() {
		return Estimate{}, fmt.Errorf("walk: meeting time diverges on disconnected graphs")
	}
	if err := checkStarts(g, starts); err != nil {
		return Estimate{}, err
	}
	if len(starts) < 2 {
		return Estimate{}, fmt.Errorf("walk: meeting time requires at least 2 walkers, got %d", len(starts))
	}
	opts, err := opts.normalized()
	if err != nil {
		return Estimate{}, err
	}
	eng := NewEngine(g, EngineOptions{Workers: 1})
	// Trial-fused pass: every trial is one collision lane. Over-budget
	// horizons fall back to sequential engine runs with the identical
	// stream derivation.
	run := func(base, count int) (GroupedResult, error) {
		if opts.MaxSteps <= MaxGroupedRounds {
			return eng.RunGrouped(GroupedRunSpec{
				Trials:    count,
				TrialBase: base,
				Starts:    starts,
				Seed:      opts.Seed,
				MaxRounds: opts.MaxSteps,
				Workers:   opts.Workers,
			}, NewGroupCollisionObserver(false))
		}
		res := GroupedResult{Rounds: make([]int64, count), Stopped: make([]bool, count)}
		wopts := opts
		wopts.Trials = count
		_, err := monteCarloFrom(wopts, base, func(t int, r *rng.Source) float64 {
			mr, err := eng.KMeetingTime(starts, r.Uint64(), opts.MaxSteps)
			if err != nil {
				panic(err.Error()) // validated above; unreachable
			}
			res.Rounds[t-base] = mr.Rounds
			res.Stopped[t-base] = mr.Met
			return 0
		})
		return res, err
	}
	var res GroupedResult
	if opts.Precision.Enabled() {
		res, err = adaptiveTrials(opts, run)
	} else {
		res, err = run(0, opts.Trials)
	}
	if err != nil {
		return Estimate{}, err
	}
	return EstimateFromTrials(res), nil
}

// EstimateKCoalescenceTime estimates the expected full-coalescence round
// of the synchronized k-walk, together with the expected first-meeting
// round of the same runs (for k = 2 the two coincide).
func EstimateKCoalescenceTime(g *graph.Graph, starts []int32, opts MCOptions) (coalesce, meet Estimate, err error) {
	if !g.IsConnected() {
		return Estimate{}, Estimate{}, fmt.Errorf("walk: coalescence time diverges on disconnected graphs")
	}
	if err := checkStarts(g, starts); err != nil {
		return Estimate{}, Estimate{}, err
	}
	if len(starts) < 2 {
		return Estimate{}, Estimate{}, fmt.Errorf("walk: coalescence time requires at least 2 walkers, got %d", len(starts))
	}
	opts, err = opts.normalized()
	if err != nil {
		return Estimate{}, Estimate{}, err
	}
	eng := NewEngine(g, EngineOptions{Workers: 1})
	// Trial-fused pass: coalescence lanes also record each trial's first
	// meeting round, so both estimates come from the same fused run. The
	// run closure appends each wave's meeting rounds in trial order (waves
	// run sequentially), so the meet estimate covers exactly the trials
	// the adaptive stop — which watches the coalescence samples — ran.
	var meets []float64
	meetTruncated := 0
	run := func(base, count int) (GroupedResult, error) {
		if opts.MaxSteps <= MaxGroupedRounds {
			col := NewGroupCollisionObserver(true)
			res, err := eng.RunGrouped(GroupedRunSpec{
				Trials:    count,
				TrialBase: base,
				Starts:    starts,
				Seed:      opts.Seed,
				MaxRounds: opts.MaxSteps,
				Workers:   opts.Workers,
			}, col)
			if err != nil {
				return GroupedResult{}, err
			}
			for trial := 0; trial < count; trial++ {
				m := col.TrialMeetRound(trial)
				if m < 0 {
					m = opts.MaxSteps
					meetTruncated++
				}
				meets = append(meets, float64(m))
			}
			return res, nil
		}
		res := GroupedResult{Rounds: make([]int64, count), Stopped: make([]bool, count)}
		waveMeets := make([]float64, count)
		waveTrunc := make([]bool, count)
		wopts := opts
		wopts.Trials = count
		if _, err := monteCarloFrom(wopts, base, func(t int, r *rng.Source) float64 {
			cr, err := eng.KCoalescenceTime(starts, r.Uint64(), opts.MaxSteps)
			if err != nil {
				panic(err.Error()) // validated above; unreachable
			}
			m := cr.FirstMeeting
			if m < 0 {
				m = opts.MaxSteps
				waveTrunc[t-base] = true
			}
			waveMeets[t-base] = float64(m)
			res.Rounds[t-base] = cr.Rounds
			res.Stopped[t-base] = cr.Coalesced
			return 0
		}); err != nil {
			return GroupedResult{}, err
		}
		meets = append(meets, waveMeets...)
		for _, tr := range waveTrunc {
			if tr {
				meetTruncated++
			}
		}
		return res, nil
	}
	var res GroupedResult
	if opts.Precision.Enabled() {
		res, err = adaptiveTrials(opts, run)
	} else {
		res, err = run(0, opts.Trials)
	}
	if err != nil {
		return Estimate{}, Estimate{}, err
	}
	meet = Estimate{Summary: stats.Summarize(meets), Truncated: meetTruncated}
	return EstimateFromTrials(res), meet, nil
}

// MeanPartialCoverRounds estimates, per cover fraction, the expected round
// the k-walk from start first reaches it — the whole partial-cover curve
// from single runs. Fractions not reached within MaxSteps are censored at
// MaxSteps and counted in that fraction's Truncated.
func MeanPartialCoverRounds(g *graph.Graph, start int32, k int, fractions []float64, opts MCOptions) ([]Estimate, error) {
	if k < 1 {
		return nil, fmt.Errorf("walk: k must be >= 1")
	}
	if len(fractions) == 0 {
		return nil, fmt.Errorf("walk: need at least one fraction")
	}
	if !g.IsConnected() {
		return nil, fmt.Errorf("walk: cover time diverges on disconnected graphs")
	}
	if err := checkStarts(g, []int32{start}); err != nil {
		return nil, err
	}
	for _, f := range fractions {
		if !(f > 0 && f <= 1) {
			return nil, fmt.Errorf("walk: cover fraction %v must be in (0,1]", f)
		}
	}
	eng := NewEngine(g, EngineOptions{Workers: 1})
	starts := commonStarts(start, k)
	rounds := make([][]float64, len(fractions))
	for i := range rounds {
		rounds[i] = make([]float64, opts.Trials)
	}
	var mu sync.Mutex
	truncated := make([]int, len(fractions))
	_, err := MonteCarlo(opts, func(trial int, r *rng.Source) float64 {
		res, err := eng.PartialCoverCurve(starts, fractions, r.Uint64(), opts.MaxSteps)
		if err != nil {
			panic(err.Error()) // validated above; unreachable
		}
		for i, t := range res.Rounds {
			if t < 0 {
				t = opts.MaxSteps
				mu.Lock()
				truncated[i]++
				mu.Unlock()
			}
			rounds[i][trial] = float64(t)
		}
		return 0
	})
	if err != nil {
		return nil, err
	}
	ests := make([]Estimate, len(fractions))
	for i := range ests {
		ests[i] = Estimate{Summary: stats.Summarize(rounds[i]), Truncated: truncated[i]}
	}
	return ests, nil
}

// CoverageProfile runs one k-walk for exactly horizon rounds and returns
// the number of distinct vertices visited after each round (index 0 is the
// state at t=0). Averaging profiles across trials yields the coverage curve
// ("fraction covered vs time") whose long flat tail explains why the last
// few vertices dominate C^k.
func CoverageProfile(g *graph.Graph, start int32, k int, r *rng.Source, horizon int64) []int {
	n := g.N()
	seen := newVisitSet(n)
	pos := make([]int32, k)
	for i := range pos {
		pos[i] = start
	}
	seen.visit(start)
	profile := make([]int, horizon+1)
	profile[0] = seen.count
	for t := int64(1); t <= horizon; t++ {
		for i, p := range pos {
			nb := g.Neighbors(p)
			np := nb[r.Intn(len(nb))]
			pos[i] = np
			seen.visit(np)
		}
		profile[t] = seen.count
	}
	return profile
}

// MeanCoverageProfile averages CoverageProfile over opts.Trials trials and
// returns the expected coverage count per round.
func MeanCoverageProfile(g *graph.Graph, start int32, k int, horizon int64, opts MCOptions) ([]float64, error) {
	if k < 1 || horizon < 1 {
		return nil, fmt.Errorf("walk: need k >= 1 and horizon >= 1")
	}
	// Each trial derives its profile from the engine's first-visit rounds:
	// the coverage count after round t is the number of vertices whose
	// first visit is at most t. Trials run as one trial-fused pass with
	// first-visit recording; over-cap horizons fall back to sequential
	// runs.
	opts.MaxSteps = horizon
	opts, err := opts.normalized()
	if err != nil {
		return nil, err
	}
	eng := NewEngine(g, EngineOptions{Workers: 1})
	starts := commonStarts(start, k)
	profileOf := func(first []int64) []int {
		profile := make([]int, horizon+1)
		for _, f := range first {
			if f >= 0 {
				profile[f]++
			}
		}
		for t := int64(1); t <= horizon; t++ {
			profile[t] += profile[t-1]
		}
		return profile
	}
	profiles := make([][]int, opts.Trials)
	if horizon <= MaxGroupedRounds {
		cov := &GroupCoverObserver{RecordFirst: true}
		if _, err := eng.RunGrouped(GroupedRunSpec{
			Trials:    opts.Trials,
			Starts:    starts,
			Seed:      opts.Seed,
			MaxRounds: horizon,
			Workers:   opts.Workers,
		}, cov); err != nil {
			return nil, err
		}
		for trial := range profiles {
			profiles[trial] = profileOf(cov.TrialFirstVisits(trial))
		}
	} else if _, err := MonteCarlo(opts, func(trial int, r *rng.Source) float64 {
		profiles[trial] = profileOf(eng.KFirstVisits(starts, r.Uint64(), horizon))
		return 0
	}); err != nil {
		return nil, err
	}
	mean := make([]float64, horizon+1)
	for _, p := range profiles {
		for t, c := range p {
			mean[t] += float64(c)
		}
	}
	for t := range mean {
		mean[t] /= float64(len(profiles))
	}
	return mean, nil
}
