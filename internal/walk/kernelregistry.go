package walk

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// This file is the kernel registry: the open dispatch table ParseKernel
// routes through, replacing the closed enum switch the step laws used to
// live behind. A KernelFamily owns one spelling prefix ("lazy", "hopper",
// ...) and knows how to parse its parameters; registering a family is all
// it takes for a new law to flow through every layer — the engine compiles
// it via TransitionProbs, markov/exact anchor it, the serving stack
// canonicalizes and routes it by String(), and the CLIs list it under
// -kernel help.

// KernelFamily describes one registered kernel family.
type KernelFamily struct {
	// Name is the canonical family name, the first colon-separated token
	// of the spelling ("lazy" in "lazy:0.25").
	Name string
	// Aliases are alternate names ParseKernel accepts ("nb", "mh", ...).
	Aliases []string
	// Syntax is the flag syntax shown in listings, e.g. "lazy[:α]".
	Syntax string
	// Doc is the one-line description shown by -kernel help.
	Doc string
	// Example is a representative kernel of the family, used by Kernels()
	// for sweeps and parameterized tests.
	Example Kernel
	// Parse builds a kernel from the text after the family name: for
	// "hopper:power:2", arg is "power:2" and hasArg is true.
	Parse func(arg string, hasArg bool) (Kernel, error)
}

var kernelRegistry = struct {
	sync.RWMutex
	families []KernelFamily
	byName   map[string]int // name and aliases -> index into families
}{byName: make(map[string]int)}

// RegisterKernel adds a kernel family to the registry. It panics on a nil
// Parse or Example, an empty name, or a name/alias collision — registration
// runs from init functions, where a loud failure beats a shadowed kernel.
func RegisterKernel(f KernelFamily) {
	if f.Name == "" || f.Parse == nil || f.Example == nil {
		panic("walk: RegisterKernel requires a name, a Parse func, and an Example kernel")
	}
	if f.Syntax == "" {
		f.Syntax = f.Name
	}
	kernelRegistry.Lock()
	defer kernelRegistry.Unlock()
	names := append([]string{f.Name}, f.Aliases...)
	for _, name := range names {
		if _, dup := kernelRegistry.byName[name]; dup {
			panic(fmt.Sprintf("walk: kernel family %q already registered", name))
		}
	}
	idx := len(kernelRegistry.families)
	kernelRegistry.families = append(kernelRegistry.families, f)
	for _, name := range names {
		kernelRegistry.byName[name] = idx
	}
}

// KernelFamilies returns the registered families in registration order
// (built-ins first, uniform leading).
func KernelFamilies() []KernelFamily {
	kernelRegistry.RLock()
	defer kernelRegistry.RUnlock()
	out := make([]KernelFamily, len(kernelRegistry.families))
	copy(out, kernelRegistry.families)
	return out
}

// KernelSyntaxes lists every registered family's flag syntax, for error
// messages and usage strings.
func KernelSyntaxes() []string {
	fams := KernelFamilies()
	out := make([]string, len(fams))
	for i, f := range fams {
		out[i] = f.Syntax
	}
	return out
}

// lookupKernelFamily resolves a family by name or alias (nil if absent).
func lookupKernelFamily(name string) *KernelFamily {
	kernelRegistry.RLock()
	defer kernelRegistry.RUnlock()
	if idx, ok := kernelRegistry.byName[name]; ok {
		return &kernelRegistry.families[idx]
	}
	return nil
}

// ParseKernel parses the -kernel flag syntax by dispatching on the first
// colon-separated token: "uniform", "lazy" (α = 1/2), "lazy:α", "weighted",
// "nobacktrack", "metropolis", "hopper:power[:s]", "hopper:exp[:λ]", plus
// any family registered by the caller. The empty string is the uniform
// walk.
func ParseKernel(s string) (Kernel, error) {
	name, arg, hasArg := strings.Cut(strings.TrimSpace(strings.ToLower(s)), ":")
	if name == "" {
		return Uniform(), nil
	}
	if f := lookupKernelFamily(name); f != nil {
		return f.Parse(arg, hasArg)
	}
	return nil, fmt.Errorf("walk: unknown kernel %q (registered: %s)", s, strings.Join(KernelSyntaxes(), ", "))
}

// Kernels lists one representative of every registered family, for sweeps
// and parameterized tests, in registration order (uniform first).
func Kernels() []Kernel {
	fams := KernelFamilies()
	out := make([]Kernel, len(fams))
	for i, f := range fams {
		out[i] = f.Example
	}
	return out
}

// KernelHelp renders the registry as the multi-line listing the CLIs print
// for "-kernel help".
func KernelHelp() string {
	fams := KernelFamilies()
	width := 0
	for _, f := range fams {
		if len(f.Syntax) > width {
			width = len(f.Syntax)
		}
	}
	var b strings.Builder
	b.WriteString("registered kernels:\n")
	for _, f := range fams {
		fmt.Fprintf(&b, "  %-*s  %s", width, f.Syntax, f.Doc)
		if len(f.Aliases) > 0 {
			aliases := append([]string(nil), f.Aliases...)
			sort.Strings(aliases)
			fmt.Fprintf(&b, " (aliases: %s)", strings.Join(aliases, ", "))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// noArg rejects parameters on parameter-free families, so misspellings like
// "uniform:0.5" fail loudly instead of silently parsing as the bare kernel.
func noArg(name, arg string, hasArg bool, k Kernel) (Kernel, error) {
	if hasArg {
		return nil, fmt.Errorf("walk: kernel %q takes no parameter, got %q", name, arg)
	}
	return k, nil
}

// init registers the shipped families in a fixed order — built-ins first
// with uniform leading (sweeps and Kernels()-driven tests rely on it), the
// hopper family last — instead of per-file init functions, whose run order
// would follow file names.
func init() {
	registerBuiltinKernels()
	registerHopperKernels()
}

func registerBuiltinKernels() {
	RegisterKernel(KernelFamily{
		Name:    "uniform",
		Aliases: []string{"simple"},
		Syntax:  "uniform",
		Doc:     "simple random walk: next ~ Uniform(N(v)) — the paper's model and the default",
		Example: Uniform(),
		Parse: func(arg string, hasArg bool) (Kernel, error) {
			return noArg("uniform", arg, hasArg, Uniform())
		},
	})
	RegisterKernel(KernelFamily{
		Name:    "lazy",
		Syntax:  "lazy[:α]",
		Doc:     "stay put with probability α (default 0.5), else a uniform step",
		Example: Lazy(0.5),
		Parse: func(arg string, hasArg bool) (Kernel, error) {
			alpha := 0.5
			if hasArg {
				v, err := strconv.ParseFloat(arg, 64)
				if err != nil {
					return nil, fmt.Errorf("walk: bad lazy parameter %q: %w", arg, err)
				}
				alpha = v
			}
			if alpha < 0 || alpha >= 1 || math.IsNaN(alpha) {
				return nil, fmt.Errorf("walk: lazy stay probability %v must be in [0,1)", alpha)
			}
			return Lazy(alpha), nil
		},
	})
	RegisterKernel(KernelFamily{
		Name:    "weighted",
		Syntax:  "weighted",
		Doc:     "step to a neighbor with probability proportional to the edge weight",
		Example: Weighted(),
		Parse: func(arg string, hasArg bool) (Kernel, error) {
			return noArg("weighted", arg, hasArg, Weighted())
		},
	})
	RegisterKernel(KernelFamily{
		Name:    "nobacktrack",
		Aliases: []string{"nb"},
		Syntax:  "nobacktrack",
		Doc:     "never immediately reverse an edge (degree-1 dead ends excepted)",
		Example: NoBacktrack(),
		Parse: func(arg string, hasArg bool) (Kernel, error) {
			return noArg("nobacktrack", arg, hasArg, NoBacktrack())
		},
	})
	RegisterKernel(KernelFamily{
		Name:    "metropolis",
		Aliases: []string{"metropolis-uniform", "mh"},
		Syntax:  "metropolis",
		Doc:     "Metropolis–Hastings with uniform target: stationary law uniform over vertices",
		Example: MetropolisUniform(),
		Parse: func(arg string, hasArg bool) (Kernel, error) {
			return noArg("metropolis", arg, hasArg, MetropolisUniform())
		},
	})
}
