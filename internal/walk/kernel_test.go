package walk

import (
	"math"
	"strings"
	"testing"

	"manywalks/internal/graph"
	"manywalks/internal/rng"
	"manywalks/internal/stats"
)

// kernelTestWeights is the deterministic weighting used throughout the
// kernel tests (and pinned by the weighted golden test): small integer-ish
// weights that vary across edges without dwarfing any of them.
func kernelTestWeights(u, v int32) float64 {
	return 1 + float64((u*7+v*13)%5)
}

func TestParseKernel(t *testing.T) {
	cases := map[string]Kernel{
		"uniform":          Uniform(),
		"":                 Uniform(),
		"lazy":             Lazy(0.5),
		"lazy:0.25":        Lazy(0.25),
		"weighted":         Weighted(),
		"nobacktrack":      NoBacktrack(),
		"nb":               NoBacktrack(),
		"metropolis":       MetropolisUniform(),
		"mh":               MetropolisUniform(),
		"hopper:power":     HopperPower(1),
		"hopper:power:2":   HopperPower(2),
		"hopper:exp":       HopperExp(1),
		"hopper:exp:0.5":   HopperExp(0.5),
		"HOPPER:POWER:1.5": HopperPower(1.5),
	}
	for in, want := range cases {
		got, err := ParseKernel(in)
		if err != nil || got != want {
			t.Fatalf("ParseKernel(%q) = %+v, %v; want %+v", in, got, err, want)
		}
	}
	for _, k := range Kernels() {
		back, err := ParseKernel(k.String())
		if err != nil || back != k {
			t.Fatalf("kernel %s does not round-trip through ParseKernel: %+v, %v", k, back, err)
		}
	}
	for _, bad := range []string{
		"levy", "lazy:1", "lazy:-0.1", "lazy:x", "lazy:NaN",
		"hopper", "hopper:", "hopper:levy", "hopper:power:-1", "hopper:power:x",
		"hopper:exp:NaN", "hopper:exp:+Inf", "uniform:0.5", "weighted:2",
	} {
		if _, err := ParseKernel(bad); err == nil {
			t.Fatalf("ParseKernel(%q) should fail", bad)
		}
	}
}

func TestTransitionProbsStochastic(t *testing.T) {
	g := graph.Reweight(graph.Lollipop(6, 4), kernelTestWeights)
	for _, k := range Kernels() {
		if k.Name() == "nobacktrack" {
			if _, _, err := k.TransitionProbs(g, 0); err == nil {
				t.Fatal("no-backtrack must not offer a vertex-space law")
			}
			continue
		}
		for v := int32(0); v < int32(g.N()); v++ {
			outs, probs, err := k.TransitionProbs(g, v)
			if err != nil {
				t.Fatalf("%s at %d: %v", k, v, err)
			}
			sum := 0.0
			for i, p := range probs {
				if p <= 0 {
					t.Fatalf("%s at %d: outcome %d has p=%v", k, v, outs[i], p)
				}
				sum += p
			}
			if math.Abs(sum-1) > 1e-12 {
				t.Fatalf("%s at %d: probabilities sum to %v", k, v, sum)
			}
		}
	}
}

// TestAliasTableMatchesTransitionProbs reconstructs each vertex's sampling
// distribution from the compiled alias columns and checks it against the
// reference law, so the replay test below may treat the table as ground
// truth for outcome decoding.
func TestAliasTableMatchesTransitionProbs(t *testing.T) {
	wg := graph.Reweight(graph.Lollipop(7, 5), kernelTestWeights)
	for _, k := range []Kernel{Weighted(), MetropolisUniform()} {
		at, err := buildAliasTable(wg, k)
		if err != nil {
			t.Fatal(err)
		}
		for v := int32(0); v < int32(wg.N()); v++ {
			outs, probs, err := k.TransitionProbs(wg, v)
			if err != nil {
				t.Fatal(err)
			}
			want := map[int32]float64{}
			for i, u := range outs {
				want[u] += probs[i]
			}
			meta := at.meta[v]
			off, cnt := uint32(meta>>32), uint32(meta)
			if int(cnt) != len(outs) {
				t.Fatalf("%s at %d: %d columns for %d outcomes", k, v, cnt, len(outs))
			}
			got := map[int32]float64{}
			colMass := 1 / float64(cnt)
			for c := off; c < off+cnt; c++ {
				if at.out[c] == at.alt[c] {
					got[at.out[c]] += colMass
					continue
				}
				frac := float64(at.thresh[c]) / (1 << 32)
				got[at.out[c]] += colMass * frac
				got[at.alt[c]] += colMass * (1 - frac)
			}
			for u, p := range want {
				if math.Abs(got[u]-p) > 1e-6 {
					t.Fatalf("%s at %d: P(->%d) compiled as %v, law says %v", k, v, u, got[u], p)
				}
			}
			for u := range got {
				if _, ok := want[u]; !ok {
					t.Fatalf("%s at %d: compiled table reaches %d, law does not", k, v, u)
				}
			}
		}
	}
}

// replayKernelWalk recomputes walker w's trajectory under the engine's
// compiled kernel using only the public rng.Source API, the graph's
// adjacency lists, and — for alias kernels — the compiled table, whose
// content TestAliasTableMatchesTransitionProbs verifies independently. It
// restates the documented draw discipline of kernelstep.go from first
// principles and pins the hand-inlined step loops bit for bit.
func replayKernelWalk(t *testing.T, e *Engine, start int32, seed uint64, w int, horizon int64) []int32 {
	t.Helper()
	g := e.Graph()
	if e.prog.kind == progUniform {
		return replayWalk(t, e, start, seed, w, horizon)
	}
	s := rng.NewStream(seed, uint64(w))
	pos, prev := start, int32(-1)
	traj := make([]int32, horizon)
	stayThresh := uint64(0)
	if lk, ok := e.Kernel().(lazyKernel); ok && lk.alpha > 0 {
		stayThresh = uint64(math.Ldexp(lk.alpha, 64))
	}
	shift := uint(e.padShift)
	stride := 1 << shift
	for tt := int64(1); tt <= horizon; tt++ {
		nb := g.Neighbors(pos)
		deg := len(nb)
		switch e.prog.kind {
		case progLazy:
			if s.Uint64() >= stayThresh { // move
				if e.pad != nil {
					filled := (stride / deg) * deg
					for {
						lane := int(s.Uint64() & uint64(stride-1))
						if lane < filled {
							pos = nb[lane%deg]
							break
						}
					}
				} else {
					for {
						idx, ok := refLemire32(uint32(s.Uint64()), uint32(deg))
						if ok {
							pos = nb[idx]
							break
						}
					}
				}
			}
		case progAlias: // weighted, metropolis, hopper, any registry kernel
			at := e.prog.at
			meta := at.meta[pos]
			cnt := uint32(meta)
			x := s.Uint64()
			idx, ok := refLemire32(uint32(x), cnt)
			for !ok {
				x = s.Uint64()
				idx, ok = refLemire32(uint32(x), cnt)
			}
			slot := uint32(meta>>32) + idx
			if uint32(x>>32) < at.thresh[slot] {
				pos = at.out[slot]
			} else {
				pos = at.alt[slot]
			}
		case progNoBacktrack:
			switch {
			case deg == 1:
				prev, pos = pos, nb[0]
			default:
				span := uint32(deg)
				if prev >= 0 {
					span = uint32(deg - 1)
				}
				idx, ok := refLemire32(uint32(s.Uint64()), span)
				for !ok {
					idx, ok = refLemire32(uint32(s.Uint64()), span)
				}
				np := nb[idx]
				if np == prev {
					np = nb[deg-1]
				}
				prev, pos = pos, np
			}
			traj[tt-1] = pos
			continue
		}
		traj[tt-1] = pos
	}
	return traj
}

// replayKernelReference derives first-visit rounds and the cover round from
// per-walker replays, mirroring replayReference for arbitrary kernels.
func replayKernelReference(t *testing.T, e *Engine, starts []int32, seed uint64, horizon int64) (first []int64, cover int64, covered bool) {
	t.Helper()
	n := e.Graph().N()
	first = make([]int64, n)
	for i := range first {
		first[i] = -1
	}
	for _, s := range starts {
		first[s] = 0
	}
	for w, s := range starts {
		for tt, v := range replayKernelWalk(t, e, s, seed, w, horizon) {
			if first[v] < 0 || first[v] > int64(tt)+1 {
				first[v] = int64(tt) + 1
			}
		}
	}
	for _, f := range first {
		if f < 0 {
			return first, 0, false
		}
		if f > cover {
			cover = f
		}
	}
	return first, cover, true
}

func TestEngineKernelMatchesReplay(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"expander": graph.Reweight(graph.MargulisExpander(8), kernelTestWeights), // padded stride for lazy
		"lollipop": graph.Reweight(graph.Lollipop(8, 5), kernelTestWeights),      // irregular degrees, a degree-1 tail end
		"complete": graph.Complete(2048, true),                                   // too big to pad: lazy takes the CSR path
	}
	for name, g := range graphs {
		for _, k := range Kernels() {
			if k.Support() == SupportDense && g.N() > 1024 {
				// Dense compiles run one BFS per vertex: fine on the small
				// graphs, pointless on complete:2048, which exists only to
				// force the lazy kernel off the padded table.
				continue
			}
			eng := NewEngine(g, EngineOptions{Workers: 1, Kernel: k})
			starts := []int32{0, 1, int32(g.N() / 2), 1}
			const seed, horizon = 77, 300
			wantFirst, wantCover, wantCovered := replayKernelReference(t, eng, starts, seed, horizon)

			gotFirst := eng.KFirstVisits(starts, seed, horizon)
			for v := range wantFirst {
				if gotFirst[v] != wantFirst[v] {
					t.Fatalf("%s/%s: first visit of %d = %d, replay says %d",
						name, k, v, gotFirst[v], wantFirst[v])
				}
			}
			res := eng.KCover(starts, seed, horizon)
			if res.Covered != wantCovered || (wantCovered && res.Steps != wantCover) {
				t.Fatalf("%s/%s: KCover %+v, replay says cover=%d covered=%v",
					name, k, res, wantCover, wantCovered)
			}
		}
	}
}

// TestEngineKernelMatchesLegacyStats checks, per kernel, that the engine's
// compiled sampler and the legacy shared-RNG loop simulate the same chain:
// their mean k-walk cover times must agree within Monte Carlo error.
func TestEngineKernelMatchesLegacyStats(t *testing.T) {
	g := graph.Reweight(graph.Torus2D(6), kernelTestWeights)
	const k, trials, budget = 4, 400, int64(1 << 20)
	starts := commonStarts(0, k)
	for _, kern := range Kernels() {
		eng := NewEngine(g, EngineOptions{Workers: 1, Kernel: kern})
		engSamples := make([]float64, trials)
		legSamples := make([]float64, trials)
		for i := 0; i < trials; i++ {
			res := eng.KCover(starts, uint64(1000+i), budget)
			if !res.Covered {
				t.Fatalf("%s: engine truncated", kern)
			}
			engSamples[i] = float64(res.Steps)
			leg := KernelKCoverFromVertices(g, kern, starts, rng.NewStream(9000, uint64(i)), budget)
			if !leg.Covered {
				t.Fatalf("%s: legacy truncated", kern)
			}
			legSamples[i] = float64(leg.Steps)
		}
		es, ls := stats.Summarize(engSamples), stats.Summarize(legSamples)
		if diff := math.Abs(es.Mean - ls.Mean); diff > 4*(es.CI95()+ls.CI95()) {
			t.Fatalf("%s: engine mean %v ± %v vs legacy %v ± %v",
				kern, es.Mean, es.CI95(), ls.Mean, ls.CI95())
		}
	}
}

// TestWeightedKernelGolden pins the weighted kernel to golden values: any
// change to the alias compiler, the draw discipline, or the weighting
// helper shows up as a changed cover round / hit round here.
func TestWeightedKernelGolden(t *testing.T) {
	g := graph.Reweight(graph.MargulisExpander(8), kernelTestWeights)
	eng := NewEngine(g, EngineOptions{Kernel: Weighted()})
	starts := []int32{0, 1, int32(g.N() / 2)}

	cover := eng.KCover(starts, 123, 1<<20)
	if !cover.Covered || cover.Steps != goldenWeightedCoverRounds {
		t.Fatalf("weighted KCover = %+v, golden says covered at %d", cover, goldenWeightedCoverRounds)
	}
	marked := make([]bool, g.N())
	marked[g.N()-1] = true
	hit := eng.KHit(starts, marked, 123, 1<<20)
	if !hit.Hit || hit.Rounds != goldenWeightedHitRounds || hit.Walker != goldenWeightedHitWalker {
		t.Fatalf("weighted KHit = %+v, golden says rounds=%d walker=%d",
			hit, goldenWeightedHitRounds, goldenWeightedHitWalker)
	}
}

// Golden values for TestWeightedKernelGolden, produced by the weighted
// kernel on Reweight(MargulisExpander(8), kernelTestWeights) with seed 123.
const (
	goldenWeightedCoverRounds = int64(75)
	goldenWeightedHitRounds   = int64(4)
	goldenWeightedHitWalker   = 0
)

// TestEngineKernelSweepSanity: lazy covers slower than uniform, and
// no-backtracking on the cycle is ballistic (covers in exactly n-1 from any
// single walker).
func TestEngineKernelSweepSanity(t *testing.T) {
	g := graph.Torus2D(8)
	mean := func(k Kernel) float64 {
		eng := NewEngine(g, EngineOptions{Kernel: k})
		total := int64(0)
		const trials = 40
		for i := 0; i < trials; i++ {
			res := eng.KCoverFrom(0, 4, uint64(500+i), 1<<22)
			if !res.Covered {
				t.Fatal("truncated")
			}
			total += res.Steps
		}
		return float64(total) / trials
	}
	if lazy, uni := mean(Lazy(0.5)), mean(Uniform()); lazy < 1.5*uni {
		t.Fatalf("lazy cover %v not ≈2x uniform %v", lazy, uni)
	}

	cyc := graph.Cycle(64)
	eng := NewEngine(cyc, EngineOptions{Kernel: NoBacktrack()})
	for i := 0; i < 10; i++ {
		res := eng.KCoverFrom(5, 1, uint64(i), 1<<20)
		if !res.Covered || res.Steps != 63 {
			t.Fatalf("NB cycle cover %+v, want exactly 63 rounds", res)
		}
	}
}

// TestEngineKernelPanics pins the constructor contract for bad kernels.
func TestEngineKernelPanics(t *testing.T) {
	g := graph.Cycle(6)
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: no panic", name)
			}
		}()
		f()
	}
	expectPanic("lazy alpha 1", func() { NewEngine(g, EngineOptions{Kernel: Lazy(1)}) })
	expectPanic("lazy alpha negative", func() { NewEngine(g, EngineOptions{Kernel: Lazy(-0.1)}) })
	expectPanic("hopper negative decay", func() { NewEngine(g, EngineOptions{Kernel: HopperPower(-1)}) })
	expectPanic("unregistered kernel", func() { NewEngine(g, EngineOptions{Kernel: rogueKernel{}}) })
}

// rogueKernel implements Kernel but is never registered, so its spelling
// cannot round-trip through ParseKernel.
type rogueKernel struct{}

func (rogueKernel) Name() string                { return "rogue" }
func (rogueKernel) String() string              { return "rogue" }
func (rogueKernel) Support() Support            { return SupportSparse }
func (rogueKernel) Validate(*graph.Graph) error { return nil }
func (rogueKernel) TransitionProbs(g *graph.Graph, v int32) ([]int32, []float64, error) {
	return uniformKernel{}.TransitionProbs(g, v)
}

// TestUnregisteredKernelRejected is the regression test for the round-trip
// bugfix: the closed enum's String() used to fall back to a "kernel(%d)"
// spelling ParseKernel could not read, which under shape canonicalization
// could alias distinct laws into one coalescer bucket. Compilation must now
// reject any kernel whose spelling does not round-trip, with an error that
// says how to fix it.
func TestUnregisteredKernelRejected(t *testing.T) {
	g := graph.Cycle(6)
	_, err := compileKernel(g, rogueKernel{})
	if err == nil {
		t.Fatal("compiling an unregistered kernel must fail")
	}
	for _, want := range []string{"rogue", "not registered", "RegisterKernel"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("compile error %q should mention %q", err, want)
		}
	}
	// Every registered kernel must pass the same gate.
	for _, k := range Kernels() {
		if err := checkKernelRegistered(k); err != nil {
			t.Fatalf("registered kernel %s rejected: %v", k, err)
		}
	}
}
