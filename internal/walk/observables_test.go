package walk

import (
	"math"
	"testing"

	"manywalks/internal/graph"
	"manywalks/internal/rng"
)

func TestPartialCoverMonotoneInAlpha(t *testing.T) {
	g := graph.Torus2D(8)
	opts := MCOptions{Trials: 400, Seed: 31, MaxSteps: 1 << 22}
	prev := 0.0
	for _, alpha := range []float64{0.25, 0.5, 0.75, 1.0} {
		est, err := EstimatePartialCoverTime(g, 0, 2, alpha, opts)
		if err != nil {
			t.Fatal(err)
		}
		if est.Mean() < prev {
			t.Fatalf("partial cover not monotone at α=%v: %v < %v", alpha, est.Mean(), prev)
		}
		prev = est.Mean()
	}
}

func TestPartialCoverFullMatchesKCover(t *testing.T) {
	g := graph.Cycle(16)
	opts := MCOptions{Trials: 600, Seed: 33, MaxSteps: 1 << 22}
	full, err := EstimatePartialCoverTime(g, 0, 3, 1.0, opts)
	if err != nil {
		t.Fatal(err)
	}
	kc, err := EstimateKCoverTime(g, 0, 3, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Same estimator different code paths, same seed streams: means agree
	// statistically.
	if math.Abs(full.Mean()-kc.Mean()) > full.CI95()+kc.CI95() {
		t.Fatalf("α=1 partial %v vs k-cover %v", full.Mean(), kc.Mean())
	}
}

func TestPartialCoverTailDominates(t *testing.T) {
	// On the torus the last 10% of vertices must cost a disproportionate
	// share of the cover time: t(1.0) should far exceed t(0.9)·10/9.
	g := graph.Torus2D(8)
	opts := MCOptions{Trials: 400, Seed: 35, MaxSteps: 1 << 22}
	t90, err := EstimatePartialCoverTime(g, 0, 1, 0.9, opts)
	if err != nil {
		t.Fatal(err)
	}
	t100, err := EstimatePartialCoverTime(g, 0, 1, 1.0, opts)
	if err != nil {
		t.Fatal(err)
	}
	if t100.Mean() < 1.5*t90.Mean() {
		t.Fatalf("no heavy tail: t(1.0)=%v vs t(0.9)=%v", t100.Mean(), t90.Mean())
	}
}

func TestPartialCoverValidation(t *testing.T) {
	g := graph.Cycle(8)
	opts := MCOptions{Trials: 5, Seed: 1, MaxSteps: 100}
	if _, err := EstimatePartialCoverTime(g, 0, 1, 0, opts); err == nil {
		t.Fatal("alpha=0 accepted")
	}
	if _, err := EstimatePartialCoverTime(g, 0, 1, 1.5, opts); err == nil {
		t.Fatal("alpha>1 accepted")
	}
	if _, err := EstimatePartialCoverTime(g, 0, 0, 0.5, opts); err == nil {
		t.Fatal("k=0 accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("PartialCoverFrom alpha panic missing")
		}
	}()
	PartialCoverFrom(g, 0, 1, -1, rng.New(1), 10)
}

func TestLastVertexOnPathIsFarEnd(t *testing.T) {
	// From endpoint 0 of a path the last vertex covered is always n-1.
	g := graph.Path(8)
	r := rng.New(41)
	for trial := 0; trial < 50; trial++ {
		last, _, covered := LastVertexFrom(g, 0, r, 1<<20)
		if !covered {
			t.Fatal("truncated")
		}
		if last != 7 {
			t.Fatalf("last vertex %d, want 7", last)
		}
	}
}

func TestLastVertexCycleNeverStart(t *testing.T) {
	g := graph.Cycle(12)
	r := rng.New(43)
	for trial := 0; trial < 50; trial++ {
		last, steps, covered := LastVertexFrom(g, 0, r, 1<<20)
		if !covered || steps <= 0 {
			t.Fatal("truncated or zero-step cover")
		}
		if last == 0 {
			t.Fatal("start cannot be the last vertex covered")
		}
	}
}

func TestMeetingTimeBasics(t *testing.T) {
	g := graph.Complete(16, true)
	// Same start: meet at round 0.
	if steps, met := MeetingTimeFrom(g, 3, 3, rng.New(1), 10); !met || steps != 0 {
		t.Fatal("co-located walkers must meet at 0")
	}
	est, err := EstimateMeetingTime(g, 0, 5, MCOptions{Trials: 2000, Seed: 45, MaxSteps: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	// On K_n with loops both walkers land uniform each round:
	// P[meet] = 1/n per round → E = n = 16.
	if math.Abs(est.Mean()-16) > 4*est.CI95() {
		t.Fatalf("K16+loops meeting %v ± %v, want 16", est.Mean(), est.CI95())
	}
}

func TestMeetingTimeBipartiteParity(t *testing.T) {
	// Opposite sides of an even cycle: simultaneous moves preserve the
	// parity difference, so they can never co-locate.
	g := graph.Cycle(8)
	_, met := MeetingTimeFrom(g, 0, 1, rng.New(47), 5000)
	if met {
		t.Fatal("parity-separated walkers met on a bipartite graph")
	}
	// Same side (even distance) meets fine.
	_, met = MeetingTimeFrom(g, 0, 2, rng.New(47), 1<<20)
	if !met {
		t.Fatal("same-parity walkers failed to meet")
	}
}

func TestCoverageProfileShape(t *testing.T) {
	g := graph.Torus2D(6)
	profile := CoverageProfile(g, 0, 4, rng.New(49), 2000)
	if profile[0] != 1 {
		t.Fatalf("profile[0] = %d", profile[0])
	}
	for i := 1; i < len(profile); i++ {
		if profile[i] < profile[i-1] {
			t.Fatal("coverage decreased")
		}
		if profile[i] > g.N() {
			t.Fatal("coverage exceeded n")
		}
	}
	if profile[len(profile)-1] != g.N() {
		t.Fatalf("torus(6) not covered in 2000 rounds by 4 walkers: %d", profile[len(profile)-1])
	}
}

func TestMeanCoverageProfileMoreWalkersFaster(t *testing.T) {
	g := graph.Torus2D(6)
	opts := MCOptions{Trials: 100, Seed: 51, MaxSteps: 1}
	horizon := int64(200)
	p1, err := MeanCoverageProfile(g, 0, 1, horizon, opts)
	if err != nil {
		t.Fatal(err)
	}
	p8, err := MeanCoverageProfile(g, 0, 8, horizon, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(p1) != int(horizon)+1 || len(p8) != len(p1) {
		t.Fatal("profile lengths")
	}
	// At mid-horizon the 8-walk must be strictly ahead.
	mid := horizon / 2
	if p8[mid] <= p1[mid] {
		t.Fatalf("8 walkers not ahead at t=%d: %v vs %v", mid, p8[mid], p1[mid])
	}
	if _, err := MeanCoverageProfile(g, 0, 0, 10, opts); err == nil {
		t.Fatal("k=0 accepted")
	}
}
