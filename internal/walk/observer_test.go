package walk

import (
	"math"
	"strings"
	"testing"

	"manywalks/internal/graph"
	"manywalks/internal/linalg"
	"manywalks/internal/rng"
	"manywalks/internal/stats"
)

// TestRunValidationErrors is the regression test for the RunSpec bounds
// checks: misconfigured runs must surface as descriptive errors from Run,
// never as index panics inside the hot loop.
func TestRunValidationErrors(t *testing.T) {
	g := graph.Cycle(8)
	eng := NewEngine(g, EngineOptions{})
	cases := []struct {
		name string
		run  func() error
		want string
	}{
		{"no observers", func() error {
			_, err := eng.Run(RunSpec{Starts: []int32{0}, MaxRounds: 10})
			return err
		}, "at least one observer"},
		{"empty starts", func() error {
			_, err := eng.Run(RunSpec{MaxRounds: 10}, NewCoverObserver())
			return err
		}, "at least one walker"},
		{"start out of range", func() error {
			_, err := eng.Run(RunSpec{Starts: []int32{8}, MaxRounds: 10}, NewCoverObserver())
			return err
		}, "out of range"},
		{"negative start", func() error {
			_, err := eng.Run(RunSpec{Starts: []int32{-1}, MaxRounds: 10}, NewCoverObserver())
			return err
		}, "out of range"},
		{"cover target too large", func() error {
			_, err := eng.Run(RunSpec{Starts: []int32{0}, MaxRounds: 10}, NewCoverTargetObserver(9))
			return err
		}, "cover target"},
		{"bad threshold", func() error {
			_, err := eng.Run(RunSpec{Starts: []int32{0}, MaxRounds: 10}, NewPartialCoverObserver([]float64{1.5}))
			return err
		}, "threshold"},
		{"unsorted thresholds", func() error {
			_, err := eng.Run(RunSpec{Starts: []int32{0}, MaxRounds: 10}, NewPartialCoverObserver([]float64{0.9, 0.5}))
			return err
		}, "nondecreasing"},
		{"target vertex out of range", func() error {
			_, err := eng.Run(RunSpec{Starts: []int32{0}, MaxRounds: 10}, NewTargetSetObserver([]int32{42}))
			return err
		}, "target vertex"},
		{"bad marked length", func() error {
			_, err := eng.Run(RunSpec{Starts: []int32{0}, MaxRounds: 10}, NewHitObserver(make([]bool, 5)))
			return err
		}, "marked length"},
		{"two cover observers", func() error {
			_, err := eng.Run(RunSpec{Starts: []int32{0}, MaxRounds: 10}, NewCoverObserver(), NewFirstVisitObserver())
			return err
		}, "at most one CoverObserver"},
		{"collision needs 2 walkers", func() error {
			_, err := eng.Run(RunSpec{Starts: []int32{0}, MaxRounds: 10}, NewMeetingObserver())
			return err
		}, "at least 2 walkers"},
		{"focus out of range", func() error {
			_, err := eng.Run(RunSpec{Starts: []int32{0, 1}, MaxRounds: 10}, NewPursuitObserver(5))
			return err
		}, "focus walker"},
		{"negative focus below sentinel", func() error {
			_, err := eng.Run(RunSpec{Starts: []int32{0, 1}, MaxRounds: 10}, NewPursuitObserver(-3))
			return err
		}, "focus walker"},
	}
	for _, c := range cases {
		err := c.run()
		if err == nil {
			t.Fatalf("%s: no error", c.name)
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Fatalf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

// TestEstimatorValidationErrors pins the estimator-level bounds checks: a
// bad vertex id must come back as an error, not crash a worker goroutine.
func TestEstimatorValidationErrors(t *testing.T) {
	g := graph.Cycle(8)
	opts := MCOptions{Trials: 2, Seed: 1, MaxSteps: 10}
	for name, err := range map[string]error{
		"cover":       errOf2(EstimateCoverTime(g, 99, opts)),
		"kcover":      errOf2(EstimateKCoverTime(g, -3, 2, opts)),
		"hit":         errOf2(EstimateHittingTime(g, 0, 99, opts)),
		"kernelcover": errOf2(EstimateKernelCoverTime(g, Uniform(), 99, opts)),
		"partial":     errOf2(EstimatePartialCoverTime(g, 99, 1, 0.5, opts)),
		"meeting":     errOf2(EstimateKMeetingTime(g, []int32{0, 99}, opts)),
	} {
		if err == nil || !strings.Contains(err.Error(), "out of range") {
			t.Fatalf("%s: want out-of-range error, got %v", name, err)
		}
	}
	if _, err := CoverTimeTail(g, 99, 10, opts); err == nil {
		t.Fatal("tail: want out-of-range error")
	}
}

func errOf2(_ Estimate, err error) error { return err }

// TestObserverDeterministicAcrossConfigs extends the engine's determinism
// guarantee to the new observables: meeting, coalescence, multi-target hit,
// and the partial-cover curve must be bit-for-bit identical regardless of
// Workers and BatchRounds, under every kernel.
func TestObserverDeterministicAcrossConfigs(t *testing.T) {
	g := graph.Reweight(graph.MargulisExpander(16), func(u, v int32) float64 {
		return 1 + float64((u*7+v*13)%5)
	})
	n := g.N()
	starts := make([]int32, 80)
	for i := range starts {
		starts[i] = int32((i * 37) % n)
	}
	targets := []int32{int32(n - 1), 7, int32(n / 2)}
	fractions := []float64{0.25, 0.5, 0.9, 1}

	type outcome struct {
		meet MeetResult
		coal CoalesceResult
		mh   MultiHitResult
		pc   PartialCoverResult
	}
	measure := func(eng *Engine) outcome {
		meet, err := eng.KMeetingTime(starts[:8], 7, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		coal, err := eng.KCoalescenceTime(starts[:8], 7, 1<<22)
		if err != nil {
			t.Fatal(err)
		}
		mh, err := eng.KHitTargets(starts, targets, 7, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		pc, err := eng.PartialCoverCurve(starts, fractions, 7, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		return outcome{meet, coal, mh, pc}
	}
	equal := func(a, b outcome) bool {
		if a.meet != b.meet || a.coal != b.coal {
			return false
		}
		if a.mh.Rounds != b.mh.Rounds || a.mh.AllHit != b.mh.AllHit {
			return false
		}
		for i := range a.mh.FirstHit {
			if a.mh.FirstHit[i] != b.mh.FirstHit[i] {
				return false
			}
		}
		if a.pc.FinalRound != b.pc.FinalRound || a.pc.Complete != b.pc.Complete {
			return false
		}
		for i := range a.pc.Rounds {
			if a.pc.Rounds[i] != b.pc.Rounds[i] {
				return false
			}
		}
		return true
	}

	for _, kern := range Kernels() {
		base := measure(NewEngine(g, EngineOptions{Workers: 1, BatchRounds: 2, Kernel: kern}))
		if !base.meet.Met || !base.coal.Coalesced || !base.mh.AllHit || !base.pc.Complete {
			t.Fatalf("%s: baseline did not finish: %+v", kern, base)
		}
		for _, opts := range []EngineOptions{
			{Workers: 1, BatchRounds: 64},
			{Workers: 2, BatchRounds: 16},
			{Workers: 5, BatchRounds: 2},
			{Workers: 8, BatchRounds: 1000},
			{},
		} {
			opts.Kernel = kern
			if got := measure(NewEngine(g, opts)); !equal(got, base) {
				t.Fatalf("%s opts %+v: observables diverged:\n got %+v\nwant %+v", kern, opts, got, base)
			}
		}
	}
}

// TestMeetingMatchesLegacyStats cross-validates the engine's meeting time
// against the legacy shared-RNG loop statistically.
func TestMeetingMatchesLegacyStats(t *testing.T) {
	g := graph.MargulisExpander(6)
	starts := []int32{0, 17, 30}
	const trials = 2500

	eng := NewEngine(g, EngineOptions{Workers: 1})
	engSamples := make([]float64, trials)
	legSamples := make([]float64, trials)
	for i := 0; i < trials; i++ {
		res, err := eng.KMeetingTime(starts, uint64(100+i), 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Met {
			t.Fatal("engine meeting truncated")
		}
		engSamples[i] = float64(res.Rounds)
		steps, met := KMeetingFromVertices(g, starts, rng.NewStream(900, uint64(i)), 1<<20)
		if !met {
			t.Fatal("legacy meeting truncated")
		}
		legSamples[i] = float64(steps)
	}
	es, ls := stats.Summarize(engSamples), stats.Summarize(legSamples)
	if diff := math.Abs(es.Mean - ls.Mean); diff > es.CI95()+ls.CI95() {
		t.Fatalf("engine meeting %v±%v vs legacy %v±%v", es.Mean, es.CI95(), ls.Mean, ls.CI95())
	}
}

// TestCoalescenceMatchesLegacyStats does the same for full coalescence.
func TestCoalescenceMatchesLegacyStats(t *testing.T) {
	g := graph.MargulisExpander(5)
	starts := []int32{0, 6, 13, 21}
	const trials = 1500

	eng := NewEngine(g, EngineOptions{Workers: 1})
	engSamples := make([]float64, trials)
	legSamples := make([]float64, trials)
	for i := 0; i < trials; i++ {
		res, err := eng.KCoalescenceTime(starts, uint64(55+i), 1<<22)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Coalesced {
			t.Fatal("engine coalescence truncated")
		}
		if res.FirstMeeting < 0 || res.FirstMeeting > res.Rounds {
			t.Fatalf("first meeting %d outside [0, %d]", res.FirstMeeting, res.Rounds)
		}
		engSamples[i] = float64(res.Rounds)
		coal, meet, ok := KCoalescenceFromVertices(g, starts, rng.NewStream(901, uint64(i)), 1<<22)
		if !ok {
			t.Fatal("legacy coalescence truncated")
		}
		if meet < 0 || meet > coal {
			t.Fatalf("legacy first meeting %d outside [0, %d]", meet, coal)
		}
		legSamples[i] = float64(coal)
	}
	es, ls := stats.Summarize(engSamples), stats.Summarize(legSamples)
	if diff := math.Abs(es.Mean - ls.Mean); diff > es.CI95()+ls.CI95() {
		t.Fatalf("engine coalescence %v±%v vs legacy %v±%v", es.Mean, es.CI95(), ls.Mean, ls.CI95())
	}
}

// TestMeetingMatchesExactPairChain anchors the meeting time to the exact
// Markov chain: for two independent uniform walkers, the meeting time from
// (u,v) is the absorption time of the product chain on n² states with the
// diagonal absorbing — the expected steps solve (I−Q)x = 1 over the
// off-diagonal (transient) pair states.
func TestMeetingMatchesExactPairChain(t *testing.T) {
	g := graph.Lollipop(4, 2) // small, non-bipartite, irregular degrees
	n := g.N()
	// Transient pair states (a,b), a != b, indexed densely.
	index := make([]int, n*n)
	var transient []int
	for s := range index {
		index[s] = -1
		if s/n != s%n {
			index[s] = len(transient)
			transient = append(transient, s)
		}
	}
	m := linalg.Identity(len(transient))
	for i, s := range transient {
		a, b := int32(s/n), int32(s%n)
		na, nb := g.Neighbors(a), g.Neighbors(b)
		w := 1 / float64(len(na)*len(nb))
		for _, c := range na {
			for _, d := range nb {
				if j := index[int(c)*n+int(d)]; j >= 0 {
					m.Add(i, j, -w)
				}
			}
		}
	}
	lu, err := linalg.Factor(m)
	if err != nil {
		t.Fatal(err)
	}
	ones := make([]float64, len(transient))
	for i := range ones {
		ones[i] = 1
	}
	steps := lu.Solve(ones)

	u, v := int32(0), int32(n-1)
	want := steps[index[int(u)*n+int(v)]]

	eng := NewEngine(g, EngineOptions{Workers: 1})
	const trials = 6000
	samples := make([]float64, trials)
	for i := range samples {
		res, err := eng.KMeetingTime([]int32{u, v}, uint64(i), 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Met {
			t.Fatal("truncated")
		}
		samples[i] = float64(res.Rounds)
	}
	sum := stats.Summarize(samples)
	if math.Abs(sum.Mean-want) > 4*sum.CI95() {
		t.Fatalf("meeting mean %v ± %v vs exact %v", sum.Mean, sum.CI95(), want)
	}
}

// TestCoalescenceEqualsMeetingForK2: with two walkers the first meeting IS
// full coalescence, bit for bit.
func TestCoalescenceEqualsMeetingForK2(t *testing.T) {
	g := graph.Torus2D(7)
	eng := NewEngine(g, EngineOptions{})
	for seed := uint64(0); seed < 40; seed++ {
		starts := []int32{3, 40}
		meet, err := eng.KMeetingTime(starts, seed, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		coal, err := eng.KCoalescenceTime(starts, seed, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		if !meet.Met || !coal.Coalesced || meet.Rounds != coal.Rounds || coal.FirstMeeting != coal.Rounds {
			t.Fatalf("seed %d: meet %+v vs coalesce %+v", seed, meet, coal)
		}
	}
}

// TestKHitTargetsCrossChecks pins the multi-target observer against the
// two legacy views of the same process: per-target first-hit rounds equal
// the first-visit rounds of those vertices, and a single-target run equals
// KHit exactly.
func TestKHitTargetsCrossChecks(t *testing.T) {
	g := graph.MargulisExpander(8)
	n := g.N()
	starts := []int32{0, 5, 11, 19}
	targets := []int32{int32(n - 1), 33, int32(n / 2)}
	eng := NewEngine(g, EngineOptions{})

	for seed := uint64(0); seed < 25; seed++ {
		mh, err := eng.KHitTargets(starts, targets, seed, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		if !mh.AllHit {
			t.Fatal("targets not all hit; raise budget")
		}
		first := eng.KFirstVisits(starts, seed, mh.Rounds)
		maxHit := int64(0)
		for i, tg := range targets {
			if mh.FirstHit[i] != first[tg] {
				t.Fatalf("seed %d target %d: first hit %d != first visit %d", seed, tg, mh.FirstHit[i], first[tg])
			}
			if mh.FirstHit[i] > maxHit {
				maxHit = mh.FirstHit[i]
			}
		}
		if mh.Rounds != maxHit {
			t.Fatalf("seed %d: Rounds %d != max first hit %d", seed, mh.Rounds, maxHit)
		}

		// Single target == KHit, including vertex identity.
		single, err := eng.KHitTargets(starts, targets[:1], seed, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		marked := make([]bool, n)
		marked[targets[0]] = true
		hit := eng.KHit(starts, marked, seed, 1<<20)
		if !hit.Hit || single.Rounds != hit.Rounds || single.FirstHit[0] != hit.Rounds {
			t.Fatalf("seed %d: multi-hit %+v vs KHit %+v", seed, single, hit)
		}
	}
}

// TestPartialCoverCurveMatchesKCoverTarget: every curve entry must equal a
// dedicated KCoverTarget run at the same count target, exactly.
func TestPartialCoverCurveMatchesKCoverTarget(t *testing.T) {
	g := graph.Torus2D(8)
	n := g.N()
	starts := []int32{0, 21, 42}
	fractions := []float64{0.9, 0.25, 1, 0.5} // deliberately unsorted
	eng := NewEngine(g, EngineOptions{})

	for seed := uint64(0); seed < 25; seed++ {
		pc, err := eng.PartialCoverCurve(starts, fractions, seed, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		if !pc.Complete {
			t.Fatal("curve truncated; raise budget")
		}
		for i, f := range fractions {
			target := int(f * float64(n))
			if target < 1 {
				target = 1
			}
			want := eng.KCoverTarget(starts, target, seed, 1<<20)
			if !want.Covered || pc.Rounds[i] != want.Steps {
				t.Fatalf("seed %d fraction %v: curve %d vs KCoverTarget %+v", seed, f, pc.Rounds[i], want)
			}
		}
		if pc.FinalRound != pc.Rounds[2] { // fraction 1 is index 2
			t.Fatalf("seed %d: final round %d != full-cover round %d", seed, pc.FinalRound, pc.Rounds[2])
		}
	}
}

// TestPursuitObserverFocus: hunters sharing a base collide with each other
// at round 0, but a pursuit only ends when one reaches the prey.
func TestPursuitObserverFocus(t *testing.T) {
	g := graph.Torus2D(8)
	eng := NewEngine(g, EngineOptions{Workers: 1})
	// Walker 0 is the prey at vertex 36; three hunters share vertex 0.
	starts := []int32{36, 0, 0, 0}
	obs := NewPursuitObserver(0)
	res, err := eng.Run(RunSpec{Starts: starts, Seed: 3, MaxRounds: 1 << 20}, obs)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped || res.Rounds == 0 {
		t.Fatalf("pursuit ended at %+v; hunter-hunter collisions must not count", res)
	}
	a, b := obs.MeetPair()
	if a != 0 && b != 0 {
		t.Fatalf("meeting pair (%d,%d) does not involve the prey", a, b)
	}
	// An unfocused meeting observer sees the hunters' shared start at 0.
	any, err := eng.KMeetingTime(starts, 3, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if !any.Met || any.Rounds != 0 {
		t.Fatalf("unfocused meeting %+v; duplicate starts must meet at round 0", any)
	}
}

// TestMultiObserverRun drives two observers through the generic loop and
// checks both stop-condition combinators.
func TestMultiObserverRun(t *testing.T) {
	g := graph.Torus2D(6)
	starts := []int32{0, 9, 22}
	for seed := uint64(1); seed < 12; seed++ {
		// Reference rounds from singleton runs.
		cov := eng3Cover(t, g, starts, seed)
		meet := eng3Meet(t, g, starts, seed)

		eng := NewEngine(g, EngineOptions{})
		c, m := NewCoverObserver(), NewMeetingObserver()
		all, err := eng.Run(RunSpec{Starts: starts, Seed: seed, MaxRounds: 1 << 20, Stop: StopWhenAll()}, c, m)
		if err != nil {
			t.Fatal(err)
		}
		if !all.Stopped || all.Rounds != max64(cov, meet) {
			t.Fatalf("seed %d: StopWhenAll %+v, want %d", seed, all, max64(cov, meet))
		}

		c2, m2 := NewCoverObserver(), NewMeetingObserver()
		any, err := eng.Run(RunSpec{Starts: starts, Seed: seed, MaxRounds: 1 << 20, Stop: StopWhenAny()}, c2, m2)
		if err != nil {
			t.Fatal(err)
		}
		if !any.Stopped || any.Rounds != min64(cov, meet) {
			t.Fatalf("seed %d: StopWhenAny %+v, want %d", seed, any, min64(cov, meet))
		}
	}
}

func eng3Cover(t *testing.T, g *graph.Graph, starts []int32, seed uint64) int64 {
	t.Helper()
	res := NewEngine(g, EngineOptions{}).KCover(starts, seed, 1<<20)
	if !res.Covered {
		t.Fatal("cover truncated")
	}
	return res.Steps
}

func eng3Meet(t *testing.T, g *graph.Graph, starts []int32, seed uint64) int64 {
	t.Helper()
	res, err := NewEngine(g, EngineOptions{}).KMeetingTime(starts, seed, 1<<20)
	if err != nil || !res.Met {
		t.Fatalf("meeting truncated (%v)", err)
	}
	return res.Rounds
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// TestRunToHorizon: the stop condition must keep the run alive past every
// observer's satisfaction, and the first-visit log still matches the
// satisfaction-stopped run on the covered prefix.
func TestRunToHorizon(t *testing.T) {
	g := graph.Cycle(12)
	eng := NewEngine(g, EngineOptions{})
	cov := NewFirstVisitObserver()
	const horizon = 4096
	res, err := eng.Run(RunSpec{Starts: []int32{0}, Seed: 9, MaxRounds: horizon, Stop: RunToHorizon()}, cov)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stopped || res.Rounds != horizon {
		t.Fatalf("horizon run ended early: %+v", res)
	}
	if cov.satisfiedAt() < 0 {
		t.Fatal("cycle(12) not covered in 4096 rounds")
	}
	want := eng.KFirstVisits([]int32{0}, 9, horizon)
	for v, f := range cov.FirstVisits() {
		if f != want[v] {
			t.Fatalf("first[%d] = %d != %d", v, f, want[v])
		}
	}
}

// TestLegacyMeetingLoopAgreesWithMeetingTimeFrom sanity-checks the k=2
// legacy loop against the original two-walker reference.
func TestLegacyMeetingLoopAgreesWithMeetingTimeFrom(t *testing.T) {
	g := graph.Complete(9, false)
	const trials = 3000
	a := make([]float64, trials)
	b := make([]float64, trials)
	for i := 0; i < trials; i++ {
		s1, ok1 := KMeetingFromVertices(g, []int32{0, 5}, rng.NewStream(77, uint64(i)), 1<<20)
		s2, ok2 := MeetingTimeFrom(g, 0, 5, rng.NewStream(78, uint64(i)), 1<<20)
		if !ok1 || !ok2 {
			t.Fatal("truncated")
		}
		a[i], b[i] = float64(s1), float64(s2)
	}
	as, bs := stats.Summarize(a), stats.Summarize(b)
	if math.Abs(as.Mean-bs.Mean) > as.CI95()+bs.CI95() {
		t.Fatalf("k-loop %v±%v vs pair loop %v±%v", as.Mean, as.CI95(), bs.Mean, bs.CI95())
	}
}
