// Package markov provides general finite-Markov-chain analysis over dense
// transition matrices: stationary distributions, distribution evolution, and
// absorbing-chain computations (expected absorption times and absorption
// probabilities via the fundamental matrix N = (I−Q)⁻¹). The random-walk
// machinery in internal/exact is a special case; this package provides the
// general tool and serves as an independent cross-check of those solvers.
package markov

import (
	"fmt"
	"math"

	"manywalks/internal/graph"
	"manywalks/internal/linalg"
	"manywalks/internal/walk"
)

// Chain is a finite Markov chain with a dense row-stochastic transition
// matrix P: P[i][j] = Pr[next = j | current = i].
type Chain struct {
	p *linalg.Matrix
}

// New validates that p is square and row-stochastic and wraps it in a Chain.
func New(p *linalg.Matrix) (*Chain, error) {
	if p.Rows != p.Cols {
		return nil, fmt.Errorf("markov: transition matrix must be square, got %dx%d", p.Rows, p.Cols)
	}
	for i := 0; i < p.Rows; i++ {
		sum := 0.0
		for j := 0; j < p.Cols; j++ {
			v := p.At(i, j)
			if v < -1e-12 {
				return nil, fmt.Errorf("markov: negative entry P[%d][%d] = %v", i, j, v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			return nil, fmt.Errorf("markov: row %d sums to %v", i, sum)
		}
	}
	return &Chain{p: p.Clone()}, nil
}

// FromWalk returns the chain of the (lazy) simple random walk on g.
func FromWalk(g *graph.Graph, stay float64) *Chain {
	return &Chain{p: linalg.NewWalkOperator(g, stay).Dense()}
}

// ChainForKernel returns the vertex-space Markov chain of walk kernel k on
// g, built from the same Kernel.TransitionProbs law the engine compiles, so
// every kernel's Monte Carlo estimates can be cross-validated against the
// exact absorbing-chain machinery. The no-backtrack kernel has no
// vertex-space chain (its state is the directed edge) and returns an error.
// For Uniform and Lazy the result agrees with FromWalk(g, stay) up to the
// row order of floating-point accumulation; markov_test pins that.
func ChainForKernel(g *graph.Graph, k walk.Kernel) (*Chain, error) {
	k = walk.KernelOrUniform(k)
	n := g.N()
	p := linalg.NewMatrix(n, n)
	for v := 0; v < n; v++ {
		outs, probs, err := k.TransitionProbs(g, int32(v))
		if err != nil {
			return nil, fmt.Errorf("markov: kernel %s: %w", k, err)
		}
		for i, u := range outs {
			p.Add(v, int(u), probs[i])
		}
	}
	return New(p)
}

// KernelHittingTimeVia computes the expected hitting time h(u, v) of kernel
// k's walk on g through the absorbing-chain machinery — the exact reference
// the kernel Monte Carlo estimators are validated against.
func KernelHittingTimeVia(g *graph.Graph, k walk.Kernel, u, v int32) (float64, error) {
	c, err := ChainForKernel(g, k)
	if err != nil {
		return 0, err
	}
	abs, err := NewAbsorbing(c, []int{int(v)})
	if err != nil {
		return 0, err
	}
	return abs.ExpectedSteps()[u], nil
}

// N returns the number of states.
func (c *Chain) N() int { return c.p.Rows }

// P returns transition probability i -> j.
func (c *Chain) P(i, j int) float64 { return c.p.At(i, j) }

// Step evolves a distribution one step: out = dist·P.
func (c *Chain) Step(dist []float64) []float64 {
	n := c.N()
	if len(dist) != n {
		panic("markov: Step dimension mismatch")
	}
	out := make([]float64, n)
	for i, pi := range dist {
		if pi == 0 {
			continue
		}
		row := c.p.Data[i*n : (i+1)*n]
		for j, pij := range row {
			out[j] += pi * pij
		}
	}
	return out
}

// Stationary estimates the stationary distribution by iterated squaring of
// the distribution update from the uniform start; it requires an ergodic
// (irreducible, aperiodic) chain to converge and returns an error when the
// iteration fails to settle.
func (c *Chain) Stationary(maxIters int, tol float64) ([]float64, error) {
	n := c.N()
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = 1 / float64(n)
	}
	for it := 0; it < maxIters; it++ {
		next := c.Step(dist)
		if linalg.L1Distance(next, dist) < tol {
			return next, nil
		}
		dist = next
	}
	return nil, fmt.Errorf("markov: stationary iteration did not converge in %d steps", maxIters)
}

// Absorbing analyzes a chain with a designated absorbing subset: transitions
// out of absorbing states are ignored (treated as self-loops), and the
// fundamental matrix over transient states answers time-to-absorption and
// absorption-probability queries.
type Absorbing struct {
	chain     *Chain
	absorbing map[int]bool
	transient []int       // transient state ids in order
	index     map[int]int // state id -> row in the transient system
	factored  *linalg.LU  // LU of (I - Q)
}

// NewAbsorbing prepares the absorbing-chain analysis. The absorbing set must
// be non-empty and leave at least one transient state reachable.
func NewAbsorbing(c *Chain, absorbing []int) (*Absorbing, error) {
	if len(absorbing) == 0 {
		return nil, fmt.Errorf("markov: empty absorbing set")
	}
	a := &Absorbing{chain: c, absorbing: map[int]bool{}, index: map[int]int{}}
	for _, s := range absorbing {
		if s < 0 || s >= c.N() {
			return nil, fmt.Errorf("markov: absorbing state %d out of range", s)
		}
		a.absorbing[s] = true
	}
	for s := 0; s < c.N(); s++ {
		if !a.absorbing[s] {
			a.index[s] = len(a.transient)
			a.transient = append(a.transient, s)
		}
	}
	if len(a.transient) == 0 {
		return nil, fmt.Errorf("markov: no transient states")
	}
	t := len(a.transient)
	m := linalg.Identity(t)
	for i, s := range a.transient {
		for j, s2 := range a.transient {
			m.Add(i, j, -c.P(s, s2))
		}
	}
	f, err := linalg.Factor(m)
	if err != nil {
		return nil, fmt.Errorf("markov: absorption unreachable from some transient state: %w", err)
	}
	a.factored = f
	return a, nil
}

// ExpectedSteps returns, for every state, the expected number of steps until
// absorption (0 for absorbing states): the solution of (I−Q)t = 1.
func (a *Absorbing) ExpectedSteps() []float64 {
	t := len(a.transient)
	ones := make([]float64, t)
	for i := range ones {
		ones[i] = 1
	}
	sol := a.factored.Solve(ones)
	out := make([]float64, a.chain.N())
	for i, s := range a.transient {
		out[s] = sol[i]
	}
	return out
}

// AbsorptionProbabilities returns, for every state, the probability of being
// absorbed at target (which must be an absorbing state): the solution of
// (I−Q)b = R·e_target.
func (a *Absorbing) AbsorptionProbabilities(target int) ([]float64, error) {
	if !a.absorbing[target] {
		return nil, fmt.Errorf("markov: %d is not absorbing", target)
	}
	t := len(a.transient)
	rhs := make([]float64, t)
	for i, s := range a.transient {
		rhs[i] = a.chain.P(s, target)
	}
	sol := a.factored.Solve(rhs)
	out := make([]float64, a.chain.N())
	for i, s := range a.transient {
		out[s] = sol[i]
	}
	out[target] = 1
	return out, nil
}

// HittingTimeVia computes h(u, v) on a graph walk through the absorbing-
// chain machinery — an independent cross-check of the fundamental-matrix
// solver in internal/exact.
func HittingTimeVia(g *graph.Graph, u, v int32) (float64, error) {
	c := FromWalk(g, 0)
	abs, err := NewAbsorbing(c, []int{int(v)})
	if err != nil {
		return 0, err
	}
	return abs.ExpectedSteps()[u], nil
}
