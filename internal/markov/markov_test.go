package markov

import (
	"math"
	"testing"

	"manywalks/internal/exact"
	"manywalks/internal/graph"
	"manywalks/internal/linalg"
)

func TestNewValidatesStochasticity(t *testing.T) {
	p := linalg.NewMatrix(2, 2)
	p.Set(0, 0, 0.5)
	p.Set(0, 1, 0.5)
	p.Set(1, 0, 0.3)
	p.Set(1, 1, 0.6) // row sums to 0.9
	if _, err := New(p); err == nil {
		t.Fatal("non-stochastic row accepted")
	}
	p.Set(1, 1, 0.7)
	if _, err := New(p); err != nil {
		t.Fatal(err)
	}
	bad := linalg.NewMatrix(2, 3)
	if _, err := New(bad); err == nil {
		t.Fatal("non-square accepted")
	}
	neg := linalg.NewMatrix(1, 1)
	neg.Set(0, 0, 1)
	if _, err := New(neg); err != nil {
		t.Fatal(err)
	}
}

func TestStepConservesMass(t *testing.T) {
	c := FromWalk(graph.Lollipop(5, 3), 0)
	dist := make([]float64, c.N())
	dist[0] = 1
	for i := 0; i < 50; i++ {
		dist = c.Step(dist)
	}
	sum := 0.0
	for _, v := range dist {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("mass %v", sum)
	}
}

func TestStationaryMatchesDegrees(t *testing.T) {
	g := graph.Star(6) // lazy walk: aperiodic, π(center) = 1/2
	c := FromWalk(g, 0.5)
	pi, err := c.Stationary(100000, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pi[0]-0.5) > 1e-6 {
		t.Fatalf("π(center) = %v", pi[0])
	}
	for v := 1; v < 6; v++ {
		if math.Abs(pi[v]-0.1) > 1e-6 {
			t.Fatalf("π(leaf %d) = %v", v, pi[v])
		}
	}
}

func TestStationaryFailsOnPeriodicChain(t *testing.T) {
	// The simple walk on an even cycle is periodic: the uniform start is
	// actually stationary (it converges trivially), so use a two-state flip
	// chain from a non-uniform start... the uniform start is stationary
	// there too. Use a 2-cycle chain queried with tiny iteration budget and
	// a point-mass-like asymmetric chain instead: P = [[0,1],[1,0]] from
	// uniform IS stationary, so instead verify convergence failure via a
	// rotating 3-state deterministic cycle queried for stationarity with a
	// deliberately perturbed start: the Step iteration from uniform stays
	// uniform, so Stationary succeeds — periodicity is invisible from the
	// uniform start. This test therefore just documents that behaviour.
	p := linalg.NewMatrix(3, 3)
	p.Set(0, 1, 1)
	p.Set(1, 2, 1)
	p.Set(2, 0, 1)
	c, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	pi, err := c.Stationary(100, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range pi {
		if math.Abs(v-1.0/3) > 1e-9 {
			t.Fatalf("rotation stationary %v", pi)
		}
	}
}

func TestGamblersRuin(t *testing.T) {
	// Symmetric walk on a path with absorbing endpoints: from state i the
	// probability of absorbing at the right end (n-1) is i/(n-1) and the
	// expected duration is i·(n-1-i).
	n := 9
	g := graph.Path(n)
	c := FromWalk(g, 0)
	abs, err := NewAbsorbing(c, []int{0, n - 1})
	if err != nil {
		t.Fatal(err)
	}
	steps := abs.ExpectedSteps()
	probRight, err := abs.AbsorptionProbabilities(n - 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < n-1; i++ {
		wantP := float64(i) / float64(n-1)
		if math.Abs(probRight[i]-wantP) > 1e-9 {
			t.Fatalf("ruin prob from %d = %v, want %v", i, probRight[i], wantP)
		}
		wantT := float64(i * (n - 1 - i))
		if math.Abs(steps[i]-wantT) > 1e-9 {
			t.Fatalf("ruin duration from %d = %v, want %v", i, steps[i], wantT)
		}
	}
	if steps[0] != 0 || probRight[n-1] != 1 {
		t.Fatal("absorbing boundary values")
	}
}

func TestAbsorptionProbabilitiesSumToOne(t *testing.T) {
	g := graph.Torus2D(4)
	c := FromWalk(g, 0)
	targets := []int{0, 5, 10}
	abs, err := NewAbsorbing(c, targets)
	if err != nil {
		t.Fatal(err)
	}
	total := make([]float64, c.N())
	for _, tgt := range targets {
		p, err := abs.AbsorptionProbabilities(tgt)
		if err != nil {
			t.Fatal(err)
		}
		for s, v := range p {
			if v < -1e-12 || v > 1+1e-12 {
				t.Fatalf("probability %v at state %d", v, s)
			}
			if !contains(targets, s) {
				total[s] += v
			}
		}
	}
	for s, v := range total {
		if contains(targets, s) {
			continue
		}
		if math.Abs(v-1) > 1e-9 {
			t.Fatalf("absorption probs from %d sum to %v", s, v)
		}
	}
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

func TestHittingTimeMatchesFundamentalMatrix(t *testing.T) {
	graphs := []*graph.Graph{
		graph.Cycle(11),
		graph.Complete(7, false),
		graph.Lollipop(5, 4),
		graph.Wheel(8),
	}
	for _, g := range graphs {
		ht, err := exact.ComputeHittingTimes(g)
		if err != nil {
			t.Fatal(err)
		}
		pairs := [][2]int32{{0, 1}, {1, int32(g.N() - 1)}, {int32(g.N() / 2), 0}}
		for _, pr := range pairs {
			if pr[0] == pr[1] {
				continue
			}
			got, err := HittingTimeVia(g, pr[0], pr[1])
			if err != nil {
				t.Fatal(err)
			}
			want := ht.At(pr[0], pr[1])
			if math.Abs(got-want) > 1e-7*(1+want) {
				t.Fatalf("%s h(%d,%d): absorbing %v vs fundamental %v",
					g.Name(), pr[0], pr[1], got, want)
			}
		}
	}
}

func TestAbsorbingValidation(t *testing.T) {
	c := FromWalk(graph.Cycle(5), 0)
	if _, err := NewAbsorbing(c, nil); err == nil {
		t.Fatal("empty absorbing set accepted")
	}
	if _, err := NewAbsorbing(c, []int{9}); err == nil {
		t.Fatal("out-of-range state accepted")
	}
	if _, err := NewAbsorbing(c, []int{0, 1, 2, 3, 4}); err == nil {
		t.Fatal("all-absorbing chain accepted")
	}
	abs, err := NewAbsorbing(c, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := abs.AbsorptionProbabilities(1); err == nil {
		t.Fatal("non-absorbing target accepted")
	}
}
