package manywalks_test

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"manywalks"
)

func TestFacadeGraphOps(t *testing.T) {
	prod := manywalks.CartesianProduct(manywalks.NewCycle(4), manywalks.NewCycle(5))
	if prod.N() != 20 {
		t.Fatalf("product N=%d", prod.N())
	}
	u := manywalks.DisjointUnion(manywalks.NewCycle(3), manywalks.NewCycle(3))
	if u.IsConnected() {
		t.Fatal("union connected")
	}
	l := manywalks.WithSelfLoops(manywalks.NewPath(4))
	if l.SelfLoops() != 4 {
		t.Fatal("loops")
	}
	sub, _ := manywalks.Subgraph(manywalks.NewComplete(5, false), []int32{0, 1, 2})
	if sub.M() != 3 {
		t.Fatal("subgraph")
	}
	if manywalks.NewWheel(6).Degree(0) != 5 {
		t.Fatal("wheel hub")
	}
	if !manywalks.NewCompleteBipartite(2, 3).IsBipartite() {
		t.Fatal("bipartite")
	}
}

func TestFacadeSerialization(t *testing.T) {
	g := manywalks.NewMargulisExpander(4)
	var text, bin bytes.Buffer
	if err := g.WriteEdgeList(&text); err != nil {
		t.Fatal(err)
	}
	if err := g.WriteBinary(&bin); err != nil {
		t.Fatal(err)
	}
	g1, err := manywalks.ReadEdgeList(&text)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := manywalks.ReadBinary(&bin)
	if err != nil {
		t.Fatal(err)
	}
	if g1.N() != g.N() || g2.M() != g.M() {
		t.Fatal("round trip mismatch")
	}
	var dot bytes.Buffer
	if err := g.WriteDOT(&dot); err != nil || dot.Len() == 0 {
		t.Fatal("DOT export failed")
	}
}

func TestFacadeObservables(t *testing.T) {
	g := manywalks.NewTorus2D(6)
	opts := manywalks.MCOptions{Trials: 200, Seed: 5, MaxSteps: 1 << 20}
	partial, err := manywalks.PartialCoverTime(g, 0, 4, 0.5, opts)
	if err != nil {
		t.Fatal(err)
	}
	full, err := manywalks.KCoverTime(g, 0, 4, opts)
	if err != nil {
		t.Fatal(err)
	}
	if partial.Mean() >= full.Mean() {
		t.Fatalf("partial %v >= full %v", partial.Mean(), full.Mean())
	}
	meet, err := manywalks.MeetingTime(manywalks.NewComplete(8, true), 0, 3, opts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(meet.Mean()-8) > 4*meet.CI95() {
		t.Fatalf("K8+loops meeting %v, want 8", meet.Mean())
	}
	profile, err := manywalks.CoverageProfile(g, 0, 2, 50, manywalks.MCOptions{Trials: 50, Seed: 7, MaxSteps: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(profile) != 51 || profile[0] != 1 {
		t.Fatal("profile shape")
	}
}

func TestFacadeExactExtras(t *testing.T) {
	g := manywalks.NewComplete(6, false)
	ht, err := manywalks.ComputeHittingTimes(g)
	if err != nil {
		t.Fatal(err)
	}
	kc := manywalks.KemenyConstant(g, ht)
	if math.Abs(kc-25.0/6) > 1e-9 { // (n-1)²/n
		t.Fatalf("Kemeny %v", kc)
	}
	if manywalks.ExpectedReturnTime(g, 0) != 6 {
		t.Fatal("return time")
	}
	dense, err := manywalks.EffectiveResistance(manywalks.NewCycle(8), 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	cg, err := manywalks.EffectiveResistanceCG(manywalks.NewCycle(8), 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dense-cg) > 1e-8 || math.Abs(dense-2) > 1e-9 {
		t.Fatalf("resistance dense=%v cg=%v, want 2", dense, cg)
	}
}

func TestFacadeDynamic(t *testing.T) {
	g := manywalks.NewTorus2D(5)
	mg := manywalks.NewMutableGraph(g)
	if mg.N() != 25 {
		t.Fatal("mutable copy")
	}
	opts := manywalks.MCOptions{Trials: 100, Seed: 9, MaxSteps: 1 << 20}
	static, err := manywalks.KCoverTimeUnderChurn(g, 0, 2, manywalks.NopChurner{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	churned, err := manywalks.KCoverTimeUnderChurn(g, 0, 2, manywalks.SwapChurner{SwapsPerRound: 2}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if static.Mean() <= 0 || churned.Mean() <= 0 {
		t.Fatal("empty estimates")
	}
}

func TestFacadeNBAndDistribution(t *testing.T) {
	// Non-backtracking walk is ballistic on the cycle.
	g := manywalks.NewCycle(32)
	nb, err := manywalks.NBCoverTime(g, 0, 1, manywalks.MCOptions{Trials: 50, Seed: 15, MaxSteps: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	if nb.Mean() != 31 {
		t.Fatalf("NB cycle cover %v, want exactly 31", nb.Mean())
	}
	w := manywalks.NewNBWalker(g, 0, manywalks.NewRand(16))
	if w.Pos() != 0 {
		t.Fatal("walker start")
	}
	// Exact distribution machinery.
	tiny := manywalks.NewCycle(6)
	dist, leftover, err := manywalks.CoverTimeDistribution(tiny, 0, 500)
	if err != nil {
		t.Fatal(err)
	}
	mean := manywalks.DistributionMean(dist, leftover)
	if math.Abs(mean-15) > 0.05 { // n(n-1)/2
		t.Fatalf("distribution mean %v, want 15", mean)
	}
	if q := manywalks.DistributionQuantile(dist, 0.5); q < 5 || q > 30 {
		t.Fatalf("median %d", q)
	}
}

func TestFacadeKernels(t *testing.T) {
	g := manywalks.Reweight(manywalks.NewTorus2D(5), func(u, v int32) float64 {
		return 1 + float64((u+v)%3)
	})
	if !g.Weighted() {
		t.Fatal("Reweight did not mark the graph weighted")
	}
	k, err := manywalks.ParseKernel("lazy:0.5")
	if err != nil || k != manywalks.LazyKernel(0.5) {
		t.Fatalf("ParseKernel: %v, %v", k, err)
	}
	eng := manywalks.NewEngine(g, manywalks.EngineOptions{Kernel: manywalks.WeightedKernel()})
	if res := eng.KCoverFrom(0, 4, 1, 1<<20); !res.Covered {
		t.Fatal("weighted engine did not cover")
	}
	opts := manywalks.MCOptions{Trials: 200, Seed: 3, MaxSteps: 1 << 20}
	est, err := manywalks.KernelCoverTime(g, manywalks.MetropolisKernel(), 0, opts)
	if err != nil || est.Truncated != 0 || est.Mean() <= 0 {
		t.Fatalf("metropolis cover estimate %v, %v", est, err)
	}
	chain, err := manywalks.NewMarkovChainForKernel(g, manywalks.MetropolisKernel())
	if err != nil || chain.N() != g.N() {
		t.Fatalf("kernel chain: %v", err)
	}
	tiny := manywalks.NewCycle(5)
	exactCover, err := manywalks.ExactKernelCoverTime(tiny, manywalks.UniformKernel(), 0)
	if err != nil {
		t.Fatal(err)
	}
	uniformCover, err := manywalks.ExactCoverTime(tiny, 0)
	if err != nil || math.Abs(exactCover-uniformCover) > 1e-9 {
		t.Fatalf("kernel DP %v vs uniform DP %v (%v)", exactCover, uniformCover, err)
	}
	p, err := manywalks.KernelSpeedup(manywalks.NewTorus2D(5), manywalks.NoBacktrackKernel(), 0, 4, opts)
	if err != nil || p.Speedup <= 1 {
		t.Fatalf("no-backtrack speedup point %+v, %v", p, err)
	}
	if len(manywalks.AllKernels()) != 6 {
		t.Fatal("AllKernels must list the six registered step laws")
	}
	hk, err := manywalks.ParseKernel("hopper:power")
	if err != nil || hk != manywalks.HopperPowerKernel(1) {
		t.Fatalf("ParseKernel hopper: %v, %v", hk, err)
	}
	if got := manywalks.HopperExpKernel(0.5).String(); got != "hopper:exp:0.5" {
		t.Fatalf("hopper spelling %q", got)
	}
	if len(manywalks.KernelFamilies()) != len(manywalks.AllKernels()) {
		t.Fatal("KernelFamilies and AllKernels must agree on the registry size")
	}
	if help := manywalks.KernelHelp(); !strings.Contains(help, "hopper:law[:param]") {
		t.Fatalf("KernelHelp missing hopper syntax:\n%s", help)
	}
}

func TestFacadeMarkov(t *testing.T) {
	g := manywalks.NewPath(5)
	c := manywalks.NewMarkovChainFromWalk(g, 0)
	abs, err := manywalks.NewAbsorbingChain(c, []int{0, 4})
	if err != nil {
		t.Fatal(err)
	}
	steps := abs.ExpectedSteps()
	// Gambler's ruin duration from the middle: i(n-1-i) = 2·2 = 4.
	if math.Abs(steps[2]-4) > 1e-9 {
		t.Fatalf("ruin duration %v", steps[2])
	}
	probs, err := abs.AbsorptionProbabilities(4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(probs[2]-0.5) > 1e-9 {
		t.Fatalf("ruin probability %v", probs[2])
	}
}

func TestFacadeNetsim(t *testing.T) {
	g := manywalks.NewMargulisExpander(6)
	hasItem := make([]bool, g.N())
	hasItem[g.N()-1] = true
	res := manywalks.RunWalkQuery(g, 0, 4, 1<<14, hasItem, manywalks.NewRand(11))
	if !res.Found {
		t.Fatal("walk query failed")
	}
	flood := manywalks.RunFloodQuery(g, 0, g.N(), hasItem, manywalks.NewRand(12))
	if !flood.Found || flood.Rounds > res.Rounds {
		t.Fatalf("flood latency %d should not exceed walk latency %d", flood.Rounds, res.Rounds)
	}
	samples := manywalks.RunMembershipSampling(g, 0, 100, 32, manywalks.NewRand(13))
	if len(samples) != 100 {
		t.Fatal("sampling count")
	}
}
