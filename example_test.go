package manywalks_test

import (
	"fmt"

	"manywalks"
)

// The exact machinery produces deterministic values on small graphs:
// the cycle's expected cover time is n(n-1)/2 from any vertex.
func ExampleExactCoverTime() {
	g := manywalks.NewCycle(6)
	c, err := manywalks.ExactCoverTime(g, 0)
	if err != nil {
		panic(err)
	}
	fmt.Printf("C(cycle_6) = %.1f\n", c)
	// Output: C(cycle_6) = 15.0
}

// All-pairs hitting times come from one fundamental-matrix solve; on the
// cycle h(u,v) = d(n-d) with d the cycle distance.
func ExampleComputeHittingTimes() {
	g := manywalks.NewCycle(5)
	ht, err := manywalks.ComputeHittingTimes(g)
	if err != nil {
		panic(err)
	}
	fmt.Printf("h(0,1) = %.1f, h(0,2) = %.1f\n", ht.At(0, 1), ht.At(0, 2))
	// Output: h(0,1) = 4.0, h(0,2) = 6.0
}

// Two parallel walkers already beat one on every graph; the exact k-cover
// solver quantifies it on tiny instances.
func ExampleExactKCoverTime() {
	g := manywalks.NewComplete(4, false)
	c1, _ := manywalks.ExactKCoverTime(g, 0, 1)
	c2, _ := manywalks.ExactKCoverTime(g, 0, 2)
	fmt.Printf("C^1 = %.2f, C^2 = %.2f, speed-up %.2f\n", c1, c2, c1/c2)
	// Output: C^1 = 5.50, C^2 = 3.03, speed-up 1.82
}

// The graph generators build every family in the paper's Table 1.
func ExampleNewTorus2D() {
	g := manywalks.NewTorus2D(4)
	fmt.Printf("%s: n=%d, m=%d, diameter=%d\n", g.Name(), g.N(), g.M(), g.Diameter())
	// Output: torus[4 4]: n=16, m=32, diameter=4
}

// Cartesian products reproduce the standard identities; the 2-d torus is
// the product of two cycles.
func ExampleCartesianProduct() {
	prod := manywalks.CartesianProduct(manywalks.NewCycle(3), manywalks.NewCycle(3))
	fmt.Printf("n=%d, m=%d, 4-regular=%v\n", prod.N(), prod.M(), is4Regular(prod))
	// Output: n=9, m=18, 4-regular=true
}

func is4Regular(g *manywalks.Graph) bool {
	min, max := g.DegreeStats()
	return min == 4 && max == 4
}

// The Kemeny constant Σ_v π(v)h(u,v) does not depend on u; on K_n it equals
// (n-1)²/n.
func ExampleKemenyConstant() {
	g := manywalks.NewComplete(5, false)
	ht, _ := manywalks.ComputeHittingTimes(g)
	fmt.Printf("K = %.1f\n", manywalks.KemenyConstant(g, ht))
	// Output: K = 3.2
}

// Effective resistances obey the series/parallel laws; on a cycle the two
// arcs between antipodes act as parallel resistors.
func ExampleEffectiveResistance() {
	g := manywalks.NewCycle(4)
	r, _ := manywalks.EffectiveResistance(g, 0, 2) // two 2-edge arcs in parallel
	fmt.Printf("R = %.2f\n", r)
	// Output: R = 1.00
}

// Mixing on the complete graph takes a single step (the paper's 1/e
// threshold is met immediately).
func ExampleMixingTime() {
	g := manywalks.NewComplete(16, false)
	fmt.Printf("t_m = %d\n", manywalks.MixingTime(g, 0, nil, 100))
	// Output: t_m = 1
}

// The batched engine runs the paper's synchronized k-walk and is
// bit-for-bit deterministic: a fixed (graph, start, k, seed) yields the
// same cover round under every worker/batch configuration.
func ExampleNewEngine() {
	g := manywalks.NewTorus2D(8)
	a := manywalks.NewEngine(g, manywalks.EngineOptions{Workers: 1, BatchRounds: 2})
	b := manywalks.NewEngine(g, manywalks.EngineOptions{Workers: 8, BatchRounds: 64})
	ra := a.KCoverFrom(0, 8, 7, 1<<20)
	rb := b.KCoverFrom(0, 8, 7, 1<<20)
	fmt.Printf("covered=%v configsAgree=%v\n", ra.Covered, ra == rb)
	// Output: covered=true configsAgree=true
}

// RunKWalk is the one-shot form: a C^k sample with default engine options.
func ExampleRunKWalk() {
	g := manywalks.NewCycle(64)
	res := manywalks.RunKWalk(g, 0, 8, 42, 1<<20)
	again := manywalks.RunKWalk(g, 0, 8, 42, 1<<20)
	fmt.Printf("covered=%v reproducible=%v\n", res.Covered, res == again)
	// Output: covered=true reproducible=true
}

// KFirstVisits exposes the per-vertex first-visit rounds behind coverage
// profiles; a start vertex is visited at round 0.
func ExampleEngine_KFirstVisits() {
	g := manywalks.NewCycle(12)
	eng := manywalks.NewEngine(g, manywalks.EngineOptions{})
	first := eng.KFirstVisits([]int32{5}, 1, 1000)
	neighborsVisitedLater := first[4] > 0 && first[6] > 0
	fmt.Printf("first[start]=%d neighborsVisitedLater=%v\n", first[5], neighborsVisitedLater)
	// Output: first[start]=0 neighborsVisitedLater=true
}

// KHit answers search queries: the round at which any of the k walkers
// first stands on a marked vertex.
func ExampleEngine_KHit() {
	g := manywalks.NewTorus2D(8)
	eng := manywalks.NewEngine(g, manywalks.EngineOptions{})
	marked := make([]bool, g.N())
	marked[27] = true
	res := eng.KHit([]int32{0, 0, 0, 0}, marked, 9, 1<<20)
	fmt.Printf("hit=%v vertex=%d\n", res.Hit, res.Vertex)
	// Output: hit=true vertex=27
}

// Run is the engine's generic core: one synchronized k-walk observed by
// pluggable observers under a stop condition. Here a single run is watched
// for both full coverage and the walkers' first meeting, halting as soon
// as either happens.
func ExampleEngine_Run() {
	g := manywalks.NewTorus2D(8)
	eng := manywalks.NewEngine(g, manywalks.EngineOptions{})
	cover, meet := manywalks.NewCoverObserver(), manywalks.NewMeetingObserver()
	res, err := eng.Run(manywalks.RunSpec{
		Starts:    []int32{0, 27, 45},
		Seed:      4,
		MaxRounds: 1 << 20,
		Stop:      manywalks.StopWhenAny(),
	}, cover, meet)
	if err != nil {
		panic(err)
	}
	fmt.Printf("stopped=%v metFirst=%v\n", res.Stopped, meet.MeetRound() == res.Rounds)
	// Output: stopped=true metFirst=true
}

// PartialCoverCurve reads the whole partial-cover curve off a single run:
// the exact round each coverage fraction was reached.
func ExampleEngine_PartialCoverCurve() {
	g := manywalks.NewCycle(32)
	eng := manywalks.NewEngine(g, manywalks.EngineOptions{})
	res, err := eng.PartialCoverCurve([]int32{0, 16}, []float64{0.5, 1}, 11, 1<<20)
	if err != nil {
		panic(err)
	}
	fmt.Printf("complete=%v halfBeforeFull=%v\n", res.Complete, res.Rounds[0] < res.Rounds[1])
	// Output: complete=true halfBeforeFull=true
}

// Setting MCOptions.Precision turns any estimator adaptive: trials run in
// deterministic waves and stop at the first wave boundary whose relative
// CI half-width is within RTol. The adaptive samples are a prefix of the
// fixed schedule, so the early-stopped answer is reproducible and agrees
// with the fixed-budget run's first Summary.N trials bit-for-bit.
func ExampleKCoverTime_adaptive() {
	g := manywalks.NewMargulisExpander(8)
	opts := manywalks.MCOptions{Trials: 1024, Seed: 3, MaxSteps: 1 << 20}
	opts.Precision = manywalks.Precision{RTol: 0.1, Confidence: 0.95, Wave: 16}
	est, err := manywalks.KCoverTime(g, 0, 8, opts)
	if err != nil {
		panic(err)
	}
	again, _ := manywalks.KCoverTime(g, 0, 8, opts)
	fmt.Printf("converged=%v earlyStop=%v reproducible=%v\n",
		est.Converged, est.Summary.N < 1024, est == again)
	// Output: converged=true earlyStop=true reproducible=true
}

// KMeetingTime is the hunters-and-prey rendezvous primitive: the exact
// round two of the walkers first share a vertex.
func ExampleEngine_KMeetingTime() {
	g := manywalks.NewComplete(16, false)
	eng := manywalks.NewEngine(g, manywalks.EngineOptions{})
	res, err := eng.KMeetingTime([]int32{0, 5, 10}, 3, 1<<20)
	if err != nil {
		panic(err)
	}
	again, _ := eng.KMeetingTime([]int32{0, 5, 10}, 3, 1<<20)
	fmt.Printf("met=%v reproducible=%v\n", res.Met, res == again)
	// Output: met=true reproducible=true
}
