package manywalks_test

import (
	"math"
	"testing"

	"manywalks"
)

func TestPublicAPICoverAndSpeedup(t *testing.T) {
	g := manywalks.NewTorus2D(6)
	opts := manywalks.MCOptions{Trials: 300, Seed: 42, MaxSteps: 1 << 22}
	cov, err := manywalks.CoverTime(g, 0, opts)
	if err != nil {
		t.Fatal(err)
	}
	if cov.Mean() <= float64(g.N()) {
		t.Fatalf("cover time %v below n", cov.Mean())
	}
	p, err := manywalks.Speedup(g, 0, 4, opts)
	if err != nil {
		t.Fatal(err)
	}
	if p.Speedup < 2 || p.Speedup > 7 {
		t.Fatalf("torus S^4 = %v, expected near 4", p.Speedup)
	}
}

func TestPublicAPIExactMatchesMonteCarlo(t *testing.T) {
	g := manywalks.NewCycle(6)
	want, err := manywalks.ExactCoverTime(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(want-15) > 1e-9 { // n(n-1)/2
		t.Fatalf("exact cycle cover %v", want)
	}
	est, err := manywalks.CoverTime(g, 0, manywalks.MCOptions{Trials: 3000, Seed: 7, MaxSteps: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Mean()-want) > 4*est.CI95() {
		t.Fatalf("MC %v ± %v vs exact %v", est.Mean(), est.CI95(), want)
	}
	k2, err := manywalks.ExactKCoverTime(g, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if k2 >= want {
		t.Fatalf("two walkers slower than one: %v >= %v", k2, want)
	}
}

func TestPublicAPIBoundsAndMixing(t *testing.T) {
	g := manywalks.NewComplete(32, false)
	b, err := manywalks.ComputeBounds(g, 100, manywalks.NewRand(1))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b.Hmax-31) > 1e-6 {
		t.Fatalf("K32 hmax %v", b.Hmax)
	}
	if tm := manywalks.MixingTime(g, 0, nil, 50); tm != 1 {
		t.Fatalf("K32 t_m = %d", tm)
	}
	gap := manywalks.SpectralGap(g, 0, manywalks.NewRand(2))
	if math.Abs(gap-(1-1.0/31)) > 1e-3 {
		t.Fatalf("K32 spectral gap %v", gap)
	}
}

func TestPublicAPIClassify(t *testing.T) {
	g := manywalks.NewComplete(64, false)
	points, err := manywalks.SpeedupSweep(g, 0, []int{2, 4, 8, 16},
		manywalks.MCOptions{Trials: 200, Seed: 3, MaxSteps: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	c, err := manywalks.ClassifySpeedups(points)
	if err != nil {
		t.Fatal(err)
	}
	if c.Regime != manywalks.RegimeLinear {
		t.Fatalf("K64 classified %v", c.Regime)
	}
}

func TestPublicAPIBarbell(t *testing.T) {
	g, center := manywalks.NewBarbell(21)
	if g.Degree(center) != 2 {
		t.Fatal("center degree")
	}
	est, err := manywalks.KCoverTimeStationary(g, 4,
		manywalks.MCOptions{Trials: 100, Seed: 9, MaxSteps: 1 << 22})
	if err != nil {
		t.Fatal(err)
	}
	if est.Mean() <= 0 {
		t.Fatal("stationary-start estimate empty")
	}
}

func TestPublicAPIWalkerAndBuilder(t *testing.T) {
	b := manywalks.NewGraphBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 0)
	g := b.Build("triangle")
	w := manywalks.NewWalker(g, 0, manywalks.NewRandStream(5, 0))
	for i := 0; i < 100; i++ {
		v := w.Step()
		if v < 0 || v > 2 {
			t.Fatalf("walker escaped: %d", v)
		}
	}
	ht, err := manywalks.ComputeHittingTimes(g)
	if err != nil {
		t.Fatal(err)
	}
	// Triangle: h(u,v) = 2 for u != v.
	if math.Abs(ht.At(0, 1)-2) > 1e-9 {
		t.Fatalf("triangle hitting %v", ht.At(0, 1))
	}
	hit, err := manywalks.HittingTime(g, 0, 1, manywalks.MCOptions{Trials: 2000, Seed: 11, MaxSteps: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(hit.Mean()-2) > 4*hit.CI95() {
		t.Fatalf("MC hitting %v ± %v", hit.Mean(), hit.CI95())
	}
}

func TestPublicAPIGenerators(t *testing.T) {
	r := manywalks.NewRand(13)
	gs := []*manywalks.Graph{
		manywalks.NewCycle(5),
		manywalks.NewPath(5),
		manywalks.NewComplete(5, true),
		manywalks.NewStar(5),
		manywalks.NewGrid([]int{3, 3}, false),
		manywalks.NewHypercube(3),
		manywalks.NewBalancedTree(2, 2),
		manywalks.NewLollipop(4, 2),
		manywalks.NewErdosRenyi(20, 0.5, r),
		manywalks.NewRandomGeometric(30, 0.5, r),
		manywalks.NewMargulisExpander(3),
		manywalks.NewCycleWithChords(11),
	}
	for _, g := range gs {
		if g.N() == 0 {
			t.Fatalf("%s empty", g.Name())
		}
	}
	if _, err := manywalks.NewConnectedErdosRenyi(40, 0.3, r, 20); err != nil {
		t.Fatal(err)
	}
	if _, err := manywalks.NewConnectedRandomRegular(20, 3, r, 100); err != nil {
		t.Fatal(err)
	}
	if _, err := manywalks.NewRandomRegular(20, 4, r, 100); err != nil {
		t.Fatal(err)
	}
}

func TestPublicEngineAPI(t *testing.T) {
	g := manywalks.NewMargulisExpander(8)
	eng := manywalks.NewEngine(g, manywalks.EngineOptions{})

	res := eng.KCoverFrom(0, 16, 5, 1<<20)
	if !res.Covered || res.Steps <= 0 {
		t.Fatalf("engine cover failed: %+v", res)
	}
	if one := manywalks.RunKWalk(g, 0, 16, 5, 1<<20); one != res {
		t.Fatalf("RunKWalk %+v != engine %+v", one, res)
	}

	marked := make([]bool, g.N())
	marked[g.N()-1] = true
	hit := eng.KHit([]int32{0, 0}, marked, 5, 1<<20)
	if !hit.Hit || hit.Vertex != int32(g.N()-1) {
		t.Fatalf("engine hit failed: %+v", hit)
	}

	// The estimators run on the engine; spot-check they still agree with
	// the exact DP on a tiny instance.
	want, err := manywalks.ExactKCoverTime(manywalks.NewCycle(5), 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	est, err := manywalks.KCoverTime(manywalks.NewCycle(5), 0, 2,
		manywalks.MCOptions{Trials: 3000, Seed: 9, MaxSteps: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if diff := est.Mean() - want; diff > 4*est.CI95() || diff < -4*est.CI95() {
		t.Fatalf("engine-backed estimate %v ± %v vs exact %v", est.Mean(), est.CI95(), want)
	}
}

// TestFacadeServer exercises the serving API through the facade: a
// coalesced server must answer walk queries bit-for-bit like the
// per-request netsim path and estimates like the standalone estimators.
func TestFacadeServer(t *testing.T) {
	g := manywalks.NewMargulisExpander(8)
	srv := manywalks.NewServer(manywalks.ServerOptions{})
	defer srv.Close()
	if err := srv.RegisterGraph("exp", g); err != nil {
		t.Fatal(err)
	}
	eng := manywalks.NewEngine(g, manywalks.EngineOptions{})
	hasItem := make([]bool, g.N())
	hasItem[40] = true
	for seed := uint64(0); seed < 6; seed++ {
		got, err := srv.WalkQuery(nil, manywalks.WalkQueryRequest{
			Graph: "exp", Origin: 2, K: 3, TTL: 4096, Targets: []int32{40}, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		if want := manywalks.RunWalkQueryEngine(eng, 2, 3, 4096, hasItem, seed); got != want {
			t.Fatalf("seed %d: served %+v != standalone %+v", seed, got, want)
		}
	}
	est, err := srv.HittingTime(nil, manywalks.HittingTimeRequest{
		Graph: "exp", Start: 0, Target: 40, Trials: 8, Seed: 3, MaxSteps: 1 << 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	want, err := manywalks.HittingTime(g, 0, 40, manywalks.MCOptions{Trials: 8, Workers: 1, Seed: 3, MaxSteps: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	if est != want {
		t.Fatalf("served estimate %+v != standalone %+v", est, want)
	}
	if st := srv.Stats(); st.Requests != 7 {
		t.Fatalf("stats %+v", st)
	}
}
