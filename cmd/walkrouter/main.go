// Command walkrouter fronts a fleet of walkd replicas with shape-affinity
// routing: each request is consistent-hashed by its shape digest (graph ×
// kernel × observer class × canonical target set) onto the ring of
// backends, so all concurrent traffic for one shape lands on the same
// replica's coalescer and batches exactly as wide as it would on a single
// box. Because every replica computes deterministically, the router can
// retry a failed request on the next ring replica and the client receives
// the byte-identical answer — failover is invisible and no request is
// lost. A sampled fraction of answers can additionally be shadow-verified
// against a second replica by raw byte comparison.
//
// Usage:
//
//	walkrouter -backends host:8371,host:8372,host:8373
//	           [-addr :8370] [-policy affinity|roundrobin] [-vnodes 64]
//	           [-shadow 0] [-health 1s] [-max-idle 512]
//
// The router exposes walkd's wire surface unchanged (/healthz, /v1/graphs,
// /v1/query, /v1/hitting, /v1/cover, /v1/meeting) plus its own /v1/stats:
// routing counters, per-backend health/traffic, and each backend's
// embedded serve stats.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"manywalks/internal/cluster"
)

var errUsage = errors.New("usage error")

func usage(err error) error { return fmt.Errorf("%w: %w", errUsage, err) }

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("walkrouter", flag.ContinueOnError)
	fs.SetOutput(out)
	addr := fs.String("addr", ":8370", "listen address")
	backends := fs.String("backends", "", "comma-separated walkd replica addresses (required)")
	policy := fs.String("policy", "affinity", "routing policy: affinity (shape-hash) or roundrobin")
	vnodes := fs.Int("vnodes", cluster.DefaultVNodes, "virtual nodes per replica on the hash ring")
	shadow := fs.Int("shadow", 0, "shadow-verify every Nth answer against a second replica (0 disables)")
	health := fs.Duration("health", time.Second, "replica /healthz polling interval")
	maxIdle := fs.Int("max-idle", 512, "keep-alive connections per backend")
	drainWait := fs.Duration("drain", 10*time.Second, "graceful shutdown budget for in-flight requests")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return usage(err)
	}
	var backendList []string
	for _, b := range strings.Split(*backends, ",") {
		if b = strings.TrimSpace(b); b != "" {
			backendList = append(backendList, b)
		}
	}
	if len(backendList) == 0 {
		return usage(errors.New("-backends required"))
	}
	pol, err := cluster.ParsePolicy(*policy)
	if err != nil {
		return usage(err)
	}
	if *health <= 0 {
		return usage(errors.New("-health must be positive"))
	}
	rt, err := cluster.New(cluster.Options{
		Backends:          backendList,
		Policy:            pol,
		VNodes:            *vnodes,
		ShadowSample:      *shadow,
		HealthInterval:    *health,
		MaxIdlePerBackend: *maxIdle,
	})
	if err != nil {
		return usage(err)
	}
	defer rt.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: rt, ReadHeaderTimeout: 5 * time.Second}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		fmt.Fprintln(out, "walkrouter: draining")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
		defer cancel()
		_ = httpSrv.Shutdown(shutdownCtx)
	}()
	fmt.Fprintf(out, "walkrouter: policy=%s replicas=%d listening on %s\n", pol, len(backendList), ln.Addr())
	for _, b := range backendList {
		fmt.Fprintf(out, "walkrouter: backend %s\n", b)
	}
	if err := httpSrv.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	st := rt.Stats()
	fmt.Fprintf(out, "walkrouter: routed %d (%d failovers, %d unrouted, %d/%d shadow mismatches)\n",
		st.Routed, st.Failovers, st.Unrouted, st.ShadowMismatches, st.ShadowChecks)
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "walkrouter:", err)
		if errors.Is(err, errUsage) {
			os.Exit(2)
		}
		os.Exit(1)
	}
}
