package main

import (
	"strings"
	"testing"
)

// TestRunFlagErrors covers the usage paths of run.
func TestRunFlagErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-h"}, &out); err != nil || !strings.Contains(out.String(), "-backends") {
		t.Fatalf("-h must print usage, got %v", err)
	}
	for _, args := range [][]string{
		{},                                          // no backends
		{"-backends", " , "},                        // only blanks
		{"-backends", "x", "-policy", "random"},     // bad policy
		{"-backends", "x", "-health", "-1s"},        // poller cannot be disabled from the CLI
		{"-backends", "x", "-shadow", "-2"},         // negative sample
		{"-backends", "x", "-addr", "256.0.0.1:-1"}, // unusable listen address
	} {
		if err := run(args, &out); err == nil {
			t.Fatalf("args %v accepted", args)
		}
	}
}
